#ifndef ATPM_BENCH_PREDEFINED_COMMON_H_
#define ATPM_BENCH_PREDEFINED_COMMON_H_

// Shared harness for Figs. 7 and 8: the predefined-cost setting on
// LiveJournal. Costs are assigned to every node with c(V) = λn, the target
// set T is derived by NDG (Fig. 7) or NSG (Fig. 8), and HATP's profit is
// compared against the deriving baseline across a λ grid.
//
// λ calibration: the paper's λ ∈ {200,...,500} is tuned to the full 4.85M-
// node LiveJournal; our stand-in is smaller, so λ is expressed as a
// fraction of the estimated maximum single-node spread (the quantity λ
// trades against). The actual λ values are printed with each row.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/experiment.h"
#include "bench_util/grid.h"
#include "bench_util/table_printer.h"
#include "common/timer.h"
#include "core/hatp.h"
#include "core/nonadaptive_greedy.h"
#include "core/target_selection.h"
#include "rris/rr_collection.h"
#include "rris/sampling_engine.h"

namespace atpm_bench {

// Estimated maximum single-node expected spread, via one RR pool.
inline double EstimateTopSpread(const atpm::Graph& graph, uint64_t seed,
                                uint32_t threads) {
  atpm::Rng rng(seed);
  atpm::SamplingEngineOptions engine_options;
  engine_options.num_threads = threads;
  std::unique_ptr<atpm::SamplingEngine> engine = atpm::CreateSamplingEngine(
      graph, atpm::DiffusionModel::kIndependentCascade, engine_options);
  const uint64_t theta = 1u << 15;
  atpm::RRCollection& pool =
      engine->GeneratePool(nullptr, graph.num_nodes(), theta, &rng);
  pool.BuildIndex();
  uint64_t best = 0;
  for (atpm::NodeId u = 0; u < graph.num_nodes(); ++u) {
    best = std::max<uint64_t>(best, pool.CoveringSets(u).size());
  }
  return static_cast<double>(best) * graph.num_nodes() /
         static_cast<double>(theta);
}

inline int RunPredefinedFigure(atpm::TargetMethod method,
                               const char* figure_name,
                               const char* rival_name) {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  atpm::Result<atpm::BenchDataset> dataset =
      atpm::BuildDataset("LiveJournal", config.scale, config.seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const atpm::Graph& graph = dataset.value().graph;
  const double top_spread =
      EstimateTopSpread(graph, config.seed, config.threads);

  std::printf("=== %s: HATP vs %s, predefined cost, LiveJournal "
              "(n=%u, top single-node spread ~%.0f) ===\n",
              figure_name, rival_name, graph.num_nodes(), top_spread);
  std::printf("lambda grid = lambda* x {1.0, 0.8, 0.6, 0.4}, where lambda* "
              "is calibrated per scheme so the derived T is profitable\n"
              "(plays the role of the paper's lambda in {500..200}: smaller "
              "lambda -> larger T)\n");

  const char* panel = "ab";
  int panel_idx = 0;
  for (atpm::CostScheme scheme :
       {atpm::CostScheme::kDegreeProportional, atpm::CostScheme::kUniform}) {
    std::printf("\n--- %s(%c): %s cost ---\n", figure_name,
                panel[panel_idx++], atpm::CostSchemeName(scheme));
    atpm::TablePrinter table({"lambda", "|T|", "HATP profit",
                              std::string(rival_name) + " profit",
                              "improvement"});

    // Calibrate λ*: the profitable band depends on the cost scheme
    // (degree-proportional costs track spreads, pricing most nodes to the
    // bar, so λ* is far below the uniform scheme's). Halve λ with a cheap
    // derivation pool until the derived T clears E_l[I(T)] >= 1.3 c(T).
    double lambda_star = 0.20 * top_spread;
    {
      atpm::TargetSelectionOptions scan_options;
      scan_options.seed = config.seed;
      scan_options.derive_rr_sets = 1u << 14;
      scan_options.bound_rr_sets = 1u << 14;
      scan_options.num_threads = config.threads;
      for (int i = 0; i < 14; ++i) {
        atpm::Result<atpm::TargetSelectionResult> probe =
            atpm::BuildPredefinedCostProblem(graph, lambda_star, scheme,
                                             method, scan_options);
        if (probe.ok()) {
          const double ct = probe.value().problem.TotalTargetCost();
          if (ct > 0.0 && probe.value().spread_lower_bound >= 1.3 * ct) {
            break;
          }
        }
        lambda_star /= 2.0;
      }
    }

    for (double mult : {1.0, 0.8, 0.6, 0.4}) {
      const double lambda = mult * lambda_star;
      atpm::TargetSelectionOptions sel_options;
      sel_options.seed = config.seed + static_cast<uint64_t>(100 * mult);
      sel_options.num_threads = config.threads;
      atpm::Result<atpm::TargetSelectionResult> selection =
          atpm::BuildPredefinedCostProblem(graph, lambda, scheme, method,
                                           sel_options);
      if (!selection.ok()) {
        table.AddRow({atpm::FormatDouble(lambda, 1), "0",
                      "(empty T: " + selection.status().ToString() + ")"});
        continue;
      }
      atpm::ProfitProblem problem = selection.value().problem;
      // Very large derived T would dominate the whole suite's runtime;
      // keep the most profitable prefix (selection order) and say so.
      const uint32_t kTargetCap = 250;
      if (problem.k() > kTargetCap) {
        problem.targets.resize(kTargetCap);
        std::printf("(T truncated to %u of %u derived targets)\n",
                    kTargetCap, selection.value().problem.k());
      }

      atpm::ExperimentRunner runner(problem, config.realizations,
                                    config.seed);

      atpm::HatpOptions hatp_options;
      hatp_options.sampling.max_rr_sets_per_decision = config.hatp_rr_cap;
      hatp_options.sampling.num_threads = config.threads;
      atpm::HatpPolicy hatp(hatp_options);
      atpm::Result<atpm::AlgoStats> hatp_stats = runner.RunAdaptive(&hatp);
      if (!hatp_stats.ok()) {
        std::fprintf(stderr, "HATP failed: %s\n",
                     hatp_stats.status().ToString().c_str());
        return 1;
      }

      const uint64_t theta = std::max<uint64_t>(
          atpm::SharedPoolIterationSpend(
              hatp_options.sampling,
              hatp_stats.value().max_rr_sets_per_iteration),
          1024);
      atpm::Rng rng(config.seed * 13 + 7);
      atpm::Result<atpm::NonadaptiveResult> rival =
          method == atpm::TargetMethod::kNdg
              ? atpm::RunNdg(problem, theta, &rng)
              : atpm::RunNsg(problem, theta, &rng);
      if (!rival.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", rival_name,
                     rival.status().ToString().c_str());
        return 1;
      }
      const double rival_profit =
          runner.EvaluateFixedSet(rival.value().seeds, 0.0).mean_profit;
      const double hatp_profit = hatp_stats.value().mean_profit;
      const double improvement =
          rival_profit > 0.0
              ? 100.0 * (hatp_profit - rival_profit) / rival_profit
              : 0.0;
      table.AddRow({atpm::FormatDouble(lambda, 1),
                    std::to_string(problem.k()),
                    atpm::FormatDouble(hatp_profit, 1),
                    atpm::FormatDouble(rival_profit, 1),
                    atpm::FormatDouble(improvement, 1) + "%"});
    }
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace atpm_bench

#endif  // ATPM_BENCH_PREDEFINED_COMMON_H_
