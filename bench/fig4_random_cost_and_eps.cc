// Fig. 4 of the paper (both panels, Epinions):
//   (a) profit under the *random* cost setting, and
//   (b) sensitivity of HATP's profit to the relative-error threshold ε
//       (ε in {0.05, 0.1, 0.15, 0.2, 0.25} at the largest k) — the paper
//       finds the profit nearly flat in ε.
#include <cstdio>
#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/experiment.h"
#include "bench_util/grid.h"
#include "bench_util/table_printer.h"
#include "core/hatp.h"
#include "core/target_selection.h"

int main() {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  config.scheme = atpm::CostScheme::kRandom;
  config.only_dataset = "Epinions";
  std::printf("=== Fig. 4(a): profit, random cost, Epinions "
              "(scale=%.2f, %u realizations) ===\n",
              config.scale, config.realizations);

  atpm::Result<std::vector<atpm::GridCell>> cells =
      atpm::RunOrLoadProfitGrid(config, "grid_random_epinions");
  if (!cells.ok()) {
    std::fprintf(stderr, "grid failed: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }
  atpm::PrintGridTable(cells.value(), "Epinions", "profit");

  // --- Panel (b): ε sensitivity at the largest k of the grid. ---
  atpm::Result<atpm::BenchDataset> dataset =
      atpm::BuildDataset("Epinions", config.scale, config.seed);
  if (!dataset.ok()) return 1;
  const atpm::Graph& graph = dataset.value().graph;
  const uint32_t k = atpm::BenchSeedGrid(graph.num_nodes() / 4).back();

  atpm::TargetSelectionOptions sel_options;
  sel_options.seed = config.seed + k;
  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(
          graph, k, atpm::CostScheme::kDegreeProportional, sel_options);
  if (!selection.ok()) {
    std::fprintf(stderr, "target selection failed: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== Fig. 4(b): HATP sensitivity to epsilon "
              "(Epinions, degree cost, k=%u) ===\n",
              k);
  atpm::ExperimentRunner runner(selection.value().problem,
                                config.realizations, config.seed);
  atpm::TablePrinter table({"epsilon", "profit", "seconds"});
  for (double eps : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    atpm::HatpOptions options;
    options.relative_error_threshold = eps;
    options.sampling.max_rr_sets_per_decision = config.hatp_rr_cap;
    options.sampling.num_threads = config.threads;
    atpm::HatpPolicy policy(options);
    atpm::Result<atpm::AlgoStats> stats = runner.RunAdaptive(&policy);
    if (!stats.ok()) {
      std::fprintf(stderr, "HATP failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({atpm::FormatDouble(eps, 2),
                  atpm::FormatDouble(stats.value().mean_profit, 1),
                  atpm::FormatSeconds(stats.value().mean_seconds)});
  }
  table.Print(std::cout);
  return 0;
}
