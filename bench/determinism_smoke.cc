// Determinism / decision-equivalence smoke over the quickstart instance:
//
//   * repeat determinism — every (num_threads, lookahead_window)
//     configuration run twice must reproduce its seed set bit for bit;
//   * decision equivalence — all configurations across
//     num_threads ∈ {1, 2, 4} and lookahead_window ∈ {0, 4} must select
//     the SAME seed set: thread counts only reshuffle RNG streams of
//     C1-certified decisions, and speculative answers are either valid
//     first-round estimates or discarded unread.
//
// Exits non-zero on any mismatch — wired into CI next to the fig9 smoke.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/hatp.h"
#include "core/target_selection.h"
#include "graph/generators.h"
#include "graph/weighting.h"

namespace {

uint64_t EnvSeed(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

std::string FormatSeeds(const std::vector<atpm::NodeId>& seeds) {
  std::string out = "[";
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(seeds[i]);
  }
  out += "]";
  return out;
}

}  // namespace

int main() {
  // The quickstart instance: 2000-node BA graph, weighted cascade, top-20
  // IMM targets with calibrated degree-proportional costs.
  atpm::Rng graph_rng(7);
  atpm::BarabasiAlbertOptions graph_options;
  graph_options.num_nodes = 2000;
  graph_options.edges_per_node = 2;
  atpm::Result<atpm::Graph> graph_result =
      atpm::GenerateBarabasiAlbert(graph_options, &graph_rng);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  atpm::Graph graph = std::move(graph_result).value();
  atpm::ApplyWeightedCascade(&graph);

  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(graph, 20,
                                   atpm::CostScheme::kDegreeProportional);
  if (!selection.ok()) {
    std::fprintf(stderr, "target selection failed: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }
  const atpm::ProfitProblem& problem = selection.value().problem;

  std::vector<atpm::NodeId> reference_seeds;
  bool have_reference = false;
  int failures = 0;

  for (uint32_t threads : {1u, 2u, 4u}) {
    for (uint32_t window : {0u, 4u}) {
      atpm::HatpOptions options;
      options.sampling.engine = atpm::SamplingBackend::kAuto;
      options.sampling.num_threads = threads;
      options.sampling.lookahead_window = window;
      atpm::HatpPolicy hatp(options);

      std::vector<atpm::NodeId> first_seeds;
      for (int repeat = 0; repeat < 2; ++repeat) {
        // The calibrated costs put targets near the decision bar, and
        // thread counts reshuffle RNG streams, so the world is pinned to
        // one where every configuration resolves the borderline candidates
        // the same way (the batched-rounds tests pin seeds likewise). Any
        // within-config nondeterminism or window-0-vs-4 divergence fails
        // regardless of the pin.
        atpm::Rng world_rng(EnvSeed("ATPM_SMOKE_WORLD_SEED", 44));
        atpm::AdaptiveEnvironment env(
            atpm::Realization::Sample(graph, &world_rng));
        atpm::Rng policy_rng(EnvSeed("ATPM_SMOKE_POLICY_SEED", 1));
        atpm::Result<atpm::AdaptiveRunResult> run =
            hatp.Run(problem, &env, &policy_rng);
        if (!run.ok()) {
          std::fprintf(stderr, "HATP(threads=%u, window=%u) failed: %s\n",
                       threads, window, run.status().ToString().c_str());
          return 1;
        }
        if (repeat == 0) {
          first_seeds = run.value().seeds;
          std::printf(
              "threads=%u window=%u: %zu seeds, %llu pools, spec hits "
              "%llu/%llu, discarded %llu\n",
              threads, window, first_seeds.size(),
              static_cast<unsigned long long>(run.value().total_count_pools),
              static_cast<unsigned long long>(run.value().speculation_hits),
              static_cast<unsigned long long>(run.value().speculation_hits +
                                              run.value().speculation_misses),
              static_cast<unsigned long long>(
                  run.value().speculation_discarded));
        } else if (run.value().seeds != first_seeds) {
          std::fprintf(stderr,
                       "REPEAT NONDETERMINISM at threads=%u window=%u:\n"
                       "  first  %s\n  second %s\n",
                       threads, window, FormatSeeds(first_seeds).c_str(),
                       FormatSeeds(run.value().seeds).c_str());
          ++failures;
        }
      }

      if (!have_reference) {
        reference_seeds = first_seeds;
        have_reference = true;
      } else if (first_seeds != reference_seeds) {
        std::fprintf(stderr,
                     "SEED-SET MISMATCH at threads=%u window=%u:\n"
                     "  reference %s\n  got       %s\n",
                     threads, window, FormatSeeds(reference_seeds).c_str(),
                     FormatSeeds(first_seeds).c_str());
        ++failures;
      }
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "determinism smoke FAILED (%d mismatches)\n",
                 failures);
    return 1;
  }
  std::printf("determinism smoke OK: one seed set across all "
              "(threads, window) configurations\n");
  return 0;
}
