// Graph-store load-path scaling: for each table2 smoke dataset, compares
//   (1) parse-and-build   — text edge list -> LoadEdgeList -> weighted
//                           cascade -> weight-class index rebuild,
//   (2) cold mmap         — LoadGraphStore after evicting the store file
//                           from the page cache (posix_fadvise DONTNEED),
//   (3) warm mmap         — LoadGraphStore with the file cached (best of
//                           several runs; the steady-state bench path),
// plus the pack time, the resident-set delta attributable to each loaded
// graph after one RR batch, and the first-RR-batch latency on a freshly
// mapped graph (the cost of faulting the working set in lazily) vs a
// builder-built one. Fixed-seed RR pool hashes for built vs mapped graphs
// are compared inline — a mismatch fails the run loudly.
//
// Results are emitted as BENCH_graphstore.json (override the path with
// ATPM_BENCH_GRAPHSTORE_OUT); scripts/bench_regression_check.py enforces
// a warm-load speedup floor against bench/baselines/BENCH_graphstore.json.
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util/datasets.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/edge_list_io.h"
#include "graph/graph_store.h"
#include "graph/weighting.h"
#include "rris/sampling_engine.h"

namespace {

using namespace atpm;

constexpr int kLoadReps = 5;
constexpr uint64_t kRrBatch = 2000;

// Current resident set in bytes (VmRSS), from /proc/self/statm.
uint64_t ResidentBytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int fields = std::fscanf(statm, "%llu %llu", &total, &resident);
  std::fclose(statm);
  if (fields != 2) return 0;
  return resident * static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

void EvictFromPageCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fdatasync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

uint64_t PoolHash(const RRCollection& pool) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t i = 0; i < pool.num_sets(); ++i) {
    const auto s = pool.set(i);
    h = (h ^ s.size()) * 1099511628211ull;
    for (NodeId v : s) h = (h ^ v) * 1099511628211ull;
  }
  return h;
}

struct RrBatchResult {
  double seconds = 0.0;
  uint64_t pool_hash = 0;
  uint64_t rss_delta_bytes = 0;
};

RrBatchResult TimeRrBatch(const Graph& g, uint64_t rss_before) {
  RrBatchResult result;
  Rng rng(77);
  SerialSamplingEngine engine(g, DiffusionModel::kIndependentCascade);
  WallTimer timer;
  const RRCollection& pool =
      engine.GeneratePool(nullptr, g.num_nodes(), kRrBatch, &rng);
  result.seconds = timer.ElapsedSeconds();
  result.pool_hash = PoolHash(pool);
  const uint64_t rss_after = ResidentBytes();
  result.rss_delta_bytes = rss_after > rss_before ? rss_after - rss_before : 0;
  return result;
}

struct DatasetRow {
  std::string name;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint64_t file_bytes = 0;
  uint32_t tile_size = 0;
  double parse_build_seconds = 0.0;
  double pack_seconds = 0.0;
  double cold_load_seconds = 0.0;
  double warm_load_seconds = 0.0;
  RrBatchResult built_batch;
  RrBatchResult mapped_batch;
  bool pool_hash_match = false;

  double WarmSpeedup() const {
    return warm_load_seconds > 0.0 ? parse_build_seconds / warm_load_seconds
                                   : 0.0;
  }
  double ColdSpeedup() const {
    return cold_load_seconds > 0.0 ? parse_build_seconds / cold_load_seconds
                                   : 0.0;
  }
};

std::string TempPath(const std::string& stem) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") + "/" +
         stem;
}

bool RunDataset(const std::string& name, double scale, DatasetRow* row) {
  Result<BenchDataset> dataset = BuildDataset(name, scale, 1);
  if (!dataset.ok()) {
    std::fprintf(stderr, "build %s failed: %s\n", name.c_str(),
                 dataset.status().ToString().c_str());
    return false;
  }
  const Graph& built = dataset.value().graph;
  row->name = name;
  row->nodes = built.num_nodes();
  row->edges = built.num_edges();

  const std::string edge_path = TempPath("atpm_bench_" + name + ".txt");
  const std::string store_path = TempPath("atpm_bench_" + name + ".atpm");

  // (1) parse-and-build: the full text pipeline a store-less run pays.
  if (!SaveEdgeList(built, edge_path).ok()) return false;
  row->parse_build_seconds = 1e9;
  for (int rep = 0; rep < kLoadReps; ++rep) {
    WallTimer timer;
    Result<Graph> parsed = LoadEdgeList(edge_path);
    if (!parsed.ok()) return false;
    Graph g = std::move(parsed).value();
    ApplyWeightedCascade(&g);
    row->parse_build_seconds =
        std::min(row->parse_build_seconds, timer.ElapsedSeconds());
  }

  // Pack once (timed), then read back the on-disk metadata.
  {
    WallTimer timer;
    if (!SaveGraphStore(built, store_path).ok()) return false;
    row->pack_seconds = timer.ElapsedSeconds();
  }
  Result<GraphStoreInfo> info = ReadGraphStoreInfo(store_path);
  if (!info.ok()) return false;
  row->file_bytes = info.value().file_bytes;
  row->tile_size = info.value().tile_size;

  GraphStoreLoadOptions load;
  load.verify_payload = false;  // the out-of-core serving configuration

  // (2) cold mmap: evict, then load. One shot — the second run would be
  // warm by definition.
  EvictFromPageCache(store_path);
  {
    WallTimer timer;
    Result<Graph> mapped = LoadGraphStore(store_path, load);
    if (!mapped.ok()) return false;
    row->cold_load_seconds = timer.ElapsedSeconds();
  }

  // (3) warm mmap, best of kLoadReps.
  row->warm_load_seconds = 1e9;
  for (int rep = 0; rep < kLoadReps; ++rep) {
    WallTimer timer;
    Result<Graph> mapped = LoadGraphStore(store_path, load);
    if (!mapped.ok()) return false;
    row->warm_load_seconds =
        std::min(row->warm_load_seconds, timer.ElapsedSeconds());
  }

  // First-RR-batch latency + RSS accounting, built vs freshly mapped.
  row->built_batch = TimeRrBatch(built, ResidentBytes());
  EvictFromPageCache(store_path);
  const uint64_t rss_before_map = ResidentBytes();
  Result<Graph> mapped = LoadGraphStore(store_path, load);
  if (!mapped.ok()) return false;
  row->mapped_batch = TimeRrBatch(mapped.value(), rss_before_map);
  row->pool_hash_match =
      row->built_batch.pool_hash == row->mapped_batch.pool_hash;

  std::remove(edge_path.c_str());
  std::remove(store_path.c_str());
  return true;
}

void PrintRow(std::FILE* out, const DatasetRow& row, bool last) {
  std::fprintf(
      out,
      "    {\"dataset\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
      "\"file_bytes\": %llu, \"tile_size\": %u, "
      "\"parse_build_seconds\": %.6f, \"pack_seconds\": %.6f, "
      "\"cold_load_seconds\": %.6f, \"warm_load_seconds\": %.6f, "
      "\"warm_speedup\": %.1f, \"cold_speedup\": %.1f, "
      "\"first_rr_batch_built_seconds\": %.6f, "
      "\"first_rr_batch_mapped_seconds\": %.6f, "
      "\"rss_delta_built_bytes\": %llu, \"rss_delta_mapped_bytes\": %llu, "
      "\"pool_hash_match\": %s}%s\n",
      row.name.c_str(), static_cast<unsigned long long>(row.nodes),
      static_cast<unsigned long long>(row.edges),
      static_cast<unsigned long long>(row.file_bytes), row.tile_size,
      row.parse_build_seconds, row.pack_seconds, row.cold_load_seconds,
      row.warm_load_seconds, row.WarmSpeedup(), row.ColdSpeedup(),
      row.built_batch.seconds, row.mapped_batch.seconds,
      static_cast<unsigned long long>(row.built_batch.rss_delta_bytes),
      static_cast<unsigned long long>(row.mapped_batch.rss_delta_bytes),
      row.pool_hash_match ? "true" : "false", last ? "" : ",");
}

}  // namespace

int main() {
  const double scale = BenchScaleFromEnv();
  const std::vector<std::string> datasets = {"NetHEPT", "Epinions"};

  std::vector<DatasetRow> rows;
  bool all_hashes_match = true;
  for (const std::string& name : datasets) {
    DatasetRow row;
    if (!RunDataset(name, scale, &row)) return 1;
    std::printf(
        "%-10s n=%-8llu m=%-9llu parse+build %8.2f ms | pack %8.2f ms | "
        "cold %7.3f ms | warm %7.3f ms (%.0fx) | rr-batch built %7.2f ms "
        "mapped %7.2f ms | hash %s\n",
        row.name.c_str(), static_cast<unsigned long long>(row.nodes),
        static_cast<unsigned long long>(row.edges),
        row.parse_build_seconds * 1e3, row.pack_seconds * 1e3,
        row.cold_load_seconds * 1e3, row.warm_load_seconds * 1e3,
        row.WarmSpeedup(), row.built_batch.seconds * 1e3,
        row.mapped_batch.seconds * 1e3,
        row.pool_hash_match ? "match" : "MISMATCH");
    all_hashes_match = all_hashes_match && row.pool_hash_match;
    rows.push_back(row);
  }

  const char* out_path = std::getenv("ATPM_BENCH_GRAPHSTORE_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_graphstore.json";
  }
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"scale\": %g,\n  \"rr_batch\": %llu,\n", scale,
               static_cast<unsigned long long>(kRrBatch));
  std::fprintf(out, "  \"datasets\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    PrintRow(out, rows[i], i + 1 == rows.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);

  if (!all_hashes_match) {
    std::fprintf(stderr,
                 "FAIL: mapped graph produced a different RR pool hash\n");
    return 1;
  }
  return 0;
}
