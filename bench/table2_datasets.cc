// Table II of the paper: dataset statistics. Prints the synthetic
// stand-ins actually used by this reproduction next to the paper's
// originals (see DESIGN.md §4 for the substitution rationale).
#include <cstdio>
#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/table_printer.h"

int main() {
  const double scale = atpm::BenchScaleFromEnv();
  std::printf("=== Table II: dataset details (stand-ins at scale %.2f) ===\n",
              scale);

  atpm::TablePrinter table({"Dataset", "n", "m(arcs)", "Type", "Avg.deg",
                            "Paper n", "Paper m", "Paper avg.deg"});
  struct PaperRow {
    const char* n;
    const char* m;
    const char* deg;
  };
  const PaperRow paper[4] = {{"15.2K", "31.4K edges", "4.18"},
                             {"132K", "841K arcs", "13.4"},
                             {"655K", "1.99M edges", "6.08"},
                             {"4.85M", "69.0M arcs", "28.5"}};

  // Weight-class census per dataset: how much of the edge mass the
  // geometric-jump RR kernel samples without per-edge draws (for weighted
  // cascade, everything except tiny high-probability vectors the jump
  // gate keeps on the linear scan), and how many LT reverse picks are
  // O(1).
  atpm::TablePrinter kernel_table({"Dataset", "uniform", "few-distinct",
                                   "general", "jumpable edges", "LT O(1)"});

  int row = 0;
  for (const std::string& name : atpm::StandardDatasetNames()) {
    atpm::Result<atpm::BenchDataset> dataset =
        atpm::BuildDataset(name, scale, 42);
    if (!dataset.ok()) {
      std::fprintf(stderr, "failed to build %s: %s\n", name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    const atpm::Graph& g = dataset.value().graph;
    table.AddRow({name, std::to_string(g.num_nodes()),
                  std::to_string(g.num_edges()), dataset.value().type,
                  atpm::FormatDouble(g.AverageDegree(), 2), paper[row].n,
                  paper[row].m, paper[row].deg});
    const atpm::WeightClassProfile profile = g.InWeightClassProfile();
    kernel_table.AddRow(
        {name, std::to_string(profile.uniform_nodes),
         std::to_string(profile.few_distinct_nodes),
         std::to_string(profile.general_nodes),
         atpm::FormatDouble(100.0 * profile.JumpableEdgeFraction(), 1) + "%",
         std::to_string(profile.lt_fast_nodes)});
    ++row;
  }
  table.Print(std::cout);
  std::printf("\nAll datasets use weighted-cascade probabilities "
              "p(u,v) = 1/indeg(v), as in the paper.\n");
  std::printf("\n=== Weight-class census (geometric-jump kernel reach) ===\n");
  kernel_table.Print(std::cout);
  return 0;
}
