// Fig. 6 of the paper: running time vs number of seeds k under the uniform
// cost setting. Shares the cache of fig3_profit_uniform. The paper's
// observation: uniform-cost runs are faster than degree-proportional ones
// because profitable nodes separate from the bar with fewer samples.
#include <cstdio>

#include "bench_util/datasets.h"
#include "bench_util/grid.h"

int main() {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  config.scheme = atpm::CostScheme::kUniform;
  std::printf("=== Fig. 6: running time (s), uniform cost (scale=%.2f) ===\n",
              config.scale);

  atpm::Result<std::vector<atpm::GridCell>> cells =
      atpm::RunOrLoadProfitGrid(config, "grid_uniform");
  if (!cells.ok()) {
    std::fprintf(stderr, "grid failed: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }
  const char* panel = "abcd";
  int i = 0;
  for (const std::string& name : atpm::StandardDatasetNames()) {
    std::printf("\n--- Fig. 6(%c): %s (seconds) ---\n", panel[i++],
                name.c_str());
    atpm::PrintGridTable(cells.value(), name, "seconds");
  }
  return 0;
}
