// Ablation: the adaptive TPM pipeline under the linear threshold (LT)
// model. The paper evaluates IC only but notes that the spread function is
// monotone submodular under both IC and LT; the library supports both
// (triggering-set realizations + LT RR sets), so all algorithms run
// unchanged. This bench compares HATP/ARS/Baseline profit under the two
// models on the same graph and target set.
#include <cstdio>
#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/table_printer.h"
#include "core/ars.h"
#include "core/hatp.h"
#include "core/target_selection.h"

int main() {
  atpm::Result<atpm::BenchDataset> dataset =
      atpm::BuildDataset("HepMini", 1.0, 5);
  if (!dataset.ok()) return 1;
  const atpm::Graph& graph = dataset.value().graph;

  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(graph, 20,
                                   atpm::CostScheme::kDegreeProportional);
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }
  const atpm::ProfitProblem& problem = selection.value().problem;

  std::printf("=== Ablation: IC vs LT diffusion (n=%u, k=%u, shared "
              "targets & costs) ===\n",
              graph.num_nodes(), problem.k());
  atpm::TablePrinter table({"model", "HATP profit", "ARS profit",
                            "Baseline profit", "HATP seeds"});

  for (atpm::DiffusionModel model :
       {atpm::DiffusionModel::kIndependentCascade,
        atpm::DiffusionModel::kLinearThreshold}) {
    double hatp_sum = 0.0;
    double ars_sum = 0.0;
    double base_sum = 0.0;
    double seeds_sum = 0.0;
    const int worlds = 3;
    for (int w = 0; w < worlds; ++w) {
      atpm::Rng world_rng(1000 + w);
      atpm::Realization world =
          atpm::Realization::Sample(graph, &world_rng, model);

      atpm::HatpOptions options;
      options.model = model;
      options.sampling.num_threads = 4;
      options.sampling.max_rr_sets_per_decision = 1ull << 17;
      atpm::HatpPolicy hatp(options);
      atpm::AdaptiveEnvironment env{atpm::Realization(world)};
      atpm::Rng rng(2000 + w);
      atpm::Result<atpm::AdaptiveRunResult> run =
          hatp.Run(problem, &env, &rng);
      if (!run.ok()) return 1;
      hatp_sum += run.value().realized_profit;
      seeds_sum += static_cast<double>(run.value().seeds.size());

      atpm::ArsPolicy ars;
      atpm::AdaptiveEnvironment ars_env{atpm::Realization(world)};
      atpm::Rng ars_rng(3000 + w);
      ars_sum += ars.Run(problem, &ars_env, &ars_rng)
                     .value_or(atpm::AdaptiveRunResult{})
                     .realized_profit;

      base_sum += atpm::RealizedProfit(problem, world, problem.targets);
    }
    table.AddRow({atpm::DiffusionModelName(model),
                  atpm::FormatDouble(hatp_sum / worlds, 1),
                  atpm::FormatDouble(ars_sum / worlds, 1),
                  atpm::FormatDouble(base_sum / worlds, 1),
                  atpm::FormatDouble(seeds_sum / worlds, 1)});
  }
  table.Print(std::cout);
  std::printf("\n(The target set and costs are calibrated under IC; the LT "
              "row shows the same instance replayed under LT dynamics.)\n");
  return 0;
}
