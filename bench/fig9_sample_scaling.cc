// Fig. 9 of the paper: NSG and NDG with the sample size scaled by
// {1, 2, 4, 8, 16, 32} on Epinions (largest k, degree-proportional cost).
//   (a) running time grows linearly with the sample size;
//   (b) profit stays essentially flat — the adaptive advantage of HATP is
//       due to adaptivity, not sample count.
//
// On top of the paper's figure, this bench instruments the batched
// coverage-query layer: HATP runs once with batched rounds (one shared RR
// pool answers a round's front + rear queries) and once with the literal
// two-pools-per-round sampling, and the RR-sets-per-decision ratio between
// the two is reported. Results are also emitted as BENCH_batching.json
// (override the path with ATPM_BENCH_OUT) so the perf trajectory of the
// batching layer is machine-readable.
//
// A third HATP run enables speculative cross-candidate pipelining
// (lookahead_window > 0): each round's pool also answers the first-round
// queries of upcoming candidates, so decisions whose epoch never moved
// start with a free round. The pipelined-vs-batched count-pools-per-
// decision ratio and the speculation hit rate are emitted as
// BENCH_pipelining.json (override with ATPM_BENCH_PIPELINE_OUT).
//
// Finally, the RR-generation kernel is compared end to end: two more HATP
// runs (batched rounds, no lookahead) under the geometric-jump and
// per-edge kernels, with the engine injected so its lifetime SamplingStats
// (rng_draws / edges_examined) are readable afterwards. The
// draws-per-edge ratio and wall-clock speedup are emitted as
// BENCH_kernel_e2e.json (override with ATPM_BENCH_KERNEL_OUT); the
// microbenchmark-grade kernel series lives in BENCH_kernel.json, written
// by micro_substrates under --benchmark_filter=Kernel.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/datasets.h"
#include "bench_util/experiment.h"
#include "bench_util/grid.h"
#include "bench_util/table_printer.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/hatp.h"
#include "core/nonadaptive_greedy.h"
#include "core/target_selection.h"

namespace {

// Per-mode HATP sampling-effort summary derived from the run telemetry.
struct HatpEffort {
  uint64_t total_rr_sets = 0;
  uint64_t decisions = 0;  // examined candidates (sampled or served free)
  uint64_t coverage_queries = 0;
  uint64_t count_pools = 0;
  uint64_t speculation_hits = 0;
  uint64_t speculation_misses = 0;
  uint64_t speculation_discarded = 0;
  double seconds = 0.0;
  double profit = 0.0;

  double RrSetsPerDecision() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(total_rr_sets) /
                                static_cast<double>(decisions);
  }
  double PoolsPerDecision() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(count_pools) /
                                static_cast<double>(decisions);
  }
  double SpeculationHitRate() const {
    const uint64_t attempts = speculation_hits + speculation_misses;
    return attempts == 0 ? 0.0
                         : static_cast<double>(speculation_hits) /
                               static_cast<double>(attempts);
  }
  double ReuseRatio() const {
    return count_pools == 0 ? 0.0
                            : static_cast<double>(coverage_queries) /
                                  static_cast<double>(count_pools);
  }
};

HatpEffort SummarizeHatp(const atpm::AdaptiveRunResult& run, double seconds) {
  HatpEffort effort;
  effort.total_rr_sets = run.total_rr_sets;
  effort.coverage_queries = run.total_coverage_queries;
  effort.count_pools = run.total_count_pools;
  effort.speculation_hits = run.speculation_hits;
  effort.speculation_misses = run.speculation_misses;
  effort.speculation_discarded = run.speculation_discarded;
  effort.seconds = seconds;
  effort.profit = run.realized_profit;
  for (const atpm::AdaptiveStepRecord& step : run.steps) {
    if (step.rr_sets_used > 0 || step.first_round_speculative) {
      ++effort.decisions;
    }
  }
  return effort;
}

void PrintEffortJson(std::FILE* out, const char* key,
                     const HatpEffort& effort) {
  std::fprintf(out,
               "    \"%s\": {\"total_rr_sets\": %llu, \"decisions\": %llu, "
               "\"rr_sets_per_decision\": %.1f, \"coverage_queries\": %llu, "
               "\"count_pools\": %llu, \"pools_per_decision\": %.3f, "
               "\"reuse_ratio\": %.3f, \"speculation_hits\": %llu, "
               "\"speculation_misses\": %llu, "
               "\"speculation_discarded\": %llu, "
               "\"speculation_hit_rate\": %.3f, "
               "\"seconds\": %.3f, \"profit\": %.2f}",
               key, static_cast<unsigned long long>(effort.total_rr_sets),
               static_cast<unsigned long long>(effort.decisions),
               effort.RrSetsPerDecision(),
               static_cast<unsigned long long>(effort.coverage_queries),
               static_cast<unsigned long long>(effort.count_pools),
               effort.PoolsPerDecision(), effort.ReuseRatio(),
               static_cast<unsigned long long>(effort.speculation_hits),
               static_cast<unsigned long long>(effort.speculation_misses),
               static_cast<unsigned long long>(effort.speculation_discarded),
               effort.SpeculationHitRate(), effort.seconds, effort.profit);
}

}  // namespace

int main() {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  atpm::Result<atpm::BenchDataset> dataset =
      atpm::BuildDataset("Epinions", config.scale, config.seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const atpm::Graph& graph = dataset.value().graph;
  const uint32_t k = atpm::BenchSeedGrid(graph.num_nodes() / 4).back();

  atpm::TargetSelectionOptions sel_options;
  sel_options.seed = config.seed + k;
  sel_options.num_threads = config.threads;
  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(
          graph, k, atpm::CostScheme::kDegreeProportional, sel_options);
  if (!selection.ok()) {
    std::fprintf(stderr, "target selection failed: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }
  const atpm::ProfitProblem& problem = selection.value().problem;
  atpm::ExperimentRunner runner(problem, config.realizations, config.seed);

  // --- HATP, batched vs unbatched rounds, on the same world and seed. The
  // RR-sets-per-decision ratio is the headline number of the batching
  // layer: one shared pool per halving round vs two. The comparison runs
  // get budget headroom above the configured cap — a cap-truncated
  // decision spends the cap in either mode, which measures the budget, not
  // the batching (RR sets are counted, never stored, so this costs time,
  // not memory).
  atpm::HatpOptions hatp_options;
  hatp_options.sampling.max_rr_sets_per_decision = std::max<uint64_t>(
      config.hatp_rr_cap, atpm::SamplingOptions{}.max_rr_sets_per_decision);
  hatp_options.sampling.num_threads = config.threads;
  constexpr uint32_t kLookaheadWindow = 4;
  // Modes: 0 = batched rounds, 1 = the literal two pools per round,
  // 2 = batched + speculative cross-candidate pipelining.
  constexpr int kNumModes = 3;
  const char* mode_names[kNumModes] = {"batched", "unbatched", "pipelined"};
  HatpEffort efforts[kNumModes];
  atpm::AdaptiveRunResult batched_run;
  for (int mode = 0; mode < kNumModes; ++mode) {
    atpm::HatpOptions options = hatp_options;
    options.sampling.batched_rounds = mode != 1;
    options.sampling.lookahead_window = mode == 2 ? kLookaheadWindow : 0;
    atpm::HatpPolicy hatp(options);
    atpm::AdaptiveEnvironment env{atpm::Realization(runner.worlds()[0])};
    atpm::Rng rng(runner.WorldSeed(0));
    atpm::WallTimer timer;
    atpm::Result<atpm::AdaptiveRunResult> run =
        hatp.Run(problem, &env, &rng);
    if (!run.ok()) {
      std::fprintf(stderr, "HATP (%s) failed: %s\n", mode_names[mode],
                   run.status().ToString().c_str());
      return 1;
    }
    efforts[mode] = SummarizeHatp(run.value(), timer.ElapsedSeconds());
    if (mode == 0) batched_run = std::move(run).value();
  }
  const double per_decision_ratio =
      efforts[0].RrSetsPerDecision() > 0.0
          ? efforts[1].RrSetsPerDecision() / efforts[0].RrSetsPerDecision()
          : 0.0;
  const double pools_per_decision_ratio =
      efforts[2].PoolsPerDecision() > 0.0
          ? efforts[0].PoolsPerDecision() / efforts[2].PoolsPerDecision()
          : 0.0;

  std::printf("=== Batched coverage-query layer: HATP RR-set effort ===\n");
  atpm::TablePrinter effort_table(
      {"mode", "RR sets", "decisions", "RR/decision", "queries", "pools",
       "pools/dec", "reuse", "spec hit", "time(s)"});
  for (int mode = 0; mode < kNumModes; ++mode) {
    effort_table.AddRow(
        {mode_names[mode], std::to_string(efforts[mode].total_rr_sets),
         std::to_string(efforts[mode].decisions),
         atpm::FormatDouble(efforts[mode].RrSetsPerDecision(), 1),
         std::to_string(efforts[mode].coverage_queries),
         std::to_string(efforts[mode].count_pools),
         atpm::FormatDouble(efforts[mode].PoolsPerDecision(), 2),
         atpm::FormatDouble(efforts[mode].ReuseRatio(), 2),
         atpm::FormatDouble(efforts[mode].SpeculationHitRate(), 2),
         atpm::FormatSeconds(efforts[mode].seconds)});
  }
  effort_table.Print(std::cout);
  std::printf("RR sets per decision: unbatched/batched = %.2fx\n",
              per_decision_ratio);
  std::printf(
      "Count pools per decision: batched/pipelined = %.2fx "
      "(lookahead %u, hit rate %.2f, discarded %llu)\n\n",
      pools_per_decision_ratio, kLookaheadWindow,
      efforts[2].SpeculationHitRate(),
      static_cast<unsigned long long>(efforts[2].speculation_discarded));

  // --- Kernel comparison: the same batched HATP decision loop under the
  // geometric-jump vs per-edge kernels. Engines are injected so the
  // lifetime draw/edge accounting is readable after the run (the run
  // telemetry itself carries RR-set counts only).
  struct KernelRun {
    double seconds = 0.0;
    double profit = 0.0;
    uint64_t rr_sets = 0;
    uint64_t rng_draws = 0;
    uint64_t edges_examined = 0;
    double DrawsPerEdge() const {
      return edges_examined == 0 ? 0.0
                                 : static_cast<double>(rng_draws) /
                                       static_cast<double>(edges_examined);
    }
  };
  const char* kernel_names[2] = {"geometric-jump", "per-edge"};
  KernelRun kernel_runs[2];
  for (int kmode = 0; kmode < 2; ++kmode) {
    atpm::HatpOptions options = hatp_options;
    options.sampling.kernel = kmode == 0 ? atpm::SamplingKernel::kGeometricJump
                                         : atpm::SamplingKernel::kPerEdge;
    std::unique_ptr<atpm::SamplingEngine> engine = atpm::CreateSamplingEngine(
        graph, options.model, options.sampling.EngineOptions());
    atpm::HatpPolicy hatp(options);
    hatp.set_engine(engine.get());
    atpm::AdaptiveEnvironment env{atpm::Realization(runner.worlds()[0])};
    atpm::Rng rng(runner.WorldSeed(0));
    atpm::WallTimer timer;
    atpm::Result<atpm::AdaptiveRunResult> run = hatp.Run(problem, &env, &rng);
    if (!run.ok()) {
      std::fprintf(stderr, "HATP (%s kernel) failed: %s\n",
                   kernel_names[kmode], run.status().ToString().c_str());
      return 1;
    }
    KernelRun& record = kernel_runs[kmode];
    record.seconds = timer.ElapsedSeconds();
    record.profit = run.value().realized_profit;
    record.rr_sets = run.value().total_rr_sets;
    record.rng_draws = engine->stats().rng_draws;
    record.edges_examined = engine->stats().edges_examined;
  }
  const double draws_per_edge_ratio =
      kernel_runs[0].DrawsPerEdge() > 0.0
          ? kernel_runs[1].DrawsPerEdge() / kernel_runs[0].DrawsPerEdge()
          : 0.0;
  const double kernel_speedup = kernel_runs[0].seconds > 0.0
                                    ? kernel_runs[1].seconds /
                                          kernel_runs[0].seconds
                                    : 0.0;

  std::printf("=== RR-generation kernel: HATP end to end ===\n");
  atpm::TablePrinter kernel_table(
      {"kernel", "RR sets", "RNG draws", "edges", "draws/edge", "time(s)",
       "profit"});
  for (int kmode = 0; kmode < 2; ++kmode) {
    const KernelRun& record = kernel_runs[kmode];
    kernel_table.AddRow(
        {kernel_names[kmode], std::to_string(record.rr_sets),
         std::to_string(record.rng_draws),
         std::to_string(record.edges_examined),
         atpm::FormatDouble(record.DrawsPerEdge(), 3),
         atpm::FormatSeconds(record.seconds),
         atpm::FormatDouble(record.profit, 1)});
  }
  kernel_table.Print(std::cout);
  std::printf(
      "Draws per edge: per-edge/geometric-jump = %.2fx; kernel speedup = "
      "%.2fx\n\n",
      draws_per_edge_ratio, kernel_speedup);

  // Baseline sample size: HATP's largest per-iteration spend on one world
  // (the paper's NSG/NDG sizing rule; shared-pool units under batching),
  // clamped back to the configured cap's shared-pool ceiling (cap/2, since
  // the cap is in R1+R2 units) so the scaling series stays at the
  // historical magnitude even though the comparison runs had headroom.
  const uint64_t theta_base = std::max<uint64_t>(
      std::min<uint64_t>(batched_run.max_rr_sets_per_iteration,
                         config.hatp_rr_cap / 2),
      1024);

  std::printf("=== Fig. 9: NSG/NDG vs sample size, Epinions, k=%u, "
              "degree cost (base theta=%llu) ===\n",
              k, static_cast<unsigned long long>(theta_base));
  atpm::TablePrinter table({"scale", "NSG time(s)", "NDG time(s)",
                            "NSG profit", "NDG profit", "RR sets",
                            "reuse(q/pool)"});

  struct ScalingRow {
    uint32_t scale;
    double nsg_time, ndg_time, nsg_profit, ndg_profit;
    uint64_t rr_sets, batched_queries;
  };
  std::vector<ScalingRow> rows;

  for (uint32_t scale : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const uint64_t theta = theta_base * scale;

    atpm::Rng nsg_rng(config.seed * 17 + scale);
    atpm::WallTimer nsg_timer;
    atpm::Result<atpm::NonadaptiveResult> nsg =
        atpm::RunNsg(problem, theta, &nsg_rng);
    const double nsg_time = nsg_timer.ElapsedSeconds();
    if (!nsg.ok()) return 1;

    atpm::Rng ndg_rng(config.seed * 19 + scale);
    atpm::WallTimer ndg_timer;
    atpm::Result<atpm::NonadaptiveResult> ndg =
        atpm::RunNdg(problem, theta, &ndg_rng);
    const double ndg_time = ndg_timer.ElapsedSeconds();
    if (!ndg.ok()) return 1;

    ScalingRow row;
    row.scale = scale;
    row.nsg_time = nsg_time;
    row.ndg_time = ndg_time;
    row.nsg_profit =
        runner.EvaluateFixedSet(nsg.value().seeds, 0.0).mean_profit;
    row.ndg_profit =
        runner.EvaluateFixedSet(ndg.value().seeds, 0.0).mean_profit;
    // Each greedy samples its own pool of theta sets and answers its whole
    // target sweep on it.
    row.rr_sets = nsg.value().num_rr_sets + ndg.value().num_rr_sets;
    row.batched_queries =
        nsg.value().batched_queries + ndg.value().batched_queries;
    rows.push_back(row);

    table.AddRow({std::to_string(scale), atpm::FormatSeconds(nsg_time),
                  atpm::FormatSeconds(ndg_time),
                  atpm::FormatDouble(row.nsg_profit, 1),
                  atpm::FormatDouble(row.ndg_profit, 1),
                  std::to_string(row.rr_sets),
                  atpm::FormatDouble(
                      static_cast<double>(row.batched_queries) / 2.0, 1)});
  }
  table.Print(std::cout);
  std::printf("\nHATP profit on the same instance (for reference): %.1f\n",
              batched_run.realized_profit);

  // --- Machine-readable trajectory for CI artifacts.
  const char* out_path = std::getenv("ATPM_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_batching.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fig9_sample_scaling\",\n");
  std::fprintf(out, "  \"dataset\": \"Epinions\",\n  \"k\": %u,\n", k);
  std::fprintf(out, "  \"hatp\": {\n");
  PrintEffortJson(out, "batched", efforts[0]);
  std::fprintf(out, ",\n");
  PrintEffortJson(out, "unbatched", efforts[1]);
  std::fprintf(out, ",\n    \"rr_sets_per_decision_ratio\": %.3f\n  },\n",
               per_decision_ratio);
  std::fprintf(out, "  \"scaling\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& row = rows[i];
    std::fprintf(out,
                 "    {\"scale\": %u, \"nsg_seconds\": %.3f, "
                 "\"ndg_seconds\": %.3f, \"nsg_profit\": %.2f, "
                 "\"ndg_profit\": %.2f, \"rr_sets\": %llu, "
                 "\"batched_queries\": %llu}%s\n",
                 row.scale, row.nsg_time, row.ndg_time, row.nsg_profit,
                 row.ndg_profit,
                 static_cast<unsigned long long>(row.rr_sets),
                 static_cast<unsigned long long>(row.batched_queries),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);

  // --- Pipelining trajectory: pipelined vs plain batched rounds.
  const char* pipeline_path = std::getenv("ATPM_BENCH_PIPELINE_OUT");
  if (pipeline_path == nullptr) pipeline_path = "BENCH_pipelining.json";
  std::FILE* pipeline_out = std::fopen(pipeline_path, "w");
  if (pipeline_out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", pipeline_path);
    return 1;
  }
  std::fprintf(pipeline_out, "{\n  \"benchmark\": \"fig9_pipelining\",\n");
  std::fprintf(pipeline_out,
               "  \"dataset\": \"Epinions\",\n  \"k\": %u,\n"
               "  \"lookahead_window\": %u,\n  \"hatp\": {\n",
               k, kLookaheadWindow);
  PrintEffortJson(pipeline_out, "batched", efforts[0]);
  std::fprintf(pipeline_out, ",\n");
  PrintEffortJson(pipeline_out, "pipelined", efforts[2]);
  std::fprintf(pipeline_out,
               ",\n    \"count_pools_per_decision_ratio\": %.3f\n  }\n}\n",
               pools_per_decision_ratio);
  std::fclose(pipeline_out);
  std::printf("wrote %s\n", pipeline_path);

  // --- End-to-end kernel trajectory.
  const char* kernel_path = std::getenv("ATPM_BENCH_KERNEL_OUT");
  if (kernel_path == nullptr) kernel_path = "BENCH_kernel_e2e.json";
  std::FILE* kernel_out = std::fopen(kernel_path, "w");
  if (kernel_out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", kernel_path);
    return 1;
  }
  std::fprintf(kernel_out, "{\n  \"benchmark\": \"fig9_kernel\",\n");
  std::fprintf(kernel_out,
               "  \"dataset\": \"Epinions\",\n  \"k\": %u,\n"
               "  \"hatp\": {\n",
               k);
  for (int kmode = 0; kmode < 2; ++kmode) {
    const KernelRun& record = kernel_runs[kmode];
    std::fprintf(kernel_out,
                 "    \"%s\": {\"rr_sets\": %llu, \"rng_draws\": %llu, "
                 "\"edges_examined\": %llu, \"draws_per_edge\": %.4f, "
                 "\"seconds\": %.3f, \"profit\": %.2f},\n",
                 kernel_names[kmode],
                 static_cast<unsigned long long>(record.rr_sets),
                 static_cast<unsigned long long>(record.rng_draws),
                 static_cast<unsigned long long>(record.edges_examined),
                 record.DrawsPerEdge(), record.seconds, record.profit);
  }
  std::fprintf(kernel_out,
               "    \"draws_per_edge_ratio\": %.3f,\n"
               "    \"kernel_speedup\": %.3f\n  }\n}\n",
               draws_per_edge_ratio, kernel_speedup);
  std::fclose(kernel_out);
  std::printf("wrote %s\n", kernel_path);

  // --- Observability artifacts. When tracing is on (ATPM_TRACE=1) the
  // whole run above was recorded as nested decision -> round -> pool-fill
  // spans and mirrored into the process metric registry; persist both so
  // CI can upload the timeline (Perfetto / chrome://tracing loadable) and
  // sanity-check the metric run-report.
  if (atpm::obs::TraceEnabled()) {
    const char* prefix = std::getenv("ATPM_OBS_OUT_PREFIX");
    if (prefix == nullptr) prefix = "fig9";
    const std::string trace_json = std::string(prefix) + "_trace.json";
    const std::string trace_bin = std::string(prefix) + "_trace.atrace";
    for (const auto& [path, status] :
         {std::pair(trace_json, atpm::obs::WriteChromeTrace(trace_json)),
          std::pair(trace_bin, atpm::obs::WriteBinaryTrace(trace_bin))}) {
      if (!status.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     status.ToString().c_str());
        return 1;
      }
    }
    const std::pair<std::string, std::string> reports[] = {
        {std::string(prefix) + "_metrics.json",
         atpm::obs::MetricsRegistry::Global().ExportJson()},
        {std::string(prefix) + "_metrics.prom",
         atpm::obs::MetricsRegistry::Global().ExportPrometheus()},
    };
    for (const auto& [path, body] : reports) {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      std::fputs(body.c_str(), f);
      std::fclose(f);
    }
    std::printf(
        "wrote %s_trace.{json,atrace} + %s_metrics.{json,prom} "
        "(%zu spans kept, %llu dropped)\n",
        prefix, prefix, atpm::obs::CollectTraceEvents().size(),
        static_cast<unsigned long long>(atpm::obs::DroppedTraceEvents()));
  }
  return 0;
}
