// Fig. 9 of the paper: NSG and NDG with the sample size scaled by
// {1, 2, 4, 8, 16, 32} on Epinions (largest k, degree-proportional cost).
//   (a) running time grows linearly with the sample size;
//   (b) profit stays essentially flat — the adaptive advantage of HATP is
//       due to adaptivity, not sample count.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/experiment.h"
#include "bench_util/grid.h"
#include "bench_util/table_printer.h"
#include "common/timer.h"
#include "core/hatp.h"
#include "core/nonadaptive_greedy.h"
#include "core/target_selection.h"

int main() {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  atpm::Result<atpm::BenchDataset> dataset =
      atpm::BuildDataset("Epinions", config.scale, config.seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const atpm::Graph& graph = dataset.value().graph;
  const uint32_t k = atpm::BenchSeedGrid(graph.num_nodes() / 4).back();

  atpm::TargetSelectionOptions sel_options;
  sel_options.seed = config.seed + k;
  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(
          graph, k, atpm::CostScheme::kDegreeProportional, sel_options);
  if (!selection.ok()) {
    std::fprintf(stderr, "target selection failed: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }
  const atpm::ProfitProblem& problem = selection.value().problem;
  atpm::ExperimentRunner runner(problem, config.realizations, config.seed);

  // Baseline sample size: HATP's largest per-iteration spend on one world
  // (the paper's NSG/NDG sizing rule).
  atpm::HatpOptions hatp_options;
  hatp_options.max_rr_sets_per_decision = config.hatp_rr_cap;
  hatp_options.num_threads = config.threads;
  atpm::HatpPolicy hatp(hatp_options);
  atpm::AdaptiveEnvironment env{atpm::Realization(runner.worlds()[0])};
  atpm::Rng hatp_rng(runner.WorldSeed(0));
  atpm::Result<atpm::AdaptiveRunResult> hatp_run =
      hatp.Run(problem, &env, &hatp_rng);
  if (!hatp_run.ok()) {
    std::fprintf(stderr, "HATP failed: %s\n",
                 hatp_run.status().ToString().c_str());
    return 1;
  }
  const uint64_t theta_base = std::max<uint64_t>(
      hatp_run.value().max_rr_sets_per_iteration / 2, 1024);

  std::printf("=== Fig. 9: NSG/NDG vs sample size, Epinions, k=%u, "
              "degree cost (base theta=%llu) ===\n",
              k, static_cast<unsigned long long>(theta_base));
  atpm::TablePrinter table({"scale", "NSG time(s)", "NDG time(s)",
                            "NSG profit", "NDG profit"});

  for (uint32_t scale : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const uint64_t theta = theta_base * scale;

    atpm::Rng nsg_rng(config.seed * 17 + scale);
    atpm::WallTimer nsg_timer;
    atpm::Result<atpm::NonadaptiveResult> nsg =
        atpm::RunNsg(problem, theta, &nsg_rng);
    const double nsg_time = nsg_timer.ElapsedSeconds();
    if (!nsg.ok()) return 1;

    atpm::Rng ndg_rng(config.seed * 19 + scale);
    atpm::WallTimer ndg_timer;
    atpm::Result<atpm::NonadaptiveResult> ndg =
        atpm::RunNdg(problem, theta, &ndg_rng);
    const double ndg_time = ndg_timer.ElapsedSeconds();
    if (!ndg.ok()) return 1;

    table.AddRow(
        {std::to_string(scale), atpm::FormatSeconds(nsg_time),
         atpm::FormatSeconds(ndg_time),
         atpm::FormatDouble(
             runner.EvaluateFixedSet(nsg.value().seeds, 0.0).mean_profit, 1),
         atpm::FormatDouble(
             runner.EvaluateFixedSet(ndg.value().seeds, 0.0).mean_profit,
             1)});
  }
  table.Print(std::cout);
  std::printf("\nHATP profit on the same instance (for reference): %.1f\n",
              hatp_run.value().realized_profit);
  return 0;
}
