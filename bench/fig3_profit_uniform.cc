// Fig. 3 of the paper: profit vs number of seeds k under the uniform cost
// setting (same algorithms and datasets as Fig. 2). The paper's headline
// observations: profits exceed the degree-proportional setting by ~50%,
// and the adaptive/nonadaptive gap narrows.
#include <cstdio>

#include "bench_util/datasets.h"
#include "bench_util/grid.h"

int main() {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  config.scheme = atpm::CostScheme::kUniform;
  std::printf("=== Fig. 3: profit, uniform cost "
              "(scale=%.2f, %u realizations) ===\n",
              config.scale, config.realizations);

  atpm::Result<std::vector<atpm::GridCell>> cells =
      atpm::RunOrLoadProfitGrid(config, "grid_uniform");
  if (!cells.ok()) {
    std::fprintf(stderr, "grid failed: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }
  const char* panel = "abcd";
  int i = 0;
  for (const std::string& name : atpm::StandardDatasetNames()) {
    std::printf("\n--- Fig. 3(%c): %s (profit) ---\n", panel[i++],
                name.c_str());
    atpm::PrintGridTable(cells.value(), name, "profit");
  }
  return 0;
}
