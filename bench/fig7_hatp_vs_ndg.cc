// Fig. 7 of the paper: profits of HATP and NDG on LiveJournal under
// predefined per-node costs (c(V) = λn), with the target set T derived by
// NDG. Panels: (a) degree-proportional cost, (b) uniform cost. The paper's
// shape: HATP wins by ~10% (degree) / ~15% (uniform), and the advantage
// grows as λ shrinks (larger T).
#include "predefined_common.h"

int main() {
  return atpm_bench::RunPredefinedFigure(atpm::TargetMethod::kNdg, "Fig. 7",
                                         "NDG");
}
