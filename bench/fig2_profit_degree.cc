// Fig. 2 of the paper: profit vs number of seeds k under the
// degree-proportional cost setting, on all four datasets, for HATP,
// ADDATP, HNTP, NSG, NDG, ARS and the Baseline (profit of the whole
// target set T). "OOM" marks budget-infeasible ADDATP cells, mirroring
// the paper's filled-triangle out-of-memory marker.
#include <cstdio>

#include "bench_util/datasets.h"
#include "bench_util/grid.h"

int main() {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  config.scheme = atpm::CostScheme::kDegreeProportional;
  std::printf("=== Fig. 2: profit, degree-proportional cost "
              "(scale=%.2f, %u realizations) ===\n",
              config.scale, config.realizations);

  atpm::Result<std::vector<atpm::GridCell>> cells =
      atpm::RunOrLoadProfitGrid(config, "grid_degree");
  if (!cells.ok()) {
    std::fprintf(stderr, "grid failed: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }
  const char* panel = "abcd";
  int i = 0;
  for (const std::string& name : atpm::StandardDatasetNames()) {
    std::printf("\n--- Fig. 2(%c): %s (profit) ---\n", panel[i++],
                name.c_str());
    atpm::PrintGridTable(cells.value(), name, "profit");
  }
  return 0;
}
