// Ablation: storage-free conditional-coverage counting (with early abort)
// vs the naive generate-store-scan pipeline.
//
// ADDATP/HATP use each per-round RR pool for exactly one Cov(u | base)
// query. CountCovering folds the query into generation: no pool storage,
// and a reverse BFS aborts the moment it touches `base`. This ablation
// measures both implementations on identical workloads.
#include <cstdio>
#include <iostream>

#include "bench_util/table_printer.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/weighting.h"
#include "rris/rr_collection.h"
#include "rris/rr_set.h"

int main() {
  atpm::Rng graph_rng(7);
  atpm::BarabasiAlbertOptions options;
  options.num_nodes = 20000;
  options.edges_per_node = 3;
  atpm::Graph g =
      atpm::GenerateBarabasiAlbert(options, &graph_rng).value_or(
          atpm::Graph());
  if (g.num_nodes() == 0) return 1;
  atpm::ApplyWeightedCascade(&g);

  // Rear-style base: the most connected nodes (they appear in many RR
  // sets, so early abort fires often — the realistic HATP regime).
  atpm::BitVector base(g.num_nodes());
  for (atpm::NodeId v = 1; v <= 64; ++v) base.Set(v);
  const atpm::NodeId u = 0;

  std::printf("=== Ablation: counting generation vs store+scan "
              "(n=%u, |base|=64) ===\n",
              g.num_nodes());
  atpm::TablePrinter table({"theta", "count+abort (s)", "store+scan (s)",
                            "speedup", "estimates agree?"});

  for (uint64_t theta : {1u << 14, 1u << 16, 1u << 18}) {
    atpm::RRSetGenerator counting_gen(g);
    atpm::Rng rng_a(11);
    atpm::WallTimer count_timer;
    const uint64_t counted =
        counting_gen.CountCovering(nullptr, g.num_nodes(), theta, u, &base,
                                   &rng_a);
    const double count_seconds = count_timer.ElapsedSeconds();

    atpm::RRSetGenerator storing_gen(g);
    atpm::RRCollection pool(g.num_nodes());
    atpm::Rng rng_b(11);
    atpm::WallTimer store_timer;
    pool.Generate(&storing_gen, nullptr, g.num_nodes(), theta, &rng_b);
    const uint64_t scanned = pool.ConditionalCoverage(u, base);
    const double store_seconds = store_timer.ElapsedSeconds();

    const double cov_a = static_cast<double>(counted) / theta;
    const double cov_b = static_cast<double>(scanned) / theta;
    table.AddRow(
        {std::to_string(theta), atpm::FormatSeconds(count_seconds),
         atpm::FormatSeconds(store_seconds),
         atpm::FormatDouble(store_seconds / std::max(count_seconds, 1e-9),
                            1),
         std::abs(cov_a - cov_b) < 0.02 ? "yes" : "NO"});
  }
  table.Print(std::cout);
  return 0;
}
