// Fig. 8 of the paper: profits of HATP and NSG on LiveJournal under
// predefined per-node costs, with T derived by NSG. The paper's shape:
// HATP's improvement over NSG (~5%) is smaller than over NDG (Fig. 7),
// and again grows with the target set size.
#include "predefined_common.h"

int main() {
  return atpm_bench::RunPredefinedFigure(atpm::TargetMethod::kNsg, "Fig. 8",
                                         "NSG");
}
