// Fig. 5 of the paper: running time vs number of seeds k under the
// degree-proportional cost setting. Reuses the cached runs of
// fig2_profit_degree when available (adaptive times are per-world wall
// clock; nonadaptive times are one-shot selection cost; ARS is omitted in
// the paper as negligible but printed here for completeness).
#include <cstdio>

#include "bench_util/datasets.h"
#include "bench_util/grid.h"

int main() {
  atpm::GridConfig config = atpm::GridConfig::FromEnv();
  config.scheme = atpm::CostScheme::kDegreeProportional;
  std::printf("=== Fig. 5: running time (s), degree-proportional cost "
              "(scale=%.2f) ===\n",
              config.scale);

  atpm::Result<std::vector<atpm::GridCell>> cells =
      atpm::RunOrLoadProfitGrid(config, "grid_degree");
  if (!cells.ok()) {
    std::fprintf(stderr, "grid failed: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }
  const char* panel = "abcd";
  int i = 0;
  for (const std::string& name : atpm::StandardDatasetNames()) {
    std::printf("\n--- Fig. 5(%c): %s (seconds) ---\n", panel[i++],
                name.c_str());
    atpm::PrintGridTable(cells.value(), name, "seconds");
  }
  return 0;
}
