// google-benchmark microbenchmarks for the algorithm kernels: one HATP
// seed decision, full adaptive runs on a small instance, the fixed-pool
// greedy passes (NSG/NDG engines), greedy max coverage, and IMM.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/addatp.h"
#include "core/ars.h"
#include "core/hatp.h"
#include "core/nonadaptive_greedy.h"
#include "core/target_selection.h"
#include "graph/generators.h"
#include "graph/weighting.h"
#include "im/greedy_coverage.h"
#include "im/imm.h"
#include "rris/rr_collection.h"
#include "rris/rr_set.h"

namespace atpm {
namespace {

struct BenchInstance {
  Graph graph;
  ProfitProblem problem;
};

// One shared small social-graph TPM instance.
const BenchInstance& Instance() {
  static BenchInstance* instance = [] {
    auto* inst = new BenchInstance();
    Rng rng(7);
    BarabasiAlbertOptions options;
    options.num_nodes = 4000;
    options.edges_per_node = 3;
    inst->graph = GenerateBarabasiAlbert(options, &rng).value();
    ApplyWeightedCascade(&inst->graph);

    TargetSelectionOptions sel;
    sel.seed = 3;
    Result<TargetSelectionResult> selection = BuildTopKTargetProblem(
        inst->graph, 20, CostScheme::kDegreeProportional, sel);
    ATPM_CHECK(selection.ok());
    inst->problem = selection.value().problem;
    inst->problem.graph = &inst->graph;
    return inst;
  }();
  return *instance;
}

void BM_HatpFullRun(benchmark::State& state) {
  const BenchInstance& inst = Instance();
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 1ull << 16;
  options.sampling.num_threads = static_cast<uint32_t>(state.range(0));
  HatpPolicy policy(options);
  uint64_t world_seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng world_rng(++world_seed);
    AdaptiveEnvironment env(Realization::Sample(inst.graph, &world_rng));
    Rng rng(world_seed * 3 + 1);
    state.ResumeTiming();
    Result<AdaptiveRunResult> run = policy.Run(inst.problem, &env, &rng);
    ATPM_CHECK(run.ok());
    benchmark::DoNotOptimize(run.value().realized_profit);
  }
}
BENCHMARK(BM_HatpFullRun)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_AddAtpFullRunCapped(benchmark::State& state) {
  const BenchInstance& inst = Instance();
  AddAtpOptions options;
  options.sampling.max_rr_sets_per_decision = 1ull << 16;
  options.fail_on_budget_exhausted = false;
  AddAtpPolicy policy(options);
  uint64_t world_seed = 100;
  for (auto _ : state) {
    state.PauseTiming();
    Rng world_rng(++world_seed);
    AdaptiveEnvironment env(Realization::Sample(inst.graph, &world_rng));
    Rng rng(world_seed * 3 + 1);
    state.ResumeTiming();
    Result<AdaptiveRunResult> run = policy.Run(inst.problem, &env, &rng);
    ATPM_CHECK(run.ok());
    benchmark::DoNotOptimize(run.value().realized_profit);
  }
}
BENCHMARK(BM_AddAtpFullRunCapped)->Unit(benchmark::kMillisecond);

void BM_ArsFullRun(benchmark::State& state) {
  const BenchInstance& inst = Instance();
  ArsPolicy policy;
  uint64_t world_seed = 200;
  for (auto _ : state) {
    Rng world_rng(++world_seed);
    AdaptiveEnvironment env(Realization::Sample(inst.graph, &world_rng));
    Rng rng(world_seed);
    Result<AdaptiveRunResult> run = policy.Run(inst.problem, &env, &rng);
    ATPM_CHECK(run.ok());
    benchmark::DoNotOptimize(run.value().realized_profit);
  }
}
BENCHMARK(BM_ArsFullRun)->Unit(benchmark::kMillisecond);

void BM_NsgSelection(benchmark::State& state) {
  const BenchInstance& inst = Instance();
  const uint64_t theta = static_cast<uint64_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    Result<NonadaptiveResult> result = RunNsg(inst.problem, theta, &rng);
    ATPM_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().estimated_profit);
  }
}
BENCHMARK(BM_NsgSelection)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

void BM_NdgSelection(benchmark::State& state) {
  const BenchInstance& inst = Instance();
  const uint64_t theta = static_cast<uint64_t>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    Result<NonadaptiveResult> result = RunNdg(inst.problem, theta, &rng);
    ATPM_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().estimated_profit);
  }
}
BENCHMARK(BM_NdgSelection)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyMaxCoverage(benchmark::State& state) {
  const BenchInstance& inst = Instance();
  RRSetGenerator generator(inst.graph);
  RRCollection pool(inst.graph.num_nodes());
  Rng rng(17);
  pool.Generate(&generator, nullptr, inst.graph.num_nodes(), 1 << 14, &rng);
  for (auto _ : state) {
    RRCollection copy = pool;  // greedy mutates the index lazily
    GreedyCoverageResult result = GreedyMaxCoverage(&copy, 20);
    benchmark::DoNotOptimize(result.covered);
  }
}
BENCHMARK(BM_GreedyMaxCoverage)->Unit(benchmark::kMillisecond);

void BM_ImmTargetSelection(benchmark::State& state) {
  const BenchInstance& inst = Instance();
  ImmOptions options;
  options.seed = 5;
  for (auto _ : state) {
    Result<ImmResult> result = RunImm(inst.graph, 10, options);
    ATPM_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().estimated_spread);
  }
}
BENCHMARK(BM_ImmTargetSelection)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atpm

