// google-benchmark microbenchmarks for the substrate layers: graph
// construction, generators, IC simulation, realization sampling, RR-set
// generation, and coverage queries. These are the kernels whose cost the
// paper's complexity analysis (Theorems 3, 5) is expressed in.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "diffusion/ic_model.h"
#include "diffusion/realization.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/weighting.h"
#include "rris/rr_collection.h"
#include "rris/rr_set.h"
#include "rris/sampling_engine.h"
#include "rris/sampling_stats.h"

namespace atpm {
namespace {

Graph BenchGraph(NodeId n) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 3;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

// Weighting schemes for the kernel benches: 0 = weighted cascade,
// 1 = trivalency, 2 = uniform-random (the general-class fallback).
// `edges_per_node` controls vector length: the reverse series keeps the
// historical 3; the forward series uses 8, where probability vectors are
// long enough for the inverse-CDF jump to amortize its per-vector draw.
Graph KernelBenchGraph(NodeId n, int weighting, int edges_per_node = 3) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = edges_per_node;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  Rng wrng(99);
  switch (weighting) {
    case 0:
      ApplyWeightedCascade(&g);
      break;
    case 1:
      ApplyTrivalency(&g, &wrng);
      break;
    default:
      ApplyUniformRandomProbability(&g, 0.01, 0.5, &wrng);
      break;
  }
  return g;
}

void BM_GraphBuildCsr(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  std::vector<WeightedEdge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 0; j < 6; ++j) {
      edges.push_back(WeightedEdge{
          u, static_cast<NodeId>(rng.UniformInt(n)), 0.1f});
    }
  }
  for (auto _ : state) {
    GraphBuilder builder;
    for (const WeightedEdge& e : edges) builder.AddEdge(e.src, e.dst, e.prob);
    Graph g = builder.Build().value();
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuildCsr)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  Rng rng(5);
  BarabasiAlbertOptions options;
  options.num_nodes = static_cast<NodeId>(state.range(0));
  options.edges_per_node = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateBarabasiAlbert(options, &rng).value().num_edges());
  }
}
BENCHMARK(BM_GenerateBarabasiAlbert)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenerateRMat(benchmark::State& state) {
  Rng rng(6);
  RMatOptions options;
  options.scale = static_cast<uint32_t>(state.range(0));
  options.num_edges = (1ull << options.scale) * 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateRMat(options, &rng).value().num_edges());
  }
}
BENCHMARK(BM_GenerateRMat)->Arg(12)->Arg(14);

void BM_ForwardIcSimulation(benchmark::State& state) {
  const Graph g = BenchGraph(static_cast<NodeId>(state.range(0)));
  Rng rng(11);
  std::vector<NodeId> seeds = {0, 1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateIC(g, seeds, &rng));
  }
}
BENCHMARK(BM_ForwardIcSimulation)->Arg(1 << 12)->Arg(1 << 15);

void BM_RealizationSample(benchmark::State& state) {
  const Graph g = BenchGraph(static_cast<NodeId>(state.range(0)));
  Rng rng(13);
  for (auto _ : state) {
    Realization world = Realization::Sample(g, &rng);
    benchmark::DoNotOptimize(world.NumLiveEdges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_RealizationSample)->Arg(1 << 12)->Arg(1 << 15);

void BM_RrSetGeneration(benchmark::State& state) {
  const Graph g = BenchGraph(static_cast<NodeId>(state.range(0)));
  RRSetGenerator generator(g);
  Rng rng(17);
  std::vector<NodeId> rr;
  for (auto _ : state) {
    generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    benchmark::DoNotOptimize(rr.size());
  }
}
BENCHMARK(BM_RrSetGeneration)->Arg(1 << 12)->Arg(1 << 15);

void BM_RrCountCovering(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  RRSetGenerator generator(g);
  Rng rng(19);
  BitVector base(g.num_nodes());
  for (NodeId v = 100; v < 200; ++v) base.Set(v);
  const uint64_t theta = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.CountCovering(
        nullptr, g.num_nodes(), theta, 0, &base, &rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(theta));
}
BENCHMARK(BM_RrCountCovering)->Arg(1 << 10)->Arg(1 << 13);

// Counting through the policies' engine slot (SamplingEngineHandle): the
// persistent worker pool replaces the retired ParallelCountCovering
// wrapper, which paid a full thread-pool spin-up per query.
void BM_HandleCountCovering(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  BitVector base(g.num_nodes());
  for (NodeId v = 100; v < 200; ++v) base.Set(v);
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  SamplingEngineOptions options;
  options.backend =
      threads > 1 ? SamplingBackend::kParallel : SamplingBackend::kSerial;
  options.num_threads = threads;
  SamplingEngineHandle handle;
  uint64_t salt = 1;
  for (auto _ : state) {
    SamplingEngine* engine =
        handle.Get(g, DiffusionModel::kIndependentCascade, options);
    benchmark::DoNotOptimize(engine->CountConditionalCoverageSeeded(
        0, &base, nullptr, g.num_nodes(), 1 << 15, ++salt));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 15));
}
BENCHMARK(BM_HandleCountCovering)->Arg(1)->Arg(4)->Arg(8);

// Sampler-scaling series: the two SamplingEngine operations across thread
// counts, sized so the parallel backend is actually engaged. The acceptance
// bar for the engine layer is count-path throughput at 4 threads >= 2x the
// 1-thread run of the same benchmark.
void BM_SamplingEngineCountScaling(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  SamplingEngineOptions options;
  options.backend =
      threads > 1 ? SamplingBackend::kParallel : SamplingBackend::kSerial;
  options.num_threads = threads;
  auto engine = CreateSamplingEngine(
      g, DiffusionModel::kIndependentCascade, options);
  BitVector base(g.num_nodes());
  for (NodeId v = 100; v < 200; ++v) base.Set(v);
  Rng rng(37);
  const uint64_t theta = 1 << 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->CountConditionalCoverage(
        0, &base, nullptr, g.num_nodes(), theta, &rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(theta));
}
BENCHMARK(BM_SamplingEngineCountScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// Batched coverage queries: one shared pool of theta RR sets answers a
// front/rear pair (the ADDATP/HATP round shape) in a single pass. Counters
// report the engine's RR-set accounting and the pool-reuse ratio — the
// whole point of the batch layer is reuse_ratio 2.0 at roughly the
// single-query pool cost.
void BM_SamplingEngineBatchCountScaling(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  SamplingEngineOptions options;
  options.backend =
      threads > 1 ? SamplingBackend::kParallel : SamplingBackend::kSerial;
  options.num_threads = threads;
  auto engine = CreateSamplingEngine(
      g, DiffusionModel::kIndependentCascade, options);
  BitVector front_base(g.num_nodes());
  for (NodeId v = 100; v < 200; ++v) front_base.Set(v);
  BitVector rear_base(g.num_nodes());
  for (NodeId v = 100; v < 400; ++v) rear_base.Set(v);
  Rng rng(43);
  const uint64_t theta = 1 << 15;
  CoverageQueryBatch batch;
  for (auto _ : state) {
    batch.Clear();
    batch.Add(0, &front_base);
    batch.Add(0, &rear_base);
    engine->CountCoverageBatch(&batch, nullptr, g.num_nodes(), theta, &rng);
    benchmark::DoNotOptimize(batch.hits(0) + batch.hits(1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(theta));
  state.counters["rr_sets_generated"] = static_cast<double>(
      engine->stats().rr_sets_generated);
  state.counters["reuse_ratio"] = engine->stats().ReuseRatio();
}
BENCHMARK(BM_SamplingEngineBatchCountScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// Kernel cost vs batch width: how much does each extra per-seed counter add
// to the single-pass walk? Width 1 is the historical one-query kernel.
void BM_CountCoveringBatchWidth(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  RRSetGenerator generator(g);
  Rng rng(47);
  BitVector base(g.num_nodes());
  for (NodeId v = 100; v < 200; ++v) base.Set(v);
  const size_t width = static_cast<size_t>(state.range(0));
  std::vector<CoverageQuery> queries;
  for (size_t q = 0; q < width; ++q) {
    queries.push_back(CoverageQuery{static_cast<NodeId>(q), &base});
  }
  std::vector<uint64_t> hits(width);
  const uint64_t theta = 1 << 12;
  for (auto _ : state) {
    generator.CountCoveringBatch(nullptr, g.num_nodes(), theta, queries,
                                 hits.data(), &rng);
    benchmark::DoNotOptimize(hits[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(theta * width));
  state.counters["queries"] = static_cast<double>(width);
}
BENCHMARK(BM_CountCoveringBatchWidth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Stored-pool batch answering on the general (unindexed) scan path: a
// whole conditional-marginal sweep against one pool in one CSR pass — the
// RisSpreadOracle::ExpectedMarginalSpreads shape, every candidate
// conditioned on the same base. (The NSG/NDG all-unconditional shape takes
// the O(1)-per-query indexed fast path instead and is not worth timing.)
void BM_RrCollectionAnswerBatch(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 13);
  RRSetGenerator generator(g);
  RRCollection pool(g.num_nodes());
  Rng rng(53);
  pool.Generate(&generator, nullptr, g.num_nodes(), 1 << 14, &rng);
  BitVector base(g.num_nodes());
  for (NodeId v = 4000; v < 4100; ++v) base.Set(v);
  const size_t width = static_cast<size_t>(state.range(0));
  CoverageQueryBatch batch;
  for (size_t q = 0; q < width; ++q) {
    batch.Add(static_cast<NodeId>(q * 7 % 4000), &base);
  }
  for (auto _ : state) {
    pool.AnswerBatch(&batch);
    benchmark::DoNotOptimize(batch.hits(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(width));
}
BENCHMARK(BM_RrCollectionAnswerBatch)->Arg(16)->Arg(64)->Arg(256);

void BM_SamplingEnginePoolScaling(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  SamplingEngineOptions options;
  options.backend =
      threads > 1 ? SamplingBackend::kParallel : SamplingBackend::kSerial;
  options.num_threads = threads;
  auto engine = CreateSamplingEngine(
      g, DiffusionModel::kIndependentCascade, options);
  Rng rng(41);
  const uint64_t count = 1 << 14;
  for (auto _ : state) {
    engine->ResetPool();
    RRCollection& pool =
        engine->GeneratePool(nullptr, g.num_nodes(), count, &rng);
    benchmark::DoNotOptimize(pool.total_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(count));
}
BENCHMARK(BM_SamplingEnginePoolScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// ---- RR-generation kernel series (emitted as BENCH_kernel.json by the CI
// --benchmark_filter=Kernel run): RR sets/sec and RNG draws per edge
// examined, per weighting class x kernel. The acceptance bar of the
// geometric-jump substrate is draws_per_edge(per-edge) >= 2x
// draws_per_edge(jump) on weighted cascade and trivalency, with a
// measurably higher sets/sec throughput.

void BM_KernelRrGeneration(benchmark::State& state) {
  const Graph g = KernelBenchGraph(1 << 14, static_cast<int>(state.range(0)));
  const SamplingKernel kernel = state.range(1) == 0
                                    ? SamplingKernel::kPerEdge
                                    : SamplingKernel::kGeometricJump;
  RRSetGenerator generator(g, DiffusionModel::kIndependentCascade, kernel);
  Rng rng(17);
  std::vector<NodeId> rr;
  uint64_t edges = 0;
  for (auto _ : state) {
    edges += generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    benchmark::DoNotOptimize(rr.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["draws_per_edge"] =
      edges == 0 ? 0.0
                 : static_cast<double>(generator.rng_draws()) /
                       static_cast<double>(edges);
  state.counters["jumpable_edge_fraction"] =
      g.InWeightClassProfile().JumpableEdgeFraction();
}
BENCHMARK(BM_KernelRrGeneration)
    ->ArgNames({"weighting", "jump"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}});

void BM_KernelLtRrGeneration(benchmark::State& state) {
  const Graph g = KernelBenchGraph(1 << 14, static_cast<int>(state.range(0)));
  const SamplingKernel kernel = state.range(1) == 0
                                    ? SamplingKernel::kPerEdge
                                    : SamplingKernel::kGeometricJump;
  RRSetGenerator generator(g, DiffusionModel::kLinearThreshold, kernel);
  Rng rng(19);
  std::vector<NodeId> rr;
  uint64_t edges = 0;
  for (auto _ : state) {
    edges += generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    benchmark::DoNotOptimize(rr.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["draws_per_edge"] =
      edges == 0 ? 0.0
                 : static_cast<double>(generator.rng_draws()) /
                       static_cast<double>(edges);
}
BENCHMARK(BM_KernelLtRrGeneration)
    ->ArgNames({"weighting", "jump"})
    ->ArgsProduct({{0, 1}, {0, 1}});

// Counting path at fig9-smoke magnitude: one θ-pool conditional-coverage
// query per iteration, reporting the engine-level draw accounting.
void BM_KernelCountCovering(benchmark::State& state) {
  const Graph g = KernelBenchGraph(1 << 13, static_cast<int>(state.range(0)));
  const SamplingKernel kernel = state.range(1) == 0
                                    ? SamplingKernel::kPerEdge
                                    : SamplingKernel::kGeometricJump;
  SerialSamplingEngine engine(g, DiffusionModel::kIndependentCascade,
                              kernel);
  BitVector base(g.num_nodes());
  for (NodeId v = 100; v < 200; ++v) base.Set(v);
  Rng rng(23);
  const uint64_t theta = 1 << 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.CountConditionalCoverage(
        0, &base, nullptr, g.num_nodes(), theta, &rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(theta));
  state.counters["draws_per_edge"] = engine.stats().DrawsPerEdge();
  state.counters["rr_sets_generated"] =
      static_cast<double>(engine.stats().rr_sets_generated);
}
BENCHMARK(BM_KernelCountCovering)
    ->ArgNames({"weighting", "jump"})
    ->ArgsProduct({{0, 1}, {0, 1}});

// ---- Forward-kernel series: the same draws-per-edge accounting as the
// reverse RR benches, but over the out-CSR paths (IC cascade simulation
// and whole-world realization sampling). World sampling picks the cheaper
// traversal direction per graph, so this is where the out-edge weight
// index pays off on weightings whose out-vectors are less regular than
// their in-vectors (weighted cascade).

void BM_KernelForwardSimulateIC(benchmark::State& state) {
  const Graph g =
      KernelBenchGraph(1 << 14, static_cast<int>(state.range(0)), 8);
  const SamplingKernel kernel = state.range(1) == 0
                                    ? SamplingKernel::kPerEdge
                                    : SamplingKernel::kGeometricJump;
  Rng rng(31);
  std::vector<NodeId> seeds = {0, 1, 2, 3, 4, 5, 6, 7};
  SamplingStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimulateIC(g, seeds, &rng, nullptr, nullptr, kernel, &stats));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["draws_per_edge"] = stats.DrawsPerEdge();
  state.counters["out_jumpable_edge_fraction"] =
      g.OutWeightClassProfile().JumpableEdgeFraction();
}
BENCHMARK(BM_KernelForwardSimulateIC)
    ->ArgNames({"weighting", "jump"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}});

void BM_KernelWorldSample(benchmark::State& state) {
  const Graph g =
      KernelBenchGraph(1 << 14, static_cast<int>(state.range(0)), 8);
  const SamplingKernel kernel = state.range(1) == 0
                                    ? SamplingKernel::kPerEdge
                                    : SamplingKernel::kGeometricJump;
  Rng rng(37);
  SamplingStats stats;
  for (auto _ : state) {
    Realization world = Realization::Sample(
        g, &rng, DiffusionModel::kIndependentCascade, kernel, &stats);
    benchmark::DoNotOptimize(world.NumLiveEdges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
  state.counters["draws_per_edge"] = stats.DrawsPerEdge();
}
BENCHMARK(BM_KernelWorldSample)
    ->ArgNames({"weighting", "jump"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}});

// Batched vs looped pool fill on a heavily depleted residual graph (alive
// fraction below the root sampler's 2^-6 rejection cutoff, the late-round
// shape of heavily seeded adaptive instances) — the regime where
// GenerateBatch's single alive-root-cache build (vs one rebuild per
// Generate call, by contract) dominates. Throughput acceptance: batched
// items_per_second >= 1.3x the looped variant.
void BM_KernelBatchGeneration(benchmark::State& state) {
  // Trivalency reverse sets are tiny (mean prob ~0.04), so the per-call
  // alive-list rebuild is the dominant loop cost the batch amortizes.
  const Graph g = KernelBenchGraph(1 << 14, 1);
  const bool batched = state.range(0) != 0;
  BitVector removed(g.num_nodes());
  const uint32_t num_alive = 128;
  for (NodeId v = num_alive; v < g.num_nodes(); ++v) removed.Set(v);
  RRSetGenerator generator(g);
  Rng rng(43);
  const uint64_t count = 1 << 10;
  std::vector<NodeId> rr;
  for (auto _ : state) {
    RRCollection pool(g.num_nodes());
    if (batched) {
      pool.Generate(&generator, &removed, num_alive, count, &rng);
    } else {
      for (uint64_t i = 0; i < count; ++i) {
        generator.Generate(&removed, num_alive, &rng, &rr);
        pool.AddSet(rr);
      }
    }
    benchmark::DoNotOptimize(pool.total_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(count));
}
BENCHMARK(BM_KernelBatchGeneration)->ArgNames({"batched"})->Arg(0)->Arg(1);

// Observability-overhead guard: the same serial pool fill with the metric
// registry and tracer both off (obs:0) vs both on (obs:1), measured in the
// same run. Instruments accrue per batch/span, never per draw, so the
// enabled/disabled real-time ratio must stay within the 2% acceptance bar
// enforced by scripts/bench_regression_check.py --fresh-obs. The disabled
// path is the guarantee the hot layers rely on: one relaxed atomic load
// per instrument touch.
void BM_ObservabilityOverhead(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  const bool enabled = state.range(0) != 0;
  obs::SetMetricsEnabled(enabled);
  obs::SetTraceEnabled(enabled);
  SerialSamplingEngine engine(g);
  Rng rng(61);
  const uint64_t count = 1 << 13;
  for (auto _ : state) {
    engine.ResetPool();
    RRCollection& pool =
        engine.GeneratePool(nullptr, g.num_nodes(), count, &rng);
    benchmark::DoNotOptimize(pool.total_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(count));
  // Restore the process defaults (metrics on, tracing off) so later
  // benchmarks in the same invocation see the stock configuration.
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(false);
  obs::ResetTrace();
}
BENCHMARK(BM_ObservabilityOverhead)
    ->ArgNames({"obs"})->Arg(0)->Arg(1)
    ->UseRealTime();

void BM_CoverageQueries(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 13);
  RRSetGenerator generator(g);
  RRCollection pool(g.num_nodes());
  Rng rng(23);
  pool.Generate(&generator, nullptr, g.num_nodes(),
                static_cast<uint64_t>(state.range(0)), &rng);
  BitVector base(g.num_nodes());
  for (NodeId v = 50; v < 120; ++v) base.Set(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.ConditionalCoverage(0, base));
  }
}
BENCHMARK(BM_CoverageQueries)->Arg(1 << 12)->Arg(1 << 14);

void BM_RealizationSpreadQuery(benchmark::State& state) {
  const Graph g = BenchGraph(1 << 14);
  Rng rng(29);
  Realization world = Realization::Sample(g, &rng);
  std::vector<NodeId> seeds = {0, 1, 2, 3, 4, 5, 6, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.Spread(seeds));
  }
}
BENCHMARK(BM_RealizationSpreadQuery);

}  // namespace
}  // namespace atpm

// Custom main: unless the caller overrides it, benchmark JSON goes to
// BENCH_sampling.json so the sampler-scaling series is machine-readable by
// default (run with --benchmark_filter=SamplingEngine for just that
// series, or --benchmark_filter=Kernel with --benchmark_out=
// BENCH_kernel.json for the RR-kernel series, as the CI job does).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag only: --benchmark_out_format alone must not suppress the
    // default output file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_sampling.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  // Build type of the *timed* code (this binary). The stock
  // "library_build_type" context reports how the google-benchmark library
  // was compiled — Debian's packaged libbenchmark ships without NDEBUG and
  // thus always says "debug", which is about the harness, not the kernels
  // being measured. CI asserts on this field to reject accidentally
  // unoptimized benchmark records.
#ifdef NDEBUG
  benchmark::AddCustomContext("atpm_build_type", "release");
#else
  benchmark::AddCustomContext("atpm_build_type", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
