// Ablation: hybrid error (HATP) vs additive-only error (ADDATP).
//
// The paper's central efficiency claim (Section IV-A, Theorem 5) is that
// additive-only estimation needs θ = Θ(1/ζ²) samples — prohibitive for
// nodes whose marginal spread sits near the decision bar — while the
// hybrid relative+additive bound needs only Θ(1/(εζ)). This ablation
// sweeps a single-node decision across cost/spread gaps and reports the
// RR sets each algorithm spends before deciding, plus whether it hit the
// budget cap.
#include <cstdio>
#include <iostream>

#include "bench_util/table_printer.h"
#include "core/addatp.h"
#include "core/hatp.h"
#include "graph/generators.h"

int main() {
  // Star with hub spread 1 + 200 * 0.5 = 101 on n = 401 nodes.
  const atpm::Graph g = atpm::MakeStarGraph(401, 0.5);
  const double hub_spread = 1.0 + 400 * 0.5;

  std::printf("=== Ablation: hybrid vs additive error "
              "(single decision, hub spread %.0f) ===\n",
              hub_spread);
  std::printf("gap = |spread - cost| relative to the decision bar\n\n");
  atpm::TablePrinter table({"gap", "HATP RR sets", "ADDATP RR sets",
                            "ratio", "ADDATP capped?"});

  const uint64_t cap = 1ull << 22;
  for (double gap : {100.0, 50.0, 20.0, 5.0, 1.0, 0.0}) {
    const double cost = hub_spread - gap;
    atpm::ProfitProblem problem;
    problem.graph = &g;
    problem.targets = {0};
    problem.costs.assign(g.num_nodes(), 0.0);
    problem.costs[0] = cost;

    atpm::HatpOptions hatp_options;
    hatp_options.sampling.max_rr_sets_per_decision = cap;
    atpm::HatpPolicy hatp(hatp_options);
    atpm::Rng world_rng(1);
    atpm::AdaptiveEnvironment env_h(
        atpm::Realization::Sample(g, &world_rng));
    atpm::Rng rng_h(2);
    atpm::Result<atpm::AdaptiveRunResult> run_h =
        hatp.Run(problem, &env_h, &rng_h);
    if (!run_h.ok()) return 1;

    atpm::AddAtpOptions add_options;
    add_options.sampling.max_rr_sets_per_decision = cap;
    add_options.fail_on_budget_exhausted = false;
    atpm::AddAtpPolicy addatp(add_options);
    atpm::Rng world_rng2(1);
    atpm::AdaptiveEnvironment env_a(
        atpm::Realization::Sample(g, &world_rng2));
    atpm::Rng rng_a(2);
    atpm::Result<atpm::AdaptiveRunResult> run_a =
        addatp.Run(problem, &env_a, &rng_a);
    if (!run_a.ok()) return 1;

    const double hatp_rr =
        static_cast<double>(run_h.value().total_rr_sets);
    const double add_rr = static_cast<double>(run_a.value().total_rr_sets);
    const bool capped = run_a.value().total_rr_sets + 2 >= cap;
    table.AddRow({atpm::FormatDouble(gap, 0),
                  std::to_string(run_h.value().total_rr_sets),
                  std::to_string(run_a.value().total_rr_sets),
                  atpm::FormatDouble(add_rr / std::max(hatp_rr, 1.0), 1),
                  capped ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::printf("\nExpected shape: comparable cost on easy gaps, an order of "
              "magnitude (or the budget cap) on borderline nodes.\n");
  return 0;
}
