// Viral marketing campaign: the scenario from the paper's introduction.
//
// A company has access to a subscription list (the target set T) and a
// promotion budget per influencer (cashback / coupons -> the cost c(u)).
// It deploys seeds in batches: after investing in one influencer it
// observes who actually got influenced (market feedback) before deciding
// on the next. This example drives HATP step by step and prints the
// decision log — the adaptive feedback loop of Section II-B — then
// contrasts the outcome with a one-shot (nonadaptive) campaign and a
// random coupon drop on the same market realization.
//
// Build & run:  ./examples/viral_marketing_campaign
#include <cstdio>

#include "bench_util/experiment.h"
#include "core/ars.h"
#include "core/hatp.h"
#include "core/hntp.h"
#include "core/target_selection.h"
#include "graph/generators.h"
#include "graph/weighting.h"

namespace {

const char* DecisionName(atpm::SeedDecision decision) {
  switch (decision) {
    case atpm::SeedDecision::kSelected:
      return "INVEST ";
    case atpm::SeedDecision::kAbandoned:
      return "skip   ";
    case atpm::SeedDecision::kSkippedActivated:
      return "reached";
    case atpm::SeedDecision::kBudgetExhausted:
      return "no data";
  }
  return "?";
}

}  // namespace

int main() {
  // The "social platform": a directed R-MAT graph (skewed follower
  // counts), weighted-cascade influence probabilities.
  atpm::Rng rng(11);
  atpm::RMatOptions graph_options;
  graph_options.scale = 13;  // 8192 users
  graph_options.num_edges = 80000;
  atpm::Graph graph =
      atpm::GenerateRMat(graph_options, &rng).value_or(atpm::Graph());
  if (graph.num_nodes() == 0) return 1;
  atpm::ApplyWeightedCascade(&graph);

  // The subscription list: top-30 influencers; promotion budget
  // distributed proportionally to reach (degree-proportional costs).
  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(graph, 30,
                                   atpm::CostScheme::kDegreeProportional);
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }
  const atpm::ProfitProblem& problem = selection.value().problem;
  std::printf("market: %u users, %llu follow edges\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));
  std::printf("subscription list: %u influencers, total budget %.0f\n\n",
              problem.k(), problem.TotalTargetCost());

  // The actual market outcome is one realization; every strategy below
  // faces the same one.
  atpm::Rng world_rng(2024);
  const atpm::Realization world = atpm::Realization::Sample(graph, &world_rng);

  // --- Adaptive campaign (HATP). ---
  atpm::AdaptiveEnvironment env{atpm::Realization(world)};
  atpm::HatpOptions options;
  options.sampling.engine = atpm::SamplingBackend::kParallel;
  options.sampling.num_threads = 4;
  atpm::HatpPolicy hatp(options);
  atpm::Rng policy_rng(5);
  atpm::Result<atpm::AdaptiveRunResult> run =
      hatp.Run(problem, &env, &policy_rng);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("adaptive campaign log (decision | influencer | cost | newly "
              "reached | cumulative reach):\n");
  uint32_t cumulative = 0;
  for (const atpm::AdaptiveStepRecord& step : run.value().steps) {
    cumulative += step.newly_activated;
    std::printf("  %s u%-6u cost=%6.1f  +%-5u  reach=%u\n",
                DecisionName(step.decision), step.node,
                problem.CostOf(step.node), step.newly_activated, cumulative);
  }
  std::printf("adaptive profit: %.1f (reach %u - investment %.1f)\n\n",
              run.value().realized_profit, run.value().realized_spread,
              run.value().seed_cost);

  // --- One-shot campaign (HNTP): same estimator, no feedback. ---
  atpm::Rng hntp_rng(6);
  atpm::Result<atpm::HntpResult> hntp = RunHntp(problem, options, &hntp_rng);
  if (!hntp.ok()) return 1;
  const double hntp_profit =
      atpm::RealizedProfit(problem, world, hntp.value().seeds);
  std::printf("one-shot (HNTP) : %zu influencers, profit %.1f\n",
              hntp.value().seeds.size(), hntp_profit);

  // --- Random coupon drop (ARS). ---
  atpm::AdaptiveEnvironment ars_env{atpm::Realization(world)};
  atpm::ArsPolicy ars;
  atpm::Rng ars_rng(7);
  atpm::Result<atpm::AdaptiveRunResult> ars_run =
      ars.Run(problem, &ars_env, &ars_rng);
  if (!ars_run.ok()) return 1;
  std::printf("random (ARS)    : %zu influencers, profit %.1f\n",
              ars_run.value().seeds.size(), ars_run.value().realized_profit);

  // One market outcome is an anecdote; the paper averages over many
  // realizations. Repeat the comparison over 8 shared worlds.
  std::printf("\nmean profit over 8 market realizations:\n");
  atpm::ExperimentRunner runner(problem, 8, 555);
  atpm::Result<atpm::AlgoStats> hatp_mean = runner.RunAdaptive(&hatp);
  atpm::Result<atpm::AlgoStats> ars_mean = runner.RunAdaptive(&ars);
  if (!hatp_mean.ok() || !ars_mean.ok()) return 1;
  std::printf("  adaptive (HATP): %8.1f\n", hatp_mean.value().mean_profit);
  std::printf("  one-shot (HNTP): %8.1f\n",
              runner.EvaluateFixedSet(hntp.value().seeds, 0.0).mean_profit);
  std::printf("  random   (ARS) : %8.1f\n", ars_mean.value().mean_profit);
  return 0;
}
