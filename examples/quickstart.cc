// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build a probabilistic social graph (synthetic, weighted cascade).
//   2. Pick a target set and per-node seeding costs.
//   3. Run HATP — the paper's practical adaptive algorithm — against one
//      sampled ground-truth realization, observing activations after every
//      seeding decision.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/hatp.h"
#include "core/target_selection.h"
#include "graph/generators.h"
#include "graph/weighting.h"

int main() {
  // 1. A 2000-node preferential-attachment graph with the paper's
  //    weighted-cascade probabilities p(u,v) = 1/indeg(v).
  atpm::Rng rng(7);
  atpm::BarabasiAlbertOptions graph_options;
  graph_options.num_nodes = 2000;
  graph_options.edges_per_node = 2;
  atpm::Result<atpm::Graph> graph_result =
      atpm::GenerateBarabasiAlbert(graph_options, &rng);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  atpm::Graph graph = std::move(graph_result).value();
  atpm::ApplyWeightedCascade(&graph);
  std::printf("graph: n=%u, m=%llu\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Target set = the top-20 influential users (IMM), with costs
  //    calibrated so c(T) equals a lower bound on E[I(T)] (Section VI-A
  //    of the paper).
  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(graph, 20,
                                   atpm::CostScheme::kDegreeProportional);
  if (!selection.ok()) {
    std::fprintf(stderr, "target selection failed: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }
  const atpm::ProfitProblem& problem = selection.value().problem;
  std::printf("targets: k=%u, c(T)=%.1f (= E_l[I(T)])\n", problem.k(),
              problem.TotalTargetCost());

  // 3. Sample one ground-truth world and run HATP against it. The engine
  //    knob picks the RR-sampling backend: kSerial (reproducible against
  //    the single-threaded reference), kParallel (persistent worker pool),
  //    or kAuto (parallel iff num_threads > 1).
  atpm::Rng world_rng(42);
  atpm::AdaptiveEnvironment env(
      atpm::Realization::Sample(graph, &world_rng));
  atpm::HatpOptions hatp_options;  // paper defaults: eps0=0.5, eps=0.05
  hatp_options.sampling.engine = atpm::SamplingBackend::kAuto;
  hatp_options.sampling.num_threads = 4;
  // Speculative cross-candidate pipelining: each halving round's RR pool
  // also answers the first-round queries of the next 4 candidates, served
  // for free when no seeding invalidated them (same seed set either way).
  hatp_options.sampling.lookahead_window = 4;
  atpm::HatpPolicy hatp(hatp_options);
  atpm::Rng policy_rng(1);
  atpm::Result<atpm::AdaptiveRunResult> run =
      hatp.Run(problem, &env, &policy_rng);
  if (!run.ok()) {
    std::fprintf(stderr, "HATP failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  std::printf("\nHATP selected %zu of %u candidates\n",
              run.value().seeds.size(), problem.k());
  std::printf("realized spread  : %u users\n", run.value().realized_spread);
  std::printf("seeding cost     : %.1f\n", run.value().seed_cost);
  std::printf("realized profit  : %.1f\n", run.value().realized_profit);
  std::printf("RR sets generated: %llu\n",
              static_cast<unsigned long long>(run.value().total_rr_sets));
  std::printf("speculation      : %llu/%llu first rounds served free "
              "(%llu rounds total, %llu discarded)\n",
              static_cast<unsigned long long>(run.value().speculation_hits),
              static_cast<unsigned long long>(run.value().speculation_hits +
                                              run.value().speculation_misses),
              static_cast<unsigned long long>(
                  run.value().speculation_rounds_served),
              static_cast<unsigned long long>(
                  run.value().speculation_discarded));
  return 0;
}
