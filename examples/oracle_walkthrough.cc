// Oracle-model walkthrough on the paper's running example (Fig. 1).
//
// Reconstructs the 7-node graph of Fig. 1(a), verifies the paper's printed
// quantities (E[I({v1,v2,v6})] = 6.16, nonadaptive profit 1.66), replays
// the exact realization of Fig. 1(b)-(d) through ADG (profit 3 vs the
// nonadaptive 2.5 — the 20% adaptivity gain), and finally computes the
// exact expected profit of the ADG policy by enumerating all possible
// worlds.
//
// Build & run:  ./examples/oracle_walkthrough
#include <cstdio>

#include "core/adg.h"
#include "core/double_greedy.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "rris/sampling_engine.h"

namespace {

// All possible worlds of a tiny graph with their probabilities.
std::vector<std::pair<atpm::Realization, double>> EnumerateWorlds(
    const atpm::Graph& g) {
  const uint64_t m = g.num_edges();
  std::vector<float> probs(m);
  for (atpm::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto p = g.OutProbs(u);
    for (uint32_t j = 0; j < p.size(); ++j) {
      probs[g.OutEdgeIndex(u, j)] = p[j];
    }
  }
  std::vector<std::pair<atpm::Realization, double>> worlds;
  for (uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    double prob = 1.0;
    atpm::BitVector live(m);
    for (uint64_t e = 0; e < m; ++e) {
      if ((mask >> e) & 1ULL) {
        prob *= probs[e];
        live.Set(e);
      } else {
        prob *= 1.0 - probs[e];
      }
    }
    if (prob > 0.0) {
      worlds.emplace_back(atpm::Realization::FromLiveEdges(g, std::move(live)),
                          prob);
    }
  }
  return worlds;
}

}  // namespace

int main() {
  const atpm::Graph g = atpm::MakePaperFigure1Graph();
  std::printf("Fig. 1(a) graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  auto oracle_result = atpm::ExactSpreadOracle::Create(g);
  if (!oracle_result.ok()) return 1;
  atpm::ExactSpreadOracle* oracle = oracle_result.value().get();

  // T = {v1, v2, v6} (ids 0, 1, 5), every cost 1.5 — the paper's setup.
  atpm::ProfitProblem problem;
  problem.graph = &g;
  problem.targets = {1, 5, 0};  // examination order: v2, v6, v1
  problem.costs.assign(7, 0.0);
  for (atpm::NodeId t : problem.targets) problem.costs[t] = 1.5;

  const std::vector<atpm::NodeId> t_set = {0, 1, 5};
  std::printf("E[I(T)]          = %.2f   (paper: 6.16)\n",
              oracle->ExpectedSpread(t_set, nullptr));
  std::printf("rho(T)           = %.2f   (paper: 1.66)\n",
              atpm::OracleProfit(problem, oracle, t_set));

  // Cross-check the exact oracle against the sampling substrate the big
  // algorithms run on: a RisSpreadOracle estimates the same E[I(T)] from
  // RR sets drawn through a SamplingEngine.
  atpm::SerialSamplingEngine engine(g);
  atpm::RisOracleOptions ris_options;
  ris_options.num_rr_sets = 1u << 16;
  atpm::RisSpreadOracle ris_oracle(&engine, ris_options);
  std::printf("E[I(T)] via RIS  = %.2f   (SamplingEngine estimate)\n",
              ris_oracle.ExpectedSpread(t_set, nullptr));

  // Replay the realization drawn in Fig. 1(b)-(d): v2's edges to v3, v4
  // succeed (v2->v1 fails), v3->v4 succeeds, v4->v5 fails; v6 activates
  // v5 and v7.
  atpm::BitVector live(g.num_edges());
  auto set_live = [&](atpm::NodeId u, atpm::NodeId v) {
    const auto neigh = g.OutNeighbors(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      if (neigh[j] == v) live.Set(g.OutEdgeIndex(u, j));
    }
  };
  set_live(1, 2);
  set_live(1, 3);
  set_live(2, 3);
  set_live(5, 4);
  set_live(5, 6);

  atpm::AdaptiveEnvironment env(
      atpm::Realization::FromLiveEdges(g, std::move(live)));
  atpm::AdgPolicy adg(oracle);
  atpm::Rng rng(1);
  atpm::Result<atpm::AdaptiveRunResult> run = adg.Run(problem, &env, &rng);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("\nADG on the Fig. 1 realization:\n");
  std::printf("  seeds: ");
  for (atpm::NodeId s : run.value().seeds) std::printf("v%u ", s + 1);
  std::printf("\n  realized profit  = %.1f   (paper: 3 = 6 - 3)\n",
              run.value().realized_profit);
  std::printf("  nonadaptive T    = %.1f   (paper: 2.5 = 7 - 4.5)\n",
              7.0 - 4.5);

  // Exact Λ(ADG): run the policy on every possible world.
  double lambda = 0.0;
  for (auto& [world, prob] : EnumerateWorlds(g)) {
    atpm::AdaptiveEnvironment world_env{atpm::Realization(world)};
    atpm::Rng world_rng(0);
    lambda +=
        prob * adg.Run(problem, &world_env, &world_rng).value().realized_profit;
  }
  std::printf("\nLambda(ADG) over all %u-edge worlds = %.3f\n",
              static_cast<unsigned>(g.num_edges()), lambda);

  // Reference: the oracle double greedy (nonadaptive, Alg 1).
  atpm::Result<atpm::DoubleGreedyResult> dg =
      atpm::RunDoubleGreedy(problem, oracle);
  if (dg.ok()) {
    std::printf("nonadaptive double greedy profit   = %.3f\n",
                dg.value().expected_profit);
    std::printf("adaptivity gain                    = %.1f%%\n",
                100.0 * (lambda / dg.value().expected_profit - 1.0));
  }
  return 0;
}
