// Target-selection pipeline: reproduces one cell of the paper's main
// experiment end to end, with every algorithm evaluated on the same set of
// sampled realizations (the protocol of Section VI-A):
//
//   dataset -> IMM top-k targets -> E_l[I(T)]-calibrated costs ->
//   {HATP, HNTP, NSG, NDG, ARS, Baseline} -> mean profit over worlds.
//
// Build & run:  ./examples/target_selection_pipeline [k] [worlds]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "common/timer.h"
#include "core/ars.h"
#include "core/hatp.h"
#include "core/hntp.h"
#include "core/nonadaptive_greedy.h"
#include "core/target_selection.h"

int main(int argc, char** argv) {
  const uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 50;
  const uint32_t worlds =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 5;

  atpm::Result<atpm::BenchDataset> dataset =
      atpm::BuildDataset("HepMini", 1.0, 3);
  if (!dataset.ok()) return 1;
  const atpm::Graph& graph = dataset.value().graph;
  std::printf("dataset: HepMini (n=%u, m=%llu), k=%u, %u realizations\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), k, worlds);

  atpm::WallTimer selection_timer;
  atpm::Result<atpm::TargetSelectionResult> selection =
      atpm::BuildTopKTargetProblem(graph, k,
                                   atpm::CostScheme::kDegreeProportional);
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }
  const atpm::ProfitProblem& problem = selection.value().problem;
  std::printf("IMM target selection took %.2fs; E_l[I(T)] = c(T) = %.1f\n\n",
              selection_timer.ElapsedSeconds(), problem.TotalTargetCost());

  atpm::ExperimentRunner runner(problem, worlds, 99);
  atpm::TablePrinter table({"algorithm", "mean profit", "mean #seeds",
                            "time (s)"});

  // Adaptive algorithms. All sampling goes through the SamplingEngine
  // layer; kParallel keeps one warm worker pool across every world.
  atpm::HatpOptions hatp_options;
  hatp_options.sampling.engine = atpm::SamplingBackend::kParallel;
  hatp_options.sampling.num_threads = 4;
  atpm::HatpPolicy hatp(hatp_options);
  atpm::Result<atpm::AlgoStats> hatp_stats = runner.RunAdaptive(&hatp);
  if (!hatp_stats.ok()) return 1;
  table.AddRow({"HATP (adaptive)",
                atpm::FormatDouble(hatp_stats.value().mean_profit, 1),
                atpm::FormatDouble(hatp_stats.value().mean_seeds, 1),
                atpm::FormatSeconds(hatp_stats.value().mean_seconds)});

  atpm::ArsPolicy ars;
  atpm::Result<atpm::AlgoStats> ars_stats = runner.RunAdaptive(&ars);
  if (!ars_stats.ok()) return 1;
  table.AddRow({"ARS (adaptive, random)",
                atpm::FormatDouble(ars_stats.value().mean_profit, 1),
                atpm::FormatDouble(ars_stats.value().mean_seeds, 1),
                atpm::FormatSeconds(ars_stats.value().mean_seconds)});

  // Nonadaptive batches, sized by HATP's largest per-iteration spend (in
  // shared-pool units, the paper's sizing rule).
  const uint64_t theta = std::max<uint64_t>(
      atpm::SharedPoolIterationSpend(
          hatp_options.sampling,
          hatp_stats.value().max_rr_sets_per_iteration),
      1024);

  {
    atpm::Rng rng(31);
    atpm::WallTimer timer;
    atpm::Result<atpm::HntpResult> hntp =
        RunHntp(problem, hatp_options, &rng);
    if (!hntp.ok()) return 1;
    atpm::AlgoStats stats =
        runner.EvaluateFixedSet(hntp.value().seeds, timer.ElapsedSeconds());
    table.AddRow({"HNTP (nonadaptive HATP)",
                  atpm::FormatDouble(stats.mean_profit, 1),
                  atpm::FormatDouble(stats.mean_seeds, 0),
                  atpm::FormatSeconds(stats.mean_seconds)});
  }
  {
    atpm::Rng rng(32);
    atpm::WallTimer timer;
    atpm::Result<atpm::NonadaptiveResult> nsg =
        RunNsg(problem, theta, &rng);
    if (!nsg.ok()) return 1;
    atpm::AlgoStats stats =
        runner.EvaluateFixedSet(nsg.value().seeds, timer.ElapsedSeconds());
    table.AddRow({"NSG (simple greedy)",
                  atpm::FormatDouble(stats.mean_profit, 1),
                  atpm::FormatDouble(stats.mean_seeds, 0),
                  atpm::FormatSeconds(stats.mean_seconds)});
  }
  {
    atpm::Rng rng(33);
    atpm::WallTimer timer;
    atpm::Result<atpm::NonadaptiveResult> ndg =
        RunNdg(problem, theta, &rng);
    if (!ndg.ok()) return 1;
    atpm::AlgoStats stats =
        runner.EvaluateFixedSet(ndg.value().seeds, timer.ElapsedSeconds());
    table.AddRow({"NDG (double greedy)",
                  atpm::FormatDouble(stats.mean_profit, 1),
                  atpm::FormatDouble(stats.mean_seeds, 0),
                  atpm::FormatSeconds(stats.mean_seconds)});
  }

  atpm::AlgoStats baseline = runner.EvaluateBaseline();
  table.AddRow({"Baseline (seed all of T)",
                atpm::FormatDouble(baseline.mean_profit, 1),
                atpm::FormatDouble(baseline.mean_seeds, 0), "0"});

  table.Print(std::cout);
  std::printf("\n(NSG/NDG pool: theta = %llu RR sets — HATP's largest "
              "per-iteration spend, the paper's sizing rule.)\n",
              static_cast<unsigned long long>(theta));
  return 0;
}
