// atpm_graph_pack: packs graphs into the memory-mapped binary store
// (graph/graph_store.h) and inspects existing store files.
//
//   atpm_graph_pack pack <edges.txt> <out.atpm> [options]
//       Parses a SNAP-style edge list, prepares the graph, writes a store.
//       --tile-size N       nodes per reverse-CSR tile (power of two,
//                           0 = untiled; default 4096)
//       --undirected        each line adds both arcs
//       --default-prob P    probability for lines without a third column
//       --weighted-cascade  overwrite probabilities with p(u,v) = 1/indeg(v)
//                           (the paper's setting) before packing
//
//   atpm_graph_pack pack-dataset <name> <out.atpm|-> [options]
//       Packs a synthetic benchmark stand-in (NetHEPT, Epinions, DBLP,
//       LiveJournal, HepMini). With "-" as the output, writes into the
//       ATPM_BENCH_STORE_DIR cache at the exact path BuildDataset reads,
//       pre-warming the bench suite.
//       --scale S           dataset scale in (0, 1] (default: bench env)
//       --seed N            generator seed (default 1, the bench default)
//       --tile-size N       as above
//
//   atpm_graph_pack info <store.atpm>
//       Prints the validated header (version, counts, tiling, sections).
//
//   atpm_graph_pack verify <store.atpm>
//       Full integrity check including the payload hash; exits nonzero on
//       any mismatch.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util/datasets.h"
#include "graph/edge_list_io.h"
#include "graph/graph_store.h"
#include "graph/weighting.h"

namespace atpm {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  atpm_graph_pack pack <edges.txt> <out.atpm> [--tile-size N]\n"
      "                  [--undirected] [--default-prob P]"
      " [--weighted-cascade]\n"
      "  atpm_graph_pack pack-dataset <name> <out.atpm|-> [--scale S]\n"
      "                  [--seed N] [--tile-size N]\n"
      "  atpm_graph_pack info <store.atpm>\n"
      "  atpm_graph_pack verify <store.atpm>\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "atpm_graph_pack: %s\n", status.ToString().c_str());
  return 1;
}

bool ParseFlag(int argc, char** argv, int* i, const char* name,
               const char** value) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "atpm_graph_pack: %s needs a value\n", name);
    std::exit(2);
  }
  *value = argv[++*i];
  return true;
}

int PackEdgeList(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string input = argv[2];
  const std::string output = argv[3];
  EdgeListLoadOptions load;
  GraphStoreWriteOptions write;
  bool weighted_cascade = false;
  for (int i = 4; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argc, argv, &i, "--tile-size", &value)) {
      write.tile_size = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (ParseFlag(argc, argv, &i, "--default-prob", &value)) {
      load.default_prob = std::strtod(value, nullptr);
    } else if (std::strcmp(argv[i], "--undirected") == 0) {
      load.directed = false;
    } else if (std::strcmp(argv[i], "--weighted-cascade") == 0) {
      weighted_cascade = true;
    } else {
      std::fprintf(stderr, "atpm_graph_pack: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  Result<Graph> graph = LoadEdgeList(input, load);
  if (!graph.ok()) return Fail(graph.status());
  Graph g = std::move(graph).value();
  if (weighted_cascade) ApplyWeightedCascade(&g);
  const Status saved = SaveGraphStore(g, output, write);
  if (!saved.ok()) return Fail(saved);
  std::printf("packed %s: %u nodes, %llu edges -> %s (tile_size %u)\n",
              input.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), output.c_str(),
              write.tile_size);
  return 0;
}

int PackDataset(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string name = argv[2];
  std::string output = argv[3];
  double scale = BenchScaleFromEnv();
  uint64_t seed = 1;
  GraphStoreWriteOptions write;
  for (int i = 4; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argc, argv, &i, "--scale", &value)) {
      scale = std::strtod(value, nullptr);
    } else if (ParseFlag(argc, argv, &i, "--seed", &value)) {
      seed = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argc, argv, &i, "--tile-size", &value)) {
      write.tile_size = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "atpm_graph_pack: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (output == "-") {
    output = DatasetStorePath(name, scale, seed);
    if (output.empty()) {
      std::fprintf(stderr,
                   "atpm_graph_pack: output '-' needs ATPM_BENCH_STORE_DIR\n");
      return 2;
    }
  }
  // Build WITHOUT the cache env so a stale store file is never copied
  // forward; this command is the cache writer.
  Result<BenchDataset> dataset = [&] {
    const char* saved_dir = std::getenv("ATPM_BENCH_STORE_DIR");
    std::string restore = saved_dir == nullptr ? "" : saved_dir;
    ::unsetenv("ATPM_BENCH_STORE_DIR");
    Result<BenchDataset> built = BuildDataset(name, scale, seed);
    if (saved_dir != nullptr) {
      ::setenv("ATPM_BENCH_STORE_DIR", restore.c_str(), 1);
    }
    return built;
  }();
  if (!dataset.ok()) return Fail(dataset.status());
  const Graph& g = dataset.value().graph;
  const Status saved = SaveGraphStore(g, output, write);
  if (!saved.ok()) return Fail(saved);
  std::printf(
      "packed dataset %s (scale %g, seed %llu): %u nodes, %llu edges -> %s\n",
      name.c_str(), scale, static_cast<unsigned long long>(seed),
      g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
      output.c_str());
  return 0;
}

int Info(const std::string& path) {
  Result<GraphStoreInfo> info = ReadGraphStoreInfo(path);
  if (!info.ok()) return Fail(info.status());
  const GraphStoreInfo& meta = info.value();
  std::printf("%s\n", path.c_str());
  std::printf("  format version : %u\n", meta.version);
  std::printf("  nodes          : %llu\n",
              static_cast<unsigned long long>(meta.num_nodes));
  std::printf("  edges          : %llu\n",
              static_cast<unsigned long long>(meta.num_edges));
  std::printf("  file bytes     : %llu\n",
              static_cast<unsigned long long>(meta.file_bytes));
  std::printf("  sections       : %u\n", meta.section_count);
  if (meta.tile_size == 0) {
    std::printf("  reverse CSR    : untiled\n");
  } else {
    std::printf("  reverse CSR    : %u tiles of %u nodes\n", meta.num_tiles,
                meta.tile_size);
  }
  return 0;
}

int Verify(const std::string& path) {
  GraphStoreLoadOptions load;
  load.verify_payload = true;
  Result<Graph> graph = LoadGraphStore(path, load);
  if (!graph.ok()) return Fail(graph.status());
  std::printf("%s: OK (%u nodes, %llu edges)\n", path.c_str(),
              graph.value().num_nodes(),
              static_cast<unsigned long long>(graph.value().num_edges()));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "pack") return PackEdgeList(argc, argv);
  if (command == "pack-dataset") return PackDataset(argc, argv);
  if (command == "info" && argc == 3) return Info(argv[2]);
  if (command == "verify" && argc == 3) return Verify(argv[2]);
  return Usage();
}

}  // namespace
}  // namespace atpm

int main(int argc, char** argv) { return atpm::Run(argc, argv); }
