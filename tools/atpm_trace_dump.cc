// atpm_trace_dump — turn a binary .atrace capture (common/trace.h,
// written by bench/fig9_sample_scaling or any ATPM_TRACE=1 run) into
// Chrome trace_event JSON for Perfetto / chrome://tracing, or print a
// per-span-name summary to stdout.
//
// Usage:
//   atpm_trace_dump to-json <in.atrace> [out.json]
//   atpm_trace_dump summary <in.atrace>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/trace.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: atpm_trace_dump to-json <in.atrace> [out.json]\n"
               "       atpm_trace_dump summary <in.atrace>\n");
  return 2;
}

int ToJson(const std::string& in_path, const std::string& out_path) {
  std::vector<atpm::obs::OwnedTraceEvent> events;
  atpm::Status status = atpm::obs::ReadBinaryTrace(in_path, &events);
  if (!status.ok()) {
    std::fprintf(stderr, "atpm_trace_dump: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string json = atpm::obs::ChromeTraceJsonFromOwned(events);
  if (out_path.empty() || out_path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "atpm_trace_dump: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    std::fprintf(stderr, "atpm_trace_dump: short write on %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu events to %s\n", events.size(),
               out_path.c_str());
  return 0;
}

int Summary(const std::string& in_path) {
  std::vector<atpm::obs::OwnedTraceEvent> events;
  atpm::Status status = atpm::obs::ReadBinaryTrace(in_path, &events);
  if (!status.ok()) {
    std::fprintf(stderr, "atpm_trace_dump: %s\n", status.ToString().c_str());
    return 1;
  }
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;  // ordered: stable output
  for (const auto& event : events) {
    Agg& agg = by_name[event.name];
    ++agg.count;
    agg.total_ns += event.dur_ns;
    agg.max_ns = std::max(agg.max_ns, event.dur_ns);
  }
  std::printf("%-28s %10s %14s %14s %14s\n", "span", "count", "total_ms",
              "mean_us", "max_us");
  for (const auto& [name, agg] : by_name) {
    std::printf("%-28s %10llu %14.3f %14.3f %14.3f\n", name.c_str(),
                static_cast<unsigned long long>(agg.count),
                static_cast<double>(agg.total_ns) * 1e-6,
                static_cast<double>(agg.total_ns) * 1e-3 /
                    static_cast<double>(agg.count),
                static_cast<double>(agg.max_ns) * 1e-3);
  }
  std::printf("%zu events, %zu distinct spans\n", events.size(),
              by_name.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string mode = argv[1];
  const std::string in_path = argv[2];
  if (mode == "to-json") {
    return ToJson(in_path, argc > 3 ? argv[3] : "");
  }
  if (mode == "summary") {
    return Summary(in_path);
  }
  return Usage();
}
