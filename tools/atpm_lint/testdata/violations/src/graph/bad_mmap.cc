// Fixture: mmap-safety violations inside the graph layer. Ordering matters:
// the undetached MutableVec() call appears before ANY EnsureOwnedStorage
// mention so the lexical proximity window cannot be satisfied.
#include <cstdint>
#include <vector>

namespace atpm_fixture {

template <typename T>
class ArrayBlock {
 public:
  const T* data() const { return vec_.data(); }
  std::vector<T>& MutableVec() { return vec_; }

 private:
  std::vector<T> vec_;
};

struct FakeGraph {
  ArrayBlock<float> in_prob;
};

void ScaleInPlaceThroughCast(FakeGraph* g, float factor) {
  // VIOLATION: const_cast in src/graph/ — a write through this pointer on a
  // mapped graph faults or silently corrupts the store file.
  float* p = const_cast<float*>(g->in_prob.data());
  p[0] *= factor;
}

void ScaleWithoutDetach(FakeGraph* g, float factor) {
  // VIOLATION: MutableVec() with no EnsureOwnedStorage() detach above it.
  for (float& p : g->in_prob.MutableVec()) p *= factor;
}

void EnsureOwnedStorage(FakeGraph* g);

void ScaleProperly(FakeGraph* g, float factor) {
  EnsureOwnedStorage(g);
  // OK: detach established within the proximity window.
  for (float& p : g->in_prob.MutableVec()) p *= factor;
}

void EnsureOwnedStorage(FakeGraph*) {}

}  // namespace atpm_fixture
