// Fixture: format-stability violations — on-disk structs read verbatim out
// of the mapping without layout pins. (This file shadows the real
// graph_store.cc path inside the fixture tree so the rule's file scope
// applies.)
#include <cstdint>
#include <cstdio>
#include <type_traits>

namespace atpm_fixture {

// VIOLATION x2: cast out of the mapping below, but no
// is_trivially_copyable_v assert and no sizeof() pin.
struct FixtureHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
};

// VIOLATION x1: fwrite'd via sizeof below; has a sizeof pin but lacks the
// trivially-copyable assert.
struct FixtureDirEntry {
  uint64_t offset;
  uint64_t bytes;
};
static_assert(sizeof(FixtureDirEntry) == 16, "layout frozen");

// OK: fully pinned.
struct FixtureSection {
  uint32_t id;
  uint32_t element_size;
};
static_assert(std::is_trivially_copyable_v<FixtureSection>);
static_assert(sizeof(FixtureSection) == 8, "layout frozen");

// Runtime-only helper: never serialized, needs no pins.
struct ParseScratch {
  const unsigned char* cursor = nullptr;
};

const FixtureHeader* ViewHeader(const unsigned char* base) {
  return reinterpret_cast<const FixtureHeader*>(base);
}

bool WriteDirEntry(std::FILE* f, const FixtureDirEntry& e) {
  return std::fwrite(&e, sizeof(FixtureDirEntry), 1, f) == 1;
}

const FixtureSection* ViewSection(const unsigned char* base) {
  return reinterpret_cast<const FixtureSection*>(base);
}

void Touch(ParseScratch* s) { s->cursor = nullptr; }

}  // namespace atpm_fixture
