// Fixture registry for the failpoint-discipline rule. ATPM_FAILPOINT*
// sites elsewhere in this tree must name one of the entries between the
// markers; this file itself is exempt from the rule.

namespace atpm {
namespace failpoint {

struct SiteInfo {
  const char* name;
  int code;
};

constexpr SiteInfo kRegistry[] = {
    // atpm-failpoint-registry-begin
    {"alloc.pool_reserve", 6},
    {"engine.serial_batch", 5},
    // atpm-failpoint-registry-end
};

}  // namespace failpoint
}  // namespace atpm
