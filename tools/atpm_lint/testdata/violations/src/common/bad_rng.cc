// Fixture: every rng-discipline violation class. atpm_lint must flag each
// marked line; the mentions inside this comment (std::mt19937, rand()) must
// NOT be flagged — comments are stripped before matching.
#include <cstdlib>
#include <ctime>
#include <random>

namespace atpm_fixture {

int EntropySeed() {
  std::random_device rd;  // VIOLATION: random_device
  return static_cast<int>(rd());
}

unsigned WallClockSeed() {
  return static_cast<unsigned>(time(nullptr));  // VIOLATION: time(nullptr)
}

int LegacyDraw() {
  srand(42);     // VIOLATION: srand
  return rand(); // VIOLATION: rand
}

double RawEngineDraw() {
  std::mt19937 gen(12345);  // VIOLATION: raw mt19937 construction
  const char* label = "mt19937 inside a string literal is fine";
  (void)label;
  return static_cast<double>(gen()) / 4294967296.0;
}

// Non-violations the regexes must not trip on:
int Operand(int operand) { return operand; }   // 'rand' substring
double ElapsedTimeMs(double elapsed_time) { return elapsed_time; }

}  // namespace atpm_fixture
