// Fixture: ArrayBlock mutation API reached from outside src/graph/ — the
// sampling layer must treat graph storage as read-only.
#include <vector>

namespace atpm_fixture {

template <typename T>
class ArrayBlock {
 public:
  std::vector<T>& MutableVec() { return vec_; }
  void SetView(const T* data, unsigned long size) {
    view_ = data;
    size_ = size;
  }

 private:
  std::vector<T> vec_;
  const T* view_ = nullptr;
  unsigned long size_ = 0;
};

struct FakeGraph {
  ArrayBlock<float> in_prob;
};

void ClobberProbabilities(FakeGraph* g) {
  g->in_prob.MutableVec().assign(8, 0.5f);  // VIOLATION: MutableVec here
}

void AliasStorage(FakeGraph* g, const float* p) {
  g->in_prob.SetView(p, 8);  // VIOLATION: SetView here
}

}  // namespace atpm_fixture
