// Deliberate failpoint-discipline violations: sites must name an entry
// in this tree's src/common/failpoint.cc registry, names must be string
// literals, and containment paths (src/core, src/rris) must not throw.

namespace atpm {

int SampleBatch(bool overflow) {
  ATPM_FAILPOINT("engine.serial_batch");  // registered: must not be flagged
  ATPM_FAILPOINT("engine.typo_batch");
  ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_growth");
  ATPM_FAILPOINT_FIRED(kDynamicSiteName);
  if (overflow) {
    throw 42;
  }
  return 0;
}

}  // namespace atpm
