// Fixture: determinism-hygiene violations in a decision path (src/core/).
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace atpm_fixture {

struct Candidate {
  uint32_t node;
  double score;
};

// VIOLATION below: pointer-keyed ordered container (address order is
// allocation dependent, so "ordered" iteration is still nondeterministic).
std::map<Candidate*, double> g_scores_by_ptr;

std::vector<uint32_t> PickSeeds(
    const std::unordered_map<uint32_t, double>& marginal) {
  std::vector<uint32_t> seeds;
  for (const auto& entry : marginal) {  // VIOLATION: range-for over unordered
    if (entry.second > 0.5) seeds.push_back(entry.first);
  }
  return seeds;
}

double SumScores(const std::unordered_set<uint32_t> chosen) {
  double total = 0;
  // VIOLATION: iterator walk over an unordered container.
  for (auto it = chosen.begin(); it != chosen.end(); ++it) total += *it;
  return total;
}

// Non-violations: lookups into unordered containers are fine (no
// iteration), and ordered containers with value keys are fine.
bool Contains(const std::unordered_set<uint32_t>& chosen, uint32_t node) {
  return chosen.count(node) != 0;
}
std::set<uint32_t> g_chosen_nodes;

}  // namespace atpm_fixture
