// Deliberate metrics-discipline violations, one per check the rule makes.
#include <chrono>

#include "common/metrics.h"
#include "common/trace.h"

namespace atpm {

static const char* kDynamicName = "atpm_dynamic_total";

void BadRegistrations() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.RegisterCounter(kDynamicName, "non-literal metric name");
  reg.RegisterCounter("rr_sets_total", "missing the atpm_ prefix");
  reg.RegisterCounter("atpm_dup_total", "first registration is fine");
  reg.RegisterCounter("atpm_dup_total", "second registration aborts");
}

void BadSpan(const char* phase) {
  obs::TraceSpan span(phase);
  span.AnnotateU64("step", 1);
}

uint64_t BadClock() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace atpm
