// Fixture: one violation of each rule class, every one carrying an inline
// `// atpm-lint: allow(<rule>)` annotation (same line or the line above).
// atpm_lint must report ZERO findings on this tree.
#include <cstdlib>
#include <random>
#include <unordered_map>
#include <vector>

namespace atpm_fixture {

int SuppressedEntropy() {
  // atpm-lint: allow(rng-discipline)
  std::random_device rd;
  std::mt19937 gen(rd());  // atpm-lint: allow(rng-discipline)
  return static_cast<int>(gen());
}

std::vector<int> SuppressedIteration(
    const std::unordered_map<int, double>& marginal) {
  std::vector<int> out;
  // Order genuinely does not matter here: the sum below is commutative.
  // atpm-lint: allow(determinism-hygiene)
  for (const auto& entry : marginal) out.push_back(entry.first);
  return out;
}

}  // namespace atpm_fixture
