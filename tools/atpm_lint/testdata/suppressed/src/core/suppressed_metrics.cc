// The same metrics-discipline violations as the violations tree, each
// silenced by an allow annotation on the line or the line above.
#include <chrono>

#include "common/metrics.h"
#include "common/trace.h"

namespace atpm {

void SuppressedRegistrations(const char* dynamic_name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  // atpm-lint: allow(metrics-discipline)
  reg.RegisterCounter(dynamic_name, "non-literal, but annotated");
  reg.RegisterCounter("plain_total", "x");  // atpm-lint: allow(metrics-discipline)
}

void SuppressedSpan(const char* phase) {
  // atpm-lint: allow(metrics-discipline)
  obs::TraceSpan span(phase);
  span.AnnotateU64("step", 1);
}

uint64_t SuppressedClock() {
  // atpm-lint: allow(metrics-discipline)
  const auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(now.time_since_epoch().count());
}

}  // namespace atpm
