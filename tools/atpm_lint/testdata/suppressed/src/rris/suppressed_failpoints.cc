// Every failpoint-discipline finding here is silenced by an allow
// annotation: the suppressed tree must lint clean.

namespace atpm {

int ContainedWorker(bool fail) {
  // atpm-lint: allow(failpoint-discipline)
  ATPM_FAILPOINT("engine.unlisted_site");
  if (fail) {
    // atpm-lint: allow(failpoint-discipline)
    throw 7;
  }
  return 0;
}

}  // namespace atpm
