// Fixture registry for the clean tree: the one site used by
// src/rris/clean_failpoints.cc is registered, so nothing fires.

namespace atpm {
namespace failpoint {

struct SiteInfo {
  const char* name;
  int code;
};

constexpr SiteInfo kRegistry[] = {
    // atpm-failpoint-registry-begin
    {"engine.serial_batch", 5},
    // atpm-failpoint-registry-end
};

}  // namespace failpoint
}  // namespace atpm
