// A registered failpoint site in a containment path: lint-clean. The
// string literal is read straight out of the raw text, so the name in a
// comment — ATPM_FAILPOINT("never.registered") — must not fire either.

namespace atpm {

int SampleBatch() {
  ATPM_FAILPOINT("engine.serial_batch");
  return 0;
}

}  // namespace atpm
