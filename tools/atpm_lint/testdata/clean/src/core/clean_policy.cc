// Fixture: idiomatic code that must produce ZERO findings — Rng-based
// draws, ordered containers with value keys, unordered lookups without
// iteration, and sorted materialization before a decision loop.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

namespace atpm_fixture {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    return state_ ^= state_ << 17;
  }

 private:
  uint64_t state_;
};

std::vector<uint32_t> PickSeeds(const std::unordered_set<uint32_t>& alive,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> sorted_alive(alive.size());
  std::map<uint32_t, double> scores;
  std::vector<uint32_t> out;
  for (const auto& [node, score] : scores) {
    if (alive.count(node) != 0 && score > 0 && (rng.Next() & 1) != 0) {
      out.push_back(node);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace atpm_fixture
