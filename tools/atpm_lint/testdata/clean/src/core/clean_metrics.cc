// Well-formed observability usage: literal atpm_-prefixed snake_case
// metric names registered once through a static accessor, literal span
// names, and no direct clock reads in the instrumented layer.
#include "common/metrics.h"
#include "common/trace.h"

namespace atpm {

void CleanInstrumentation() {
  static obs::Counter* const probes =
      obs::MetricsRegistry::Global().RegisterCounter(
          "atpm_fixture_probes_total", "well-formed registration");
  obs::TraceSpan span("fixture_phase");
  span.AnnotateU64("step", 1);
  probes->Increment();
}

}  // namespace atpm
