#!/usr/bin/env python3
"""atpm-lint: project-invariant linter for the atpm tree.

The correctness story of this codebase rests on a handful of invariants
that no general-purpose tool checks:

  rng-discipline       Every random draw flows through common/rng.h
                       (Rng / SplitSeed streams). std::random_device,
                       rand()/srand(), wall-clock seeding, and raw
                       std::mt19937 construction outside common/rng.h
                       all break bit-identical reproducibility, which is
                       the test oracle for the whole sampling stack.

  determinism-hygiene  Decision and serialization paths (src/core/,
                       src/rris/, src/graph/graph_store.cc) must not
                       iterate over unordered containers (iteration
                       order is hash-seed dependent) and must not key
                       ordered containers on pointers (address order is
                       allocation dependent).

  mmap-safety          Mutation of a memory-mapped Graph must go through
                       ArrayBlock's copy-on-write detach: MutableVec()
                       only on EnsureOwnedStorage() paths inside
                       src/graph/, no ArrayBlock mutation APIs outside
                       src/graph/, and no const_cast in the graph layer
                       (writes through a const_cast'd mapped pointer are
                       SIGSEGV or silent store corruption).

  format-stability     Every struct the graph store reads or writes
                       verbatim (fwrite / reinterpret_cast into the
                       mapping) must be pinned by BOTH
                       static_assert(std::is_trivially_copyable_v<T>)
                       and a static_assert(sizeof(T) == N) so any layout
                       change forces a conscious format-version bump.

  failpoint-discipline Every ATPM_FAILPOINT* site names a string literal
                       registered in src/common/failpoint.cc (between
                       the atpm-failpoint-registry markers) — arming an
                       unregistered name aborts at runtime, so the check
                       must be static. Fault-containment paths
                       (src/core/, src/rris/) must not use bare `throw`:
                       faults cross those layers as Status objects, and
                       an escaping exception tears down worker threads.

  metrics-discipline   Observability names are part of the export
                       surface: metric registrations and TraceSpan names
                       must be string literals, metric names must be
                       `atpm_`-prefixed snake_case, and a checked
                       Register* name may appear only once under src/
                       (a second registration aborts at runtime).
                       Instrumented layers (src/core/, src/rris/) must
                       not read std::chrono::steady_clock directly —
                       timing flows through the obs:: helpers so the
                       disabled path stays one relaxed atomic load.

Engines: with the libclang Python bindings installed the AST engine
resolves types and range-for statements precisely; without them (or on
any libclang failure) a conservative regex engine runs instead. The two
engines report the same rule ids, and the self-test (tests/lint_test.py)
asserts they agree on the fixture tree when both are available.

Suppression: a finding on line N is suppressed by the annotation
`// atpm-lint: allow(<rule>[,<rule>...])` on line N or line N-1.

Exit codes: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import sys

RULE_IDS = (
    "rng-discipline",
    "determinism-hygiene",
    "mmap-safety",
    "format-stability",
    "failpoint-discipline",
    "metrics-discipline",
)

# Directories linted when no explicit paths are given, relative to --root.
DEFAULT_SCAN_DIRS = ("src", "tests", "bench", "tools", "examples")
CXX_SUFFIXES = (".cc", ".h")

# determinism-hygiene applies to decision / serialization paths only.
DETERMINISM_SCOPE_DIRS = ("src/core/", "src/rris/")
DETERMINISM_SCOPE_FILES = ("src/graph/graph_store.cc",)

# format-stability applies to the store serializer.
FORMAT_SCOPE_FILES = ("src/graph/graph_store.cc",)

ALLOW_RE = re.compile(r"//\s*atpm-lint:\s*allow\(([^)]*)\)")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def collect_allows(raw_lines):
    """Maps 1-based line -> set of rule ids allowed on that line."""
    allows = {}
    for i, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows[i] = rules
    return allows


def allowed(allows, line, rule):
    for probe in (line, line - 1):
        if rule in allows.get(probe, ()):
            return True
    return False


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving newlines
    and column positions so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def in_determinism_scope(rel):
    return (rel in DETERMINISM_SCOPE_FILES
            or any(rel.startswith(d) for d in DETERMINISM_SCOPE_DIRS))


# --------------------------------------------------------------------- regex
# The conservative fallback engine. Operates on comment/string-stripped
# source so documentation never trips a rule.

RNG_PATTERNS = (
    (re.compile(r"\brandom_device\b"),
     "std::random_device is non-deterministic; seed an atpm::Rng instead"),
    (re.compile(r"(?<![\w.:])s?rand\s*\("),
     "rand()/srand() bypass the SplitSeed stream discipline; use atpm::Rng"),
    (re.compile(r"\bmt19937(_64)?\b"),
     "raw std::mt19937 construction outside common/rng.h; draws must flow "
     "through atpm::Rng / SplitSeed streams"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "wall-clock seeding is non-reproducible; derive seeds via SplitSeed"),
)

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*&?\s*"
    r"(\w+)\s*[;,=({)]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*&?\s*(\w+)\s*\)")
BEGIN_END_RE = re.compile(r"\b(\w+)\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(")
PTR_KEYED_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:map|set|multimap|multiset)\s*<"
    r"\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")

MUTABLE_API_RE = re.compile(r"\.\s*(MutableVec|SetView|EnsureOwned)\s*\(")
CONST_CAST_RE = re.compile(r"\bconst_cast\s*<")
ENSURE_OWNED_STORAGE_RE = re.compile(r"\bEnsureOwnedStorage\s*\(")
# How far above a MutableVec() call the EnsureOwnedStorage() detach must
# appear (same-function proximity, regex approximation).
MUTABLE_VEC_WINDOW = 25

STRUCT_DECL_RE = re.compile(r"\bstruct\s+(\w+)\s*(?::[^;{]*)?\{")
REINTERPRET_RE = re.compile(r"reinterpret_cast\s*<\s*(?:const\s+)?(\w+)\s*\*")
SIZEOF_RE = re.compile(r"\bsizeof\s*\(\s*(\w+)\s*\)")
TRIVIAL_ASSERT_RE = re.compile(
    r"static_assert\s*\(\s*(?:std\s*::\s*)?is_trivially_copyable_v\s*<"
    r"\s*(\w+)\s*>")
SIZEOF_ASSERT_RE = re.compile(
    r"static_assert\s*\(\s*sizeof\s*\(\s*(\w+)\s*\)\s*==")


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def regex_rng_discipline(rel, text, findings):
    if rel == "src/common/rng.h":
        return
    for pattern, message in RNG_PATTERNS:
        for m in pattern.finditer(text):
            findings.append(Finding(rel, line_of(text, m.start()),
                                    "rng-discipline", message))


def regex_determinism_hygiene(rel, text, findings):
    if not in_determinism_scope(rel):
        return
    unordered_vars = set(UNORDERED_DECL_RE.findall(text))
    for m in RANGE_FOR_RE.finditer(text):
        if m.group(1) in unordered_vars:
            findings.append(Finding(
                rel, line_of(text, m.start()), "determinism-hygiene",
                "iteration over unordered container '%s' feeds a decision/"
                "serialization path; iterate a sorted copy or an ordered "
                "container" % m.group(1)))
    for m in BEGIN_END_RE.finditer(text):
        if m.group(1) in unordered_vars:
            findings.append(Finding(
                rel, line_of(text, m.start()), "determinism-hygiene",
                "iterator over unordered container '%s' in a decision/"
                "serialization path; iteration order is hash-seed "
                "dependent" % m.group(1)))
    for m in PTR_KEYED_RE.finditer(text):
        findings.append(Finding(
            rel, line_of(text, m.start()), "determinism-hygiene",
            "pointer-keyed ordered container: address order is allocation "
            "dependent; key on a stable id instead"))


def regex_mmap_safety(rel, text, findings):
    in_graph = rel.startswith("src/graph/")
    if in_graph and os.path.basename(rel) == "array_block.h":
        return  # the COW implementation itself
    if not in_graph:
        for m in MUTABLE_API_RE.finditer(text):
            findings.append(Finding(
                rel, line_of(text, m.start()), "mmap-safety",
                "ArrayBlock mutation API %s() outside src/graph/; mapped "
                "storage must be mutated through Graph's copy-on-write "
                "paths" % m.group(1)))
        return
    for m in CONST_CAST_RE.finditer(text):
        findings.append(Finding(
            rel, line_of(text, m.start()), "mmap-safety",
            "const_cast in the graph layer: writing through a cast view of "
            "mapped memory corrupts or faults; detach via "
            "EnsureOwnedStorage() instead"))
    lines = text.split("\n")
    for m in MUTABLE_API_RE.finditer(text):
        if m.group(1) != "MutableVec":
            continue
        line = line_of(text, m.start())
        window = "\n".join(lines[max(0, line - 1 - MUTABLE_VEC_WINDOW):
                                 line])
        if not ENSURE_OWNED_STORAGE_RE.search(window):
            findings.append(Finding(
                rel, line, "mmap-safety",
                "MutableVec() without a preceding EnsureOwnedStorage() "
                "detach (within %d lines): a mapped graph would hand out a "
                "write path into the mapping" % MUTABLE_VEC_WINDOW))


def regex_format_stability(rel, text, findings):
    if rel not in FORMAT_SCOPE_FILES:
        return
    declared = set(STRUCT_DECL_RE.findall(text))
    # On-disk structs: declared here AND read/written verbatim (cast out of
    # the mapping, or sizeof-addressed in the write path).
    referenced = set(REINTERPRET_RE.findall(text)) | set(
        SIZEOF_RE.findall(text))
    on_disk = sorted(declared & referenced)
    trivially = set(TRIVIAL_ASSERT_RE.findall(text))
    size_pinned = set(SIZEOF_ASSERT_RE.findall(text))
    decl_lines = {m.group(1): line_of(text, m.start())
                  for m in STRUCT_DECL_RE.finditer(text)}
    for name in on_disk:
        if name not in trivially:
            findings.append(Finding(
                rel, decl_lines.get(name, 1), "format-stability",
                "on-disk struct %s lacks "
                "static_assert(std::is_trivially_copyable_v<%s>)"
                % (name, name)))
        if name not in size_pinned:
            findings.append(Finding(
                rel, decl_lines.get(name, 1), "format-stability",
                "on-disk struct %s lacks a static_assert(sizeof(%s) == N) "
                "layout pin" % (name, name)))


# failpoint-discipline. The registry lives between marker comments in
# src/common/failpoint.cc; arming an unregistered name aborts at runtime,
# so every macro site must be checkable statically. Name extraction needs
# the RAW text (literals are blanked in the stripped view), but
# strip_comments_and_strings preserves offsets 1:1, so macro sites are
# located in the stripped text (documentation never trips the rule) and
# the name literal is read back out of the raw text at the same position.

FAILPOINT_REGISTRY_FILE = "src/common/failpoint.cc"
FAILPOINT_REGISTRY_BEGIN = "atpm-failpoint-registry-begin"
FAILPOINT_REGISTRY_END = "atpm-failpoint-registry-end"
# The macro definitions and the registry itself.
FAILPOINT_EXEMPT_FILES = ("src/common/failpoint.h", "src/common/failpoint.cc")
FAILPOINT_USE_RE = re.compile(
    r"\bATPM_FAILPOINT(?:_MAYBE_THROW|_FIRED|_TRANSIENT)?\s*\(")
FAILPOINT_NAME_RE = re.compile(r'\s*"([^"\\]*)"')
FAILPOINT_DECL_RE = re.compile(r'\{\s*"([^"\\]+)"')
THROW_RE = re.compile(r"\bthrow\b")
# Fault-containment scope: faults cross these layers as Status objects.
THROW_SCOPE_DIRS = ("src/core/", "src/rris/")

_failpoint_registry_cache = {}


def load_failpoint_registry(root):
    """Registered site names for the tree at `root` (cached per root)."""
    names = _failpoint_registry_cache.get(root)
    if names is not None:
        return names
    names = set()
    try:
        with open(os.path.join(root, *FAILPOINT_REGISTRY_FILE.split("/")),
                  "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError:
        text = ""
    in_table = False
    for line in text.split("\n"):
        if FAILPOINT_REGISTRY_BEGIN in line:
            in_table = True
        elif FAILPOINT_REGISTRY_END in line:
            break
        elif in_table:
            names.update(FAILPOINT_DECL_RE.findall(line))
    _failpoint_registry_cache[root] = names
    return names


def regex_failpoint_discipline(rel, raw, stripped, findings, root):
    if rel in FAILPOINT_EXEMPT_FILES:
        return
    registry = load_failpoint_registry(root)
    for m in FAILPOINT_USE_RE.finditer(stripped):
        line = line_of(stripped, m.start())
        name_m = FAILPOINT_NAME_RE.match(raw, m.end())
        if name_m is None:
            findings.append(Finding(
                rel, line, "failpoint-discipline",
                "failpoint name must be a string literal so the registry "
                "check stays static"))
        elif name_m.group(1) not in registry:
            findings.append(Finding(
                rel, line, "failpoint-discipline",
                "failpoint '%s' is not registered in %s "
                "(atpm-failpoint-registry block); arming an unregistered "
                "name aborts at runtime"
                % (name_m.group(1), FAILPOINT_REGISTRY_FILE)))
    if any(rel.startswith(d) for d in THROW_SCOPE_DIRS):
        for m in THROW_RE.finditer(stripped):
            findings.append(Finding(
                rel, line_of(stripped, m.start()), "failpoint-discipline",
                "bare throw in a fault-containment path; faults must cross "
                "this layer as Status (injected exceptions go through "
                "ATPM_FAILPOINT_MAYBE_THROW inside a try block)"))


# metrics-discipline. Same literal-extraction trick as the failpoint rule:
# call sites are located in the stripped text, the name literal is read
# back out of the raw text at the identical offset.

METRICS_EXEMPT_FILES = (
    "src/common/metrics.h", "src/common/metrics.cc",
    "src/common/trace.h", "src/common/trace.cc",
)
METRICS_REGISTER_RE = re.compile(
    r"\b(Try)?Register(Counter|Gauge|Histogram)\s*\(")
METRIC_NAME_RE = re.compile(r'\s*"([^"\\]*)"')
METRIC_NAME_OK_RE = re.compile(r"atpm_[a-z0-9_]+\Z")
TRACE_SPAN_RE = re.compile(r"\bTraceSpan\s+\w+\s*\(")
STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\b")
# Clock reads stay inside the common/ helpers (ScopedLatency, TraceSpan,
# Timer); the instrumented decision/sampling layers never name the clock.
METRICS_CLOCK_SCOPE_DIRS = ("src/core/", "src/rris/")

# (root, metric name) -> set of (rel, line) checked-registration sites.
# Files are walked in sorted order, so the "first" site is deterministic.
_metric_registration_sites = {}


def regex_metrics_discipline(rel, raw, stripped, findings, root):
    if rel in METRICS_EXEMPT_FILES:
        return
    for m in METRICS_REGISTER_RE.finditer(stripped):
        line = line_of(stripped, m.start())
        name_m = METRIC_NAME_RE.match(raw, m.end())
        if name_m is None:
            findings.append(Finding(
                rel, line, "metrics-discipline",
                "metric name must be a string literal so the export "
                "surface stays statically greppable"))
            continue
        name = name_m.group(1)
        if not METRIC_NAME_OK_RE.fullmatch(name):
            findings.append(Finding(
                rel, line, "metrics-discipline",
                "metric name '%s' must be atpm_-prefixed snake_case "
                "(atpm_[a-z0-9_]+)" % name))
            continue
        if m.group(1) is None and rel.startswith("src/"):
            sites = _metric_registration_sites.setdefault((root, name),
                                                          set())
            if sites and (rel, line) not in sites:
                prior = sorted(sites)[0]
                findings.append(Finding(
                    rel, line, "metrics-discipline",
                    "metric '%s' is already registered at %s:%d; a second "
                    "checked registration aborts at runtime (use a shared "
                    "static accessor)" % (name, prior[0], prior[1])))
            sites.add((rel, line))
    for m in TRACE_SPAN_RE.finditer(stripped):
        line = line_of(stripped, m.start())
        if METRIC_NAME_RE.match(raw, m.end()) is None:
            findings.append(Finding(
                rel, line, "metrics-discipline",
                "TraceSpan name must be a string literal (events store "
                "the pointer, not a copy)"))
    if any(rel.startswith(d) for d in METRICS_CLOCK_SCOPE_DIRS):
        for m in STEADY_CLOCK_RE.finditer(stripped):
            findings.append(Finding(
                rel, line_of(stripped, m.start()), "metrics-discipline",
                "direct steady_clock read in an instrumented layer; time "
                "through obs::ScopedLatency / TraceSpan so the disabled "
                "path stays one relaxed load"))


REGEX_RULES = (
    regex_rng_discipline,
    regex_determinism_hygiene,
    regex_mmap_safety,
    regex_format_stability,
)


def lint_file_regex(rel, raw_text, root):
    findings = []
    stripped = strip_comments_and_strings(raw_text)
    for rule in REGEX_RULES:
        rule(rel, stripped, findings)
    # Run outside REGEX_RULES: these need the raw text for name literals.
    regex_failpoint_discipline(rel, raw_text, stripped, findings, root)
    regex_metrics_discipline(rel, raw_text, stripped, findings, root)
    return findings


# ------------------------------------------------------------------ libclang
# AST engine: precise types for the RNG and determinism rules. The
# structural rules (mmap-safety, format-stability) are lexical by nature
# and reuse the regex implementations. Any failure — import, missing
# libclang.so, parse error — falls back to the regex engine for that file.


def _load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        # Bindings present but libclang.so unresolvable.
        for probe in ("libclang.so", "libclang-14.so.1", "libclang.so.1"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(probe)
                cindex.Index.create()
                return cindex
            except Exception:
                continue
    return None


_RNG_BANNED_TYPES = ("random_device", "mt19937", "mt19937_64")
_RNG_BANNED_CALLS = ("rand", "srand")


def lint_file_clang(cindex, rel, abs_path, root):
    args = ["-std=c++20", "-x", "c++", "-I", os.path.join(root, "src")]
    tu = cindex.Index.create().parse(
        abs_path, args=args,
        options=cindex.TranslationUnit.PARSE_INCOMPLETE
        | cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
    findings = []
    ck = cindex.CursorKind

    def here(cursor):
        loc = cursor.location
        return (loc.file is not None
                and os.path.realpath(loc.file.name)
                == os.path.realpath(abs_path))

    for cursor in tu.cursor.walk_preorder():
        if not here(cursor):
            continue
        line = cursor.location.line
        # ---- rng-discipline
        if rel != "src/common/rng.h":
            if cursor.kind in (ck.TYPE_REF, ck.DECL_REF_EXPR, ck.VAR_DECL):
                spelling = cursor.type.spelling if cursor.kind == ck.VAR_DECL \
                    else cursor.spelling
                if any(b in spelling for b in _RNG_BANNED_TYPES):
                    findings.append(Finding(
                        rel, line, "rng-discipline",
                        "%s outside common/rng.h; draws must flow through "
                        "atpm::Rng / SplitSeed streams" % spelling))
            if cursor.kind == ck.CALL_EXPR:
                if cursor.spelling in _RNG_BANNED_CALLS:
                    findings.append(Finding(
                        rel, line, "rng-discipline",
                        "%s() bypasses the SplitSeed stream discipline; use "
                        "atpm::Rng" % cursor.spelling))
                elif cursor.spelling == "time":
                    findings.append(Finding(
                        rel, line, "rng-discipline",
                        "wall-clock time() in a seeding context is "
                        "non-reproducible; derive seeds via SplitSeed"))
        # ---- determinism-hygiene
        if in_determinism_scope(rel):
            if cursor.kind == ck.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if children:
                    range_type = children[-2].type.spelling \
                        if len(children) >= 2 else ""
                    if "unordered_" in range_type:
                        findings.append(Finding(
                            rel, line, "determinism-hygiene",
                            "range-for over %s in a decision/serialization "
                            "path; iteration order is hash-seed dependent"
                            % range_type))
            if cursor.kind in (ck.VAR_DECL, ck.FIELD_DECL):
                spelling = cursor.type.spelling
                if re.search(r"\b(?:std::)?(map|set|multimap|multiset)<"
                             r"[^<>]*\*", spelling) \
                        and "unordered" not in spelling:
                    findings.append(Finding(
                        rel, line, "determinism-hygiene",
                        "pointer-keyed ordered container %s: address order "
                        "is allocation dependent" % spelling))
    return findings


# ---------------------------------------------------------------------- main


def iter_files(root, paths):
    if paths:
        for p in paths:
            ap = p if os.path.isabs(p) else os.path.join(root, p)
            if os.path.isdir(ap):
                yield from iter_files(root, [
                    os.path.join(ap, f) for f in sorted(os.listdir(ap))])
            elif ap.endswith(CXX_SUFFIXES):
                yield os.path.realpath(ap)
        return
    for d in DEFAULT_SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            # Fixture trees carry deliberate violations.
            dirnames[:] = [x for x in dirnames if x != "testdata"]
            for f in sorted(filenames):
                if f.endswith(CXX_SUFFIXES):
                    yield os.path.realpath(os.path.join(dirpath, f))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="atpm_lint",
        description="Project-invariant linter (rules: %s)"
        % ", ".join(RULE_IDS))
    parser.add_argument("--root", default=None,
                        help="repo root the rule scopes are relative to "
                        "(default: two levels above this script)")
    parser.add_argument("--engine", choices=("auto", "libclang", "regex"),
                        default="auto")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: %s under root)"
                        % "/".join(DEFAULT_SCAN_DIRS))
    opts = parser.parse_args(argv)

    if opts.list_rules:
        for r in RULE_IDS:
            print(r)
        return 0

    root = os.path.realpath(opts.root or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(root):
        print("atpm_lint: no such root: %s" % root, file=sys.stderr)
        return 2

    cindex = None
    if opts.engine in ("auto", "libclang"):
        cindex = _load_cindex()
        if cindex is None and opts.engine == "libclang":
            print("atpm_lint: libclang bindings unavailable "
                  "(pip install libclang or apt install python3-clang)",
                  file=sys.stderr)
            return 2

    findings = []
    checked = 0
    for abs_path in iter_files(root, opts.paths):
        rel = os.path.relpath(abs_path, root).replace(os.sep, "/")
        try:
            with open(abs_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                raw = fh.read()
        except OSError as e:
            print("atpm_lint: cannot read %s: %s" % (rel, e),
                  file=sys.stderr)
            return 2
        checked += 1
        raw_lines = raw.split("\n")
        allows = collect_allows(raw_lines)
        file_findings = None
        if cindex is not None:
            try:
                file_findings = lint_file_clang(cindex, rel, abs_path, root)
                # Structural rules stay lexical even under the AST engine.
                stripped = strip_comments_and_strings(raw)
                regex_mmap_safety(rel, stripped, file_findings)
                regex_format_stability(rel, stripped, file_findings)
                regex_failpoint_discipline(rel, raw, stripped,
                                           file_findings, root)
                regex_metrics_discipline(rel, raw, stripped,
                                         file_findings, root)
            except Exception:
                file_findings = None  # fall back to regex for this file
        if file_findings is None:
            file_findings = lint_file_regex(rel, raw, root)
        findings.extend(f for f in file_findings
                        if not allowed(allows, f.line, f.rule))

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    seen = set()
    deduped = []
    for f in findings:
        key = (f.path, f.line, f.rule, f.message)
        if key not in seen:
            seen.add(key)
            deduped.append(f)
    findings = deduped
    for f in findings:
        print(f)
    engine = "libclang" if cindex is not None else "regex"
    print("atpm_lint: %d file(s) checked (%s engine), %d finding(s)"
          % (checked, engine, len(findings)), file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
