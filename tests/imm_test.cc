#include "im/imm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/weighting.h"

namespace atpm {
namespace {

TEST(ImmTest, PicksHubOfStar) {
  const Graph g = MakeStarGraph(50, 0.5);
  Result<ImmResult> result = RunImm(g, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().seeds.size(), 1u);
  EXPECT_EQ(result.value().seeds[0], 0u);
  // E[I(hub)] = 1 + 49 * 0.5 = 25.5; the estimate must be in the ballpark.
  EXPECT_NEAR(result.value().estimated_spread, 25.5, 3.0);
}

TEST(ImmTest, RejectsInvalidArguments) {
  const Graph g = MakeStarGraph(10, 0.5);
  EXPECT_FALSE(RunImm(g, 0).ok());
  EXPECT_FALSE(RunImm(g, 11).ok());
  ImmOptions bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_FALSE(RunImm(g, 2, bad_eps).ok());
  const Graph empty;
  EXPECT_FALSE(RunImm(empty, 1).ok());
}

TEST(ImmTest, BudgetCapYieldsOutOfBudget) {
  const Graph g = MakeStarGraph(100, 0.5);
  ImmOptions options;
  options.max_rr_sets = 10;  // absurdly small
  Result<ImmResult> result = RunImm(g, 2, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfBudget());
}

TEST(ImmTest, DeterministicGivenSeed) {
  Rng rng(5);
  ErdosRenyiOptions er;
  er.num_nodes = 200;
  er.num_edges = 800;
  Graph g = GenerateErdosRenyi(er, &rng).value();
  ApplyWeightedCascade(&g);

  ImmOptions options;
  options.seed = 31337;
  Result<ImmResult> a = RunImm(g, 5, options);
  Result<ImmResult> b = RunImm(g, 5, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seeds, b.value().seeds);
  EXPECT_DOUBLE_EQ(a.value().estimated_spread, b.value().estimated_spread);
}

TEST(ImmTest, ReturnsKDistinctSeeds) {
  Rng rng(6);
  BarabasiAlbertOptions ba;
  ba.num_nodes = 500;
  ba.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(ba, &rng).value();
  ApplyWeightedCascade(&g);

  Result<ImmResult> result = RunImm(g, 20);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().seeds.size(), 20u);
  std::vector<NodeId> sorted = result.value().seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ImmTest, ApproximationHoldsOnEnumerableGraph) {
  // On the paper's 7-node example we can brute-force OPT_k exactly and
  // verify E[I(IMM seeds)] >= (1 - 1/e - eps) OPT_k.
  const Graph g = MakePaperFigure1Graph();
  auto exact = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(exact.ok());

  const uint32_t k = 2;
  double opt = 0.0;
  for (NodeId a = 0; a < 7; ++a) {
    for (NodeId b = a + 1; b < 7; ++b) {
      std::vector<NodeId> seeds = {a, b};
      opt = std::max(opt, exact.value()->ExpectedSpread(seeds, nullptr));
    }
  }

  ImmOptions options;
  options.epsilon = 0.3;
  options.seed = 99;
  Result<ImmResult> result = RunImm(g, k, options);
  ASSERT_TRUE(result.ok());
  const double achieved =
      exact.value()->ExpectedSpread(result.value().seeds, nullptr);
  EXPECT_GE(achieved, (1.0 - 1.0 / 2.718281828 - 0.3) * opt);
}

TEST(ImmTest, SeedsOrderedByGreedyGain) {
  // First seed of the greedy order must be (one of) the most influential
  // single nodes. On a two-star graph the bigger hub comes first.
  GraphBuilder b;
  for (NodeId v = 1; v <= 30; ++v) b.AddEdge(0, v, 0.9);    // big hub 0
  for (NodeId v = 41; v <= 50; ++v) b.AddEdge(40, v, 0.9);  // small hub 40
  Graph g = b.Build().value();

  Result<ImmResult> result = RunImm(g, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().seeds.size(), 2u);
  EXPECT_EQ(result.value().seeds[0], 0u);
  EXPECT_EQ(result.value().seeds[1], 40u);
}

TEST(ImmTest, ReportsRrSetCount) {
  const Graph g = MakeStarGraph(64, 0.5);
  Result<ImmResult> result = RunImm(g, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().num_rr_sets, 0u);
}

}  // namespace
}  // namespace atpm
