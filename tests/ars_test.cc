#include "core/ars.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          double uniform_cost) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId t : problem.targets) problem.costs[t] = uniform_cost;
  return problem;
}

TEST(ArsTest, SelectsAboutHalfOfIndependentTargets) {
  const Graph g = MakeCompleteGraph(200, 0.0);  // no propagation
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < 200; ++v) targets.push_back(v);
  ProfitProblem problem = MakeProblem(g, targets, 0.1);
  ArsPolicy policy;

  double total_selected = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    Rng world_rng(t);
    AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
    Rng rng(1000 + t);
    Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
    ASSERT_TRUE(run.ok());
    total_selected += static_cast<double>(run.value().seeds.size());
  }
  EXPECT_NEAR(total_selected / trials, 100.0, 6.0);
}

TEST(ArsTest, SkipsActivatedCandidatesWithoutCoinFlip) {
  // Path at p=1: if 0 is selected, 1 and 2 are activated and must be
  // skipped (kSkippedActivated), never selected.
  const Graph g = MakePathGraph(3, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2}, 0.1);
  ArsPolicy policy;
  for (int t = 0; t < 40; ++t) {
    Rng world_rng(t);
    AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
    Rng rng(t);
    Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
    ASSERT_TRUE(run.ok());
    bool zero_selected = false;
    for (const AdaptiveStepRecord& step : run.value().steps) {
      if (step.node == 0 && step.decision == SeedDecision::kSelected) {
        zero_selected = true;
      }
      if (zero_selected && step.node != 0) {
        EXPECT_EQ(step.decision, SeedDecision::kSkippedActivated);
      }
    }
  }
}

TEST(ArsTest, RealizedProfitAccountsForCosts) {
  const Graph g = MakeCompleteGraph(10, 0.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2, 3}, 0.25);
  ArsPolicy policy;
  Rng world_rng(3);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  Rng rng(4);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  const double expected =
      static_cast<double>(run.value().seeds.size()) * (1.0 - 0.25);
  EXPECT_DOUBLE_EQ(run.value().realized_profit, expected);
}

TEST(ArsTest, DeterministicGivenSeeds) {
  const Graph g = MakeStarGraph(30, 0.5);
  std::vector<NodeId> targets = {0, 4, 8, 12};
  ProfitProblem problem = MakeProblem(g, targets, 0.5);
  ArsPolicy policy;
  Rng world_a(9);
  Rng world_b(9);
  AdaptiveEnvironment env_a(Realization::Sample(g, &world_a));
  AdaptiveEnvironment env_b(Realization::Sample(g, &world_b));
  Rng rng_a(5);
  Rng rng_b(5);
  Result<AdaptiveRunResult> a = policy.Run(problem, &env_a, &rng_a);
  Result<AdaptiveRunResult> b = policy.Run(problem, &env_b, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seeds, b.value().seeds);
}

TEST(ArsTest, RejectsUsedEnvironment) {
  const Graph g = MakePathGraph(3, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, 0.1);
  ArsPolicy policy;
  Rng world_rng(1);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  env.SeedAndObserve(2);
  Rng rng(2);
  EXPECT_FALSE(policy.Run(problem, &env, &rng).ok());
}

TEST(RandomSetTest, NonadaptiveKeepsAboutHalf) {
  const Graph g = MakeCompleteGraph(100, 0.0);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < 100; ++v) targets.push_back(v);
  ProfitProblem problem = MakeProblem(g, targets, 0.1);
  Rng rng(6);
  double total = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(RunRandomSet(problem, &rng).size());
  }
  EXPECT_NEAR(total / trials, 50.0, 4.0);
}

TEST(RandomSetTest, SubsetOfTargets) {
  const Graph g = MakeStarGraph(20, 0.5);
  std::vector<NodeId> targets = {1, 3, 5};
  ProfitProblem problem = MakeProblem(g, targets, 0.1);
  Rng rng(7);
  for (int t = 0; t < 20; ++t) {
    for (NodeId s : RunRandomSet(problem, &rng)) {
      EXPECT_TRUE(s == 1 || s == 3 || s == 5);
    }
  }
}

}  // namespace
}  // namespace atpm
