// Tests for the linear threshold (LT) model support: forward simulation,
// triggering-set realizations, LT RR sets, and the TPM algorithms running
// end-to-end under LT.
#include <gtest/gtest.h>

#include <vector>

#include "core/hatp.h"
#include "diffusion/ic_model.h"
#include "diffusion/realization.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/weighting.h"
#include "rris/rr_set.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

TEST(GraphInEdgeIndexTest, MatchesForwardIndex) {
  const Graph g = MakePaperFigure1Graph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto in_neigh = g.InNeighbors(v);
    for (uint32_t j = 0; j < in_neigh.size(); ++j) {
      const uint64_t idx = g.InEdgeIndex(v, j);
      // The forward slot at that index points back to (u, v).
      const NodeId u = in_neigh[j];
      bool found = false;
      const auto out_neigh = g.OutNeighbors(u);
      for (uint32_t l = 0; l < out_neigh.size(); ++l) {
        if (g.OutEdgeIndex(u, l) == idx) {
          EXPECT_EQ(out_neigh[l], v);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "in-edge (" << u << "," << v << ")";
    }
  }
}

TEST(SimulateLtTest, SingleInEdgeChainMatchesIc) {
  // With in-degrees <= 1, LT and IC coincide: activation prob = p.
  const Graph g = MakePathGraph(2, 0.3);
  Rng rng(1);
  int64_t total = 0;
  const int trials = 200000;
  std::vector<NodeId> seeds = {0};
  for (int t = 0; t < trials; ++t) total += SimulateLT(g, seeds, &rng);
  EXPECT_NEAR(static_cast<double>(total) / trials, 1.3, 0.01);
}

TEST(SimulateLtTest, DeterministicAtProbabilityOne) {
  const Graph g = MakePathGraph(5, 1.0);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateLT(g, seeds, &rng), 5u);
}

TEST(SimulateLtTest, JointInfluenceIsSubadditiveVsIc) {
  // Two sources u1, u2 -> v with p = 0.5 each. IC: P(v) = 1-(1-.5)^2 =
  // 0.75; LT: P(v) = min(1, 0.5+0.5) = 1 when both active. Verify the LT
  // closed form.
  GraphBuilder b;
  b.AddEdge(0, 2, 0.5);
  b.AddEdge(1, 2, 0.5);
  Graph g = b.Build().value();
  Rng rng(2);
  std::vector<NodeId> seeds = {0, 1};
  int64_t total = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) total += SimulateLT(g, seeds, &rng);
  EXPECT_NEAR(static_cast<double>(total) / trials, 3.0, 0.01);
}

TEST(SimulateLtTest, SingleSourceActivatesWithEdgeProbability) {
  GraphBuilder b;
  b.AddEdge(0, 2, 0.3);
  b.AddEdge(1, 2, 0.5);
  Graph g = b.Build().value();
  Rng rng(3);
  std::vector<NodeId> seeds = {0};  // only the 0.3 source is active
  int64_t total = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) total += SimulateLT(g, seeds, &rng);
  EXPECT_NEAR(static_cast<double>(total) / trials, 1.3, 0.01);
}

TEST(SimulateLtTest, RespectsRemovedMask) {
  const Graph g = MakePathGraph(5, 1.0);
  Rng rng(4);
  BitVector removed(5);
  removed.Set(2);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateLT(g, seeds, &rng, &removed), 2u);
}

TEST(LtRealizationTest, EachNodeKeepsAtMostOneInEdge) {
  Rng rng(5);
  Graph g = MakeCompleteGraph(12, 0.0);
  ApplyWeightedCascade(&g);  // sum of in-probs = 1 per node
  for (int t = 0; t < 20; ++t) {
    Realization world =
        Realization::Sample(g, &rng, DiffusionModel::kLinearThreshold);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      // Count live incoming edges via the global edge bitmap.
      uint32_t live_in = 0;
      for (uint32_t j = 0; j < g.InDegree(v); ++j) {
        const uint64_t idx = g.InEdgeIndex(v, j);
        // Map back through the forward view to query IsLive.
        const NodeId u = g.InNeighbors(v)[j];
        const auto out_neigh = g.OutNeighbors(u);
        for (uint32_t l = 0; l < out_neigh.size(); ++l) {
          if (g.OutEdgeIndex(u, l) == idx && world.IsLive(u, l)) ++live_in;
        }
      }
      EXPECT_LE(live_in, 1u) << "node " << v;
    }
  }
}

TEST(LtRealizationTest, AverageSpreadMatchesForwardSimulation) {
  Rng rng(6);
  Graph g = MakeCompleteGraph(10, 0.0);
  ApplyWeightedCascade(&g);

  std::vector<NodeId> seeds = {0, 1};
  const int trials = 60000;
  double world_total = 0.0;
  double forward_total = 0.0;
  for (int t = 0; t < trials; ++t) {
    Realization world =
        Realization::Sample(g, &rng, DiffusionModel::kLinearThreshold);
    world_total += world.Spread(seeds);
    forward_total += SimulateLT(g, seeds, &rng);
  }
  EXPECT_NEAR(world_total / trials, forward_total / trials, 0.06);
}

TEST(LtRrSetTest, DualityAgainstForwardSimulation) {
  // Pr[u in RR_LT(random root)] = E_LT[I({u})] / n.
  Rng rng(7);
  Graph g = MakeCompleteGraph(8, 0.0);
  ApplyWeightedCascade(&g);

  RRSetGenerator generator(g, DiffusionModel::kLinearThreshold);
  const int trials = 200000;
  std::vector<int> membership(g.num_nodes(), 0);
  std::vector<NodeId> rr;
  for (int t = 0; t < trials; ++t) {
    generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    for (NodeId v : rr) ++membership[v];
  }

  Rng fwd_rng(8);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> seeds = {u};
    double spread = 0.0;
    for (int t = 0; t < 50000; ++t) {
      spread += SimulateLT(g, seeds, &fwd_rng);
    }
    spread /= 50000.0;
    EXPECT_NEAR(static_cast<double>(membership[u]) / trials,
                spread / g.num_nodes(), 0.01)
        << "node " << u;
  }
}

TEST(LtRrSetTest, CountCoveringMatchesStoredGeneration) {
  Rng rng(9);
  Graph g = MakeCompleteGraph(10, 0.0);
  ApplyWeightedCascade(&g);

  const uint64_t theta = 100000;
  RRSetGenerator count_gen(g, DiffusionModel::kLinearThreshold);
  Rng count_rng(10);
  const uint64_t counted = count_gen.CountCovering(
      nullptr, g.num_nodes(), theta, 0, nullptr, &count_rng);

  RRSetGenerator full_gen(g, DiffusionModel::kLinearThreshold);
  Rng full_rng(11);
  std::vector<NodeId> rr;
  uint64_t expected = 0;
  for (uint64_t t = 0; t < theta; ++t) {
    full_gen.Generate(nullptr, g.num_nodes(), &full_rng, &rr);
    for (NodeId v : rr) {
      if (v == 0) {
        ++expected;
        break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(counted) / theta,
              static_cast<double>(expected) / theta, 0.01);
}

TEST(LtEndToEndTest, HatpRunsUnderLinearThreshold) {
  Rng graph_rng(12);
  BarabasiAlbertOptions ba;
  ba.num_nodes = 300;
  ba.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(ba, &graph_rng).value();
  ApplyWeightedCascade(&g);

  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = {0, 1, 2, 3, 4};
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId t : problem.targets) problem.costs[t] = 1.0;

  Rng world_rng(13);
  AdaptiveEnvironment env(
      Realization::Sample(g, &world_rng, DiffusionModel::kLinearThreshold));
  HatpOptions options;
  options.model = DiffusionModel::kLinearThreshold;
  options.sampling.max_rr_sets_per_decision = 1ull << 16;
  HatpPolicy policy(options);
  Rng rng(14);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Sanity: the run is internally consistent and selected something (the
  // early BA nodes are hubs with cost 1).
  EXPECT_EQ(run.value().realized_spread, env.num_activated());
  EXPECT_FALSE(run.value().seeds.empty());
}

// --- SpreadOracle parity under LT: every oracle honors the model knob. ---

TEST(LtSpreadOracleTest, ExactOracleMatchesChainClosedForm) {
  // Path 0 -> 1 with p = 0.3: in-degrees <= 1, so LT == IC and
  // E[I({0})] = 1 + 0.3.
  const Graph g = MakePathGraph(2, 0.3);
  auto oracle = ExactSpreadOracle::Create(g, /*max_edges=*/24,
                                          DiffusionModel::kLinearThreshold);
  ASSERT_TRUE(oracle.ok());
  std::vector<NodeId> seeds = {0};
  EXPECT_NEAR(oracle.value()->ExpectedSpread(seeds, nullptr), 1.3, 1e-6);
}

TEST(LtSpreadOracleTest, ExactOracleJointInfluenceClosedForm) {
  // Two sources with p = 0.5 each into node 2: under LT the joint
  // activation probability is min(1, 0.5 + 0.5) = 1, so E[I({0,1})] = 3
  // (the IC oracle would give 2.75).
  GraphBuilder b;
  b.AddEdge(0, 2, 0.5);
  b.AddEdge(1, 2, 0.5);
  Graph g = b.Build().value();
  auto lt = ExactSpreadOracle::Create(g, 24, DiffusionModel::kLinearThreshold);
  auto ic = ExactSpreadOracle::Create(g, 24);
  ASSERT_TRUE(lt.ok() && ic.ok());
  std::vector<NodeId> seeds = {0, 1};
  EXPECT_NEAR(lt.value()->ExpectedSpread(seeds, nullptr), 3.0, 1e-6);
  EXPECT_NEAR(ic.value()->ExpectedSpread(seeds, nullptr), 2.75, 1e-6);
}

TEST(LtSpreadOracleTest, MonteCarloMatchesExactOnSmallGraph) {
  Rng rng(15);
  Graph g = MakeCompleteGraph(5, 0.0);
  ApplyWeightedCascade(&g);

  auto exact =
      ExactSpreadOracle::Create(g, 24, DiffusionModel::kLinearThreshold);
  ASSERT_TRUE(exact.ok());

  MonteCarloOptions mc_options;
  mc_options.model = DiffusionModel::kLinearThreshold;
  mc_options.num_samples = 200000;
  mc_options.seed = 16;
  MonteCarloSpreadOracle mc(g, mc_options);

  std::vector<NodeId> seeds = {0, 2};
  const double want = exact.value()->ExpectedSpread(seeds, nullptr);
  EXPECT_NEAR(mc.ExpectedSpread(seeds, nullptr), want, 0.02);

  // Marginal query (common random numbers) agrees with the exact marginal.
  std::vector<NodeId> base = {0};
  const double want_marginal =
      exact.value()->ExpectedSpread(seeds, nullptr) -
      exact.value()->ExpectedSpread(base, nullptr);
  EXPECT_NEAR(mc.ExpectedMarginalSpread(2, base, nullptr), want_marginal,
              0.02);
}

TEST(LtSpreadOracleTest, MonteCarloRespectsRemovedMask) {
  const Graph g = MakePathGraph(5, 1.0);
  MonteCarloOptions mc_options;
  mc_options.model = DiffusionModel::kLinearThreshold;
  mc_options.num_samples = 200;
  MonteCarloSpreadOracle mc(g, mc_options);
  BitVector removed(5);
  removed.Set(2);
  std::vector<NodeId> seeds = {0};
  EXPECT_NEAR(mc.ExpectedSpread(seeds, &removed), 2.0, 1e-9);
}

TEST(LtSpreadOracleTest, RisOracleMatchesExactUnderLt) {
  // End-to-end LT path through the sampling substrate: a RisSpreadOracle
  // over an LT SamplingEngine reproduces the exact LT expected spread.
  Rng rng(17);
  Graph g = MakeCompleteGraph(6, 0.0);
  ApplyWeightedCascade(&g);

  auto exact =
      ExactSpreadOracle::Create(g, 30, DiffusionModel::kLinearThreshold);
  ASSERT_TRUE(exact.ok());

  SerialSamplingEngine engine(g, DiffusionModel::kLinearThreshold);
  RisOracleOptions ris_options;
  ris_options.num_rr_sets = 1u << 17;
  ris_options.seed = 18;
  RisSpreadOracle ris(&engine, ris_options);

  std::vector<NodeId> seeds = {1, 4};
  EXPECT_NEAR(ris.ExpectedSpread(seeds, nullptr),
              exact.value()->ExpectedSpread(seeds, nullptr), 0.05);
}

TEST(LtSamplingEngineTest, ParallelCountAgreesWithSerialUnderLt) {
  Rng graph_rng(19);
  BarabasiAlbertOptions ba;
  ba.num_nodes = 400;
  ba.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(ba, &graph_rng).value();
  ApplyWeightedCascade(&g);

  const uint64_t theta = 100000;
  Rng serial_rng(20);
  SerialSamplingEngine serial(g, DiffusionModel::kLinearThreshold);
  const double p_serial =
      static_cast<double>(serial.CountConditionalCoverage(
          0, nullptr, nullptr, g.num_nodes(), theta, &serial_rng)) /
      static_cast<double>(theta);

  Rng parallel_rng(21);
  ParallelSamplingEngine parallel(g, DiffusionModel::kLinearThreshold, 4);
  const double p_parallel =
      static_cast<double>(parallel.CountConditionalCoverage(
          0, nullptr, nullptr, g.num_nodes(), theta, &parallel_rng)) /
      static_cast<double>(theta);
  EXPECT_NEAR(p_serial, p_parallel, 0.01);
}

TEST(DiffusionModelTest, Names) {
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kIndependentCascade),
               "IC");
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kLinearThreshold), "LT");
}

}  // namespace
}  // namespace atpm
