// End-to-end pipeline tests: dataset -> target selection -> all algorithms
// on shared realizations, with qualitative checks matching the paper's
// findings (Section VI).
#include <gtest/gtest.h>

#include <vector>

#include "bench_util/datasets.h"
#include "bench_util/experiment.h"
#include "core/ars.h"
#include "core/hatp.h"
#include "core/hntp.h"
#include "core/nonadaptive_greedy.h"
#include "core/target_selection.h"

namespace atpm {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One shared small dataset + problem for all pipeline tests.
    Result<BenchDataset> ds = BuildDataset("HepMini", 0.5, 3);
    ASSERT_TRUE(ds.ok());
    dataset_ = new BenchDataset(std::move(ds).value());

    TargetSelectionOptions options;
    options.seed = 11;
    // The qualitative profit orderings below (Fig. 2) hold with modest
    // margins on this small instance; pin the kernel so the instance and
    // the sample streams match the margins they were calibrated under
    // (kernel equivalence has its own suite in rr_kernel_test.cc).
    options.kernel = SamplingKernel::kPerEdge;
    Result<TargetSelectionResult> sel = BuildTopKTargetProblem(
        dataset_->graph, 15, CostScheme::kDegreeProportional, options);
    ASSERT_TRUE(sel.ok()) << sel.status().ToString();
    selection_ = new TargetSelectionResult(std::move(sel).value());
  }
  static void TearDownTestSuite() {
    delete selection_;
    delete dataset_;
    selection_ = nullptr;
    dataset_ = nullptr;
  }

  static BenchDataset* dataset_;
  static TargetSelectionResult* selection_;
};

BenchDataset* PipelineTest::dataset_ = nullptr;
TargetSelectionResult* PipelineTest::selection_ = nullptr;

TEST_F(PipelineTest, CostCalibrationMakesTargetProfitNonnegative) {
  // rho(T) = E[I(T)] - E_l[I(T)] >= 0 in expectation; check on realized
  // worlds with slack for sampling noise.
  ExperimentRunner runner(selection_->problem, 8, 21);
  AlgoStats baseline = runner.EvaluateBaseline();
  EXPECT_GT(baseline.mean_profit, -0.15 * selection_->problem.k() *
                                      selection_->problem.TotalTargetCost() /
                                      selection_->problem.k());
}

TEST_F(PipelineTest, HatpBeatsArsAndBaseline) {
  ExperimentRunner runner(selection_->problem, 4, 22);
  HatpOptions hatp_options;
  hatp_options.sampling.max_rr_sets_per_decision = 1ull << 17;
  hatp_options.sampling.num_threads = 4;
  hatp_options.sampling.kernel = SamplingKernel::kPerEdge;
  HatpPolicy hatp(hatp_options);
  ArsPolicy ars;

  Result<AlgoStats> hatp_stats = runner.RunAdaptive(&hatp);
  Result<AlgoStats> ars_stats = runner.RunAdaptive(&ars);
  ASSERT_TRUE(hatp_stats.ok() && ars_stats.ok());
  // Fig. 2's ordering: HATP above ARS, both above the baseline.
  EXPECT_GT(hatp_stats.value().mean_profit, ars_stats.value().mean_profit);
  EXPECT_GT(hatp_stats.value().mean_profit,
            runner.EvaluateBaseline().mean_profit);
}

TEST_F(PipelineTest, NonadaptiveBatchesAreProfitable) {
  ExperimentRunner runner(selection_->problem, 4, 23);
  Rng rng(31);
  const uint64_t theta = 1u << 14;
  Result<NonadaptiveResult> nsg = RunNsg(selection_->problem, theta, &rng);
  Result<NonadaptiveResult> ndg = RunNdg(selection_->problem, theta, &rng);
  ASSERT_TRUE(nsg.ok() && ndg.ok());
  const double nsg_profit =
      runner.EvaluateFixedSet(nsg.value().seeds, 0.0).mean_profit;
  const double ndg_profit =
      runner.EvaluateFixedSet(ndg.value().seeds, 0.0).mean_profit;
  const double baseline = runner.EvaluateBaseline().mean_profit;
  EXPECT_GT(nsg_profit, baseline);
  EXPECT_GT(ndg_profit, baseline);
}

TEST_F(PipelineTest, AdaptiveBeatsItsNonadaptiveTailoring) {
  // The adaptivity-gap claim (Figs. 2, 3): HATP >= HNTP on average.
  // Averaged over few worlds this can be noisy, so assert with slack.
  ExperimentRunner runner(selection_->problem, 6, 24);
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 1ull << 17;
  options.sampling.num_threads = 4;
  HatpPolicy hatp(options);
  Result<AlgoStats> hatp_stats = runner.RunAdaptive(&hatp);
  ASSERT_TRUE(hatp_stats.ok());

  Rng rng(41);
  Result<HntpResult> hntp = RunHntp(selection_->problem, options, &rng);
  ASSERT_TRUE(hntp.ok());
  const double hntp_profit =
      runner.EvaluateFixedSet(hntp.value().seeds, 0.0).mean_profit;
  EXPECT_GT(hatp_stats.value().mean_profit, 0.8 * hntp_profit);
}

TEST_F(PipelineTest, AllSeedsComeFromTargetSet) {
  ExperimentRunner runner(selection_->problem, 2, 25);
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 1ull << 16;
  options.sampling.num_threads = 4;
  HatpPolicy hatp(options);

  BitVector in_targets(dataset_->graph.num_nodes());
  for (NodeId t : selection_->problem.targets) in_targets.Set(t);

  for (uint32_t i = 0; i < 2; ++i) {
    AdaptiveEnvironment env(Realization(runner.worlds()[i]));
    Rng rng(runner.WorldSeed(i));
    Result<AdaptiveRunResult> run =
        hatp.Run(selection_->problem, &env, &rng);
    ASSERT_TRUE(run.ok());
    for (NodeId s : run.value().seeds) EXPECT_TRUE(in_targets.Test(s));
    // Spread accounting is self-consistent.
    EXPECT_EQ(run.value().realized_spread, env.num_activated());
    EXPECT_NEAR(run.value().realized_profit,
                run.value().realized_spread - run.value().seed_cost, 1e-9);
  }
}

TEST_F(PipelineTest, PredefinedCostPipelineRunsEndToEnd) {
  Result<TargetSelectionResult> sel = BuildPredefinedCostProblem(
      dataset_->graph, 0.5, CostScheme::kUniform, TargetMethod::kNdg);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  ASSERT_GT(sel.value().problem.k(), 0u);

  ExperimentRunner runner(sel.value().problem, 2, 26);
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 1ull << 16;
  options.sampling.num_threads = 4;
  HatpPolicy hatp(options);
  Result<AlgoStats> stats = runner.RunAdaptive(&hatp);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().completed_runs, 2u);
}

}  // namespace
}  // namespace atpm
