#include "core/adg.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          std::vector<double> target_costs) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (size_t i = 0; i < problem.targets.size(); ++i) {
    problem.costs[problem.targets[i]] = target_costs[i];
  }
  return problem;
}

std::unique_ptr<ExactSpreadOracle> MakeExact(const Graph& g) {
  auto oracle = ExactSpreadOracle::Create(g);
  EXPECT_TRUE(oracle.ok());
  return std::move(oracle).value();
}

// Enumerates all possible worlds of `g` with their probabilities.
std::vector<std::pair<Realization, double>> EnumerateWorlds(const Graph& g) {
  const uint64_t m = g.num_edges();
  std::vector<float> probs(m);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto p = g.OutProbs(u);
    for (uint32_t j = 0; j < p.size(); ++j) probs[g.OutEdgeIndex(u, j)] = p[j];
  }
  std::vector<std::pair<Realization, double>> worlds;
  for (uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    double prob = 1.0;
    BitVector live(m);
    for (uint64_t e = 0; e < m; ++e) {
      if ((mask >> e) & 1ULL) {
        prob *= probs[e];
        live.Set(e);
      } else {
        prob *= 1.0 - probs[e];
      }
    }
    if (prob > 0.0) {
      worlds.emplace_back(Realization::FromLiveEdges(g, std::move(live)),
                          prob);
    }
  }
  return worlds;
}

// Exact expected profit of the ADG policy: runs it on every possible world.
double ExactPolicyProfit(AdaptivePolicy* policy, const ProfitProblem& problem,
                         const Graph& g) {
  double lambda = 0.0;
  Rng rng(0);
  for (auto& [world, prob] : EnumerateWorlds(g)) {
    AdaptiveEnvironment env{Realization(world)};
    Result<AdaptiveRunResult> run = policy->Run(problem, &env, &rng);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    lambda += prob * run.value().realized_profit;
  }
  return lambda;
}

// Exhaustive nonadaptive optimum (a lower bound on the adaptive optimum).
double BruteForceOptProfit(const ProfitProblem& problem,
                           SpreadOracle* oracle) {
  const uint32_t k = problem.k();
  double best = 0.0;
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    std::vector<NodeId> seeds;
    for (uint32_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) seeds.push_back(problem.targets[i]);
    }
    best = std::max(best, OracleProfit(problem, oracle, seeds));
  }
  return best;
}

TEST(AdgTest, SelectsProfitableHub) {
  const Graph g = MakeStarGraph(8, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {2.0});
  auto oracle = MakeExact(g);
  AdgPolicy policy(oracle.get());

  Rng world_rng(1);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().seeds.size(), 1u);
  EXPECT_EQ(run.value().realized_spread, 8u);
  EXPECT_DOUBLE_EQ(run.value().realized_profit, 6.0);
  EXPECT_DOUBLE_EQ(run.value().seed_cost, 2.0);
}

TEST(AdgTest, AbandonsOverpricedNodes) {
  const Graph g = MakeCompleteGraph(4, 0.0);
  ProfitProblem problem = MakeProblem(g, {0, 1}, {3.0, 3.0});
  auto oracle = MakeExact(g);
  AdgPolicy policy(oracle.get());

  Rng world_rng(1);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().seeds.empty());
  EXPECT_EQ(run.value().steps.size(), 2u);
  EXPECT_EQ(run.value().steps[0].decision, SeedDecision::kAbandoned);
}

TEST(AdgTest, SkipsActivatedCandidates) {
  // Path 0 -> 1 -> 2 at p=1 with targets {0, 1}: seeding 0 activates 1,
  // so 1 must be skipped.
  const Graph g = MakePathGraph(3, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 1}, {0.5, 0.5});
  auto oracle = MakeExact(g);
  AdgPolicy policy(oracle.get());

  Rng world_rng(1);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().seeds.size(), 1u);
  EXPECT_EQ(run.value().seeds[0], 0u);
  EXPECT_EQ(run.value().steps[1].decision, SeedDecision::kSkippedActivated);
  EXPECT_DOUBLE_EQ(run.value().realized_profit, 3.0 - 0.5);
}

TEST(AdgTest, PaperFigure1AdaptiveWalkthrough) {
  // Reproduce Section II-B: with the realization of Fig. 1(b)-(d) the
  // adaptive strategy seeds v2 (activating v3, v4) and v6 (activating
  // v5, v7), skipping... v1 is examined and abandoned; profit = 6 - 3 = 3.
  const Graph g = MakePaperFigure1Graph();
  // Fig 1(b): v2's successful edges are v2->v3 and v2->v4 (v2->v1 fails);
  // v3->v4 also shown live; v4->v5 fails. Fig 1(d): v6->v5, v6->v7 live.
  BitVector live(g.num_edges());
  auto set_live = [&](NodeId u, NodeId v) {
    const auto neigh = g.OutNeighbors(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      if (neigh[j] == v) live.Set(g.OutEdgeIndex(u, j));
    }
  };
  set_live(1, 2);  // v2 -> v3
  set_live(1, 3);  // v2 -> v4
  set_live(2, 3);  // v3 -> v4
  set_live(5, 4);  // v6 -> v5
  set_live(5, 6);  // v6 -> v7

  ProfitProblem problem = MakeProblem(g, {1, 5, 0}, {1.5, 1.5, 1.5});
  auto oracle = MakeExact(g);
  AdgPolicy policy(oracle.get());
  AdaptiveEnvironment env(Realization::FromLiveEdges(g, std::move(live)));
  Rng rng(1);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().seeds.size(), 2u);
  EXPECT_EQ(run.value().seeds[0], 1u);  // v2
  EXPECT_EQ(run.value().seeds[1], 5u);  // v6
  EXPECT_EQ(run.value().realized_spread, 6u);
  EXPECT_DOUBLE_EQ(run.value().realized_profit, 3.0);
}

TEST(AdgTest, RejectsMismatchedEnvironment) {
  const Graph g1 = MakePathGraph(3, 0.5);
  const Graph g2 = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g1, {0}, {1.0});
  auto oracle = MakeExact(g1);
  AdgPolicy policy(oracle.get());
  Rng world_rng(1);
  AdaptiveEnvironment env(Realization::Sample(g2, &world_rng));
  Rng rng(2);
  EXPECT_FALSE(policy.Run(problem, &env, &rng).ok());
}

TEST(AdgTest, RejectsUsedEnvironment) {
  const Graph g = MakePathGraph(3, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {1.0});
  auto oracle = MakeExact(g);
  AdgPolicy policy(oracle.get());
  Rng world_rng(1);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  env.SeedAndObserve(2);
  Rng rng(2);
  EXPECT_FALSE(policy.Run(problem, &env, &rng).ok());
}

// Theorem 1 necessary condition: Λ(ADG) >= Λ(π_opt)/3 >= max_S ρ(S)/3,
// verified by exhausting both the world space and the subset space.
class AdgApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(AdgApproximationTest, ExpectedProfitAtLeastThirdOfNonadaptiveOpt) {
  const int seed = GetParam();
  Rng rng(seed * 7919 + 13);
  GraphBuilder builder;
  builder.ReserveNodes(5);
  for (int e = 0; e < 8; ++e) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(5));
    NodeId v = static_cast<NodeId>(rng.UniformInt(5));
    if (u == v) continue;
    builder.AddEdge(u, v, 0.2 + 0.6 * rng.UniformDouble());
  }
  Graph g = builder.Build().value();
  auto oracle = MakeExact(g);

  std::vector<NodeId> targets = {0, 1, 2};
  const double spread_t = oracle->ExpectedSpread(targets, nullptr);
  std::vector<double> costs;
  double total = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    costs.push_back(0.2 + rng.UniformDouble());
    total += costs.back();
  }
  for (double& c : costs) c *= 0.85 * spread_t / total;  // rho(T) >= 0

  ProfitProblem problem = MakeProblem(g, targets, costs);
  ASSERT_TRUE(problem.Validate().ok());

  AdgPolicy policy(oracle.get());
  const double lambda_adg = ExactPolicyProfit(&policy, problem, g);
  const double opt_nonadaptive = BruteForceOptProfit(problem, oracle.get());
  EXPECT_GE(lambda_adg, opt_nonadaptive / 3.0 - 1e-9)
      << "Λ(ADG)=" << lambda_adg << " opt=" << opt_nonadaptive;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AdgApproximationTest,
                         ::testing::Range(0, 12));

// Adaptivity gap: on Fig. 1, the adaptive policy's expected profit should
// be at least the best nonadaptive profit.
TEST(AdgTest, AdaptiveBeatsNonadaptiveOnPaperExample) {
  const Graph g = MakePaperFigure1Graph();
  ProfitProblem problem = MakeProblem(g, {1, 5, 0}, {1.5, 1.5, 1.5});
  auto oracle = MakeExact(g);
  AdgPolicy policy(oracle.get());
  const double lambda_adg = ExactPolicyProfit(&policy, problem, g);
  EXPECT_GE(lambda_adg, 1.66 - 0.02);
}

}  // namespace
}  // namespace atpm
