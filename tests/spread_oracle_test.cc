#include "diffusion/spread_oracle.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

std::unique_ptr<ExactSpreadOracle> MakeExact(const Graph& g) {
  Result<std::unique_ptr<ExactSpreadOracle>> oracle =
      ExactSpreadOracle::Create(g);
  EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
  return std::move(oracle).value();
}

TEST(ExactSpreadOracleTest, SingleEdgeClosedForm) {
  const Graph g = MakePathGraph(2, 0.3);
  auto oracle = MakeExact(g);
  std::vector<NodeId> seeds = {0};
  // Probabilities are stored as float; tolerances account for the cast.
  EXPECT_NEAR(oracle->ExpectedSpread(seeds, nullptr), 1.3, 1e-6);
}

TEST(ExactSpreadOracleTest, PathClosedForm) {
  // Path 0 -> 1 -> 2 with p: E[I({0})] = 1 + p + p^2.
  const double p = 0.4;
  const Graph g = MakePathGraph(3, p);
  auto oracle = MakeExact(g);
  std::vector<NodeId> seeds = {0};
  EXPECT_NEAR(oracle->ExpectedSpread(seeds, nullptr), 1.0 + p + p * p, 1e-6);
}

TEST(ExactSpreadOracleTest, StarClosedForm) {
  const Graph g = MakeStarGraph(6, 0.25);  // 1 + 5 * 0.25 = 2.25
  auto oracle = MakeExact(g);
  std::vector<NodeId> seeds = {0};
  EXPECT_NEAR(oracle->ExpectedSpread(seeds, nullptr), 2.25, 1e-6);
}

TEST(ExactSpreadOracleTest, EmptySeedSetHasZeroSpread) {
  const Graph g = MakePathGraph(3, 0.5);
  auto oracle = MakeExact(g);
  EXPECT_DOUBLE_EQ(oracle->ExpectedSpread({}, nullptr), 0.0);
}

TEST(ExactSpreadOracleTest, FullSeedSetSpreadIsN) {
  const Graph g = MakePathGraph(4, 0.5);
  auto oracle = MakeExact(g);
  std::vector<NodeId> seeds = {0, 1, 2, 3};
  EXPECT_NEAR(oracle->ExpectedSpread(seeds, nullptr), 4.0, 1e-12);
}

TEST(ExactSpreadOracleTest, RemovedMaskGivesResidualSpread) {
  const Graph g = MakePathGraph(4, 1.0);
  auto oracle = MakeExact(g);
  BitVector removed(4);
  removed.Set(2);
  std::vector<NodeId> seeds = {0};
  // Residual: 0 -> 1, blocked.
  EXPECT_NEAR(oracle->ExpectedSpread(seeds, &removed), 2.0, 1e-12);
}

TEST(ExactSpreadOracleTest, RemovedSeedContributesNothing) {
  const Graph g = MakePathGraph(3, 1.0);
  auto oracle = MakeExact(g);
  BitVector removed(3);
  removed.Set(0);
  std::vector<NodeId> seeds = {0};
  EXPECT_DOUBLE_EQ(oracle->ExpectedSpread(seeds, &removed), 0.0);
}

TEST(ExactSpreadOracleTest, CreateFailsOnLargeGraphs) {
  const Graph g = MakeCompleteGraph(8, 0.1);  // 56 edges > default cap 24
  Result<std::unique_ptr<ExactSpreadOracle>> oracle =
      ExactSpreadOracle::Create(g);
  ASSERT_FALSE(oracle.ok());
  EXPECT_TRUE(oracle.status().IsInvalidArgument());
}

TEST(ExactSpreadOracleTest, MarginalSpreadMatchesDifference) {
  const Graph g = MakePaperFigure1Graph();
  auto oracle = MakeExact(g);
  std::vector<NodeId> base = {1};
  std::vector<NodeId> with = {1, 5};
  const double marginal = oracle->ExpectedMarginalSpread(5, base, nullptr);
  EXPECT_NEAR(marginal,
              oracle->ExpectedSpread(with, nullptr) -
                  oracle->ExpectedSpread(base, nullptr),
              1e-12);
}

TEST(ExactSpreadOracleTest, PaperFigure1NonadaptiveTargetProfit) {
  // The paper states E[I_{G1}({v1, v2, v6})] = 6.16 for Fig. 1(a).
  const Graph g = MakePaperFigure1Graph();
  auto oracle = MakeExact(g);
  std::vector<NodeId> targets = {0, 1, 5};  // v1, v2, v6
  EXPECT_NEAR(oracle->ExpectedSpread(targets, nullptr), 6.16, 0.02);
}

TEST(MonteCarloSpreadOracleTest, MatchesExactOnSmallGraphs) {
  const Graph g = MakePaperFigure1Graph();
  auto exact = MakeExact(g);
  MonteCarloOptions options;
  options.num_samples = 200000;
  options.seed = 11;
  MonteCarloSpreadOracle mc(g, options);

  for (const std::vector<NodeId>& seeds :
       std::vector<std::vector<NodeId>>{{0}, {1}, {5}, {0, 1}, {1, 5},
                                        {0, 1, 5}}) {
    EXPECT_NEAR(mc.ExpectedSpread(seeds, nullptr),
                exact->ExpectedSpread(seeds, nullptr), 0.05)
        << "seeds size " << seeds.size();
  }
}

TEST(MonteCarloSpreadOracleTest, MarginalUsesCommonRandomNumbers) {
  // The paired estimator must match exact marginals tightly even with a
  // modest sample count (independent estimates would need far more).
  const Graph g = MakePaperFigure1Graph();
  auto exact = MakeExact(g);
  MonteCarloOptions options;
  options.num_samples = 50000;
  options.seed = 13;
  MonteCarloSpreadOracle mc(g, options);

  std::vector<NodeId> base = {1};
  EXPECT_NEAR(mc.ExpectedMarginalSpread(5, base, nullptr),
              exact->ExpectedMarginalSpread(5, base, nullptr), 0.06);
}

TEST(MonteCarloSpreadOracleTest, MarginalOfMemberIsZero) {
  const Graph g = MakePathGraph(4, 0.5);
  MonteCarloOptions options;
  options.num_samples = 20000;
  MonteCarloSpreadOracle mc(g, options);
  std::vector<NodeId> base = {1};
  EXPECT_DOUBLE_EQ(mc.ExpectedMarginalSpread(1, base, nullptr), 0.0);
}

TEST(MonteCarloSpreadOracleTest, RespectsRemovedMask) {
  const Graph g = MakePathGraph(4, 1.0);
  MonteCarloOptions options;
  options.num_samples = 1000;
  MonteCarloSpreadOracle mc(g, options);
  BitVector removed(4);
  removed.Set(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_NEAR(mc.ExpectedSpread(seeds, &removed), 1.0, 1e-9);
}

TEST(MonteCarloSpreadOracleTest, DeterministicGivenSeed) {
  const Graph g = MakePaperFigure1Graph();
  MonteCarloOptions options;
  options.num_samples = 5000;
  options.seed = 99;
  MonteCarloSpreadOracle a(g, options);
  MonteCarloSpreadOracle b(g, options);
  std::vector<NodeId> seeds = {1, 5};
  EXPECT_DOUBLE_EQ(a.ExpectedSpread(seeds, nullptr),
                   b.ExpectedSpread(seeds, nullptr));
}

// Property sweep: MC tracks the exact oracle across several structured
// graphs and seed sets.
class OracleAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleAgreementTest, McMatchesExact) {
  const int variant = GetParam();
  Graph g;
  switch (variant) {
    case 0:
      g = MakePathGraph(5, 0.6);
      break;
    case 1:
      g = MakeStarGraph(8, 0.4);
      break;
    case 2:
      g = MakeCycleGraph(6, 0.5);
      break;
    default:
      g = MakePaperFigure1Graph();
  }
  auto exact = MakeExact(g);
  MonteCarloOptions options;
  options.num_samples = 100000;
  options.seed = 1000 + variant;
  MonteCarloSpreadOracle mc(g, options);

  std::vector<NodeId> seeds = {0, static_cast<NodeId>(g.num_nodes() / 2)};
  EXPECT_NEAR(mc.ExpectedSpread(seeds, nullptr),
              exact->ExpectedSpread(seeds, nullptr), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Graphs, OracleAgreementTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace atpm
