#include "graph/weighting.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

Graph SmallTestGraph() {
  GraphBuilder b;
  b.AddEdge(0, 2, 0.0);
  b.AddEdge(1, 2, 0.0);
  b.AddEdge(3, 2, 0.0);
  b.AddEdge(0, 1, 0.0);
  b.AddEdge(2, 3, 0.0);
  Result<Graph> g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(WeightedCascadeTest, ProbabilityIsInverseInDegree) {
  Graph g = SmallTestGraph();
  ApplyWeightedCascade(&g);
  // Node 2 has in-degree 3: every incoming arc carries 1/3.
  for (float p : g.InProbs(2)) EXPECT_FLOAT_EQ(p, 1.0f / 3.0f);
  // Node 1 has in-degree 1.
  EXPECT_FLOAT_EQ(g.InProbs(1)[0], 1.0f);
  // Forward view agrees.
  const auto neigh = g.OutNeighbors(0);
  const auto probs = g.OutProbs(0);
  for (uint32_t j = 0; j < neigh.size(); ++j) {
    EXPECT_FLOAT_EQ(probs[j], 1.0f / static_cast<float>(g.InDegree(neigh[j])));
  }
}

TEST(WeightedCascadeTest, IncomingProbabilitiesSumToOne) {
  Rng rng(5);
  BarabasiAlbertOptions options;
  options.num_nodes = 300;
  options.edges_per_node = 3;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) continue;
    double sum = 0.0;
    for (float p : g.InProbs(v)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(ConstantProbabilityTest, AllEdgesGetP) {
  Graph g = SmallTestGraph();
  ApplyConstantProbability(&g, 0.37);
  for (const WeightedEdge& e : g.CollectEdges()) {
    EXPECT_FLOAT_EQ(e.prob, 0.37f);
  }
}

TEST(TrivalencyTest, OnlyThreeLevelsAppear) {
  Rng rng(6);
  Graph g = MakeCompleteGraph(20, 0.0);
  ApplyTrivalency(&g, &rng);
  int counts[3] = {0, 0, 0};
  for (const WeightedEdge& e : g.CollectEdges()) {
    if (e.prob == 0.1f) {
      ++counts[0];
    } else if (e.prob == 0.01f) {
      ++counts[1];
    } else if (e.prob == 0.001f) {
      ++counts[2];
    } else {
      FAIL() << "unexpected probability " << e.prob;
    }
  }
  // All three levels should occur on 380 edges.
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
}

TEST(TrivalencyTest, ForwardReverseConsistent) {
  Rng rng(7);
  Graph g = SmallTestGraph();
  ApplyTrivalency(&g, &rng);
  // The hash-keyed assignment must give identical values in both CSR views.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto in_neigh = g.InNeighbors(v);
    const auto in_probs = g.InProbs(v);
    for (uint32_t j = 0; j < in_neigh.size(); ++j) {
      const NodeId u = in_neigh[j];
      const auto out_neigh = g.OutNeighbors(u);
      const auto out_probs = g.OutProbs(u);
      bool found = false;
      for (uint32_t l = 0; l < out_neigh.size(); ++l) {
        if (out_neigh[l] == v) {
          EXPECT_FLOAT_EQ(out_probs[l], in_probs[j]);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(UniformRandomProbabilityTest, StaysInRange) {
  Rng rng(8);
  Graph g = MakeCompleteGraph(15, 0.0);
  ApplyUniformRandomProbability(&g, 0.2, 0.6, &rng);
  for (const WeightedEdge& e : g.CollectEdges()) {
    EXPECT_GE(e.prob, 0.2f);
    EXPECT_LE(e.prob, 0.6f);
  }
}

TEST(UniformRandomProbabilityTest, DifferentSaltsChangeAssignment) {
  Graph g1 = MakeCompleteGraph(10, 0.0);
  Graph g2 = MakeCompleteGraph(10, 0.0);
  Rng rng1(100);
  Rng rng2(200);
  ApplyUniformRandomProbability(&g1, 0.0, 1.0, &rng1);
  ApplyUniformRandomProbability(&g2, 0.0, 1.0, &rng2);
  const auto e1 = g1.CollectEdges();
  const auto e2 = g2.CollectEdges();
  int differing = 0;
  for (size_t i = 0; i < e1.size(); ++i) {
    if (e1[i].prob != e2[i].prob) ++differing;
  }
  EXPECT_GT(differing, static_cast<int>(e1.size() / 2));
}

TEST(WeightingTest, ReweightingOverwritesPreviousScheme) {
  Graph g = SmallTestGraph();
  ApplyConstantProbability(&g, 0.9);
  ApplyWeightedCascade(&g);
  for (float p : g.InProbs(2)) EXPECT_FLOAT_EQ(p, 1.0f / 3.0f);
}

}  // namespace
}  // namespace atpm
