// Tests for the memory-mapped binary graph store: pack -> mmap round-trip
// equality (CSR, probabilities, edge indices, weight-class census), header /
// version / checksum rejection on truncated and bit-flipped files, tiled
// reverse-CSR resolution across tile boundaries, copy-on-write reweighting
// of mapped graphs, and bit-identical RR pools + HATP decision sequences
// for mmap-loaded vs builder-built graphs at fixed seeds.
#include "graph/graph_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/hatp.h"
#include "core/target_selection.h"
#include "diffusion/realization.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/weighting.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

Graph WcGraph(NodeId n = 300) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

Graph TrivalencyGraph(NodeId n = 300) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 3;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  Rng wrng(99);
  ApplyTrivalency(&g, &wrng);
  return g;
}

void ExpectProfilesEqual(const WeightClassProfile& a,
                         const WeightClassProfile& b) {
  EXPECT_EQ(a.empty_nodes, b.empty_nodes);
  EXPECT_EQ(a.uniform_nodes, b.uniform_nodes);
  EXPECT_EQ(a.few_distinct_nodes, b.few_distinct_nodes);
  EXPECT_EQ(a.general_nodes, b.general_nodes);
  EXPECT_EQ(a.segmented_nodes, b.segmented_nodes);
  EXPECT_EQ(a.jumpable_edges, b.jumpable_edges);
  EXPECT_EQ(a.total_edges, b.total_edges);
  EXPECT_EQ(a.lt_fast_nodes, b.lt_fast_nodes);
}

// Element-for-element equality of everything the sampling kernels read.
// Probabilities are compared bit-exactly — the store memcpy's floats, so
// any tolerance here would mask a format bug.
void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.OutDegree(u), b.OutDegree(u)) << "node " << u;
    ASSERT_EQ(a.InDegree(u), b.InDegree(u)) << "node " << u;
    const auto a_out = a.OutNeighbors(u);
    const auto b_out = b.OutNeighbors(u);
    const auto a_op = a.OutProbs(u);
    const auto b_op = b.OutProbs(u);
    for (uint32_t j = 0; j < a.OutDegree(u); ++j) {
      ASSERT_EQ(a_out[j], b_out[j]) << "out arc " << u << "/" << j;
      ASSERT_EQ(a_op[j], b_op[j]) << "out prob " << u << "/" << j;
    }
    const auto a_in = a.InNeighbors(u);
    const auto b_in = b.InNeighbors(u);
    const auto a_ip = a.InProbs(u);
    const auto b_ip = b.InProbs(u);
    for (uint32_t j = 0; j < a.InDegree(u); ++j) {
      ASSERT_EQ(a_in[j], b_in[j]) << "in arc " << u << "/" << j;
      ASSERT_EQ(a_ip[j], b_ip[j]) << "in prob " << u << "/" << j;
      ASSERT_EQ(a.InEdgeIndex(u, j), b.InEdgeIndex(u, j))
          << "edge index " << u << "/" << j;
    }
  }
  EXPECT_EQ(a.InJumpableEdges(), b.InJumpableEdges());
  EXPECT_EQ(a.OutJumpableEdges(), b.OutJumpableEdges());
  ExpectProfilesEqual(a.InWeightClassProfile(), b.InWeightClassProfile());
  ExpectProfilesEqual(a.OutWeightClassProfile(), b.OutWeightClassProfile());
}

uint64_t PoolHash(const RRCollection& pool) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t i = 0; i < pool.num_sets(); ++i) {
    const auto s = pool.set(i);
    h = (h ^ s.size()) * 1099511628211ull;
    for (NodeId v : s) h = (h ^ v) * 1099511628211ull;
  }
  return h;
}

uint64_t PoolHashFor(const Graph& g, DiffusionModel model, uint64_t seed,
                     uint64_t num_sets) {
  Rng rng(seed);
  SerialSamplingEngine engine(g, model);
  return PoolHash(engine.GeneratePool(nullptr, g.num_nodes(), num_sets, &rng));
}

class GraphStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/atpm_graph_store_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".atpm";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Graph SaveAndLoad(const Graph& g, uint32_t tile_size) {
    GraphStoreWriteOptions write;
    write.tile_size = tile_size;
    Status save = SaveGraphStore(g, path_, write);
    EXPECT_TRUE(save.ok()) << save.ToString();
    Result<Graph> loaded = LoadGraphStore(path_);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return std::move(loaded).value();
  }

  // Flips one bit at `byte_offset` in the stored file.
  void FlipBit(uint64_t byte_offset) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(byte_offset));
    char c = 0;
    f.read(&c, 1);
    c ^= 0x10;
    f.seekp(static_cast<std::streamoff>(byte_offset));
    f.write(&c, 1);
  }

  std::string path_;
};

// ---- Round-trip equality.

TEST_F(GraphStoreTest, UntiledRoundTripIsExact) {
  const Graph g = WcGraph();
  const Graph loaded = SaveAndLoad(g, /*tile_size=*/0);
  EXPECT_TRUE(loaded.is_mapped());
  EXPECT_EQ(loaded.reverse_tile_size(), 0u);
  ExpectGraphsEqual(g, loaded);
}

TEST_F(GraphStoreTest, TiledRoundTripIsExact) {
  const Graph g = WcGraph();
  // 64-node tiles on a 300-node graph: five tiles, the last one ragged.
  const Graph loaded = SaveAndLoad(g, /*tile_size=*/64);
  EXPECT_TRUE(loaded.is_mapped());
  EXPECT_EQ(loaded.reverse_tile_size(), 64u);
  ExpectGraphsEqual(g, loaded);
}

TEST_F(GraphStoreTest, SingleNodeTilesRoundTrip) {
  // tile_size = 1 makes every node its own tile — maximal stress on the
  // per-tile base-pointer resolution.
  const Graph g = TrivalencyGraph(64);
  ExpectGraphsEqual(g, SaveAndLoad(g, /*tile_size=*/1));
}

TEST_F(GraphStoreTest, TrivalencyJumpIndexSurvivesRoundTrip) {
  // Trivalency produces kFewDistinct nodes, exercising the segment /
  // jump-view / alias sections that weighted cascade leaves empty.
  const Graph g = TrivalencyGraph();
  ExpectGraphsEqual(g, SaveAndLoad(g, /*tile_size=*/64));
}

TEST_F(GraphStoreTest, EmptyGraphRoundTrips) {
  GraphBuilder builder;
  builder.ReserveNodes(5);
  const Graph g = builder.Build().value();
  const Graph loaded = SaveAndLoad(g, /*tile_size=*/4096);
  EXPECT_EQ(loaded.num_nodes(), 5u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  ExpectGraphsEqual(g, loaded);
}

TEST_F(GraphStoreTest, RepackingMappedGraphRoundTrips) {
  // Save tiled, load (graph now resolves through tile pointers), save that
  // mapped graph untiled, load again: still identical to the original.
  const Graph g = TrivalencyGraph();
  const Graph mapped = SaveAndLoad(g, /*tile_size=*/32);
  const std::string second = path_ + ".repack";
  GraphStoreWriteOptions untiled;
  untiled.tile_size = 0;
  ASSERT_TRUE(SaveGraphStore(mapped, second, untiled).ok());
  Result<Graph> loaded = LoadGraphStore(second);
  std::remove(second.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(g, loaded.value());
}

TEST_F(GraphStoreTest, InfoReportsHeaderFields) {
  const Graph g = WcGraph();
  GraphStoreWriteOptions write;
  write.tile_size = 64;
  ASSERT_TRUE(SaveGraphStore(g, path_, write).ok());
  Result<GraphStoreInfo> info = ReadGraphStoreInfo(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, kGraphStoreVersion);
  EXPECT_EQ(info.value().num_nodes, 300u);
  EXPECT_EQ(info.value().num_edges, g.num_edges());
  EXPECT_EQ(info.value().tile_size, 64u);
  EXPECT_EQ(info.value().num_tiles, (300u + 63u) / 64u);
}

TEST_F(GraphStoreTest, RejectsInvalidTileSize) {
  const Graph g = WcGraph(16);
  GraphStoreWriteOptions write;
  write.tile_size = 48;  // not a power of two
  const Status s = SaveGraphStore(g, path_, write);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// ---- Corruption and format rejection.

TEST_F(GraphStoreTest, RejectsMissingFile) {
  Result<Graph> loaded = LoadGraphStore(path_ + ".nope");
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status().ToString();
}

TEST_F(GraphStoreTest, RejectsNonStoreFile) {
  std::ofstream out(path_);
  for (int i = 0; i < 40; ++i) out << "0 1 0.5\n1 2 0.25\n";
  out.close();
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("magic"), std::string::npos);
}

TEST_F(GraphStoreTest, RejectsTruncatedFile) {
  ASSERT_TRUE(SaveGraphStore(WcGraph(), path_).ok());
  // Chop off the tail; the header's recorded file_bytes no longer match.
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path_, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamoff>(bytes.size() / 2));
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("truncated"), std::string::npos);
}

TEST_F(GraphStoreTest, RejectsTruncationWithinSectionTable) {
  ASSERT_TRUE(SaveGraphStore(WcGraph(), path_).ok());
  // Cut the file right after the header: the header itself still hashes
  // clean, so the rejection must come from the size / table validation.
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path_, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), 88);
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("truncated"), std::string::npos);
}

TEST_F(GraphStoreTest, RejectsTrailingGarbage) {
  ASSERT_TRUE(SaveGraphStore(WcGraph(), path_).ok());
  // A partially overwritten (longer) file is as suspect as a truncated
  // one: the header's recorded size must match exactly in both directions.
  std::ofstream(path_, std::ios::binary | std::ios::app).write("junk", 4);
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("trailing garbage"),
            std::string::npos);
}

TEST_F(GraphStoreTest, SaveIsAtomicOverExistingStore) {
  // Re-saving over an existing store goes through a temp file + rename:
  // afterwards the new content is fully visible and no temp file remains.
  const Graph first = WcGraph();
  ASSERT_TRUE(SaveGraphStore(first, path_).ok());
  const Graph second = TrivalencyGraph();
  GraphStoreWriteOptions tiled;
  tiled.tile_size = 32;
  ASSERT_TRUE(SaveGraphStore(second, path_, tiled).ok());
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(second, loaded.value());
  EXPECT_EQ(loaded.value().reverse_tile_size(), 32u);
}

TEST_F(GraphStoreTest, RejectsHeaderShortFile) {
  std::ofstream(path_, std::ios::binary) << "ATPMGRF1";
  Result<Graph> loaded = LoadGraphStore(path_);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(GraphStoreTest, RejectsUnknownVersion) {
  ASSERT_TRUE(SaveGraphStore(WcGraph(), path_).ok());
  // The version field is the u32 right after the 8-byte magic. The check
  // runs before the header checksum, so the error names the version.
  FlipBit(8);
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos);
}

TEST_F(GraphStoreTest, RejectsBitFlippedHeader) {
  ASSERT_TRUE(SaveGraphStore(WcGraph(), path_).ok());
  FlipBit(16);  // inside num_nodes
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("header checksum"),
            std::string::npos);
}

TEST_F(GraphStoreTest, RejectsBitFlippedSectionTable) {
  ASSERT_TRUE(SaveGraphStore(WcGraph(), path_).ok());
  FlipBit(88 + 8);  // first section entry's offset field
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("section table"),
            std::string::npos);
}

TEST_F(GraphStoreTest, RejectsBitFlippedPayload) {
  ASSERT_TRUE(SaveGraphStore(WcGraph(), path_).ok());
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  in.close();
  FlipBit(size - 7);  // deep in the last payload section
  Result<Graph> loaded = LoadGraphStore(path_);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().ToString().find("payload checksum"),
            std::string::npos);

  // The same flip sails through when payload verification is waived (the
  // out-of-core configuration documents this trade explicitly).
  GraphStoreLoadOptions trusting;
  trusting.verify_payload = false;
  EXPECT_TRUE(LoadGraphStore(path_, trusting).ok());
}

// ---- Copy-on-write: mutating a mapped graph must detach, not crash (the
// mapping is PROT_READ) and must not disturb the file.

TEST_F(GraphStoreTest, ReweightingMappedGraphDetachesFromMapping) {
  const Graph original = TrivalencyGraph();
  Graph mapped = SaveAndLoad(original, /*tile_size=*/64);
  ASSERT_TRUE(mapped.is_mapped());

  ApplyWeightedCascade(&mapped);
  EXPECT_FALSE(mapped.is_mapped());
  EXPECT_EQ(mapped.reverse_tile_size(), 0u);
  Graph expected = TrivalencyGraph();
  ApplyWeightedCascade(&expected);
  ExpectGraphsEqual(expected, mapped);

  // The store file is untouched: reloading still yields the trivalency
  // weighting.
  Result<Graph> reloaded = LoadGraphStore(path_);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectGraphsEqual(original, reloaded.value());
}

// ---- Functional indistinguishability: fixed-seed RR pools and adaptive
// policy runs must be bit-identical between builder-built and mmap-loaded
// graphs (ISSUE acceptance criterion).

TEST_F(GraphStoreTest, RrPoolsBitIdenticalBuilderVsMapped) {
  const Graph g = WcGraph();
  const Graph mapped = SaveAndLoad(g, /*tile_size=*/64);
  EXPECT_EQ(
      PoolHashFor(g, DiffusionModel::kIndependentCascade, 77, 2000),
      PoolHashFor(mapped, DiffusionModel::kIndependentCascade, 77, 2000));
  EXPECT_EQ(PoolHashFor(g, DiffusionModel::kLinearThreshold, 77, 1000),
            PoolHashFor(mapped, DiffusionModel::kLinearThreshold, 77, 1000));
}

TEST_F(GraphStoreTest, TrivalencyPoolsBitIdenticalBuilderVsMapped) {
  const Graph g = TrivalencyGraph();
  const Graph mapped = SaveAndLoad(g, /*tile_size=*/32);
  EXPECT_EQ(
      PoolHashFor(g, DiffusionModel::kIndependentCascade, 77, 2000),
      PoolHashFor(mapped, DiffusionModel::kIndependentCascade, 77, 2000));
}

TEST_F(GraphStoreTest, HatpDecisionSequenceIdenticalOnMappedGraph) {
  // The golden HATP run from rr_kernel_test, replayed on the mmap-loaded
  // graph: same seeds picked in the same order, same RR-set count, same
  // profit. Matches the recorded golden values, so the mapped graph is
  // also bit-compatible with the pre-kernel tree.
  const Graph g = SaveAndLoad(WcGraph(), /*tile_size=*/64);

  TargetSelectionOptions sel;
  sel.kernel = SamplingKernel::kPerEdge;
  auto selection =
      BuildTopKTargetProblem(g, 10, CostScheme::kDegreeProportional, sel);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();

  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  hopt.sampling.kernel = SamplingKernel::kPerEdge;
  HatpPolicy policy(hopt);
  Rng world_rng(42);
  AdaptiveEnvironment env(Realization::Sample(
      g, &world_rng, DiffusionModel::kIndependentCascade,
      SamplingKernel::kPerEdge));
  Rng rng(1);
  auto run = policy.Run(selection.value().problem, &env, &rng);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().seeds, (std::vector<NodeId>{2, 7, 18, 17, 9}));
  EXPECT_EQ(run.value().total_rr_sets, 780520u);
  EXPECT_NEAR(run.value().realized_profit, 17.745389, 1e-4);
}

}  // namespace
}  // namespace atpm
