#!/usr/bin/env python3
"""Self-test for tools/atpm_lint: every rule fires on its fixture violation,
suppression annotations work, clean trees and the real tree report zero
findings, and (when libclang is installed) the AST engine agrees with the
regex engine on which rules fire.

Registered with ctest as `lint_test`; ATPM_REPO_ROOT points at the source
tree (defaults to two levels above this file).
"""

import os
import re
import subprocess
import sys

ROOT = os.environ.get(
    "ATPM_REPO_ROOT",
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINT = os.path.join(ROOT, "tools", "atpm_lint", "atpm_lint.py")
TESTDATA = os.path.join(ROOT, "tools", "atpm_lint", "testdata")

FAILURES = []


def check(name, condition, detail=""):
    if condition:
        print("ok   %s" % name)
    else:
        print("FAIL %s %s" % (name, detail))
        FAILURES.append(name)


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT] + list(args),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def findings_by_rule(stdout):
    counts = {}
    for m in re.finditer(r"\[([a-z-]+)\]", stdout):
        counts[m.group(1)] = counts.get(m.group(1), 0) + 1
    return counts


def main():
    # ---- violations tree: every rule fires, at the expected sites.
    code, out, _ = run_lint("--root", os.path.join(TESTDATA, "violations"),
                            "--engine", "regex")
    check("violations tree exits 1", code == 1, "exit=%d" % code)
    counts = findings_by_rule(out)
    # (rule, minimum distinct findings) — one per deliberate violation.
    expectations = (
        ("rng-discipline", 5),        # random_device, time, srand, rand, mt19937
        ("determinism-hygiene", 3),   # range-for, iterator walk, ptr-keyed map
        ("mmap-safety", 4),           # const_cast, bare MutableVec, 2x outside
        ("format-stability", 3),      # 2x unpinned header + 1 missing trivial
        ("failpoint-discipline", 4),  # 2x unregistered, non-literal, throw
        ("metrics-discipline", 5),    # non-literal, bad prefix, dup reg,
                                      # non-literal span, steady_clock
    )
    for rule, minimum in expectations:
        check("rule %s fires (>=%d)" % (rule, minimum),
              counts.get(rule, 0) >= minimum, "counts=%r" % counts)
    check("no unexpected rules", set(counts) == {r for r, _ in expectations},
          "counts=%r" % counts)
    # Specific sites that must be flagged.
    for needle in (
            "bad_rng.cc:11", "bad_rng.cc:16", "bad_rng.cc:20",
            "bad_rng.cc:21", "bad_rng.cc:25",
            "bad_determinism.cc:18", "bad_determinism.cc:23",
            "bad_determinism.cc:32",
            "bad_mmap.cc:26", "bad_mmap.cc:32",
            "bad_outside_mutation.cc:27", "bad_outside_mutation.cc:31",
            "graph_store.cc:13", "graph_store.cc:21",
            "bad_failpoints.cc:9", "bad_failpoints.cc:10",
            "bad_failpoints.cc:11", "bad_failpoints.cc:13",
            "bad_metrics.cc:13", "bad_metrics.cc:14", "bad_metrics.cc:16",
            "bad_metrics.cc:20", "bad_metrics.cc:26",
    ):
        check("flags %s" % needle, needle in out)
    # Sites that must NOT be flagged (allow-path / lookup-only / pinned).
    for forbidden in ("bad_mmap.cc:40", "FixtureSection", "ParseScratch",
                      "Operand", "ElapsedTime", "bad_failpoints.cc:8",
                      "engine.serial_batch", "bad_metrics.cc:21",
                      "atpm_fixture_probes_total"):
        check("does not flag %s" % forbidden, forbidden not in out,
              "output:\n%s" % out)

    # ---- suppressed tree: annotations silence every finding.
    code, out, _ = run_lint("--root", os.path.join(TESTDATA, "suppressed"),
                            "--engine", "regex")
    check("suppressed tree exits 0", code == 0,
          "exit=%d output:\n%s" % (code, out))

    # ---- clean tree.
    code, out, _ = run_lint("--root", os.path.join(TESTDATA, "clean"),
                            "--engine", "regex")
    check("clean tree exits 0", code == 0,
          "exit=%d output:\n%s" % (code, out))

    # ---- the real tree must be clean (this is the CI gate).
    code, out, err = run_lint("--root", ROOT)
    check("real tree exits 0", code == 0,
          "exit=%d output:\n%s%s" % (code, out, err))

    # ---- engine agreement: when libclang is available, the AST engine must
    # fire the same rule ids on the violations tree as the regex engine.
    probe = subprocess.run(
        [sys.executable, "-c", "import clang.cindex"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    if probe.returncode == 0:
        code, out, _ = run_lint("--root",
                                os.path.join(TESTDATA, "violations"),
                                "--engine", "auto")
        clang_counts = findings_by_rule(out)
        check("libclang engine exits 1", code == 1, "exit=%d" % code)
        for rule, _ in expectations:
            check("libclang fires %s" % rule, clang_counts.get(rule, 0) >= 1,
                  "counts=%r" % clang_counts)
    else:
        print("ok   libclang engine (skipped: bindings not installed)")

    if FAILURES:
        print("\n%d check(s) failed: %s" % (len(FAILURES), FAILURES))
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
