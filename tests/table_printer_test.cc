#include "bench_util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace atpm {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"dataset", "k", "profit"});
  table.AddRow({"NetHEPT", "10", "123.45"});
  table.AddRow({"LiveJournal", "500", "9.1"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("dataset"), std::string::npos);
  EXPECT_NE(text.find("LiveJournal"), std::string::npos);
  // Header rule present.
  EXPECT_NE(text.find("----"), std::string::npos);
  // Every line of the body starts at column 0 with the first cell.
  EXPECT_EQ(text.find("NetHEPT"), text.find('\n', text.find("----")) + 1);
}

TEST(TablePrinterTest, HandlesShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find('x'), std::string::npos);
}

TEST(TablePrinterTest, EmptyTablePrintsHeaderOnly) {
  TablePrinter table({"col"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("col"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatSecondsTest, RangeDependentPrecision) {
  EXPECT_EQ(FormatSeconds(0.1234), "0.123");
  EXPECT_EQ(FormatSeconds(12.34), "12.3");
  EXPECT_EQ(FormatSeconds(1234.6), "1235");
}

}  // namespace
}  // namespace atpm
