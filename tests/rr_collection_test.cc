#include "rris/rr_collection.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

// Handcrafted pool over 5 nodes:
//   set 0: {0, 1}
//   set 1: {1, 2}
//   set 2: {2}
//   set 3: {0, 3, 4}
RRCollection MakeHandPool() {
  RRCollection pool(5);
  pool.AddSet(std::vector<NodeId>{0, 1});
  pool.AddSet(std::vector<NodeId>{1, 2});
  pool.AddSet(std::vector<NodeId>{2});
  pool.AddSet(std::vector<NodeId>{0, 3, 4});
  return pool;
}

BitVector Members(std::initializer_list<NodeId> nodes) {
  BitVector b(5);
  for (NodeId v : nodes) b.Set(v);
  return b;
}

TEST(RRCollectionTest, SizesAndSets) {
  RRCollection pool = MakeHandPool();
  EXPECT_EQ(pool.num_sets(), 4u);
  EXPECT_EQ(pool.num_nodes(), 5u);
  EXPECT_EQ(pool.total_nodes(), 8u);
  EXPECT_EQ(pool.set(0).size(), 2u);
  EXPECT_EQ(pool.set(3)[2], 4u);
}

TEST(RRCollectionTest, CoverageOfNode) {
  RRCollection pool = MakeHandPool();
  EXPECT_EQ(pool.CoverageOfNode(0), 2u);
  EXPECT_EQ(pool.CoverageOfNode(1), 2u);
  EXPECT_EQ(pool.CoverageOfNode(2), 2u);
  EXPECT_EQ(pool.CoverageOfNode(3), 1u);
  EXPECT_EQ(pool.CoverageOfNode(4), 1u);
}

TEST(RRCollectionTest, CoverageOfNodeWithIndexMatchesScan) {
  RRCollection pool = MakeHandPool();
  std::vector<uint64_t> scan(5);
  for (NodeId u = 0; u < 5; ++u) scan[u] = pool.CoverageOfNode(u);
  pool.BuildIndex();
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(pool.CoverageOfNode(u), scan[u]) << u;
  }
}

TEST(RRCollectionTest, CoverageOfSet) {
  RRCollection pool = MakeHandPool();
  EXPECT_EQ(pool.CoverageOfSet(Members({0})), 2u);
  EXPECT_EQ(pool.CoverageOfSet(Members({0, 2})), 4u);
  EXPECT_EQ(pool.CoverageOfSet(Members({3, 4})), 1u);
  EXPECT_EQ(pool.CoverageOfSet(Members({})), 0u);
  EXPECT_EQ(pool.CoverageOfSet(Members({0, 1, 2, 3, 4})), 4u);
}

TEST(RRCollectionTest, ConditionalCoverage) {
  RRCollection pool = MakeHandPool();
  // Cov(0 | {1}) : sets with 0, without 1 -> set 3 only.
  EXPECT_EQ(pool.ConditionalCoverage(0, Members({1})), 1u);
  // Cov(0 | {}) = Cov(0).
  EXPECT_EQ(pool.ConditionalCoverage(0, Members({})), 2u);
  // Cov(2 | {1}) : set 2 only (set 1 contains 1).
  EXPECT_EQ(pool.ConditionalCoverage(2, Members({1})), 1u);
  // Cov(4 | {0, 3}) : set 3 contains 0 -> 0.
  EXPECT_EQ(pool.ConditionalCoverage(4, Members({0, 3})), 0u);
}

TEST(RRCollectionTest, ConditionalCoverageEqualsCoverageDifference) {
  // Cov(u | S) == Cov(S u {u}) - Cov(S) — the defining identity.
  RRCollection pool = MakeHandPool();
  for (NodeId u = 0; u < 5; ++u) {
    for (uint32_t mask = 0; mask < 32; ++mask) {
      if (mask & (1u << u)) continue;
      BitVector base(5);
      BitVector with(5);
      with.Set(u);
      for (NodeId v = 0; v < 5; ++v) {
        if (mask & (1u << v)) {
          base.Set(v);
          with.Set(v);
        }
      }
      EXPECT_EQ(pool.ConditionalCoverage(u, base),
                pool.CoverageOfSet(with) - pool.CoverageOfSet(base))
          << "u=" << u << " mask=" << mask;
    }
  }
}

TEST(RRCollectionTest, InvertedIndexListsCoveringSets) {
  RRCollection pool = MakeHandPool();
  pool.BuildIndex();
  ASSERT_TRUE(pool.index_built());
  const auto sets0 = pool.CoveringSets(0);
  ASSERT_EQ(sets0.size(), 2u);
  EXPECT_EQ(sets0[0], 0u);
  EXPECT_EQ(sets0[1], 3u);
  EXPECT_EQ(pool.CoveringSets(2).size(), 2u);
}

TEST(RRCollectionTest, AddSetInvalidatesIndex) {
  RRCollection pool = MakeHandPool();
  pool.BuildIndex();
  EXPECT_TRUE(pool.index_built());
  pool.AddSet(std::vector<NodeId>{4});
  EXPECT_FALSE(pool.index_built());
  pool.BuildIndex();
  EXPECT_EQ(pool.CoveringSets(4).size(), 2u);
}

TEST(RRCollectionTest, ClearEmptiesPool) {
  RRCollection pool = MakeHandPool();
  pool.Clear();
  EXPECT_EQ(pool.num_sets(), 0u);
  EXPECT_EQ(pool.total_nodes(), 0u);
  EXPECT_EQ(pool.CoverageOfNode(0), 0u);
}

TEST(RRCollectionTest, GenerateProducesRequestedCount) {
  const Graph g = MakeStarGraph(10, 0.5);
  RRSetGenerator generator(g);
  RRCollection pool(10);
  Rng rng(1);
  const uint64_t edges =
      pool.Generate(&generator, nullptr, 10, 500, &rng);
  EXPECT_EQ(pool.num_sets(), 500u);
  EXPECT_GT(edges, 0u);
}

TEST(RRCollectionTest, GeneratedCoverageMatchesSpreadEstimate) {
  // On the star with p = 0.5, hub coverage fraction ~ (1 + 9*0.5)/10.
  const Graph g = MakeStarGraph(10, 0.5);
  RRSetGenerator generator(g);
  RRCollection pool(10);
  Rng rng(2);
  pool.Generate(&generator, nullptr, 10, 100000, &rng);
  EXPECT_NEAR(
      static_cast<double>(pool.CoverageOfNode(0)) / pool.num_sets(),
      0.55, 0.01);
}

TEST(RRCollectionTest, EmptyPoolQueriesAreZero) {
  RRCollection pool(3);
  EXPECT_EQ(pool.num_sets(), 0u);
  EXPECT_EQ(pool.CoverageOfNode(1), 0u);
  BitVector b(3);
  b.Set(0);
  EXPECT_EQ(pool.CoverageOfSet(b), 0u);
}

}  // namespace
}  // namespace atpm
