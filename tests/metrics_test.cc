// Registry-level tests for the atpm_obs metrics layer: name validation and
// registration-collision rules, lock-free striped counters/histograms whose
// scrape-time merge is exact under concurrency, bucket boundary semantics,
// the Prometheus-text and JSON export goldens, collector-fed labeled
// series, and the global enable gate being a true no-op switch.
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace atpm {
namespace obs {
namespace {

// Every test leaves the process-wide enable gate on, however it exits.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMetricsEnabled(true); }
  void TearDown() override { SetMetricsEnabled(true); }
};

TEST_F(MetricsTest, NameValidationPinsTheExportSurface) {
  EXPECT_TRUE(MetricsRegistry::ValidName("atpm_rr_sets_generated_total"));
  EXPECT_TRUE(MetricsRegistry::ValidName("atpm_a1_total"));
  EXPECT_FALSE(MetricsRegistry::ValidName(nullptr));
  EXPECT_FALSE(MetricsRegistry::ValidName(""));
  EXPECT_FALSE(MetricsRegistry::ValidName("atpm_"));  // nothing after prefix
  EXPECT_FALSE(MetricsRegistry::ValidName("rr_sets_total"));  // no prefix
  EXPECT_FALSE(MetricsRegistry::ValidName("atpm_CamelCase"));
  EXPECT_FALSE(MetricsRegistry::ValidName("atpm_has-dash"));
  EXPECT_FALSE(MetricsRegistry::ValidName("atpm_has.dot"));
  const std::string at_limit = "atpm_" + std::string(115, 'a');
  EXPECT_TRUE(MetricsRegistry::ValidName(at_limit.c_str()));
  const std::string over_limit = at_limit + "a";
  EXPECT_FALSE(MetricsRegistry::ValidName(over_limit.c_str()));
}

TEST_F(MetricsTest, RegistrationCollisionRules) {
  MetricsRegistry reg;
  Counter* counter = reg.TryRegisterCounter("atpm_test_col_total", "first");
  ASSERT_NE(counter, nullptr);
  // Duplicates are rejected across every instrument kind, not just the
  // registering one.
  EXPECT_EQ(reg.TryRegisterCounter("atpm_test_col_total", "dup"), nullptr);
  EXPECT_EQ(reg.TryRegisterGauge("atpm_test_col_total", "dup"), nullptr);
  EXPECT_EQ(reg.TryRegisterHistogram("atpm_test_col_total", "dup", {1.0}),
            nullptr);
  // Invalid names never register.
  // atpm-lint: allow(metrics-discipline)
  EXPECT_EQ(reg.TryRegisterCounter("unprefixed_total", "bad"), nullptr);
  // atpm-lint: allow(metrics-discipline)
  EXPECT_EQ(reg.TryRegisterGauge("atpm_Bad_Case", "bad"), nullptr);
  // A distinct valid name still registers after the failures.
  EXPECT_NE(reg.TryRegisterGauge("atpm_test_other_depth", "ok"), nullptr);
}

TEST_F(MetricsTest, HistogramBoundsValidation) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.TryRegisterHistogram("atpm_test_h0_seconds", "empty", {}),
            nullptr);
  EXPECT_EQ(reg.TryRegisterHistogram("atpm_test_h1_seconds", "flat",
                                     {1.0, 1.0}),
            nullptr);
  EXPECT_EQ(reg.TryRegisterHistogram("atpm_test_h2_seconds", "descending",
                                     {2.0, 1.0}),
            nullptr);
  EXPECT_EQ(reg.TryRegisterHistogram("atpm_test_h3_seconds", "oversized",
                                     std::vector<double>(65, 0.0)),
            nullptr);
  EXPECT_NE(reg.TryRegisterHistogram("atpm_test_h4_seconds", "ok",
                                     {1.0, 2.0, 4.0}),
            nullptr);
}

TEST_F(MetricsTest, ExponentialBucketLadder) {
  const std::vector<double> bounds = ExponentialBuckets(1e-6, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[1], 4e-6);
  EXPECT_DOUBLE_EQ(bounds[2], 1.6e-5);
  EXPECT_DOUBLE_EQ(bounds[3], 6.4e-5);
}

TEST_F(MetricsTest, CounterConcurrentShardMergeIsExact) {
  MetricsRegistry reg;
  Counter* counter = reg.RegisterCounter("atpm_test_conc_total", "x");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
      counter->Increment(7);
    });
  }
  for (std::thread& t : threads) t.join();
  // Striped relaxed adds merged on scrape lose nothing.
  EXPECT_EQ(counter->Value(), kThreads * (kPerThread + 7));
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreUpperInclusive) {
  MetricsRegistry reg;
  Histogram* h = reg.RegisterHistogram("atpm_test_bounds_seconds", "x",
                                       {1.0, 2.0, 4.0});
  ASSERT_EQ(h->num_buckets(), 4u);
  h->Observe(0.5);  // <= 1        -> bucket 0
  h->Observe(1.0);  // == bound    -> bucket 0 (le semantics)
  h->Observe(1.5);  //             -> bucket 1
  h->Observe(4.0);  // == last     -> bucket 2
  h->Observe(9.0);  // overflow    -> implicit +Inf bucket
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->BucketCount(3), 1u);
  EXPECT_EQ(h->TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h->Sum(), 16.0);
}

TEST_F(MetricsTest, HistogramConcurrentObserveIsExact) {
  MetricsRegistry reg;
  Histogram* h = reg.RegisterHistogram("atpm_test_conc_seconds", "x",
                                       {0.5, 1.5, 2.5, 3.5});
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<double>(i % 5));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h->TotalCount(), kThreads * kPerThread);
  for (size_t b = 0; b < h->num_buckets(); ++b) {
    EXPECT_EQ(h->BucketCount(b), kThreads * kPerThread / 5) << "bucket " << b;
  }
  // Integer-valued observations sum exactly in a double regardless of the
  // CAS interleaving order.
  EXPECT_DOUBLE_EQ(h->Sum(),
                   static_cast<double>(kThreads) * (kPerThread / 5) * 10.0);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* gauge = reg.RegisterGauge("atpm_test_level_depth", "x");
  gauge->Set(42);
  EXPECT_EQ(gauge->Value(), 42);
  gauge->Add(-50);
  EXPECT_EQ(gauge->Value(), -8);
}

TEST_F(MetricsTest, DisabledInstrumentsAreNoOps) {
  MetricsRegistry reg;
  Counter* counter = reg.RegisterCounter("atpm_test_gate_total", "x");
  Gauge* gauge = reg.RegisterGauge("atpm_test_gate_depth", "x");
  Histogram* h = reg.RegisterHistogram("atpm_test_gate_seconds", "x", {1.0});
  SetMetricsEnabled(false);
  counter->Increment();
  gauge->Set(5);
  h->Observe(0.5);
  { ScopedLatency latency(h); }
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(h->TotalCount(), 0u);
  SetMetricsEnabled(true);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 1u);
  { ScopedLatency latency(h); }
  EXPECT_EQ(h->TotalCount(), 1u);
}

TEST_F(MetricsTest, ScopedLatencyObservesElapsedSeconds) {
  MetricsRegistry reg;
  Histogram* h = reg.RegisterHistogram("atpm_test_lat_seconds", "x",
                                       {1e-9, 3600.0});
  { ScopedLatency latency(h); }
  EXPECT_EQ(h->TotalCount(), 1u);
  EXPECT_GE(h->Sum(), 0.0);
  EXPECT_LT(h->Sum(), 60.0);  // sane elapsed time, not garbage bits
}

// A registry populated with deterministic values; both export formats are
// pinned byte for byte (sorted names, shortest round-trip doubles).
class ExportFixture {
 public:
  explicit ExportFixture(MetricsRegistry* reg) {
    Counter* requests =
        reg->RegisterCounter("atpm_test_requests_total", "Requests observed");
    requests->Increment(3);
    Gauge* depth = reg->RegisterGauge("atpm_test_queue_depth", "Queue depth");
    depth->Set(-2);
    Histogram* latency = reg->RegisterHistogram("atpm_test_latency_seconds",
                                                "Latency", {1.0, 2.0});
    latency->Observe(0.5);
    latency->Observe(1.5);
    latency->Observe(8.0);
    reg->RegisterCollector([](std::vector<LabeledSample>* out) {
      // Deliberately unsorted; export sorts. The invalid-name sample must
      // be skipped, not exported.
      out->push_back({"atpm_test_fires_total", "Fires per site", "site", "b",
                      2});
      out->push_back({"atpm_test_fires_total", "Fires per site", "site", "a",
                      1});
      out->push_back({"not a metric", "bad", "site", "c", 9});
    });
  }
};

TEST_F(MetricsTest, PrometheusExportGolden) {
  MetricsRegistry reg;
  ExportFixture fixture(&reg);
  const std::string expected =
      "# HELP atpm_test_requests_total Requests observed\n"
      "# TYPE atpm_test_requests_total counter\n"
      "atpm_test_requests_total 3\n"
      "# HELP atpm_test_queue_depth Queue depth\n"
      "# TYPE atpm_test_queue_depth gauge\n"
      "atpm_test_queue_depth -2\n"
      "# HELP atpm_test_latency_seconds Latency\n"
      "# TYPE atpm_test_latency_seconds histogram\n"
      "atpm_test_latency_seconds_bucket{le=\"1\"} 1\n"
      "atpm_test_latency_seconds_bucket{le=\"2\"} 2\n"
      "atpm_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "atpm_test_latency_seconds_sum 10\n"
      "atpm_test_latency_seconds_count 3\n"
      "# HELP atpm_test_fires_total Fires per site\n"
      "# TYPE atpm_test_fires_total counter\n"
      "atpm_test_fires_total{site=\"a\"} 1\n"
      "atpm_test_fires_total{site=\"b\"} 2\n";
  EXPECT_EQ(reg.ExportPrometheus(), expected);
}

TEST_F(MetricsTest, JsonExportGolden) {
  MetricsRegistry reg;
  ExportFixture fixture(&reg);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"atpm_test_requests_total\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"atpm_test_queue_depth\": -2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"atpm_test_latency_seconds\": {\"count\": 3, \"sum\": 10, "
      "\"buckets\": [{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}, "
      "{\"le\": \"+Inf\", \"count\": 1}]}\n"
      "  },\n"
      "  \"labeled\": {\n"
      "    \"atpm_test_fires_total\": [\n"
      "      {\"site\": \"a\", \"value\": 1},\n"
      "      {\"site\": \"b\", \"value\": 2}\n"
      "    ]\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(reg.ExportJson(), expected);
}

TEST_F(MetricsTest, ResetValuesZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* counter = reg.RegisterCounter("atpm_test_reset_total", "x");
  Gauge* gauge = reg.RegisterGauge("atpm_test_reset_depth", "x");
  Histogram* h = reg.RegisterHistogram("atpm_test_reset_seconds", "x", {1.0});
  counter->Increment(9);
  gauge->Set(9);
  h->Observe(0.5);
  reg.ResetValues();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.0);
  // Registrations survive: the same name is still taken, the instrument
  // still works.
  EXPECT_EQ(reg.TryRegisterCounter("atpm_test_reset_total", "dup"), nullptr);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 1u);
}

TEST_F(MetricsTest, GlobalRegistryIsSingletonAndUsable) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
  // The export runs even mid-process with arbitrary subsystem
  // registrations present.
  EXPECT_NO_FATAL_FAILURE({ a.ExportPrometheus(); });
  EXPECT_NO_FATAL_FAILURE({ a.ExportJson(); });
}

}  // namespace
}  // namespace obs
}  // namespace atpm
