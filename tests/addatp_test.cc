#include "core/addatp.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          std::vector<double> target_costs) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (size_t i = 0; i < problem.targets.size(); ++i) {
    problem.costs[problem.targets[i]] = target_costs[i];
  }
  return problem;
}

AdaptiveEnvironment MakeEnv(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  return AdaptiveEnvironment(Realization::Sample(g, &rng));
}

TEST(AddAtpTest, SelectsClearlyProfitableHub) {
  // Star hub: spread 50 at p=1, cost 5. The decision gap is huge, so C1
  // fires in the first round.
  const Graph g = MakeStarGraph(50, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {5.0});
  AddAtpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().seeds.size(), 1u);
  EXPECT_DOUBLE_EQ(run.value().realized_profit, 45.0);
  EXPECT_EQ(run.value().steps[0].rounds, 1u);
}

TEST(AddAtpTest, AbandonsClearlyOverpricedNode) {
  const Graph g = MakeCompleteGraph(30, 0.0);
  ProfitProblem problem = MakeProblem(g, {0}, {25.0});
  AddAtpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().seeds.empty());
  EXPECT_DOUBLE_EQ(run.value().realized_profit, 0.0);
}

TEST(AddAtpTest, SkipsActivatedCandidates) {
  const Graph g = MakePathGraph(4, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2}, {0.1, 0.1, 0.1});
  AddAtpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().seeds.size(), 1u);
  EXPECT_EQ(run.value().seeds[0], 0u);
  EXPECT_EQ(run.value().steps[1].decision, SeedDecision::kSkippedActivated);
  EXPECT_EQ(run.value().steps[2].decision, SeedDecision::kSkippedActivated);
}

TEST(AddAtpTest, BudgetExhaustionReturnsOutOfBudget) {
  // A node sitting exactly on the decision bar (spread == cost) cannot be
  // separated by C1; with C2 unreachable under a tiny budget the run must
  // abort like the paper's ADDATP runs out of memory.
  const Graph g = MakeStarGraph(400, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {200.5});
  AddAtpOptions options;
  options.sampling.max_rr_sets_per_decision = 64;  // absurdly small
  options.fail_on_budget_exhausted = true;
  AddAtpPolicy policy(options);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsOutOfBudget());
}

TEST(AddAtpTest, ForcedDecisionModeCompletes) {
  const Graph g = MakeStarGraph(400, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {200.5});
  AddAtpOptions options;
  options.sampling.max_rr_sets_per_decision = 2048;
  options.fail_on_budget_exhausted = false;
  AddAtpPolicy policy(options);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().steps.size(), 1u);
}

TEST(AddAtpTest, DeterministicGivenSeeds) {
  const Graph g = MakeStarGraph(40, 0.4);
  ProfitProblem problem = MakeProblem(g, {0, 5, 6}, {2.0, 1.0, 1.0});
  AddAtpPolicy policy;

  AdaptiveEnvironment env_a = MakeEnv(g, 9);
  AdaptiveEnvironment env_b = MakeEnv(g, 9);
  Rng rng_a(3);
  Rng rng_b(3);
  Result<AdaptiveRunResult> a = policy.Run(problem, &env_a, &rng_a);
  Result<AdaptiveRunResult> b = policy.Run(problem, &env_b, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seeds, b.value().seeds);
  EXPECT_DOUBLE_EQ(a.value().realized_profit, b.value().realized_profit);
  EXPECT_EQ(a.value().total_rr_sets, b.value().total_rr_sets);
}

TEST(AddAtpTest, TracksSamplingTelemetry) {
  const Graph g = MakeStarGraph(50, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {5.0});
  AddAtpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run.value().total_rr_sets, 0u);
  EXPECT_EQ(run.value().max_rr_sets_per_iteration,
            run.value().total_rr_sets);  // single-iteration run
  EXPECT_EQ(run.value().steps[0].rr_sets_used, run.value().total_rr_sets);
}

TEST(AddAtpTest, EmptyTargetSetIsNoop) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {}, {});
  AddAtpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().seeds.empty());
}

TEST(AddAtpTest, RejectsMismatchedEnvironment) {
  const Graph g1 = MakePathGraph(3, 0.5);
  const Graph g2 = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g1, {0}, {1.0});
  AddAtpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g2, 1);
  Rng rng(2);
  EXPECT_FALSE(policy.Run(problem, &env, &rng).ok());
}

TEST(AddAtpTest, MultiThreadedRunMatchesQuality) {
  const Graph g = MakeStarGraph(60, 0.5);
  ProfitProblem problem =
      MakeProblem(g, {0, 3, 4}, {10.0, 20.0, 0.2});
  AddAtpOptions options;
  options.sampling.num_threads = 4;
  AddAtpPolicy policy(options);
  AdaptiveEnvironment env = MakeEnv(g, 5);
  Rng rng(6);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  // Hub (spread ~30.5 vs cost 10) kept; node 3 (spread 1, cost 20)
  // dropped; node 4 (spread 1, cost 0.2) kept unless already activated.
  ASSERT_FALSE(run.value().seeds.empty());
  EXPECT_EQ(run.value().seeds[0], 0u);
  for (const AdaptiveStepRecord& step : run.value().steps) {
    if (step.node == 3) {
      EXPECT_EQ(step.decision, SeedDecision::kAbandoned);
    }
  }
}

}  // namespace
}  // namespace atpm
