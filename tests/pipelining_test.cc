// Tests for the speculative cross-candidate pipelining layer and the
// budget-exhaustion decision fix: first-round and mid-schedule budget
// aborts, zero-quota worker determinism, lookahead decision equivalence
// against lookahead_window = 0, and epoch-bump invalidation of stored
// speculative answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "core/addatp.h"
#include "core/concentration.h"
#include "core/hatp.h"
#include "core/hntp.h"
#include "core/target_selection.h"
#include "graph/generators.h"
#include "graph/weighting.h"
#include "rris/coverage_batch.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

Graph TestGraph(NodeId n) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

ProfitProblem CalibratedProblem(const Graph& g, uint32_t k = 20) {
  // Mirrors examples/quickstart.cc: top-k IMM targets with degree-
  // proportional costs calibrated to the spread lower bound, which puts
  // targets near the decision bar (multi-round halving schedules). Kernel
  // pinned so the instance matches that calibration.
  TargetSelectionOptions options;
  options.kernel = SamplingKernel::kPerEdge;
  Result<TargetSelectionResult> selection =
      BuildTopKTargetProblem(g, k, CostScheme::kDegreeProportional, options);
  EXPECT_TRUE(selection.ok()) << selection.status().ToString();
  return selection.value().problem;
}

template <typename Policy, typename Options>
AdaptiveRunResult RunPolicy(const Graph& g, const ProfitProblem& problem,
                            const Options& options, uint64_t world_seed = 42,
                            uint64_t policy_seed = 1) {
  Policy policy(options);
  Rng world_rng(world_seed);
  // Worlds pinned to the historical per-edge stream: the calibrated
  // instances' clear-cut decision margins were established under it.
  AdaptiveEnvironment env(Realization::Sample(
      g, &world_rng, DiffusionModel::kIndependentCascade,
      SamplingKernel::kPerEdge));
  Rng rng(policy_seed);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return std::move(run).value();
}

// --- Budget exhaustion: a first-round abort must be an explicit
// kBudgetExhausted (never a silent decision on fest = rest = 0), a
// mid-schedule abort decides from the last completed round.

TEST(BudgetExhaustionTest, FirstRoundAbortIsExplicitAndNeverSeeds) {
  const Graph g = TestGraph(300);
  const ProfitProblem problem = CalibratedProblem(g, 10);

  HatpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.max_rr_sets_per_decision = 1;  // below any round-0 theta
  options.fail_on_budget_exhausted = false;
  const AdaptiveRunResult run =
      RunPolicy<HatpPolicy>(g, problem, options);

  EXPECT_TRUE(run.seeds.empty());
  EXPECT_EQ(run.budget_exhausted_decisions, problem.targets.size());
  EXPECT_EQ(run.budget_truncated_decisions, 0u);
  EXPECT_EQ(run.total_rr_sets, 0u);
  for (const AdaptiveStepRecord& step : run.steps) {
    EXPECT_EQ(step.decision, SeedDecision::kBudgetExhausted);
    EXPECT_EQ(step.rounds, 0u);
    EXPECT_EQ(step.rr_sets_used, 0u);
  }
}

TEST(BudgetExhaustionTest, AddAtpFirstRoundAbortDoesNotSelectOnZeroes) {
  // The historical ADDATP bug was worse than HATP's: with no completed
  // round, rho_f = rho_r = 0 and "rho_f >= rho_r" SELECTED every
  // budget-starved node regardless of its true marginal.
  const Graph g = TestGraph(300);
  const ProfitProblem problem = CalibratedProblem(g, 10);

  AddAtpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.max_rr_sets_per_decision = 1;
  options.fail_on_budget_exhausted = false;
  const AdaptiveRunResult run =
      RunPolicy<AddAtpPolicy>(g, problem, options);

  EXPECT_TRUE(run.seeds.empty());
  EXPECT_EQ(run.budget_exhausted_decisions, problem.targets.size());
  for (const AdaptiveStepRecord& step : run.steps) {
    EXPECT_EQ(step.decision, SeedDecision::kBudgetExhausted);
  }
}

TEST(BudgetExhaustionTest, HntpFirstRoundAbortIsCountedAndNeverSeeds) {
  const Graph g = TestGraph(300);
  const ProfitProblem problem = CalibratedProblem(g, 10);

  HntpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.max_rr_sets_per_decision = 1;
  options.fail_on_budget_exhausted = false;
  Rng rng(3);
  Result<HntpResult> result = RunHntp(problem, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().seeds.empty());
  EXPECT_EQ(result.value().budget_exhausted_decisions,
            problem.targets.size());
  EXPECT_EQ(result.value().total_rr_sets, 0u);
}

TEST(BudgetExhaustionTest, MidScheduleAbortDecidesFromLastCompletedRound) {
  const Graph g = TestGraph(400);
  const ProfitProblem problem = CalibratedProblem(g);

  // Budget admitting exactly the first (cheapest) round of the schedule:
  // every examined candidate completes round 0, candidates wanting more
  // rounds are truncated — never kBudgetExhausted.
  HatpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  const double n0 = static_cast<double>(g.num_nodes());
  const double zeta0 = options.initial_spread_error / n0;
  const double delta0 =
      1.0 / (static_cast<double>(problem.targets.size()) * n0);
  options.sampling.max_rr_sets_per_decision =
      HatpSampleSize(options.initial_relative_error, zeta0, delta0);
  options.fail_on_budget_exhausted = false;
  const AdaptiveRunResult run = RunPolicy<HatpPolicy>(g, problem, options);

  EXPECT_EQ(run.budget_exhausted_decisions, 0u);
  EXPECT_GT(run.budget_truncated_decisions, 0u);
  uint64_t truncated = 0;
  for (const AdaptiveStepRecord& step : run.steps) {
    EXPECT_NE(step.decision, SeedDecision::kBudgetExhausted);
    if (step.decision == SeedDecision::kSkippedActivated) continue;
    EXPECT_EQ(step.rounds, 1u);  // the budget fits exactly one round
    ++truncated;
  }
  // A calibrated instance leaves at least one candidate wanting round 2.
  EXPECT_GE(truncated, run.budget_truncated_decisions);
  EXPECT_FALSE(run.seeds.empty());  // clear-cut hubs still decide in round 0
}

// --- Zero-quota workers: a parallel batch whose theta is below the worker
// count leaves some workers with quota 0; the deterministic worker-order
// merge must not care.

TEST(ZeroQuotaWorkerTest, CountCoverageBatchSeededIsDeterministic) {
  const Graph g = TestGraph(200);
  BitVector base(g.num_nodes());
  for (NodeId v = 20; v < 60; ++v) base.Set(v);
  const uint64_t theta = 3;  // fewer draws than workers

  uint64_t reference[2] = {0, 0};
  for (int trial = 0; trial < 3; ++trial) {
    // min_parallel_batch = 1 forces the fan-out even for tiny theta; 8
    // workers leave at least five with quota 0.
    ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 8,
                                  /*min_parallel_batch=*/1);
    CoverageQueryBatch batch;
    batch.Add(0);
    batch.Add(1, &base);
    for (int repeat = 0; repeat < 2; ++repeat) {
      engine.CountCoverageBatchSeeded(&batch, nullptr, g.num_nodes(), theta,
                                      1234);
      if (trial == 0 && repeat == 0) {
        reference[0] = batch.hits(0);
        reference[1] = batch.hits(1);
      } else {
        EXPECT_EQ(batch.hits(0), reference[0]);
        EXPECT_EQ(batch.hits(1), reference[1]);
      }
    }
    EXPECT_LE(batch.hits(0), theta);
    EXPECT_LE(batch.hits(1), theta);
  }
}

TEST(ZeroQuotaWorkerTest, ZeroThetaBatchLeavesZeroHits) {
  const Graph g = TestGraph(100);
  ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4,
                                /*min_parallel_batch=*/1);
  CoverageQueryBatch batch;
  batch.Add(0);
  engine.CountCoverageBatchSeeded(&batch, nullptr, g.num_nodes(), 0, 9);
  EXPECT_EQ(batch.hits(0), 0u);
}

// --- Speculative pipelining: any lookahead window must produce the seed
// set of lookahead_window = 0, serve first rounds from stored answers
// (hits), and discard answers invalidated by an epoch bump (a seeding).

template <typename Policy, typename Options>
void ExpectLookaheadEquivalence(const Graph& g, const ProfitProblem& problem,
                                Options options, uint64_t world_seed) {
  options.sampling.engine = SamplingBackend::kSerial;
  // Decision equivalence across sampling layouts holds when every decision
  // on the pinned instance is clear-cut; the instances were calibrated for
  // that margin under the historical per-edge RNG stream, so pin the
  // kernel (the layer under test is speculation, not the kernel — kernel
  // equivalence has its own suite in rr_kernel_test.cc).
  options.sampling.kernel = SamplingKernel::kPerEdge;
  options.sampling.lookahead_window = 0;
  const AdaptiveRunResult baseline =
      RunPolicy<Policy>(g, problem, options, world_seed);
  EXPECT_EQ(baseline.speculation_hits + baseline.speculation_misses, 0u);

  for (uint32_t window : {1u, 4u, 64u}) {
    options.sampling.lookahead_window = window;
    const AdaptiveRunResult run =
        RunPolicy<Policy>(g, problem, options, world_seed);

    EXPECT_EQ(run.seeds, baseline.seeds) << "window " << window;
    ASSERT_EQ(run.steps.size(), baseline.steps.size());
    uint64_t sampled_decisions = 0;
    uint64_t speculative_first_rounds = 0;
    for (size_t i = 0; i < run.steps.size(); ++i) {
      EXPECT_EQ(run.steps[i].decision, baseline.steps[i].decision)
          << "window " << window << " step " << i;
      if (run.steps[i].decision != SeedDecision::kSkippedActivated) {
        ++sampled_decisions;
      }
      if (run.steps[i].first_round_speculative) ++speculative_first_rounds;
    }
    // Begin() resolves every examined candidate to a hit or a miss.
    EXPECT_EQ(run.speculation_hits + run.speculation_misses,
              sampled_decisions);
    EXPECT_EQ(run.speculation_hits, speculative_first_rounds);
    EXPECT_GT(run.speculation_hits, 0u) << "window " << window;
    // A hit serves at least its first round, and a stored answer keeps
    // serving while its pool covers the growing θ schedule.
    EXPECT_GE(run.speculation_rounds_served, run.speculation_hits);
    // Served first rounds sample no pool: strictly fewer pools than the
    // window-0 run. RR sets usually drop too, but a served round can nudge
    // a borderline candidate into one extra (larger-θ) round, so only a
    // no-material-regression bound is an invariant.
    EXPECT_LT(run.total_count_pools, baseline.total_count_pools)
        << "window " << window;
    EXPECT_LT(static_cast<double>(run.total_rr_sets),
              1.05 * static_cast<double>(baseline.total_rr_sets))
        << "window " << window;
    EXPECT_GT(run.speculative_queries, 0u);
    // Selections bump the epoch, so runs that seed at least once must also
    // discard at least one in-flight answer.
    if (!run.seeds.empty() && window >= 4) {
      EXPECT_GT(run.speculation_discarded, 0u) << "window " << window;
    }
  }
}

TEST(SpeculativePipeliningTest, HatpLookaheadMatchesWindowZeroSeeds) {
  const Graph g = TestGraph(2000);
  const ProfitProblem problem = CalibratedProblem(g);
  ExpectLookaheadEquivalence<HatpPolicy>(g, problem, HatpOptions{},
                                         /*world_seed=*/42);
}

TEST(SpeculativePipeliningTest, AddAtpLookaheadMatchesWindowZeroSeeds) {
  // ADDATP's additive-only schedule is too expensive for the 2000-node
  // instance in a unit test; the 400-node version exercises the same paths
  // (seed pinning as in coverage_batch_test).
  const Graph g = TestGraph(400);
  const ProfitProblem problem = CalibratedProblem(g);
  AddAtpOptions options;
  options.fail_on_budget_exhausted = false;
  ExpectLookaheadEquivalence<AddAtpPolicy>(g, problem, options,
                                           /*world_seed=*/43);
}

TEST(SpeculativePipeliningTest, HntpLookaheadMatchesWindowZeroSeeds) {
  // Clear-cut costs (cheap hubs, overpriced alternates) as in the batched-
  // rounds HNTP test: all sampling layouts agree on the obvious decisions.
  const Graph g = TestGraph(300);
  ProfitProblem problem;
  problem.graph = &g;
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId u = 0; u < 10; ++u) {
    problem.targets.push_back(u);
    problem.costs[u] = (u % 2 == 0) ? 0.2 : 60.0;
  }

  HntpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.lookahead_window = 0;
  Rng rng_baseline(3);
  Result<HntpResult> baseline = RunHntp(problem, options, &rng_baseline);
  ASSERT_TRUE(baseline.ok());

  options.sampling.lookahead_window = 4;
  Rng rng_pipelined(3);
  Result<HntpResult> pipelined = RunHntp(problem, options, &rng_pipelined);
  ASSERT_TRUE(pipelined.ok());

  EXPECT_EQ(pipelined.value().seeds, baseline.value().seeds);
  EXPECT_GT(pipelined.value().speculation_hits, 0u);
  EXPECT_LT(pipelined.value().total_count_pools,
            baseline.value().total_count_pools);
  // HNTP selects seeds here, so selection-epoch bumps must discard the
  // in-flight answers speculated before each selection.
  EXPECT_GT(pipelined.value().speculation_discarded, 0u);
}

TEST(SpeculativePipeliningTest, UnbatchedRoundsIgnoreTheWindow) {
  const Graph g = TestGraph(300);
  const ProfitProblem problem = CalibratedProblem(g, 10);

  HatpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.batched_rounds = false;
  options.sampling.lookahead_window = 8;
  const AdaptiveRunResult run = RunPolicy<HatpPolicy>(g, problem, options);

  EXPECT_EQ(run.speculation_hits + run.speculation_misses, 0u);
  EXPECT_EQ(run.speculative_queries, 0u);
  // The literal two-pools-per-round accounting is untouched.
  EXPECT_EQ(run.total_coverage_queries, run.total_count_pools);
}

// --- Adaptive lookahead: the window controller changes only the sampling
// layout (how many speculative queries ride each pool), never decisions.

TEST(AdaptiveLookaheadTest, DecisionsMatchFixedWindowAndTraceWidens) {
  const Graph g = TestGraph(2000);
  const ProfitProblem problem = CalibratedProblem(g);

  HatpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.kernel = SamplingKernel::kPerEdge;
  options.sampling.lookahead_window = 1;
  const AdaptiveRunResult fixed = RunPolicy<HatpPolicy>(g, problem, options,
                                                        /*world_seed=*/42);
  // A fixed window traces as a constant.
  ASSERT_FALSE(fixed.lookahead_window_trace.empty());
  for (uint32_t w : fixed.lookahead_window_trace) EXPECT_EQ(w, 1u);

  options.sampling.adaptive_lookahead = true;
  options.sampling.max_lookahead_window = 16;
  // This instance seeds often, so discards pile up fast; a permissive bar
  // keeps the controller widening on every stationary (abandon) streak —
  // the reset-on-seeding behavior is what this instance exercises.
  options.sampling.lookahead_discard_threshold = 0.95;
  const AdaptiveRunResult adaptive =
      RunPolicy<HatpPolicy>(g, problem, options, /*world_seed=*/42);

  // Same decisions as the fixed window (and hence as window 0, by the
  // equivalence suite above): speculation serves identical answers.
  EXPECT_EQ(adaptive.seeds, fixed.seeds);
  ASSERT_EQ(adaptive.steps.size(), fixed.steps.size());
  for (size_t i = 0; i < adaptive.steps.size(); ++i) {
    EXPECT_EQ(adaptive.steps[i].decision, fixed.steps[i].decision)
        << "step " << i;
  }

  // The trace starts at the base window, widens somewhere (the calibrated
  // instance has abandon streaks that hold the epoch still), never exceeds
  // the cap, and every widening step at most doubles.
  ASSERT_EQ(adaptive.lookahead_window_trace.size(),
            fixed.lookahead_window_trace.size());
  const std::vector<uint32_t>& trace = adaptive.lookahead_window_trace;
  EXPECT_EQ(trace.front(), 1u);
  uint32_t widest = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], 1u);
    EXPECT_LE(trace[i], 16u);
    if (i > 0) {
      EXPECT_LE(trace[i], trace[i - 1] * 2);
    }
    widest = std::max(widest, trace[i]);
  }
  EXPECT_GT(widest, 1u);
  // Every selection bumps the epoch, so each seed forces a reset to the
  // base window at the next speculating examination.
  if (adaptive.seeds.size() > 1) {
    uint64_t resets = 0;
    for (size_t i = 1; i < trace.size(); ++i) {
      if (trace[i] == 1u && trace[i - 1] > 1u) ++resets;
    }
    EXPECT_GT(resets, 0u);
  }
  // A wider window speculates at least as much as the fixed one.
  EXPECT_GE(adaptive.speculative_queries, fixed.speculative_queries);
}

TEST(AdaptiveLookaheadTest, StationaryEpochWidensGeometricallyToTheCap) {
  // Overpriced targets: every examination abandons, the residual epoch
  // never moves, and nothing is ever discarded — the controller's pure
  // widening trajectory: base, 2x, 4x, ... capped at max_lookahead_window.
  const Graph g = TestGraph(500);
  ProfitProblem problem;
  problem.graph = &g;
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId u = 0; u < 12; ++u) {
    problem.targets.push_back(u);
    problem.costs[u] = 500.0;  // above any possible spread
  }

  HatpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.lookahead_window = 1;
  options.sampling.adaptive_lookahead = true;
  options.sampling.max_lookahead_window = 8;
  const AdaptiveRunResult run = RunPolicy<HatpPolicy>(g, problem, options);

  EXPECT_TRUE(run.seeds.empty());
  EXPECT_EQ(run.speculation_discarded, 0u);
  ASSERT_EQ(run.lookahead_window_trace.size(), problem.targets.size());
  uint32_t expected = 1;
  for (size_t i = 0; i < run.lookahead_window_trace.size(); ++i) {
    EXPECT_EQ(run.lookahead_window_trace[i], expected) << "step " << i;
    expected = std::min(expected * 2, 8u);
  }
}

TEST(SpeculativePipeliningTest, EpochBumpDiscardsEveryInFlightAnswer) {
  // Cheap, high-degree targets: every examined candidate is selected, so
  // every speculative answer is sampled under an epoch that moved before
  // the candidate is reached — 100% discard, zero hits, and decisions
  // identical to window 0 because nothing stale is ever consumed.
  const Graph g = TestGraph(500);
  ProfitProblem problem;
  problem.graph = &g;
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId u = 0; u < 8; ++u) {
    problem.targets.push_back(u);
    problem.costs[u] = 0.01;
  }

  HatpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  options.sampling.lookahead_window = 0;
  const AdaptiveRunResult baseline = RunPolicy<HatpPolicy>(g, problem, options);

  options.sampling.lookahead_window = 4;
  const AdaptiveRunResult run = RunPolicy<HatpPolicy>(g, problem, options);

  EXPECT_EQ(run.seeds, baseline.seeds);
  EXPECT_EQ(run.speculation_hits, 0u);
  EXPECT_GT(run.speculative_queries, 0u);
  EXPECT_GT(run.speculation_discarded, 0u);
  for (const AdaptiveStepRecord& step : run.steps) {
    EXPECT_FALSE(step.first_round_speculative);
  }
  // With every answer discarded, no round is ever served for free: every
  // examined candidate pays at least one pool, exactly as at window 0.
  EXPECT_GE(run.total_count_pools, baseline.seeds.size());
  EXPECT_GT(run.total_rr_sets, 0u);
}

}  // namespace
}  // namespace atpm
