#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

class EdgeListIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/atpm_edge_list_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(EdgeListIoTest, LoadsBasicDirectedEdgeList) {
  WriteFile("0 1 0.5\n1 2 0.25\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_nodes(), 3u);
  EXPECT_EQ(g.value().num_edges(), 2u);
  EXPECT_FLOAT_EQ(g.value().OutProbs(0)[0], 0.5f);
}

TEST_F(EdgeListIoTest, SkipsCommentsAndBlankLines) {
  WriteFile("# SNAP header\n\n  \n0\t1\t0.5\n# trailing comment\n2 0 0.1\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 2u);
}

TEST_F(EdgeListIoTest, UndirectedModeAddsBothArcs) {
  WriteFile("0 1 0.5\n");
  EdgeListLoadOptions options;
  options.directed = false;
  Result<Graph> g = LoadEdgeList(path_, options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 2u);
}

TEST_F(EdgeListIoTest, DefaultProbUsedWhenColumnMissing) {
  WriteFile("0 1\n1 2\n");
  EdgeListLoadOptions options;
  options.default_prob = 0.25;
  Result<Graph> g = LoadEdgeList(path_, options);
  ASSERT_TRUE(g.ok());
  EXPECT_FLOAT_EQ(g.value().OutProbs(0)[0], 0.25f);
}

TEST_F(EdgeListIoTest, UnweightedWhenNoDefaultProvided) {
  WriteFile("0 1\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_FLOAT_EQ(g.value().OutProbs(0)[0], 0.0f);
}

TEST_F(EdgeListIoTest, MissingFileIsIOError) {
  Result<Graph> g = LoadEdgeList("/nonexistent/path/to/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

TEST_F(EdgeListIoTest, MalformedLineIsInvalidArgument) {
  WriteFile("0 1 0.5\nnot an edge\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
  // The error message pinpoints the offending line.
  EXPECT_NE(g.status().message().find(":2"), std::string::npos);
}

TEST_F(EdgeListIoTest, NegativeNodeIdRejected) {
  WriteFile("-1 2 0.5\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST_F(EdgeListIoTest, ProbabilityAboveOneRejected) {
  WriteFile("0 1 1.7\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
}

TEST_F(EdgeListIoTest, SaveLoadRoundTripPreservesGraph) {
  const Graph original = MakePaperFigure1Graph();
  ASSERT_TRUE(SaveEdgeList(original, path_).ok());
  Result<Graph> loaded = LoadEdgeList(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.value().num_edges(), original.num_edges());
  const auto a = original.CollectEdges();
  const auto b = loaded.value().CollectEdges();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_NEAR(a[i].prob, b[i].prob, 1e-6);
  }
}

TEST_F(EdgeListIoTest, SaveToUnwritablePathIsIOError) {
  const Graph g = MakePathGraph(3, 0.5);
  Status s = SaveEdgeList(g, "/nonexistent_dir/out.txt");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
}

TEST_F(EdgeListIoTest, EmptyFileYieldsEmptyGraph) {
  WriteFile("");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0u);
  EXPECT_EQ(g.value().num_edges(), 0u);
}

TEST_F(EdgeListIoTest, SaveLoadRoundTripIsBitExact) {
  // Probabilities chosen to have no short decimal representation; the
  // writer's max_digits10 formatting must reproduce every float bit.
  GraphBuilder builder;
  Rng rng(123);
  for (NodeId u = 0; u < 64; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      builder.AddEdge(u, (u + v + 1) % 64,
                      static_cast<float>(rng.UniformDouble()));
    }
  }
  const Graph original = builder.Build().value();
  ASSERT_TRUE(SaveEdgeList(original, path_).ok());
  Result<Graph> loaded = LoadEdgeList(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().num_edges(), original.num_edges());
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    const auto a = original.OutProbs(u);
    const auto b = loaded.value().OutProbs(u);
    for (uint32_t j = 0; j < original.OutDegree(u); ++j) {
      ASSERT_EQ(a[j], b[j]) << "prob mismatch at " << u << "/" << j;
    }
  }
}

TEST_F(EdgeListIoTest, FinalLineWithoutNewlineParses) {
  WriteFile("0 1 0.5\n1 2 0.25");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_edges(), 2u);
  EXPECT_FLOAT_EQ(g.value().OutProbs(1)[0], 0.25f);
}

TEST_F(EdgeListIoTest, CrLfLineEndingsParse) {
  WriteFile("# header\r\n0 1 0.5\r\n1 2 0.25\r\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_edges(), 2u);
}

TEST_F(EdgeListIoTest, UnparsableProbabilityColumnRejected) {
  WriteFile("0 1 not_a_prob\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST_F(EdgeListIoTest, ExtraColumnsAfterProbabilityIgnored) {
  // SNAP exports often append timestamps or labels.
  WriteFile("0 1 0.5 1534291200 label\n");
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_FLOAT_EQ(g.value().OutProbs(0)[0], 0.5f);
}

TEST_F(EdgeListIoTest, LinesSpanningReaderBlocksParse) {
  // Enough edges that the file crosses the reader's block boundary many
  // times, with long comment padding to force partial-line carries.
  std::ostringstream content;
  const int kEdges = 150000;  // ~2 MB of text vs the 1 MB block size
  for (int i = 0; i < kEdges; ++i) {
    if (i % 1000 == 0) {
      content << "# " << std::string(257, 'x') << "\n";
    }
    content << i % 977 << ' ' << (i + 1) % 977 << ' ' << 0.125 << '\n';
  }
  WriteFile(content.str());
  Result<Graph> g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_nodes(), 977u);
  // Duplicate (src, dst) pairs are deduplicated by the builder; every
  // surviving edge kept its probability.
  for (NodeId u = 0; u < g.value().num_nodes(); ++u) {
    for (float p : g.value().OutProbs(u)) ASSERT_EQ(p, 0.125f);
  }
}

}  // namespace
}  // namespace atpm
