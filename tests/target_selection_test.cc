#include "core/target_selection.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/weighting.h"

namespace atpm {
namespace {

Graph TestSocialGraph(uint64_t seed) {
  Rng rng(seed);
  BarabasiAlbertOptions ba;
  ba.num_nodes = 400;
  ba.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(ba, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

TEST(TopKTargetTest, ProducesValidCalibratedProblem) {
  const Graph g = TestSocialGraph(1);
  Result<TargetSelectionResult> result =
      BuildTopKTargetProblem(g, 15, CostScheme::kUniform);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ProfitProblem& problem = result.value().problem;
  EXPECT_EQ(problem.k(), 15u);
  EXPECT_TRUE(problem.Validate().ok());
  // The paper's calibration: c(T) = E_l[I(T)].
  EXPECT_NEAR(problem.TotalTargetCost(), result.value().spread_lower_bound,
              1e-6);
  EXPECT_GT(result.value().spread_lower_bound, 15.0);
}

TEST(TopKTargetTest, TargetsAreInfluential) {
  // The IMM-selected targets must beat random nodes on average degree
  // (degree is a strong spread proxy under weighted cascade).
  const Graph g = TestSocialGraph(2);
  Result<TargetSelectionResult> result =
      BuildTopKTargetProblem(g, 10, CostScheme::kDegreeProportional);
  ASSERT_TRUE(result.ok());
  double target_deg = 0.0;
  for (NodeId t : result.value().problem.targets) {
    target_deg += g.OutDegree(t);
  }
  target_deg /= 10.0;
  EXPECT_GT(target_deg, 3.0 * g.AverageDegree());
}

TEST(TopKTargetTest, DegreeSchemeChargesInfluencersMore) {
  const Graph g = TestSocialGraph(3);
  Result<TargetSelectionResult> result =
      BuildTopKTargetProblem(g, 10, CostScheme::kDegreeProportional);
  ASSERT_TRUE(result.ok());
  const ProfitProblem& problem = result.value().problem;
  // Max-degree target costs more than min-degree target.
  NodeId max_t = problem.targets[0];
  NodeId min_t = problem.targets[0];
  for (NodeId t : problem.targets) {
    if (g.OutDegree(t) > g.OutDegree(max_t)) max_t = t;
    if (g.OutDegree(t) < g.OutDegree(min_t)) min_t = t;
  }
  if (g.OutDegree(max_t) > g.OutDegree(min_t)) {
    EXPECT_GT(problem.CostOf(max_t), problem.CostOf(min_t));
  }
}

TEST(TopKTargetTest, DeterministicGivenSeed) {
  const Graph g = TestSocialGraph(4);
  TargetSelectionOptions options;
  options.seed = 123;
  Result<TargetSelectionResult> a =
      BuildTopKTargetProblem(g, 8, CostScheme::kUniform, options);
  Result<TargetSelectionResult> b =
      BuildTopKTargetProblem(g, 8, CostScheme::kUniform, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().problem.targets, b.value().problem.targets);
  EXPECT_EQ(a.value().problem.costs, b.value().problem.costs);
}

TEST(TopKTargetTest, RejectsBadK) {
  const Graph g = TestSocialGraph(5);
  EXPECT_FALSE(BuildTopKTargetProblem(g, 0, CostScheme::kUniform).ok());
}

TEST(PredefinedCostTest, DerivesNonEmptyTargetSet) {
  const Graph g = TestSocialGraph(6);
  // Small lambda: many nodes profitable.
  Result<TargetSelectionResult> result = BuildPredefinedCostProblem(
      g, 0.5, CostScheme::kUniform, TargetMethod::kNsg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().problem.k(), 0u);
  EXPECT_TRUE(result.value().problem.Validate().ok());
}

TEST(PredefinedCostTest, SmallerLambdaYieldsLargerTargetSet) {
  const Graph g = TestSocialGraph(7);
  Result<TargetSelectionResult> small_lambda = BuildPredefinedCostProblem(
      g, 0.3, CostScheme::kUniform, TargetMethod::kNsg);
  Result<TargetSelectionResult> large_lambda = BuildPredefinedCostProblem(
      g, 1.5, CostScheme::kUniform, TargetMethod::kNsg);
  ASSERT_TRUE(small_lambda.ok() && large_lambda.ok());
  EXPECT_GE(small_lambda.value().problem.k(),
            large_lambda.value().problem.k());
}

TEST(PredefinedCostTest, NdgMethodAlsoWorks) {
  const Graph g = TestSocialGraph(8);
  Result<TargetSelectionResult> result = BuildPredefinedCostProblem(
      g, 0.5, CostScheme::kDegreeProportional, TargetMethod::kNdg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().problem.k(), 0u);
}

TEST(PredefinedCostTest, HugeLambdaFailsGracefully) {
  const Graph g = TestSocialGraph(9);
  Result<TargetSelectionResult> result = BuildPredefinedCostProblem(
      g, 1e6, CostScheme::kUniform, TargetMethod::kNsg);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(PredefinedCostTest, CostsCoverWholeGraph) {
  const Graph g = TestSocialGraph(10);
  Result<TargetSelectionResult> result = BuildPredefinedCostProblem(
      g, 0.5, CostScheme::kUniform, TargetMethod::kNsg);
  ASSERT_TRUE(result.ok());
  // Predefined setting: every node carries a positive cost.
  for (double c : result.value().problem.costs) EXPECT_GT(c, 0.0);
}

}  // namespace
}  // namespace atpm
