// Forward-jump diffusion kernel: statistical agreement with the per-edge
// sweep across weightings and models, exact equality on degenerate
// probabilities, draws-per-edge reduction, and bit-compatibility of the
// kPerEdge knob with the pre-kernel forward streams (goldens captured on
// the release that preceded the default flip).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "diffusion/ic_model.h"
#include "diffusion/realization.h"
#include "graph/generators.h"
#include "graph/weighting.h"
#include "rris/sampling_stats.h"

namespace atpm {
namespace {

enum class Weighting { kWeightedCascade, kTrivalency, kUniformRandom };

Graph TestGraph(NodeId n, Weighting weighting, uint32_t edges_per_node = 2) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = edges_per_node;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  switch (weighting) {
    case Weighting::kWeightedCascade:
      ApplyWeightedCascade(&g);
      break;
    case Weighting::kTrivalency: {
      Rng wrng(99);
      ApplyTrivalency(&g, &wrng);
      break;
    }
    case Weighting::kUniformRandom: {
      Rng wrng(17);
      ApplyUniformRandomProbability(&g, 0.05, 0.5, &wrng);
      break;
    }
  }
  return g;
}

const std::vector<NodeId> kSeeds = {0, 1, 2, 3, 4};

// --- Statistical agreement: the kernels consume different RNG streams but
// must estimate the same expected spread. Mean over kTrials simulations,
// compared within 3 sigma of the combined standard error.

struct MeanVar {
  double mean = 0.0;
  double stderr2 = 0.0;  // squared standard error of the mean
};

template <typename SampleFn>
MeanVar EstimateMean(int trials, SampleFn sample) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double x = sample(t);
    sum += x;
    sum_sq += x * x;
  }
  const double n = static_cast<double>(trials);
  MeanVar mv;
  mv.mean = sum / n;
  const double var = (sum_sq - sum * sum / n) / (n - 1.0);
  mv.stderr2 = var / n;
  return mv;
}

void ExpectAgreement(const MeanVar& a, const MeanVar& b, const char* label) {
  const double sigma = std::sqrt(a.stderr2 + b.stderr2);
  EXPECT_LE(std::abs(a.mean - b.mean), 3.0 * sigma + 1e-9)
      << label << ": " << a.mean << " vs " << b.mean << " (sigma " << sigma
      << ")";
}

class KernelAgreementTest : public ::testing::TestWithParam<Weighting> {};

TEST_P(KernelAgreementTest, SimulateIcSpreadsAgree) {
  const Graph g = TestGraph(500, GetParam());
  constexpr int kTrials = 4000;
  Rng rng_jump(11);
  const MeanVar jump = EstimateMean(kTrials, [&](int) {
    return static_cast<double>(
        SimulateIC(g, kSeeds, &rng_jump, nullptr, nullptr,
                   SamplingKernel::kGeometricJump));
  });
  Rng rng_edge(13);
  const MeanVar edge = EstimateMean(kTrials, [&](int) {
    return static_cast<double>(SimulateIC(g, kSeeds, &rng_edge, nullptr,
                                          nullptr, SamplingKernel::kPerEdge));
  });
  ExpectAgreement(jump, edge, "SimulateIC");
}

TEST_P(KernelAgreementTest, IcWorldSpreadsAgree) {
  const Graph g = TestGraph(500, GetParam());
  constexpr int kTrials = 1500;
  Rng rng_jump(19);
  const MeanVar jump = EstimateMean(kTrials, [&](int) {
    const Realization w = Realization::Sample(
        g, &rng_jump, DiffusionModel::kIndependentCascade,
        SamplingKernel::kGeometricJump);
    return static_cast<double>(w.Spread(kSeeds));
  });
  Rng rng_edge(23);
  const MeanVar edge = EstimateMean(kTrials, [&](int) {
    const Realization w =
        Realization::Sample(g, &rng_edge, DiffusionModel::kIndependentCascade,
                            SamplingKernel::kPerEdge);
    return static_cast<double>(w.Spread(kSeeds));
  });
  ExpectAgreement(jump, edge, "IC world");
}

TEST_P(KernelAgreementTest, LtWorldSpreadsAgree) {
  const Graph g = TestGraph(500, GetParam());
  constexpr int kTrials = 1500;
  Rng rng_jump(29);
  const MeanVar jump = EstimateMean(kTrials, [&](int) {
    const Realization w = Realization::Sample(
        g, &rng_jump, DiffusionModel::kLinearThreshold,
        SamplingKernel::kGeometricJump);
    return static_cast<double>(w.Spread(kSeeds));
  });
  Rng rng_edge(31);
  const MeanVar edge = EstimateMean(kTrials, [&](int) {
    const Realization w =
        Realization::Sample(g, &rng_edge, DiffusionModel::kLinearThreshold,
                            SamplingKernel::kPerEdge);
    return static_cast<double>(w.Spread(kSeeds));
  });
  ExpectAgreement(jump, edge, "LT world");
}

INSTANTIATE_TEST_SUITE_P(Weightings, KernelAgreementTest,
                         ::testing::Values(Weighting::kWeightedCascade,
                                           Weighting::kTrivalency,
                                           Weighting::kUniformRandom),
                         [](const auto& info) {
                           switch (info.param) {
                             case Weighting::kWeightedCascade:
                               return "WeightedCascade";
                             case Weighting::kTrivalency:
                               return "Trivalency";
                             case Weighting::kUniformRandom:
                               return "UniformRandom";
                           }
                           return "Unknown";
                         });

// --- Degenerate probabilities: p in {0, 1} resolves without consulting
// the probability (certain / impossible edges), so both kernels must agree
// EXACTLY, not just in distribution.

TEST(DegenerateProbabilityTest, CertainEdgesSpreadIdentically) {
  Graph g = TestGraph(300, Weighting::kWeightedCascade);
  ApplyConstantProbability(&g, 1.0);
  g.RebuildWeightIndex();
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng_jump(100 + trial);
    Rng rng_edge(200 + trial);  // streams don't matter: no coin is random
    EXPECT_EQ(SimulateIC(g, kSeeds, &rng_jump, nullptr, nullptr,
                         SamplingKernel::kGeometricJump),
              SimulateIC(g, kSeeds, &rng_edge, nullptr, nullptr,
                         SamplingKernel::kPerEdge));
  }
  Rng wa(5);
  Rng wb(6);
  const Realization a = Realization::Sample(
      g, &wa, DiffusionModel::kIndependentCascade,
      SamplingKernel::kGeometricJump);
  const Realization b =
      Realization::Sample(g, &wb, DiffusionModel::kIndependentCascade,
                          SamplingKernel::kPerEdge);
  EXPECT_EQ(a.NumLiveEdges(), g.num_edges());
  EXPECT_EQ(b.NumLiveEdges(), g.num_edges());
}

TEST(DegenerateProbabilityTest, ImpossibleEdgesSpreadIdentically) {
  Graph g = TestGraph(300, Weighting::kWeightedCascade);
  ApplyConstantProbability(&g, 0.0);
  g.RebuildWeightIndex();
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng_jump(100 + trial);
    Rng rng_edge(200 + trial);
    const uint32_t jump = SimulateIC(g, kSeeds, &rng_jump, nullptr, nullptr,
                                     SamplingKernel::kGeometricJump);
    EXPECT_EQ(jump, kSeeds.size());
    EXPECT_EQ(jump, SimulateIC(g, kSeeds, &rng_edge, nullptr, nullptr,
                               SamplingKernel::kPerEdge));
  }
  Rng wa(5);
  const Realization a = Realization::Sample(
      g, &wa, DiffusionModel::kIndependentCascade,
      SamplingKernel::kGeometricJump);
  EXPECT_EQ(a.NumLiveEdges(), 0u);
}

TEST(DegenerateProbabilityTest, CertainEdgesAreDrawless) {
  // The jump kernel resolves p = 1 runs with zero RNG draws (the per-edge
  // loop pays one per examined edge).
  Graph g = TestGraph(300, Weighting::kWeightedCascade);
  ApplyConstantProbability(&g, 1.0);
  g.RebuildWeightIndex();
  Rng rng(3);
  SamplingStats stats;
  SimulateIC(g, kSeeds, &rng, nullptr, nullptr,
             SamplingKernel::kGeometricJump, &stats);
  EXPECT_EQ(stats.rng_draws, 0u);
  EXPECT_GT(stats.edges_examined, 0u);
}

// --- Forward draws-per-edge: the reduction the kernel exists for. Both
// kernels charge identical edges_examined, so DrawsPerEdge is comparable.

TEST(ForwardDrawsTest, JumpKernelDrawsFewerOnLowProbabilityWeightings) {
  for (Weighting weighting :
       {Weighting::kWeightedCascade, Weighting::kTrivalency}) {
    // Hub-ish out-degrees (epn = 8) give the forward index long jumpable
    // runs on weighted cascade's all-distinct out-vectors.
    const Graph g = TestGraph(2000, weighting, /*edges_per_node=*/8);
    constexpr int kTrials = 300;
    SamplingStats jump_stats;
    Rng rng_jump(41);
    for (int t = 0; t < kTrials; ++t) {
      SimulateIC(g, kSeeds, &rng_jump, nullptr, nullptr,
                 SamplingKernel::kGeometricJump, &jump_stats);
    }
    SamplingStats edge_stats;
    Rng rng_edge(43);
    for (int t = 0; t < kTrials; ++t) {
      SimulateIC(g, kSeeds, &rng_edge, nullptr, nullptr,
                 SamplingKernel::kPerEdge, &edge_stats);
    }
    EXPECT_LT(jump_stats.DrawsPerEdge(), edge_stats.DrawsPerEdge());
    // The per-edge loop's skip-then-draw can only draw at most once per
    // examined edge.
    EXPECT_LE(edge_stats.DrawsPerEdge(), 1.0);
  }
}

TEST(ForwardDrawsTest, WorldSamplingTracksDrawsBothKernels) {
  const Graph g = TestGraph(1000, Weighting::kWeightedCascade);
  SamplingStats jump_stats;
  Rng rng_jump(47);
  Realization::Sample(g, &rng_jump, DiffusionModel::kIndependentCascade,
                      SamplingKernel::kGeometricJump, &jump_stats);
  SamplingStats edge_stats;
  Rng rng_edge(53);
  Realization::Sample(g, &rng_edge, DiffusionModel::kIndependentCascade,
                      SamplingKernel::kPerEdge, &edge_stats);
  // Every edge charges one edges_examined under either kernel.
  EXPECT_EQ(jump_stats.edges_examined, g.num_edges());
  EXPECT_EQ(edge_stats.edges_examined, g.num_edges());
  // Per-edge flips one coin per edge; the jump sweep does strictly better
  // on weighted cascade (its in-vectors are uniform: one geometric draw
  // per live edge).
  EXPECT_EQ(edge_stats.rng_draws, g.num_edges());
  EXPECT_LT(jump_stats.rng_draws, edge_stats.rng_draws);
}

// --- kPerEdge bit-compatibility: the forward streams must reproduce the
// pre-kernel release exactly. Goldens captured on BA(300, epn=2, seed 7)
// immediately before the default flip.

Graph GoldenWcGraph() { return TestGraph(300, Weighting::kWeightedCascade); }
Graph GoldenTriGraph() { return TestGraph(300, Weighting::kTrivalency); }

TEST(PerEdgeForwardGoldenTest, WcSimulateIcMatchesPreKernelStream) {
  const Graph g = GoldenWcGraph();
  const uint32_t expected[8] = {72, 67, 62, 72, 51, 65, 66, 65};
  Rng rng(123);
  for (uint32_t want : expected) {
    EXPECT_EQ(SimulateIC(g, kSeeds, &rng, nullptr, nullptr,
                         SamplingKernel::kPerEdge),
              want);
  }
}

TEST(PerEdgeForwardGoldenTest, WcSimulateLtMatchesPreKernelStream) {
  // SimulateLT draws one lazy threshold per touched node under every
  // release — no kernel knob, the stream is inherently stable.
  const Graph g = GoldenWcGraph();
  const uint32_t expected[8] = {66, 71, 64, 125, 87, 65, 86, 79};
  Rng rng(125);
  for (uint32_t want : expected) {
    EXPECT_EQ(SimulateLT(g, kSeeds, &rng), want);
  }
}

TEST(PerEdgeForwardGoldenTest, WcIcWorldsMatchPreKernelStream) {
  const Graph g = GoldenWcGraph();
  const size_t expected_live[2] = {317, 302};
  const uint32_t expected_spread[2] = {76, 50};
  Rng rng(42);
  for (int i = 0; i < 2; ++i) {
    const Realization w =
        Realization::Sample(g, &rng, DiffusionModel::kIndependentCascade,
                            SamplingKernel::kPerEdge);
    EXPECT_EQ(w.NumLiveEdges(), expected_live[i]);
    EXPECT_EQ(w.Spread(kSeeds), expected_spread[i]);
  }
}

TEST(PerEdgeForwardGoldenTest, WcLtWorldsMatchPreKernelStream) {
  const Graph g = GoldenWcGraph();
  const size_t expected_live[2] = {300, 300};
  const uint32_t expected_spread[2] = {74, 128};
  Rng rng(43);
  for (int i = 0; i < 2; ++i) {
    const Realization w =
        Realization::Sample(g, &rng, DiffusionModel::kLinearThreshold,
                            SamplingKernel::kPerEdge);
    EXPECT_EQ(w.NumLiveEdges(), expected_live[i]);
    EXPECT_EQ(w.Spread(kSeeds), expected_spread[i]);
  }
}

TEST(PerEdgeForwardGoldenTest, TriSimulateIcMatchesPreKernelStream) {
  const Graph g = GoldenTriGraph();
  const uint32_t expected[8] = {10, 7, 10, 8, 8, 10, 7, 8};
  Rng rng(123);
  for (uint32_t want : expected) {
    EXPECT_EQ(SimulateIC(g, kSeeds, &rng, nullptr, nullptr,
                         SamplingKernel::kPerEdge),
              want);
  }
}

TEST(PerEdgeForwardGoldenTest, TriIcWorldsMatchPreKernelStream) {
  const Graph g = GoldenTriGraph();
  const size_t expected_live[2] = {47, 35};
  const uint32_t expected_spread[2] = {11, 9};
  Rng rng(42);
  for (int i = 0; i < 2; ++i) {
    const Realization w =
        Realization::Sample(g, &rng, DiffusionModel::kIndependentCascade,
                            SamplingKernel::kPerEdge);
    EXPECT_EQ(w.NumLiveEdges(), expected_live[i]);
    EXPECT_EQ(w.Spread(kSeeds), expected_spread[i]);
  }
}

// --- The forward out-edge index census behind the kernel.

TEST(OutWeightIndexTest, ProfilesCoverEveryNodeAndCountJumpableEdges) {
  for (Weighting weighting :
       {Weighting::kWeightedCascade, Weighting::kTrivalency,
        Weighting::kUniformRandom}) {
    const Graph g = TestGraph(400, weighting);
    const WeightClassProfile out = g.OutWeightClassProfile();
    const WeightClassProfile in = g.InWeightClassProfile();
    EXPECT_EQ(out.uniform_nodes + out.few_distinct_nodes +
                  out.segmented_nodes + out.general_nodes + out.empty_nodes,
              g.num_nodes());
    EXPECT_EQ(out.total_edges, g.num_edges());
    EXPECT_EQ(in.total_edges, g.num_edges());
    EXPECT_LE(g.OutJumpableEdges(), g.num_edges());
    EXPECT_LE(g.InJumpableEdges(), g.num_edges());
  }
  // Weighted cascade: in-vectors are uniform (p = 1/indeg), so the reverse
  // index dominates and world sampling picks the reverse sweep.
  const Graph wc = TestGraph(400, Weighting::kWeightedCascade);
  EXPECT_GT(wc.InJumpableEdges(), wc.OutJumpableEdges());
  // Trivalency's tiny distinct-probability palette makes every out-vector
  // jumpable once out-degrees clear the segmented-runs floor (epn = 3):
  // the forward sweep wins.
  const Graph tri = TestGraph(400, Weighting::kTrivalency,
                              /*edges_per_node=*/3);
  EXPECT_EQ(tri.OutJumpableEdges(), tri.num_edges());
  EXPECT_GT(tri.OutJumpableEdges(), tri.InJumpableEdges());
}

}  // namespace
}  // namespace atpm
