#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph_builder.h"

namespace atpm {
namespace {

Graph Build(GraphBuilder* builder, const GraphBuildOptions& options = {}) {
  Result<Graph> result = builder->Build(options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphBuilderTest, BuildsSimpleTriangle) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.25);
  b.AddEdge(2, 0, 1.0);
  Graph g = Build(&b);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_FLOAT_EQ(g.OutProbs(0)[0], 0.5f);
  EXPECT_EQ(g.InNeighbors(0)[0], 2u);
  EXPECT_FLOAT_EQ(g.InProbs(0)[0], 1.0f);
}

TEST(GraphBuilderTest, InfersNodeCountFromMaxId) {
  GraphBuilder b;
  b.AddEdge(2, 9, 0.1);
  Graph g = Build(&b);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.OutDegree(5), 0u);
}

TEST(GraphBuilderTest, ReserveNodesCreatesIsolatedNodes) {
  GraphBuilder b;
  b.ReserveNodes(20);
  b.AddEdge(0, 1, 0.3);
  Graph g = Build(&b);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, RemovesSelfLoopsByDefault) {
  GraphBuilder b;
  b.AddEdge(1, 1, 0.5);
  b.AddEdge(0, 1, 0.5);
  Graph g = Build(&b);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, KeepsSelfLoopsWhenAsked) {
  GraphBuilder b;
  b.AddEdge(1, 1, 0.5);
  GraphBuildOptions options;
  options.remove_self_loops = false;
  Graph g = Build(&b, options);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdgesKeepingMaxProb) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.2);
  b.AddEdge(0, 1, 0.7);
  b.AddEdge(0, 1, 0.4);
  Graph g = Build(&b);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_FLOAT_EQ(g.OutProbs(0)[0], 0.7f);
}

TEST(GraphBuilderTest, KeepsParallelEdgesWhenDedupDisabled) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.2);
  b.AddEdge(0, 1, 0.7);
  GraphBuildOptions options;
  options.deduplicate = false;
  Graph g = Build(&b, options);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, UndirectedEdgeAddsBothArcs) {
  GraphBuilder b;
  b.AddUndirectedEdge(0, 1, 0.5);
  Graph g = Build(&b);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(GraphBuilderTest, RejectsProbabilityAboveOne) {
  GraphBuilder b;
  b.AddEdge(0, 1, 1.5);
  Result<Graph> result = b.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsNegativeProbability) {
  GraphBuilder b;
  b.AddEdge(0, 1, -0.1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphTest, ForwardAndReverseViewsAgree) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.1);
  b.AddEdge(0, 2, 0.2);
  b.AddEdge(1, 2, 0.3);
  b.AddEdge(3, 2, 0.4);
  b.AddEdge(2, 0, 0.5);
  Graph g = Build(&b);

  // Every forward arc appears exactly once in the reverse view with the
  // same probability, and vice versa.
  std::multiset<std::tuple<NodeId, NodeId, float>> forward;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto neigh = g.OutNeighbors(u);
    const auto probs = g.OutProbs(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      forward.insert({u, neigh[j], probs[j]});
    }
  }
  std::multiset<std::tuple<NodeId, NodeId, float>> reverse;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto neigh = g.InNeighbors(v);
    const auto probs = g.InProbs(v);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      reverse.insert({neigh[j], v, probs[j]});
    }
  }
  EXPECT_EQ(forward, reverse);
}

TEST(GraphTest, DegreeSumsMatchEdgeCount) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.1);
  b.AddEdge(1, 2, 0.1);
  b.AddEdge(2, 3, 0.1);
  b.AddEdge(3, 0, 0.1);
  b.AddEdge(0, 2, 0.1);
  Graph g = Build(&b);
  uint64_t out_sum = 0;
  uint64_t in_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_sum += g.OutDegree(u);
    in_sum += g.InDegree(u);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

TEST(GraphTest, OutEdgeIndexIsGloballyUniqueAndDense) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.1);
  b.AddEdge(0, 2, 0.1);
  b.AddEdge(1, 0, 0.1);
  b.AddEdge(2, 1, 0.1);
  Graph g = Build(&b);
  std::set<uint64_t> indices;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (uint32_t j = 0; j < g.OutDegree(u); ++j) {
      indices.insert(g.OutEdgeIndex(u, j));
    }
  }
  EXPECT_EQ(indices.size(), g.num_edges());
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), g.num_edges() - 1);
}

TEST(GraphTest, CollectEdgesRoundTrips) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.25);
  b.AddEdge(2, 1, 0.75);
  Graph g = Build(&b);
  std::vector<WeightedEdge> edges = g.CollectEdges();
  ASSERT_EQ(edges.size(), 2u);
  GraphBuilder b2;
  for (const WeightedEdge& e : edges) b2.AddEdge(e.src, e.dst, e.prob);
  Graph g2 = Build(&b2);
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

TEST(GraphTest, AverageDegree) {
  GraphBuilder b;
  b.ReserveNodes(4);
  b.AddEdge(0, 1, 0.1);
  b.AddEdge(1, 2, 0.1);
  Graph g = Build(&b);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.5);
}

TEST(GraphTest, AssignProbabilitiesUpdatesBothViews) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.0);
  b.AddEdge(1, 2, 0.0);
  b.AddEdge(2, 0, 0.0);
  Graph g = Build(&b);
  g.AssignProbabilities([](NodeId src, NodeId dst) {
    return 0.1 * static_cast<double>(src) + 0.01 * static_cast<double>(dst);
  });
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto neigh = g.OutNeighbors(u);
    const auto probs = g.OutProbs(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      EXPECT_FLOAT_EQ(probs[j],
                      static_cast<float>(0.1 * u + 0.01 * neigh[j]));
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto neigh = g.InNeighbors(v);
    const auto probs = g.InProbs(v);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      EXPECT_FLOAT_EQ(probs[j],
                      static_cast<float>(0.1 * neigh[j] + 0.01 * v));
    }
  }
}

TEST(GraphBuilderTest, BuildConsumesPendingEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0.5);
  EXPECT_EQ(b.num_pending_edges(), 1u);
  Build(&b);
  EXPECT_EQ(b.num_pending_edges(), 0u);
}

TEST(GraphBuilderTest, LargeStarGraph) {
  GraphBuilder b;
  const NodeId n = 10000;
  for (NodeId v = 1; v < n; ++v) b.AddEdge(0, v, 0.01);
  Graph g = Build(&b);
  EXPECT_EQ(g.OutDegree(0), n - 1);
  EXPECT_EQ(g.InDegree(0), 0u);
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_EQ(g.InDegree(v), 1u);
  }
}

}  // namespace
}  // namespace atpm
