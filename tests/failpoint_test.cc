// Chaos suite for the fault-tolerant sampling substrate: deterministic
// failpoint injection (every registered site surfaces as a Status, never a
// crash), transient-fault retry absorption, crash-safe graph-store saves,
// run budgets (deadline / byte cap / cancellation) with graceful
// degradation telemetry, and golden bit-identity checks proving that the
// compiled-in-but-inactive machinery leaves every sampling stream
// untouched.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "common/run_budget.h"
#include "core/hatp.h"
#include "core/hntp.h"
#include "core/target_selection.h"
#include "diffusion/adaptive_environment.h"
#include "diffusion/realization.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_store.h"
#include "graph/weighting.h"
#include "rris/rr_collection.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

Graph WcGraph(NodeId n = 300) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

uint64_t PoolHash(const RRCollection& pool) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t i = 0; i < pool.num_sets(); ++i) {
    const auto s = pool.set(i);
    h = (h ^ s.size()) * 1099511628211ull;
    for (NodeId v : s) h = (h ^ v) * 1099511628211ull;
  }
  return h;
}

uint64_t PoolTotalNodes(const RRCollection& pool) {
  uint64_t total = 0;
  for (uint64_t i = 0; i < pool.num_sets(); ++i) total += pool.set(i).size();
  return total;
}

// The pipelining-test instance: BA n=300 epn=2 weighted-cascade graph,
// top-10 degree-proportional targets, default (geometric-jump) kernels.
ProfitProblem GoldenProblem(const Graph& g) {
  auto selection =
      BuildTopKTargetProblem(g, 10, CostScheme::kDegreeProportional);
  EXPECT_TRUE(selection.ok()) << selection.status().ToString();
  return selection.value().problem;
}

Result<AdaptiveRunResult> RunGoldenHatp(const Graph& g,
                                        const ProfitProblem& problem,
                                        const HatpOptions& hopt) {
  HatpPolicy policy(hopt);
  Rng world_rng(42);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  Rng rng(1);
  return policy.Run(problem, &env, &rng);
}

// Every test leaves the process failpoint-free, however it exits.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override {
    failpoint::DisarmAll();
    std::remove(StorePath().c_str());
    std::remove(EdgePath().c_str());
  }

  std::string StorePath() const {
    return ::testing::TempDir() + "/atpm_failpoint_store_" +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + ".atpm";
  }
  std::string EdgePath() const {
    return ::testing::TempDir() + "/atpm_failpoint_edges_" +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
  }
};

// ---- Registry sanity.

TEST_F(FailpointTest, RegistryListsEveryDeclaredSite) {
  const std::vector<std::string> names = failpoint::RegisteredNames();
  const char* expected[] = {
      "alloc.pool_reserve",    "alloc.pool_append",
      "engine.serial_batch",   "engine.parallel_worker",
      "graph_store.open",      "graph_store.open.transient",
      "graph_store.mmap",      "graph_store.read",
      "graph_store.write",     "graph_store.fsync",
      "graph_store.rename",    "edge_list.open",
      "edge_list.read",        "edge_list.read.transient",
      "edge_list.write",
  };
  for (const char* name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name << " missing from the failpoint registry";
  }
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(failpoint::Arm("no.such.failpoint"));
}

TEST_F(FailpointTest, SpecGrammarParsesAndRejects) {
  EXPECT_TRUE(failpoint::ArmFromSpec(
                  "graph_store.write;edge_list.read=error@2:1")
                  .ok());
  EXPECT_TRUE(failpoint::AnyArmed());
  failpoint::DisarmAll();
  EXPECT_TRUE(failpoint::ArmFromSpec("chaos:17:0.25").ok());
  failpoint::DisarmAll();
  EXPECT_TRUE(failpoint::ArmFromSpec("no.such.failpoint")
                  .IsInvalidArgument());
  EXPECT_TRUE(failpoint::ArmFromSpec("graph_store.write=frobnicate")
                  .IsInvalidArgument());
  EXPECT_TRUE(failpoint::ArmFromSpec("chaos:9:1.5").IsInvalidArgument());
}

// ---- Golden bit-identity: the machinery is compiled in everywhere, but
// with nothing armed every sampling stream must match the pre-failpoint
// tree bit for bit.

TEST_F(FailpointTest, InactiveSitesKeepSerialPoolGolden) {
  const Graph g = WcGraph();
  SerialSamplingEngine engine(g);
  Rng rng(77);
  const RRCollection& pool =
      engine.GeneratePool(nullptr, g.num_nodes(), 2000, &rng);
  EXPECT_EQ(pool.num_sets(), 2000u);
  EXPECT_EQ(PoolTotalNodes(pool), 9141u);
  EXPECT_EQ(PoolHash(pool), 11827176579932382309ull);
}

TEST_F(FailpointTest, InactiveSitesKeepParallelSeededCountGolden) {
  const Graph g = WcGraph();
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4,
                                4096);
  EXPECT_EQ(engine.CountConditionalCoverageSeeded(0, &base, nullptr,
                                                  g.num_nodes(), 60000, 42),
            809u);
}

TEST_F(FailpointTest, InactiveSitesKeepHatpRunGolden) {
  const Graph g = WcGraph();
  const ProfitProblem problem = GoldenProblem(g);
  EXPECT_EQ(problem.targets,
            (std::vector<NodeId>{2, 4, 7, 18, 13, 17, 8, 9, 41, 22}));

  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  auto run = RunGoldenHatp(g, problem, hopt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().seeds, (std::vector<NodeId>{2, 7, 17, 9}));
  EXPECT_EQ(run.value().total_rr_sets, 720744u);
  EXPECT_NEAR(run.value().realized_profit, 17.874342, 1e-4);
  std::vector<int> decisions;
  for (const AdaptiveStepRecord& step : run.value().steps) {
    decisions.push_back(static_cast<int>(step.decision));
  }
  EXPECT_EQ(decisions, (std::vector<int>{0, 1, 0, 1, 2, 0, 1, 0, 1, 2}));

  // A clean (unbudgeted, unfaulted) run certifies exactly what was asked.
  EXPECT_TRUE(run.value().degradation_events.empty());
  EXPECT_DOUBLE_EQ(run.value().effective_epsilon,
                   hopt.relative_error_threshold);
  EXPECT_GT(run.value().achieved_theta, 0u);
  EXPECT_GT(run.value().achieved_additive_error, 0.0);
}

// ---- Armed sites surface as Statuses; disarming restores the exact
// clean-run behavior.

TEST_F(FailpointTest, SerialEngineFaultsSurfaceAsStatus) {
  const Graph g = WcGraph();
  SerialSamplingEngine engine(g);
  Rng rng(77);

  ASSERT_TRUE(failpoint::Arm("engine.serial_batch"));
  EXPECT_TRUE(engine.TryGeneratePool(nullptr, g.num_nodes(), 100, &rng)
                  .IsInternal());
  EXPECT_EQ(engine.pool().num_sets(), 0u);
  CoverageQueryBatch batch;
  batch.Add(0);
  EXPECT_TRUE(
      engine.TryCountCoverageBatchSeeded(&batch, nullptr, g.num_nodes(), 100,
                                         42)
          .status()
          .IsInternal());

  // Disarm + rerun from a fresh stream: bit-identical to the golden pool.
  failpoint::DisarmAll();
  Rng clean(77);
  ASSERT_TRUE(
      engine.TryGeneratePool(nullptr, g.num_nodes(), 2000, &clean).ok());
  EXPECT_EQ(PoolHash(engine.pool()), 11827176579932382309ull);
}

TEST_F(FailpointTest, AllocFailuresBecomeResourceExhausted) {
  const Graph g = WcGraph();
  SerialSamplingEngine engine(g);
  Rng rng(77);

  ASSERT_TRUE(failpoint::Arm("alloc.pool_reserve"));
  Status reserve = engine.TryGeneratePool(nullptr, g.num_nodes(), 100, &rng);
  EXPECT_TRUE(reserve.IsResourceExhausted()) << reserve.ToString();
  EXPECT_EQ(engine.pool().num_sets(), 0u);

  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("alloc.pool_append"));
  Status append = engine.TryGeneratePool(nullptr, g.num_nodes(), 100, &rng);
  EXPECT_TRUE(append.IsResourceExhausted()) << append.ToString();
}

TEST_F(FailpointTest, ParallelWorkerThrowIsContained) {
  const Graph g = WcGraph();
  ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4,
                                4096);
  Rng rng(77);
  ASSERT_TRUE(failpoint::Arm("engine.parallel_worker"));
  // Large enough to engage the worker pool: the exception crosses the
  // thread boundary as a Status, the process stays alive, and the engine
  // stays usable after disarming.
  Status fault = engine.TryGeneratePool(nullptr, g.num_nodes(), 20000, &rng);
  EXPECT_TRUE(fault.IsInternal()) << fault.ToString();

  failpoint::DisarmAll();
  engine.ResetPool();
  Rng clean(77);
  ASSERT_TRUE(
      engine.TryGeneratePool(nullptr, g.num_nodes(), 20000, &clean).ok());
  EXPECT_EQ(engine.pool().num_sets(), 20000u);
}

TEST_F(FailpointTest, ScheduledFailpointFiresOnExactHits) {
  const Graph g = WcGraph();
  SerialSamplingEngine engine(g);
  failpoint::Spec spec;
  spec.fire_at = 3;
  spec.count = 1;
  ASSERT_TRUE(failpoint::Arm("engine.serial_batch", spec));
  Rng rng(77);
  for (int call = 1; call <= 4; ++call) {
    const Status s = engine.TryGeneratePool(nullptr, g.num_nodes(), 10, &rng);
    if (call == 3) {
      EXPECT_FALSE(s.ok()) << "call " << call;
    } else {
      EXPECT_TRUE(s.ok()) << "call " << call << ": " << s.ToString();
    }
  }
  EXPECT_EQ(failpoint::HitCount("engine.serial_batch"), 4u);
}

// ---- Graph-store IO: injected faults reject cleanly, saves are atomic,
// transient faults are absorbed by bounded retries.

TEST_F(FailpointTest, GraphStoreSaveFaultsLeaveNoFileBehind) {
  const Graph g = WcGraph(64);
  const std::string path = StorePath();
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  for (const char* site :
       {"graph_store.open", "graph_store.write", "graph_store.fsync",
        "graph_store.rename"}) {
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site));
    const Status s = SaveGraphStore(g, path);
    EXPECT_TRUE(s.IsIOError()) << site << ": " << s.ToString();
    EXPECT_NE(::access(path.c_str(), F_OK), 0)
        << site << " left a partial store at the final path";
    EXPECT_NE(::access(tmp.c_str(), F_OK), 0)
        << site << " leaked the temp file";
  }
  failpoint::DisarmAll();
  ASSERT_TRUE(SaveGraphStore(g, path).ok());
  EXPECT_TRUE(LoadGraphStore(path).ok());
}

TEST_F(FailpointTest, FailedResaveLeavesExistingStoreIntact) {
  const std::string path = StorePath();
  const Graph original = WcGraph();
  ASSERT_TRUE(SaveGraphStore(original, path).ok());

  // Every failure mode of the re-save must leave the published store
  // byte-identical — the temp-file + rename protocol never exposes a torn
  // write at the final path.
  Rng rng(11);
  BarabasiAlbertOptions big;
  big.num_nodes = 400;
  big.edges_per_node = 3;
  Graph other = GenerateBarabasiAlbert(big, &rng).value();
  ApplyWeightedCascade(&other);
  for (const char* site :
       {"graph_store.write", "graph_store.fsync", "graph_store.rename"}) {
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site));
    EXPECT_FALSE(SaveGraphStore(other, path).ok()) << site;
    failpoint::DisarmAll();
    Result<Graph> loaded = LoadGraphStore(path);
    ASSERT_TRUE(loaded.ok()) << site << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value().num_nodes(), original.num_nodes()) << site;
    EXPECT_EQ(loaded.value().num_edges(), original.num_edges()) << site;
  }
}

TEST_F(FailpointTest, GraphStoreLoadFaultsRejectCleanly) {
  const std::string path = StorePath();
  ASSERT_TRUE(SaveGraphStore(WcGraph(64), path).ok());
  for (const char* site :
       {"graph_store.open", "graph_store.mmap", "graph_store.read"}) {
    failpoint::DisarmAll();
    ASSERT_TRUE(failpoint::Arm(site));
    const Status s = LoadGraphStore(path).status();
    EXPECT_TRUE(s.IsIOError()) << site << ": " << s.ToString();
  }
  failpoint::DisarmAll();
  EXPECT_TRUE(LoadGraphStore(path).ok());
}

TEST_F(FailpointTest, TransientOpenFaultsAreRetriedAway) {
  const std::string path = StorePath();
  ASSERT_TRUE(SaveGraphStore(WcGraph(64), path).ok());

  failpoint::Spec three;
  three.action = failpoint::Action::kTransient;
  three.count = 3;
  ASSERT_TRUE(failpoint::Arm("graph_store.open.transient", three));
  EXPECT_TRUE(LoadGraphStore(path).ok());
  // Three simulated faults plus the clean fourth consult.
  EXPECT_EQ(failpoint::HitCount("graph_store.open.transient"), 4u);

  // An unbounded transient schedule exhausts the retry budget and turns
  // into a hard IOError instead of spinning.
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("graph_store.open.transient"));
  const Status s = LoadGraphStore(path).status();
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("retry budget"), std::string::npos);
}

// ---- Edge-list IO.

TEST_F(FailpointTest, EdgeListIoFaultsSurfaceAndTransientsAbsorb) {
  const Graph g = WcGraph(64);
  const std::string path = EdgePath();
  ASSERT_TRUE(SaveEdgeList(g, path).ok());

  ASSERT_TRUE(failpoint::Arm("edge_list.open"));
  EXPECT_TRUE(LoadEdgeList(path).status().IsIOError());
  EXPECT_TRUE(SaveEdgeList(g, path + ".second").IsIOError());
  failpoint::DisarmAll();

  ASSERT_TRUE(failpoint::Arm("edge_list.read"));
  EXPECT_TRUE(LoadEdgeList(path).status().IsIOError());
  failpoint::DisarmAll();

  failpoint::Spec two;
  two.action = failpoint::Action::kTransient;
  two.count = 2;
  ASSERT_TRUE(failpoint::Arm("edge_list.read.transient", two));
  Result<Graph> absorbed = LoadEdgeList(path);
  ASSERT_TRUE(absorbed.ok()) << absorbed.status().ToString();
  EXPECT_EQ(absorbed.value().num_edges(), g.num_edges());
  failpoint::DisarmAll();

  ASSERT_TRUE(failpoint::Arm("edge_list.read.transient"));
  const Status exhausted = LoadEdgeList(path).status();
  ASSERT_TRUE(exhausted.IsIOError()) << exhausted.ToString();
  EXPECT_NE(exhausted.ToString().find("retry budget"), std::string::npos);
  failpoint::DisarmAll();

  ASSERT_TRUE(failpoint::Arm("edge_list.write"));
  EXPECT_TRUE(SaveEdgeList(g, path + ".second").IsIOError());
  std::remove((path + ".second").c_str());
}

// ---- Policy-level containment and degradation.

TEST_F(FailpointTest, HatpPropagatesHardEngineFaults) {
  const Graph g = WcGraph();
  const ProfitProblem problem = GoldenProblem(g);
  ASSERT_TRUE(failpoint::Arm("engine.serial_batch"));
  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  auto run = RunGoldenHatp(g, problem, hopt);
  EXPECT_TRUE(run.status().IsInternal()) << run.status().ToString();
}

TEST_F(FailpointTest, HatpAbsorbsInjectedAllocFailure) {
  const Graph g = WcGraph();
  const ProfitProblem problem = GoldenProblem(g);

  // One bad_alloc on the second counting pool: the decision in flight is
  // concluded on the rounds it already completed, the event is recorded,
  // and the run still finishes.
  failpoint::Spec spec;
  spec.action = failpoint::Action::kBadAlloc;
  spec.fire_at = 2;
  spec.count = 1;
  ASSERT_TRUE(failpoint::Arm("alloc.pool_reserve", spec));
  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  auto run = RunGoldenHatp(g, problem, hopt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().degradation_events.size(), 1u);
  EXPECT_EQ(run.value().degradation_events[0].reason,
            DegradationReason::kAllocFailure);
  EXPECT_EQ(run.value().budget_exhausted_decisions +
                run.value().budget_truncated_decisions,
            1u);
  // The weakened guarantee is reported, not hidden: the forced decision
  // stood on an earlier round's (looser) error pair.
  EXPECT_GE(run.value().effective_epsilon, hopt.relative_error_threshold);
}

TEST_F(FailpointTest, DeadlineBudgetedHatpTerminatesWithinTwiceBudget) {
  const Graph g = WcGraph();
  const ProfitProblem problem = GoldenProblem(g);
  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;

  // Baseline the unbudgeted run, then grant a quarter of that: the
  // deadline must trip mid-run, and the run must still return within 2x
  // the granted wall-clock (the ISSUE acceptance bound).
  const auto baseline_start = std::chrono::steady_clock::now();
  ASSERT_TRUE(RunGoldenHatp(g, problem, hopt).ok());
  const double baseline_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    baseline_start)
          .count();

  const double deadline = std::max(baseline_seconds / 4.0, 0.001);
  hopt.sampling.budget.deadline_seconds = deadline;
  const auto start = std::chrono::steady_clock::now();
  auto run = RunGoldenHatp(g, problem, hopt);
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_LE(elapsed, 2.0 * deadline)
      << "budget " << deadline << "s, ran " << elapsed << "s";

  // Telemetry names what was given up.
  ASSERT_FALSE(run.value().degradation_events.empty());
  EXPECT_EQ(run.value().degradation_events[0].reason,
            DegradationReason::kDeadline);
  EXPECT_GE(run.value().effective_epsilon, hopt.relative_error_threshold);
  EXPECT_EQ(run.value().steps.size(), problem.targets.size());
}

TEST_F(FailpointTest, PreCancelledRunDecidesBlindAndDeterministically) {
  const Graph g = WcGraph();
  const ProfitProblem problem = GoldenProblem(g);
  CancelToken cancel;
  cancel.Cancel();
  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  hopt.sampling.budget.cancel = &cancel;

  auto first = RunGoldenHatp(g, problem, hopt);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const AdaptiveRunResult& r = first.value();
  // Zero evidence: no sampling happened, nothing was selected, and the
  // vacuous guarantee is reported explicitly instead of implied.
  EXPECT_TRUE(r.seeds.empty());
  EXPECT_EQ(r.total_rr_sets, 0u);
  EXPECT_EQ(r.degradation_events.size(), problem.targets.size());
  for (const DegradationEvent& event : r.degradation_events) {
    EXPECT_EQ(event.reason, DegradationReason::kCancelled);
    EXPECT_EQ(event.rounds_completed, 0u);
  }
  EXPECT_DOUBLE_EQ(r.effective_epsilon, 1.0);
  EXPECT_EQ(r.achieved_theta, 0u);
  for (const AdaptiveStepRecord& step : r.steps) {
    EXPECT_EQ(step.decision, SeedDecision::kBudgetExhausted);
  }

  // Degraded runs are as deterministic as clean ones.
  auto second = RunGoldenHatp(g, problem, hopt);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().seeds, r.seeds);
  EXPECT_EQ(second.value().degradation_events.size(),
            r.degradation_events.size());

  // HNTP rides the same planner plumbing.
  Rng rng(1);
  auto hntp = RunHntp(problem, hopt, &rng);
  ASSERT_TRUE(hntp.ok()) << hntp.status().ToString();
  EXPECT_TRUE(hntp.value().seeds.empty());
  EXPECT_EQ(hntp.value().total_rr_sets, 0u);
  EXPECT_DOUBLE_EQ(hntp.value().effective_epsilon, 1.0);
  EXPECT_EQ(hntp.value().degradation_events.size(), problem.targets.size());
}

TEST_F(FailpointTest, PoolByteCapTruncatesGeneratePool) {
  const Graph g = WcGraph();
  SerialSamplingEngine engine(g);
  RunBudget budget;
  budget.rr_pool_byte_cap = 2048;
  BudgetGate gate(budget);
  ScopedEngineBudget scoped(&engine, &gate);
  ASSERT_TRUE(scoped.armed());

  Rng rng(77);
  ASSERT_TRUE(
      engine.TryGeneratePool(nullptr, g.num_nodes(), 100000, &rng).ok());
  // The cap stopped generation at a batch boundary: far fewer sets than
  // requested, but every stored set is whole.
  EXPECT_GT(engine.pool().num_sets(), 0u);
  EXPECT_LT(engine.pool().num_sets(), 100000u);
  EXPECT_EQ(gate.Exhausted(), BudgetStop::kPoolBytes);
}

// ---- Chaos mode: every registered site armed on one seeded pseudo-random
// schedule. Any outcome is acceptable except a crash or an unregistered
// error — and the same seed must reproduce the same outcome exactly.

TEST_F(FailpointTest, ChaosScheduleIsReproducibleAndContained) {
  const Graph g = WcGraph();
  const ProfitProblem problem = GoldenProblem(g);
  uint64_t chaos_seed = 20260808;
  if (const char* env = std::getenv("ATPM_CHAOS_SEED")) {
    chaos_seed = std::strtoull(env, nullptr, 10);
  }
  // Echoed so a CI failure names the schedule to replay.
  std::printf("[ chaos ] ATPM_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(chaos_seed));

  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  for (uint64_t trial = 0; trial < 3; ++trial) {
    const uint64_t seed = chaos_seed + trial;
    failpoint::DisarmAll();
    failpoint::ArmChaos(seed, 0.02);
    auto first = RunGoldenHatp(g, problem, hopt);
    if (!first.ok()) {
      // Injected faults may only surface through registered channels.
      EXPECT_TRUE(first.status().IsInternal() ||
                  first.status().IsIOError() ||
                  first.status().IsResourceExhausted())
          << "seed " << seed << ": " << first.status().ToString();
    }

    failpoint::DisarmAll();
    failpoint::ArmChaos(seed, 0.02);
    auto second = RunGoldenHatp(g, problem, hopt);
    ASSERT_EQ(first.ok(), second.ok()) << "seed " << seed;
    if (first.ok()) {
      EXPECT_EQ(first.value().seeds, second.value().seeds)
          << "seed " << seed;
      EXPECT_EQ(first.value().total_rr_sets, second.value().total_rr_sets)
          << "seed " << seed;
      EXPECT_EQ(first.value().degradation_events.size(),
                second.value().degradation_events.size())
          << "seed " << seed;
    } else {
      EXPECT_EQ(first.status().code(), second.status().code())
          << "seed " << seed;
    }
  }
  failpoint::DisarmAll();

  // Chaos armed, chaos disarmed: back to the golden stream.
  SerialSamplingEngine engine(g);
  Rng rng(77);
  ASSERT_TRUE(
      engine.TryGeneratePool(nullptr, g.num_nodes(), 2000, &rng).ok());
  EXPECT_EQ(PoolHash(engine.pool()), 11827176579932382309ull);
}

}  // namespace
}  // namespace atpm
