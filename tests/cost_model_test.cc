#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

double TotalCost(const std::vector<double>& costs,
                 const std::vector<NodeId>& targets) {
  double total = 0.0;
  for (NodeId t : targets) total += costs[t];
  return total;
}

TEST(CostSchemeNameTest, Names) {
  EXPECT_STREQ(CostSchemeName(CostScheme::kDegreeProportional), "degree");
  EXPECT_STREQ(CostSchemeName(CostScheme::kUniform), "uniform");
  EXPECT_STREQ(CostSchemeName(CostScheme::kRandom), "random");
}

class CalibratedCostTest : public ::testing::TestWithParam<CostScheme> {};

TEST_P(CalibratedCostTest, BudgetIsExactlyDistributed) {
  const Graph g = MakeStarGraph(20, 0.5);
  std::vector<NodeId> targets = {0, 3, 7, 11};
  Rng rng(1);
  Result<std::vector<double>> costs =
      BuildCalibratedCosts(g, targets, GetParam(), 123.5, &rng);
  ASSERT_TRUE(costs.ok()) << costs.status().ToString();
  EXPECT_NEAR(TotalCost(costs.value(), targets), 123.5, 1e-9);
  // Non-targets carry zero cost.
  EXPECT_DOUBLE_EQ(costs.value()[1], 0.0);
  EXPECT_DOUBLE_EQ(costs.value()[19], 0.0);
  // All target costs positive.
  for (NodeId t : targets) EXPECT_GT(costs.value()[t], 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CalibratedCostTest,
                         ::testing::Values(CostScheme::kDegreeProportional,
                                           CostScheme::kUniform,
                                           CostScheme::kRandom));

TEST(CalibratedCostTest, UniformGivesEqualShares) {
  const Graph g = MakePathGraph(10, 0.5);
  std::vector<NodeId> targets = {1, 4, 8};
  Rng rng(2);
  Result<std::vector<double>> costs =
      BuildCalibratedCosts(g, targets, CostScheme::kUniform, 30.0, &rng);
  ASSERT_TRUE(costs.ok());
  for (NodeId t : targets) EXPECT_NEAR(costs.value()[t], 10.0, 1e-9);
}

TEST(CalibratedCostTest, DegreeProportionalOrdersByOutDegree) {
  // Star hub (out-degree 19) must cost more than leaves (out-degree 0).
  const Graph g = MakeStarGraph(20, 0.5);
  std::vector<NodeId> targets = {0, 5, 6};
  Rng rng(3);
  Result<std::vector<double>> costs = BuildCalibratedCosts(
      g, targets, CostScheme::kDegreeProportional, 100.0, &rng);
  ASSERT_TRUE(costs.ok());
  EXPECT_GT(costs.value()[0], costs.value()[5]);
  EXPECT_NEAR(costs.value()[5], costs.value()[6], 1e-9);
  // Ratio follows (deg+1): hub 20 vs leaf 1.
  EXPECT_NEAR(costs.value()[0] / costs.value()[5], 20.0, 1e-6);
}

TEST(CalibratedCostTest, ZeroDegreeTargetsStillPayable) {
  // All targets have zero out-degree; the +1 smoothing must keep the
  // distribution valid.
  const Graph g = MakeStarGraph(10, 0.5);
  std::vector<NodeId> targets = {3, 4};
  Rng rng(4);
  Result<std::vector<double>> costs = BuildCalibratedCosts(
      g, targets, CostScheme::kDegreeProportional, 10.0, &rng);
  ASSERT_TRUE(costs.ok());
  EXPECT_NEAR(costs.value()[3], 5.0, 1e-9);
}

TEST(CalibratedCostTest, RandomSchemeIsDeterministicGivenSeed) {
  const Graph g = MakePathGraph(8, 0.5);
  std::vector<NodeId> targets = {0, 2, 4};
  Rng rng_a(7);
  Rng rng_b(7);
  auto a = BuildCalibratedCosts(g, targets, CostScheme::kRandom, 9.0, &rng_a);
  auto b = BuildCalibratedCosts(g, targets, CostScheme::kRandom, 9.0, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  for (NodeId t : targets) {
    EXPECT_DOUBLE_EQ(a.value()[t], b.value()[t]);
  }
}

TEST(CalibratedCostTest, RejectsEmptyTargets) {
  const Graph g = MakePathGraph(5, 0.5);
  Rng rng(5);
  EXPECT_FALSE(
      BuildCalibratedCosts(g, {}, CostScheme::kUniform, 10.0, &rng).ok());
}

TEST(CalibratedCostTest, RejectsNonPositiveBudget) {
  const Graph g = MakePathGraph(5, 0.5);
  std::vector<NodeId> targets = {0};
  Rng rng(6);
  EXPECT_FALSE(
      BuildCalibratedCosts(g, targets, CostScheme::kUniform, 0.0, &rng).ok());
  EXPECT_FALSE(
      BuildCalibratedCosts(g, targets, CostScheme::kUniform, -5.0, &rng)
          .ok());
}

TEST(PredefinedCostTest, TotalIsLambdaTimesN) {
  const Graph g = MakeCycleGraph(50, 0.5);
  Rng rng(8);
  Result<std::vector<double>> costs =
      BuildPredefinedCosts(g, CostScheme::kUniform, 3.0, &rng);
  ASSERT_TRUE(costs.ok());
  const double total =
      std::accumulate(costs.value().begin(), costs.value().end(), 0.0);
  EXPECT_NEAR(total, 150.0, 1e-6);
  // Uniform: every node costs lambda.
  for (double c : costs.value()) EXPECT_NEAR(c, 3.0, 1e-9);
}

TEST(PredefinedCostTest, DegreeSchemeChargesHubsMore) {
  const Graph g = MakeStarGraph(10, 0.5);
  Rng rng(9);
  Result<std::vector<double>> costs =
      BuildPredefinedCosts(g, CostScheme::kDegreeProportional, 2.0, &rng);
  ASSERT_TRUE(costs.ok());
  for (NodeId v = 1; v < 10; ++v) {
    EXPECT_GT(costs.value()[0], costs.value()[v]);
  }
}

TEST(PredefinedCostTest, RejectsBadInputs) {
  const Graph g = MakePathGraph(5, 0.5);
  Rng rng(10);
  EXPECT_FALSE(BuildPredefinedCosts(g, CostScheme::kUniform, 0.0, &rng).ok());
  const Graph empty;
  EXPECT_FALSE(
      BuildPredefinedCosts(empty, CostScheme::kUniform, 1.0, &rng).ok());
}

}  // namespace
}  // namespace atpm
