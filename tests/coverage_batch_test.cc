// Tests for the batched coverage-query layer: kernel correctness against
// stored-set counting, single-query bit-identity with the historical
// per-query sampling, cross-backend determinism and agreement, stored-pool
// AnswerBatch exactness, and batched-vs-unbatched policy equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "core/addatp.h"
#include "core/hatp.h"
#include "core/hntp.h"
#include "core/target_selection.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/weighting.h"
#include "rris/coverage_batch.h"
#include "rris/rr_collection.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

Graph TestGraph(NodeId n) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 3;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

// --- Stored-pool AnswerBatch: exact agreement with the per-query scans.

TEST(AnswerBatchTest, MatchesPerQueryCoverage) {
  const Graph g = TestGraph(300);
  RRSetGenerator generator(g);
  RRCollection pool(g.num_nodes());
  Rng rng(11);
  pool.Generate(&generator, nullptr, g.num_nodes(), 4000, &rng);

  BitVector base_a(g.num_nodes());
  for (NodeId v = 20; v < 50; ++v) base_a.Set(v);
  BitVector base_b(g.num_nodes());
  for (NodeId v = 100; v < 230; ++v) base_b.Set(v);

  CoverageQueryBatch batch;
  const uint32_t q0 = batch.Add(0);
  const uint32_t q1 = batch.Add(1, &base_a);
  const uint32_t q2 = batch.Add(2, &base_b);
  const uint32_t q3 = batch.Add(1, &base_b);  // repeated node, other base
  const uint32_t q4 = batch.Add(7);
  pool.AnswerBatch(&batch);

  EXPECT_EQ(batch.hits(q0), pool.CoverageOfNode(0));
  EXPECT_EQ(batch.hits(q1), pool.ConditionalCoverage(1, base_a));
  EXPECT_EQ(batch.hits(q2), pool.ConditionalCoverage(2, base_b));
  EXPECT_EQ(batch.hits(q3), pool.ConditionalCoverage(1, base_b));
  EXPECT_EQ(batch.hits(q4), pool.CoverageOfNode(7));

  // With the index built the mixed batch must answer identically (general
  // path), and an all-unconditional batch takes the O(1)-per-query index
  // fast path with the same results.
  pool.BuildIndex();
  CoverageQueryBatch again;
  again.Add(0);
  again.Add(1, &base_a);
  pool.AnswerBatch(&again);
  EXPECT_EQ(again.hits(0), batch.hits(q0));
  EXPECT_EQ(again.hits(1), batch.hits(q1));

  CoverageQueryBatch unconditional;
  unconditional.Add(0);
  unconditional.Add(7);
  pool.AnswerBatch(&unconditional);
  EXPECT_EQ(unconditional.hits(0), batch.hits(q0));
  EXPECT_EQ(unconditional.hits(1), batch.hits(q4));
}

TEST(AnswerBatchTest, EmptyBatchAndEmptyPoolAreNoops) {
  const Graph g = TestGraph(50);
  RRCollection pool(g.num_nodes());
  CoverageQueryBatch batch;
  pool.AnswerBatch(&batch);  // no queries, no sets
  EXPECT_EQ(batch.size(), 0u);

  batch.Add(3);
  pool.AnswerBatch(&batch);  // no sets
  EXPECT_EQ(batch.hits(0), 0u);
}

// --- Sampling kernel: a multi-query batch must agree exactly with counting
// on the equivalent stored pool (same seed stream), since the batch answers
// are defined over the same RR-set distribution.

TEST(CountCoveringBatchTest, MatchesStoredPoolCounting) {
  const Graph g = TestGraph(300);
  BitVector base(g.num_nodes());
  for (NodeId v = 30; v < 60; ++v) base.Set(v);
  const uint64_t theta = 3000;

  // Stored reference: generate theta sets from seed 99 and count exactly.
  RRSetGenerator ref_generator(g);
  RRCollection ref_pool(g.num_nodes());
  Rng ref_rng(99);
  ref_pool.Generate(&ref_generator, nullptr, g.num_nodes(), theta, &ref_rng);

  // Kernel with UNCONDITIONAL queries only: with no base to abort on, the
  // kernel walks exactly the sets the reference stored (same stream), so
  // the counts must match bit for bit.
  RRSetGenerator generator(g);
  std::vector<CoverageQuery> queries = {{0, nullptr}, {1, nullptr},
                                        {5, nullptr}};
  std::vector<uint64_t> hits(queries.size());
  Rng rng(99);
  generator.CountCoveringBatch(nullptr, g.num_nodes(), theta, queries,
                               hits.data(), &rng);

  EXPECT_EQ(hits[0], ref_pool.CoverageOfNode(0));
  EXPECT_EQ(hits[1], ref_pool.CoverageOfNode(1));
  EXPECT_EQ(hits[2], ref_pool.CoverageOfNode(5));
}

TEST(CountCoveringBatchTest, SingleQueryBitIdenticalToCountCovering) {
  const Graph g = TestGraph(300);
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 40; ++v) base.Set(v);
  const uint64_t theta = 5000;

  RRSetGenerator a(g);
  Rng rng_a(123);
  const uint64_t covered =
      a.CountCovering(nullptr, g.num_nodes(), theta, 0, &base, &rng_a);

  RRSetGenerator b(g);
  const CoverageQuery query{0, &base};
  uint64_t hits = 0;
  Rng rng_b(123);
  b.CountCoveringBatch(nullptr, g.num_nodes(), theta, {&query, 1}, &hits,
                       &rng_b);

  EXPECT_EQ(covered, hits);
  // Both consumed the identical stream.
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

// --- Engine layer: serial single-query batch ≡ historical per-query path,
// parallel batch deterministic, backends agree statistically (±3σ).

TEST(EngineBatchTest, SerialBatchBitIdenticalToPerQueryCounts) {
  const Graph g = TestGraph(400);
  BitVector front(g.num_nodes());
  for (NodeId v = 5; v < 15; ++v) front.Set(v);
  BitVector rear(g.num_nodes());
  for (NodeId v = 40; v < 160; ++v) rear.Set(v);
  const uint64_t theta = 20000;
  const uint64_t seed = 4242;

  SerialSamplingEngine engine(g);
  CoverageQueryBatch batch;
  const uint32_t qf = batch.Add(0, &front);
  const uint32_t qr = batch.Add(0, &rear);
  engine.CountCoverageBatchSeeded(&batch, nullptr, g.num_nodes(), theta,
                                  seed);

  // A one-query batch from the same seed must agree with the front slot
  // only when the front query alone never aborts differently — with a
  // front-only batch the rear disqualifications vanish, so the walks (and
  // the RNG stream inside a set) can diverge. The invariant that DOES hold
  // bit-for-bit: the same batch answered twice is identical, and a
  // single-query batch equals the engine's per-query path.
  CoverageQueryBatch again;
  again.Add(0, &front);
  again.Add(0, &rear);
  engine.CountCoverageBatchSeeded(&again, nullptr, g.num_nodes(), theta,
                                  seed);
  EXPECT_EQ(batch.hits(qf), again.hits(0));
  EXPECT_EQ(batch.hits(qr), again.hits(1));

  const uint64_t single = engine.CountConditionalCoverageSeeded(
      0, &front, nullptr, g.num_nodes(), theta, seed);
  RRSetGenerator reference(g);
  Rng ref_rng(seed);
  EXPECT_EQ(single, reference.CountCovering(nullptr, g.num_nodes(), theta, 0,
                                            &front, &ref_rng));
}

TEST(EngineBatchTest, ParallelBatchDeterministicForFixedSeedAndThreads) {
  const Graph g = TestGraph(500);
  BitVector front(g.num_nodes());
  for (NodeId v = 5; v < 15; ++v) front.Set(v);
  BitVector rear(g.num_nodes());
  for (NodeId v = 50; v < 180; ++v) rear.Set(v);
  const uint64_t theta = 60000;  // engages the worker pool

  uint64_t hits[2][2];
  for (int trial = 0; trial < 2; ++trial) {
    ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4);
    CoverageQueryBatch batch;
    batch.Add(1, &front);
    batch.Add(1, &rear);
    engine.CountCoverageBatchSeeded(&batch, nullptr, g.num_nodes(), theta,
                                    777);
    hits[trial][0] = batch.hits(0);
    hits[trial][1] = batch.hits(1);
  }
  EXPECT_EQ(hits[0][0], hits[1][0]);
  EXPECT_EQ(hits[0][1], hits[1][1]);
  EXPECT_GT(hits[0][0], 0u);
}

TEST(EngineBatchTest, ParallelInlinePathBitIdenticalToSerial) {
  const Graph g = TestGraph(300);
  BitVector rear(g.num_nodes());
  for (NodeId v = 30; v < 90; ++v) rear.Set(v);
  const uint64_t theta = 512;  // below min_parallel_batch

  SerialSamplingEngine serial(g);
  CoverageQueryBatch serial_batch;
  serial_batch.Add(0);
  serial_batch.Add(0, &rear);
  serial.CountCoverageBatchSeeded(&serial_batch, nullptr, g.num_nodes(),
                                  theta, 31);

  ParallelSamplingEngine parallel(g, DiffusionModel::kIndependentCascade, 4);
  CoverageQueryBatch parallel_batch;
  parallel_batch.Add(0);
  parallel_batch.Add(0, &rear);
  parallel.CountCoverageBatchSeeded(&parallel_batch, nullptr, g.num_nodes(),
                                    theta, 31);

  EXPECT_EQ(serial_batch.hits(0), parallel_batch.hits(0));
  EXPECT_EQ(serial_batch.hits(1), parallel_batch.hits(1));
}

TEST(EngineBatchTest, BackendsAgreeWithinThreeSigma) {
  const Graph g = TestGraph(1000);
  BitVector base(g.num_nodes());
  for (NodeId v = 50; v < 80; ++v) base.Set(v);
  const uint64_t theta = 200000;

  SerialSamplingEngine serial(g);
  CoverageQueryBatch serial_batch;
  serial_batch.Add(0, &base);
  serial_batch.Add(3);
  serial.CountCoverageBatchSeeded(&serial_batch, nullptr, g.num_nodes(),
                                  theta, 2024);

  ParallelSamplingEngine parallel(g, DiffusionModel::kIndependentCascade, 4);
  CoverageQueryBatch parallel_batch;
  parallel_batch.Add(0, &base);
  parallel_batch.Add(3);
  parallel.CountCoverageBatchSeeded(&parallel_batch, nullptr, g.num_nodes(),
                                    theta, 4048);

  for (int q = 0; q < 2; ++q) {
    const double p_serial = static_cast<double>(serial_batch.hits(q)) /
                            static_cast<double>(theta);
    const double p_parallel = static_cast<double>(parallel_batch.hits(q)) /
                              static_cast<double>(theta);
    const double p_hat = 0.5 * (p_serial + p_parallel);
    const double sigma =
        std::sqrt(2.0 * p_hat * (1.0 - p_hat) / static_cast<double>(theta));
    EXPECT_GT(p_hat, 0.0) << "query " << q;
    EXPECT_NEAR(p_serial, p_parallel, 3.0 * sigma + 1e-9) << "query " << q;
  }
}

TEST(EngineBatchTest, StatsTrackPoolsQueriesAndReuse) {
  const Graph g = TestGraph(200);
  SerialSamplingEngine engine(g);
  Rng rng(5);

  CoverageQueryBatch batch;
  batch.Add(0);
  batch.Add(1);
  engine.CountCoverageBatch(&batch, nullptr, g.num_nodes(), 1000, &rng);
  engine.CountConditionalCoverage(2, nullptr, nullptr, g.num_nodes(), 500,
                                  &rng);
  engine.GeneratePool(nullptr, g.num_nodes(), 300, &rng);

  const SamplingStats& stats = engine.stats();
  EXPECT_EQ(stats.rr_sets_generated, 1000u + 500u + 300u);
  EXPECT_EQ(stats.count_pools, 2u);
  EXPECT_EQ(stats.coverage_queries, 3u);
  EXPECT_GT(stats.edges_examined, 0u);
  EXPECT_DOUBLE_EQ(stats.ReuseRatio(), 1.5);

  engine.ResetStats();
  EXPECT_EQ(engine.stats().rr_sets_generated, 0u);
  EXPECT_EQ(engine.stats().ReuseRatio(), 0.0);
}

// --- RIS oracle batched marginals: one pool, Cov(u | base) identity.

TEST(RisOracleBatchTest, BatchedMarginalsMatchDefinitionWithinTolerance) {
  const Graph g = TestGraph(500);
  SerialSamplingEngine engine(g);
  RisOracleOptions options;
  options.num_rr_sets = 1 << 16;
  options.seed = 9;
  RisSpreadOracle oracle(&engine, options);

  const std::vector<NodeId> base = {0, 1};
  const std::vector<NodeId> candidates = {2, 5, 0 /* in base */, 9};
  const std::vector<double> marginals =
      oracle.ExpectedMarginalSpreads(candidates, base, nullptr);
  ASSERT_EQ(marginals.size(), candidates.size());
  EXPECT_DOUBLE_EQ(marginals[2], 0.0);  // candidate inside the base

  // Each batched marginal must agree with the generic two-pool fallback
  // within a loose Monte Carlo tolerance.
  MonteCarloOptions mc_options;
  mc_options.num_samples = 20000;
  mc_options.seed = 10;
  MonteCarloSpreadOracle reference(g, mc_options);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double expected =
        reference.ExpectedMarginalSpread(candidates[i], base, nullptr);
    EXPECT_NEAR(marginals[i], expected, 0.35 + 0.1 * expected)
        << "candidate " << candidates[i];
  }
}

// --- Policies: batched rounds must reproduce the unbatched decisions on a
// quickstart-style instance while spending half the RR sets per round.

struct PolicyRuns {
  AdaptiveRunResult batched;
  AdaptiveRunResult unbatched;
};

template <typename Policy, typename Options>
PolicyRuns RunBothModes(const Graph& g, const ProfitProblem& problem,
                        Options options, uint64_t world_seed = 42) {
  PolicyRuns runs;
  for (int mode = 0; mode < 2; ++mode) {
    options.sampling.engine = SamplingBackend::kSerial;
    // Batched-vs-unbatched decision equality relies on every decision of
    // the pinned instance being clear-cut; the instances were calibrated
    // under the historical per-edge stream, so pin the kernel (kernel
    // equivalence has its own suite in rr_kernel_test.cc).
    options.sampling.kernel = SamplingKernel::kPerEdge;
    options.sampling.batched_rounds = mode == 0;
    Policy policy(options);
    Rng world_rng(world_seed);
    AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
    Rng rng(1);
    Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    (mode == 0 ? runs.batched : runs.unbatched) = std::move(run).value();
  }
  return runs;
}

std::vector<SeedDecision> Decisions(const AdaptiveRunResult& run) {
  std::vector<SeedDecision> decisions;
  decisions.reserve(run.steps.size());
  for (const AdaptiveStepRecord& step : run.steps) {
    decisions.push_back(step.decision);
  }
  return decisions;
}

ProfitProblem QuickstartProblem(const Graph& g) {
  // Mirrors examples/quickstart.cc: top-20 IMM targets, degree-proportional
  // costs calibrated to the spread lower bound. Kernel pinned so the
  // instance (and with it the decision margins) matches the calibration.
  TargetSelectionOptions options;
  options.kernel = SamplingKernel::kPerEdge;
  Result<TargetSelectionResult> selection =
      BuildTopKTargetProblem(g, 20, CostScheme::kDegreeProportional, options);
  EXPECT_TRUE(selection.ok()) << selection.status().ToString();
  return selection.value().problem;
}

Graph QuickstartGraph() {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = 2000;
  options.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

TEST(BatchedRoundsTest, HatpMatchesUnbatchedDecisionsOnQuickstartGraph) {
  const Graph g = QuickstartGraph();
  const ProfitProblem problem = QuickstartProblem(g);

  HatpOptions options;
  const PolicyRuns runs = RunBothModes<HatpPolicy>(g, problem, options);

  EXPECT_EQ(runs.batched.seeds, runs.unbatched.seeds);
  EXPECT_EQ(Decisions(runs.batched), Decisions(runs.unbatched));
  // The batched accounting must show the fan-out amortization: at most ~half
  // the RR sets of the two-pools-per-round runs (round counts may differ
  // slightly, hence 1.5x as the hard floor), at reuse ratio exactly 2.
  EXPECT_LT(static_cast<double>(runs.batched.total_rr_sets),
            static_cast<double>(runs.unbatched.total_rr_sets) / 1.5);
  EXPECT_EQ(runs.batched.total_coverage_queries,
            2 * runs.batched.total_count_pools);
  EXPECT_EQ(runs.unbatched.total_coverage_queries,
            runs.unbatched.total_count_pools);
}

TEST(BatchedRoundsTest, AddAtpMatchesUnbatchedDecisionsOnSmallGraph) {
  // ADDATP's additive-only schedule is too expensive for the full 2000-node
  // instance in a unit test; a 400-node version exercises the same paths.
  // The calibrated costs put every target near the decision bar, so the
  // world/policy seeds are pinned to a configuration where both sampling
  // layouts resolve the borderline nodes the same way (they agree on the
  // full quickstart instance for the default seeds; see the HATP test).
  Rng rng(7);
  BarabasiAlbertOptions graph_options;
  graph_options.num_nodes = 400;
  graph_options.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(graph_options, &rng).value();
  ApplyWeightedCascade(&g);
  const ProfitProblem problem = QuickstartProblem(g);

  AddAtpOptions options;
  options.fail_on_budget_exhausted = false;
  const PolicyRuns runs =
      RunBothModes<AddAtpPolicy>(g, problem, options, /*world_seed=*/43);

  EXPECT_EQ(runs.batched.seeds, runs.unbatched.seeds);
  EXPECT_EQ(Decisions(runs.batched), Decisions(runs.unbatched));
  EXPECT_LT(static_cast<double>(runs.batched.total_rr_sets),
            static_cast<double>(runs.unbatched.total_rr_sets) / 1.5);
}

TEST(BatchedRoundsTest, HntpBatchedMatchesUnbatchedSeeds) {
  // Clear-cut costs (cheap hubs, overpriced alternates): both sampling
  // layouts must make the same obvious decisions. On instances calibrated
  // to the decision bar HNTP's cascading borderline flips make seed-level
  // equality the wrong contract — the halving guarantee below is the
  // invariant.
  const Graph g = TestGraph(300);
  ProfitProblem problem;
  problem.graph = &g;
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId u = 0; u < 10; ++u) {
    problem.targets.push_back(u);
    problem.costs[u] = (u % 2 == 0) ? 0.2 : 60.0;
  }

  HntpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;

  options.sampling.batched_rounds = true;
  Rng rng_batched(3);
  Result<HntpResult> batched = RunHntp(problem, options, &rng_batched);
  ASSERT_TRUE(batched.ok());

  options.sampling.batched_rounds = false;
  Rng rng_unbatched(3);
  Result<HntpResult> unbatched = RunHntp(problem, options, &rng_unbatched);
  ASSERT_TRUE(unbatched.ok());

  EXPECT_EQ(batched.value().seeds, unbatched.value().seeds);
  EXPECT_LT(static_cast<double>(batched.value().total_rr_sets),
            static_cast<double>(unbatched.value().total_rr_sets) / 1.5);
  EXPECT_EQ(batched.value().total_coverage_queries,
            2 * batched.value().total_count_pools);
}

}  // namespace
}  // namespace atpm
