#include "core/nonadaptive_greedy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          std::vector<double> target_costs) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (size_t i = 0; i < problem.targets.size(); ++i) {
    problem.costs[problem.targets[i]] = target_costs[i];
  }
  return problem;
}

TEST(NsgTest, PicksProfitableHubFirst) {
  const Graph g = MakeStarGraph(50, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 3, 4}, {5.0, 0.5, 0.5});
  Rng rng(1);
  Result<NonadaptiveResult> result = RunNsg(problem, 20000, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().seeds.empty());
  EXPECT_EQ(result.value().seeds[0], 0u);
  EXPECT_EQ(result.value().num_rr_sets, 20000u);
}

TEST(NsgTest, StopsWhenMarginalProfitNonPositive) {
  // Every node has spread 1; costs exceed 1, so nothing is selected.
  const Graph g = MakeCompleteGraph(20, 0.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2}, {2.0, 2.0, 2.0});
  Rng rng(2);
  Result<NonadaptiveResult> result = RunNsg(problem, 5000, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().seeds.empty());
  EXPECT_DOUBLE_EQ(result.value().estimated_profit, 0.0);
}

TEST(NsgTest, RespectsTargetRestriction) {
  // The hub is not a target; NSG must pick among leaves only.
  const Graph g = MakeStarGraph(50, 1.0);
  ProfitProblem problem = MakeProblem(g, {3, 4}, {0.5, 0.5});
  Rng rng(3);
  Result<NonadaptiveResult> result = RunNsg(problem, 20000, &rng);
  ASSERT_TRUE(result.ok());
  for (NodeId s : result.value().seeds) {
    EXPECT_TRUE(s == 3 || s == 4);
  }
}

TEST(NsgTest, AccountsForOverlapBetweenSeeds) {
  // Two hubs with identical reach: after the first, the second's marginal
  // is tiny and should not beat its cost.
  GraphBuilder builder;
  for (NodeId v = 2; v < 30; ++v) {
    builder.AddEdge(0, v, 1.0);
    builder.AddEdge(1, v, 1.0);
  }
  Graph g = builder.Build().value();
  ProfitProblem problem = MakeProblem(g, {0, 1}, {5.0, 5.0});
  Rng rng(4);
  Result<NonadaptiveResult> result = RunNsg(problem, 20000, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().seeds.size(), 1u);
}

TEST(NsgTest, RejectsZeroSampleSize) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {0.1});
  Rng rng(5);
  EXPECT_FALSE(RunNsg(problem, 0, &rng).ok());
}

TEST(NsgTest, EstimatedProfitConsistentWithSelection) {
  const Graph g = MakeStarGraph(40, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 2}, {3.0, 0.2});
  Rng rng(6);
  Result<NonadaptiveResult> result = RunNsg(problem, 50000, &rng);
  ASSERT_TRUE(result.ok());
  // E[I({0,2})] ~ 1 + 39*0.5 + ~1 = ~21.5; costs 3.2.
  EXPECT_NEAR(result.value().estimated_profit, 21.5 - 3.2, 1.5);
}

TEST(NdgTest, KeepsProfitableDropsOverpriced) {
  const Graph g = MakeStarGraph(50, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 3}, {5.0, 30.0});
  Rng rng(7);
  Result<NonadaptiveResult> result = RunNdg(problem, 20000, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().seeds.size(), 1u);
  EXPECT_EQ(result.value().seeds[0], 0u);
}

TEST(NdgTest, ExaminesTargetsInProblemOrder) {
  // Both nodes profitable and independent: both kept, in order.
  const Graph g = MakeCompleteGraph(10, 0.0);
  ProfitProblem problem = MakeProblem(g, {4, 2}, {0.1, 0.1});
  Rng rng(8);
  Result<NonadaptiveResult> result = RunNdg(problem, 5000, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().seeds.size(), 2u);
  EXPECT_EQ(result.value().seeds[0], 4u);
  EXPECT_EQ(result.value().seeds[1], 2u);
}

TEST(NdgTest, RearComparisonDropsRedundantTwin) {
  // Twin hubs: double greedy keeps the first, drops the second (its
  // front marginal collapses once the first is in S).
  GraphBuilder builder;
  for (NodeId v = 2; v < 30; ++v) {
    builder.AddEdge(0, v, 1.0);
    builder.AddEdge(1, v, 1.0);
  }
  Graph g = builder.Build().value();
  ProfitProblem problem = MakeProblem(g, {0, 1}, {5.0, 5.0});
  Rng rng(9);
  Result<NonadaptiveResult> result = RunNdg(problem, 20000, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().seeds.size(), 1u);
  EXPECT_EQ(result.value().seeds[0], 0u);
}

TEST(NdgTest, DeterministicGivenSeed) {
  const Graph g = MakeStarGraph(30, 0.4);
  ProfitProblem problem = MakeProblem(g, {0, 5, 9}, {3.0, 0.5, 0.5});
  Rng rng_a(10);
  Rng rng_b(10);
  Result<NonadaptiveResult> a = RunNdg(problem, 10000, &rng_a);
  Result<NonadaptiveResult> b = RunNdg(problem, 10000, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seeds, b.value().seeds);
}

TEST(NsgNdgTest, MoreSamplesDoNotChangeEasyDecisions) {
  // Fig. 9's finding: once the pool is large enough, profit stabilizes.
  const Graph g = MakeStarGraph(60, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 2, 3}, {10.0, 0.2, 0.2});
  Rng rng_small(11);
  Rng rng_large(11);
  Result<NonadaptiveResult> small = RunNsg(problem, 20000, &rng_small);
  Result<NonadaptiveResult> large = RunNsg(problem, 160000, &rng_large);
  ASSERT_TRUE(small.ok() && large.ok());
  std::vector<NodeId> s = small.value().seeds;
  std::vector<NodeId> l = large.value().seeds;
  std::sort(s.begin(), s.end());
  std::sort(l.begin(), l.end());
  EXPECT_EQ(s, l);
}

TEST(NsgNdgTest, ValidateProblemFailures) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem bad = MakeProblem(g, {0, 0}, {1.0, 1.0});
  Rng rng(12);
  EXPECT_FALSE(RunNsg(bad, 100, &rng).ok());
  EXPECT_FALSE(RunNdg(bad, 100, &rng).ok());
}

}  // namespace
}  // namespace atpm
