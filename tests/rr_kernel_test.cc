// Tests for the weight-class-aware geometric-jump RR-generation kernel:
// weight classification, the geometric-scan primitive (chi-square), exact
// per-edge equivalence on degenerate probabilities, ±3σ statistical
// agreement across weightings x models x backends, kPerEdge bit-compat
// against golden values recorded from the pre-kernel tree, the depleted-
// graph alive-root cache, and the rng_draws accounting behind the
// draws-per-edge reduction.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "core/hatp.h"
#include "core/target_selection.h"
#include "diffusion/realization.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/geometric_scan.h"
#include "graph/weighting.h"
#include "rris/rr_set.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

enum class Weighting { kWeightedCascade, kTrivalency, kUniformRandom };

Graph TestGraph(NodeId n, Weighting weighting,
                uint32_t edges_per_node = 3) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = edges_per_node;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  Rng wrng(99);
  switch (weighting) {
    case Weighting::kWeightedCascade:
      ApplyWeightedCascade(&g);
      break;
    case Weighting::kTrivalency:
      ApplyTrivalency(&g, &wrng);
      break;
    case Weighting::kUniformRandom:
      ApplyUniformRandomProbability(&g, 0.01, 0.5, &wrng);
      break;
  }
  return g;
}

// ---- Weight classification.

TEST(WeightClassTest, WeightedCascadeIsUniformEverywhere) {
  const Graph g = TestGraph(300, Weighting::kWeightedCascade);
  const WeightClassProfile profile = g.InWeightClassProfile();
  EXPECT_EQ(profile.few_distinct_nodes, 0u);
  EXPECT_EQ(profile.general_nodes, 0u);
  EXPECT_GT(profile.uniform_nodes, 0u);
  // Every node is a single uniform segment, but jumpable_edges counts only
  // what actually avoids per-edge draws: the gate keeps tiny
  // high-probability vectors (indeg 2, p = 0.5) on the linear scan.
  EXPECT_GT(profile.JumpableEdgeFraction(), 0.7);
  EXPECT_LE(profile.jumpable_edges, g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) {
      EXPECT_EQ(g.InWeightClass(v), NodeWeightClass::kEmpty);
      continue;
    }
    ASSERT_EQ(g.InWeightClass(v), NodeWeightClass::kUniform);
    const auto segs = g.InProbSegments(v);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].length, g.InDegree(v));
    EXPECT_FLOAT_EQ(segs[0].prob, 1.0f / g.InDegree(v));
    // WC mass is 1 per node: the LT pick must take the O(1) closed form.
    EXPECT_EQ(g.LtInPlan(v), LtPickPlan::kUniform);
  }
}

TEST(WeightClassTest, TrivalencyIsMostlyJumpable) {
  const Graph g = TestGraph(300, Weighting::kTrivalency);
  const WeightClassProfile profile = g.InWeightClassProfile();
  // Three possible values: multi-value nodes group into segments. Only
  // low-degree nodes whose probs happen to be pairwise distinct (no runs
  // at all) demote to the general per-edge path.
  EXPECT_GT(profile.few_distinct_nodes, 0u);
  EXPECT_GT(profile.JumpableEdgeFraction(), 0.75);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InWeightClass(v) != NodeWeightClass::kFewDistinct) continue;
    // Segments partition the in-edges, descending by probability, and the
    // jump view matches the original multiset of (neighbor, prob) pairs.
    const auto segs = g.InProbSegments(v);
    const auto arcs = g.JumpInArcs(v);
    const auto slots = g.JumpInSlots(v);
    ASSERT_EQ(arcs.size(), g.InDegree(v));
    ASSERT_EQ(slots.size(), g.InDegree(v));
    uint32_t total = 0;
    uint32_t base = 0;
    float prev = 2.0f;
    for (const ProbSegment& seg : segs) {
      EXPECT_LT(seg.prob, prev);
      prev = seg.prob;
      for (uint32_t j = 0; j < seg.length; ++j) {
        EXPECT_EQ(arcs[base + j].prob, seg.prob);
        EXPECT_EQ(g.InProbs(v)[slots[base + j]], seg.prob);
        EXPECT_EQ(g.InNeighbors(v)[slots[base + j]], arcs[base + j].src);
      }
      base += seg.length;
      total += seg.length;
    }
    EXPECT_EQ(total, g.InDegree(v));
  }
}

TEST(WeightClassTest, UniformRandomWeightsFallBackToGeneral) {
  const Graph g = TestGraph(400, Weighting::kUniformRandom);
  const WeightClassProfile profile = g.InWeightClassProfile();
  // Distinct float per edge: every node with indeg >= 2 has no same-p runs
  // to jump over, so the whole graph takes the general per-edge fallback
  // (all-distinct demotion below the cap, census overflow above it) and
  // materializes no jump view.
  EXPECT_GT(profile.general_nodes, 0u);
  EXPECT_LT(profile.JumpableEdgeFraction(), 0.5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InWeightClass(v) != NodeWeightClass::kGeneral) continue;
    EXPECT_TRUE(g.JumpInArcs(v).empty());
    EXPECT_TRUE(g.InProbSegments(v).empty());
  }
}

TEST(WeightClassTest, LtPlansMatchProbabilityMass) {
  const Graph g = TestGraph(300, Weighting::kTrivalency);
  uint32_t alias_nodes = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double mass = 0.0;
    for (float p : g.InProbs(v)) mass += p;
    switch (g.LtInPlan(v)) {
      case LtPickPlan::kNone:
        EXPECT_EQ(g.InDegree(v), 0u);
        break;
      case LtPickPlan::kUniform:
        EXPECT_EQ(g.InWeightClass(v), NodeWeightClass::kUniform);
        EXPECT_LE(mass, 1.0 + 1e-6);
        break;
      case LtPickPlan::kAlias:
        ++alias_nodes;
        EXPECT_LE(mass, 1.0 + 1e-6);
        EXPECT_GE(g.InDegree(v), 8u);
        EXPECT_EQ(g.LtAliasSlots(v).size(), g.InDegree(v) + 1u);
        break;
      case LtPickPlan::kPrefix:
        // Mass-truncating nodes keep the scan for correctness; short
        // non-uniform lists keep it because it is cheaper than a table.
        EXPECT_TRUE(mass > 1.0 || g.InDegree(v) < 8u);
        break;
    }
  }
  EXPECT_GT(alias_nodes, 0u);
}

TEST(WeightClassTest, ProfileExposedThroughSpreadOracles) {
  const Graph g = TestGraph(200, Weighting::kWeightedCascade);
  SerialSamplingEngine engine(g);
  RisSpreadOracle oracle(&engine);
  const WeightClassProfile profile = oracle.InWeightClassProfile();
  EXPECT_EQ(profile.total_edges, g.num_edges());
  EXPECT_GT(profile.JumpableEdgeFraction(), 0.7);
  EXPECT_EQ(engine.kernel(), SamplingKernel::kGeometricJump);
}

// ---- The geometric-scan primitive.

// A jump segment as RebuildInWeightIndex would emit it: log factor plus
// the any-success probability of the (here single-segment) run suffix.
ProbSegment MakeJumpSegment(uint32_t length, float p) {
  const double log_q = std::log1p(-static_cast<double>(p));
  return ProbSegment{length, p, log_q, -std::expm1(length * log_q)};
}

TEST(GeometricScanTest, PerIndexHitRatesPassChiSquare) {
  const uint32_t length = 32;
  const float p = 0.1f;
  const ProbSegment seg = MakeJumpSegment(length, p);
  Rng rng(2026);
  const int trials = 100000;
  std::vector<uint64_t> hits(length, 0);
  uint64_t draws = 0;
  for (int t = 0; t < trials; ++t) {
    GeometricSegmentScan({&seg, 1}, &rng, &draws, [&](uint32_t j) {
      ++hits[j];
      return true;
    });
  }
  // Each index is an independent Bernoulli(p) per trial: standardized
  // squared deviations sum to ~chi-square(32). 99.9% quantile ~= 62.5.
  const double expected = trials * static_cast<double>(p);
  const double variance = expected * (1.0 - static_cast<double>(p));
  double chi2 = 0.0;
  for (uint64_t h : hits) {
    const double d = static_cast<double>(h) - expected;
    chi2 += d * d / variance;
  }
  EXPECT_LT(chi2, 62.5) << "chi2 = " << chi2;
  // Draw economy: ~1 draw per success + 1 terminal per scan, against 32
  // Bernoullis per scan for the per-edge loop — >= 5x here.
  EXPECT_LT(static_cast<double>(draws),
            trials * (length * static_cast<double>(p) * 1.2 + 1.2));
}

TEST(GeometricScanTest, CrossSegmentRunsShareOneLedgerWalk) {
  // Three heterogeneous jump segments in one run: per-index hit rates must
  // match each segment's probability, with ~one draw per success + one
  // terminal draw for the WHOLE run (not one per segment). Suffix
  // any-success probabilities chained as the index builder would.
  ProbSegment segs[3] = {MakeJumpSegment(8, 0.1f), MakeJumpSegment(8, 0.01f),
                         MakeJumpSegment(8, 0.001f)};
  double suffix_ln = 0.0;
  for (int i = 3; i-- > 0;) {
    suffix_ln += 8.0 * segs[i].log1p_neg;
    segs[i].run_any_prob = -std::expm1(suffix_ln);
  }
  Rng rng(77);
  const int trials = 200000;
  std::vector<uint64_t> hits(24, 0);
  uint64_t draws = 0;
  for (int t = 0; t < trials; ++t) {
    GeometricSegmentScan({segs, 3}, &rng, &draws, [&](uint32_t j) {
      ++hits[j];
      return true;
    });
  }
  for (uint32_t j = 0; j < 24; ++j) {
    const double p = static_cast<double>(segs[j / 8].prob);
    const double sigma = std::sqrt(p * (1.0 - p) / trials);
    EXPECT_NEAR(static_cast<double>(hits[j]) / trials, p, 4.0 * sigma + 1e-9)
        << "index " << j;
  }
  // Expected successes per trial = 8 * (0.1 + 0.01 + 0.001) = 0.888; one
  // terminal draw per trial on top. 24 Bernoullis for the per-edge loop.
  EXPECT_LT(static_cast<double>(draws) / trials, 2.1);
}

TEST(GeometricScanTest, DegenerateProbabilitiesAreExactAndDrawless) {
  Rng rng(1);
  uint64_t draws = 0;
  std::vector<uint32_t> visited;
  const ProbSegment ones{5, 1.0f, 0.0};
  GeometricSegmentScan({&ones, 1}, &rng, &draws, [&](uint32_t j) {
    visited.push_back(j);
    return true;
  });
  EXPECT_EQ(visited, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  const ProbSegment zeros{5, 0.0f, 0.0};
  GeometricSegmentScan({&zeros, 1}, &rng, &draws, [&](uint32_t) {
    ADD_FAILURE() << "p = 0 must never fire";
    return true;
  });
  EXPECT_EQ(draws, 0u);
}

// ---- Exact kernel equivalence on degenerate probabilities: for p in
// {0, 1} the only randomness is the root draw, which both kernels take
// first, so per-set outputs match bit for bit from identical seeds.

TEST(KernelEquivalenceTest, DegenerateEdgesProduceIdenticalSets) {
  for (const Graph& g :
       {MakePathGraph(6, 1.0), MakeCompleteGraph(6, 0.0)}) {
    for (uint64_t seed = 0; seed < 100; ++seed) {
      RRSetGenerator jump(g, DiffusionModel::kIndependentCascade,
                          SamplingKernel::kGeometricJump);
      RRSetGenerator per_edge(g, DiffusionModel::kIndependentCascade,
                              SamplingKernel::kPerEdge);
      Rng rng_a(seed);
      Rng rng_b(seed);
      std::vector<NodeId> a;
      std::vector<NodeId> b;
      jump.Generate(nullptr, g.num_nodes(), &rng_a, &a);
      per_edge.Generate(nullptr, g.num_nodes(), &rng_b, &b);
      EXPECT_EQ(a, b) << "seed " << seed;
    }
  }
}

// ---- Statistical agreement: the two kernels estimate the same coverage
// probability within ±3σ of the two-sample difference, for every weighting
// x diffusion model x backend combination.

class KernelAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KernelAgreementTest, CoverageEstimatesAgreeWithin3Sigma) {
  const Weighting weighting = static_cast<Weighting>(std::get<0>(GetParam()));
  const DiffusionModel model =
      std::get<1>(GetParam()) == 0 ? DiffusionModel::kIndependentCascade
                                   : DiffusionModel::kLinearThreshold;
  const bool parallel = std::get<2>(GetParam()) == 1;

  const Graph g = TestGraph(400, weighting);
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  const uint64_t theta = 120000;

  SamplingEngineOptions options;
  options.backend =
      parallel ? SamplingBackend::kParallel : SamplingBackend::kSerial;
  options.num_threads = parallel ? 4 : 1;

  options.kernel = SamplingKernel::kPerEdge;
  auto reference = CreateSamplingEngine(g, model, options);
  const uint64_t ref_hits = reference->CountConditionalCoverageSeeded(
      0, &base, nullptr, g.num_nodes(), theta, 1234);

  options.kernel = SamplingKernel::kGeometricJump;
  auto fast = CreateSamplingEngine(g, model, options);
  const uint64_t fast_hits = fast->CountConditionalCoverageSeeded(
      0, &base, nullptr, g.num_nodes(), theta, 5678);

  const double p_ref = static_cast<double>(ref_hits) / theta;
  const double p_fast = static_cast<double>(fast_hits) / theta;
  const double p_hat = 0.5 * (p_ref + p_fast);
  const double sigma = std::sqrt(2.0 * p_hat * (1.0 - p_hat) /
                                 static_cast<double>(theta));
  EXPECT_GT(p_hat, 0.0);
  EXPECT_NEAR(p_ref, p_fast, 3.0 * sigma + 1e-9)
      << "weighting " << std::get<0>(GetParam()) << " model "
      << std::get<1>(GetParam()) << " backend "
      << (parallel ? "parallel" : "serial");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelAgreementTest,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1),
                       ::testing::Values(0, 1)));

// Pool-based agreement: per-node membership frequencies of stored pools
// agree across kernels (the GeneratePool path, both models).

TEST(KernelAgreementTest, PoolMembershipAgreesAcrossKernels) {
  for (int m = 0; m < 2; ++m) {
    const DiffusionModel model = m == 0 ? DiffusionModel::kIndependentCascade
                                        : DiffusionModel::kLinearThreshold;
    const Graph g = TestGraph(300, Weighting::kWeightedCascade);
    const uint64_t count = 40000;

    SerialSamplingEngine per_edge(g, model, SamplingKernel::kPerEdge);
    Rng rng_a(10);
    const RRCollection& pool_a =
        per_edge.GeneratePool(nullptr, g.num_nodes(), count, &rng_a);

    SerialSamplingEngine jump(g, model, SamplingKernel::kGeometricJump);
    Rng rng_b(20);
    const RRCollection& pool_b =
        jump.GeneratePool(nullptr, g.num_nodes(), count, &rng_b);

    for (NodeId u = 0; u < 20; ++u) {
      const double f_a =
          static_cast<double>(pool_a.CoverageOfNode(u)) / count;
      const double f_b =
          static_cast<double>(pool_b.CoverageOfNode(u)) / count;
      const double p_hat = 0.5 * (f_a + f_b);
      const double sigma = std::sqrt(2.0 * p_hat * (1.0 - p_hat) /
                                     static_cast<double>(count));
      EXPECT_NEAR(f_a, f_b, 3.0 * sigma + 1e-9)
          << "model " << m << " node " << u;
    }
  }
}

// ---- kPerEdge bit-compat: golden values recorded from the pre-kernel
// tree (seed commit bb4922a) with the historical per-edge sampling. The
// kPerEdge knob must reproduce them exactly — RNG stream and all.

Graph GoldenWcGraph() { return TestGraph(300, Weighting::kWeightedCascade); }

uint64_t PoolHash(const RRCollection& pool) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t i = 0; i < pool.num_sets(); ++i) {
    const auto s = pool.set(i);
    h = (h ^ s.size()) * 1099511628211ull;
    for (NodeId v : s) h = (h ^ v) * 1099511628211ull;
  }
  return h;
}

TEST(PerEdgeGoldenTest, SerialIcCountMatchesPreKernelTree) {
  const Graph g = GoldenWcGraph();
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  Rng rng(5);
  SerialSamplingEngine engine(g, DiffusionModel::kIndependentCascade,
                              SamplingKernel::kPerEdge);
  EXPECT_EQ(engine.CountConditionalCoverage(0, &base, nullptr, g.num_nodes(),
                                            20000, &rng),
            314u);
}

TEST(PerEdgeGoldenTest, SerialIcPoolMatchesPreKernelTree) {
  const Graph g = GoldenWcGraph();
  Rng rng(77);
  SerialSamplingEngine engine(g, DiffusionModel::kIndependentCascade,
                              SamplingKernel::kPerEdge);
  const RRCollection& pool =
      engine.GeneratePool(nullptr, g.num_nodes(), 2000, &rng);
  EXPECT_EQ(pool.total_nodes(), 11288u);
  EXPECT_EQ(PoolHash(pool), 8984351673573768080ull);
}

TEST(PerEdgeGoldenTest, SerialLtCountAndPoolMatchPreKernelTree) {
  const Graph g = GoldenWcGraph();
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  {
    Rng rng(5);
    SerialSamplingEngine engine(g, DiffusionModel::kLinearThreshold,
                                SamplingKernel::kPerEdge);
    EXPECT_EQ(engine.CountConditionalCoverage(0, &base, nullptr,
                                              g.num_nodes(), 20000, &rng),
              526u);
  }
  {
    Rng rng(77);
    SerialSamplingEngine engine(g, DiffusionModel::kLinearThreshold,
                                SamplingKernel::kPerEdge);
    const RRCollection& pool =
        engine.GeneratePool(nullptr, g.num_nodes(), 1000, &rng);
    EXPECT_EQ(PoolHash(pool), 1754442299263415209ull);
  }
}

TEST(PerEdgeGoldenTest, SerialIcTrivalencyCountMatchesPreKernelTree) {
  const Graph g = TestGraph(300, Weighting::kTrivalency);
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  Rng rng(5);
  SerialSamplingEngine engine(g, DiffusionModel::kIndependentCascade,
                              SamplingKernel::kPerEdge);
  EXPECT_EQ(engine.CountConditionalCoverage(0, &base, nullptr, g.num_nodes(),
                                            20000, &rng),
            146u);
}

TEST(PerEdgeGoldenTest, ParallelSeededCountMatchesPreKernelTree) {
  const Graph g = GoldenWcGraph();
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4,
                                4096, SamplingKernel::kPerEdge);
  EXPECT_EQ(engine.CountConditionalCoverageSeeded(0, &base, nullptr,
                                                  g.num_nodes(), 60000, 42),
            997u);
}

TEST(PerEdgeGoldenTest, HatpDecisionSequenceMatchesPreKernelTree) {
  // The acceptance bar: kernel = kPerEdge reproduces a pre-kernel HATP run
  // — decision-for-decision and RR-set-for-RR-set — on the pipelining-test
  // instance (BA n=300 epn=2, top-10 targets, serial engine, world seed
  // 42, policy seed 1).
  Rng grng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = 300;
  options.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(options, &grng).value();
  ApplyWeightedCascade(&g);
  TargetSelectionOptions sel;
  sel.kernel = SamplingKernel::kPerEdge;
  auto selection =
      BuildTopKTargetProblem(g, 10, CostScheme::kDegreeProportional, sel);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  const ProfitProblem& problem = selection.value().problem;

  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  hopt.sampling.kernel = SamplingKernel::kPerEdge;
  HatpPolicy policy(hopt);
  Rng world_rng(42);
  AdaptiveEnvironment env(Realization::Sample(
      g, &world_rng, DiffusionModel::kIndependentCascade,
      SamplingKernel::kPerEdge));
  Rng rng(1);
  auto run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().seeds, (std::vector<NodeId>{2, 7, 18, 17, 9}));
  EXPECT_EQ(run.value().total_rr_sets, 780520u);
  EXPECT_NEAR(run.value().realized_profit, 17.745389, 1e-4);
}

// ---- Depleted-graph root sampling: the cached alive list must be exactly
// as correct (and as deterministic) as the retired per-draw linear scan.

TEST(AliveRootCacheTest, DepletedGraphRootsAreUniformAndDeterministic) {
  const Graph g = MakeCompleteGraph(512, 0.0);
  BitVector removed(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) removed.Set(v);
  const NodeId alive[3] = {5, 100, 200};
  for (NodeId v : alive) removed.Clear(v);

  RRSetGenerator generator(g);
  Rng rng(9);
  std::vector<NodeId> rr;
  std::vector<NodeId> roots;
  uint64_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    generator.Generate(&removed, 3, &rng, &rr);
    ASSERT_EQ(rr.size(), 1u);
    roots.push_back(rr[0]);
    for (int a = 0; a < 3; ++a) {
      if (rr[0] == alive[a]) ++counts[a];
    }
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 3000u);
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 3000.0, 1.0 / 3.0, 0.05);
  }
  // Bit-determinism of the cached path: a fresh generator from the same
  // seed reproduces the exact root sequence.
  RRSetGenerator repeat(g);
  Rng rng2(9);
  for (int i = 0; i < 3000; ++i) {
    repeat.Generate(&removed, 3, &rng2, &rr);
    ASSERT_EQ(rr[0], roots[i]) << "draw " << i;
  }
}

TEST(AliveRootCacheTest, SurvivesInPlaceResidualShrinkage) {
  // The adaptive loop mutates `removed` in place between counting calls;
  // the cache must follow (key change via num_alive) and keep excluding
  // newly removed nodes.
  const Graph g = MakeCompleteGraph(256, 0.0);
  BitVector removed(g.num_nodes());
  for (NodeId v = 4; v < g.num_nodes(); ++v) removed.Set(v);
  RRSetGenerator generator(g);
  Rng rng(11);
  std::vector<NodeId> rr;
  for (int i = 0; i < 500; ++i) {
    generator.Generate(&removed, 4, &rng, &rr);
    EXPECT_LT(rr[0], 4u);
  }
  removed.Set(2);  // epoch moves: one more seeding
  for (int i = 0; i < 500; ++i) {
    generator.Generate(&removed, 3, &rng, &rr);
    EXPECT_LT(rr[0], 4u);
    EXPECT_NE(rr[0], 2u);
  }
}

// ---- Draw accounting: the headline draws-per-edge reduction, measured
// end to end through SamplingStats.

TEST(RngDrawStatsTest, GeometricJumpHalvesDrawsPerEdgeOnWeightedCascade) {
  const Graph g = TestGraph(400, Weighting::kWeightedCascade);
  const uint64_t theta = 20000;
  double draws_per_edge[2];
  for (int k = 0; k < 2; ++k) {
    SerialSamplingEngine engine(g, DiffusionModel::kIndependentCascade,
                                k == 0 ? SamplingKernel::kPerEdge
                                       : SamplingKernel::kGeometricJump);
    Rng rng(33);
    engine.CountConditionalCoverage(0, nullptr, nullptr, g.num_nodes(),
                                    theta, &rng);
    const SamplingStats& stats = engine.stats();
    EXPECT_GT(stats.rng_draws, 0u);
    EXPECT_GT(stats.edges_examined, 0u);
    draws_per_edge[k] = stats.DrawsPerEdge();
  }
  // Acceptance bar: >= 2x fewer draws per edge examined on WC weights.
  EXPECT_GT(draws_per_edge[0], 2.0 * draws_per_edge[1])
      << "per-edge " << draws_per_edge[0] << " vs jump " << draws_per_edge[1];
}

TEST(RngDrawStatsTest, ParallelBackendAggregatesWorkerDraws) {
  const Graph g = TestGraph(400, Weighting::kWeightedCascade);
  ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4);
  const uint64_t theta = 20000;  // above min_parallel_batch
  engine.CountConditionalCoverageSeeded(0, nullptr, nullptr, g.num_nodes(),
                                        theta, 7);
  EXPECT_GT(engine.stats().rng_draws, theta);  // >= 1 root draw per set
}

// ---- World sampling through the jump kernel: same distribution, and
// exact equality on degenerate probabilities.

TEST(RealizationKernelTest, DegenerateWorldsAreIdenticalAcrossKernels) {
  for (double p : {0.0, 1.0}) {
    const Graph g = MakeCompleteGraph(8, p);
    for (int m = 0; m < 2; ++m) {
      const DiffusionModel model = m == 0
                                       ? DiffusionModel::kIndependentCascade
                                       : DiffusionModel::kLinearThreshold;
      if (m == 1 && p == 1.0) continue;  // LT needs mass <= 1
      Rng rng_a(4);
      Rng rng_b(4);
      const Realization a =
          Realization::Sample(g, &rng_a, model, SamplingKernel::kPerEdge);
      const Realization b = Realization::Sample(g, &rng_b, model,
                                                SamplingKernel::kGeometricJump);
      EXPECT_EQ(a.NumLiveEdges(), b.NumLiveEdges());
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (uint32_t j = 0; j < g.OutDegree(u); ++j) {
          EXPECT_EQ(a.IsLive(u, j), b.IsLive(u, j));
        }
      }
    }
  }
}

TEST(RealizationKernelTest, LiveEdgeMassAgreesAcrossKernels) {
  const Graph g = TestGraph(300, Weighting::kTrivalency);
  double expected_mass = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (float p : g.InProbs(v)) expected_mass += p;
  }
  const int worlds = 300;
  uint64_t live = 0;
  Rng rng(6);
  for (int w = 0; w < worlds; ++w) {
    live += Realization::Sample(g, &rng, DiffusionModel::kIndependentCascade,
                                SamplingKernel::kGeometricJump)
                .NumLiveEdges();
  }
  const double mean = static_cast<double>(live) / worlds;
  // Mean live edges = total probability mass; generous ±5σ of the
  // Poisson-binomial spread (bounded by sqrt(mass)).
  const double sigma = std::sqrt(expected_mass / worlds);
  EXPECT_NEAR(mean, expected_mass, 5.0 * sigma);
}

TEST(RealizationKernelTest, LtJumpWorldsKeepAtMostOneInEdge) {
  const Graph g = TestGraph(300, Weighting::kTrivalency);
  Rng rng(12);
  const Realization world = Realization::Sample(
      g, &rng, DiffusionModel::kLinearThreshold,
      SamplingKernel::kGeometricJump);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint32_t live_in = 0;
    for (uint32_t j = 0; j < g.InDegree(v); ++j) {
      const uint64_t edge = g.InEdgeIndex(v, j);
      const NodeId u = g.InNeighbors(v)[j];
      uint32_t slot = 0;
      for (; slot < g.OutDegree(u); ++slot) {
        if (g.OutEdgeIndex(u, slot) == edge) break;
      }
      if (world.IsLive(u, slot)) ++live_in;
    }
    EXPECT_LE(live_in, 1u) << "node " << v;
  }
}

// ---- Engine plumbing of the kernel knob.

TEST(KernelKnobTest, NamesAndEngineReporting) {
  EXPECT_STREQ(SamplingKernelName(SamplingKernel::kGeometricJump),
               "geometric-jump");
  EXPECT_STREQ(SamplingKernelName(SamplingKernel::kPerEdge), "per-edge");
  const Graph g = TestGraph(100, Weighting::kWeightedCascade);
  SamplingEngineOptions options;
  options.backend = SamplingBackend::kSerial;
  options.kernel = SamplingKernel::kPerEdge;
  EXPECT_EQ(CreateSamplingEngine(g, DiffusionModel::kIndependentCascade,
                                 options)
                ->kernel(),
            SamplingKernel::kPerEdge);
}

TEST(KernelKnobTest, HandleRebuildsWhenKernelChanges) {
  const Graph g = TestGraph(100, Weighting::kWeightedCascade);
  SamplingEngineOptions options;
  options.backend = SamplingBackend::kSerial;
  SamplingEngineHandle handle;
  SamplingEngine* jump =
      handle.Get(g, DiffusionModel::kIndependentCascade, options);
  EXPECT_EQ(jump->kernel(), SamplingKernel::kGeometricJump);
  options.kernel = SamplingKernel::kPerEdge;
  SamplingEngine* per_edge =
      handle.Get(g, DiffusionModel::kIndependentCascade, options);
  EXPECT_EQ(per_edge->kernel(), SamplingKernel::kPerEdge);
  EXPECT_NE(jump, per_edge);
}

}  // namespace
}  // namespace atpm
