#include "im/spread_bound.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "rris/rr_collection.h"
#include "rris/rr_set.h"

namespace atpm {
namespace {

TEST(SpreadBoundTest, LowerIsBelowUpper) {
  for (uint64_t cov : {0ull, 5ull, 100ull, 5000ull}) {
    EXPECT_LE(SpreadLowerBound(cov, 10000, 1000, 0.01),
              SpreadUpperBound(cov, 10000, 1000, 0.01));
  }
}

TEST(SpreadBoundTest, LowerBoundBelowPointEstimate) {
  const uint64_t cov = 400;
  const uint64_t theta = 10000;
  const uint32_t n = 1000;
  const double point = static_cast<double>(cov) * n / theta;
  EXPECT_LE(SpreadLowerBound(cov, theta, n, 0.001), point);
  EXPECT_GE(SpreadUpperBound(cov, theta, n, 0.001), point);
}

TEST(SpreadBoundTest, ZeroCoverageGivesZeroLowerBound) {
  EXPECT_NEAR(SpreadLowerBound(0, 1000, 100, 0.01), 0.0, 1e-12);
}

TEST(SpreadBoundTest, UpperBoundCappedAtN) {
  // Even with full coverage, the spread cannot exceed n.
  EXPECT_LE(SpreadUpperBound(1000, 1000, 50, 0.001), 50.0);
}

TEST(SpreadBoundTest, BoundsTightenWithMoreSamples) {
  // Same empirical fraction at 10x samples -> tighter interval.
  const double lo_small = SpreadLowerBound(100, 1000, 1000, 0.01);
  const double hi_small = SpreadUpperBound(100, 1000, 1000, 0.01);
  const double lo_large = SpreadLowerBound(1000, 10000, 1000, 0.01);
  const double hi_large = SpreadUpperBound(1000, 10000, 1000, 0.01);
  EXPECT_GE(lo_large, lo_small);
  EXPECT_LE(hi_large, hi_small);
}

TEST(SpreadBoundTest, SmallerDeltaWidensInterval) {
  const double lo_loose = SpreadLowerBound(500, 5000, 1000, 0.1);
  const double lo_tight = SpreadLowerBound(500, 5000, 1000, 1e-6);
  EXPECT_LE(lo_tight, lo_loose);
  const double hi_loose = SpreadUpperBound(500, 5000, 1000, 0.1);
  const double hi_tight = SpreadUpperBound(500, 5000, 1000, 1e-6);
  EXPECT_GE(hi_tight, hi_loose);
}

// Empirical coverage: across repeated pools, the lower bound should hold
// for the true expected spread in well over 1 - delta of trials.
TEST(SpreadBoundTest, LowerBoundHoldsEmpirically) {
  const Graph g = MakeStarGraph(20, 0.4);  // E[I({0})] = 1 + 19*0.4 = 8.6
  auto exact = ExactSpreadOracle::Create(g, 32);
  ASSERT_TRUE(exact.ok());
  std::vector<NodeId> seeds = {0};
  const double truth = exact.value()->ExpectedSpread(seeds, nullptr);

  Rng rng(77);
  RRSetGenerator generator(g);
  const uint64_t theta = 3000;
  const double delta = 0.05;
  int violations = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    RRCollection pool(20);
    pool.Generate(&generator, nullptr, 20, theta, &rng);
    const uint64_t cov = pool.CoverageOfNode(0);
    if (SpreadLowerBound(cov, theta, 20, delta) > truth) ++violations;
    if (SpreadUpperBound(cov, theta, 20, delta) < truth) ++violations;
  }
  // Each side should fail at most ~delta of the time; allow generous slack.
  EXPECT_LE(violations, static_cast<int>(2 * delta * trials) + 5);
}

TEST(SpreadBoundDeathTest, RejectsDegenerateInputs) {
  EXPECT_DEATH(SpreadLowerBound(1, 0, 10, 0.1), "ATPM_CHECK");
  EXPECT_DEATH(SpreadLowerBound(1, 10, 10, 0.0), "ATPM_CHECK");
  EXPECT_DEATH(SpreadUpperBound(1, 10, 10, 1.5), "ATPM_CHECK");
}

}  // namespace
}  // namespace atpm
