#include "core/hatp.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/addatp.h"
#include "core/adg.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/weighting.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          std::vector<double> target_costs) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (size_t i = 0; i < problem.targets.size(); ++i) {
    problem.costs[problem.targets[i]] = target_costs[i];
  }
  return problem;
}

AdaptiveEnvironment MakeEnv(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  return AdaptiveEnvironment(Realization::Sample(g, &rng));
}

TEST(HatpTest, SelectsClearlyProfitableHub) {
  const Graph g = MakeStarGraph(50, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {5.0});
  HatpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().seeds.size(), 1u);
  EXPECT_DOUBLE_EQ(run.value().realized_profit, 45.0);
  // The gap is enormous: C'1 must fire in round one.
  EXPECT_EQ(run.value().steps[0].rounds, 1u);
}

TEST(HatpTest, AbandonsClearlyOverpricedNode) {
  const Graph g = MakeCompleteGraph(30, 0.0);
  ProfitProblem problem = MakeProblem(g, {0}, {25.0});
  HatpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().seeds.empty());
  // The initial additive error n ζ_0 starts at n/2 on this small graph, so
  // one halving round may be needed before C'1 certifies the abandon.
  EXPECT_LE(run.value().steps[0].rounds, 3u);
}

TEST(HatpTest, SkipsActivatedCandidates) {
  const Graph g = MakePathGraph(4, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2}, {0.1, 0.1, 0.1});
  HatpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().seeds.size(), 1u);
  EXPECT_EQ(run.value().steps[1].decision, SeedDecision::kSkippedActivated);
}

TEST(HatpTest, RejectsInvalidErrorConfiguration) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {1.0});
  HatpOptions options;
  options.initial_relative_error = 0.01;  // below the threshold 0.05
  HatpPolicy policy(options);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  EXPECT_FALSE(policy.Run(problem, &env, &rng).ok());

  HatpOptions options2;
  options2.relative_error_threshold = 0.0;
  HatpPolicy policy2(options2);
  AdaptiveEnvironment env2 = MakeEnv(g, 1);
  EXPECT_FALSE(policy2.Run(problem, &env2, &rng).ok());
}

TEST(HatpTest, BorderlineNodeTerminatesViaC2Floors) {
  // Node with spread == cost: C'1 can never certify; the ε/ζ schedule must
  // drive both errors to their floors and stop via C'2 (no infinite loop,
  // no budget abort with the default generous cap).
  const Graph g = MakeStarGraph(30, 0.5);
  // E[I(hub)] = 1 + 29 * 0.5 = 15.5; cost exactly 15.5.
  ProfitProblem problem = MakeProblem(g, {0}, {15.5});
  HatpPolicy policy;
  AdaptiveEnvironment env = MakeEnv(g, 3);
  Rng rng(4);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run.value().steps[0].rounds, 2u);
}

TEST(HatpTest, BudgetCapForcesDecisionByDefault) {
  const Graph g = MakeStarGraph(200, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {100.5});
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 512;
  HatpPolicy policy(options);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());  // default fail_on_budget_exhausted = false
  EXPECT_EQ(run.value().steps.size(), 1u);
}

TEST(HatpTest, BudgetCapCanFailLikeAddAtp) {
  const Graph g = MakeStarGraph(200, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {100.5});
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 512;
  options.fail_on_budget_exhausted = true;
  HatpPolicy policy(options);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsOutOfBudget());
}

TEST(HatpTest, DeterministicGivenSeeds) {
  const Graph g = MakeStarGraph(40, 0.4);
  ProfitProblem problem = MakeProblem(g, {0, 5, 6}, {2.0, 1.0, 1.0});
  HatpPolicy policy;
  AdaptiveEnvironment env_a = MakeEnv(g, 9);
  AdaptiveEnvironment env_b = MakeEnv(g, 9);
  Rng rng_a(3);
  Rng rng_b(3);
  Result<AdaptiveRunResult> a = policy.Run(problem, &env_a, &rng_a);
  Result<AdaptiveRunResult> b = policy.Run(problem, &env_b, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seeds, b.value().seeds);
  EXPECT_EQ(a.value().total_rr_sets, b.value().total_rr_sets);
}

TEST(HatpTest, AgreesWithOracleAdgOnSeparatedInstances) {
  // When every node's decision gap is wide, HATP must make exactly the
  // decisions the oracle-model ADG makes on the same world.
  Rng graph_rng(11);
  BarabasiAlbertOptions ba;
  ba.num_nodes = 120;
  ba.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(ba, &graph_rng).value();
  ApplyConstantProbability(&g, 0.3);

  // Costs far from the bar: two very cheap hubs, two hopeless nodes.
  ProfitProblem problem =
      MakeProblem(g, {0, 1, 100, 101}, {0.1, 0.1, 50.0, 50.0});

  MonteCarloOptions mc;
  mc.num_samples = 30000;
  mc.seed = 17;
  MonteCarloSpreadOracle oracle(g, mc);
  AdgPolicy adg(&oracle);
  HatpPolicy hatp;

  AdaptiveEnvironment env_adg = MakeEnv(g, 21);
  AdaptiveEnvironment env_hatp = MakeEnv(g, 21);  // same world
  Rng rng_a(5);
  Rng rng_b(5);
  Result<AdaptiveRunResult> run_adg = adg.Run(problem, &env_adg, &rng_a);
  Result<AdaptiveRunResult> run_hatp = hatp.Run(problem, &env_hatp, &rng_b);
  ASSERT_TRUE(run_adg.ok() && run_hatp.ok());
  EXPECT_EQ(run_adg.value().seeds, run_hatp.value().seeds);
  EXPECT_DOUBLE_EQ(run_adg.value().realized_profit,
                   run_hatp.value().realized_profit);
}

TEST(HatpTest, SmallerEpsilonSpendsMoreSamples) {
  // Sensitivity companion to Fig. 4(b): tightening ε should not reduce the
  // sampling effort.
  const Graph g = MakeStarGraph(60, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 1}, {30.0, 1.5});

  uint64_t rr_loose = 0;
  uint64_t rr_tight = 0;
  {
    HatpOptions options;
    options.relative_error_threshold = 0.25;
    HatpPolicy policy(options);
    AdaptiveEnvironment env = MakeEnv(g, 7);
    Rng rng(8);
    rr_loose = policy.Run(problem, &env, &rng).value().total_rr_sets;
  }
  {
    HatpOptions options;
    options.relative_error_threshold = 0.05;
    HatpPolicy policy(options);
    AdaptiveEnvironment env = MakeEnv(g, 7);
    Rng rng(8);
    rr_tight = policy.Run(problem, &env, &rng).value().total_rr_sets;
  }
  EXPECT_GE(rr_tight, rr_loose);
}

TEST(HatpTest, UsesFarFewerSamplesThanAddAtpOnBorderlineNodes) {
  // The headline claim (Theorem 5): hybrid error turns the quadratic
  // 1/ζ² sample cost into 1/(εζ). Compare total RR sets on a node near
  // the decision bar under equal budgets.
  const Graph g = MakeStarGraph(64, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {32.0});

  HatpOptions hatp_options;
  hatp_options.sampling.max_rr_sets_per_decision = 1ull << 22;
  HatpPolicy hatp(hatp_options);
  AdaptiveEnvironment env_h = MakeEnv(g, 13);
  Rng rng_h(14);
  Result<AdaptiveRunResult> run_h = hatp.Run(problem, &env_h, &rng_h);
  ASSERT_TRUE(run_h.ok());

  AddAtpOptions add_options;
  add_options.sampling.max_rr_sets_per_decision = 1ull << 22;
  add_options.fail_on_budget_exhausted = false;
  AddAtpPolicy addatp(add_options);
  AdaptiveEnvironment env_a = MakeEnv(g, 13);
  Rng rng_a(14);
  Result<AdaptiveRunResult> run_a = addatp.Run(problem, &env_a, &rng_a);
  ASSERT_TRUE(run_a.ok());

  EXPECT_LT(run_h.value().total_rr_sets, run_a.value().total_rr_sets);
}

}  // namespace
}  // namespace atpm
