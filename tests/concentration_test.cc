#include "core/concentration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace atpm {
namespace {

TEST(HoeffdingTest, TailFormula) {
  EXPECT_NEAR(HoeffdingTwoSidedTail(100, 0.1),
              2.0 * std::exp(-2.0 * 100 * 0.01), 1e-12);
}

TEST(HoeffdingTest, TailDecreasesInThetaAndZeta) {
  EXPECT_GT(HoeffdingTwoSidedTail(100, 0.1), HoeffdingTwoSidedTail(200, 0.1));
  EXPECT_GT(HoeffdingTwoSidedTail(100, 0.1), HoeffdingTwoSidedTail(100, 0.2));
}

TEST(HoeffdingTest, SampleSizeInvertsTail) {
  const double zeta = 0.05;
  const double delta = 0.01;
  const uint64_t theta = HoeffdingSampleSize(zeta, delta);
  EXPECT_LE(HoeffdingTwoSidedTail(theta, zeta), delta * 1.0001);
  // One fewer sample should not satisfy the bound (tightness).
  EXPECT_GT(HoeffdingTwoSidedTail(theta - 1, zeta), delta * 0.999);
}

TEST(AddAtpSampleSizeTest, MatchesPaperFormula) {
  const double zeta = 0.02;
  const double delta = 1e-4;
  const uint64_t theta = AddAtpSampleSize(zeta, delta);
  EXPECT_EQ(theta, static_cast<uint64_t>(std::ceil(
                       std::log(8.0 / delta) / (2.0 * zeta * zeta))));
}

TEST(AddAtpSampleSizeTest, QuadraticInInverseZeta) {
  // Halving zeta should ~quadruple theta (the paper's efficiency pain).
  const uint64_t theta1 = AddAtpSampleSize(0.04, 1e-3);
  const uint64_t theta2 = AddAtpSampleSize(0.02, 1e-3);
  EXPECT_NEAR(static_cast<double>(theta2) / static_cast<double>(theta1), 4.0,
              0.01);
}

TEST(RelAddTailTest, Formulas) {
  const uint64_t theta = 500;
  const double eps = 0.2;
  const double zeta = 0.05;
  EXPECT_NEAR(RelAddUpperTail(theta, eps, zeta),
              std::exp(-2.0 * theta * eps * zeta /
                       ((1.0 + eps / 3.0) * (1.0 + eps / 3.0))),
              1e-12);
  EXPECT_NEAR(RelAddLowerTail(theta, eps, zeta),
              std::exp(-2.0 * theta * eps * zeta), 1e-12);
}

TEST(RelAddTailTest, LowerTailIsTighter) {
  // The lower tail lacks the (1+eps/3)^2 penalty, so it is smaller.
  EXPECT_LE(RelAddLowerTail(100, 0.3, 0.1), RelAddUpperTail(100, 0.3, 0.1));
}

TEST(HatpSampleSizeTest, MatchesPaperFormula) {
  const double eps = 0.1;
  const double zeta = 0.01;
  const double delta = 1e-5;
  const uint64_t theta = HatpSampleSize(eps, zeta, delta);
  const double expected = (1.0 + eps / 3.0) * (1.0 + eps / 3.0) /
                          (2.0 * eps * zeta) * std::log(4.0 / delta);
  EXPECT_EQ(theta, static_cast<uint64_t>(std::ceil(expected)));
}

TEST(HatpSampleSizeTest, BothTailsBoundedAtTheta) {
  const double eps = 0.15;
  const double zeta = 0.02;
  const double delta = 1e-3;
  const uint64_t theta = HatpSampleSize(eps, zeta, delta);
  EXPECT_LE(RelAddUpperTail(theta, eps, zeta), delta / 4.0 * 1.0001);
  EXPECT_LE(RelAddLowerTail(theta, eps, zeta), delta / 4.0 * 1.0001);
}

TEST(HatpSampleSizeTest, LinearInInverseZeta) {
  // Halving zeta doubles theta — the Θ(εn) improvement over ADDATP
  // (Theorem 5).
  const uint64_t theta1 = HatpSampleSize(0.1, 0.04, 1e-3);
  const uint64_t theta2 = HatpSampleSize(0.1, 0.02, 1e-3);
  EXPECT_NEAR(static_cast<double>(theta2) / static_cast<double>(theta1), 2.0,
              0.01);
}

TEST(HatpVsAddAtpTest, HybridNeedsFarFewerSamplesAtSmallZeta) {
  // At zeta = 1/n (the stopping floor), ADDATP is ~n/eps times costlier.
  const double zeta = 1.0 / 10000.0;
  const double delta = 1e-6;
  const uint64_t additive = AddAtpSampleSize(zeta, delta);
  const uint64_t hybrid = HatpSampleSize(0.1, zeta, delta);
  EXPECT_GT(additive / hybrid, 100u);
}

// Empirical check of the Hoeffding guarantee on Bernoulli means.
TEST(HoeffdingEmpiricalTest, FailureRateWithinBound) {
  Rng rng(42);
  const double p = 0.3;
  const double zeta = 0.05;
  const double delta = 0.1;
  const uint64_t theta = HoeffdingSampleSize(zeta, delta);
  int failures = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    uint64_t hits = 0;
    for (uint64_t i = 0; i < theta; ++i) hits += rng.Bernoulli(p) ? 1 : 0;
    const double mean = static_cast<double>(hits) / theta;
    if (std::abs(mean - p) >= zeta) ++failures;
  }
  EXPECT_LE(failures, static_cast<int>(delta * trials) + 8);
}

// Empirical check of the Relative+Additive bound (Lemma 7).
TEST(RelAddEmpiricalTest, FailureRateWithinBound) {
  Rng rng(43);
  const double p = 0.2;
  const double eps = 0.2;
  const double zeta = 0.02;
  const uint64_t theta = 2000;
  const double upper_bound_prob = RelAddUpperTail(theta, eps, zeta);
  const double lower_bound_prob = RelAddLowerTail(theta, eps, zeta);

  int upper_failures = 0;
  int lower_failures = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    uint64_t hits = 0;
    for (uint64_t i = 0; i < theta; ++i) hits += rng.Bernoulli(p) ? 1 : 0;
    const double mean = static_cast<double>(hits) / theta;
    if (mean >= (1.0 + eps) * p + zeta) ++upper_failures;
    if (mean <= (1.0 - eps) * p - zeta) ++lower_failures;
  }
  EXPECT_LE(static_cast<double>(upper_failures) / trials,
            upper_bound_prob + 0.02);
  EXPECT_LE(static_cast<double>(lower_failures) / trials,
            lower_bound_prob + 0.02);
}

TEST(ConcentrationDeathTest, RejectsDegenerateInputs) {
  EXPECT_DEATH(HoeffdingSampleSize(0.0, 0.1), "ATPM_CHECK");
  EXPECT_DEATH(AddAtpSampleSize(0.1, 0.0), "ATPM_CHECK");
  EXPECT_DEATH(HatpSampleSize(1.0, 0.1, 0.1), "ATPM_CHECK");
}

}  // namespace
}  // namespace atpm
