#include "im/greedy_coverage.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "rris/rr_set.h"

namespace atpm {
namespace {

RRCollection MakeHandPool() {
  // Over 6 nodes:
  //   node 0 covers sets {0,1,2}
  //   node 1 covers sets {3,4}
  //   node 2 covers sets {0,1}   (dominated by node 0)
  //   node 3 covers set  {5}
  RRCollection pool(6);
  pool.AddSet(std::vector<NodeId>{0, 2});  // set 0
  pool.AddSet(std::vector<NodeId>{0, 2});  // set 1
  pool.AddSet(std::vector<NodeId>{0});     // set 2
  pool.AddSet(std::vector<NodeId>{1});     // set 3
  pool.AddSet(std::vector<NodeId>{1});     // set 4
  pool.AddSet(std::vector<NodeId>{3});     // set 5
  return pool;
}

TEST(GreedyMaxCoverageTest, PicksGreedyOrder) {
  RRCollection pool = MakeHandPool();
  GreedyCoverageResult result = GreedyMaxCoverage(&pool, 3);
  ASSERT_EQ(result.seeds.size(), 3u);
  EXPECT_EQ(result.seeds[0], 0u);  // gain 3
  EXPECT_EQ(result.seeds[1], 1u);  // gain 2
  EXPECT_EQ(result.seeds[2], 3u);  // gain 1
  EXPECT_EQ(result.covered, 6u);
}

TEST(GreedyMaxCoverageTest, StopsWhenNothingNewCoverable) {
  RRCollection pool = MakeHandPool();
  GreedyCoverageResult result = GreedyMaxCoverage(&pool, 6);
  // Node 2 adds nothing after node 0; only 3 picks have positive gain.
  EXPECT_EQ(result.seeds.size(), 3u);
  EXPECT_EQ(result.covered, 6u);
}

TEST(GreedyMaxCoverageTest, RespectsCandidateRestriction) {
  RRCollection pool = MakeHandPool();
  std::vector<NodeId> candidates = {1, 2};
  GreedyCoverageResult result = GreedyMaxCoverage(&pool, 2, candidates);
  ASSERT_EQ(result.seeds.size(), 2u);
  // Nodes 1 and 2 cover two sets each (tie); both must be selected and
  // node 0 (the unrestricted optimum) must not appear.
  EXPECT_TRUE((result.seeds[0] == 1u && result.seeds[1] == 2u) ||
              (result.seeds[0] == 2u && result.seeds[1] == 1u));
  EXPECT_EQ(result.covered, 4u);
}

TEST(GreedyMaxCoverageTest, KOneSelectsBestSingleNode) {
  RRCollection pool = MakeHandPool();
  GreedyCoverageResult result = GreedyMaxCoverage(&pool, 1);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_EQ(result.covered, 3u);
}

TEST(GreedyMaxCoverageTest, EmptyPoolSelectsNothing) {
  RRCollection pool(5);
  GreedyCoverageResult result = GreedyMaxCoverage(&pool, 3);
  EXPECT_TRUE(result.seeds.empty());
  EXPECT_EQ(result.covered, 0u);
}

TEST(GreedyMaxCoverageTest, BuildsIndexOnDemand) {
  RRCollection pool = MakeHandPool();
  EXPECT_FALSE(pool.index_built());
  GreedyMaxCoverage(&pool, 1);
  EXPECT_TRUE(pool.index_built());
}

TEST(GreedyMaxCoverageTest, CoverageMatchesRecount) {
  // Property: reported covered == recomputed coverage of returned seeds.
  const Graph g = MakeStarGraph(30, 0.3);
  RRSetGenerator generator(g);
  RRCollection pool(30);
  Rng rng(3);
  pool.Generate(&generator, nullptr, 30, 2000, &rng);
  GreedyCoverageResult result = GreedyMaxCoverage(&pool, 5);

  BitVector members(30);
  for (NodeId s : result.seeds) members.Set(s);
  EXPECT_EQ(result.covered, pool.CoverageOfSet(members));
}

TEST(GreedyMaxCoverageTest, GreedyIsWithinFactorOfExhaustiveOptimum) {
  // On small instances greedy coverage must be >= (1 - 1/e) * OPT; check
  // the exact optimum by brute force over all k-subsets.
  RRCollection pool(6);
  pool.AddSet(std::vector<NodeId>{0, 1});
  pool.AddSet(std::vector<NodeId>{0, 2});
  pool.AddSet(std::vector<NodeId>{1, 3});
  pool.AddSet(std::vector<NodeId>{2, 4});
  pool.AddSet(std::vector<NodeId>{3});
  pool.AddSet(std::vector<NodeId>{4});

  const uint32_t k = 2;
  GreedyCoverageResult greedy = GreedyMaxCoverage(&pool, k);

  uint64_t best = 0;
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = a + 1; b < 6; ++b) {
      BitVector members(6);
      members.Set(a);
      members.Set(b);
      best = std::max(best, pool.CoverageOfSet(members));
    }
  }
  EXPECT_GE(static_cast<double>(greedy.covered),
            (1.0 - 1.0 / 2.718281828) * static_cast<double>(best));
}

}  // namespace
}  // namespace atpm
