#include "core/profit.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          double uniform_cost) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId t : problem.targets) problem.costs[t] = uniform_cost;
  return problem;
}

TEST(ProfitProblemTest, Accessors) {
  const Graph g = MakePathGraph(5, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 2}, 1.5);
  EXPECT_EQ(problem.k(), 2u);
  EXPECT_DOUBLE_EQ(problem.CostOf(0), 1.5);
  EXPECT_DOUBLE_EQ(problem.CostOf(1), 0.0);
  std::vector<NodeId> set = {0, 2};
  EXPECT_DOUBLE_EQ(problem.CostOfSet(set), 3.0);
  EXPECT_DOUBLE_EQ(problem.TotalTargetCost(), 3.0);
}

TEST(ProfitProblemTest, ValidatePasses) {
  const Graph g = MakePathGraph(5, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 2}, 1.0);
  EXPECT_TRUE(problem.Validate().ok());
}

TEST(ProfitProblemTest, ValidateCatchesNullGraph) {
  ProfitProblem problem;
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(ProfitProblemTest, ValidateCatchesWrongCostSize) {
  const Graph g = MakePathGraph(5, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, 1.0);
  problem.costs.resize(3);
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(ProfitProblemTest, ValidateCatchesNegativeCost) {
  const Graph g = MakePathGraph(5, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, 1.0);
  problem.costs[2] = -0.5;
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(ProfitProblemTest, ValidateCatchesOutOfRangeTarget) {
  const Graph g = MakePathGraph(5, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, 1.0);
  problem.targets.push_back(99);
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(ProfitProblemTest, ValidateCatchesDuplicateTargets) {
  const Graph g = MakePathGraph(5, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 2, 0}, 1.0);
  Status s = problem.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(RealizedProfitTest, SpreadMinusCost) {
  const Graph g = MakePathGraph(4, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, 1.5);
  Rng rng(1);
  Realization world = Realization::Sample(g, &rng);  // all edges live
  std::vector<NodeId> seeds = {0};
  EXPECT_DOUBLE_EQ(RealizedProfit(problem, world, seeds), 4.0 - 1.5);
}

TEST(RealizedProfitTest, EmptySeedSetHasZeroProfit) {
  const Graph g = MakePathGraph(4, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, 1.5);
  Rng rng(1);
  Realization world = Realization::Sample(g, &rng);
  EXPECT_DOUBLE_EQ(RealizedProfit(problem, world, {}), 0.0);
}

TEST(RealizedProfitTest, CanBeNegative) {
  const Graph g = MakeCompleteGraph(3, 0.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2}, 5.0);
  Rng rng(1);
  Realization world = Realization::Sample(g, &rng);
  EXPECT_DOUBLE_EQ(RealizedProfit(problem, world, problem.targets),
                   3.0 - 15.0);
}

TEST(OracleProfitTest, MatchesExactOracle) {
  const Graph g = MakeStarGraph(6, 0.25);
  ProfitProblem problem = MakeProblem(g, {0}, 2.0);
  auto oracle = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(oracle.ok());
  std::vector<NodeId> seeds = {0};
  // E[I({0})] = 2.25, cost 2 -> profit 0.25.
  EXPECT_NEAR(OracleProfit(problem, oracle.value().get(), seeds), 0.25, 1e-6);
}

TEST(OracleProfitTest, RespectsRemovedMask) {
  const Graph g = MakePathGraph(4, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, 1.0);
  auto oracle = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(oracle.ok());
  BitVector removed(4);
  removed.Set(1);
  std::vector<NodeId> seeds = {0};
  // Residual spread of {0} is 1 (blocked at removed node 1); cost 1.
  EXPECT_NEAR(OracleProfit(problem, oracle.value().get(), seeds, &removed),
              0.0, 1e-9);
}

TEST(AverageRealizedProfitTest, AveragesOverWorlds) {
  const Graph g = MakePathGraph(2, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, 0.5);
  Rng rng(3);
  std::vector<Realization> worlds;
  for (int i = 0; i < 2000; ++i) {
    worlds.push_back(Realization::Sample(g, &rng));
  }
  std::vector<NodeId> seeds = {0};
  // E[profit] = E[I({0})] - 0.5 = 1.5 - 0.5 = 1.0.
  EXPECT_NEAR(AverageRealizedProfit(problem, worlds, seeds), 1.0, 0.05);
}

TEST(AverageRealizedProfitTest, EmptyWorldsIsZero) {
  const Graph g = MakePathGraph(2, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, 0.5);
  std::vector<NodeId> seeds = {0};
  EXPECT_DOUBLE_EQ(AverageRealizedProfit(problem, {}, seeds), 0.0);
}

}  // namespace
}  // namespace atpm
