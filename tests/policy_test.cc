// Cross-policy contract tests: every AdaptivePolicy implementation must
// honor the same invariants when driven through the base interface on a
// shared world — seeds come from T, accounting identities hold, the
// environment reflects exactly the policy's seedings, and skipped
// candidates are really activated.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/addatp.h"
#include "core/adg.h"
#include "core/ars.h"
#include "core/hatp.h"
#include "core/policy.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/weighting.h"

namespace atpm {
namespace {

struct PolicyFixture {
  Graph graph;
  ProfitProblem problem;
  std::unique_ptr<MonteCarloSpreadOracle> oracle;
  std::vector<std::unique_ptr<AdaptivePolicy>> policies;

  PolicyFixture() {
    Rng rng(31);
    BarabasiAlbertOptions options;
    options.num_nodes = 500;
    options.edges_per_node = 2;
    graph = GenerateBarabasiAlbert(options, &rng).value();
    ApplyWeightedCascade(&graph);

    problem.graph = &graph;
    problem.targets = {0, 1, 2, 3, 7, 11, 50, 200};
    problem.costs.assign(graph.num_nodes(), 0.0);
    for (NodeId t : problem.targets) problem.costs[t] = 2.0;

    MonteCarloOptions mc;
    mc.num_samples = 3000;
    mc.seed = 5;
    oracle = std::make_unique<MonteCarloSpreadOracle>(graph, mc);

    policies.push_back(std::make_unique<AdgPolicy>(oracle.get()));
    policies.push_back(
        std::make_unique<AdgPolicy>(oracle.get(), /*randomized=*/true));
    HatpOptions hatp_options;
    hatp_options.sampling.max_rr_sets_per_decision = 1ull << 15;
    policies.push_back(std::make_unique<HatpPolicy>(hatp_options));
    AddAtpOptions addatp_options;
    addatp_options.sampling.max_rr_sets_per_decision = 1ull << 15;
    addatp_options.fail_on_budget_exhausted = false;
    policies.push_back(std::make_unique<AddAtpPolicy>(addatp_options));
    AddAtpOptions dynamic_options = addatp_options;
    dynamic_options.dynamic_threshold = true;
    policies.push_back(std::make_unique<AddAtpPolicy>(dynamic_options));
    policies.push_back(std::make_unique<ArsPolicy>());
  }
};

TEST(PolicyContractTest, AllPoliciesHonorSharedInvariants) {
  PolicyFixture fixture;
  BitVector in_targets(fixture.graph.num_nodes());
  for (NodeId t : fixture.problem.targets) in_targets.Set(t);

  for (auto& policy : fixture.policies) {
    SCOPED_TRACE(std::string(policy->name()));
    Rng world_rng(77);
    AdaptiveEnvironment env(Realization::Sample(fixture.graph, &world_rng));
    Rng rng(3);
    Result<AdaptiveRunResult> run =
        policy->Run(fixture.problem, &env, &rng);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const AdaptiveRunResult& result = run.value();

    // Seeds come from T, without duplicates.
    BitVector seen(fixture.graph.num_nodes());
    for (NodeId s : result.seeds) {
      EXPECT_TRUE(in_targets.Test(s));
      EXPECT_FALSE(seen.Test(s));
      seen.Set(s);
    }

    // Accounting identities.
    EXPECT_EQ(result.realized_spread, env.num_activated());
    EXPECT_DOUBLE_EQ(result.seed_cost,
                     fixture.problem.CostOfSet(result.seeds));
    EXPECT_DOUBLE_EQ(result.realized_profit,
                     result.realized_spread - result.seed_cost);

    // One step per target, in examination order.
    ASSERT_EQ(result.steps.size(), fixture.problem.targets.size());
    uint32_t selected = 0;
    uint32_t spread_from_steps = 0;
    for (size_t i = 0; i < result.steps.size(); ++i) {
      EXPECT_EQ(result.steps[i].node, fixture.problem.targets[i]);
      if (result.steps[i].decision == SeedDecision::kSelected) {
        ++selected;
        spread_from_steps += result.steps[i].newly_activated;
        EXPECT_GE(result.steps[i].newly_activated, 1u);  // at least itself
      } else {
        EXPECT_EQ(result.steps[i].newly_activated, 0u);
      }
    }
    EXPECT_EQ(selected, result.seeds.size());
    EXPECT_EQ(spread_from_steps, result.realized_spread);

    // Every seed is activated in the final environment; skipped
    // candidates were activated before their turn.
    for (NodeId s : result.seeds) EXPECT_TRUE(env.IsActivated(s));
    for (const AdaptiveStepRecord& step : result.steps) {
      if (step.decision == SeedDecision::kSkippedActivated) {
        EXPECT_TRUE(env.IsActivated(step.node));
      }
    }
  }
}

TEST(PolicyContractTest, SamplingPoliciesReportRrTelemetry) {
  PolicyFixture fixture;
  for (auto& policy : fixture.policies) {
    const bool sampling =
        policy->name() == "HATP" || policy->name() == "ADDATP";
    if (!sampling) continue;
    SCOPED_TRACE(std::string(policy->name()));
    Rng world_rng(78);
    AdaptiveEnvironment env(Realization::Sample(fixture.graph, &world_rng));
    Rng rng(4);
    Result<AdaptiveRunResult> run =
        policy->Run(fixture.problem, &env, &rng);
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run.value().total_rr_sets, 0u);
    EXPECT_LE(run.value().max_rr_sets_per_iteration,
              run.value().total_rr_sets);
    uint64_t steps_total = 0;
    for (const AdaptiveStepRecord& step : run.value().steps) {
      steps_total += step.rr_sets_used;
    }
    EXPECT_EQ(steps_total, run.value().total_rr_sets);
  }
}

TEST(PolicyContractTest, OracleAndArsPoliciesUseNoSamples) {
  PolicyFixture fixture;
  for (auto& policy : fixture.policies) {
    const bool sampling_free =
        policy->name() == "ADG" || policy->name() == "ADG-R" ||
        policy->name() == "ARS";
    if (!sampling_free) continue;
    SCOPED_TRACE(std::string(policy->name()));
    Rng world_rng(79);
    AdaptiveEnvironment env(Realization::Sample(fixture.graph, &world_rng));
    Rng rng(5);
    Result<AdaptiveRunResult> run =
        policy->Run(fixture.problem, &env, &rng);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value().total_rr_sets, 0u);
  }
}

TEST(PolicyContractTest, EveryPolicyRejectsUsedEnvironment) {
  PolicyFixture fixture;
  for (auto& policy : fixture.policies) {
    SCOPED_TRACE(std::string(policy->name()));
    Rng world_rng(80);
    AdaptiveEnvironment env(Realization::Sample(fixture.graph, &world_rng));
    env.SeedAndObserve(400);  // not a target; environment no longer fresh
    Rng rng(6);
    EXPECT_FALSE(policy->Run(fixture.problem, &env, &rng).ok());
  }
}

TEST(FinalizeAdaptiveResultTest, ComputesIdentities) {
  const Graph g = MakePathGraph(4, 1.0);
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = {0};
  problem.costs = {1.5, 0.0, 0.0, 0.0};

  Rng world_rng(1);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  env.SeedAndObserve(0);  // activates the whole path

  AdaptiveRunResult result;
  result.seeds = {0};
  FinalizeAdaptiveResult(problem, env, &result);
  EXPECT_EQ(result.realized_spread, 4u);
  EXPECT_DOUBLE_EQ(result.seed_cost, 1.5);
  EXPECT_DOUBLE_EQ(result.realized_profit, 2.5);
}

}  // namespace
}  // namespace atpm
