#include "rris/rr_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

TEST(RRSetTest, RootAlwaysPresentAndFirst) {
  const Graph g = MakePathGraph(6, 0.5);
  RRSetGenerator generator(g);
  Rng rng(1);
  std::vector<NodeId> rr;
  for (int i = 0; i < 100; ++i) {
    generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    ASSERT_FALSE(rr.empty());
    EXPECT_LT(rr[0], g.num_nodes());
  }
}

TEST(RRSetTest, DeterministicEdgesGiveFullAncestry) {
  // Path 0 -> 1 -> 2 -> 3 at p = 1: RR(v) = {v, v-1, ..., 0}.
  const Graph g = MakePathGraph(4, 1.0);
  RRSetGenerator generator(g);
  Rng rng(2);
  std::vector<NodeId> rr;
  for (int i = 0; i < 50; ++i) {
    generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    const NodeId root = rr[0];
    EXPECT_EQ(rr.size(), static_cast<size_t>(root) + 1);
    std::vector<NodeId> sorted(rr.begin(), rr.end());
    std::sort(sorted.begin(), sorted.end());
    for (NodeId v = 0; v <= root; ++v) EXPECT_EQ(sorted[v], v);
  }
}

TEST(RRSetTest, ZeroProbabilityGivesSingletons) {
  const Graph g = MakeCompleteGraph(5, 0.0);
  RRSetGenerator generator(g);
  Rng rng(3);
  std::vector<NodeId> rr;
  for (int i = 0; i < 50; ++i) {
    generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    EXPECT_EQ(rr.size(), 1u);
  }
}

TEST(RRSetTest, RootsAreUniform) {
  const Graph g = MakeCompleteGraph(10, 0.0);
  RRSetGenerator generator(g);
  Rng rng(4);
  std::vector<int> counts(10, 0);
  std::vector<NodeId> rr;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    ++counts[rr[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

TEST(RRSetTest, RemovedNodesNeverAppear) {
  const Graph g = MakeCompleteGraph(8, 0.5);
  RRSetGenerator generator(g);
  Rng rng(5);
  BitVector removed(8);
  removed.Set(2);
  removed.Set(5);
  std::vector<NodeId> rr;
  for (int i = 0; i < 2000; ++i) {
    generator.Generate(&removed, 6, &rng, &rr);
    for (NodeId v : rr) {
      EXPECT_NE(v, 2u);
      EXPECT_NE(v, 5u);
    }
  }
}

TEST(RRSetTest, RootUniformOverAliveNodes) {
  const Graph g = MakeCompleteGraph(6, 0.0);
  RRSetGenerator generator(g);
  Rng rng(6);
  BitVector removed(6);
  removed.Set(0);
  removed.Set(1);
  std::map<NodeId, int> counts;
  std::vector<NodeId> rr;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    generator.Generate(&removed, 4, &rng, &rr);
    ++counts[rr[0]];
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [node, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02) << node;
  }
}

TEST(RRSetTest, HeavilyDepletedGraphFallsBackToScan) {
  const Graph g = MakeCompleteGraph(64, 0.0);
  RRSetGenerator generator(g);
  Rng rng(7);
  BitVector removed(64);
  for (NodeId v = 0; v < 63; ++v) removed.Set(v);  // only node 63 alive
  std::vector<NodeId> rr;
  for (int i = 0; i < 100; ++i) {
    generator.Generate(&removed, 1, &rng, &rr);
    ASSERT_EQ(rr.size(), 1u);
    EXPECT_EQ(rr[0], 63u);
  }
}

// RIS duality: Pr[u in RR(random root)] = E[I({u})] / n. Verified against
// the exact oracle on enumerable graphs.
class RisDualityTest : public ::testing::TestWithParam<int> {};

TEST_P(RisDualityTest, MembershipFrequencyMatchesNormalizedSpread) {
  Graph g;
  switch (GetParam()) {
    case 0:
      g = MakePathGraph(4, 0.5);
      break;
    case 1:
      g = MakeStarGraph(5, 0.3);
      break;
    case 2:
      g = MakeCycleGraph(5, 0.6);
      break;
    default:
      g = MakePaperFigure1Graph();
  }
  auto exact = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(exact.ok());

  RRSetGenerator generator(g);
  Rng rng(100 + GetParam());
  const int trials = 200000;
  std::vector<int> membership(g.num_nodes(), 0);
  std::vector<NodeId> rr;
  for (int t = 0; t < trials; ++t) {
    generator.Generate(nullptr, g.num_nodes(), &rng, &rr);
    for (NodeId v : rr) ++membership[v];
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> seeds = {u};
    const double expected =
        exact.value()->ExpectedSpread(seeds, nullptr) / g.num_nodes();
    EXPECT_NEAR(static_cast<double>(membership[u]) / trials, expected, 0.01)
        << "node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, RisDualityTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(CountCoveringTest, MatchesStoredGeneration) {
  // CountCovering(u, base=null) should estimate Cov({u}) like explicit sets.
  const Graph g = MakeStarGraph(10, 0.4);
  Rng rng(8);
  RRSetGenerator generator(g);
  const uint64_t theta = 100000;
  const uint64_t covered =
      generator.CountCovering(nullptr, g.num_nodes(), theta, 0, nullptr,
                              &rng);
  // Hub's spread = 1 + 9 * 0.4 = 4.6; Pr[0 in RR] = 4.6 / 10.
  EXPECT_NEAR(static_cast<double>(covered) / theta, 0.46, 0.01);
}

TEST(CountCoveringTest, BaseDisqualifiesCoveredSets) {
  // Path 0 -> 1 at p=1, base = {1}: every RR set rooted at 1 contains both
  // 0 and 1 -> disqualified; RR(0) = {0} does not contain... u=0 qualifies
  // only via root 0.
  const Graph g = MakePathGraph(2, 1.0);
  Rng rng(9);
  RRSetGenerator generator(g);
  BitVector base(2);
  base.Set(1);
  const uint64_t theta = 50000;
  const uint64_t covered =
      generator.CountCovering(nullptr, 2, theta, 0, &base, &rng);
  EXPECT_NEAR(static_cast<double>(covered) / theta, 0.5, 0.01);
}

TEST(CountCoveringTest, EarlyAbortDoesNotBiasCounts) {
  // Compare CountCovering against explicit generation + conditional check
  // on a graph where base hits are frequent.
  const Graph g = MakeCompleteGraph(8, 0.3);
  BitVector base(8);
  base.Set(3);
  base.Set(4);

  Rng rng_count(10);
  RRSetGenerator gen_count(g);
  const uint64_t theta = 200000;
  const uint64_t counted =
      gen_count.CountCovering(nullptr, 8, theta, 0, &base, &rng_count);

  Rng rng_full(11);
  RRSetGenerator gen_full(g);
  std::vector<NodeId> rr;
  uint64_t expected = 0;
  for (uint64_t t = 0; t < theta; ++t) {
    gen_full.Generate(nullptr, 8, &rng_full, &rr);
    bool has_u = false;
    bool hits_base = false;
    for (NodeId v : rr) {
      has_u |= v == 0;
      hits_base |= base.Test(v);
    }
    if (has_u && !hits_base) ++expected;
  }
  EXPECT_NEAR(static_cast<double>(counted) / theta,
              static_cast<double>(expected) / theta, 0.01);
}

// Parallel counting goes through a SamplingEngineHandle (the policies'
// embedded slot); the legacy ParallelCountCovering wrapper — which spun up
// a fresh thread pool per call — is gone.

TEST(ParallelCountingTest, DeterministicGivenSeedAndThreads) {
  const Graph g = MakeStarGraph(20, 0.3);
  SamplingEngineOptions options;
  options.backend = SamplingBackend::kParallel;
  options.num_threads = 4;
  options.min_parallel_batch = 1024;  // engage the pool at this theta
  SamplingEngineHandle handle;
  SamplingEngine* engine =
      handle.Get(g, DiffusionModel::kIndependentCascade, options);
  const uint64_t a = engine->CountConditionalCoverageSeeded(
      0, nullptr, nullptr, 20, 50000, 42);
  const uint64_t b = engine->CountConditionalCoverageSeeded(
      0, nullptr, nullptr, 20, 50000, 42);
  EXPECT_EQ(a, b);
}

TEST(ParallelCountingTest, ThreadCountsAgreeStatistically) {
  const Graph g = MakeStarGraph(20, 0.3);
  const uint64_t theta = 200000;
  SamplingEngineHandle handle;
  SamplingEngineOptions serial_options;
  serial_options.backend = SamplingBackend::kSerial;
  const uint64_t single =
      handle.Get(g, DiffusionModel::kIndependentCascade, serial_options)
          ->CountConditionalCoverageSeeded(0, nullptr, nullptr, 20, theta,
                                           1);
  SamplingEngineOptions parallel_options;
  parallel_options.backend = SamplingBackend::kParallel;
  parallel_options.num_threads = 8;
  const uint64_t multi =
      handle.Get(g, DiffusionModel::kIndependentCascade, parallel_options)
          ->CountConditionalCoverageSeeded(0, nullptr, nullptr, 20, theta,
                                           1);
  EXPECT_NEAR(static_cast<double>(single) / theta,
              static_cast<double>(multi) / theta, 0.01);
}

TEST(GenerateTest, ReportsEdgesExamined) {
  const Graph g = MakePathGraph(5, 1.0);
  RRSetGenerator generator(g);
  Rng rng(12);
  std::vector<NodeId> rr;
  const uint64_t edges = generator.Generate(nullptr, 5, &rng, &rr);
  // Reverse BFS from root r examines the in-edges of every reached node:
  // nodes 1..r each have one in-edge.
  EXPECT_EQ(edges, static_cast<uint64_t>(rr[0]));
}

}  // namespace
}  // namespace atpm
