#include "diffusion/adaptive_environment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

AdaptiveEnvironment MakeEnv(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  return AdaptiveEnvironment(Realization::Sample(g, &rng));
}

TEST(AdaptiveEnvironmentTest, FreshEnvironmentHasNoActivations) {
  const Graph g = MakePathGraph(5, 1.0);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  EXPECT_EQ(env.num_activated(), 0u);
  EXPECT_EQ(env.num_remaining(), 5u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_FALSE(env.IsActivated(u));
}

TEST(AdaptiveEnvironmentTest, SeedingActivatesReachableSet) {
  const Graph g = MakePathGraph(5, 1.0);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  const std::vector<NodeId>& observed = env.SeedAndObserve(2);
  // 2 -> 3 -> 4 all live at p = 1.
  EXPECT_EQ(observed.size(), 3u);
  EXPECT_EQ(env.num_activated(), 3u);
  EXPECT_EQ(env.num_remaining(), 2u);
  EXPECT_TRUE(env.IsActivated(2));
  EXPECT_TRUE(env.IsActivated(3));
  EXPECT_TRUE(env.IsActivated(4));
  EXPECT_FALSE(env.IsActivated(0));
}

TEST(AdaptiveEnvironmentTest, ResidualSemanticsSecondSeedSeesSmallerWorld) {
  const Graph g = MakePathGraph(6, 1.0);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  env.SeedAndObserve(3);  // activates 3, 4, 5
  const std::vector<NodeId>& second = env.SeedAndObserve(0);
  // 0 -> 1 -> 2, then blocked by already-activated 3.
  EXPECT_EQ(second.size(), 3u);
  EXPECT_EQ(env.num_activated(), 6u);
  EXPECT_EQ(env.num_remaining(), 0u);
}

TEST(AdaptiveEnvironmentTest, ObservationMatchesGroundTruthWorld) {
  Rng rng(17);
  ErdosRenyiOptions options;
  options.num_nodes = 60;
  options.num_edges = 200;
  Graph g = GenerateErdosRenyi(options, &rng).value();
  g.AssignProbabilities([](NodeId, NodeId) { return 0.5; });

  Realization world = Realization::Sample(g, &rng);
  std::vector<NodeId> expected;
  std::vector<NodeId> seeds = {7};
  world.Spread(seeds, nullptr, &expected);

  AdaptiveEnvironment env{Realization(world)};
  const std::vector<NodeId>& observed = env.SeedAndObserve(7);
  std::vector<NodeId> got(observed.begin(), observed.end());
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

TEST(AdaptiveEnvironmentTest, UnionOfObservationsEqualsJointSpread) {
  // Seeding u1 then u2 adaptively activates exactly I_phi({u1, u2}).
  Rng rng(23);
  ErdosRenyiOptions options;
  options.num_nodes = 50;
  options.num_edges = 180;
  Graph g = GenerateErdosRenyi(options, &rng).value();
  g.AssignProbabilities([](NodeId, NodeId) { return 0.4; });

  for (int trial = 0; trial < 30; ++trial) {
    Realization world = Realization::Sample(g, &rng);
    std::vector<NodeId> both = {4, 9};
    const uint32_t joint = world.Spread(both);

    AdaptiveEnvironment env{Realization(world)};
    env.SeedAndObserve(4);
    if (!env.IsActivated(9)) env.SeedAndObserve(9);
    EXPECT_EQ(env.num_activated(), joint);
  }
}

TEST(AdaptiveEnvironmentTest, ActivatedBitmapMatchesQueries) {
  const Graph g = MakeStarGraph(6, 1.0);
  AdaptiveEnvironment env = MakeEnv(g, 3);
  env.SeedAndObserve(0);
  const BitVector& bitmap = env.activated();
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(bitmap.Test(u), env.IsActivated(u));
    EXPECT_TRUE(env.IsActivated(u));  // star at p=1 activates everything
  }
}

TEST(AdaptiveEnvironmentTest, IsolatedSeedActivatesOnlyItself) {
  const Graph g = MakeCompleteGraph(4, 0.0);
  AdaptiveEnvironment env = MakeEnv(g, 4);
  const std::vector<NodeId>& observed = env.SeedAndObserve(1);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0], 1u);
}

TEST(AdaptiveEnvironmentDeathTest, SeedingActivatedNodeChecks) {
  const Graph g = MakePathGraph(3, 1.0);
  AdaptiveEnvironment env = MakeEnv(g, 5);
  env.SeedAndObserve(0);
  EXPECT_DEATH(env.SeedAndObserve(1), "ATPM_CHECK");
}

TEST(AdaptiveEnvironmentTest, GraphAccessors) {
  const Graph g = MakePathGraph(3, 1.0);
  AdaptiveEnvironment env = MakeEnv(g, 6);
  EXPECT_EQ(env.graph().num_nodes(), 3u);
  EXPECT_EQ(&env.realization().graph(), &env.graph());
}

}  // namespace
}  // namespace atpm
