#include "core/hntp.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          std::vector<double> target_costs) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (size_t i = 0; i < problem.targets.size(); ++i) {
    problem.costs[problem.targets[i]] = target_costs[i];
  }
  return problem;
}

TEST(HntpTest, SelectsProfitableHub) {
  const Graph g = MakeStarGraph(50, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {5.0});
  Rng rng(1);
  Result<HntpResult> result = RunHntp(problem, HatpOptions{}, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().seeds.size(), 1u);
  EXPECT_EQ(result.value().seeds[0], 0u);
  EXPECT_GT(result.value().total_rr_sets, 0u);
}

TEST(HntpTest, DropsOverpricedNode) {
  const Graph g = MakeCompleteGraph(30, 0.0);
  ProfitProblem problem = MakeProblem(g, {0, 1}, {25.0, 25.0});
  Rng rng(1);
  Result<HntpResult> result = RunHntp(problem, HatpOptions{}, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().seeds.empty());
}

TEST(HntpTest, NoFeedbackCandidatesNeverSkipped) {
  // In the adaptive versions, seeding 0 on the p=1 path activates 1 and 2
  // which are then skipped. Nonadaptively all three are examined; all are
  // cheap and overlapping, and the double-greedy comparison decides each
  // on its own merits (no kSkippedActivated path exists at all).
  const Graph g = MakePathGraph(4, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2}, {0.1, 0.1, 0.1});
  Rng rng(2);
  Result<HntpResult> result = RunHntp(problem, HatpOptions{}, &rng);
  ASSERT_TRUE(result.ok());
  // Node 0 (spread 4, cost .1) is clearly kept.
  EXPECT_FALSE(result.value().seeds.empty());
  EXPECT_EQ(result.value().seeds[0], 0u);
}

TEST(HntpTest, ValidatesErrorConfiguration) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {1.0});
  HatpOptions options;
  options.initial_relative_error = 0.01;
  Rng rng(3);
  EXPECT_FALSE(RunHntp(problem, options, &rng).ok());
}

TEST(HntpTest, BudgetFailureMode) {
  const Graph g = MakeStarGraph(200, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {100.5});
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 256;
  options.fail_on_budget_exhausted = true;
  Rng rng(4);
  Result<HntpResult> result = RunHntp(problem, options, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfBudget());
}

TEST(HntpTest, DeterministicGivenSeed) {
  const Graph g = MakeStarGraph(40, 0.4);
  ProfitProblem problem = MakeProblem(g, {0, 3, 7}, {2.0, 1.0, 1.0});
  Rng rng_a(5);
  Rng rng_b(5);
  Result<HntpResult> a = RunHntp(problem, HatpOptions{}, &rng_a);
  Result<HntpResult> b = RunHntp(problem, HatpOptions{}, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seeds, b.value().seeds);
  EXPECT_EQ(a.value().total_rr_sets, b.value().total_rr_sets);
}

TEST(HntpTest, EmptyTargetsIsNoop) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {}, {});
  Rng rng(6);
  Result<HntpResult> result = RunHntp(problem, HatpOptions{}, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().seeds.empty());
  EXPECT_EQ(result.value().total_rr_sets, 0u);
}

TEST(HntpTest, OverlappingTargetsNotAllKept) {
  // Two identical hubs pointing at the same leaves with substantial cost:
  // once the first is selected, the second's conditional marginal falls
  // below its cost and it must be dropped (the rear base contains the
  // selected seed, unlike the adaptive variant where it is removed).
  GraphBuilder builder;
  for (NodeId v = 2; v < 40; ++v) {
    builder.AddEdge(0, v, 1.0);
    builder.AddEdge(1, v, 1.0);
  }
  Graph g = builder.Build().value();
  ProfitProblem problem = MakeProblem(g, {0, 1}, {10.0, 10.0});
  Rng rng(7);
  Result<HntpResult> result = RunHntp(problem, HatpOptions{}, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().seeds.size(), 1u);
}

}  // namespace
}  // namespace atpm
