// Tracer tests: spans are no-ops while disabled, nest with correct depth
// and annotations when enabled, survive ring wraparound with an honest
// dropped-event count, export loadable Chrome trace_event JSON, round-trip
// through the compact binary format, and — the contract the whole
// observability layer stands on — leave every sampling stream and adaptive
// decision bit-identical whether tracing/metrics are off or on.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/bit_vector.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/hatp.h"
#include "core/target_selection.h"
#include "diffusion/adaptive_environment.h"
#include "diffusion/realization.h"
#include "graph/generators.h"
#include "graph/weighting.h"
#include "rris/rr_collection.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

// ---- the same golden instance failpoint_test.cc pins; any drift here is
// an observability-layer determinism bug, not a new baseline.

Graph WcGraph(NodeId n = 300) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

uint64_t PoolHash(const RRCollection& pool) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t i = 0; i < pool.num_sets(); ++i) {
    const auto s = pool.set(i);
    h = (h ^ s.size()) * 1099511628211ull;
    for (NodeId v : s) h = (h ^ v) * 1099511628211ull;
  }
  return h;
}

uint64_t PoolTotalNodes(const RRCollection& pool) {
  uint64_t total = 0;
  for (uint64_t i = 0; i < pool.num_sets(); ++i) total += pool.set(i).size();
  return total;
}

constexpr uint64_t kGoldenPoolHash = 11827176579932382309ull;
constexpr uint64_t kGoldenPoolNodes = 9141u;

uint64_t SerialGoldenPoolHash() {
  const Graph g = WcGraph();
  SerialSamplingEngine engine(g);
  Rng rng(77);
  const RRCollection& pool =
      engine.GeneratePool(nullptr, g.num_nodes(), 2000, &rng);
  EXPECT_EQ(pool.num_sets(), 2000u);
  EXPECT_EQ(PoolTotalNodes(pool), kGoldenPoolNodes);
  return PoolHash(pool);
}

uint64_t ParallelGoldenSeededCount() {
  const Graph g = WcGraph();
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4,
                                4096);
  return engine.CountConditionalCoverageSeeded(0, &base, nullptr,
                                               g.num_nodes(), 60000, 42);
}

Result<AdaptiveRunResult> RunGoldenHatp() {
  const Graph g = WcGraph();
  auto selection =
      BuildTopKTargetProblem(g, 10, CostScheme::kDegreeProportional);
  EXPECT_TRUE(selection.ok()) << selection.status().ToString();
  HatpOptions hopt;
  hopt.sampling.engine = SamplingBackend::kSerial;
  HatpPolicy policy(hopt);
  Rng world_rng(42);
  AdaptiveEnvironment env(Realization::Sample(g, &world_rng));
  Rng rng(1);
  return policy.Run(selection.value().problem, &env, &rng);
}

void ExpectGoldenHatp(const Result<AdaptiveRunResult>& run) {
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().seeds, (std::vector<NodeId>{2, 7, 17, 9}));
  EXPECT_EQ(run.value().total_rr_sets, 720744u);
  EXPECT_NEAR(run.value().realized_profit, 17.874342, 1e-4);
  std::vector<int> decisions;
  for (const AdaptiveStepRecord& step : run.value().steps) {
    decisions.push_back(static_cast<int>(step.decision));
  }
  EXPECT_EQ(decisions, (std::vector<int>{0, 1, 0, 1, 2, 0, 1, 0, 1, 2}));
}

// Every test starts from a quiet, disabled tracer and restores the default
// observability state (metrics on, tracing off), however it exits.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceEnabled(false);
    obs::ResetTrace();
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::ResetTrace();
    obs::SetMetricsEnabled(true);
    std::remove(TracePath().c_str());
  }

  std::string TracePath() const {
    return ::testing::TempDir() + "/atpm_trace_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + ".atrace";
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::TraceEnabled());
  {
    obs::TraceSpan span("quiet");
    span.AnnotateU64("k", 1);
  }
  EXPECT_TRUE(obs::CollectTraceEvents().empty());
  EXPECT_EQ(obs::DroppedTraceEvents(), 0u);
}

TEST_F(TraceTest, SpansNestWithDepthAndAnnotations) {
  obs::SetTraceEnabled(true);
  {
    obs::TraceSpan outer("outer");
    outer.AnnotateU64("theta", 7);
    {
      obs::TraceSpan inner("inner");
      inner.AnnotateU64("node", 3);
      inner.AnnotateU64("round", 1);
    }
  }
  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (start, tid, depth): the enclosing span comes first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  ASSERT_EQ(events[0].num_args, 1u);
  EXPECT_STREQ(events[0].arg_keys[0], "theta");
  EXPECT_EQ(events[0].arg_values[0], 7u);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].num_args, 2u);
  // The inner interval sits inside the outer one.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, AnnotationsBeyondCapacityAreDropped) {
  obs::SetTraceEnabled(true);
  {
    obs::TraceSpan span("args");
    for (uint64_t i = 0; i < 6; ++i) span.AnnotateU64("k", i);
  }
  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].num_args, obs::kMaxSpanArgs);
}

TEST_F(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  obs::SetTraceEnabled(true);
  constexpr uint64_t kExtra = 100;
  for (uint64_t i = 0; i < obs::kTraceRingCapacity + kExtra; ++i) {
    obs::TraceSpan span("wrap");
    span.AnnotateU64("i", i);
  }
  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  EXPECT_EQ(events.size(), obs::kTraceRingCapacity);
  EXPECT_EQ(obs::DroppedTraceEvents(), kExtra);
  // The survivors are the newest events, oldest-first.
  std::set<uint64_t> indices;
  for (const obs::TraceEvent& e : events) {
    ASSERT_EQ(e.num_args, 1u);
    indices.insert(e.arg_values[0]);
  }
  EXPECT_EQ(*indices.begin(), kExtra);
  EXPECT_EQ(*indices.rbegin(), obs::kTraceRingCapacity + kExtra - 1);

  obs::ResetTrace();
  EXPECT_TRUE(obs::CollectTraceEvents().empty());
  EXPECT_EQ(obs::DroppedTraceEvents(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonExport) {
  obs::SetTraceEnabled(true);
  {
    obs::TraceSpan span("alpha");
    span.AnnotateU64("theta", 7);
  }
  const std::string json = obs::ExportChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"theta\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST_F(TraceTest, BinaryRoundTrip) {
  obs::SetTraceEnabled(true);
  {
    obs::TraceSpan outer("persist_outer");
    outer.AnnotateU64("a", 1);
    obs::TraceSpan inner("persist_inner");
    inner.AnnotateU64("b", 2);
    inner.AnnotateU64("c", 3);
  }
  const std::vector<obs::TraceEvent> live = obs::CollectTraceEvents();
  ASSERT_EQ(live.size(), 2u);
  ASSERT_TRUE(obs::WriteBinaryTrace(TracePath()).ok());

  std::vector<obs::OwnedTraceEvent> loaded;
  const Status read = obs::ReadBinaryTrace(TracePath(), &loaded);
  ASSERT_TRUE(read.ok()) << read.ToString();
  ASSERT_EQ(loaded.size(), live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    const obs::OwnedTraceEvent& got = loaded[i];
    EXPECT_EQ(got.name, live[i].name);
    EXPECT_EQ(got.start_ns, live[i].start_ns);
    EXPECT_EQ(got.dur_ns, live[i].dur_ns);
    EXPECT_EQ(got.tid, live[i].tid);
    EXPECT_EQ(got.depth, live[i].depth);
    ASSERT_EQ(got.args.size(), live[i].num_args);
    for (size_t a = 0; a < got.args.size(); ++a) {
      EXPECT_EQ(got.args[a].first, live[i].arg_keys[a]);
      EXPECT_EQ(got.args[a].second, live[i].arg_values[a]);
    }
  }
  // The owned events render to the same Chrome JSON as the live ones.
  EXPECT_EQ(obs::ChromeTraceJsonFromOwned(loaded),
            obs::ExportChromeTraceJson());
}

TEST_F(TraceTest, BinaryReadRejectsCorruption) {
  obs::SetTraceEnabled(true);
  { obs::TraceSpan span("short_lived"); }
  ASSERT_TRUE(obs::WriteBinaryTrace(TracePath()).ok());
  std::vector<obs::OwnedTraceEvent> scratch;

  // Truncation.
  std::string bytes;
  {
    std::ifstream in(TracePath(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 8u);
  {
    std::ofstream out(TracePath(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_FALSE(obs::ReadBinaryTrace(TracePath(), &scratch).ok());

  // Trailing garbage.
  {
    std::ofstream out(TracePath(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.write("junk", 4);
  }
  EXPECT_FALSE(obs::ReadBinaryTrace(TracePath(), &scratch).ok());

  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] = 'X';
    std::ofstream out(TracePath(), std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_FALSE(obs::ReadBinaryTrace(TracePath(), &scratch).ok());
}

// ---- bit-identity: the non-negotiable acceptance gate. The exact golden
// values pinned by failpoint_test.cc must hold with observability compiled
// in, disabled AND enabled — instruments never touch an RNG stream and
// never reorder work.

TEST_F(TraceTest, SerialPoolGoldenHoldsAcrossObservabilityStates) {
  obs::SetMetricsEnabled(true);
  ASSERT_FALSE(obs::TraceEnabled());
  EXPECT_EQ(SerialGoldenPoolHash(), kGoldenPoolHash);

  obs::SetTraceEnabled(true);
  EXPECT_EQ(SerialGoldenPoolHash(), kGoldenPoolHash);
  // The enabled run actually produced pool_fill spans.
  bool saw_pool_fill = false;
  for (const obs::TraceEvent& e : obs::CollectTraceEvents()) {
    if (std::string(e.name) == "pool_fill") saw_pool_fill = true;
  }
  EXPECT_TRUE(saw_pool_fill);

  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  EXPECT_EQ(SerialGoldenPoolHash(), kGoldenPoolHash);
}

TEST_F(TraceTest, ParallelSeededCountGoldenHoldsAcrossObservabilityStates) {
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(ParallelGoldenSeededCount(), 809u);
  obs::SetTraceEnabled(true);
  EXPECT_EQ(ParallelGoldenSeededCount(), 809u);
  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  EXPECT_EQ(ParallelGoldenSeededCount(), 809u);
}

TEST_F(TraceTest, HatpDecisionSequenceGoldenHoldsWithTracingOnAndOff) {
  obs::SetMetricsEnabled(true);
  ASSERT_FALSE(obs::TraceEnabled());
  ExpectGoldenHatp(RunGoldenHatp());

  obs::SetTraceEnabled(true);
  ExpectGoldenHatp(RunGoldenHatp());
  // The traced run emitted the nested decision -> round span hierarchy.
  std::set<std::string> names;
  for (const obs::TraceEvent& e : obs::CollectTraceEvents()) {
    names.insert(e.name);
  }
  EXPECT_TRUE(names.count("decision"));
  EXPECT_TRUE(names.count("round"));
  EXPECT_TRUE(names.count("pool_fill"));
  // And the mirrored process metrics moved: the global registry exports
  // the sampling and decision series by name.
  const std::string prom = obs::MetricsRegistry::Global().ExportPrometheus();
  EXPECT_NE(prom.find("atpm_rr_sets_generated_total"), std::string::npos);
  EXPECT_NE(prom.find("atpm_decisions_total"), std::string::npos);
  EXPECT_NE(prom.find("atpm_pool_fill_seconds_bucket"), std::string::npos);

  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  ExpectGoldenHatp(RunGoldenHatp());
}

}  // namespace
}  // namespace atpm
