#include "diffusion/realization.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

TEST(RealizationTest, AllEdgesLiveAtProbabilityOne) {
  const Graph g = MakePathGraph(6, 1.0);
  Rng rng(1);
  Realization world = Realization::Sample(g, &rng);
  EXPECT_EQ(world.NumLiveEdges(), g.num_edges());
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(world.Spread(seeds), 6u);
}

TEST(RealizationTest, NoEdgesLiveAtProbabilityZero) {
  const Graph g = MakeCompleteGraph(5, 0.0);
  Rng rng(1);
  Realization world = Realization::Sample(g, &rng);
  EXPECT_EQ(world.NumLiveEdges(), 0u);
  std::vector<NodeId> seeds = {2};
  EXPECT_EQ(world.Spread(seeds), 1u);
}

TEST(RealizationTest, LiveEdgeFrequencyMatchesProbability) {
  const Graph g = MakeStarGraph(2000, 0.3);
  Rng rng(5);
  Realization world = Realization::Sample(g, &rng);
  EXPECT_NEAR(static_cast<double>(world.NumLiveEdges()) /
                  static_cast<double>(g.num_edges()),
              0.3, 0.03);
}

TEST(RealizationTest, FromLiveEdgesExactControl) {
  const Graph g = MakePathGraph(4, 0.5);  // edges: 0->1, 1->2, 2->3
  BitVector live(g.num_edges());
  live.Set(0);
  live.Set(2);
  Realization world = Realization::FromLiveEdges(g, std::move(live));
  EXPECT_TRUE(world.IsLive(0, 0));
  EXPECT_FALSE(world.IsLive(1, 0));
  EXPECT_TRUE(world.IsLive(2, 0));
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(world.Spread(seeds), 2u);  // 0 -> 1, stops (1->2 dead)
}

TEST(RealizationTest, SpreadWithRemovedMask) {
  const Graph g = MakePathGraph(5, 1.0);
  Rng rng(1);
  Realization world = Realization::Sample(g, &rng);
  BitVector removed(5);
  removed.Set(2);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(world.Spread(seeds, &removed), 2u);
  // A removed seed contributes nothing.
  std::vector<NodeId> seed2 = {2};
  EXPECT_EQ(world.Spread(seed2, &removed), 0u);
}

TEST(RealizationTest, ReachedOutListsReachedNodes) {
  const Graph g = MakePathGraph(4, 1.0);
  Rng rng(1);
  Realization world = Realization::Sample(g, &rng);
  std::vector<NodeId> reached;
  std::vector<NodeId> seeds = {1};
  EXPECT_EQ(world.Spread(seeds, nullptr, &reached), 3u);
  ASSERT_EQ(reached.size(), 3u);
  EXPECT_EQ(reached[0], 1u);
  EXPECT_EQ(reached[1], 2u);
  EXPECT_EQ(reached[2], 3u);
}

TEST(RealizationTest, SpreadIsMonotoneInSeeds) {
  Rng rng(9);
  ErdosRenyiOptions options;
  options.num_nodes = 80;
  options.num_edges = 320;
  Graph g = GenerateErdosRenyi(options, &rng).value();
  g.AssignProbabilities([](NodeId, NodeId) { return 0.4; });

  for (int trial = 0; trial < 50; ++trial) {
    Realization world = Realization::Sample(g, &rng);
    std::vector<NodeId> small = {0, 5};
    std::vector<NodeId> large = {0, 5, 10, 15};
    EXPECT_GE(world.Spread(large), world.Spread(small));
  }
}

TEST(RealizationTest, AverageSpreadOverWorldsMatchesIcSimulation) {
  // E over sampled worlds of I_phi(S) equals E[I(S)].
  const Graph g = MakeStarGraph(12, 0.25);  // E[I({0})] = 1 + 11/4 = 3.75
  Rng rng(21);
  double total = 0.0;
  const int trials = 100000;
  std::vector<NodeId> seeds = {0};
  for (int t = 0; t < trials; ++t) {
    Realization world = Realization::Sample(g, &rng);
    total += world.Spread(seeds);
  }
  EXPECT_NEAR(total / trials, 3.75, 0.02);
}

TEST(RealizationTest, RepeatedQueriesOnSameWorldAreStable) {
  Rng rng(33);
  const Graph g = MakeCycleGraph(10, 0.5);
  Realization world = Realization::Sample(g, &rng);
  std::vector<NodeId> seeds = {3};
  const uint32_t first = world.Spread(seeds);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(world.Spread(seeds), first);
}

TEST(RealizationTest, DeterministicGivenSeed) {
  const Graph g = MakeCompleteGraph(8, 0.5);
  Rng rng_a(77);
  Rng rng_b(77);
  Realization a = Realization::Sample(g, &rng_a);
  Realization b = Realization::Sample(g, &rng_b);
  for (NodeId u = 0; u < 8; ++u) {
    for (uint32_t j = 0; j < g.OutDegree(u); ++j) {
      EXPECT_EQ(a.IsLive(u, j), b.IsLive(u, j));
    }
  }
}

}  // namespace
}  // namespace atpm
