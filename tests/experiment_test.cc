#include "bench_util/experiment.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ars.h"
#include "core/hatp.h"
#include "graph/generators.h"
#include "graph/weighting.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          double uniform_cost) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (NodeId t : problem.targets) problem.costs[t] = uniform_cost;
  return problem;
}

TEST(ExperimentRunnerTest, SamplesRequestedWorlds) {
  const Graph g = MakeStarGraph(20, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, 1.0);
  ExperimentRunner runner(problem, 5, 1);
  EXPECT_EQ(runner.worlds().size(), 5u);
  EXPECT_EQ(&runner.problem(), &problem);
}

TEST(ExperimentRunnerTest, BaselineEvaluatesWholeTargetSet) {
  // All-isolated graph: baseline profit = |T| * (1 - cost).
  const Graph g = MakeCompleteGraph(10, 0.0);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2}, 0.4);
  ExperimentRunner runner(problem, 4, 2);
  AlgoStats stats = runner.EvaluateBaseline();
  EXPECT_NEAR(stats.mean_profit, 3.0 * 0.6, 1e-9);
  EXPECT_DOUBLE_EQ(stats.mean_seeds, 3.0);
  EXPECT_EQ(stats.completed_runs, 4u);
  EXPECT_FALSE(stats.out_of_budget);
}

TEST(ExperimentRunnerTest, FixedSetEvaluation) {
  const Graph g = MakePathGraph(5, 1.0);
  ProfitProblem problem = MakeProblem(g, {0, 4}, 1.0);
  ExperimentRunner runner(problem, 3, 3);
  std::vector<NodeId> seeds = {0};
  AlgoStats stats = runner.EvaluateFixedSet(seeds, 1.25);
  // Seeding 0 on the all-live path reaches all 5 nodes; cost 1.
  EXPECT_DOUBLE_EQ(stats.mean_profit, 4.0);
  EXPECT_DOUBLE_EQ(stats.mean_seconds, 1.25);
  EXPECT_DOUBLE_EQ(stats.mean_seeds, 1.0);
}

TEST(ExperimentRunnerTest, AdaptiveRunsOncePerWorld) {
  const Graph g = MakeStarGraph(30, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 2}, 0.5);
  ExperimentRunner runner(problem, 6, 4);
  ArsPolicy policy;
  Result<AlgoStats> stats = runner.RunAdaptive(&policy);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().completed_runs, 6u);
  EXPECT_GE(stats.value().mean_seconds, 0.0);
}

TEST(ExperimentRunnerTest, AdaptiveStatsAreDeterministic) {
  const Graph g = MakeStarGraph(30, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 2, 4}, 0.5);
  ArsPolicy policy;
  ExperimentRunner runner_a(problem, 5, 7);
  ExperimentRunner runner_b(problem, 5, 7);
  Result<AlgoStats> a = runner_a.RunAdaptive(&policy);
  Result<AlgoStats> b = runner_b.RunAdaptive(&policy);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().mean_profit, b.value().mean_profit);
  EXPECT_DOUBLE_EQ(a.value().mean_seeds, b.value().mean_seeds);
}

TEST(ExperimentRunnerTest, OutOfBudgetIsFlaggedNotFatal) {
  const Graph g = MakeStarGraph(300, 0.5);
  // Borderline cost, tiny budget, fail-fast: the run aborts and the cell
  // is marked like the paper's OOM triangle.
  ProfitProblem problem = MakeProblem(g, {0}, 150.5);
  HatpOptions options;
  options.sampling.max_rr_sets_per_decision = 128;
  options.fail_on_budget_exhausted = true;
  HatpPolicy policy(options);
  ExperimentRunner runner(problem, 3, 8);
  Result<AlgoStats> stats = runner.RunAdaptive(&policy);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().out_of_budget);
  EXPECT_LT(stats.value().completed_runs, 3u);
}

TEST(ExperimentRunnerTest, SharedWorldsAcrossAlgorithms) {
  // Two evaluations of the same fixed set must agree exactly — the worlds
  // are shared, not resampled.
  const Graph g = MakeStarGraph(40, 0.3);
  ProfitProblem problem = MakeProblem(g, {0, 1}, 0.5);
  ExperimentRunner runner(problem, 10, 9);
  std::vector<NodeId> seeds = {0};
  EXPECT_DOUBLE_EQ(runner.EvaluateFixedSet(seeds, 0).mean_profit,
                   runner.EvaluateFixedSet(seeds, 0).mean_profit);
}

TEST(ExperimentRunnerTest, SharedRoundPoolsReuseAcrossWorlds) {
  // Every world starts from the same fresh residual graph, so the first
  // candidate's first halving round is content-identical across worlds:
  // with sharing on, world 0 samples it and the others replay it.
  Rng grng(7);
  BarabasiAlbertOptions gopt;
  gopt.num_nodes = 300;
  gopt.edges_per_node = 2;
  Graph g = GenerateBarabasiAlbert(gopt, &grng).value();
  ApplyWeightedCascade(&g);
  ProfitProblem problem = MakeProblem(g, {0, 1, 2, 3, 4}, 2.0);

  HatpOptions options;
  options.sampling.engine = SamplingBackend::kSerial;
  HatpPolicy policy(options);
  ExperimentRunner runner(problem, 4, 11);

  std::unique_ptr<SamplingEngine> inner = CreateSamplingEngine(
      g, DiffusionModel::kIndependentCascade,
      options.sampling.EngineOptions());
  SharedRoundPoolEngine shared(inner.get());
  Result<AlgoStats> stats = runner.RunAdaptive(&policy, &shared);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().completed_runs, 4u);
  EXPECT_GT(stats.value().shared_rounds_sampled, 0u);
  EXPECT_GT(stats.value().shared_rounds_reused, 0u);
  EXPECT_GT(stats.value().SharedPoolReuseRatio(), 0.0);
  EXPECT_LT(stats.value().SharedPoolReuseRatio(), 1.0);

  // The runner detaches the engine afterwards: a plain run accrues nothing
  // further on the shared counters.
  const uint64_t sampled_after = shared.rounds_sampled();
  Result<AlgoStats> plain = runner.RunAdaptive(&policy);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(shared.rounds_sampled(), sampled_after);
  EXPECT_EQ(plain.value().shared_rounds_sampled, 0u);

  // ClearMemo re-baselines the counters.
  shared.ClearMemo();
  EXPECT_EQ(shared.rounds_sampled(), 0u);
  EXPECT_DOUBLE_EQ(shared.ReuseRatio(), 0.0);
}

TEST(ExperimentRunnerTest, WorldSeedsAreDistinct) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, 0.1);
  ExperimentRunner runner(problem, 3, 10);
  EXPECT_NE(runner.WorldSeed(0), runner.WorldSeed(1));
  EXPECT_NE(runner.WorldSeed(1), runner.WorldSeed(2));
}

}  // namespace
}  // namespace atpm
