#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bit_vector.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace atpm {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("io").IsIOError());
  EXPECT_TRUE(Status::NotFound("nf").IsNotFound());
  EXPECT_TRUE(Status::OutOfBudget("ob").IsOutOfBudget());
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("k too big").ToString(),
            "InvalidArgument: k too big");
  EXPECT_EQ(Status::OutOfBudget("cap").ToString(), "OutOfBudget: cap");
}

TEST(StatusTest, NonOkStatusesAreNotOk) {
  EXPECT_FALSE(Status::IOError("x").ok());
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------- BitVector --

TEST(BitVectorTest, StartsAllClear) {
  BitVector b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Any());
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitVectorTest, SetTestClearRoundTrip) {
  BitVector b(200);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(199));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitVectorTest, ResetClearsEverything) {
  BitVector b(100);
  for (size_t i = 0; i < 100; i += 3) b.Set(i);
  EXPECT_TRUE(b.Any());
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Any());
}

TEST(BitVectorTest, CopyIsIndependent) {
  BitVector a(64);
  a.Set(5);
  BitVector b = a;
  b.Set(6);
  EXPECT_TRUE(b.Test(5));
  EXPECT_FALSE(a.Test(6));
}

TEST(EpochVisitedSetTest, MarksResetInConstantTime) {
  EpochVisitedSet visited(50);
  visited.NextEpoch();
  visited.Mark(3);
  visited.Mark(49);
  EXPECT_TRUE(visited.IsMarked(3));
  EXPECT_TRUE(visited.IsMarked(49));
  EXPECT_FALSE(visited.IsMarked(4));
  visited.NextEpoch();
  EXPECT_FALSE(visited.IsMarked(3));
  EXPECT_FALSE(visited.IsMarked(49));
}

TEST(EpochVisitedSetTest, SurvivesManyEpochs) {
  EpochVisitedSet visited(8);
  for (int e = 0; e < 10000; ++e) {
    visited.NextEpoch();
    visited.Mark(static_cast<size_t>(e % 8));
    EXPECT_TRUE(visited.IsMarked(static_cast<size_t>(e % 8)));
    EXPECT_FALSE(visited.IsMarked(static_cast<size_t>((e + 1) % 8)));
  }
}

// -------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.01);
  }
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
  Rng parent(31);
  Rng child = parent.Split();
  // Parent and child should not produce equal sequences.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

// -------------------------------------------------------------- MathUtil --

TEST(MathUtilTest, LogBinomialMatchesSmallCases) {
  // C(5, 2) = 10.
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  // C(10, 5) = 252.
  EXPECT_NEAR(LogBinomial(10, 5), std::log(252.0), 1e-9);
}

TEST(MathUtilTest, LogBinomialBoundaries) {
  EXPECT_DOUBLE_EQ(LogBinomial(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(5, 5), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(5, 7), 0.0);
}

TEST(MathUtilTest, LogBinomialSymmetry) {
  EXPECT_NEAR(LogBinomial(100, 30), LogBinomial(100, 70), 1e-6);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2u);
  EXPECT_EQ(CeilDiv(11, 5), 3u);
  EXPECT_EQ(CeilDiv(1, 100), 1u);
}

TEST(MathUtilTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtilTest, SafeMean) {
  EXPECT_DOUBLE_EQ(SafeMean(10.0, 4), 2.5);
  EXPECT_DOUBLE_EQ(SafeMean(10.0, 0), 0.0);
}

TEST(MathUtilTest, SampleStddev) {
  // Sample {1, 2, 3}: mean 2, sample variance 1.
  EXPECT_NEAR(SampleStddev(6.0, 14.0, 3), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(SampleStddev(5.0, 25.0, 1), 0.0);
  // Cancellation guard: never NaN.
  EXPECT_GE(SampleStddev(3.0, 3.0000000001, 3), 0.0);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3, 1.0);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.5);
}

}  // namespace
}  // namespace atpm
