#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace atpm {
namespace {

TEST(DeterministicFamiliesTest, PathGraph) {
  Graph g = MakePathGraph(5, 0.5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(4), 0u);
  EXPECT_EQ(g.OutNeighbors(2)[0], 3u);
}

TEST(DeterministicFamiliesTest, StarGraph) {
  Graph g = MakeStarGraph(6, 0.3);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.OutDegree(0), 5u);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(g.InDegree(v), 1u);
    EXPECT_FLOAT_EQ(g.InProbs(v)[0], 0.3f);
  }
}

TEST(DeterministicFamiliesTest, CycleGraph) {
  Graph g = MakeCycleGraph(4, 1.0);
  EXPECT_EQ(g.num_edges(), 4u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.InDegree(u), 1u);
  }
}

TEST(DeterministicFamiliesTest, CompleteGraph) {
  Graph g = MakeCompleteGraph(4, 0.2);
  EXPECT_EQ(g.num_edges(), 12u);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(g.OutDegree(u), 3u);
}

TEST(DeterministicFamiliesTest, PaperFigure1GraphStructure) {
  Graph g = MakePaperFigure1Graph();
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 9u);
  // v2 (id 1) has three outgoing edges: to v1, v3, v4.
  EXPECT_EQ(g.OutDegree(1), 3u);
  // v6 (id 5) points to v5 and v7.
  EXPECT_EQ(g.OutDegree(5), 2u);
}

TEST(ErdosRenyiTest, ProducesRequestedShape) {
  Rng rng(1);
  ErdosRenyiOptions options;
  options.num_nodes = 100;
  options.num_edges = 300;
  Result<Graph> g = GenerateErdosRenyi(options, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 100u);
  // Duplicates are collapsed, so realized count can be slightly lower.
  EXPECT_LE(g.value().num_edges(), 300u);
  EXPECT_GE(g.value().num_edges(), 250u);
}

TEST(ErdosRenyiTest, UndirectedDoublesArcs) {
  Rng rng(2);
  ErdosRenyiOptions options;
  options.num_nodes = 50;
  options.num_edges = 40;
  options.undirected = true;
  Result<Graph> g = GenerateErdosRenyi(options, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g.value().num_edges(), 80u);
  EXPECT_EQ(g.value().num_edges() % 2, 0u);
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  Rng rng(3);
  ErdosRenyiOptions options;
  options.num_nodes = 20;
  options.num_edges = 100;
  Result<Graph> g = GenerateErdosRenyi(options, &rng);
  ASSERT_TRUE(g.ok());
  for (const WeightedEdge& e : g.value().CollectEdges()) {
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(ErdosRenyiTest, RejectsTooFewNodes) {
  Rng rng(4);
  ErdosRenyiOptions options;
  options.num_nodes = 1;
  options.num_edges = 1;
  EXPECT_FALSE(GenerateErdosRenyi(options, &rng).ok());
}

TEST(ErdosRenyiTest, RejectsTooManyEdges) {
  Rng rng(5);
  ErdosRenyiOptions options;
  options.num_nodes = 3;
  options.num_edges = 100;
  EXPECT_FALSE(GenerateErdosRenyi(options, &rng).ok());
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  ErdosRenyiOptions options;
  options.num_nodes = 60;
  options.num_edges = 120;
  Rng rng_a(42);
  Rng rng_b(42);
  Result<Graph> a = GenerateErdosRenyi(options, &rng_a);
  Result<Graph> b = GenerateErdosRenyi(options, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().num_edges(), b.value().num_edges());
  const auto ea = a.value().CollectEdges();
  const auto eb = b.value().CollectEdges();
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].src, eb[i].src);
    EXPECT_EQ(ea[i].dst, eb[i].dst);
  }
}

TEST(BarabasiAlbertTest, ExpectedSizeAndHeavyTail) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = 2000;
  options.edges_per_node = 2;
  options.undirected = true;
  Result<Graph> g = GenerateBarabasiAlbert(options, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 2000u);
  // ~2 undirected edges per arriving node -> ~4 arcs per node.
  EXPECT_NEAR(g.value().AverageDegree(), 4.0, 0.5);

  // Heavy tail: the max degree should far exceed the average (BA yields a
  // power law; a homogeneous graph would concentrate near the mean).
  uint32_t max_deg = 0;
  for (NodeId u = 0; u < g.value().num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.value().OutDegree(u));
  }
  EXPECT_GT(max_deg, 40u);
}

TEST(BarabasiAlbertTest, RejectsDegenerateParameters) {
  Rng rng(8);
  BarabasiAlbertOptions options;
  options.num_nodes = 2;
  options.edges_per_node = 2;
  EXPECT_FALSE(GenerateBarabasiAlbert(options, &rng).ok());
  options.num_nodes = 100;
  options.edges_per_node = 0;
  EXPECT_FALSE(GenerateBarabasiAlbert(options, &rng).ok());
}

TEST(RMatTest, ProducesSkewedDirectedGraph) {
  Rng rng(9);
  RMatOptions options;
  options.scale = 10;  // 1024 node slots
  options.num_edges = 8192;
  Result<Graph> g = GenerateRMat(options, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g.value().num_nodes(), 1024u);
  EXPECT_GT(g.value().num_edges(), 6000u);  // some dedup expected

  // Skew: top-decile out-degree mass should dominate.
  std::vector<uint32_t> degrees;
  for (NodeId u = 0; u < g.value().num_nodes(); ++u) {
    degrees.push_back(g.value().OutDegree(u));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  uint64_t top = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    total += degrees[i];
    if (i < degrees.size() / 10) top += degrees[i];
  }
  EXPECT_GT(static_cast<double>(top), 0.3 * static_cast<double>(total));
}

TEST(RMatTest, RejectsBadQuadrantsAndScale) {
  Rng rng(10);
  RMatOptions options;
  options.a = 0.9;  // sums to > 1 with defaults
  EXPECT_FALSE(GenerateRMat(options, &rng).ok());
  RMatOptions options2;
  options2.scale = 0;
  EXPECT_FALSE(GenerateRMat(options2, &rng).ok());
  RMatOptions options3;
  options3.scale = 31;
  EXPECT_FALSE(GenerateRMat(options3, &rng).ok());
}

TEST(WattsStrogatzTest, RingStructureAtBetaZero) {
  Rng rng(11);
  WattsStrogatzOptions options;
  options.num_nodes = 30;
  options.k = 4;
  options.beta = 0.0;
  Result<Graph> g = GenerateWattsStrogatz(options, &rng);
  ASSERT_TRUE(g.ok());
  // Each node connects to k/2 clockwise neighbors, bidirected: 2k arcs
  // per node / 2 = k per node on average.
  EXPECT_EQ(g.value().num_edges(), 30u * 4u);
  for (NodeId u = 0; u < 30; ++u) {
    EXPECT_EQ(g.value().OutDegree(u), 4u);
  }
}

TEST(WattsStrogatzTest, RewiringChangesStructure) {
  WattsStrogatzOptions options;
  options.num_nodes = 100;
  options.k = 4;
  options.beta = 1.0;
  Rng rng(12);
  Result<Graph> g = GenerateWattsStrogatz(options, &rng);
  ASSERT_TRUE(g.ok());
  // Fully rewired: some node should deviate from the ring degree.
  bool deviates = false;
  for (NodeId u = 0; u < 100 && !deviates; ++u) {
    deviates = g.value().OutDegree(u) != 4u;
  }
  EXPECT_TRUE(deviates);
}

TEST(WattsStrogatzTest, RejectsOddK) {
  Rng rng(13);
  WattsStrogatzOptions options;
  options.num_nodes = 30;
  options.k = 3;
  EXPECT_FALSE(GenerateWattsStrogatz(options, &rng).ok());
}

TEST(WattsStrogatzTest, RejectsBadBeta) {
  Rng rng(14);
  WattsStrogatzOptions options;
  options.num_nodes = 30;
  options.k = 4;
  options.beta = 1.5;
  EXPECT_FALSE(GenerateWattsStrogatz(options, &rng).ok());
}

TEST(GeneratorsTest, AllGeneratorsEmitUnweightedGraphs) {
  Rng rng(15);
  ErdosRenyiOptions er;
  er.num_nodes = 20;
  er.num_edges = 40;
  for (const WeightedEdge& e :
       GenerateErdosRenyi(er, &rng).value().CollectEdges()) {
    EXPECT_FLOAT_EQ(e.prob, 0.0f);
  }
  BarabasiAlbertOptions ba;
  ba.num_nodes = 20;
  ba.edges_per_node = 2;
  for (const WeightedEdge& e :
       GenerateBarabasiAlbert(ba, &rng).value().CollectEdges()) {
    EXPECT_FLOAT_EQ(e.prob, 0.0f);
  }
}

}  // namespace
}  // namespace atpm
