// Tests for the SamplingEngine layer: serial backend bit-identity against
// the raw generator, parallel backend determinism, cross-backend
// statistical agreement, shard merging, and EPT accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "rris/coverage_batch.h"
#include "graph/generators.h"
#include "graph/weighting.h"
#include "rris/rr_collection.h"
#include "rris/rr_set.h"
#include "rris/sampling_engine.h"

namespace atpm {
namespace {

Graph TestGraph(NodeId n) {
  Rng rng(7);
  BarabasiAlbertOptions options;
  options.num_nodes = n;
  options.edges_per_node = 3;
  Graph g = GenerateBarabasiAlbert(options, &rng).value();
  ApplyWeightedCascade(&g);
  return g;
}

void ExpectSamePools(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  for (uint64_t i = 0; i < a.num_sets(); ++i) {
    const auto sa = a.set(i);
    const auto sb = b.set(i);
    ASSERT_EQ(sa.size(), sb.size()) << "set " << i;
    for (size_t j = 0; j < sa.size(); ++j) {
      EXPECT_EQ(sa[j], sb[j]) << "set " << i << " slot " << j;
    }
  }
}

// (a) The serial backend reproduces the raw-generator code paths bit for
// bit for a fixed seed.

TEST(SerialSamplingEngineTest, PoolBitIdenticalToRawGenerator) {
  const Graph g = TestGraph(300);
  const uint64_t count = 2000;

  Rng engine_rng(77);
  SerialSamplingEngine engine(g);
  const RRCollection& engine_pool =
      engine.GeneratePool(nullptr, g.num_nodes(), count, &engine_rng);

  Rng raw_rng(77);
  RRSetGenerator generator(g);
  RRCollection raw_pool(g.num_nodes());
  const uint64_t raw_edges =
      raw_pool.Generate(&generator, nullptr, g.num_nodes(), count, &raw_rng);

  ExpectSamePools(engine_pool, raw_pool);
  EXPECT_EQ(engine.total_edges_examined(), raw_edges);
}

TEST(SerialSamplingEngineTest, PoolBitIdenticalOnResidualGraph) {
  const Graph g = TestGraph(300);
  BitVector removed(g.num_nodes());
  for (NodeId v = 0; v < 40; ++v) removed.Set(v);
  const uint32_t alive = g.num_nodes() - 40;

  Rng engine_rng(78);
  SerialSamplingEngine engine(g);
  const RRCollection& engine_pool =
      engine.GeneratePool(&removed, alive, 1500, &engine_rng);

  Rng raw_rng(78);
  RRSetGenerator generator(g);
  RRCollection raw_pool(g.num_nodes());
  raw_pool.Generate(&generator, &removed, alive, 1500, &raw_rng);

  ExpectSamePools(engine_pool, raw_pool);
}

TEST(SerialSamplingEngineTest, CountBitIdenticalToRawGenerator) {
  const Graph g = TestGraph(300);
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 30; ++v) base.Set(v);
  const uint64_t theta = 20000;

  // The engine draws one base seed from the caller's stream and counts
  // with the stream Rng(base seed) — exactly a raw generator driven by
  // that reseeded stream.
  Rng engine_rng(5);
  SerialSamplingEngine engine(g);
  const uint64_t engine_count = engine.CountConditionalCoverage(
      0, &base, nullptr, g.num_nodes(), theta, &engine_rng);

  Rng reference_rng(5);
  RRSetGenerator reference_generator(g);
  Rng reference_stream(reference_rng.Next());
  const uint64_t reference_count = reference_generator.CountCovering(
      nullptr, g.num_nodes(), theta, 0, &base, &reference_stream);

  EXPECT_EQ(engine_count, reference_count);
  // The caller streams advanced identically (one draw each).
  EXPECT_EQ(engine_rng.Next(), reference_rng.Next());
}

TEST(SerialSamplingEngineTest, ResetPoolClearsSetsAndAccounting) {
  const Graph g = TestGraph(100);
  Rng rng(9);
  SerialSamplingEngine engine(g);
  engine.GeneratePool(nullptr, g.num_nodes(), 100, &rng);
  EXPECT_GT(engine.pool().num_sets(), 0u);
  EXPECT_GT(engine.total_edges_examined(), 0u);
  engine.ResetPool();
  EXPECT_EQ(engine.pool().num_sets(), 0u);
  EXPECT_EQ(engine.total_edges_examined(), 0u);
}

// (b) The parallel backend is deterministic for a fixed (seed, threads).

TEST(ParallelSamplingEngineTest, PoolDeterministicForFixedSeedAndThreads) {
  const Graph g = TestGraph(500);
  const uint64_t count = 8192;  // above the serial-fallback threshold

  RRCollection first(0);
  {
    Rng rng(123);
    ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4);
    first = engine.GeneratePool(nullptr, g.num_nodes(), count, &rng);
    EXPECT_EQ(engine.num_workers(), 4u);
  }
  Rng rng(123);
  ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4);
  const RRCollection& second =
      engine.GeneratePool(nullptr, g.num_nodes(), count, &rng);
  ExpectSamePools(first, second);
}

TEST(ParallelSamplingEngineTest, CountDeterministicForFixedSeedAndThreads) {
  const Graph g = TestGraph(500);
  const uint64_t theta = 60000;
  uint64_t counts[2];
  for (int trial = 0; trial < 2; ++trial) {
    Rng rng(321);
    ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4);
    counts[trial] = engine.CountConditionalCoverage(
        1, nullptr, nullptr, g.num_nodes(), theta, &rng);
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0], 0u);
}

TEST(ParallelSamplingEngineTest, EdgeAccountingDeterministicAndAggregated) {
  const Graph g = TestGraph(500);
  uint64_t edges[2];
  for (int trial = 0; trial < 2; ++trial) {
    Rng rng(55);
    ParallelSamplingEngine engine(g, DiffusionModel::kIndependentCascade, 4);
    engine.GeneratePool(nullptr, g.num_nodes(), 8192, &rng);
    edges[trial] = engine.total_edges_examined();
  }
  EXPECT_EQ(edges[0], edges[1]);
  // Every RR set examines at least the root's in-edges; with 8192 sets on a
  // BA graph the aggregate must be substantial.
  EXPECT_GT(edges[0], 8192u);
}

TEST(ParallelSamplingEngineTest, SmallBatchesFallBackToSerialBitExactly) {
  const Graph g = TestGraph(300);
  const uint64_t theta = 512;  // below min_parallel_batch

  Rng parallel_rng(42);
  ParallelSamplingEngine parallel(g, DiffusionModel::kIndependentCascade, 4);
  const uint64_t parallel_count = parallel.CountConditionalCoverage(
      0, nullptr, nullptr, g.num_nodes(), theta, &parallel_rng);

  Rng serial_rng(42);
  SerialSamplingEngine serial(g);
  const uint64_t serial_count = serial.CountConditionalCoverage(
      0, nullptr, nullptr, g.num_nodes(), theta, &serial_rng);

  EXPECT_EQ(parallel_count, serial_count);
}

// (c) Serial and parallel backends agree within concentration bounds on a
// 1k-node generator graph: both estimate p = Pr[u in RR set avoiding base],
// and two independent θ-sample means differ by more than
// 5·sqrt(2·p̂(1−p̂)/θ) with probability well under 1e-5.

// Concurrency stress for the TSan lane: min_parallel_batch = 1 forces
// every job through the worker pool, and the alternating small
// GeneratePool / CountCoverageBatchSeeded rounds keep the hand-off
// machinery hot — job-epoch publication, the pending-counter rendezvous,
// per-worker shard fills, the worker-order merge, and the per-worker
// draw/edge stat harvest. Under -fsanitize=thread this is the data-race
// probe for ParallelSamplingEngine (CI runs it with
// TSAN_OPTIONS=halt_on_error=1); in a plain build it doubles as a
// determinism check — a second identically seeded engine must produce a
// bit-identical pool, counters, and stats through the same churn.
TEST(ParallelSamplingEngineTest, WorkerHandoffStress) {
  const Graph g = TestGraph(200);
  constexpr uint32_t kThreads = 4;
  constexpr int kRounds = 50;
  ParallelSamplingEngine a(g, DiffusionModel::kIndependentCascade, kThreads,
                           /*min_parallel_batch=*/1);
  ParallelSamplingEngine b(g, DiffusionModel::kIndependentCascade, kThreads,
                           /*min_parallel_batch=*/1);
  Rng rng_a(991), rng_b(991);
  BitVector removed(g.num_nodes());
  for (NodeId v = 0; v < 17; ++v) removed.Set(v);
  const uint32_t alive = g.num_nodes() - 17;
  BitVector base(g.num_nodes());
  base.Set(20);
  base.Set(21);
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t count = 16 + round;  // odd sizes exercise quota remainders
    a.GeneratePool(&removed, alive, count, &rng_a);
    b.GeneratePool(&removed, alive, count, &rng_b);
    CoverageQueryBatch batch_a;
    CoverageQueryBatch batch_b;
    for (NodeId q = 30; q < 34; ++q) {
      batch_a.Add(q, &base);
      batch_b.Add(q, &base);
    }
    const uint64_t theta = 64 + 8 * static_cast<uint64_t>(round);
    a.CountCoverageBatchSeeded(&batch_a, &removed, alive, theta, 17 + round);
    b.CountCoverageBatchSeeded(&batch_b, &removed, alive, theta, 17 + round);
    for (size_t q = 0; q < batch_a.size(); ++q) {
      ASSERT_EQ(batch_a.hits(q), batch_b.hits(q))
          << "round " << round << " query " << q;
    }
  }
  ExpectSamePools(a.pool(), b.pool());
  EXPECT_EQ(a.stats().rng_draws, b.stats().rng_draws);
  EXPECT_EQ(a.stats().edges_examined, b.stats().edges_examined);
  EXPECT_EQ(a.total_edges_examined(), b.total_edges_examined());
}

TEST(SamplingEngineAgreementTest, SerialVsParallelCoverageEstimates) {
  const Graph g = TestGraph(1000);
  BitVector base(g.num_nodes());
  for (NodeId v = 50; v < 80; ++v) base.Set(v);
  const uint64_t theta = 200000;
  const NodeId u = 0;

  Rng serial_rng(2024);
  SerialSamplingEngine serial(g);
  const double p_serial =
      static_cast<double>(serial.CountConditionalCoverage(
          u, &base, nullptr, g.num_nodes(), theta, &serial_rng)) /
      static_cast<double>(theta);

  Rng parallel_rng(4048);
  ParallelSamplingEngine parallel(g, DiffusionModel::kIndependentCascade, 4);
  const double p_parallel =
      static_cast<double>(parallel.CountConditionalCoverage(
          u, &base, nullptr, g.num_nodes(), theta, &parallel_rng)) /
      static_cast<double>(theta);

  const double p_hat = 0.5 * (p_serial + p_parallel);
  const double sigma =
      std::sqrt(2.0 * p_hat * (1.0 - p_hat) / static_cast<double>(theta));
  EXPECT_GT(p_hat, 0.0);
  EXPECT_NEAR(p_serial, p_parallel, 5.0 * sigma + 1e-9);
}

TEST(SamplingEngineAgreementTest, PoolCoverageAcrossBackends) {
  const Graph g = TestGraph(1000);
  const uint64_t count = 65536;
  const NodeId u = 1;

  Rng serial_rng(10);
  SerialSamplingEngine serial(g);
  const RRCollection& serial_pool =
      serial.GeneratePool(nullptr, g.num_nodes(), count, &serial_rng);
  const double f_serial =
      static_cast<double>(serial_pool.CoverageOfNode(u)) / count;

  Rng parallel_rng(20);
  ParallelSamplingEngine parallel(g, DiffusionModel::kIndependentCascade, 4);
  const RRCollection& parallel_pool =
      parallel.GeneratePool(nullptr, g.num_nodes(), count, &parallel_rng);
  ASSERT_EQ(parallel_pool.num_sets(), count);
  const double f_parallel =
      static_cast<double>(parallel_pool.CoverageOfNode(u)) / count;

  const double p_hat = 0.5 * (f_serial + f_parallel);
  const double sigma =
      std::sqrt(2.0 * p_hat * (1.0 - p_hat) / static_cast<double>(count));
  EXPECT_NEAR(f_serial, f_parallel, 5.0 * sigma + 1e-9);
}

// (d) Batched vs unbatched estimates: a one-query CoverageQueryBatch is the
// same code path as CountConditionalCoverage (bit-identity on the serial
// backend), and a two-query batch agrees with per-query sampling within
// concentration bounds on every backend (±3σ).

TEST(SamplingEngineBatchTest, OneQueryBatchBitIdenticalOnSerialBackend) {
  const Graph g = TestGraph(400);
  BitVector base(g.num_nodes());
  for (NodeId v = 10; v < 40; ++v) base.Set(v);
  const uint64_t theta = 30000;

  SerialSamplingEngine engine(g);
  Rng batch_rng(55);
  CoverageQueryBatch batch;
  batch.Add(0, &base);
  engine.CountCoverageBatch(&batch, nullptr, g.num_nodes(), theta,
                            &batch_rng);

  Rng query_rng(55);
  const uint64_t unbatched = engine.CountConditionalCoverage(
      0, &base, nullptr, g.num_nodes(), theta, &query_rng);

  EXPECT_EQ(batch.hits(0), unbatched);
  EXPECT_EQ(batch_rng.Next(), query_rng.Next());  // same caller stream use
}

TEST(SamplingEngineBatchTest, BatchedEstimatesAgreeAcrossBackends) {
  const Graph g = TestGraph(1000);
  BitVector front(g.num_nodes());
  for (NodeId v = 10; v < 25; ++v) front.Set(v);
  BitVector rear(g.num_nodes());
  for (NodeId v = 60; v < 200; ++v) rear.Set(v);
  const uint64_t theta = 200000;

  // Serial batched estimate vs parallel unbatched per-query estimates: the
  // batch layer must not move the estimand, only the sampling layout.
  SerialSamplingEngine serial(g);
  CoverageQueryBatch batch;
  batch.Add(0, &front);
  batch.Add(0, &rear);
  Rng serial_rng(808);
  serial.CountCoverageBatch(&batch, nullptr, g.num_nodes(), theta,
                            &serial_rng);

  ParallelSamplingEngine parallel(g, DiffusionModel::kIndependentCascade, 4);
  Rng parallel_rng(909);
  const uint64_t front_hits = parallel.CountConditionalCoverage(
      0, &front, nullptr, g.num_nodes(), theta, &parallel_rng);
  const uint64_t rear_hits = parallel.CountConditionalCoverage(
      0, &rear, nullptr, g.num_nodes(), theta, &parallel_rng);

  const uint64_t unbatched[2] = {front_hits, rear_hits};
  for (int q = 0; q < 2; ++q) {
    const double p_batched =
        static_cast<double>(batch.hits(q)) / static_cast<double>(theta);
    const double p_unbatched =
        static_cast<double>(unbatched[q]) / static_cast<double>(theta);
    const double p_hat = 0.5 * (p_batched + p_unbatched);
    const double sigma =
        std::sqrt(2.0 * p_hat * (1.0 - p_hat) / static_cast<double>(theta));
    EXPECT_GT(p_hat, 0.0) << "query " << q;
    EXPECT_NEAR(p_batched, p_unbatched, 3.0 * sigma + 1e-9) << "query " << q;
  }
}

// Factory / knob resolution.

TEST(CreateSamplingEngineTest, AutoResolvesByThreadCount) {
  const Graph g = TestGraph(100);
  SamplingEngineOptions options;
  options.backend = SamplingBackend::kAuto;
  options.num_threads = 1;
  EXPECT_EQ(CreateSamplingEngine(g, DiffusionModel::kIndependentCascade,
                                 options)
                ->name(),
            "serial");
  options.num_threads = 4;
  EXPECT_EQ(CreateSamplingEngine(g, DiffusionModel::kIndependentCascade,
                                 options)
                ->name(),
            "parallel");
  options.backend = SamplingBackend::kSerial;
  EXPECT_EQ(CreateSamplingEngine(g, DiffusionModel::kIndependentCascade,
                                 options)
                ->name(),
            "serial");
}

TEST(CreateSamplingEngineTest, ExplicitParallelWithOneThreadDegradesToSerial) {
  // A one-worker pool routes every query through its inline serial path, so
  // the factory skips the worker-thread + condvar machinery entirely. The
  // engine consequently reports name() == "serial" even though the option
  // said kParallel.
  const Graph g = TestGraph(100);
  SamplingEngineOptions options;
  options.backend = SamplingBackend::kParallel;
  options.num_threads = 1;
  EXPECT_EQ(CreateSamplingEngine(g, DiffusionModel::kIndependentCascade,
                                 options)
                ->name(),
            "serial");
  options.num_threads = 2;
  EXPECT_EQ(CreateSamplingEngine(g, DiffusionModel::kIndependentCascade,
                                 options)
                ->name(),
            "parallel");
}

TEST(SamplingBackendTest, Names) {
  EXPECT_STREQ(SamplingBackendName(SamplingBackend::kSerial), "serial");
  EXPECT_STREQ(SamplingBackendName(SamplingBackend::kParallel), "parallel");
  EXPECT_STREQ(SamplingBackendName(SamplingBackend::kAuto), "auto");
}

// Shard merge primitive used by the parallel backend.

TEST(RRCollectionAppendShardTest, MatchesPerSetInsertion) {
  RRCollection by_set(10);
  RRCollection by_shard(10);

  const std::vector<std::vector<NodeId>> sets = {
      {1, 2, 3}, {4}, {}, {5, 6}, {7, 8, 9, 0}};
  std::vector<NodeId> flat;
  std::vector<uint32_t> sizes;
  for (const auto& s : sets) {
    by_set.AddSet(s);
    flat.insert(flat.end(), s.begin(), s.end());
    sizes.push_back(static_cast<uint32_t>(s.size()));
  }
  // Split into two shards to exercise repeated appends.
  by_shard.AppendShard({flat.data(), 4}, {sizes.data(), 2});
  by_shard.AppendShard({flat.data() + 4, flat.size() - 4},
                       {sizes.data() + 2, sizes.size() - 2});

  ExpectSamePools(by_set, by_shard);
  by_shard.BuildIndex();
  EXPECT_EQ(by_shard.CoverageOfNode(4), 1u);
  EXPECT_EQ(by_shard.CoverageOfNode(0), 1u);
}

// Engine handle caching (the policies' embedded slot).

TEST(SamplingEngineHandleTest, CachesOwnedEngineAndHonorsInjection) {
  const Graph g = TestGraph(100);
  SamplingEngineOptions options;
  options.backend = SamplingBackend::kSerial;

  SamplingEngineHandle handle;
  SamplingEngine* first =
      handle.Get(g, DiffusionModel::kIndependentCascade, options);
  SamplingEngine* second =
      handle.Get(g, DiffusionModel::kIndependentCascade, options);
  EXPECT_EQ(first, second);  // cached across calls

  options.backend = SamplingBackend::kParallel;
  options.num_threads = 2;
  SamplingEngine* third =
      handle.Get(g, DiffusionModel::kIndependentCascade, options);
  EXPECT_EQ(third->name(), "parallel");

  SerialSamplingEngine external(g);
  handle.Use(&external);
  EXPECT_EQ(handle.Get(g, DiffusionModel::kIndependentCascade, options),
            &external);
  handle.Use(nullptr);
  EXPECT_NE(handle.Get(g, DiffusionModel::kIndependentCascade, options),
            &external);
}

}  // namespace
}  // namespace atpm
