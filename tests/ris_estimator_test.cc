#include "rris/ris_estimator.h"

#include <gtest/gtest.h>

#include <vector>

#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "rris/rr_set.h"

namespace atpm {
namespace {

TEST(RisEstimatorTest, EmptyPoolEstimatesZero) {
  RRCollection pool(4);
  EXPECT_DOUBLE_EQ(EstimateSpreadOfNode(pool, 0, 4), 0.0);
}

TEST(RisEstimatorTest, MakeMembershipBitmap) {
  std::vector<NodeId> nodes = {1, 3};
  BitVector b = MakeMembershipBitmap(5, nodes);
  EXPECT_FALSE(b.Test(0));
  EXPECT_TRUE(b.Test(1));
  EXPECT_TRUE(b.Test(3));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(RisEstimatorTest, HandPoolEstimates) {
  RRCollection pool(4);
  pool.AddSet(std::vector<NodeId>{0});
  pool.AddSet(std::vector<NodeId>{0, 1});
  pool.AddSet(std::vector<NodeId>{2});
  pool.AddSet(std::vector<NodeId>{3});
  // Cov(0) = 2 of 4 sets; estimate = 4 * 2/4 = 2.
  EXPECT_DOUBLE_EQ(EstimateSpreadOfNode(pool, 0, 4), 2.0);
  BitVector members = MakeMembershipBitmap(4, std::vector<NodeId>{0, 2});
  EXPECT_DOUBLE_EQ(EstimateSpreadOfSet(pool, members, 4), 3.0);
  BitVector base = MakeMembershipBitmap(4, std::vector<NodeId>{1});
  EXPECT_DOUBLE_EQ(EstimateMarginalSpread(pool, 0, base, 4), 1.0);
}

// Property: RIS estimates converge to exact expected spreads.
class RisAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(RisAccuracyTest, EstimatesMatchExactOracle) {
  Graph g;
  switch (GetParam()) {
    case 0:
      g = MakePathGraph(5, 0.5);
      break;
    case 1:
      g = MakeStarGraph(7, 0.35);
      break;
    case 2:
      g = MakeCycleGraph(6, 0.4);
      break;
    default:
      g = MakePaperFigure1Graph();
  }
  auto exact = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(exact.ok());

  RRSetGenerator generator(g);
  RRCollection pool(g.num_nodes());
  Rng rng(500 + GetParam());
  pool.Generate(&generator, nullptr, g.num_nodes(), 200000, &rng);

  // Single nodes.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> seeds = {u};
    EXPECT_NEAR(EstimateSpreadOfNode(pool, u, g.num_nodes()),
                exact.value()->ExpectedSpread(seeds, nullptr), 0.08)
        << "node " << u;
  }
  // A two-node set and its marginal.
  std::vector<NodeId> pair = {0, static_cast<NodeId>(g.num_nodes() - 1)};
  BitVector members = MakeMembershipBitmap(g.num_nodes(), pair);
  EXPECT_NEAR(EstimateSpreadOfSet(pool, members, g.num_nodes()),
              exact.value()->ExpectedSpread(pair, nullptr), 0.1);

  std::vector<NodeId> base = {0};
  BitVector base_b = MakeMembershipBitmap(g.num_nodes(), base);
  EXPECT_NEAR(
      EstimateMarginalSpread(pool, pair[1], base_b, g.num_nodes()),
      exact.value()->ExpectedMarginalSpread(pair[1], base, nullptr), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Graphs, RisAccuracyTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(RisEstimatorTest, ResidualGraphEstimates) {
  // Path 0 -> 1 -> 2 -> 3 at p = 1 with node 2 removed: alive = {0, 1, 3},
  // E[I_res({0})] = 2.
  const Graph g = MakePathGraph(4, 1.0);
  BitVector removed(4);
  removed.Set(2);
  RRSetGenerator generator(g);
  RRCollection pool(4);
  Rng rng(9);
  pool.Generate(&generator, &removed, 3, 60000, &rng);
  EXPECT_NEAR(EstimateSpreadOfNode(pool, 0, 3), 2.0, 0.05);
  EXPECT_NEAR(EstimateSpreadOfNode(pool, 3, 3), 1.0, 0.05);
}

}  // namespace
}  // namespace atpm
