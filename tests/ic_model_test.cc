#include "diffusion/ic_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"

namespace atpm {
namespace {

TEST(SimulateIcTest, DeterministicWithProbabilityOne) {
  const Graph g = MakePathGraph(5, 1.0);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateIC(g, seeds, &rng), 5u);
}

TEST(SimulateIcTest, NoSpreadWithProbabilityZero) {
  const Graph g = MakePathGraph(5, 0.0);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateIC(g, seeds, &rng), 1u);
}

TEST(SimulateIcTest, SeedFromMiddleOfPath) {
  const Graph g = MakePathGraph(6, 1.0);
  Rng rng(1);
  std::vector<NodeId> seeds = {3};
  EXPECT_EQ(SimulateIC(g, seeds, &rng), 3u);  // 3 -> 4 -> 5
}

TEST(SimulateIcTest, DuplicateSeedsCountOnce) {
  const Graph g = MakePathGraph(4, 0.0);
  Rng rng(1);
  std::vector<NodeId> seeds = {2, 2, 2};
  EXPECT_EQ(SimulateIC(g, seeds, &rng), 1u);
}

TEST(SimulateIcTest, MultipleSeedsUnionSpread) {
  const Graph g = MakePathGraph(10, 1.0);
  Rng rng(1);
  std::vector<NodeId> seeds = {8, 0};
  EXPECT_EQ(SimulateIC(g, seeds, &rng), 10u);
}

TEST(SimulateIcTest, RemovedNodesBlockPropagationAndSeeding) {
  const Graph g = MakePathGraph(5, 1.0);
  Rng rng(1);
  BitVector removed(5);
  removed.Set(2);
  std::vector<NodeId> seeds = {0};
  // 0 -> 1, blocked at 2.
  EXPECT_EQ(SimulateIC(g, seeds, &rng, &removed), 2u);
  // Removed seeds contribute nothing.
  std::vector<NodeId> removed_seed = {2};
  EXPECT_EQ(SimulateIC(g, removed_seed, &rng, &removed), 0u);
}

TEST(SimulateIcTest, ActivatedOutIncludesSeedsAndActivations) {
  const Graph g = MakeStarGraph(4, 1.0);
  Rng rng(1);
  std::vector<NodeId> activated;
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateIC(g, seeds, &rng, nullptr, &activated), 4u);
  EXPECT_EQ(activated.size(), 4u);
  EXPECT_EQ(activated[0], 0u);
}

TEST(SimulateIcTest, SpreadProbabilityMatchesSingleEdge) {
  // One edge with p = 0.3: E[I({0})] = 1.3.
  Graph g = MakePathGraph(2, 0.3);
  Rng rng(99);
  const int trials = 200000;
  int64_t total = 0;
  std::vector<NodeId> seeds = {0};
  for (int t = 0; t < trials; ++t) total += SimulateIC(g, seeds, &rng);
  EXPECT_NEAR(static_cast<double>(total) / trials, 1.3, 0.01);
}

TEST(SimulateIcTest, StarSpreadMatchesClosedForm) {
  // Star 0 -> {1..9} each with p = 0.2: E[I({0})] = 1 + 9 * 0.2 = 2.8.
  Graph g = MakeStarGraph(10, 0.2);
  Rng rng(7);
  const int trials = 200000;
  int64_t total = 0;
  std::vector<NodeId> seeds = {0};
  for (int t = 0; t < trials; ++t) total += SimulateIC(g, seeds, &rng);
  EXPECT_NEAR(static_cast<double>(total) / trials, 2.8, 0.02);
}

TEST(EdgeCoinTest, DeterministicGivenSaltAndEdge) {
  for (uint64_t e = 0; e < 50; ++e) {
    for (uint64_t salt = 0; salt < 20; ++salt) {
      EXPECT_EQ(EdgeCoin(e, salt, 0.5f), EdgeCoin(e, salt, 0.5f));
    }
  }
}

TEST(EdgeCoinTest, RespectsProbabilityExtremes) {
  for (uint64_t e = 0; e < 100; ++e) {
    EXPECT_FALSE(EdgeCoin(e, 42, 0.0f));
    EXPECT_TRUE(EdgeCoin(e, 42, 1.0f));
  }
}

TEST(EdgeCoinTest, FrequencyMatchesProbability) {
  int hits = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    hits += EdgeCoin(17, static_cast<uint64_t>(t), 0.35f) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.35, 0.01);
}

TEST(EdgeCoinTest, MonotoneInProbability) {
  // If a coin lands heads at probability p, it must land heads at p' > p
  // (the underlying uniform draw is fixed by (edge, salt)).
  for (uint64_t e = 0; e < 200; ++e) {
    if (EdgeCoin(e, 5, 0.3f)) {
      EXPECT_TRUE(EdgeCoin(e, 5, 0.8f));
    }
  }
}

TEST(SpreadInHashedWorldTest, AgreesWithClosedFormOnAverage) {
  Graph g = MakeStarGraph(10, 0.2);
  std::vector<NodeId> seeds = {0};
  double total = 0.0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    total += SpreadInHashedWorld(g, seeds, static_cast<uint64_t>(t) * 31 + 7);
  }
  EXPECT_NEAR(total / trials, 2.8, 0.02);
}

TEST(SpreadInHashedWorldTest, SameSaltIsConsistentAcrossSeedSets) {
  // Common-random-numbers property: I_phi(S u {u}) >= I_phi(S) within the
  // same hashed world (monotonicity of reachability).
  Rng rng(3);
  ErdosRenyiOptions options;
  options.num_nodes = 60;
  options.num_edges = 240;
  Graph g = GenerateErdosRenyi(options, &rng).value();
  g.AssignProbabilities([](NodeId, NodeId) { return 0.3; });

  std::vector<NodeId> base = {1, 2};
  std::vector<NodeId> bigger = {1, 2, 3};
  for (uint64_t salt = 0; salt < 500; ++salt) {
    EXPECT_GE(SpreadInHashedWorld(g, bigger, salt),
              SpreadInHashedWorld(g, base, salt));
  }
}

TEST(SpreadInHashedWorldTest, RemovedMaskRespected) {
  const Graph g = MakePathGraph(5, 1.0);
  BitVector removed(5);
  removed.Set(1);
  std::vector<NodeId> seeds = {0};
  for (uint64_t salt = 0; salt < 20; ++salt) {
    EXPECT_EQ(SpreadInHashedWorld(g, seeds, salt, &removed), 1u);
  }
}

TEST(SimulateIcTest, WorksAcrossDifferentGraphSizes) {
  // The thread_local visited set must resize correctly between graphs.
  const Graph small = MakePathGraph(3, 1.0);
  const Graph large = MakePathGraph(300, 1.0);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateIC(small, seeds, &rng), 3u);
  EXPECT_EQ(SimulateIC(large, seeds, &rng), 300u);
  EXPECT_EQ(SimulateIC(small, seeds, &rng), 3u);
}

}  // namespace
}  // namespace atpm
