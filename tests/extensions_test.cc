// Tests for the paper's extension features: the dynamic C2-threshold
// ADDATP variant (Discussion after Theorem 2) and the randomized adaptive
// double greedy.
#include <gtest/gtest.h>

#include <vector>

#include "core/addatp.h"
#include "core/adg.h"
#include "diffusion/spread_oracle.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          std::vector<double> target_costs) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (size_t i = 0; i < problem.targets.size(); ++i) {
    problem.costs[problem.targets[i]] = target_costs[i];
  }
  return problem;
}

AdaptiveEnvironment MakeEnv(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  return AdaptiveEnvironment(Realization::Sample(g, &rng));
}

TEST(DynamicThresholdTest, CompletesAndSelectsProfitableNodes) {
  const Graph g = MakeStarGraph(60, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {5.0});
  AddAtpOptions options;
  options.dynamic_threshold = true;
  options.dynamic_epsilon = 0.1;
  AddAtpPolicy policy(options);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  Rng rng(2);
  Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().seeds.size(), 1u);
  EXPECT_DOUBLE_EQ(run.value().realized_profit, 55.0);
}

TEST(DynamicThresholdTest, UsesNoMoreSamplesThanFixedOnBorderlineTail) {
  // A profitable first node builds slack; the borderline second node can
  // then stop at a raised bar, spending at most as many samples as the
  // fixed-threshold run.
  GraphBuilder builder;
  for (NodeId v = 2; v < 52; ++v) builder.AddEdge(0, v, 1.0);  // hub
  builder.AddEdge(1, 52, 0.5);  // borderline node: spread 1.5, cost 1.5
  Graph g = builder.Build().value();

  ProfitProblem problem = MakeProblem(g, {0, 1}, {5.0, 1.5});

  uint64_t fixed_rr = 0;
  uint64_t dynamic_rr = 0;
  {
    AddAtpOptions options;
    options.fail_on_budget_exhausted = false;
    AddAtpPolicy policy(options);
    AdaptiveEnvironment env = MakeEnv(g, 3);
    Rng rng(4);
    fixed_rr = policy.Run(problem, &env, &rng).value().total_rr_sets;
  }
  {
    AddAtpOptions options;
    options.fail_on_budget_exhausted = false;
    options.dynamic_threshold = true;
    options.dynamic_epsilon = 0.2;
    AddAtpPolicy policy(options);
    AdaptiveEnvironment env = MakeEnv(g, 3);
    Rng rng(4);
    dynamic_rr = policy.Run(problem, &env, &rng).value().total_rr_sets;
  }
  EXPECT_LE(dynamic_rr, fixed_rr);
}

TEST(DynamicThresholdTest, NoSlackFallsBackToFixedBar) {
  // With zero accumulated profit, the dynamic bar is max(1, negative) = 1,
  // i.e. the fixed Algorithm-3 behaviour; decisions must match.
  const Graph g = MakeStarGraph(40, 0.4);
  ProfitProblem problem = MakeProblem(g, {0}, {2.0});
  AddAtpOptions fixed;
  AddAtpOptions dynamic;
  dynamic.dynamic_threshold = true;
  AddAtpPolicy fixed_policy(fixed);
  AddAtpPolicy dynamic_policy(dynamic);

  AdaptiveEnvironment env_a = MakeEnv(g, 5);
  AdaptiveEnvironment env_b = MakeEnv(g, 5);
  Rng rng_a(6);
  Rng rng_b(6);
  Result<AdaptiveRunResult> a = fixed_policy.Run(problem, &env_a, &rng_a);
  Result<AdaptiveRunResult> b = dynamic_policy.Run(problem, &env_b, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seeds, b.value().seeds);
}

TEST(RandomizedAdgTest, NeedsRng) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {1.0});
  auto oracle = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(oracle.ok());
  AdgPolicy policy(oracle.value().get(), /*randomized=*/true);
  AdaptiveEnvironment env = MakeEnv(g, 1);
  EXPECT_FALSE(policy.Run(problem, &env, nullptr).ok());
}

TEST(RandomizedAdgTest, AlwaysKeepsDominantNode) {
  // rho_r < 0 for a cheap hub, so the keep probability is 1.
  const Graph g = MakeStarGraph(10, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {0.5});
  auto oracle = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(oracle.ok());
  AdgPolicy policy(oracle.value().get(), /*randomized=*/true);
  for (int t = 0; t < 10; ++t) {
    AdaptiveEnvironment env = MakeEnv(g, 100 + t);
    Rng rng(t);
    Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value().seeds.size(), 1u);
  }
}

TEST(RandomizedAdgTest, NameReflectsVariant) {
  const Graph g = MakePathGraph(3, 0.5);
  auto oracle = ExactSpreadOracle::Create(g);
  ASSERT_TRUE(oracle.ok());
  AdgPolicy deterministic(oracle.value().get());
  AdgPolicy randomized(oracle.value().get(), true);
  EXPECT_EQ(deterministic.name(), "ADG");
  EXPECT_EQ(randomized.name(), "ADG-R");
}

TEST(RandomizedAdgTest, MixedDecisionsOnBorderlineNode) {
  // Twin hubs over the same 8 leaves at p = 1, cost 4 each. For the first
  // hub: rho_f = 9 - 4 = 5 and rho_r = 4 - E[I(u | twin)] = 4 - 1 = 3, so
  // the randomized rule keeps it with probability 5/8; decisions must be
  // mixed across RNG streams.
  GraphBuilder builder;
  for (NodeId v = 2; v < 10; ++v) {
    builder.AddEdge(0, v, 1.0);
    builder.AddEdge(1, v, 1.0);
  }
  Graph g = builder.Build().value();
  ProfitProblem problem = MakeProblem(g, {0, 1}, {4.0, 4.0});
  auto oracle = ExactSpreadOracle::Create(g, 32);
  ASSERT_TRUE(oracle.ok());
  AdgPolicy policy(oracle.value().get(), true);
  int first_kept = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    AdaptiveEnvironment env = MakeEnv(g, 500);  // same world each time
    Rng rng(t);
    Result<AdaptiveRunResult> run = policy.Run(problem, &env, &rng);
    ASSERT_TRUE(run.ok());
    first_kept += (!run.value().seeds.empty() && run.value().seeds[0] == 0)
                      ? 1
                      : 0;
  }
  // Expectation 0.625 * 60 = 37.5; allow wide binomial slack.
  EXPECT_GT(first_kept, 20);
  EXPECT_LT(first_kept, 55);
}

}  // namespace
}  // namespace atpm
