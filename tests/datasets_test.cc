#include "bench_util/datasets.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace atpm {
namespace {

TEST(DatasetsTest, StandardNamesMatchTable2Order) {
  const std::vector<std::string> names = StandardDatasetNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "NetHEPT");
  EXPECT_EQ(names[1], "Epinions");
  EXPECT_EQ(names[2], "DBLP");
  EXPECT_EQ(names[3], "LiveJournal");
}

TEST(DatasetsTest, BuildsAllStandardDatasetsAtSmallScale) {
  for (const std::string& name : StandardDatasetNames()) {
    Result<BenchDataset> ds = BuildDataset(name, 0.05, 1);
    ASSERT_TRUE(ds.ok()) << name << ": " << ds.status().ToString();
    EXPECT_GT(ds.value().graph.num_nodes(), 100u) << name;
    EXPECT_GT(ds.value().graph.num_edges(), 100u) << name;
  }
}

TEST(DatasetsTest, TypesMatchTable2) {
  EXPECT_EQ(BuildDataset("NetHEPT", 0.05, 1).value().type, "undirected");
  EXPECT_EQ(BuildDataset("Epinions", 0.05, 1).value().type, "directed");
  EXPECT_EQ(BuildDataset("DBLP", 0.05, 1).value().type, "undirected");
  EXPECT_EQ(BuildDataset("LiveJournal", 0.05, 1).value().type, "directed");
}

TEST(DatasetsTest, WeightedCascadeApplied) {
  Result<BenchDataset> ds = BuildDataset("HepMini", 0.5, 1);
  ASSERT_TRUE(ds.ok());
  const Graph& g = ds.value().graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto probs = g.InProbs(v);
    for (float p : probs) {
      EXPECT_NEAR(p, 1.0f / static_cast<float>(g.InDegree(v)), 1e-6);
    }
  }
}

TEST(DatasetsTest, ScaleShrinksGraph) {
  Result<BenchDataset> big = BuildDataset("NetHEPT", 1.0, 1);
  Result<BenchDataset> small = BuildDataset("NetHEPT", 0.1, 1);
  ASSERT_TRUE(big.ok() && small.ok());
  EXPECT_GT(big.value().graph.num_nodes(), small.value().graph.num_nodes());
}

TEST(DatasetsTest, DeterministicGivenSeed) {
  Result<BenchDataset> a = BuildDataset("Epinions", 0.05, 42);
  Result<BenchDataset> b = BuildDataset("Epinions", 0.05, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().graph.num_nodes(), b.value().graph.num_nodes());
  EXPECT_EQ(a.value().graph.num_edges(), b.value().graph.num_edges());
}

TEST(DatasetsTest, UnknownNameIsNotFound) {
  Result<BenchDataset> ds = BuildDataset("Twitter", 0.5, 1);
  ASSERT_FALSE(ds.ok());
  EXPECT_TRUE(ds.status().IsNotFound());
}

TEST(DatasetsTest, RejectsBadScale) {
  EXPECT_FALSE(BuildDataset("NetHEPT", 0.0, 1).ok());
  EXPECT_FALSE(BuildDataset("NetHEPT", 1.5, 1).ok());
}

TEST(DatasetsTest, LiveJournalIsLargest) {
  const double scale = 0.3;
  uint64_t lj_edges =
      BuildDataset("LiveJournal", scale, 1).value().graph.num_edges();
  for (const char* name : {"NetHEPT", "Epinions", "DBLP"}) {
    EXPECT_GT(lj_edges,
              BuildDataset(name, scale, 1).value().graph.num_edges())
        << name;
  }
}

TEST(BenchEnvTest, ScaleParsesAndClamps) {
  setenv("ATPM_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.5);
  setenv("ATPM_BENCH_SCALE", "7.0", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  setenv("ATPM_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.2);  // default
  unsetenv("ATPM_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.2);
}

TEST(BenchEnvTest, RealizationsParsesAndClamps) {
  setenv("ATPM_BENCH_REALIZATIONS", "20", 1);
  EXPECT_EQ(BenchRealizationsFromEnv(), 20u);
  setenv("ATPM_BENCH_REALIZATIONS", "0", 1);
  EXPECT_EQ(BenchRealizationsFromEnv(), 1u);
  unsetenv("ATPM_BENCH_REALIZATIONS");
  EXPECT_EQ(BenchRealizationsFromEnv(), 2u);
}

TEST(BenchEnvTest, KMaxAndGrid) {
  setenv("ATPM_BENCH_K_MAX", "100", 1);
  EXPECT_EQ(BenchKMaxFromEnv(), 100u);
  std::vector<uint32_t> grid = BenchSeedGrid(1000);
  ASSERT_EQ(grid.size(), 4u);  // 10, 25, 50, 100
  EXPECT_EQ(grid.back(), 100u);
  // The dataset limit truncates further.
  grid = BenchSeedGrid(30);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.back(), 25u);
  unsetenv("ATPM_BENCH_K_MAX");
}

TEST(BenchEnvTest, GridNeverEmpty) {
  setenv("ATPM_BENCH_K_MAX", "5", 1);
  std::vector<uint32_t> grid = BenchSeedGrid(1000);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0], 5u);
  unsetenv("ATPM_BENCH_K_MAX");
}

TEST(BenchEnvTest, ThreadsParses) {
  setenv("ATPM_BENCH_THREADS", "4", 1);
  EXPECT_EQ(BenchThreadsFromEnv(), 4u);
  unsetenv("ATPM_BENCH_THREADS");
  EXPECT_EQ(BenchThreadsFromEnv(), 8u);
}

TEST(StoreCacheTest, PathEmptyWithoutEnvAndKeyedWithIt) {
  unsetenv("ATPM_BENCH_STORE_DIR");
  EXPECT_EQ(DatasetStorePath("NetHEPT", 0.05, 1), "");
  setenv("ATPM_BENCH_STORE_DIR", "/tmp/atpm_cache", 1);
  const std::string path = DatasetStorePath("NetHEPT", 0.05, 7);
  EXPECT_NE(path.find("/tmp/atpm_cache/NetHEPT"), std::string::npos);
  EXPECT_NE(path.find("s0.05"), std::string::npos);
  EXPECT_NE(path.find("seed7"), std::string::npos);
  unsetenv("ATPM_BENCH_STORE_DIR");
}

TEST(StoreCacheTest, SecondBuildMapsFromCacheIdentically) {
  const std::string dir = ::testing::TempDir() + "/atpm_ds_cache_" +
                          std::to_string(::getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  setenv("ATPM_BENCH_STORE_DIR", dir.c_str(), 1);
  Result<BenchDataset> first = BuildDataset("HepMini", 0.05, 3);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().graph.is_mapped());  // built, then packed

  Result<BenchDataset> second = BuildDataset("HepMini", 0.05, 3);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.value().graph.is_mapped());  // served from the store

  const Graph& a = first.value().graph;
  const Graph& b = second.value().graph;
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto an = a.InNeighbors(v);
    const auto bn = b.InNeighbors(v);
    ASSERT_EQ(an.size(), bn.size()) << v;
    for (uint32_t j = 0; j < an.size(); ++j) {
      ASSERT_EQ(an[j], bn[j]);
      ASSERT_EQ(a.InProbs(v)[j], b.InProbs(v)[j]);
    }
  }
  unsetenv("ATPM_BENCH_STORE_DIR");
  std::remove((dir + "/HepMini_s0.05_seed3_v1.atpm").c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace atpm
