#include "core/double_greedy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

ProfitProblem MakeProblem(const Graph& g, std::vector<NodeId> targets,
                          std::vector<double> target_costs) {
  ProfitProblem problem;
  problem.graph = &g;
  problem.targets = std::move(targets);
  problem.costs.assign(g.num_nodes(), 0.0);
  for (size_t i = 0; i < problem.targets.size(); ++i) {
    problem.costs[problem.targets[i]] = target_costs[i];
  }
  return problem;
}

std::unique_ptr<ExactSpreadOracle> MakeExact(const Graph& g) {
  auto oracle = ExactSpreadOracle::Create(g);
  EXPECT_TRUE(oracle.ok());
  return std::move(oracle).value();
}

// Exhaustive optimum of the nonadaptive TPM instance.
double BruteForceOptProfit(const ProfitProblem& problem,
                           SpreadOracle* oracle) {
  const uint32_t k = problem.k();
  double best = 0.0;  // empty set has profit 0
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    std::vector<NodeId> seeds;
    for (uint32_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) seeds.push_back(problem.targets[i]);
    }
    best = std::max(best, OracleProfit(problem, oracle, seeds));
  }
  return best;
}

TEST(DoubleGreedyTest, KeepsCheapInfluentialNode) {
  // Hub with huge spread and tiny cost must be kept.
  const Graph g = MakeStarGraph(10, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {0.5});
  auto oracle = MakeExact(g);
  Result<DoubleGreedyResult> result = RunDoubleGreedy(problem, oracle.get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().seeds.size(), 1u);
  EXPECT_EQ(result.value().seeds[0], 0u);
  EXPECT_NEAR(result.value().expected_profit, 10.0 - 0.5, 1e-6);
}

TEST(DoubleGreedyTest, DropsOverpricedNode) {
  const Graph g = MakeStarGraph(10, 0.0);  // spread of any node is 1
  ProfitProblem problem = MakeProblem(g, {0, 3}, {5.0, 5.0});
  auto oracle = MakeExact(g);
  Result<DoubleGreedyResult> result = RunDoubleGreedy(problem, oracle.get());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().seeds.empty());
  EXPECT_DOUBLE_EQ(result.value().expected_profit, 0.0);
}

TEST(DoubleGreedyTest, PaperFigure1NonadaptiveExample) {
  // Our reconstruction of Fig. 1 reproduces the paper's printed numbers:
  // ρ(T) = E[I(T)] − c(T) = 6.16 − 4.5 = 1.66 for T = {v1, v2, v6} at
  // uniform cost 1.5. (The figure's full topology is not printed, so the
  // paper's side claim that T itself is optimal is not asserted here.)
  const Graph g = MakePaperFigure1Graph();
  ProfitProblem problem = MakeProblem(g, {0, 1, 5}, {1.5, 1.5, 1.5});
  auto oracle = MakeExact(g);

  EXPECT_NEAR(OracleProfit(problem, oracle.get(), problem.targets), 1.66,
              0.01);

  const double opt = BruteForceOptProfit(problem, oracle.get());
  Result<DoubleGreedyResult> result = RunDoubleGreedy(problem, oracle.get());
  ASSERT_TRUE(result.ok());
  // Double greedy must do at least as well as seeding all of T, and at
  // least a third of the exhaustive optimum.
  EXPECT_GE(result.value().expected_profit, 1.66 - 0.01);
  EXPECT_GE(result.value().expected_profit, opt / 3.0 - 1e-9);
}

TEST(DoubleGreedyTest, ValidatesProblem) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {0, 0}, {1.0, 1.0});  // duplicate
  auto oracle = MakeExact(g);
  EXPECT_FALSE(RunDoubleGreedy(problem, oracle.get()).ok());
}

TEST(DoubleGreedyTest, RandomizedNeedsRng) {
  const Graph g = MakePathGraph(3, 0.5);
  ProfitProblem problem = MakeProblem(g, {0}, {1.0});
  auto oracle = MakeExact(g);
  DoubleGreedyOptions options;
  options.randomized = true;
  EXPECT_FALSE(RunDoubleGreedy(problem, oracle.get(), options).ok());
  Rng rng(1);
  EXPECT_TRUE(RunDoubleGreedy(problem, oracle.get(), options, &rng).ok());
}

TEST(DoubleGreedyTest, RandomizedAlwaysKeepsDominantNode) {
  // z- < 0 for a profitable hub, so the keep probability is 1.
  const Graph g = MakeStarGraph(8, 1.0);
  ProfitProblem problem = MakeProblem(g, {0}, {0.5});
  auto oracle = MakeExact(g);
  DoubleGreedyOptions options;
  options.randomized = true;
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    Result<DoubleGreedyResult> result =
        RunDoubleGreedy(problem, oracle.get(), options, &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().seeds.size(), 1u);
  }
}

// Property sweep: deterministic double greedy achieves at least OPT/3 on
// exhaustively checkable instances with rho(T) >= 0 (Buchbinder et al.).
class DoubleGreedyApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(DoubleGreedyApproximationTest, AtLeastThirdOfBruteForceOpt) {
  const int seed = GetParam();
  Rng rng(seed);
  // Random small graph (<= 10 edges so the exact oracle enumerates fast).
  GraphBuilder builder;
  builder.ReserveNodes(6);
  for (int e = 0; e < 9; ++e) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(6));
    NodeId v = static_cast<NodeId>(rng.UniformInt(6));
    if (u == v) continue;
    builder.AddEdge(u, v, 0.2 + 0.6 * rng.UniformDouble());
  }
  Graph g = builder.Build().value();
  auto oracle = MakeExact(g);

  // Random target set and costs; keep rho(T) >= 0 (the paper's standing
  // assumption) by scaling costs below E[I(T)].
  std::vector<NodeId> targets = {0, 1, 2, 3};
  std::vector<NodeId> tvec(targets.begin(), targets.end());
  const double spread_t = oracle->ExpectedSpread(tvec, nullptr);
  std::vector<double> costs;
  double total = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    costs.push_back(rng.UniformDouble());
    total += costs.back();
  }
  for (double& c : costs) c *= 0.9 * spread_t / total;

  ProfitProblem problem = MakeProblem(g, targets, costs);
  ASSERT_TRUE(problem.Validate().ok());
  ASSERT_GE(OracleProfit(problem, oracle.get(), problem.targets), 0.0);

  const double opt = BruteForceOptProfit(problem, oracle.get());
  Result<DoubleGreedyResult> result = RunDoubleGreedy(problem, oracle.get());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().expected_profit, opt / 3.0 - 1e-9)
      << "opt=" << opt;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DoubleGreedyApproximationTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace atpm
