#!/usr/bin/env bash
# Static-analysis entry point: the project-invariant linter (tools/atpm_lint)
# plus clang-tidy over the src/ tree. Used by `cmake --build <dir> --target
# lint`, the CI lint job, and humans.
#
# usage: scripts/run_lint.sh [build-dir]
#
#   build-dir   directory holding compile_commands.json (default: build).
#               clang-tidy is skipped with a notice when the binary or the
#               compilation database is absent — atpm_lint always runs, so
#               the invariant rules gate every environment.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
PYTHON="${ATPM_LINT_PYTHON:-python3}"

status=0

echo "== atpm_lint (project invariants) =="
"$PYTHON" "$ROOT/tools/atpm_lint/atpm_lint.py" --root "$ROOT" || status=$?

echo "== clang-tidy (bugprone / performance / concurrency baseline) =="
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (apt install clang-tidy)"
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "no $BUILD_DIR/compile_commands.json; configure with cmake first" \
       "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default); skipping"
else
  # The src/ tree is the lint surface: tests and bench lean on gtest /
  # google-benchmark macros that are not clean under this check set.
  mapfile -t SRC_FILES < <(find "$ROOT/src" -name '*.cc' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "${SRC_FILES[@]}" || status=$?
  else
    for f in "${SRC_FILES[@]}"; do
      "$CLANG_TIDY" -quiet -p "$BUILD_DIR" "$f" || status=$?
    done
  fi
fi

if [ "$status" -ne 0 ]; then
  echo "run_lint.sh: FAILED (findings above)" >&2
else
  echo "run_lint.sh: clean"
fi
exit "$status"
