#!/usr/bin/env python3
"""Diff fresh kernel benchmark JSON against the checked-in baselines.

Guards the geometric-jump substrate's two headline numbers:

  * draws_per_edge — RNG draws per edge examined, a deterministic counter
    (same graph, same seeds on every machine). Compared directly per
    benchmark; a fresh value more than --tolerance above baseline fails.
  * wall-clock — machine-dependent, so never compared across machines
    directly. Instead the *ratio* between paired variants measured in the
    same run (jump:1 vs jump:0 time, batched:1 vs batched:0 throughput) is
    compared against the baseline's ratio, with the looser
    --time-tolerance. The batched-generation speedup additionally has a
    hard acceptance floor (>= 1.3x, --batch-floor).

Inputs are the google-benchmark JSON written by
  micro_substrates --benchmark_filter=Kernel  (BENCH_kernel.json)
the custom end-to-end record written by fig9_sample_scaling
  (BENCH_kernel_e2e.json),
and the graph-store load-path record written by graph_store_scaling
  (BENCH_graphstore.json) — checked for the mapped-vs-built RR pool hash
  match, a hard warm-mmap load speedup floor (--warm-load-floor, default
  10x over parse-and-build), a relative speedup guard vs baseline, and
  byte-identical store sizes (layout drift detector).
The observability-overhead pair written by
  micro_substrates --benchmark_filter=ObservabilityOverhead
  (BENCH_obs.json) is checked same-run only (--fresh-obs, no baseline):
  enabling metrics+tracing must cost <= --obs-tolerance (2%) on the
  pool-fill hot path.

Stdlib only; exit 0 = no regression, 1 = regression or malformed input.
"""

import argparse
import json
import re
import sys

EPS = 1e-9


class Checker:
    def __init__(self):
        self.failures = []
        self.checks = 0

    def expect(self, ok, message):
        self.checks += 1
        status = "ok  " if ok else "FAIL"
        print(f"  [{status}] {message}")
        if not ok:
            self.failures.append(message)


def load_benchmarks(path):
    """google-benchmark JSON -> {name: entry}, aggregates excluded."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = entry
    return out


def pair_key(name, knob):
    """BM_Foo/weighting:1/jump:0 -> (BM_Foo/weighting:1, 0) for knob=jump."""
    match = re.search(rf"/{knob}:(\d+)", name)
    if match is None:
        return None
    return name.replace(f"/{knob}:{match.group(1)}", ""), int(match.group(1))


def collect_pairs(benchmarks, knob):
    """{family: {variant_index: entry}} for benches carrying `knob`."""
    pairs = {}
    for name, entry in benchmarks.items():
        keyed = pair_key(name, knob)
        if keyed is None:
            continue
        family, variant = keyed
        pairs.setdefault(family, {})[variant] = entry
    return {f: v for f, v in pairs.items() if len(v) == 2}


def check_kernel(check, fresh, baseline, tolerance, time_tolerance,
                 batch_floor):
    print(f"BENCH_kernel: {len(baseline)} baseline series")
    missing = sorted(set(baseline) - set(fresh))
    check.expect(not missing,
                 f"all baseline benchmarks present (missing: {missing})"
                 if missing else "all baseline benchmarks present")

    # Deterministic counter: draws per edge examined, compared directly.
    for name in sorted(set(baseline) & set(fresh)):
        base_draws = baseline[name].get("draws_per_edge")
        fresh_draws = fresh[name].get("draws_per_edge")
        if base_draws is None or fresh_draws is None:
            continue
        bound = base_draws * (1.0 + tolerance) + EPS
        check.expect(
            fresh_draws <= bound,
            f"{name}: draws_per_edge {fresh_draws:.4f} "
            f"<= {base_draws:.4f} * (1+{tolerance:g})")

    # Same-run time ratio jump/per-edge per family, vs the baseline ratio.
    fresh_jump = collect_pairs(fresh, "jump")
    for family, base_pair in sorted(collect_pairs(baseline, "jump").items()):
        if family not in fresh_jump:
            continue  # absence already reported above
        fresh_pair = fresh_jump[family]
        base_ratio = base_pair[1]["cpu_time"] / max(base_pair[0]["cpu_time"],
                                                    EPS)
        ratio = fresh_pair[1]["cpu_time"] / max(fresh_pair[0]["cpu_time"],
                                                EPS)
        bound = base_ratio * (1.0 + time_tolerance)
        check.expect(
            ratio <= bound,
            f"{family}: jump/per-edge time ratio {ratio:.3f} "
            f"<= {base_ratio:.3f} * (1+{time_tolerance:g})")

    # Batched-generation throughput: relative guard + hard acceptance floor.
    fresh_batch = collect_pairs(fresh, "batched")
    for family, base_pair in sorted(
            collect_pairs(baseline, "batched").items()):
        if family not in fresh_batch:
            continue
        fresh_pair = fresh_batch[family]
        base_speedup = (base_pair[1]["items_per_second"] /
                        max(base_pair[0]["items_per_second"], EPS))
        speedup = (fresh_pair[1]["items_per_second"] /
                   max(fresh_pair[0]["items_per_second"], EPS))
        check.expect(
            speedup >= batch_floor,
            f"{family}: batched speedup {speedup:.2f}x >= "
            f"{batch_floor:g}x floor")
        bound = base_speedup * (1.0 - time_tolerance)
        check.expect(
            speedup >= bound,
            f"{family}: batched speedup {speedup:.2f}x >= "
            f"{base_speedup:.2f}x * (1-{time_tolerance:g})")


def check_e2e(check, fresh, baseline, tolerance, time_tolerance):
    fresh_hatp = fresh.get("hatp", {})
    base_hatp = baseline.get("hatp", {})
    print(f"BENCH_kernel_e2e: benchmark={fresh.get('benchmark')}")

    # Per-kernel draws/edge are deterministic at fixed config; the jump
    # kernel's figure is the one the substrate exists to keep low.
    for kernel in ("geometric-jump", "per-edge"):
        base_rec = base_hatp.get(kernel)
        fresh_rec = fresh_hatp.get(kernel)
        if base_rec is None or fresh_rec is None:
            check.expect(False, f"e2e record for '{kernel}' present")
            continue
        base_draws = base_rec["draws_per_edge"]
        fresh_draws = fresh_rec["draws_per_edge"]
        bound = base_draws * (1.0 + tolerance) + EPS
        check.expect(
            fresh_draws <= bound,
            f"e2e {kernel}: draws_per_edge {fresh_draws:.4f} "
            f"<= {base_draws:.4f} * (1+{tolerance:g})")

    base_ratio = base_hatp.get("draws_per_edge_ratio")
    fresh_ratio = fresh_hatp.get("draws_per_edge_ratio")
    if base_ratio is not None and fresh_ratio is not None:
        bound = base_ratio * (1.0 - tolerance)
        check.expect(
            fresh_ratio >= bound,
            f"e2e draws_per_edge_ratio {fresh_ratio:.1f}x >= "
            f"{base_ratio:.1f}x * (1-{tolerance:g})")

    # Wall-clock speedup is machine-dependent: same-run ratio, loose bound,
    # and never below break-even.
    base_speedup = base_hatp.get("kernel_speedup")
    fresh_speedup = fresh_hatp.get("kernel_speedup")
    if base_speedup is not None and fresh_speedup is not None:
        bound = max(base_speedup * (1.0 - time_tolerance), 1.0)
        check.expect(
            fresh_speedup >= bound,
            f"e2e kernel_speedup {fresh_speedup:.2f}x >= "
            f"max({base_speedup:.2f}x * (1-{time_tolerance:g}), 1.0)")


def check_graphstore(check, fresh, baseline, time_tolerance, warm_floor):
    print(f"BENCH_graphstore: scale={fresh.get('scale')}")
    if fresh.get("scale") != baseline.get("scale"):
        check.expect(
            False,
            f"graphstore scale {fresh.get('scale')} matches baseline "
            f"{baseline.get('scale')} (re-snapshot the baseline at the CI "
            "scale)")
        return
    base_rows = {row["dataset"]: row for row in baseline.get("datasets", [])}
    fresh_rows = {row["dataset"]: row for row in fresh.get("datasets", [])}
    missing = sorted(set(base_rows) - set(fresh_rows))
    check.expect(not missing,
                 f"all baseline datasets present (missing: {missing})"
                 if missing else "all baseline datasets present")

    for name in sorted(set(base_rows) & set(fresh_rows)):
        base, cur = base_rows[name], fresh_rows[name]
        # Functional indistinguishability is binary: the mapped graph must
        # reproduce the built graph's fixed-seed RR pool bit for bit.
        check.expect(cur.get("pool_hash_match") is True,
                     f"{name}: mapped RR pool hash matches built graph")
        # The store's reason to exist: warm mmap load beats parse-and-build
        # by a hard floor, plus a relative guard against the baseline (both
        # sides of the ratio are measured in the same run, so the ratio is
        # machine-comparable the way raw times are not).
        speedup = cur.get("warm_speedup", 0.0)
        check.expect(
            speedup >= warm_floor,
            f"{name}: warm-load speedup {speedup:.1f}x >= "
            f"{warm_floor:g}x floor")
        base_speedup = base.get("warm_speedup")
        if base_speedup is not None:
            bound = base_speedup * (1.0 - time_tolerance)
            check.expect(
                speedup >= bound,
                f"{name}: warm-load speedup {speedup:.1f}x >= "
                f"{base_speedup:.1f}x * (1-{time_tolerance:g})")
        # Deterministic size guard: the same graph must pack to the same
        # number of bytes (layout drift shows up here before anything else).
        check.expect(
            cur.get("file_bytes") == base.get("file_bytes"),
            f"{name}: store file_bytes {cur.get('file_bytes')} == baseline "
            f"{base.get('file_bytes')}")


def check_obs(check, fresh, obs_tolerance, obs_slack_ns):
    """Observability-overhead guard: enabled vs disabled pool fill.

    Both variants come from the same run (BM_ObservabilityOverhead/obs:0
    and /obs:1), so the ratio is machine-comparable and needs no checked-in
    baseline. The bar is the ISSUE acceptance bound: enabling the full
    metrics+tracing layer costs <= obs_tolerance (2%) on the sampling hot
    path, with a small absolute slack so near-zero timings on fast machines
    do not flake the relative bound.
    """
    pairs = collect_pairs(fresh, "obs")
    print(f"BENCH_obs: {len(pairs)} enabled/disabled pair(s)")
    check.expect(pairs, "BM_ObservabilityOverhead obs:0/obs:1 pair present")
    for family, pair in sorted(pairs.items()):
        disabled = pair[0]["real_time"]
        enabled = pair[1]["real_time"]
        bound = disabled * (1.0 + obs_tolerance) + obs_slack_ns
        check.expect(
            enabled <= bound,
            f"{family}: enabled real_time {enabled:.0f}ns <= "
            f"{disabled:.0f}ns * (1+{obs_tolerance:g}) + {obs_slack_ns:g}ns")


def main():
    parser = argparse.ArgumentParser(
        description="Fail CI when the kernel benchmarks regress vs the "
                    "checked-in baselines.")
    parser.add_argument("--fresh", help="BENCH_kernel.json from this run")
    parser.add_argument("--baseline",
                        help="checked-in baseline BENCH_kernel.json")
    parser.add_argument("--fresh-e2e",
                        help="BENCH_kernel_e2e.json from this run")
    parser.add_argument("--baseline-e2e",
                        help="checked-in baseline BENCH_kernel_e2e.json")
    parser.add_argument("--fresh-graphstore",
                        help="BENCH_graphstore.json from this run")
    parser.add_argument("--baseline-graphstore",
                        help="checked-in baseline BENCH_graphstore.json")
    parser.add_argument("--fresh-obs",
                        help="BENCH_obs.json from this run (same-run "
                             "enabled/disabled pair, no baseline needed)")
    parser.add_argument("--obs-tolerance", type=float, default=0.02,
                        help="max relative overhead of enabled "
                             "observability on the pool-fill hot path "
                             "(default 0.02)")
    parser.add_argument("--obs-slack-ns", type=float, default=5e4,
                        help="absolute slack for the observability ratio "
                             "on near-zero timings (default 50000 ns)")
    parser.add_argument("--warm-load-floor", type=float, default=10.0,
                        help="hard minimum warm-mmap vs parse-and-build "
                             "load speedup (default 10.0)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative slack for deterministic draw "
                             "counters (default 0.20)")
    parser.add_argument("--time-tolerance", type=float, default=0.50,
                        help="relative slack for same-run wall-clock "
                             "ratios, which are noisy on shared CI "
                             "machines (default 0.50)")
    parser.add_argument("--batch-floor", type=float, default=1.3,
                        help="hard minimum batched-generation speedup "
                             "(default 1.3)")
    args = parser.parse_args()
    if (not args.fresh and not args.fresh_e2e and not args.fresh_graphstore
            and not args.fresh_obs):
        parser.error("nothing to check: pass --fresh, --fresh-e2e, "
                     "--fresh-graphstore and/or --fresh-obs")
    if bool(args.fresh) != bool(args.baseline):
        parser.error("--fresh and --baseline go together")
    if bool(args.fresh_e2e) != bool(args.baseline_e2e):
        parser.error("--fresh-e2e and --baseline-e2e go together")
    if bool(args.fresh_graphstore) != bool(args.baseline_graphstore):
        parser.error("--fresh-graphstore and --baseline-graphstore go "
                     "together")

    check = Checker()
    if args.fresh:
        check_kernel(check, load_benchmarks(args.fresh),
                     load_benchmarks(args.baseline), args.tolerance,
                     args.time_tolerance, args.batch_floor)
    if args.fresh_e2e:
        with open(args.fresh_e2e) as f:
            fresh_e2e = json.load(f)
        with open(args.baseline_e2e) as f:
            baseline_e2e = json.load(f)
        check_e2e(check, fresh_e2e, baseline_e2e, args.tolerance,
                  args.time_tolerance)
    if args.fresh_graphstore:
        with open(args.fresh_graphstore) as f:
            fresh_store = json.load(f)
        with open(args.baseline_graphstore) as f:
            baseline_store = json.load(f)
        check_graphstore(check, fresh_store, baseline_store,
                         args.time_tolerance, args.warm_load_floor)
    if args.fresh_obs:
        check_obs(check, load_benchmarks(args.fresh_obs),
                  args.obs_tolerance, args.obs_slack_ns)

    if check.failures:
        print(f"\n{len(check.failures)}/{check.checks} checks FAILED")
        return 1
    print(f"\nall {check.checks} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
