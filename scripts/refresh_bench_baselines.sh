#!/usr/bin/env bash
# Regenerates the checked-in kernel benchmark baselines from a Release
# build. Run after a kernel change that legitimately moves draw counters
# or variant ratios, then commit the refreshed bench/baselines/ files.
#
# Usage: scripts/refresh_bench_baselines.sh [build_dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
baselines="$repo_root/bench/baselines"

if [[ ! -x "$build_dir/micro_substrates" ]]; then
  echo "error: $build_dir/micro_substrates not built (need a Release build)" >&2
  exit 1
fi
mkdir -p "$baselines"

"$build_dir/micro_substrates" \
  --benchmark_filter='Kernel' \
  --benchmark_min_time=0.05 \
  --benchmark_out="$baselines/BENCH_kernel.json" \
  --benchmark_out_format=json

if ! grep -q '"atpm_build_type": "release"' "$baselines/BENCH_kernel.json"; then
  echo "error: benchmarks were not built Release; baseline rejected" >&2
  exit 1
fi

# Same scaled-down configuration as the CI fig9 smoke step.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
(cd "$tmp" && \
  ATPM_BENCH_SCALE=0.02 \
  ATPM_BENCH_REALIZATIONS=1 \
  ATPM_BENCH_K_MAX=10 \
  ATPM_BENCH_THREADS=2 \
  ATPM_BENCH_KERNEL_OUT="$baselines/BENCH_kernel_e2e.json" \
  "$build_dir/fig9_sample_scaling")

echo "refreshed $baselines/BENCH_kernel.json and BENCH_kernel_e2e.json"
