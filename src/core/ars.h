#ifndef ATPM_CORE_ARS_H_
#define ATPM_CORE_ARS_H_

#include <vector>

#include "core/policy.h"

namespace atpm {

/// ARS — Adaptive Random Set (the paper's adaptive extension of Feige et
/// al.'s RS algorithm). Examines targets in order; every still-inactive
/// candidate is seeded with probability 1/2 regardless of quality, and its
/// realized activations are observed and removed from the residual graph.
/// RS achieves 1/4 of the optimum for nonnegative nonsymmetric USM; ARS is
/// the quality floor in the paper's profit plots.
class ArsPolicy final : public AdaptivePolicy {
 public:
  ArsPolicy() = default;

  std::string_view name() const override { return "ARS"; }

  Result<AdaptiveRunResult> Run(const ProfitProblem& problem,
                                AdaptiveEnvironment* env, Rng* rng) override;
};

/// RS — nonadaptive random set: keeps each target independently with
/// probability 1/2.
std::vector<NodeId> RunRandomSet(const ProfitProblem& problem, Rng* rng);

}  // namespace atpm

#endif  // ATPM_CORE_ARS_H_
