#ifndef ATPM_CORE_ADDATP_H_
#define ATPM_CORE_ADDATP_H_

#include "core/policy.h"
#include "diffusion/diffusion_model.h"
#include "rris/sampling_engine.h"

namespace atpm {

/// Options for AddAtpPolicy.
struct AddAtpOptions {
  /// Diffusion model for spread estimation; must match the model the
  /// environment's realization was sampled under.
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Initial additive spread error n_i * ζ_0 (the paper sets n_i ζ_0 = 64).
  /// ζ_0 is derived per iteration as initial_spread_error / n_i, clamped to
  /// (1/n_i, 1/2].
  double initial_spread_error = 64.0;
  /// Shared sampling knobs: backend, threads, the per-decision RR budget,
  /// and round batching. ADDATP's additive-only error needs Θ(n_i² log n)
  /// samples for borderline nodes, which is exactly why the paper's ADDATP
  /// runs out of memory beyond NetHEPT; the budget cap makes that failure
  /// mode explicit and testable.
  SamplingOptions sampling;
  /// true: exceeding the budget aborts the run with OutOfBudget (paper-like
  /// OOM marker). false: the decision is forced with the current estimates.
  bool fail_on_budget_exhausted = true;
  /// Enables the dynamic C2-threshold strategy of the paper's Discussion
  /// (after Theorem 2): instead of the fixed stopping bar n_i ζ_i <= 1,
  /// the bar η_i is raised adaptively while the accumulated profit loss
  /// stays within dynamic_epsilon * (profit so far), yielding an expected
  /// (1 - ε)/3 ratio and fewer samples on profitable runs.
  bool dynamic_threshold = false;
  /// The ε of the dynamic strategy.
  double dynamic_epsilon = 0.1;
};

/// ADDATP — adaptive double greedy with additive sampling error
/// (Algorithm 3). Replaces ADG's oracle with reverse-influence-sampling
/// estimates: each iteration draws a fresh RR-set pool of size
///
///   θ = ln(8/δ_i) / (2 ζ_i²),      δ_i = 1/(k n)
///
/// per halving round — answering the front and rear coverage queries as one
/// CoverageQueryBatch on that shared pool (the paper's literal Algorithm 3
/// draws two independent pools R1, R2; sampling.batched_rounds = false
/// restores that), estimates the front/rear profits, and stops as soon as
///   C1: the estimates are separated enough to decide correctly whp, or
///   C2: n_i ζ_i <= 1 (a wrong decision costs at most ~1 profit),
/// otherwise halves ζ_i by √2 and δ_i by 2 and resamples.
/// Theorem 2: expected profit >= (Λ(π_opt) − (2k+2)) / 3.
class AddAtpPolicy final : public AdaptivePolicy {
 public:
  explicit AddAtpPolicy(const AddAtpOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "ADDATP"; }

  /// Samples through `engine` (not owned; must be bound to the run's graph
  /// and options.model) instead of the policy's own backend. Pass nullptr
  /// to revert.
  void set_engine(SamplingEngine* engine) override { engine_.Use(engine); }

  Result<AdaptiveRunResult> Run(const ProfitProblem& problem,
                                AdaptiveEnvironment* env, Rng* rng) override;

 private:
  AddAtpOptions options_;
  SamplingEngineHandle engine_;
};

}  // namespace atpm

#endif  // ATPM_CORE_ADDATP_H_
