#include "core/cost_model.h"

namespace atpm {

const char* CostSchemeName(CostScheme scheme) {
  switch (scheme) {
    case CostScheme::kDegreeProportional:
      return "degree";
    case CostScheme::kUniform:
      return "uniform";
    case CostScheme::kRandom:
      return "random";
  }
  return "unknown";
}

namespace {

// Weights per target under the scheme; normalized by the caller.
Result<std::vector<double>> SchemeWeights(const Graph& graph,
                                          std::span<const NodeId> targets,
                                          CostScheme scheme, Rng* rng) {
  std::vector<double> weights(targets.size(), 0.0);
  switch (scheme) {
    case CostScheme::kDegreeProportional: {
      double total = 0.0;
      for (size_t i = 0; i < targets.size(); ++i) {
        // "+1" keeps zero-out-degree nodes payable; the paper leaves this
        // degenerate case unspecified.
        weights[i] = static_cast<double>(graph.OutDegree(targets[i])) + 1.0;
        total += weights[i];
      }
      if (total <= 0.0) {
        return Status::InvalidArgument("degree-proportional: zero weight");
      }
      break;
    }
    case CostScheme::kUniform:
      std::fill(weights.begin(), weights.end(), 1.0);
      break;
    case CostScheme::kRandom:
      for (double& w : weights) w = rng->UniformDouble() + 1e-9;
      break;
  }
  return weights;
}

Result<std::vector<double>> DistributeBudget(const Graph& graph,
                                             std::span<const NodeId> targets,
                                             CostScheme scheme, double budget,
                                             Rng* rng) {
  if (targets.empty()) {
    return Status::InvalidArgument("cost model: empty target set");
  }
  if (budget <= 0.0) {
    return Status::InvalidArgument("cost model: budget must be positive");
  }
  Result<std::vector<double>> weights_result =
      SchemeWeights(graph, targets, scheme, rng);
  if (!weights_result.ok()) return weights_result.status();
  const std::vector<double>& weights = weights_result.value();

  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;

  std::vector<double> costs(graph.num_nodes(), 0.0);
  for (size_t i = 0; i < targets.size(); ++i) {
    costs[targets[i]] = budget * weights[i] / weight_sum;
  }
  return costs;
}

}  // namespace

Result<std::vector<double>> BuildCalibratedCosts(
    const Graph& graph, std::span<const NodeId> targets, CostScheme scheme,
    double target_budget, Rng* rng) {
  return DistributeBudget(graph, targets, scheme, target_budget, rng);
}

Result<std::vector<double>> BuildPredefinedCosts(const Graph& graph,
                                                 CostScheme scheme,
                                                 double lambda, Rng* rng) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cost model: empty graph");
  }
  if (lambda <= 0.0) {
    return Status::InvalidArgument("cost model: lambda must be positive");
  }
  std::vector<NodeId> all(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) all[u] = u;
  return DistributeBudget(graph, all, scheme,
                          lambda * static_cast<double>(graph.num_nodes()),
                          rng);
}

}  // namespace atpm
