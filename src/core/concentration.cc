#include "core/concentration.h"

#include <cmath>

#include "common/logging.h"

namespace atpm {

double HoeffdingTwoSidedTail(uint64_t theta, double zeta) {
  return 2.0 * std::exp(-2.0 * static_cast<double>(theta) * zeta * zeta);
}

uint64_t HoeffdingSampleSize(double zeta, double delta) {
  ATPM_CHECK(zeta > 0.0 && zeta < 1.0);
  ATPM_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<uint64_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * zeta * zeta)));
}

uint64_t AddAtpSampleSize(double zeta, double delta) {
  ATPM_CHECK(zeta > 0.0 && zeta < 1.0);
  ATPM_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<uint64_t>(
      std::ceil(std::log(8.0 / delta) / (2.0 * zeta * zeta)));
}

double RelAddUpperTail(uint64_t theta, double eps, double zeta) {
  const double denom = (1.0 + eps / 3.0) * (1.0 + eps / 3.0);
  return std::exp(-2.0 * static_cast<double>(theta) * eps * zeta / denom);
}

double RelAddLowerTail(uint64_t theta, double eps, double zeta) {
  return std::exp(-2.0 * static_cast<double>(theta) * eps * zeta);
}

uint64_t HatpSampleSize(double eps, double zeta, double delta) {
  ATPM_CHECK(eps > 0.0 && eps < 1.0);
  ATPM_CHECK(zeta > 0.0 && zeta < 1.0);
  ATPM_CHECK(delta > 0.0 && delta < 1.0);
  const double numer = (1.0 + eps / 3.0) * (1.0 + eps / 3.0);
  return static_cast<uint64_t>(
      std::ceil(numer / (2.0 * eps * zeta) * std::log(4.0 / delta)));
}

}  // namespace atpm
