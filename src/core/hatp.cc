#include "core/hatp.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/bit_vector.h"
#include "common/math_util.h"
#include "common/trace.h"
#include "core/concentration.h"
#include "rris/coverage_batch.h"
#include "rris/sampling_engine.h"

namespace atpm {

Result<AdaptiveRunResult> HatpPolicy::Run(const ProfitProblem& problem,
                                          AdaptiveEnvironment* env,
                                          Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  if (&env->graph() != problem.graph) {
    return Status::InvalidArgument("HATP: environment graph mismatch");
  }
  if (env->num_activated() != 0) {
    return Status::InvalidArgument("HATP: environment must be fresh");
  }
  const double eps_thr = options_.relative_error_threshold;
  if (eps_thr <= 0.0 || eps_thr >= 1.0 ||
      options_.initial_relative_error < eps_thr ||
      options_.initial_relative_error >= 1.0) {
    return Status::InvalidArgument(
        "HATP: need 0 < threshold <= initial_relative_error < 1");
  }

  const Graph& graph = *problem.graph;
  const NodeId n = graph.num_nodes();
  const uint32_t k = problem.k();
  if (k == 0) return AdaptiveRunResult{};

  SamplingEngine* engine =
      engine_.Get(graph, options_.model, options_.sampling.EngineOptions());
  if (&engine->graph() != &graph || engine->model() != options_.model) {
    return Status::InvalidArgument(
        "HATP: sampling engine bound to a different graph/model");
  }

  AdaptiveRunResult result;
  result.steps.reserve(k);
  SpeculativeRoundPlanner planner(options_.sampling, problem.targets);

  // Run-level resource envelope: the gate is polled by the engine at batch
  // boundaries and by the planner before each sampled round. Inactive
  // budgets arm nothing and the sampling paths stay bit-identical.
  BudgetGate gate(options_.sampling.budget);
  ScopedEngineBudget scoped_budget(engine, &gate);

  // Worst-case guarantee aggregation across decisions (see
  // AdaptiveRunResult::effective_epsilon / achieved_theta).
  double worst_eps = eps_thr;
  double worst_additive = 0.0;
  uint64_t min_decided_theta = UINT64_MAX;
  bool any_estimate_decision = false;
  bool any_blind_decision = false;

  BitVector seed_bitmap(n);
  BitVector candidates(n);
  for (NodeId t : problem.targets) candidates.Set(t);

  for (size_t pos = 0; pos < problem.targets.size(); ++pos) {
    const NodeId u = problem.targets[pos];
    obs::TraceSpan decision_span("decision");
    decision_span.AnnotateU64("node", u);
    AdaptiveStepRecord step;
    step.node = u;
    candidates.Clear(u);

    if (env->IsActivated(u)) {
      step.decision = SeedDecision::kSkippedActivated;
      NotePolicyDecision();
      result.steps.push_back(step);
      continue;
    }

    const uint32_t ni = env->num_remaining();
    const double nd = static_cast<double>(ni);
    const double cost = problem.CostOf(u);
    const BitVector& removed = env->activated();
    const uint64_t epoch = env->residual_epoch();

    double eps = options_.initial_relative_error;
    double zeta = Clamp(options_.initial_spread_error / nd, 1.0 / nd, 0.5);
    double delta = 1.0 / (static_cast<double>(k) * static_cast<double>(n));

    double fest = 0.0;
    double rest = 0.0;
    uint64_t used_this_iter = 0;
    bool decided = false;
    bool budget_exhausted = false;
    // Evidence the decision ends up standing on when the schedule is cut
    // short (updated after every completed round).
    uint64_t last_theta = 0;
    double last_eps = 1.0;
    double last_az = nd;
    bool forced = false;

    while (!decided) {
      const uint64_t theta = HatpSampleSize(eps, zeta, delta);
      obs::TraceSpan round_span("round");
      round_span.AnnotateU64("theta", theta);
      if (step.rounds == 0) planner.Begin(pos, u, epoch, theta);
      // One round: served from a stored speculative answer (free, estimates
      // scale by the answering pool's size), or sampled — batched rounds
      // share one pool across the front and rear queries (and thereby the
      // Lines 19–23 error-tuning probes reading them), the literal
      // Algorithm 4 pays two independent pools R1, R2.
      FrontRearHits hits;
      const Result<SpeculativeRoundPlanner::RoundStep> round =
          planner.NextRound(
              engine, u, seed_bitmap, candidates, &removed, ni, theta, epoch,
              options_.sampling.max_rr_sets_per_decision - used_this_iter,
              rng, &hits);
      if (!round.ok()) {
        // Allocation failure is absorbed — the decision proceeds on the
        // rounds already completed; real engine faults propagate.
        if (!round.status().IsResourceExhausted()) return round.status();
        forced = true;
        budget_exhausted = step.rounds == 0;
        result.degradation_events.push_back(
            {DegradationReason::kAllocFailure, u, step.rounds, theta,
             last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(DegradationReason::kAllocFailure));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      const SpeculativeRoundPlanner::RoundStep round_step = round.value();
      if (round_step == SpeculativeRoundPlanner::RoundStep::kOverBudget) {
        if (options_.fail_on_budget_exhausted) {
          return Status::OutOfBudget(
              "HATP: deciding node " + std::to_string(u) + " needs " +
              std::to_string(RoundRrSets(theta, planner.batched())) +
              " more RR sets (budget " +
              std::to_string(options_.sampling.max_rr_sets_per_decision) +
              ")");
        }
        // No completed round means no estimate at all — mark the decision
        // explicitly instead of comparing fest = rest = 0 against the
        // cost. With at least one round, decide from its estimates.
        forced = true;
        budget_exhausted = step.rounds == 0;
        result.degradation_events.push_back(
            {DegradationReason::kRrBudget, u, step.rounds, theta,
             last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(DegradationReason::kRrBudget));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      if (round_step == SpeculativeRoundPlanner::RoundStep::kDegraded) {
        // The run budget tripped. A truncated pool (hits.theta > 0) still
        // gives honest estimates over what it drew — it becomes the final
        // round; otherwise the previous round's estimates stand.
        if (hits.theta > 0) {
          used_this_iter += RoundRrSets(hits.theta, planner.batched());
          ++step.rounds;
          NotePolicyRound();
          step.coverage_queries += hits.queries;
          result.total_count_pools += hits.pools;
          const double scale = nd / static_cast<double>(hits.theta);
          fest = static_cast<double>(hits.front) * scale;
          rest = static_cast<double>(hits.rear) * scale;
          last_theta = hits.theta;
          last_eps = eps;
          last_az = nd * zeta;
        }
        forced = true;
        budget_exhausted = step.rounds == 0;
        const BudgetGate* engine_gate = engine->budget();
        result.degradation_events.push_back(
            {ReasonFromBudgetStop(engine_gate != nullptr
                                      ? engine_gate->Exhausted()
                                      : BudgetStop::kNone),
             u, step.rounds, theta, last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(result.degradation_events.back().reason));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      if (round_step == SpeculativeRoundPlanner::RoundStep::kSampled) {
        used_this_iter += RoundRrSets(theta, planner.batched());
      } else if (step.rounds == 0) {
        step.first_round_speculative = true;
      }
      ++step.rounds;
      NotePolicyRound();
      step.coverage_queries += hits.queries;
      result.total_count_pools += hits.pools;
      const double scale = nd / static_cast<double>(hits.theta);
      fest = static_cast<double>(hits.front) * scale;
      rest = static_cast<double>(hits.rear) * scale;
      last_theta = hits.theta;
      last_eps = eps;
      last_az = nd * zeta;

      const double az = nd * zeta;  // n_i ζ_i in spread units
      // C'1: the hybrid confidence interval certifies the comparison
      // fest + rest vs 2 c(u) (select side on the first two disjuncts,
      // abandon side on the last two).
      const bool c1 =
          (fest + rest - 2.0 * az) / (1.0 + eps) >= 2.0 * cost ||
          (rest - az) / (1.0 + eps) >= cost ||
          (fest + rest + 2.0 * az) / (1.0 - eps) <= 2.0 * cost ||
          (fest + az) / (1.0 - eps) <= cost;
      const bool c2 = eps <= eps_thr && az <= 1.0;
      if (c1 || c2) {
        decided = true;
        break;
      }

      // Adaptive error schedule (Alg 4, Lines 19–23): shrink whichever
      // error dominates the uncertainty around this node's marginal spread.
      const bool eps_floored = eps <= eps_thr;
      const bool zeta_floored = az <= 1.0;
      if (eps_floored && !zeta_floored) {
        zeta /= 2.0;
      } else if (!eps_floored && zeta_floored) {
        eps /= 2.0;
      } else if (fest >= 10.0 * az) {
        eps /= 2.0;
      } else if (fest <= az) {
        zeta /= 2.0;
      } else {
        eps /= std::sqrt(2.0);
        zeta /= std::sqrt(2.0);
      }
      eps = std::max(eps, eps_thr);
      zeta = std::max(zeta, 1.0 / nd);
      delta /= 2.0;
    }

    step.rr_sets_used = used_this_iter;
    result.total_rr_sets += used_this_iter;
    result.total_coverage_queries += step.coverage_queries;
    result.max_rr_sets_per_iteration =
        std::max(result.max_rr_sets_per_iteration, used_this_iter);

    if (budget_exhausted) {
      // No estimate at all: the comparison is vacuous, so the worst-case
      // guarantee trackers take their trivial bounds.
      step.decision = SeedDecision::kBudgetExhausted;
      any_blind_decision = true;
      worst_eps = 1.0;
      worst_additive = std::max(worst_additive, nd);
    } else if (fest + rest >= 2.0 * cost) {
      // Line 13: select iff fest + rest >= 2 c(u) (equivalently ρ̃f >= ρ̃r).
      const std::vector<NodeId>& activated = env->SeedAndObserve(u);
      step.decision = SeedDecision::kSelected;
      step.newly_activated = static_cast<uint32_t>(activated.size());
      result.seeds.push_back(u);
      seed_bitmap.Set(u);
      for (NodeId v : activated) {
        if (candidates.Test(v)) candidates.Clear(v);
      }
    } else {
      step.decision = SeedDecision::kAbandoned;
    }
    if (!budget_exhausted) {
      // A certified stop (C'1/C'2) delivers the requested guarantee; a
      // forced decision stands on the last round's coarser (ε, n_i ζ).
      any_estimate_decision = true;
      min_decided_theta = std::min(min_decided_theta, last_theta);
      if (forced) worst_eps = std::max(worst_eps, last_eps);
      worst_additive = std::max(worst_additive, last_az);
    }
    NotePolicyDecision();
    result.steps.push_back(step);
  }

  result.effective_epsilon = worst_eps;
  result.achieved_additive_error = worst_additive;
  result.achieved_theta = (!any_estimate_decision || any_blind_decision)
                              ? 0
                              : min_decided_theta;
  planner.ExportStats(&result);
  FinalizeAdaptiveResult(problem, *env, &result);
  return result;
}

}  // namespace atpm
