#include "core/addatp.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/bit_vector.h"
#include "common/math_util.h"
#include "common/trace.h"
#include "core/concentration.h"
#include "rris/coverage_batch.h"
#include "rris/sampling_engine.h"

namespace atpm {

Result<AdaptiveRunResult> AddAtpPolicy::Run(const ProfitProblem& problem,
                                            AdaptiveEnvironment* env,
                                            Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  if (&env->graph() != problem.graph) {
    return Status::InvalidArgument("ADDATP: environment graph mismatch");
  }
  if (env->num_activated() != 0) {
    return Status::InvalidArgument("ADDATP: environment must be fresh");
  }

  const Graph& graph = *problem.graph;
  const NodeId n = graph.num_nodes();
  const uint32_t k = problem.k();
  if (k == 0) return AdaptiveRunResult{};

  SamplingEngine* engine =
      engine_.Get(graph, options_.model, options_.sampling.EngineOptions());
  if (&engine->graph() != &graph || engine->model() != options_.model) {
    return Status::InvalidArgument(
        "ADDATP: sampling engine bound to a different graph/model");
  }

  AdaptiveRunResult result;
  result.steps.reserve(k);
  SpeculativeRoundPlanner planner(options_.sampling, problem.targets);

  // Run-level resource envelope (see HATP; inactive budgets arm nothing).
  BudgetGate gate(options_.sampling.budget);
  ScopedEngineBudget scoped_budget(engine, &gate);

  // Worst-case guarantee aggregation. ADDATP's bound is additive, so
  // effective_epsilon stays 0 and achieved_additive_error carries the
  // worst per-decision n_i ζ_i.
  double worst_additive = 0.0;
  uint64_t min_decided_theta = UINT64_MAX;
  bool any_estimate_decision = false;
  bool any_blind_decision = false;

  // Selected seeds (all activated, so never present in residual RR sets —
  // kept as a bitmap to evaluate Cov(u | S_{i-1}) by the paper's formula).
  BitVector seed_bitmap(n);
  // Undecided candidates (neither abandoned, activated, nor selected).
  BitVector candidates(n);
  for (NodeId t : problem.targets) candidates.Set(t);

  // Dynamic C2-threshold state (Discussion after Theorem 2): eta_sum
  // accumulates the bars η̃_j of iterations that stopped via C2.
  double eta_sum = 0.0;

  for (size_t pos = 0; pos < problem.targets.size(); ++pos) {
    const NodeId u = problem.targets[pos];
    obs::TraceSpan decision_span("decision");
    decision_span.AnnotateU64("node", u);
    AdaptiveStepRecord step;
    step.node = u;
    candidates.Clear(u);  // u is under examination; rear base is T \ {u}

    if (env->IsActivated(u)) {
      step.decision = SeedDecision::kSkippedActivated;
      NotePolicyDecision();
      result.steps.push_back(step);
      continue;
    }

    const uint32_t ni = env->num_remaining();
    const double nd = static_cast<double>(ni);
    const double cost = problem.CostOf(u);
    const BitVector& removed = env->activated();
    const uint64_t epoch = env->residual_epoch();

    double zeta =
        Clamp(options_.initial_spread_error / nd, 1.0 / nd, 0.5);
    double delta = 1.0 / (static_cast<double>(k) * static_cast<double>(n));

    // C2 stopping bar: fixed at 1 in Algorithm 3; raised adaptively in the
    // dynamic variant while 2 * (eta_sum + eta) + 2 <= ε * profit-so-far.
    double eta = 1.0;
    if (options_.dynamic_threshold) {
      const double profit_so_far =
          static_cast<double>(env->num_activated()) -
          problem.CostOfSet(result.seeds);
      const double slack =
          options_.dynamic_epsilon * profit_so_far - 2.0 * eta_sum - 2.0;
      eta = std::max(1.0, slack / 2.0);
    }

    double rho_f = 0.0;
    double rho_r = 0.0;
    uint64_t used_this_iter = 0;
    bool decided = false;
    bool stopped_via_c2 = false;
    bool budget_exhausted = false;
    // Evidence the decision ends up standing on when the schedule is cut
    // short (updated after every completed round).
    uint64_t last_theta = 0;
    double last_az = nd;

    while (!decided) {
      const uint64_t theta = AddAtpSampleSize(zeta, delta);
      obs::TraceSpan round_span("round");
      round_span.AnnotateU64("theta", theta);
      if (step.rounds == 0) planner.Begin(pos, u, epoch, theta);
      // One round: served from a stored speculative answer (free, estimates
      // scale by the answering pool's size), or sampled — batched rounds
      // share one pool across both queries, the literal Algorithm 3 pays
      // two independent pools R1, R2.
      FrontRearHits hits;
      const Result<SpeculativeRoundPlanner::RoundStep> round =
          planner.NextRound(
              engine, u, seed_bitmap, candidates, &removed, ni, theta, epoch,
              options_.sampling.max_rr_sets_per_decision - used_this_iter,
              rng, &hits);
      if (!round.ok()) {
        // Allocation failure is absorbed — the decision proceeds on the
        // rounds already completed; real engine faults propagate.
        if (!round.status().IsResourceExhausted()) return round.status();
        budget_exhausted = step.rounds == 0;
        result.degradation_events.push_back(
            {DegradationReason::kAllocFailure, u, step.rounds, theta,
             last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(DegradationReason::kAllocFailure));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      const SpeculativeRoundPlanner::RoundStep round_step = round.value();
      if (round_step == SpeculativeRoundPlanner::RoundStep::kOverBudget) {
        if (options_.fail_on_budget_exhausted) {
          return Status::OutOfBudget(
              "ADDATP: deciding node " + std::to_string(u) + " needs " +
              std::to_string(RoundRrSets(theta, planner.batched())) +
              " more RR sets (budget " +
              std::to_string(options_.sampling.max_rr_sets_per_decision) +
              ")");
        }
        // No completed round means no estimate at all: mark the decision
        // explicitly instead of selecting on ρ̃f = ρ̃r = 0. With at least
        // one round, the decision is forced from the last estimates.
        budget_exhausted = step.rounds == 0;
        result.degradation_events.push_back(
            {DegradationReason::kRrBudget, u, step.rounds, theta,
             last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(DegradationReason::kRrBudget));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      if (round_step == SpeculativeRoundPlanner::RoundStep::kDegraded) {
        // The run budget tripped. A truncated pool (hits.theta > 0) still
        // gives honest estimates over what it drew — it becomes the final
        // round; otherwise the previous round's estimates stand.
        if (hits.theta > 0) {
          used_this_iter += RoundRrSets(hits.theta, planner.batched());
          ++step.rounds;
          NotePolicyRound();
          step.coverage_queries += hits.queries;
          result.total_count_pools += hits.pools;
          const double scale = nd / static_cast<double>(hits.theta);
          rho_f = static_cast<double>(hits.front) * scale - cost;
          rho_r = -static_cast<double>(hits.rear) * scale + cost;
          last_theta = hits.theta;
          last_az = nd * zeta;
        }
        budget_exhausted = step.rounds == 0;
        const BudgetGate* engine_gate = engine->budget();
        result.degradation_events.push_back(
            {ReasonFromBudgetStop(engine_gate != nullptr
                                      ? engine_gate->Exhausted()
                                      : BudgetStop::kNone),
             u, step.rounds, theta, last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(result.degradation_events.back().reason));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      if (round_step == SpeculativeRoundPlanner::RoundStep::kSampled) {
        used_this_iter += RoundRrSets(theta, planner.batched());
      } else if (step.rounds == 0) {
        step.first_round_speculative = true;
      }
      ++step.rounds;
      NotePolicyRound();
      step.coverage_queries += hits.queries;
      result.total_count_pools += hits.pools;
      const double scale = nd / static_cast<double>(hits.theta);
      rho_f = static_cast<double>(hits.front) * scale - cost;
      rho_r = -static_cast<double>(hits.rear) * scale + cost;
      last_theta = hits.theta;
      last_az = nd * zeta;

      const double additive = nd * zeta;  // n_i ζ_i, in spread units
      const bool c1 = std::abs(rho_f - rho_r) >= 2.0 * additive ||
                      rho_f <= -additive || rho_r <= -additive;
      const bool c2 = additive <= eta;
      if (c1 || c2) {
        decided = true;
        stopped_via_c2 = !c1 && c2;
      } else {
        zeta /= std::sqrt(2.0);
        delta /= 2.0;
      }
    }
    if (stopped_via_c2) eta_sum += eta;  // η̃_i = η_i iff C2 fired

    step.rr_sets_used = used_this_iter;
    result.total_rr_sets += used_this_iter;
    result.total_coverage_queries += step.coverage_queries;
    result.max_rr_sets_per_iteration =
        std::max(result.max_rr_sets_per_iteration, used_this_iter);

    if (budget_exhausted) {
      // No estimate at all: the additive error takes its trivial bound n_i.
      step.decision = SeedDecision::kBudgetExhausted;
      any_blind_decision = true;
      worst_additive = std::max(worst_additive, nd);
    } else if (rho_f >= rho_r) {
      const std::vector<NodeId>& activated = env->SeedAndObserve(u);
      step.decision = SeedDecision::kSelected;
      step.newly_activated = static_cast<uint32_t>(activated.size());
      result.seeds.push_back(u);
      seed_bitmap.Set(u);
      for (NodeId v : activated) {
        if (candidates.Test(v)) candidates.Clear(v);
      }
    } else {
      step.decision = SeedDecision::kAbandoned;
    }
    if (!budget_exhausted) {
      any_estimate_decision = true;
      min_decided_theta = std::min(min_decided_theta, last_theta);
      worst_additive = std::max(worst_additive, last_az);
    }
    NotePolicyDecision();
    result.steps.push_back(step);
  }

  // effective_epsilon stays 0: ADDATP's guarantee is additive.
  result.achieved_additive_error = worst_additive;
  result.achieved_theta = (!any_estimate_decision || any_blind_decision)
                              ? 0
                              : min_decided_theta;
  planner.ExportStats(&result);
  FinalizeAdaptiveResult(problem, *env, &result);
  return result;
}

}  // namespace atpm
