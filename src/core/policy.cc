#include "core/policy.h"

#include <algorithm>

namespace atpm {

void FinalizeAdaptiveResult(const ProfitProblem& problem,
                            const AdaptiveEnvironment& env,
                            AdaptiveRunResult* result) {
  // The environment's own interaction accounting must agree with the
  // policy's telemetry: every reported seed is exactly one SeedAndObserve.
  ATPM_DCHECK(static_cast<size_t>(env.num_seedings()) ==
              result->seeds.size());
  result->realized_spread = env.num_activated();
  result->seed_cost = problem.CostOfSet(result->seeds);
  result->realized_profit =
      static_cast<double>(result->realized_spread) - result->seed_cost;
}

SpeculativeRoundPlanner::SpeculativeRoundPlanner(
    const SamplingOptions& sampling, std::span<const NodeId> targets)
    : batched_(sampling.batched_rounds),
      // Speculation shares a round's pool, so it needs batched rounds; the
      // literal two-pool sampling ignores the window.
      window_(sampling.batched_rounds ? sampling.lookahead_window : 0),
      adaptive_(sampling.adaptive_lookahead),
      base_window_(window_),
      discard_threshold_(sampling.lookahead_discard_threshold),
      targets_(targets) {
  max_window_ = adaptive_
                    ? std::max(window_, sampling.max_lookahead_window)
                    : window_;
  if (window_ > 0) {
    entries_.resize(targets.size());
    // Pre-sized to the widest window the adaptive controller may reach, so
    // the batch's base pointers stay stable however far it widens.
    rear_bases_.resize(max_window_);
  }
}

void SpeculativeRoundPlanner::Begin(size_t position, [[maybe_unused]] NodeId u,
                                    uint64_t epoch, uint64_t min_theta) {
  position_ = position;
  active_.reset();
  if (window_ == 0) return;
  ATPM_DCHECK(position < targets_.size() && targets_[position] == u);
  if (adaptive_) {
    if (!epoch_seen_ || epoch != last_epoch_) {
      // A seeding just voided every in-flight answer; restart narrow so the
      // next pools don't pay for speculation that cannot survive another
      // imminent selection streak.
      window_ = base_window_;
      epoch_seen_ = true;
      last_epoch_ = epoch;
    } else if (window_ < max_window_) {
      // The residual graph held still: widen while the realized discard
      // rate says speculated answers are actually being consumed.
      const uint64_t resolved = stats_.hits + stats_.misses;
      const double rate =
          resolved == 0
              ? 0.0
              : static_cast<double>(stats_.discarded) /
                    static_cast<double>(resolved);
      if (rate < discard_threshold_) {
        window_ = std::min<uint32_t>(window_ * 2, max_window_);
      }
    }
  }
  window_trace_.push_back(window_);
  Entry& entry = entries_[position];
  if (!entry.valid) {
    ++stats_.misses;
    return;
  }
  entry.valid = false;  // one-shot either way
  if (entry.epoch != epoch || entry.theta < min_theta) {
    ++stats_.discarded;
    ++stats_.misses;
    return;
  }
  ++stats_.hits;
  active_ = FirstRoundAnswer{entry.front_hits, entry.rear_hits, entry.theta};
}

SpeculativeRoundPlanner::RoundStep SpeculativeRoundPlanner::NextRound(
    SamplingEngine* engine, NodeId u, const BitVector& front_base,
    const BitVector& rear_base, const BitVector* removed, uint32_t num_alive,
    uint64_t theta, uint64_t epoch, uint64_t budget_remaining, Rng* rng,
    FrontRearHits* hits) {
  if (std::optional<FirstRoundAnswer> served = Serve(theta)) {
    hits->front = served->front_hits;
    hits->rear = served->rear_hits;
    hits->theta = served->theta;
    hits->pools = 0;
    hits->queries = 0;
    return RoundStep::kServed;
  }
  if (RoundRrSets(theta, batched_) > budget_remaining) {
    return RoundStep::kOverBudget;
  }
  *hits = SampleRound(engine, u, front_base, rear_base, removed, num_alive,
                      theta, epoch, rng);
  return RoundStep::kSampled;
}

std::optional<SpeculativeRoundPlanner::FirstRoundAnswer>
SpeculativeRoundPlanner::Serve(uint64_t theta) {
  if (!active_.has_value()) return std::nullopt;
  if (active_->theta < theta) {
    // θ_r grows strictly round over round, so once outgrown the answer can
    // never serve this candidate again.
    active_.reset();
    return std::nullopt;
  }
  ++stats_.rounds_served;
  return active_;
}

void SpeculativeRoundPlanner::AddSpeculativeQueries(
    const BitVector& front_base, const BitVector& rear_base, uint64_t epoch,
    uint64_t theta) {
  // The rear base candidate c_j sees natively is the current candidate set
  // minus every intermediate candidate: each examination clears its node
  // whether it ends skipped or abandoned (a selection would bump the epoch
  // and void the answer anyway). Build those bases progressively off one
  // running copy.
  size_t covered = 0;
  running_rear_ = rear_base;
  for (size_t i = position_ + 1;
       i < targets_.size() && covered < window_; ++i) {
    const NodeId c = targets_[i];
    // An upcoming candidate absent from the rear base is already activated
    // (activation clears it the moment it is observed): it will be skipped
    // without sampling, and its native clear-on-examination is a no-op, so
    // it neither consumes a window slot nor shadows later rear bases.
    if (!rear_base.Test(c)) continue;
    running_rear_.Clear(c);
    const Entry& entry = entries_[i];
    if (entry.valid && entry.epoch == epoch && entry.theta >= theta) {
      // Already covered at least this well by an earlier round of this
      // epoch; its clear above still shadows the rear bases of the
      // candidates behind it. A bigger pool instead REFRESHES the entry so
      // the consumer can serve deeper into its own schedule.
      ++covered;
      continue;
    }
    BitVector& snapshot = rear_bases_[pending_.size()];
    snapshot = running_rear_;
    PendingAnswer pending;
    pending.position = i;
    pending.front_index = batch_.Add(c, &front_base);
    pending.rear_index = batch_.Add(c, &snapshot);
    pending_.push_back(pending);
    ++covered;
  }
  stats_.speculative_queries += 2 * pending_.size();
}

FrontRearHits SpeculativeRoundPlanner::SampleRound(
    SamplingEngine* engine, NodeId u, const BitVector& front_base,
    const BitVector& rear_base, const BitVector* removed, uint32_t num_alive,
    uint64_t theta, uint64_t epoch, Rng* rng) {
  FrontRearHits hits;
  hits.theta = theta;
  if (!batched_) {
    hits.front = engine->CountConditionalCoverage(u, &front_base, removed,
                                                 num_alive, theta, rng);
    hits.rear = engine->CountConditionalCoverage(u, &rear_base, removed,
                                                 num_alive, theta, rng);
    hits.pools = 2;
    hits.queries = 2;
    return hits;
  }
  batch_.Clear();
  pending_.clear();
  const uint32_t front = batch_.Add(u, &front_base);
  const uint32_t rear = batch_.Add(u, &rear_base);
  if (window_ > 0) AddSpeculativeQueries(front_base, rear_base, epoch, theta);
  engine->CountCoverageBatch(&batch_, removed, num_alive, theta, rng);
  for (const PendingAnswer& pending : pending_) {
    Entry& entry = entries_[pending.position];
    entry.epoch = epoch;
    entry.theta = theta;
    entry.front_hits = batch_.hits(pending.front_index);
    entry.rear_hits = batch_.hits(pending.rear_index);
    entry.valid = true;
  }
  hits.front = batch_.hits(front);
  hits.rear = batch_.hits(rear);
  hits.pools = 1;
  hits.queries = batch_.size();
  return hits;
}

}  // namespace atpm
