#include "core/policy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace atpm {

namespace {

/// Global-registry instruments of the adaptive decision loops. Registered
/// once on first use.
struct PolicyMetrics {
  obs::Counter* decisions;
  obs::Counter* rounds;
  obs::Counter* spec_hits;
  obs::Counter* spec_misses;
  obs::Counter* spec_discards;
  obs::Counter* degradation_total;
  /// Indexed by DegradationReason's underlying value.
  obs::Counter* degradation_by_reason[5];

  static const PolicyMetrics& Get() {
    static const PolicyMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* m = new PolicyMetrics();
      m->decisions = reg.RegisterCounter(
          "atpm_decisions_total",
          "Candidate seed decisions concluded by adaptive policies");
      m->rounds = reg.RegisterCounter(
          "atpm_decision_rounds_total",
          "Error-halving rounds run across all decisions");
      m->spec_hits = reg.RegisterCounter(
          "atpm_speculation_hits_total",
          "Decisions whose first round was served from a speculative answer");
      m->spec_misses = reg.RegisterCounter(
          "atpm_speculation_misses_total",
          "Speculating decisions that found no usable stored answer");
      m->spec_discards = reg.RegisterCounter(
          "atpm_speculation_discards_total",
          "Stored speculative answers discarded stale or undersized");
      m->degradation_total = reg.RegisterCounter(
          "atpm_degradation_events_total",
          "Decisions forced to conclude with less evidence than requested");
      m->degradation_by_reason[0] = reg.RegisterCounter(
          "atpm_degradation_deadline_total",
          "Degraded decisions: RunBudget deadline passed");
      m->degradation_by_reason[1] = reg.RegisterCounter(
          "atpm_degradation_pool_bytes_total",
          "Degraded decisions: RR-pool byte cap reached");
      m->degradation_by_reason[2] = reg.RegisterCounter(
          "atpm_degradation_cancelled_total",
          "Degraded decisions: CancelToken cancelled");
      m->degradation_by_reason[3] = reg.RegisterCounter(
          "atpm_degradation_rr_budget_total",
          "Degraded decisions: per-decision RR cap exhausted");
      m->degradation_by_reason[4] = reg.RegisterCounter(
          "atpm_degradation_alloc_failure_total",
          "Degraded decisions: allocation failure absorbed");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

void NoteDegradationEvent(const DegradationEvent& event) {
  ATPM_WARN(
      "degraded decision: node=%u reason=%s rounds_completed=%u "
      "requested_theta=%llu achieved_theta=%llu",
      static_cast<unsigned>(event.node), DegradationReasonName(event.reason),
      static_cast<unsigned>(event.rounds_completed),
      static_cast<unsigned long long>(event.requested_theta),
      static_cast<unsigned long long>(event.achieved_theta));
  const PolicyMetrics& metrics = PolicyMetrics::Get();
  metrics.degradation_total->Increment();
  const size_t reason = static_cast<size_t>(event.reason);
  if (reason < 5) metrics.degradation_by_reason[reason]->Increment();
}

void NotePolicyDecision() { PolicyMetrics::Get().decisions->Increment(); }

void NotePolicyRound() { PolicyMetrics::Get().rounds->Increment(); }

const char* DegradationReasonName(DegradationReason reason) {
  switch (reason) {
    case DegradationReason::kDeadline:
      return "deadline";
    case DegradationReason::kPoolBytes:
      return "pool-bytes";
    case DegradationReason::kCancelled:
      return "cancelled";
    case DegradationReason::kRrBudget:
      return "rr-budget";
    case DegradationReason::kAllocFailure:
      return "alloc-failure";
  }
  return "unknown";
}

DegradationReason ReasonFromBudgetStop(BudgetStop stop) {
  switch (stop) {
    case BudgetStop::kPoolBytes:
      return DegradationReason::kPoolBytes;
    case BudgetStop::kCancelled:
      return DegradationReason::kCancelled;
    case BudgetStop::kDeadline:
    case BudgetStop::kNone:
      return DegradationReason::kDeadline;
  }
  return DegradationReason::kDeadline;
}

void FinalizeAdaptiveResult(const ProfitProblem& problem,
                            const AdaptiveEnvironment& env,
                            AdaptiveRunResult* result) {
  // The environment's own interaction accounting must agree with the
  // policy's telemetry: every reported seed is exactly one SeedAndObserve.
  ATPM_DCHECK(static_cast<size_t>(env.num_seedings()) ==
              result->seeds.size());
  result->realized_spread = env.num_activated();
  result->seed_cost = problem.CostOfSet(result->seeds);
  result->realized_profit =
      static_cast<double>(result->realized_spread) - result->seed_cost;
}

SpeculativeRoundPlanner::SpeculativeRoundPlanner(
    const SamplingOptions& sampling, std::span<const NodeId> targets)
    : batched_(sampling.batched_rounds),
      // Speculation shares a round's pool, so it needs batched rounds; the
      // literal two-pool sampling ignores the window.
      window_(sampling.batched_rounds ? sampling.lookahead_window : 0),
      adaptive_(sampling.adaptive_lookahead),
      base_window_(window_),
      discard_threshold_(sampling.lookahead_discard_threshold),
      targets_(targets) {
  max_window_ = adaptive_
                    ? std::max(window_, sampling.max_lookahead_window)
                    : window_;
  if (window_ > 0) {
    entries_.resize(targets.size());
    // Pre-sized to the widest window the adaptive controller may reach, so
    // the batch's base pointers stay stable however far it widens.
    rear_bases_.resize(max_window_);
  }
}

void SpeculativeRoundPlanner::Begin(size_t position, [[maybe_unused]] NodeId u,
                                    uint64_t epoch, uint64_t min_theta) {
  position_ = position;
  active_.reset();
  if (window_ == 0) return;
  ATPM_DCHECK(position < targets_.size() && targets_[position] == u);
  if (adaptive_) {
    if (!epoch_seen_ || epoch != last_epoch_) {
      // A seeding just voided every in-flight answer; restart narrow so the
      // next pools don't pay for speculation that cannot survive another
      // imminent selection streak.
      window_ = base_window_;
      epoch_seen_ = true;
      last_epoch_ = epoch;
    } else if (window_ < max_window_) {
      // The residual graph held still: widen while the realized discard
      // rate says speculated answers are actually being consumed.
      const uint64_t resolved = stats_.hits + stats_.misses;
      const double rate =
          resolved == 0
              ? 0.0
              : static_cast<double>(stats_.discarded) /
                    static_cast<double>(resolved);
      if (rate < discard_threshold_) {
        window_ = std::min<uint32_t>(window_ * 2, max_window_);
      }
    }
  }
  window_trace_.push_back(window_);
  // The per-planner stats stay the exact source the run result exports;
  // the global counters are a scrape-time mirror of the same events.
  const PolicyMetrics& metrics = PolicyMetrics::Get();
  Entry& entry = entries_[position];
  if (!entry.valid) {
    ++stats_.misses;
    metrics.spec_misses->Increment();
    return;
  }
  entry.valid = false;  // one-shot either way
  if (entry.epoch != epoch || entry.theta < min_theta) {
    ++stats_.discarded;
    ++stats_.misses;
    metrics.spec_discards->Increment();
    metrics.spec_misses->Increment();
    return;
  }
  ++stats_.hits;
  metrics.spec_hits->Increment();
  active_ = FirstRoundAnswer{entry.front_hits, entry.rear_hits, entry.theta};
}

Result<SpeculativeRoundPlanner::RoundStep> SpeculativeRoundPlanner::NextRound(
    SamplingEngine* engine, NodeId u, const BitVector& front_base,
    const BitVector& rear_base, const BitVector* removed, uint32_t num_alive,
    uint64_t theta, uint64_t epoch, uint64_t budget_remaining, Rng* rng,
    FrontRearHits* hits) {
  if (std::optional<FirstRoundAnswer> served = Serve(theta)) {
    hits->front = served->front_hits;
    hits->rear = served->rear_hits;
    hits->theta = served->theta;
    hits->pools = 0;
    hits->queries = 0;
    return RoundStep::kServed;
  }
  // An exhausted run budget blocks all further sampling (serving stored
  // answers above stays free); the caller concludes the decision on
  // whatever evidence it already holds.
  const BudgetGate* gate = engine->budget();
  if (gate != nullptr && gate->Exhausted() != BudgetStop::kNone) {
    hits->theta = 0;
    return RoundStep::kDegraded;
  }
  if (RoundRrSets(theta, batched_) > budget_remaining) {
    return RoundStep::kOverBudget;
  }
  Result<FrontRearHits> sampled = SampleRound(
      engine, u, front_base, rear_base, removed, num_alive, theta, epoch,
      rng);
  if (!sampled.ok()) return sampled.status();
  *hits = std::move(sampled).value();
  // A pool cut short mid-round (hits->theta < theta, possibly 0) is the
  // gate tripping between the check above and the batch finishing.
  return hits->theta == theta ? RoundStep::kSampled : RoundStep::kDegraded;
}

std::optional<SpeculativeRoundPlanner::FirstRoundAnswer>
SpeculativeRoundPlanner::Serve(uint64_t theta) {
  if (!active_.has_value()) return std::nullopt;
  if (active_->theta < theta) {
    // θ_r grows strictly round over round, so once outgrown the answer can
    // never serve this candidate again.
    active_.reset();
    return std::nullopt;
  }
  ++stats_.rounds_served;
  return active_;
}

void SpeculativeRoundPlanner::AddSpeculativeQueries(
    const BitVector& front_base, const BitVector& rear_base, uint64_t epoch,
    uint64_t theta) {
  // The rear base candidate c_j sees natively is the current candidate set
  // minus every intermediate candidate: each examination clears its node
  // whether it ends skipped or abandoned (a selection would bump the epoch
  // and void the answer anyway). Build those bases progressively off one
  // running copy.
  size_t covered = 0;
  running_rear_ = rear_base;
  for (size_t i = position_ + 1;
       i < targets_.size() && covered < window_; ++i) {
    const NodeId c = targets_[i];
    // An upcoming candidate absent from the rear base is already activated
    // (activation clears it the moment it is observed): it will be skipped
    // without sampling, and its native clear-on-examination is a no-op, so
    // it neither consumes a window slot nor shadows later rear bases.
    if (!rear_base.Test(c)) continue;
    running_rear_.Clear(c);
    const Entry& entry = entries_[i];
    if (entry.valid && entry.epoch == epoch && entry.theta >= theta) {
      // Already covered at least this well by an earlier round of this
      // epoch; its clear above still shadows the rear bases of the
      // candidates behind it. A bigger pool instead REFRESHES the entry so
      // the consumer can serve deeper into its own schedule.
      ++covered;
      continue;
    }
    BitVector& snapshot = rear_bases_[pending_.size()];
    snapshot = running_rear_;
    PendingAnswer pending;
    pending.position = i;
    pending.front_index = batch_.Add(c, &front_base);
    pending.rear_index = batch_.Add(c, &snapshot);
    pending_.push_back(pending);
    ++covered;
  }
  stats_.speculative_queries += 2 * pending_.size();
}

Result<FrontRearHits> SpeculativeRoundPlanner::SampleRound(
    SamplingEngine* engine, NodeId u, const BitVector& front_base,
    const BitVector& rear_base, const BitVector* removed, uint32_t num_alive,
    uint64_t theta, uint64_t epoch, Rng* rng) {
  FrontRearHits hits;
  hits.theta = theta;
  if (!batched_) {
    // The literal two-pool sampling, each a one-query batch — the same RNG
    // consumption (one 64-bit draw per pool) as the historical
    // CountConditionalCoverage path, so fixed-seed runs stay bit-identical.
    batch_.Clear();
    pending_.clear();
    const uint32_t front = batch_.Add(u, &front_base);
    const Result<uint64_t> front_sampled = engine->TryCountCoverageBatch(
        &batch_, removed, num_alive, theta, rng);
    if (!front_sampled.ok()) return front_sampled.status();
    hits.front = batch_.hits(front);
    batch_.Clear();
    const uint32_t rear = batch_.Add(u, &rear_base);
    const Result<uint64_t> rear_sampled = engine->TryCountCoverageBatch(
        &batch_, removed, num_alive, theta, rng);
    if (!rear_sampled.ok()) return rear_sampled.status();
    hits.rear = batch_.hits(rear);
    hits.pools = 2;
    hits.queries = 2;
    if (front_sampled.value() != theta || rear_sampled.value() != theta) {
      // Truncated independent pools have mismatched denominators — no
      // single honest scale exists, so the round is unusable.
      hits.theta = 0;
    }
    return hits;
  }
  batch_.Clear();
  pending_.clear();
  const uint32_t front = batch_.Add(u, &front_base);
  const uint32_t rear = batch_.Add(u, &rear_base);
  if (window_ > 0) AddSpeculativeQueries(front_base, rear_base, epoch, theta);
  const Result<uint64_t> sampled = engine->TryCountCoverageBatch(
      &batch_, removed, num_alive, theta, rng);
  if (!sampled.ok()) return sampled.status();
  hits.theta = sampled.value();
  if (hits.theta > 0) {
    for (const PendingAnswer& pending : pending_) {
      Entry& entry = entries_[pending.position];
      entry.epoch = epoch;
      // Stored under the pool's ACTUAL size: a truncated pool still
      // certifies (and scales) honestly over what it drew.
      entry.theta = hits.theta;
      entry.front_hits = batch_.hits(pending.front_index);
      entry.rear_hits = batch_.hits(pending.rear_index);
      entry.valid = true;
    }
  }
  hits.front = batch_.hits(front);
  hits.rear = batch_.hits(rear);
  hits.pools = 1;
  hits.queries = batch_.size();
  return hits;
}

}  // namespace atpm
