#include "core/policy.h"

namespace atpm {

void FinalizeAdaptiveResult(const ProfitProblem& problem,
                            const AdaptiveEnvironment& env,
                            AdaptiveRunResult* result) {
  // The environment's own interaction accounting must agree with the
  // policy's telemetry: every reported seed is exactly one SeedAndObserve.
  ATPM_DCHECK(static_cast<size_t>(env.num_seedings()) ==
              result->seeds.size());
  result->realized_spread = env.num_activated();
  result->seed_cost = problem.CostOfSet(result->seeds);
  result->realized_profit =
      static_cast<double>(result->realized_spread) - result->seed_cost;
}

FrontRearHits SampleFrontRearRound(SamplingEngine* engine,
                                   CoverageQueryBatch* batch, NodeId u,
                                   const BitVector& front_base,
                                   const BitVector& rear_base,
                                   const BitVector* removed,
                                   uint32_t num_alive, uint64_t theta,
                                   bool batched, Rng* rng) {
  FrontRearHits hits;
  if (batched) {
    batch->Clear();
    const uint32_t front = batch->Add(u, &front_base);
    const uint32_t rear = batch->Add(u, &rear_base);
    engine->CountCoverageBatch(batch, removed, num_alive, theta, rng);
    hits.front = batch->hits(front);
    hits.rear = batch->hits(rear);
    hits.pools = 1;
  } else {
    hits.front = engine->CountConditionalCoverage(u, &front_base, removed,
                                                  num_alive, theta, rng);
    hits.rear = engine->CountConditionalCoverage(u, &rear_base, removed,
                                                 num_alive, theta, rng);
    hits.pools = 2;
  }
  return hits;
}

}  // namespace atpm
