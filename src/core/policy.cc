#include "core/policy.h"

namespace atpm {

void FinalizeAdaptiveResult(const ProfitProblem& problem,
                            const AdaptiveEnvironment& env,
                            AdaptiveRunResult* result) {
  result->realized_spread = env.num_activated();
  result->seed_cost = problem.CostOfSet(result->seeds);
  result->realized_profit =
      static_cast<double>(result->realized_spread) - result->seed_cost;
}

}  // namespace atpm
