#include "core/hntp.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/bit_vector.h"
#include "common/math_util.h"
#include "common/trace.h"
#include "core/concentration.h"
#include "core/policy.h"
#include "rris/coverage_batch.h"
#include "rris/sampling_engine.h"

namespace atpm {

Result<HntpResult> RunHntp(const ProfitProblem& problem,
                           const HatpOptions& options, Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  std::unique_ptr<SamplingEngine> engine = CreateSamplingEngine(
      *problem.graph, options.model, options.sampling.EngineOptions());
  return RunHntp(problem, options, rng, engine.get());
}

Result<HntpResult> RunHntp(const ProfitProblem& problem,
                           const HatpOptions& options, Rng* rng,
                           SamplingEngine* engine) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  if (&engine->graph() != problem.graph ||
      engine->model() != options.model) {
    return Status::InvalidArgument(
        "HNTP: sampling engine bound to a different graph/model");
  }
  const double eps_thr = options.relative_error_threshold;
  if (eps_thr <= 0.0 || eps_thr >= 1.0 ||
      options.initial_relative_error < eps_thr ||
      options.initial_relative_error >= 1.0) {
    return Status::InvalidArgument(
        "HNTP: need 0 < threshold <= initial_relative_error < 1");
  }

  const Graph& graph = *problem.graph;
  const NodeId n = graph.num_nodes();
  const double nd = static_cast<double>(n);
  const uint32_t k = problem.k();
  HntpResult result;
  if (k == 0) return result;
  SpeculativeRoundPlanner planner(options.sampling, problem.targets);

  // Run-level resource envelope (see HATP; inactive budgets arm nothing).
  BudgetGate gate(options.sampling.budget);
  ScopedEngineBudget scoped_budget(engine, &gate);

  // Worst-case guarantee aggregation (see AdaptiveRunResult docs).
  double worst_eps = eps_thr;
  double worst_additive = 0.0;
  uint64_t min_decided_theta = UINT64_MAX;
  bool any_estimate_decision = false;
  bool any_blind_decision = false;
  // HNTP has no environment: the bases a speculative answer depends on
  // (seed bitmap, T \ examined) only change shape on a SELECTION (abandons
  // are exactly the progressive clears the planner models), so the
  // staleness epoch is simply the number of selections so far.
  uint64_t selection_epoch = 0;

  // S_{i-1}: selected so far (stays in the graph — nonadaptive).
  BitVector seed_bitmap(n);
  // T_{i-1} \ {u_i}: selected seeds + undecided candidates.
  BitVector t_bitmap(n);
  for (NodeId t : problem.targets) t_bitmap.Set(t);

  for (size_t pos = 0; pos < problem.targets.size(); ++pos) {
    const NodeId u = problem.targets[pos];
    obs::TraceSpan decision_span("decision");
    decision_span.AnnotateU64("node", u);
    t_bitmap.Clear(u);  // rear base excludes the node under examination

    const double cost = problem.CostOf(u);
    double eps = options.initial_relative_error;
    double zeta = Clamp(options.initial_spread_error / nd, 1.0 / nd, 0.5);
    double delta = 1.0 / (static_cast<double>(k) * nd);

    double fest = 0.0;
    double rest = 0.0;
    uint64_t used_this_iter = 0;
    uint32_t rounds = 0;
    bool decided = false;
    bool budget_exhausted = false;
    // Evidence the decision ends up standing on when the schedule is cut
    // short (updated after every completed round).
    uint64_t last_theta = 0;
    double last_eps = 1.0;
    double last_az = nd;
    bool forced = false;

    while (!decided) {
      const uint64_t theta = HatpSampleSize(eps, zeta, delta);
      obs::TraceSpan round_span("round");
      round_span.AnnotateU64("theta", theta);
      if (rounds == 0) planner.Begin(pos, u, selection_epoch, theta);
      // One round: served from a stored speculative answer, or front/rear
      // conditional coverage on one shared pool (batched) / two independent
      // pools R1, R2 (the literal Section VI-A tailoring).
      FrontRearHits hits;
      const Result<SpeculativeRoundPlanner::RoundStep> round =
          planner.NextRound(
              engine, u, seed_bitmap, t_bitmap, /*removed=*/nullptr, n,
              theta, selection_epoch,
              options.sampling.max_rr_sets_per_decision - used_this_iter,
              rng, &hits);
      if (!round.ok()) {
        // Allocation failure is absorbed — the decision proceeds on the
        // rounds already completed; real engine faults propagate.
        if (!round.status().IsResourceExhausted()) return round.status();
        forced = true;
        budget_exhausted = rounds == 0;
        result.degradation_events.push_back(
            {DegradationReason::kAllocFailure, u, rounds, theta,
             last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(DegradationReason::kAllocFailure));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      const SpeculativeRoundPlanner::RoundStep round_step = round.value();
      if (round_step == SpeculativeRoundPlanner::RoundStep::kOverBudget) {
        if (options.fail_on_budget_exhausted) {
          return Status::OutOfBudget(
              "HNTP: deciding node " + std::to_string(u) + " needs " +
              std::to_string(RoundRrSets(theta, planner.batched())) +
              " more RR sets (budget " +
              std::to_string(options.sampling.max_rr_sets_per_decision) +
              ")");
        }
        // No completed round: nothing to decide from — do not select on
        // fest = rest = 0, count the abort explicitly.
        forced = true;
        budget_exhausted = rounds == 0;
        result.degradation_events.push_back(
            {DegradationReason::kRrBudget, u, rounds, theta, last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(DegradationReason::kRrBudget));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      if (round_step == SpeculativeRoundPlanner::RoundStep::kDegraded) {
        // The run budget tripped. A truncated pool (hits.theta > 0) still
        // gives honest estimates over what it drew — it becomes the final
        // round; otherwise the previous round's estimates stand.
        if (hits.theta > 0) {
          used_this_iter += RoundRrSets(hits.theta, planner.batched());
          ++rounds;
          NotePolicyRound();
          result.total_coverage_queries += hits.queries;
          result.total_count_pools += hits.pools;
          const double scale = nd / static_cast<double>(hits.theta);
          fest = static_cast<double>(hits.front) * scale;
          rest = static_cast<double>(hits.rear) * scale;
          last_theta = hits.theta;
          last_eps = eps;
          last_az = nd * zeta;
        }
        forced = true;
        budget_exhausted = rounds == 0;
        const BudgetGate* engine_gate = engine->budget();
        result.degradation_events.push_back(
            {ReasonFromBudgetStop(engine_gate != nullptr
                                      ? engine_gate->Exhausted()
                                      : BudgetStop::kNone),
             u, rounds, theta, last_theta});
        NoteDegradationEvent(result.degradation_events.back());
        decision_span.AnnotateU64(
            "degraded_reason",
            static_cast<uint64_t>(result.degradation_events.back().reason));
        if (budget_exhausted) {
          ++result.budget_exhausted_decisions;
        } else {
          ++result.budget_truncated_decisions;
        }
        break;
      }
      if (round_step == SpeculativeRoundPlanner::RoundStep::kSampled) {
        used_this_iter += RoundRrSets(theta, planner.batched());
      }
      ++rounds;
      NotePolicyRound();
      result.total_coverage_queries += hits.queries;
      result.total_count_pools += hits.pools;
      const double scale = nd / static_cast<double>(hits.theta);
      fest = static_cast<double>(hits.front) * scale;
      rest = static_cast<double>(hits.rear) * scale;
      last_theta = hits.theta;
      last_eps = eps;
      last_az = nd * zeta;

      const double az = nd * zeta;
      const bool c1 =
          (fest + rest - 2.0 * az) / (1.0 + eps) >= 2.0 * cost ||
          (rest - az) / (1.0 + eps) >= cost ||
          (fest + rest + 2.0 * az) / (1.0 - eps) <= 2.0 * cost ||
          (fest + az) / (1.0 - eps) <= cost;
      const bool c2 = eps <= eps_thr && az <= 1.0;
      if (c1 || c2) {
        decided = true;
        break;
      }

      const bool eps_floored = eps <= eps_thr;
      const bool zeta_floored = az <= 1.0;
      if (eps_floored && !zeta_floored) {
        zeta /= 2.0;
      } else if (!eps_floored && zeta_floored) {
        eps /= 2.0;
      } else if (fest >= 10.0 * az) {
        eps /= 2.0;
      } else if (fest <= az) {
        zeta /= 2.0;
      } else {
        eps /= std::sqrt(2.0);
        zeta /= std::sqrt(2.0);
      }
      eps = std::max(eps, eps_thr);
      zeta = std::max(zeta, 1.0 / nd);
      delta /= 2.0;
    }

    result.total_rr_sets += used_this_iter;
    result.max_rr_sets_per_iteration =
        std::max(result.max_rr_sets_per_iteration, used_this_iter);

    if (budget_exhausted) {
      // No estimate at all: the guarantee trackers take trivial bounds
      // (the candidate is conservatively not selected).
      any_blind_decision = true;
      worst_eps = 1.0;
      worst_additive = std::max(worst_additive, nd);
    } else {
      any_estimate_decision = true;
      min_decided_theta = std::min(min_decided_theta, last_theta);
      if (forced) worst_eps = std::max(worst_eps, last_eps);
      worst_additive = std::max(worst_additive, last_az);
      if (fest + rest >= 2.0 * cost) {
        result.seeds.push_back(u);
        seed_bitmap.Set(u);
        t_bitmap.Set(u);  // selected nodes remain in T (Alg 1 semantics)
        ++selection_epoch;
      }
    }
    NotePolicyDecision();
  }

  result.effective_epsilon = worst_eps;
  result.achieved_additive_error = worst_additive;
  result.achieved_theta = (!any_estimate_decision || any_blind_decision)
                              ? 0
                              : min_decided_theta;
  planner.ExportStats(&result);
  return result;
}

}  // namespace atpm
