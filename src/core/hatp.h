#ifndef ATPM_CORE_HATP_H_
#define ATPM_CORE_HATP_H_

#include "core/policy.h"
#include "diffusion/diffusion_model.h"
#include "rris/sampling_engine.h"

namespace atpm {

/// Options for HatpPolicy (Alg 4). Paper defaults: n_i ζ_0 = 64, ε_0 = 0.5,
/// ε = 0.05.
struct HatpOptions {
  /// Diffusion model for spread estimation; must match the model the
  /// environment's realization was sampled under.
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Initial relative error ε_0 (>= relative_error_threshold).
  double initial_relative_error = 0.5;
  /// Relative-error threshold ε — the knob in HATP's approximation bound
  /// (Theorem 4) and the variable of the paper's Fig. 4(b) sensitivity test.
  double relative_error_threshold = 0.05;
  /// Initial additive spread error n_i * ζ_0.
  double initial_spread_error = 64.0;
  /// Shared sampling knobs: backend, threads, the per-decision RR budget,
  /// and round batching (one shared pool per halving round vs the literal
  /// two pools of Algorithm 4).
  SamplingOptions sampling;
  /// true: exceeding the budget aborts with OutOfBudget; false (default):
  /// the decision is forced with the current estimates.
  bool fail_on_budget_exhausted = false;
};

/// HATP — adaptive double greedy with *hybrid* (relative + additive) error
/// (Algorithm 4), the paper's practical algorithm. Two changes vs ADDATP:
///
///  1. Sample sizes follow the Relative+Additive concentration bound
///     (Lemma 7): θ = (1+ε_i/3)² / (2 ε_i ζ_i) · ln(4/δ_i) — linear in
///     1/ζ_i instead of ADDATP's quadratic, an Θ(ε n) efficiency gain
///     (Theorem 5).
///  2. The error pair (ε_i, ζ_i) is tuned adaptively per round (Lines
///     19–23): nodes with large marginal spread tighten the relative error,
///     nodes with small marginal spread tighten the additive error.
///
/// Stopping rules: C'1 certifies the select/abandon comparison
/// fest + rest vs 2c(u_i) under the hybrid confidence interval; C'2 fires
/// once both errors reach their floors (ε_i <= ε and n_i ζ_i <= 1).
/// Theorem 4: expected profit >= (Λ(π_opt) − 2(k+εc(T))/(1−ε) − 2)/3.
class HatpPolicy final : public AdaptivePolicy {
 public:
  explicit HatpPolicy(const HatpOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "HATP"; }

  /// Samples through `engine` (not owned; must be bound to the run's graph
  /// and options.model) instead of the policy's own backend — lets several
  /// policies share one warm worker pool. Pass nullptr to revert.
  void set_engine(SamplingEngine* engine) override { engine_.Use(engine); }

  Result<AdaptiveRunResult> Run(const ProfitProblem& problem,
                                AdaptiveEnvironment* env, Rng* rng) override;

 private:
  HatpOptions options_;
  SamplingEngineHandle engine_;
};

}  // namespace atpm

#endif  // ATPM_CORE_HATP_H_
