#include "core/nonadaptive_greedy.h"

#include <algorithm>

#include "common/bit_vector.h"
#include "rris/coverage_batch.h"
#include "rris/rr_collection.h"
#include "rris/sampling_engine.h"

namespace atpm {

namespace {

// Initial Cov_R({t}) for every target as one batched coverage query over
// the shared pool. The callers build the inverted index first (their
// incremental updates need it), so AnswerBatch answers off the index in
// O(1) per target.
std::vector<uint64_t> InitialCoverage(const RRCollection& pool,
                                      std::span<const NodeId> targets) {
  CoverageQueryBatch batch;
  for (NodeId t : targets) batch.Add(t);
  pool.AnswerBatch(&batch);
  std::vector<uint64_t> coverage(pool.num_nodes(), 0);
  for (size_t i = 0; i < targets.size(); ++i) {
    coverage[targets[i]] = batch.hits(i);
  }
  return coverage;
}

Status ValidateFixedSample(const ProfitProblem& problem,
                           uint64_t num_rr_sets, SamplingEngine* engine) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  if (num_rr_sets == 0) {
    return Status::InvalidArgument("fixed-sample greedy: num_rr_sets == 0");
  }
  if (&engine->graph() != problem.graph) {
    return Status::InvalidArgument(
        "fixed-sample greedy: sampling engine bound to a different graph");
  }
  return Status::OK();
}

}  // namespace

Result<NonadaptiveResult> RunNsg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  SerialSamplingEngine engine(*problem.graph);
  return RunNsg(problem, num_rr_sets, rng, &engine);
}

Result<NonadaptiveResult> RunNsg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng,
                                 SamplingEngine* engine) {
  ATPM_RETURN_NOT_OK(ValidateFixedSample(problem, num_rr_sets, engine));
  const Graph& graph = *problem.graph;
  const NodeId n = graph.num_nodes();

  engine->ResetPool();
  ATPM_RETURN_NOT_OK(
      engine->TryGeneratePool(/*removed=*/nullptr, n, num_rr_sets, rng));
  RRCollection& pool = engine->pool();
  // Estimates scale by the sets actually generated — identical to
  // num_rr_sets normally, the honest denominator when a BudgetGate
  // truncated the pool. An empty pool (budget spent before one set) has no
  // evidence at all: return the empty seed set rather than divide by zero.
  if (pool.num_sets() == 0) return NonadaptiveResult{};
  const double scale =
      static_cast<double>(n) / static_cast<double>(pool.num_sets());
  pool.BuildIndex();

  // Exact marginal coverage per node, seeded by one batched pool query and
  // maintained by decrement on coverage.
  std::vector<uint64_t> gain = InitialCoverage(pool, problem.targets);
  std::vector<bool> eligible(n, false);
  for (NodeId t : problem.targets) eligible[t] = true;
  std::vector<bool> covered(pool.num_sets(), false);

  NonadaptiveResult result;
  result.num_rr_sets = pool.num_sets();
  result.batched_queries = problem.targets.size();
  uint64_t covered_total = 0;

  for (uint32_t round = 0; round < problem.k(); ++round) {
    NodeId best = n;
    double best_profit_gain = 0.0;
    for (NodeId t : problem.targets) {
      if (!eligible[t]) continue;
      const double profit_gain =
          static_cast<double>(gain[t]) * scale - problem.CostOf(t);
      if (best == n || profit_gain > best_profit_gain) {
        best = t;
        best_profit_gain = profit_gain;
      }
    }
    if (best == n || best_profit_gain <= 0.0) break;  // no positive marginal

    result.seeds.push_back(best);
    eligible[best] = false;
    covered_total += gain[best];
    for (uint32_t set_id : pool.CoveringSets(best)) {
      if (covered[set_id]) continue;
      covered[set_id] = true;
      for (NodeId w : pool.set(set_id)) {
        if (gain[w] > 0) --gain[w];
      }
    }
  }

  result.estimated_profit = static_cast<double>(covered_total) * scale -
                            problem.CostOfSet(result.seeds);
  return result;
}

Result<NonadaptiveResult> RunNdg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  SerialSamplingEngine engine(*problem.graph);
  return RunNdg(problem, num_rr_sets, rng, &engine);
}

Result<NonadaptiveResult> RunNdg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng,
                                 SamplingEngine* engine) {
  ATPM_RETURN_NOT_OK(ValidateFixedSample(problem, num_rr_sets, engine));
  const Graph& graph = *problem.graph;
  const NodeId n = graph.num_nodes();

  engine->ResetPool();
  ATPM_RETURN_NOT_OK(
      engine->TryGeneratePool(/*removed=*/nullptr, n, num_rr_sets, rng));
  RRCollection& pool = engine->pool();
  // See RunNsg: honest denominator under budget truncation, empty seed set
  // when the budget left no evidence at all.
  if (pool.num_sets() == 0) return NonadaptiveResult{};
  const double scale =
      static_cast<double>(n) / static_cast<double>(pool.num_sets());
  pool.BuildIndex();

  // count_s[u]: sets containing u not yet covered by S (front marginal),
  // seeded by one batched pool query.
  std::vector<uint64_t> count_s = InitialCoverage(pool, problem.targets);
  std::vector<bool> covered_by_s(pool.num_sets(), false);

  // cand_count[set]: members of the current T (selected + undecided) in the
  // set; Cov(u | T \ {u}) = #sets where u is the only remaining member.
  std::vector<uint32_t> cand_count(pool.num_sets(), 0);
  {
    BitVector in_t(n);
    for (NodeId t : problem.targets) in_t.Set(t);
    for (uint64_t i = 0; i < pool.num_sets(); ++i) {
      for (NodeId w : pool.set(i)) {
        if (in_t.Test(w)) ++cand_count[i];
      }
    }
  }

  NonadaptiveResult result;
  result.num_rr_sets = pool.num_sets();
  result.batched_queries = problem.targets.size();
  uint64_t covered_total = 0;

  for (NodeId u : problem.targets) {
    const double cost = problem.CostOf(u);
    const double z_plus = static_cast<double>(count_s[u]) * scale - cost;

    uint64_t exclusive = 0;
    for (uint32_t set_id : pool.CoveringSets(u)) {
      if (cand_count[set_id] == 1) ++exclusive;
    }
    const double z_minus = cost - static_cast<double>(exclusive) * scale;

    if (z_plus >= z_minus) {
      result.seeds.push_back(u);
      covered_total += count_s[u];
      for (uint32_t set_id : pool.CoveringSets(u)) {
        if (covered_by_s[set_id]) continue;
        covered_by_s[set_id] = true;
        for (NodeId w : pool.set(set_id)) {
          if (count_s[w] > 0) --count_s[w];
        }
      }
      // u stays in T, so cand_count is unchanged.
    } else {
      // u leaves T: it no longer shields sets it covers.
      for (uint32_t set_id : pool.CoveringSets(u)) {
        ATPM_DCHECK(cand_count[set_id] > 0);
        --cand_count[set_id];
      }
    }
  }

  result.estimated_profit = static_cast<double>(covered_total) * scale -
                            problem.CostOfSet(result.seeds);
  return result;
}

}  // namespace atpm
