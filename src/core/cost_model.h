#ifndef ATPM_CORE_COST_MODEL_H_
#define ATPM_CORE_COST_MODEL_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace atpm {

/// How seeding costs are distributed across nodes (Section VI-A).
enum class CostScheme {
  /// c(u) proportional to out-degree (cost correlates with influence).
  kDegreeProportional,
  /// Every node has the same cost.
  kUniform,
  /// Costs drawn uniformly at random.
  kRandom,
};

/// Human-readable name for a scheme ("degree", "uniform", "random").
const char* CostSchemeName(CostScheme scheme);

/// Builds the paper's *calibrated* cost vector for the first experimental
/// setting: costs are zero outside `targets` and distributed over `targets`
/// according to `scheme`, normalized so that c(T) equals `target_budget`
/// (the paper sets target_budget = E_l[I(T)], a high-probability lower
/// bound on the target set's expected spread).
///
/// Fails with InvalidArgument on an empty target set, non-positive budget,
/// or (for the degree scheme) a target set whose total out-degree is zero.
Result<std::vector<double>> BuildCalibratedCosts(
    const Graph& graph, std::span<const NodeId> targets, CostScheme scheme,
    double target_budget, Rng* rng);

/// Builds the *predefined* cost vector for the second experimental setting
/// (Section VI-D): every node of V gets a cost, distributed by `scheme` and
/// normalized so that c(V) = lambda * n (lambda is the paper's "ratio of
/// cost to node number").
Result<std::vector<double>> BuildPredefinedCosts(const Graph& graph,
                                                 CostScheme scheme,
                                                 double lambda, Rng* rng);

}  // namespace atpm

#endif  // ATPM_CORE_COST_MODEL_H_
