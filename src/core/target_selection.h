#ifndef ATPM_CORE_TARGET_SELECTION_H_
#define ATPM_CORE_TARGET_SELECTION_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "core/cost_model.h"
#include "core/profit.h"
#include "rris/sampling_engine.h"

namespace atpm {

/// How the target set T is derived in the predefined-cost setting.
enum class TargetMethod {
  kNsg,  // simple greedy over all nodes
  kNdg,  // double greedy over all nodes
};

/// Options for the target-selection pipelines.
struct TargetSelectionOptions {
  /// IMM accuracy for the top-k pipeline.
  double imm_epsilon = 0.5;
  double imm_ell = 1.0;
  /// RR pool size used to estimate the spread lower bound E_l[I(T)].
  uint64_t bound_rr_sets = 1ull << 16;
  /// Failure probability of the lower bound.
  double bound_delta = 1e-3;
  /// Pool size handed to NSG/NDG when they derive T (predefined setting).
  uint64_t derive_rr_sets = 1ull << 16;
  /// Seed for all sampling in the pipeline.
  uint64_t seed = 7;
  /// RR sampling backend shared by every stage of the pipeline (IMM,
  /// bound estimation, NSG/NDG derivation).
  SamplingBackend engine = SamplingBackend::kAuto;
  /// Worker threads for the parallel backend (0 = hardware concurrency).
  uint32_t num_threads = 1;
  /// RR-generation kernel shared by every stage of the pipeline.
  SamplingKernel kernel = SamplingKernel::kGeometricJump;
};

/// A fully-specified TPM instance plus calibration metadata.
struct TargetSelectionResult {
  ProfitProblem problem;
  /// E_l[I(T)]: the spread lower bound the costs were calibrated against
  /// (c(T) = E_l[I(T)] in the top-k pipeline; informational otherwise).
  double spread_lower_bound = 0.0;
  /// Sampling effort of every stage of the pipeline (IMM pool, bound
  /// estimation, NSG/NDG derivation), aggregated by the shared engine.
  /// Note the stages deliberately do NOT share pools: T is chosen
  /// adaptively from the IMM/derivation pool, so the spread lower bound
  /// must be estimated on a fresh pool or the martingale bound breaks.
  SamplingStats sampling_stats;
};

/// Experimental setting 1 (Section VI-A): pick the top-k influential nodes
/// via IMM as the target set T, estimate E_l[I(T)] with a martingale lower
/// bound, and distribute exactly that budget over T according to `scheme`
/// (degree-proportional / uniform / random). The resulting instance has
/// ρ(T) ≈ E[I(T)] − E_l[I(T)] >= 0 whp, matching the paper's nonnegative-
/// profit assumption.
Result<TargetSelectionResult> BuildTopKTargetProblem(
    const Graph& graph, uint32_t k, CostScheme scheme,
    const TargetSelectionOptions& options = {});

/// Experimental setting 2 (Section VI-D): assign every node of V a
/// predefined cost with c(V) = lambda * n under `scheme`, then derive the
/// target set T by running NSG or NDG over the whole graph with those
/// costs. Smaller lambda yields a larger T.
Result<TargetSelectionResult> BuildPredefinedCostProblem(
    const Graph& graph, double lambda, CostScheme scheme, TargetMethod method,
    const TargetSelectionOptions& options = {});

}  // namespace atpm

#endif  // ATPM_CORE_TARGET_SELECTION_H_
