#ifndef ATPM_CORE_CONCENTRATION_H_
#define ATPM_CORE_CONCENTRATION_H_

#include <cstdint>

namespace atpm {

/// Concentration machinery behind ADDATP and HATP. All quantities are in
/// *normalized* units: an RR-coverage estimator averages indicators
/// X_j in [0, 1], so a fractional error ζ corresponds to an absolute spread
/// error of n_i * ζ on a residual graph with n_i alive nodes.

/// Two-sided Hoeffding tail (Lemma 4): Pr[|X̄ - μ| >= ζ] <= 2 exp(-2 θ ζ²).
double HoeffdingTwoSidedTail(uint64_t theta, double zeta);

/// Samples needed so the two-sided Hoeffding tail is <= delta:
/// θ = ln(2/δ) / (2 ζ²). ADDATP (Alg 3, Line 8) uses θ = ln(8/δ)/(2ζ²),
/// which buys a union bound over the four one-sided events of one round;
/// that exact form is AddAtpSampleSize.
uint64_t HoeffdingSampleSize(double zeta, double delta);

/// θ = ceil( ln(8/δ) / (2 ζ²) ) — ADDATP's per-round pool size.
uint64_t AddAtpSampleSize(double zeta, double delta);

/// Upper tail of the Relative+Additive bound (Lemma 7, Eq. 10):
/// Pr[X̄ >= (1+ε)μ + ζ] <= exp( -2 θ ε ζ / (1+ε/3)² ).
double RelAddUpperTail(uint64_t theta, double eps, double zeta);

/// Lower tail of the Relative+Additive bound (Lemma 7, Eq. 11):
/// Pr[X̄ <= (1-ε)μ - ζ] <= exp( -2 θ ε ζ ).
double RelAddLowerTail(uint64_t theta, double eps, double zeta);

/// θ = ceil( (1+ε/3)² / (2 ε ζ) * ln(4/δ) ) — HATP's per-round pool size
/// (Alg 4, Line 8): both tails are <= δ/4 at this θ.
uint64_t HatpSampleSize(double eps, double zeta, double delta);

}  // namespace atpm

#endif  // ATPM_CORE_CONCENTRATION_H_
