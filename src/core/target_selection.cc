#include "core/target_selection.h"

#include <utility>

#include "common/bit_vector.h"
#include "core/nonadaptive_greedy.h"
#include "im/imm.h"
#include "im/spread_bound.h"
#include "rris/rr_collection.h"
#include "rris/sampling_engine.h"

namespace atpm {

namespace {

// E_l[I(T)]: coverage of T over a fresh pool, pushed through the martingale
// lower bound. The pool MUST be fresh (not the one T was derived from):
// reusing the derivation pool would condition the bound on the very samples
// that picked T and void the concentration guarantee.
Result<double> EstimateSpreadLowerBound(SamplingEngine* engine,
                                        std::span<const NodeId> targets,
                                        uint64_t num_rr_sets, double delta,
                                        Rng* rng) {
  const NodeId n = engine->graph().num_nodes();
  engine->ResetPool();
  ATPM_RETURN_NOT_OK(
      engine->TryGeneratePool(/*removed=*/nullptr, n, num_rr_sets, rng));
  const RRCollection& pool = engine->pool();
  // A budget-truncated pool still certifies a (weaker) martingale bound
  // over what it drew; an empty one bounds nothing.
  if (pool.num_sets() == 0) return 0.0;

  BitVector members(n);
  for (NodeId t : targets) members.Set(t);
  const uint64_t cov = pool.CoverageOfSet(members);
  return SpreadLowerBound(cov, pool.num_sets(), n, delta);
}

// One engine drives every stage of a pipeline call.
std::unique_ptr<SamplingEngine> PipelineEngine(
    const Graph& graph, const TargetSelectionOptions& options) {
  SamplingEngineOptions engine_options;
  engine_options.backend = options.engine;
  engine_options.num_threads = options.num_threads;
  engine_options.kernel = options.kernel;
  return CreateSamplingEngine(graph, DiffusionModel::kIndependentCascade,
                              engine_options);
}

}  // namespace

Result<TargetSelectionResult> BuildTopKTargetProblem(
    const Graph& graph, uint32_t k, CostScheme scheme,
    const TargetSelectionOptions& options) {
  std::unique_ptr<SamplingEngine> engine = PipelineEngine(graph, options);
  ImmOptions imm_options;
  imm_options.epsilon = options.imm_epsilon;
  imm_options.ell = options.imm_ell;
  imm_options.seed = options.seed;
  Result<ImmResult> imm = RunImm(graph, k, imm_options, engine.get());
  if (!imm.ok()) return imm.status();

  Rng rng(options.seed ^ 0x5ca1ab1eULL);
  const std::vector<NodeId>& targets = imm.value().seeds;
  const Result<double> bound = EstimateSpreadLowerBound(
      engine.get(), targets, options.bound_rr_sets, options.bound_delta,
      &rng);
  if (!bound.ok()) return bound.status();
  const double lower_bound = bound.value();
  if (lower_bound <= 0.0) {
    return Status::Internal(
        "top-k target selection: vanishing spread lower bound");
  }

  Result<std::vector<double>> costs =
      BuildCalibratedCosts(graph, targets, scheme, lower_bound, &rng);
  if (!costs.ok()) return costs.status();

  TargetSelectionResult result;
  result.problem.graph = &graph;
  result.problem.targets = targets;
  result.problem.costs = std::move(costs).value();
  result.spread_lower_bound = lower_bound;
  result.sampling_stats = engine->stats();
  ATPM_RETURN_NOT_OK(result.problem.Validate());
  return result;
}

Result<TargetSelectionResult> BuildPredefinedCostProblem(
    const Graph& graph, double lambda, CostScheme scheme, TargetMethod method,
    const TargetSelectionOptions& options) {
  std::unique_ptr<SamplingEngine> engine = PipelineEngine(graph, options);
  Rng rng(options.seed ^ 0xdecafbadULL);
  Result<std::vector<double>> costs =
      BuildPredefinedCosts(graph, scheme, lambda, &rng);
  if (!costs.ok()) return costs.status();

  // Derive T: run the chosen nonadaptive baseline over *all* nodes.
  ProfitProblem all_nodes;
  all_nodes.graph = &graph;
  all_nodes.targets.resize(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) all_nodes.targets[u] = u;
  all_nodes.costs = costs.value();

  Result<NonadaptiveResult> derived =
      method == TargetMethod::kNsg
          ? RunNsg(all_nodes, options.derive_rr_sets, &rng, engine.get())
          : RunNdg(all_nodes, options.derive_rr_sets, &rng, engine.get());
  if (!derived.ok()) return derived.status();
  if (derived.value().seeds.empty()) {
    return Status::InvalidArgument(
        "predefined-cost target selection: lambda too large, derived T is "
        "empty");
  }

  TargetSelectionResult result;
  result.problem.graph = &graph;
  result.problem.targets = derived.value().seeds;
  result.problem.costs = std::move(costs).value();
  const Result<double> bound = EstimateSpreadLowerBound(
      engine.get(), result.problem.targets, options.bound_rr_sets,
      options.bound_delta, &rng);
  if (!bound.ok()) return bound.status();
  result.spread_lower_bound = bound.value();
  result.sampling_stats = engine->stats();
  ATPM_RETURN_NOT_OK(result.problem.Validate());
  return result;
}

}  // namespace atpm
