#include "core/adg.h"

#include <algorithm>
#include <vector>

#include "common/bit_vector.h"

namespace atpm {

Result<AdaptiveRunResult> AdgPolicy::Run(const ProfitProblem& problem,
                                         AdaptiveEnvironment* env, Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  if (randomized_ && rng == nullptr) {
    return Status::InvalidArgument("randomized ADG needs an Rng");
  }
  if (&oracle_->graph() != problem.graph ||
      &env->graph() != problem.graph) {
    return Status::InvalidArgument("ADG: oracle/environment graph mismatch");
  }
  if (env->num_activated() != 0) {
    return Status::InvalidArgument("ADG: environment must be fresh");
  }

  const NodeId n = problem.graph->num_nodes();
  AdaptiveRunResult result;
  result.steps.reserve(problem.k());

  // Candidate set T_{i-1}: targets not yet abandoned/activated.
  BitVector candidates(n);
  for (NodeId t : problem.targets) candidates.Set(t);

  for (NodeId u : problem.targets) {
    AdaptiveStepRecord step;
    step.node = u;

    if (env->IsActivated(u)) {
      candidates.Clear(u);
      step.decision = SeedDecision::kSkippedActivated;
      result.steps.push_back(step);
      continue;
    }

    const BitVector& removed = env->activated();

    // Front: all previously selected seeds are activated (hence removed
    // from G_i), so E[I_{G_i}(u | S_{i-1})] = E[I_{G_i}({u})].
    const double rho_f =
        oracle_->ExpectedSpread({&u, 1}, &removed) - problem.CostOf(u);

    // Rear: marginal spread of u on top of the other surviving candidates.
    std::vector<NodeId> rest;
    rest.reserve(problem.k());
    for (NodeId t : problem.targets) {
      if (t != u && candidates.Test(t)) rest.push_back(t);
    }
    const double rho_r =
        problem.CostOf(u) -
        oracle_->ExpectedMarginalSpread(u, rest, &removed);

    bool keep;
    if (!randomized_) {
      keep = rho_f >= rho_r;
    } else {
      const double a = std::max(rho_f, 0.0);
      const double b = std::max(rho_r, 0.0);
      keep = (a + b <= 0.0) ? true : rng->UniformDouble() < a / (a + b);
    }

    if (keep) {
      const std::vector<NodeId>& activated = env->SeedAndObserve(u);
      step.decision = SeedDecision::kSelected;
      step.newly_activated = static_cast<uint32_t>(activated.size());
      result.seeds.push_back(u);
      // The paper removes realized activations from the candidate set
      // immediately (Section II-B); u itself is in A(u).
      for (NodeId v : activated) candidates.Clear(v);
    } else {
      candidates.Clear(u);
      step.decision = SeedDecision::kAbandoned;
    }
    result.steps.push_back(step);
  }

  FinalizeAdaptiveResult(problem, *env, &result);
  return result;
}

}  // namespace atpm
