#include "core/profit.h"

#include <string>

#include "common/bit_vector.h"

namespace atpm {

double ProfitProblem::CostOfSet(std::span<const NodeId> nodes) const {
  double total = 0.0;
  for (NodeId u : nodes) total += costs[u];
  return total;
}

Status ProfitProblem::Validate() const {
  if (graph == nullptr) {
    return Status::InvalidArgument("ProfitProblem: graph is null");
  }
  if (costs.size() != graph->num_nodes()) {
    return Status::InvalidArgument(
        "ProfitProblem: costs has size " + std::to_string(costs.size()) +
        ", expected n = " + std::to_string(graph->num_nodes()));
  }
  for (double c : costs) {
    if (c < 0.0) {
      return Status::InvalidArgument("ProfitProblem: negative cost");
    }
  }
  BitVector seen(graph->num_nodes());
  for (NodeId u : targets) {
    if (u >= graph->num_nodes()) {
      return Status::InvalidArgument("ProfitProblem: target " +
                                     std::to_string(u) + " out of range");
    }
    if (seen.Test(u)) {
      return Status::InvalidArgument("ProfitProblem: duplicate target " +
                                     std::to_string(u));
    }
    seen.Set(u);
  }
  return Status::OK();
}

double RealizedProfit(const ProfitProblem& problem, const Realization& world,
                      std::span<const NodeId> seeds) {
  const uint32_t spread = world.Spread(seeds);
  return static_cast<double>(spread) - problem.CostOfSet(seeds);
}

double OracleProfit(const ProfitProblem& problem, SpreadOracle* oracle,
                    std::span<const NodeId> seeds, const BitVector* removed) {
  return oracle->ExpectedSpread(seeds, removed) - problem.CostOfSet(seeds);
}

double AverageRealizedProfit(const ProfitProblem& problem,
                             std::span<const Realization> worlds,
                             std::span<const NodeId> seeds) {
  if (worlds.empty()) return 0.0;
  double sum = 0.0;
  for (const Realization& world : worlds) {
    sum += RealizedProfit(problem, world, seeds);
  }
  return sum / static_cast<double>(worlds.size());
}

}  // namespace atpm
