#include "core/ars.h"

namespace atpm {

Result<AdaptiveRunResult> ArsPolicy::Run(const ProfitProblem& problem,
                                         AdaptiveEnvironment* env, Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  if (&env->graph() != problem.graph) {
    return Status::InvalidArgument("ARS: environment graph mismatch");
  }
  if (env->num_activated() != 0) {
    return Status::InvalidArgument("ARS: environment must be fresh");
  }

  AdaptiveRunResult result;
  result.steps.reserve(problem.k());
  for (NodeId u : problem.targets) {
    AdaptiveStepRecord step;
    step.node = u;
    if (env->IsActivated(u)) {
      // Activated candidates are "not examined and selected by ARS".
      step.decision = SeedDecision::kSkippedActivated;
    } else if (rng->Bernoulli(0.5)) {
      const std::vector<NodeId>& activated = env->SeedAndObserve(u);
      step.decision = SeedDecision::kSelected;
      step.newly_activated = static_cast<uint32_t>(activated.size());
      result.seeds.push_back(u);
    } else {
      step.decision = SeedDecision::kAbandoned;
    }
    result.steps.push_back(step);
  }
  FinalizeAdaptiveResult(problem, *env, &result);
  return result;
}

std::vector<NodeId> RunRandomSet(const ProfitProblem& problem, Rng* rng) {
  std::vector<NodeId> seeds;
  for (NodeId u : problem.targets) {
    if (rng->Bernoulli(0.5)) seeds.push_back(u);
  }
  return seeds;
}

}  // namespace atpm
