#ifndef ATPM_CORE_POLICY_H_
#define ATPM_CORE_POLICY_H_

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/profit.h"
#include "diffusion/adaptive_environment.h"

namespace atpm {

/// What happened to one examined candidate u_i.
enum class SeedDecision {
  /// u_i was added to the seed set (front profit won).
  kSelected,
  /// u_i was dropped from the candidate set (rear profit won).
  kAbandoned,
  /// u_i was already activated by an earlier seed and skipped (Alg 2–4,
  /// Lines 3–5).
  kSkippedActivated,
};

/// Telemetry for one iteration of an adaptive policy.
struct AdaptiveStepRecord {
  NodeId node = 0;
  SeedDecision decision = SeedDecision::kAbandoned;
  /// |A(u_i)|: nodes newly activated if selected, else 0.
  uint32_t newly_activated = 0;
  /// RR sets generated while deciding this node (0 under the oracle model).
  uint64_t rr_sets_used = 0;
  /// Error-halving rounds run while deciding this node.
  uint32_t rounds = 0;
};

/// Outcome of running an adaptive policy against one environment (i.e., one
/// ground-truth realization φ).
struct AdaptiveRunResult {
  /// Seeds S_φ(π), in selection order.
  std::vector<NodeId> seeds;
  /// I_φ(S): total nodes activated.
  uint32_t realized_spread = 0;
  /// c(S).
  double seed_cost = 0.0;
  /// ρ_φ(S) = I_φ(S) − c(S).
  double realized_profit = 0.0;
  /// Total RR sets generated across all iterations.
  uint64_t total_rr_sets = 0;
  /// Largest RR-set count spent on a single iteration — the paper sizes the
  /// NSG/NDG baselines by this quantity (Section VI-A).
  uint64_t max_rr_sets_per_iteration = 0;
  /// Per-iteration telemetry (one record per examined candidate).
  std::vector<AdaptiveStepRecord> steps;
};

/// Interface of an adaptive seeding policy π: examines the targets of
/// `problem` in order, interacting with `env` (seed → observe → residual
/// update). Implementations: AdgPolicy (oracle model), AddAtpPolicy,
/// HatpPolicy (noise model), ArsPolicy (random baseline).
class AdaptivePolicy {
 public:
  virtual ~AdaptivePolicy() = default;

  /// Short identifier used in experiment tables ("ADG", "HATP", ...).
  virtual std::string_view name() const = 0;

  /// Runs the policy to completion. `env` must be fresh (no activations)
  /// and bound to the same graph as `problem`. `rng` drives the policy's
  /// internal randomness (sampling); the environment's world is fixed.
  virtual Result<AdaptiveRunResult> Run(const ProfitProblem& problem,
                                        AdaptiveEnvironment* env,
                                        Rng* rng) = 0;
};

/// Fills the realized spread/cost/profit fields of `result` from the final
/// environment state and the selected seeds.
void FinalizeAdaptiveResult(const ProfitProblem& problem,
                            const AdaptiveEnvironment& env,
                            AdaptiveRunResult* result);

}  // namespace atpm

#endif  // ATPM_CORE_POLICY_H_
