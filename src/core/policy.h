#ifndef ATPM_CORE_POLICY_H_
#define ATPM_CORE_POLICY_H_

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/profit.h"
#include "diffusion/adaptive_environment.h"
#include "rris/coverage_batch.h"
#include "rris/sampling_engine.h"

namespace atpm {

/// What happened to one examined candidate u_i.
enum class SeedDecision {
  /// u_i was added to the seed set (front profit won).
  kSelected,
  /// u_i was dropped from the candidate set (rear profit won).
  kAbandoned,
  /// u_i was already activated by an earlier seed and skipped (Alg 2–4,
  /// Lines 3–5).
  kSkippedActivated,
};

/// Telemetry for one iteration of an adaptive policy.
struct AdaptiveStepRecord {
  NodeId node = 0;
  SeedDecision decision = SeedDecision::kAbandoned;
  /// |A(u_i)|: nodes newly activated if selected, else 0.
  uint32_t newly_activated = 0;
  /// RR sets generated while deciding this node (0 under the oracle model).
  uint64_t rr_sets_used = 0;
  /// Coverage queries answered while deciding this node (2 per halving
  /// round: front + rear; 0 under the oracle model).
  uint64_t coverage_queries = 0;
  /// Error-halving rounds run while deciding this node.
  uint32_t rounds = 0;
};

/// Outcome of running an adaptive policy against one environment (i.e., one
/// ground-truth realization φ).
struct AdaptiveRunResult {
  /// Seeds S_φ(π), in selection order.
  std::vector<NodeId> seeds;
  /// I_φ(S): total nodes activated.
  uint32_t realized_spread = 0;
  /// c(S).
  double seed_cost = 0.0;
  /// ρ_φ(S) = I_φ(S) − c(S).
  double realized_profit = 0.0;
  /// Total RR sets generated across all iterations.
  uint64_t total_rr_sets = 0;
  /// Coverage queries answered across all iterations (2 per halving round).
  uint64_t total_coverage_queries = 0;
  /// Throwaway pools sampled across all iterations: 1 per halving round
  /// when rounds are batched, 2 when each query pays its own pool. The
  /// pool-reuse ratio total_coverage_queries / total_count_pools is 2.0 for
  /// batched rounds vs 1.0 for the paper's literal per-query sampling.
  uint64_t total_count_pools = 0;
  /// Largest RR-set count spent on a single iteration — the paper sizes the
  /// NSG/NDG baselines by this quantity (Section VI-A). With batched rounds
  /// this is in shared-pool units (θ per round), i.e. half the value of the
  /// unbatched accounting for the same error schedule.
  uint64_t max_rr_sets_per_iteration = 0;
  /// Per-iteration telemetry (one record per examined candidate).
  std::vector<AdaptiveStepRecord> steps;
};

/// Interface of an adaptive seeding policy π: examines the targets of
/// `problem` in order, interacting with `env` (seed → observe → residual
/// update). Implementations: AdgPolicy (oracle model), AddAtpPolicy,
/// HatpPolicy (noise model), ArsPolicy (random baseline).
class AdaptivePolicy {
 public:
  virtual ~AdaptivePolicy() = default;

  /// Short identifier used in experiment tables ("ADG", "HATP", ...).
  virtual std::string_view name() const = 0;

  /// Runs the policy to completion. `env` must be fresh (no activations)
  /// and bound to the same graph as `problem`. `rng` drives the policy's
  /// internal randomness (sampling); the environment's world is fixed.
  virtual Result<AdaptiveRunResult> Run(const ProfitProblem& problem,
                                        AdaptiveEnvironment* env,
                                        Rng* rng) = 0;
};

/// Fills the realized spread/cost/profit fields of `result` from the final
/// environment state and the selected seeds.
void FinalizeAdaptiveResult(const ProfitProblem& problem,
                            const AdaptiveEnvironment& env,
                            AdaptiveRunResult* result);

/// One halving round's front/rear conditional-coverage estimates — the
/// sampling step shared by the double-greedy decision loops (ADDATP Alg 3,
/// HATP Alg 4, HNTP). Batched: ONE pool of `theta` RR sets answers both
/// queries through `batch` (reused scratch). Unbatched: the literal two
/// independent pools R1, R2, bit-identical to the pre-batching code paths
/// for a fixed seed.
struct FrontRearHits {
  uint64_t front = 0;
  uint64_t rear = 0;
  /// Throwaway pools this round sampled (1 batched, 2 unbatched).
  uint64_t pools = 0;
};
FrontRearHits SampleFrontRearRound(SamplingEngine* engine,
                                   CoverageQueryBatch* batch, NodeId u,
                                   const BitVector& front_base,
                                   const BitVector& rear_base,
                                   const BitVector* removed,
                                   uint32_t num_alive, uint64_t theta,
                                   bool batched, Rng* rng);

/// RR sets a round will draw under the given batching mode (the budget-
/// check quantity): theta for one shared pool, 2*theta for R1+R2.
inline uint64_t RoundRrSets(uint64_t theta, bool batched) {
  return batched ? theta : 2 * theta;
}

/// An adaptive run's largest per-iteration spend converted to shared-pool
/// units — the paper's NSG/NDG pool-sizing quantity (Section VI-A).
/// Batched rounds already account in shared-pool units; the literal
/// two-pool accounting counts R1+R2 and is halved to the same quantity.
inline uint64_t SharedPoolIterationSpend(const SamplingOptions& sampling,
                                         uint64_t max_rr_sets_per_iteration) {
  return sampling.batched_rounds ? max_rr_sets_per_iteration
                                 : max_rr_sets_per_iteration / 2;
}

}  // namespace atpm

#endif  // ATPM_CORE_POLICY_H_
