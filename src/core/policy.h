#ifndef ATPM_CORE_POLICY_H_
#define ATPM_CORE_POLICY_H_

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/profit.h"
#include "diffusion/adaptive_environment.h"
#include "rris/coverage_batch.h"
#include "rris/sampling_engine.h"

namespace atpm {

/// What happened to one examined candidate u_i.
enum class SeedDecision {
  /// u_i was added to the seed set (front profit won).
  kSelected,
  /// u_i was dropped from the candidate set (rear profit won).
  kAbandoned,
  /// u_i was already activated by an earlier seed and skipped (Alg 2–4,
  /// Lines 3–5).
  kSkippedActivated,
  /// The per-decision RR budget was exhausted before even one halving round
  /// completed, so there is NO estimate to decide from: u_i is conservatively
  /// not seeded, but explicitly marked (the historical code silently decided
  /// Line 13 on fest = rest = 0). Decisions whose budget ran out after at
  /// least one completed round instead decide from the last completed
  /// round's estimates and stay kSelected/kAbandoned.
  kBudgetExhausted,
};

/// Why a decision was forced to conclude with less evidence than its error
/// schedule requested (RunBudget exhaustion, the per-decision RR cap, or an
/// allocation failure absorbed by the degradation path).
enum class DegradationReason : uint8_t {
  /// The RunBudget wall-clock deadline passed.
  kDeadline,
  /// The RunBudget RR-pool byte cap was reached.
  kPoolBytes,
  /// The RunBudget CancelToken was cancelled.
  kCancelled,
  /// The per-decision RR cap (SamplingOptions::max_rr_sets_per_decision)
  /// could not fund the next round (and fail_on_budget_exhausted is off).
  kRrBudget,
  /// Pool growth threw std::bad_alloc; the decision proceeds on the RR
  /// sets drawn before the failure.
  kAllocFailure,
};

/// Stable identifier for logs and telemetry tables ("deadline", ...).
const char* DegradationReasonName(DegradationReason reason);

struct DegradationEvent;

/// Records one degraded decision in the global observability layer: a
/// single WARN line (node, reason, rounds completed, achieved θ — so
/// degraded bench/CI runs are visible without inspecting result structs)
/// plus atpm_degradation_events_total and the per-reason counter. Policies
/// call this exactly once per DegradationEvent they record.
void NoteDegradationEvent(const DegradationEvent& event);

/// Global-registry bumpers for the adaptive decision loops (ADDATP / HATP /
/// HNTP): one candidate decision concluded / one halving round run. A
/// relaxed add on the hot path, a single relaxed load when metrics are
/// disabled.
void NotePolicyDecision();
void NotePolicyRound();

/// Maps the BudgetGate stop cause observed at a degraded round to the
/// reason recorded in telemetry (kNone — which a degraded round should
/// never report — maps to kDeadline as the conservative default).
DegradationReason ReasonFromBudgetStop(BudgetStop stop);

/// One decision that concluded with less evidence than requested. The run
/// never silently weakens: every forced decision is recorded here, and the
/// run-level achieved_theta / effective_epsilon aggregate the worst case.
struct DegradationEvent {
  DegradationReason reason = DegradationReason::kDeadline;
  /// The candidate whose decision was degraded.
  NodeId node = 0;
  /// Error-halving rounds that DID complete before the cut (0 = the
  /// decision had no estimate at all and the candidate was conservatively
  /// not seeded, recorded as SeedDecision::kBudgetExhausted).
  uint32_t rounds_completed = 0;
  /// θ the interrupted round asked for.
  uint64_t requested_theta = 0;
  /// RR sets actually backing the estimates the decision was made from
  /// (the last usable round's pool; 0 when rounds_completed == 0).
  uint64_t achieved_theta = 0;
};

/// Telemetry for one iteration of an adaptive policy.
struct AdaptiveStepRecord {
  NodeId node = 0;
  SeedDecision decision = SeedDecision::kAbandoned;
  /// |A(u_i)|: nodes newly activated if selected, else 0.
  uint32_t newly_activated = 0;
  /// RR sets generated while deciding this node (0 under the oracle model).
  uint64_t rr_sets_used = 0;
  /// Coverage queries answered on pools sampled while deciding this node —
  /// 2 per sampled halving round (front + rear) plus any speculative
  /// cross-candidate queries that rode those pools; 0 under the oracle
  /// model. A first round served from a speculative answer charges nothing
  /// here (its queries were counted at the pool that answered them).
  uint64_t coverage_queries = 0;
  /// Error-halving rounds run while deciding this node (including a first
  /// round served speculatively).
  uint32_t rounds = 0;
  /// True iff the first halving round was served from a valid speculative
  /// answer instead of sampling a pool.
  bool first_round_speculative = false;
};

/// Outcome of running an adaptive policy against one environment (i.e., one
/// ground-truth realization φ).
struct AdaptiveRunResult {
  /// Seeds S_φ(π), in selection order.
  std::vector<NodeId> seeds;
  /// I_φ(S): total nodes activated.
  uint32_t realized_spread = 0;
  /// c(S).
  double seed_cost = 0.0;
  /// ρ_φ(S) = I_φ(S) − c(S).
  double realized_profit = 0.0;
  /// Total RR sets generated across all iterations.
  uint64_t total_rr_sets = 0;
  /// Coverage queries answered across all iterations (2 per sampled halving
  /// round, plus speculative cross-candidate queries riding those pools).
  uint64_t total_coverage_queries = 0;
  /// Throwaway pools sampled across all iterations: 1 per halving round
  /// when rounds are batched, 2 when each query pays its own pool. The
  /// pool-reuse ratio total_coverage_queries / total_count_pools is 2.0 for
  /// batched rounds vs 1.0 for the paper's literal per-query sampling, and
  /// exceeds 2.0 when speculative lookahead queries ride the round pools.
  uint64_t total_count_pools = 0;
  /// Largest RR-set count spent on a single iteration — the paper sizes the
  /// NSG/NDG baselines by this quantity (Section VI-A). With batched rounds
  /// this is in shared-pool units (θ per round), i.e. half the value of the
  /// unbatched accounting for the same error schedule.
  uint64_t max_rr_sets_per_iteration = 0;
  /// Decisions aborted by the per-decision RR budget before one halving
  /// round completed (recorded as SeedDecision::kBudgetExhausted).
  uint64_t budget_exhausted_decisions = 0;
  /// Decisions whose error schedule was cut short by the budget after at
  /// least one completed round (decided from the last round's estimates).
  uint64_t budget_truncated_decisions = 0;
  /// Decisions whose first halving round was served from a speculative
  /// cross-candidate answer (no pool sampled for that round).
  uint64_t speculation_hits = 0;
  /// Halving rounds served from stored answers across all decisions — one
  /// answer keeps serving while the round's required θ fits its pool, so
  /// this is >= speculation_hits.
  uint64_t speculation_rounds_served = 0;
  /// Sampled decisions that found no usable speculative answer while
  /// speculation was enabled (lookahead_window > 0, batched rounds).
  uint64_t speculation_misses = 0;
  /// Stored speculative answers discarded because the residual-graph epoch
  /// moved (or the pool was smaller than the consuming round required)
  /// before they could be consumed.
  uint64_t speculation_discarded = 0;
  /// Speculative cross-candidate queries appended to round pools.
  uint64_t speculative_queries = 0;
  /// Lookahead window in effect at each speculating candidate examination
  /// (one entry per Begin while speculation is active; empty otherwise).
  /// Under a fixed window this is constant; under adaptive_lookahead it
  /// shows the widen/reset trajectory.
  std::vector<uint32_t> lookahead_window_trace;
  /// Decisions forced to conclude early (RunBudget, RR cap, allocation
  /// failure), in examination order. Empty = every decision ran its full
  /// error schedule and the requested guarantee holds.
  std::vector<DegradationEvent> degradation_events;
  /// Worst per-decision relative error actually certified: the requested
  /// relative_error_threshold when no decision was degraded, the ε of the
  /// last completed round for forced decisions, and 1.0 (vacuous) when a
  /// decision got no round at all. ADDATP's guarantee is additive, so it
  /// reports 0 here — see achieved_additive_error.
  double effective_epsilon = 0.0;
  /// Worst per-decision additive spread error n_i ζ_i at the round each
  /// decision was made from; n (the trivial bound) for decisions with no
  /// completed round.
  double achieved_additive_error = 0.0;
  /// Smallest RR pool any estimate-based decision was made from (min over
  /// decisions of the final round's actual sets). 0 when some decision had
  /// no round, or when no decision sampled at all.
  uint64_t achieved_theta = 0;
  /// Per-iteration telemetry (one record per examined candidate).
  std::vector<AdaptiveStepRecord> steps;
};

/// Interface of an adaptive seeding policy π: examines the targets of
/// `problem` in order, interacting with `env` (seed → observe → residual
/// update). Implementations: AdgPolicy (oracle model), AddAtpPolicy,
/// HatpPolicy (noise model), ArsPolicy (random baseline).
class AdaptivePolicy {
 public:
  virtual ~AdaptivePolicy() = default;

  /// Short identifier used in experiment tables ("ADG", "HATP", ...).
  virtual std::string_view name() const = 0;

  /// Runs the policy to completion. `env` must be fresh (no activations)
  /// and bound to the same graph as `problem`. `rng` drives the policy's
  /// internal randomness (sampling); the environment's world is fixed.
  virtual Result<AdaptiveRunResult> Run(const ProfitProblem& problem,
                                        AdaptiveEnvironment* env,
                                        Rng* rng) = 0;

  /// Injects an external SamplingEngine (not owned; nullptr restores the
  /// policy's own). Default no-op: oracle-model and baseline policies don't
  /// sample. RIS-backed policies (ADDATP, HATP) route all sampling through
  /// it — the hook ExperimentRunner uses to share round pools across
  /// worlds.
  virtual void set_engine(SamplingEngine* /*engine*/) {}
};

/// Fills the realized spread/cost/profit fields of `result` from the final
/// environment state and the selected seeds.
void FinalizeAdaptiveResult(const ProfitProblem& problem,
                            const AdaptiveEnvironment& env,
                            AdaptiveRunResult* result);

/// One halving round's front/rear conditional-coverage estimates — the
/// sampling step shared by the double-greedy decision loops (ADDATP Alg 3,
/// HATP Alg 4, HNTP). Batched: ONE pool of `theta` RR sets answers both
/// queries. Unbatched: the literal two independent pools R1, R2,
/// bit-identical to the pre-batching code paths for a fixed seed.
struct FrontRearHits {
  uint64_t front = 0;
  uint64_t rear = 0;
  /// RR sets the hits were counted over — `theta` for a sampled round, the
  /// (>= theta) pool size of the answering round for a speculative answer,
  /// or the (< theta) truncated pool size when a BudgetGate stopped the
  /// round mid-pool. Estimates must scale by THIS, not by the requested
  /// theta.
  uint64_t theta = 0;
  /// Throwaway pools this round sampled (1 batched, 2 unbatched, 0 when the
  /// round was served from a speculative answer).
  uint64_t pools = 0;
  /// Coverage queries the sampled pool(s) answered, including speculative
  /// lookahead queries (0 for a speculation-served round).
  uint64_t queries = 0;
};

/// Running telemetry of the speculative pipelining layer (mirrored into
/// AdaptiveRunResult / HntpResult after a run).
struct SpeculationStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t discarded = 0;
  uint64_t speculative_queries = 0;
  /// Halving rounds served from stored answers (>= hits: one stored answer
  /// covers every round whose required θ fits inside its pool).
  uint64_t rounds_served = 0;
};

/// The sampling step of the k-sequential double-greedy loops, extended with
/// speculative cross-candidate pipelining (SamplingOptions.lookahead_window).
///
/// The paper's decision order is serial only in its *commitments*: a
/// skipped or abandoned candidate leaves the residual graph, the seed
/// bitmap, and the candidate set untouched, so the first-round front/rear
/// queries of the next few candidates are already well-defined while the
/// current candidate is still halving. In batched mode the planner appends
/// those queries — rear bases progressively excluding the intermediate
/// candidates, exactly as the native examinations would — to the current
/// round's CoverageQueryBatch, tags the answers with the residual-graph
/// epoch, and serves them back when the loop arrives, for free, iff
///
///   * the epoch is unchanged (every SeedAndObserve bumps it, so the
///     residual graph, seed bitmap, and candidate set are bit-identical to
///     what a native first round would see), and
///   * the answering pool held at least the θ the consuming round requires
///     (per-query theta accounting: the stored answer then certifies the
///     same concentration bound it would have natively, estimates scale by
///     the stored pool size).
///
/// One stored answer serves every round of the consuming schedule whose
/// required θ fits inside its pool — each round's (ε_r, ζ_r, δ_r) bound is
/// individually certified by the larger sample, the loop just re-evaluates
/// its tightening stopping conditions against the same estimate, and θ_r
/// grows strictly (δ_r halves every unresolved round) so sampling always
/// resumes once the pool is outgrown. To make that window deep, later
/// (larger-θ) rounds REFRESH stored answers that were taken on smaller
/// pools.
///
/// Stale answers are discarded unread — nothing sampled on an outdated
/// residual graph can leak into a decision. With lookahead_window = 0 the
/// planner is inert and SampleRound is bit-identical to the plain batched
/// (or unbatched) round for a fixed seed.
class SpeculativeRoundPlanner {
 public:
  /// `targets` is the policy's examination order; it must outlive the
  /// planner and sizes the per-candidate answer store.
  SpeculativeRoundPlanner(const SamplingOptions& sampling,
                          std::span<const NodeId> targets);

  /// A stored first-round answer (hit counts over a pool of `theta` sets).
  struct FirstRoundAnswer {
    uint64_t front_hits = 0;
    uint64_t rear_hits = 0;
    uint64_t theta = 0;
  };

  /// What one halving-round step did.
  enum class RoundStep {
    /// Served from the active speculative answer: no pool, no budget.
    kServed,
    /// Sampled pool(s); the caller charges RoundRrSets(theta, batched())
    /// to its per-decision budget.
    kSampled,
    /// The budget cannot fund the round's pool(s); nothing happened.
    kOverBudget,
    /// The engine's BudgetGate (RunBudget deadline / byte cap / cancel)
    /// stopped the round. hits->theta > 0 means the pool was truncated but
    /// its estimates are honest over that smaller pool — the caller decides
    /// from them; hits->theta == 0 means nothing usable was sampled and the
    /// caller falls back to its previous round (if any).
    kDegraded,
  };

  /// Moves the cursor to targets[position] (== u) and activates the stored
  /// speculative answer for u if it is still valid under `epoch` and large
  /// enough for a first round of `min_theta` sets (a hit). Stale or
  /// undersized entries are discarded (counted in stats); a usable-answer-
  /// less start while speculation is enabled counts a miss. Rounds are then
  /// run through NextRound().
  void Begin(size_t position, NodeId u, uint64_t epoch, uint64_t min_theta);

  /// One halving round for u. Serves from the active answer while it still
  /// covers `theta` (it retires permanently once θ outgrows its pool — θ
  /// grows strictly round over round); otherwise samples Cov(u |
  /// front_base) and Cov(u | rear_base) on one shared pool of `theta` sets
  /// (batched) or two independent pools (unbatched) — unless even that
  /// exceeds `budget_remaining`, in which case nothing is sampled and the
  /// caller resolves the budget abort. In batched mode with an open window,
  /// a sampled pool also answers first-round queries for upcoming
  /// candidates still present in `rear_base` (absent ones are already
  /// activated and will be skipped, never sampled); their answers are
  /// stored under `epoch`.
  ///
  /// A non-OK result means the engine failed (injected fault, worker
  /// exception, IO error): kResourceExhausted is the caller's cue to
  /// degrade onto the estimates it already has, anything else propagates.
  /// Serving a stored answer is free, so it happens even when the engine's
  /// BudgetGate is already exhausted; sampling is what kDegraded guards.
  Result<RoundStep> NextRound(SamplingEngine* engine, NodeId u,
                              const BitVector& front_base,
                              const BitVector& rear_base,
                              const BitVector* removed, uint32_t num_alive,
                              uint64_t theta, uint64_t epoch,
                              uint64_t budget_remaining, Rng* rng,
                              FrontRearHits* hits);

  /// Whether rounds share one pool (speculation requires it).
  bool batched() const { return batched_; }
  /// Whether speculative lookahead is active (batched and window > 0).
  bool speculating() const { return window_ > 0; }

  const SpeculationStats& stats() const { return stats_; }

  /// Copies the telemetry into an AdaptiveRunResult / HntpResult (both
  /// carry the same speculation_* field names).
  template <typename ResultT>
  void ExportStats(ResultT* result) const {
    result->speculation_hits = stats_.hits;
    result->speculation_rounds_served = stats_.rounds_served;
    result->speculation_misses = stats_.misses;
    result->speculation_discarded = stats_.discarded;
    result->speculative_queries = stats_.speculative_queries;
    result->lookahead_window_trace = window_trace_;
  }

 private:
  struct Entry {
    uint64_t epoch = 0;
    uint64_t theta = 0;
    uint64_t front_hits = 0;
    uint64_t rear_hits = 0;
    bool valid = false;
  };
  struct PendingAnswer {
    /// Target-order position of the speculated candidate.
    size_t position = 0;
    uint32_t front_index = 0;
    uint32_t rear_index = 0;
  };

  /// Serves the active answer for a round of `theta` sets, or retires it.
  std::optional<FirstRoundAnswer> Serve(uint64_t theta);

  /// Samples the round's pool(s) and answers the front/rear queries (plus
  /// speculative lookahead queries in batched mode). hits.theta is the
  /// sets actually drawn: θ normally, less when the engine's BudgetGate
  /// truncated the batched pool, 0 when the round produced nothing usable
  /// (empty truncation, or unbatched pools with mismatched sizes).
  Result<FrontRearHits> SampleRound(SamplingEngine* engine, NodeId u,
                                    const BitVector& front_base,
                                    const BitVector& rear_base,
                                    const BitVector* removed,
                                    uint32_t num_alive, uint64_t theta,
                                    uint64_t epoch, Rng* rng);

  /// Appends up to window_ speculative first-round queries to batch_,
  /// refreshing stored answers whose pool is smaller than `theta`.
  void AddSpeculativeQueries(const BitVector& front_base,
                             const BitVector& rear_base, uint64_t epoch,
                             uint64_t theta);

  bool batched_ = true;
  /// Window in effect for the candidate under examination (fixed, or the
  /// adaptive trajectory between base_window_ and max_window_).
  uint32_t window_ = 0;
  bool adaptive_ = false;
  uint32_t base_window_ = 0;
  uint32_t max_window_ = 0;
  double discard_threshold_ = 0.0;
  /// Epoch seen by the previous speculating Begin (adaptive reset signal).
  uint64_t last_epoch_ = 0;
  bool epoch_seen_ = false;
  std::vector<uint32_t> window_trace_;
  std::span<const NodeId> targets_;
  size_t position_ = 0;
  /// The answer activated by Begin for the candidate under examination.
  std::optional<FirstRoundAnswer> active_;
  std::vector<Entry> entries_;  // keyed by target-order position
  /// Progressive rear-base snapshots, one per window slot; pre-sized so the
  /// batch's base pointers stay stable while the engine answers.
  std::vector<BitVector> rear_bases_;
  /// Running rear base from which upcoming candidates are cleared in turn.
  BitVector running_rear_;
  CoverageQueryBatch batch_;
  std::vector<PendingAnswer> pending_;
  SpeculationStats stats_;
};

/// RR sets a round will draw under the given batching mode (the budget-
/// check quantity): theta for one shared pool, 2*theta for R1+R2.
inline uint64_t RoundRrSets(uint64_t theta, bool batched) {
  return batched ? theta : 2 * theta;
}

/// An adaptive run's largest per-iteration spend converted to shared-pool
/// units — the paper's NSG/NDG pool-sizing quantity (Section VI-A).
/// Batched rounds already account in shared-pool units; the literal
/// two-pool accounting counts R1+R2 and is halved to the same quantity.
inline uint64_t SharedPoolIterationSpend(const SamplingOptions& sampling,
                                         uint64_t max_rr_sets_per_iteration) {
  return sampling.batched_rounds ? max_rr_sets_per_iteration
                                 : max_rr_sets_per_iteration / 2;
}

}  // namespace atpm

#endif  // ATPM_CORE_POLICY_H_
