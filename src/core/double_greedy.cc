#include "core/double_greedy.h"

#include <algorithm>

namespace atpm {

Result<DoubleGreedyResult> RunDoubleGreedy(const ProfitProblem& problem,
                                           SpreadOracle* oracle,
                                           const DoubleGreedyOptions& options,
                                           Rng* rng) {
  ATPM_RETURN_NOT_OK(problem.Validate());
  if (options.randomized && rng == nullptr) {
    return Status::InvalidArgument("randomized double greedy needs an Rng");
  }

  std::vector<NodeId> selected;                 // S, grows
  std::vector<NodeId> remaining = problem.targets;  // T, shrinks

  for (NodeId u : problem.targets) {
    // z+ = ρ(S ∪ {u}) − ρ(S) = E[I(u | S)] − c(u).
    const double z_plus =
        oracle->ExpectedMarginalSpread(u, selected, nullptr) -
        problem.CostOf(u);

    // z− = ρ(T \ {u}) − ρ(T) = c(u) − E[I(u | T \ {u})].
    std::vector<NodeId> rest;
    rest.reserve(remaining.size() - 1);
    for (NodeId v : remaining) {
      if (v != u) rest.push_back(v);
    }
    const double z_minus =
        problem.CostOf(u) - oracle->ExpectedMarginalSpread(u, rest, nullptr);

    bool keep;
    if (!options.randomized) {
      keep = z_plus >= z_minus;
    } else {
      const double a = std::max(z_plus, 0.0);
      const double b = std::max(z_minus, 0.0);
      keep = (a + b <= 0.0) ? true : rng->UniformDouble() < a / (a + b);
    }

    if (keep) {
      selected.push_back(u);
    } else {
      remaining = std::move(rest);
    }
  }

  DoubleGreedyResult result;
  result.expected_profit = OracleProfit(problem, oracle, selected);
  result.seeds = std::move(selected);
  return result;
}

}  // namespace atpm
