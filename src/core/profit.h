#ifndef ATPM_CORE_PROFIT_H_
#define ATPM_CORE_PROFIT_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "diffusion/realization.h"
#include "diffusion/spread_oracle.h"
#include "graph/graph.h"

namespace atpm {

/// A target profit maximization instance: a probabilistic graph G, an
/// ordered target set T ⊆ V (the order is the examination order of the
/// double-greedy family), and a per-node cost vector c (size n; nodes
/// outside T should carry cost 0, they are never charged).
///
/// The profit of a seed set S ⊆ T is ρ(S) = E[I(S)] − Σ_{u∈S} c(u).
struct ProfitProblem {
  const Graph* graph = nullptr;
  /// Examination order of the candidates (u_1, ..., u_k of Algs. 2–4).
  std::vector<NodeId> targets;
  /// Per-node seeding cost, indexed by NodeId, size graph->num_nodes().
  std::vector<double> costs;

  /// k = |T|.
  uint32_t k() const { return static_cast<uint32_t>(targets.size()); }
  /// Cost of a single node.
  double CostOf(NodeId u) const { return costs[u]; }
  /// c(S) for an explicit node list.
  double CostOfSet(std::span<const NodeId> nodes) const;
  /// c(T).
  double TotalTargetCost() const { return CostOfSet(targets); }

  /// Validates the instance: graph present, targets distinct and in range,
  /// costs sized n and non-negative.
  Status Validate() const;
};

/// Realized profit ρ_φ(S) = I_φ(S) − c(S) for one possible world.
double RealizedProfit(const ProfitProblem& problem, const Realization& world,
                      std::span<const NodeId> seeds);

/// Oracle-model expected profit ρ(S) = E[I(S)] − c(S) on the residual graph
/// G \ removed (nullptr for the full graph).
double OracleProfit(const ProfitProblem& problem, SpreadOracle* oracle,
                    std::span<const NodeId> seeds,
                    const BitVector* removed = nullptr);

/// Average realized profit of a *fixed* seed set across worlds — the
/// evaluation the paper applies to nonadaptive algorithms and to the
/// "Baseline" curve (profit of the whole target set T).
double AverageRealizedProfit(const ProfitProblem& problem,
                             std::span<const Realization> worlds,
                             std::span<const NodeId> seeds);

}  // namespace atpm

#endif  // ATPM_CORE_PROFIT_H_
