#ifndef ATPM_CORE_DOUBLE_GREEDY_H_
#define ATPM_CORE_DOUBLE_GREEDY_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/profit.h"
#include "diffusion/spread_oracle.h"

namespace atpm {

/// Options for RunDoubleGreedy.
struct DoubleGreedyOptions {
  /// false: deterministic variant (1/3-approximation for nonnegative USM);
  /// true: randomized variant (1/2-approximation in expectation).
  bool randomized = false;
};

/// Output of RunDoubleGreedy.
struct DoubleGreedyResult {
  /// Selected seed set, in target order.
  std::vector<NodeId> seeds;
  /// Oracle expected profit ρ(seeds) of the returned set.
  double expected_profit = 0.0;
};

/// Double greedy of Buchbinder et al. (Alg 1 of the paper) for the
/// *nonadaptive* TPM problem under an exact/Monte-Carlo spread oracle.
/// Examines each target u once: keeps it if the marginal profit of adding
/// it to the growing set S at least matches the marginal profit of deleting
/// it from the shrinking set T. This is the conceptual ancestor of ADG and
/// the reference implementation for approximation tests.
Result<DoubleGreedyResult> RunDoubleGreedy(
    const ProfitProblem& problem, SpreadOracle* oracle,
    const DoubleGreedyOptions& options = {}, Rng* rng = nullptr);

}  // namespace atpm

#endif  // ATPM_CORE_DOUBLE_GREEDY_H_
