#ifndef ATPM_CORE_ADG_H_
#define ATPM_CORE_ADG_H_

#include "core/policy.h"
#include "diffusion/spread_oracle.h"

namespace atpm {

/// ADG — Adaptive Double Greedy under the oracle model (Algorithm 2).
///
/// Examines the targets u_1..u_k in order on the evolving residual graph
/// G_i. For each still-inactive u_i it compares
///
///   front profit  ρf = E[I_{G_i}(u_i | S_{i-1})] − c(u_i)
///   rear  profit  ρr = c(u_i) − E[I_{G_i}(u_i | T_{i-1} \ {u_i})]
///
/// and selects u_i iff ρf >= ρr; selected seeds are deployed immediately and
/// their realized activations are removed from G_i (the adaptive feedback).
/// Theorem 1: the policy's expected profit is at least Λ(π_opt) / 3.
///
/// The spread oracle answers expected-spread queries on residual graphs;
/// use ExactSpreadOracle on enumerable graphs (the strict oracle model) or
/// MonteCarloSpreadOracle as a high-accuracy surrogate.
class AdgPolicy final : public AdaptivePolicy {
 public:
  /// Creates the policy; `oracle` must outlive it and be bound to the same
  /// graph the run's environment uses. With `randomized` set, each
  /// comparison keeps u_i with probability z+/(z+ + z−) (positive parts) —
  /// the adaptive analogue of Buchbinder et al.'s randomized double greedy,
  /// whose nonadaptive form achieves a 1/2-approximation in expectation.
  explicit AdgPolicy(SpreadOracle* oracle, bool randomized = false)
      : oracle_(oracle), randomized_(randomized) {}

  /// ADG with its oracle queries answered by reverse influence sampling:
  /// builds (and owns) a RisSpreadOracle over `engine` (not owned), so the
  /// oracle model runs on large graphs at whatever parallelism the engine
  /// provides.
  explicit AdgPolicy(SamplingEngine* engine,
                     const RisOracleOptions& options = {},
                     bool randomized = false)
      : owned_oracle_(new RisSpreadOracle(engine, options)),
        oracle_(owned_oracle_.get()),
        randomized_(randomized) {}

  std::string_view name() const override {
    return randomized_ ? "ADG-R" : "ADG";
  }

  Result<AdaptiveRunResult> Run(const ProfitProblem& problem,
                                AdaptiveEnvironment* env, Rng* rng) override;

 private:
  std::unique_ptr<SpreadOracle> owned_oracle_;
  SpreadOracle* oracle_;
  bool randomized_;
};

}  // namespace atpm

#endif  // ATPM_CORE_ADG_H_
