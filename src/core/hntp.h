#ifndef ATPM_CORE_HNTP_H_
#define ATPM_CORE_HNTP_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/hatp.h"
#include "core/policy.h"
#include "core/profit.h"

namespace atpm {

/// HNTP shares HATP's option set (including the embedded SamplingOptions);
/// the alias names the nonadaptive tailoring at call sites.
using HntpOptions = HatpOptions;

/// Output of RunHntp.
struct HntpResult {
  /// Selected seed batch (nonadaptive: deployed all at once).
  std::vector<NodeId> seeds;
  /// Total RR sets generated.
  uint64_t total_rr_sets = 0;
  /// Coverage queries answered (2 per sampled halving round, plus
  /// speculative cross-candidate queries riding those pools).
  uint64_t total_coverage_queries = 0;
  /// Throwaway pools sampled (1 per round batched, 2 unbatched; rounds
  /// served from speculative answers sample none).
  uint64_t total_count_pools = 0;
  /// Largest RR-set spend on a single candidate decision.
  uint64_t max_rr_sets_per_iteration = 0;
  /// Decisions aborted by the per-decision RR budget before one halving
  /// round completed (the candidate is conservatively not selected).
  uint64_t budget_exhausted_decisions = 0;
  /// Decisions whose error schedule was cut short by the budget after at
  /// least one completed round (decided from the last round's estimates).
  uint64_t budget_truncated_decisions = 0;
  /// Speculative pipelining telemetry; see AdaptiveRunResult.
  uint64_t speculation_hits = 0;
  uint64_t speculation_rounds_served = 0;
  uint64_t speculation_misses = 0;
  uint64_t speculation_discarded = 0;
  uint64_t speculative_queries = 0;
  /// Lookahead window at each speculating examination (see
  /// AdaptiveRunResult::lookahead_window_trace).
  std::vector<uint32_t> lookahead_window_trace;
  /// Decisions forced to conclude early; see
  /// AdaptiveRunResult::degradation_events.
  std::vector<DegradationEvent> degradation_events;
  /// Worst per-decision relative error actually certified; see
  /// AdaptiveRunResult::effective_epsilon.
  double effective_epsilon = 0.0;
  /// Worst per-decision additive spread error n ζ at decision time; see
  /// AdaptiveRunResult::achieved_additive_error.
  double achieved_additive_error = 0.0;
  /// Smallest RR pool any estimate-based decision was made from; see
  /// AdaptiveRunResult::achieved_theta.
  uint64_t achieved_theta = 0;
};

/// HNTP — the nonadaptive tailoring of HATP (Section VI-A). Identical
/// estimation machinery (fresh hybrid-error RR pools per candidate — one
/// shared batched pool per round by default, C'1/C'2 stopping, adaptive ε/ζ
/// schedule), but no seeding feedback: the graph is
/// never updated, previously *selected* seeds stay in the graph, so the
/// front estimate is the true conditional coverage Cov(u_i | S_{i-1}) and
/// the rear base T_{i-1} \ {u_i} includes the selected seeds. The whole
/// batch is returned for one-shot deployment.
///
/// Reuses HatpOptions; n_i = n throughout. The engine overload samples
/// through `engine` (must be bound to problem.graph and options.model);
/// the two-argument form builds the backend selected by options.engine /
/// options.num_threads internally.
Result<HntpResult> RunHntp(const ProfitProblem& problem,
                           const HatpOptions& options, Rng* rng);
Result<HntpResult> RunHntp(const ProfitProblem& problem,
                           const HatpOptions& options, Rng* rng,
                           SamplingEngine* engine);

}  // namespace atpm

#endif  // ATPM_CORE_HNTP_H_
