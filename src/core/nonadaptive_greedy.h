#ifndef ATPM_CORE_NONADAPTIVE_GREEDY_H_
#define ATPM_CORE_NONADAPTIVE_GREEDY_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/profit.h"
#include "rris/sampling_engine.h"

namespace atpm {

/// Output of the fixed-sample nonadaptive baselines.
struct NonadaptiveResult {
  /// Selected seed batch.
  std::vector<NodeId> seeds;
  /// RR sets generated (= the requested pool size).
  uint64_t num_rr_sets = 0;
  /// Coverage queries the sweep answered on that ONE shared pool (the
  /// batched per-target initialization); the pool-reuse ratio of a
  /// fixed-sample greedy is batched_queries per pool.
  uint64_t batched_queries = 0;
  /// RIS estimate of the expected profit of `seeds` on the same pool.
  double estimated_profit = 0.0;
};

/// NSG — Nonadaptive Simple Greedy (Tang et al., TKDE'18): one fixed pool
/// of `num_rr_sets` RR sets; repeatedly add the target with the largest
/// estimated marginal *profit* (marginal coverage · n/θ − c(u)) while it is
/// positive. No estimation-error control — the paper sizes the pool as the
/// largest per-iteration spend of HATP (Section VI-A) and shows in Fig. 9
/// that more samples do not help.
///
/// The engine overloads sample the fixed pool through `engine` (must be
/// bound to problem.graph; its pool is reset); the three-argument forms use
/// a private serial engine, bit-identical to the historical behavior.
Result<NonadaptiveResult> RunNsg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng);
Result<NonadaptiveResult> RunNsg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng,
                                 SamplingEngine* engine);

/// NDG — Nonadaptive Double Greedy (Tang et al., TKDE'18): deterministic
/// double greedy (Alg 1) driven by coverage estimates on one fixed pool of
/// `num_rr_sets` RR sets. Examines targets in problem order; front/rear
/// marginals are Cov(u | S)·n/θ − c(u) and c(u) − Cov(u | T \ {u})·n/θ.
Result<NonadaptiveResult> RunNdg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng);
Result<NonadaptiveResult> RunNdg(const ProfitProblem& problem,
                                 uint64_t num_rr_sets, Rng* rng,
                                 SamplingEngine* engine);

}  // namespace atpm

#endif  // ATPM_CORE_NONADAPTIVE_GREEDY_H_
