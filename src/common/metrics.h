#ifndef ATPM_COMMON_METRICS_H_
#define ATPM_COMMON_METRICS_H_

/// Process-wide metric registry (the counter/gauge/histogram half of the
/// atpm_obs observability layer; spans live in common/trace.h).
///
/// Design constraints, in priority order:
///
///   1. Determinism transparency. Instruments never touch RNG state and
///      never reorder work; when metrics are disabled an Increment() is a
///      single relaxed atomic load. Golden RR-pool hashes and policy
///      decision sequences are bit-identical with the layer compiled in,
///      enabled or disabled (timestamps are observational only).
///   2. Write-path scalability. Counters and histograms are striped across
///      cache-line-padded per-thread shards (lock-free relaxed adds) and
///      merged only on scrape, so the worker-pool engines never contend on
///      a shared line.
///   3. Static discipline. Metric names are string literals, validated at
///      registration (`atpm_`-prefixed snake_case, registered once) and
///      enforced by the `metrics-discipline` atpm_lint rule.
///
/// Exports: Prometheus text exposition (ExportPrometheus) and a structured
/// JSON run-report (ExportJson). Labeled series (e.g. per-site failpoint
/// fires) enter through registered collectors so label churn stays off the
/// hot path.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace atpm {
namespace obs {

namespace internal {

/// Number of per-instrument shards. Threads hash onto a fixed stripe; 16
/// 64-byte lines keep false sharing negligible for the pool sizes the
/// engines run (worker pools are sized to hardware_concurrency).
inline constexpr uint32_t kStripes = 16;

struct alignas(64) Stripe {
  std::atomic<uint64_t> value{0};
};

/// Assigns the calling thread a stripe index (round-robin at first use).
uint32_t AssignStripe();

inline uint32_t ThreadStripe() {
  thread_local const uint32_t stripe = AssignStripe();
  return stripe;
}

/// Monotonic nanosecond clock. Lives behind this helper so instrumented
/// layers (src/core, src/rris) never name std::chrono::steady_clock
/// directly — the metrics-discipline lint rule pins that.
uint64_t MonotonicNowNs();

extern std::atomic<bool> g_metrics_enabled;

}  // namespace internal

/// Global kill switch (default on; ATPM_METRICS=0 disables at startup).
/// Reading it is the entire disabled-path cost of every instrument.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Monotonic counter. Increment is lock-free: one relaxed load (the enable
/// gate) plus one relaxed fetch_add on the caller's stripe.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    stripes_[internal::ThreadStripe()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  /// Merged value across all stripes (scrape-time only).
  uint64_t Value() const;
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  void Reset();

  std::string name_;
  std::string help_;
  internal::Stripe stripes_[internal::kStripes];
};

/// Last-writer-wins gauge (a point-in-time level, not a rate).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::string help_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (latencies in seconds, sizes in elements).
/// Buckets are chosen at registration; observations are striped like
/// counters and merged on scrape. Bucket i counts values <= bounds[i];
/// the implicit final bucket catches everything above the last bound.
class Histogram {
 public:
  void Observe(double value);

  size_t num_buckets() const { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged per-bucket count (NOT cumulative; export cumulates).
  uint64_t BucketCount(size_t bucket) const;
  uint64_t TotalCount() const;
  double Sum() const;
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help, std::vector<double> bounds);
  void Reset();

  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // IEEE-754 bits, CAS-accumulated
  };

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  Shard shards_[internal::kStripes];
};

/// `count` exponentially spaced upper bounds starting at `start`
/// (start, start*factor, ...) — the standard latency-bucket ladder.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// RAII latency timer into a histogram. Reads the clock only when metrics
/// are enabled, so the disabled path stays at one relaxed load.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram)
      : histogram_(MetricsEnabled() ? histogram : nullptr),
        start_ns_(histogram_ != nullptr ? internal::MonotonicNowNs() : 0) {}
  ~ScopedLatency() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          static_cast<double>(internal::MonotonicNowNs() - start_ns_) * 1e-9);
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

/// One sample of a labeled series, produced by a collector at scrape time.
/// Used for low-cardinality dimensions owned by another subsystem (the
/// failpoint registry exports fires-per-site this way).
struct LabeledSample {
  std::string metric;       // validated metric name
  std::string help;         // HELP line (first sample of a metric wins)
  std::string label_key;    // e.g. "site"
  std::string label_value;  // e.g. "alloc.pool_reserve"
  uint64_t value = 0;
};

using Collector = std::function<void(std::vector<LabeledSample>*)>;

/// Instrument registry. `Global()` is the process-wide instance every
/// subsystem registers into; tests build private instances to exercise
/// registration rules and export formats hermetically.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Nullptr on an invalid name or a duplicate registration (any kind).
  Counter* TryRegisterCounter(const char* name, const char* help);
  Gauge* TryRegisterGauge(const char* name, const char* help);
  /// Additionally nullptr when `bounds` is empty or not strictly
  /// increasing.
  Histogram* TryRegisterHistogram(const char* name, const char* help,
                                  std::vector<double> bounds);

  /// Checked variants: abort on registration errors (programmer error —
  /// names are literals, so a failure is a typo or a copy-paste dup).
  Counter* RegisterCounter(const char* name, const char* help);
  Gauge* RegisterGauge(const char* name, const char* help);
  Histogram* RegisterHistogram(const char* name, const char* help,
                               std::vector<double> bounds);

  void RegisterCollector(Collector collector);

  /// `atpm_`-prefixed snake_case: atpm_[a-z0-9_]+.
  static bool ValidName(const char* name);

  /// Prometheus text exposition, instruments sorted by name.
  std::string ExportPrometheus();
  /// Structured JSON run-report (counters/gauges/histograms/labeled).
  std::string ExportJson();

  /// Zeroes every instrument's value (registrations stay). Test support
  /// and per-run report isolation.
  void ResetValues();

 private:
  bool NameTaken(const std::string& name) const;  // caller holds mu_

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<Collector> collectors_;
};

}  // namespace obs
}  // namespace atpm

#endif  // ATPM_COMMON_METRICS_H_
