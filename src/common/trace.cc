#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/metrics.h"

namespace atpm {
namespace obs {

namespace internal {

std::atomic<bool> g_trace_enabled{false};

namespace {

/// Per-thread event ring. The owning thread is the only writer; the mutex
/// exists for exporters/reset racing the writer (uncontended in steady
/// state, so the hot path pays one private lock).
struct Ring {
  std::mutex mu;
  uint32_t tid = 0;
  std::vector<TraceEvent> events;
  uint64_t total = 0;  // lifetime pushes; > capacity means wraparound

  Ring() { events.resize(kTraceRingCapacity); }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  uint32_t next_tid = 1;
};

Registry& GlobalRegistry() {
  static Registry* const registry = new Registry();
  return *registry;
}

Ring* ThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    Registry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    r->tid = reg.next_tid++;
    reg.rings.push_back(r);
    return r;
  }();
  return ring.get();
}

thread_local uint32_t t_depth = 0;

/// ATPM_TRACE=1 turns tracing on before main() (CI smoke runs, ad-hoc
/// profiling without a code change).
const bool g_env_applied = [] {
  const char* env = std::getenv("ATPM_TRACE");
  if (env != nullptr && std::strcmp(env, "1") == 0) {
    g_trace_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

uint64_t BeginSpan() {
  ++t_depth;
  return MonotonicNowNs();
}

void EndSpan(const TraceEvent& prototype, uint64_t start_ns) {
  const uint64_t end_ns = MonotonicNowNs();
  --t_depth;
  Ring* ring = ThreadRing();
  TraceEvent event = prototype;
  event.start_ns = start_ns;
  event.dur_ns = end_ns - start_ns;
  event.depth = t_depth;
  event.tid = ring->tid;
  std::lock_guard<std::mutex> lock(ring->mu);
  ring->events[ring->total % kTraceRingCapacity] = event;
  ++ring->total;
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> out;
  internal::Registry& reg = internal::GlobalRegistry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    const uint64_t kept =
        ring->total < kTraceRingCapacity ? ring->total : kTraceRingCapacity;
    const uint64_t oldest = ring->total - kept;
    for (uint64_t i = 0; i < kept; ++i) {
      out.push_back(ring->events[(oldest + i) % kTraceRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return out;
}

uint64_t DroppedTraceEvents() {
  uint64_t dropped = 0;
  internal::Registry& reg = internal::GlobalRegistry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->total > kTraceRingCapacity) {
      dropped += ring->total - kTraceRingCapacity;
    }
  }
  return dropped;
}

void ResetTrace() {
  internal::Registry& reg = internal::GlobalRegistry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->total = 0;
  }
}

namespace {

std::vector<OwnedTraceEvent> ToOwned(const std::vector<TraceEvent>& events) {
  std::vector<OwnedTraceEvent> owned;
  owned.reserve(events.size());
  for (const TraceEvent& event : events) {
    OwnedTraceEvent o;
    o.name = event.name != nullptr ? event.name : "";
    o.start_ns = event.start_ns;
    o.dur_ns = event.dur_ns;
    o.tid = event.tid;
    o.depth = event.depth;
    for (uint32_t a = 0; a < event.num_args; ++a) {
      o.args.emplace_back(
          event.arg_keys[a] != nullptr ? event.arg_keys[a] : "",
          event.arg_values[a]);
    }
    owned.push_back(std::move(o));
  }
  return owned;
}

/// Formats nanoseconds as microseconds with sub-ns-safe fixed precision
/// (Chrome's ts/dur unit is µs).
std::string MicrosFromNs(uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string ChromeTraceJsonFromOwned(
    const std::vector<OwnedTraceEvent>& events) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const OwnedTraceEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + internal::JsonEscape(event.name) +
           "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(event.tid) + ", \"ts\": " +
           MicrosFromNs(event.start_ns) + ", \"dur\": " +
           MicrosFromNs(event.dur_ns) + ", \"args\": {\"depth\": " +
           std::to_string(event.depth);
    for (const auto& [key, value] : event.args) {
      out += ", \"" + internal::JsonEscape(key) +
             "\": " + std::to_string(value);
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string ExportChromeTraceJson() {
  return ChromeTraceJsonFromOwned(ToOwned(CollectTraceEvents()));
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = ExportChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return Status::IOError("short write on trace output: " + path);
  }
  return Status::OK();
}

// ------------------------------------------------- binary .atrace format
//
// Little-endian stream: "ATRC" magic, u32 version (1), u64 event count,
// then per event: u16 name_len + name bytes, u64 start_ns, u64 dur_ns,
// u32 tid, u32 depth, u32 num_args, and per arg u16 key_len + key bytes +
// u64 value. Compact enough for CI artifacts; atpm_trace_dump turns it
// into Chrome JSON or a summary.

namespace {

constexpr char kMagic[4] = {'A', 'T', 'R', 'C'};
constexpr uint32_t kVersion = 1;

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

struct Cursor {
  const unsigned char* data;
  size_t size;
  size_t pos = 0;

  bool Take(void* out, size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool TakeU16(uint16_t* v) {
    unsigned char b[2];
    if (!Take(b, 2)) return false;
    *v = static_cast<uint16_t>(b[0] | (b[1] << 8));
    return true;
  }
  bool TakeU32(uint32_t* v) {
    unsigned char b[4];
    if (!Take(b, 4)) return false;
    *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
    return true;
  }
  bool TakeU64(uint64_t* v) {
    unsigned char b[8];
    if (!Take(b, 8)) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) *v = (*v << 8) | b[i];
    return true;
  }
  bool TakeString(std::string* s) {
    uint16_t len = 0;
    if (!TakeU16(&len)) return false;
    if (size - pos < len) return false;
    s->assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return true;
  }
};

void AppendString(std::string* out, const std::string& s) {
  const size_t len = s.size() < 65535 ? s.size() : 65535;
  AppendU16(out, static_cast<uint16_t>(len));
  out->append(s.data(), len);
}

}  // namespace

Status WriteBinaryTrace(const std::string& path) {
  const std::vector<OwnedTraceEvent> events = ToOwned(CollectTraceEvents());
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kVersion);
  AppendU64(&out, events.size());
  for (const OwnedTraceEvent& event : events) {
    AppendString(&out, event.name);
    AppendU64(&out, event.start_ns);
    AppendU64(&out, event.dur_ns);
    AppendU32(&out, event.tid);
    AppendU32(&out, event.depth);
    AppendU32(&out, static_cast<uint32_t>(event.args.size()));
    for (const auto& [key, value] : event.args) {
      AppendString(&out, key);
      AppendU64(&out, value);
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output: " + path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return Status::IOError("short write on trace output: " + path);
  }
  return Status::OK();
}

Status ReadBinaryTrace(const std::string& path,
                       std::vector<OwnedTraceEvent>* events) {
  events->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace input: " + path);
  }
  std::string raw;
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    raw.append(buf, got);
  }
  std::fclose(f);

  Cursor cur{reinterpret_cast<const unsigned char*>(raw.data()), raw.size()};
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!cur.Take(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an .atrace file: " + path);
  }
  if (!cur.TakeU32(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported .atrace version in " + path);
  }
  if (!cur.TakeU64(&count)) {
    return Status::InvalidArgument("truncated .atrace header in " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    OwnedTraceEvent event;
    uint32_t num_args = 0;
    if (!cur.TakeString(&event.name) || !cur.TakeU64(&event.start_ns) ||
        !cur.TakeU64(&event.dur_ns) || !cur.TakeU32(&event.tid) ||
        !cur.TakeU32(&event.depth) || !cur.TakeU32(&num_args)) {
      return Status::InvalidArgument("truncated .atrace event in " + path);
    }
    if (num_args > 1024) {
      return Status::InvalidArgument("implausible arg count in " + path);
    }
    for (uint32_t a = 0; a < num_args; ++a) {
      std::string key;
      uint64_t value = 0;
      if (!cur.TakeString(&key) || !cur.TakeU64(&value)) {
        return Status::InvalidArgument("truncated .atrace arg in " + path);
      }
      event.args.emplace_back(std::move(key), value);
    }
    events->push_back(std::move(event));
  }
  if (cur.pos != cur.size) {
    return Status::InvalidArgument("trailing garbage in .atrace: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace atpm
