#ifndef ATPM_COMMON_RNG_H_
#define ATPM_COMMON_RNG_H_

#include <cstdint>

namespace atpm {

/// Deterministic 64-bit pseudo-random generator (xoshiro256** seeded through
/// SplitMix64). Every stochastic component of the library takes an explicit
/// Rng (or a seed), which makes every experiment and test reproducible and
/// lets parallel workers use independent `Split()` streams.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be plugged
/// into <random> distributions when convenient, but the inline helpers below
/// are preferred in hot loops.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Two generators constructed
  /// from the same seed produce identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion: decorrelates nearby seeds.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t UniformInt(uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli trial: true with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Returns an independent generator derived from this one's stream.
  /// Used to hand reproducible sub-streams to parallel workers.
  Rng Split() { return Rng(Next() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Derives the `stream`-th worker seed from a base seed (one SplitMix64
/// round over the pair). Deterministic seed-splitting for thread pools: a
/// job draws one 64-bit base seed from its caller's stream, and worker w
/// seeds its private Rng with SplitSeed(base, w). Streams for different w
/// are decorrelated by the mix even though the bases are consecutive, and
/// the whole fan-out is reproducible for a fixed (base seed, worker count).
inline uint64_t SplitSeed(uint64_t base_seed, uint64_t stream) {
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace atpm

#endif  // ATPM_COMMON_RNG_H_
