#ifndef ATPM_COMMON_MATH_UTIL_H_
#define ATPM_COMMON_MATH_UTIL_H_

#include <cstdint>

namespace atpm {

/// Natural log of the binomial coefficient C(n, k), computed via lgamma.
/// Returns 0 for k <= 0 or k >= n. Used by IMM's sample-size bounds.
double LogBinomial(uint64_t n, uint64_t k);

/// ceil(a / b) for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Clamps `x` into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Mean of a sample given its sum and count; 0 for empty samples.
double SafeMean(double sum, uint64_t count);

/// Sample standard deviation from raw moments (sum, sum of squares, count);
/// 0 for fewer than two observations. Numerically guarded against tiny
/// negative variances from cancellation.
double SampleStddev(double sum, double sum_sq, uint64_t count);

}  // namespace atpm

#endif  // ATPM_COMMON_MATH_UTIL_H_
