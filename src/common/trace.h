#ifndef ATPM_COMMON_TRACE_H_
#define ATPM_COMMON_TRACE_H_

/// Span-based tracer (the timeline half of the atpm_obs observability
/// layer; counters/histograms live in common/metrics.h).
///
/// A TraceSpan is an RAII region with a literal name, explicit nesting
/// (per-thread depth, parent inferred by containment) and up to
/// kMaxSpanArgs numeric annotations. Closed spans land in per-thread ring
/// buffers — no allocation, no locks on the hot path beyond the owning
/// ring's uncontended mutex — and are exported as Chrome trace_event JSON
/// ("X" complete events, loadable in Perfetto / chrome://tracing) or as a
/// compact binary .atrace stream consumed by tools/atpm_trace_dump.
///
/// Determinism contract (shared with metrics.h): a span never draws RNG
/// state or reorders work; when tracing is disabled — the default — the
/// constructor is one relaxed atomic load and the destructor a branch.
/// ATPM_TRACE=1 enables tracing at startup.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace atpm {
namespace obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}
void SetTraceEnabled(bool enabled);

inline constexpr uint32_t kMaxSpanArgs = 4;
/// Closed spans kept per thread; older events are overwritten on wrap
/// (DroppedEvents() reports how many).
inline constexpr size_t kTraceRingCapacity = 8192;

/// One closed span. `name` and `arg_keys` point at string literals (the
/// metrics-discipline lint rule keeps call sites literal), so events are
/// POD-cheap to store and copy.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;
  uint32_t num_args = 0;
  const char* arg_keys[kMaxSpanArgs] = {};
  uint64_t arg_values[kMaxSpanArgs] = {};
};

namespace internal {
/// Opens a span on the calling thread: returns its start timestamp and
/// bumps the nesting depth. Closing writes the event into the ring.
uint64_t BeginSpan();
void EndSpan(const TraceEvent& prototype, uint64_t start_ns);
}  // namespace internal

/// RAII span. Annotations are buffered in the span object and flushed with
/// the event at destruction, so they may be added any time before scope
/// exit (budget-degradation sites annotate the decision span they sit in).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : active_(TraceEnabled()) {
    if (active_) {
      event_.name = name;
      start_ns_ = internal::BeginSpan();
    }
  }
  ~TraceSpan() {
    if (active_) internal::EndSpan(event_, start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric annotation (dropped beyond kMaxSpanArgs).
  void AnnotateU64(const char* key, uint64_t value) {
    if (!active_ || event_.num_args >= kMaxSpanArgs) return;
    event_.arg_keys[event_.num_args] = key;
    event_.arg_values[event_.num_args] = value;
    ++event_.num_args;
  }

 private:
  bool active_;
  uint64_t start_ns_ = 0;
  TraceEvent event_;
};

/// Snapshot of every thread's closed spans, sorted by (start, tid). Rings
/// keep recording while this copies; call from a quiescent point for a
/// complete picture.
std::vector<TraceEvent> CollectTraceEvents();

/// Events overwritten by ring wraparound since the last ResetTrace().
uint64_t DroppedTraceEvents();

/// Clears every ring (capacity and registrations stay).
void ResetTrace();

/// Chrome trace_event JSON ({"traceEvents": [...]}, "X" complete events
/// with ts/dur in microseconds), loadable in Perfetto / chrome://tracing.
std::string ExportChromeTraceJson();
Status WriteChromeTrace(const std::string& path);

/// Compact binary stream for tools/atpm_trace_dump ("ATRC" magic). An
/// event read back owns its strings.
struct OwnedTraceEvent {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;
  std::vector<std::pair<std::string, uint64_t>> args;
};
Status WriteBinaryTrace(const std::string& path);
Status ReadBinaryTrace(const std::string& path,
                       std::vector<OwnedTraceEvent>* events);
std::string ChromeTraceJsonFromOwned(
    const std::vector<OwnedTraceEvent>& events);

}  // namespace obs
}  // namespace atpm

#endif  // ATPM_COMMON_TRACE_H_
