#ifndef ATPM_COMMON_RUN_BUDGET_H_
#define ATPM_COMMON_RUN_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace atpm {

/// Cooperative cancellation flag. The owner keeps the token alive for the
/// duration of the run; any thread may call Cancel(), and the sampling
/// substrate observes it at batch boundaries.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource envelope for one policy run. All limits are optional (zero /
/// null = unlimited); an inactive budget adds no work to the sampling
/// paths and leaves RNG streams untouched, preserving the bit-identical
/// oracle. When a limit trips, sampling stops at the next batch boundary
/// and the policies degrade gracefully: the current decision is finished
/// on the RR sets already drawn and the weakened guarantee is reported
/// (DegradationEvent + achieved_theta / effective_epsilon), never
/// silently absorbed.
struct RunBudget {
  /// Wall-clock deadline for the whole run, measured from the moment the
  /// policy starts. 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Cap on bytes appended to stored RR pools during the run
  /// (approximate: node ids + per-set bookkeeping). 0 = no cap.
  uint64_t rr_pool_byte_cap = 0;
  /// Optional cooperative cancellation flag (borrowed, may be null).
  CancelToken* cancel = nullptr;

  bool active() const {
    return deadline_seconds > 0.0 || rr_pool_byte_cap > 0 ||
           cancel != nullptr;
  }
};

/// Which limit stopped the run, if any.
enum class BudgetStop : uint8_t {
  kNone = 0,
  kDeadline,
  kPoolBytes,
  kCancelled,
};

/// Live enforcement state for one RunBudget, shared by every sampling
/// thread of a run. Exhausted() is cheap enough for batch-boundary
/// polling: one steady_clock read plus two relaxed atomic loads.
class BudgetGate {
 public:
  explicit BudgetGate(const RunBudget& budget)
      : budget_(budget),
        has_deadline_(budget.deadline_seconds > 0.0),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          budget.deadline_seconds > 0.0
                              ? budget.deadline_seconds
                              : 0.0))) {}

  /// Records `bytes` of stored RR-pool growth.
  void AddPoolBytes(uint64_t bytes) {
    if (budget_.rr_pool_byte_cap > 0 && bytes > 0) {
      pool_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }

  /// Pool bytes recorded so far.
  uint64_t pool_bytes() const {
    return pool_bytes_.load(std::memory_order_relaxed);
  }

  /// The first limit found exhausted, or kNone.
  BudgetStop Exhausted() const {
    if (budget_.cancel != nullptr && budget_.cancel->cancelled()) {
      return BudgetStop::kCancelled;
    }
    if (budget_.rr_pool_byte_cap > 0 &&
        pool_bytes_.load(std::memory_order_relaxed) >=
            budget_.rr_pool_byte_cap) {
      return BudgetStop::kPoolBytes;
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return BudgetStop::kDeadline;
    }
    return BudgetStop::kNone;
  }

  const RunBudget& budget() const { return budget_; }

 private:
  RunBudget budget_;
  bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<uint64_t> pool_bytes_{0};
};

}  // namespace atpm

#endif  // ATPM_COMMON_RUN_BUDGET_H_
