#include "common/status.h"

namespace atpm {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfBudget:
      return "OutOfBudget";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace atpm
