#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/metrics.h"

namespace atpm {
namespace failpoint {
namespace {

/// Central registry. Every ATPM_FAILPOINT* site in the tree must name an
/// entry here (enforced by the `failpoint-discipline` atpm_lint rule).
/// `code` is the Status category an injected hard failure reports —
/// chosen to match what the real fault at that site would produce.
struct SiteInfo {
  const char* name;
  StatusCode code;
  Action default_action;
};

constexpr SiteInfo kRegistry[] = {
    // atpm-failpoint-registry-begin
    {"alloc.pool_reserve", StatusCode::kResourceExhausted, Action::kBadAlloc},
    {"alloc.pool_append", StatusCode::kResourceExhausted, Action::kBadAlloc},
    {"engine.serial_batch", StatusCode::kInternal, Action::kError},
    {"engine.parallel_worker", StatusCode::kInternal, Action::kThrow},
    {"graph_store.open", StatusCode::kIOError, Action::kError},
    {"graph_store.open.transient", StatusCode::kIOError, Action::kTransient},
    {"graph_store.mmap", StatusCode::kIOError, Action::kError},
    {"graph_store.read", StatusCode::kIOError, Action::kError},
    {"graph_store.write", StatusCode::kIOError, Action::kError},
    {"graph_store.fsync", StatusCode::kIOError, Action::kError},
    {"graph_store.rename", StatusCode::kIOError, Action::kError},
    {"edge_list.open", StatusCode::kIOError, Action::kError},
    {"edge_list.read", StatusCode::kIOError, Action::kError},
    {"edge_list.read.transient", StatusCode::kIOError, Action::kTransient},
    {"edge_list.write", StatusCode::kIOError, Action::kError},
    // atpm-failpoint-registry-end
};

constexpr size_t kNumSites = sizeof(kRegistry) / sizeof(kRegistry[0]);

/// Per-site armed state. Sites are few and lookups happen only on the
/// armed slow path, so a linear scan over a fixed array keeps this layer
/// free of hash containers (iteration order never matters here, but the
/// tree-wide determinism posture is simpler with none at all).
struct SiteState {
  bool armed = false;
  Spec spec;
  uint64_t hits = 0;   // counted only while anything is armed
  uint64_t fires = 0;  // schedule firings (exported via FireCounts)
  // Chaos mode: probabilistic schedule keyed by (seed, site, hit).
  bool chaos = false;
  uint64_t chaos_seed = 0;
  uint64_t chaos_threshold = 0;  // fire iff hash < threshold
};

std::mutex g_mu;
SiteState g_state[kNumSites];

int FindSite(const char* name) {
  for (size_t i = 0; i < kNumSites; ++i) {
    if (std::strcmp(kRegistry[i].name, name) == 0) return (int)i;
  }
  return -1;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashName(const char* name) {
  uint64_t h = 1469598103934665603ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ (uint64_t)(unsigned char)*p) * 1099511628211ull;
  }
  return h;
}

/// Decides whether site `i` fires at this hit, advancing the hit counter.
/// Caller holds g_mu. Returns the firing action, or no value.
bool HitFires(size_t i, Action* action) {
  SiteState& st = g_state[i];
  const uint64_t hit = ++st.hits;
  if (!st.armed) return false;
  if (st.chaos) {
    const uint64_t roll =
        SplitMix64(st.chaos_seed ^ HashName(kRegistry[i].name) ^
                   (hit * 0x9e3779b97f4a7c15ull));
    if (roll >= st.chaos_threshold) return false;
    *action = kRegistry[i].default_action;
    ++st.fires;
    return true;
  }
  if (hit < st.spec.fire_at) return false;
  if (st.spec.count != UINT64_MAX &&
      hit >= st.spec.fire_at + st.spec.count) {
    return false;
  }
  *action = st.spec.action;
  ++st.fires;
  return true;
}

std::string FireMessage(const char* name) {
  return std::string("failpoint '") + name + "' fired";
}

/// Arms every failpoint named in ATPM_FAILPOINTS before main() runs, so
/// chaos schedules apply to whole binaries without code changes. A
/// malformed spec aborts loudly: silently ignoring it would turn a chaos
/// run into a clean run.
const bool g_env_armed = [] {
  const char* env = std::getenv("ATPM_FAILPOINTS");
  if (env == nullptr || *env == '\0') return false;
  const Status status = ArmFromSpec(env);
  if (!status.ok()) {
    std::fprintf(stderr, "ATPM_FAILPOINTS: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return true;
}();

/// Exposes fires-per-site as the labeled counter series
/// `atpm_failpoint_fires_total{site=...}` in the global metrics registry.
/// Sampled at scrape time; sites with zero fires are elided. Counts reset
/// with DisarmAll(), matching the hit counters.
const bool g_collector_registered = [] {
  obs::MetricsRegistry::Global().RegisterCollector(
      [](std::vector<obs::LabeledSample>* out) {
        for (const auto& [site, fires] : FireCounts()) {
          if (fires == 0) continue;
          obs::LabeledSample sample;
          sample.metric = "atpm_failpoint_fires_total";
          sample.help = "Failpoint schedule firings per site";
          sample.label_key = "site";
          sample.label_value = site;
          sample.value = fires;
          out->push_back(std::move(sample));
        }
      });
  return true;
}();

}  // namespace

bool Arm(const std::string& name, Spec spec) {
  const int i = FindSite(name.c_str());
  if (i < 0) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = g_state[i];
  if (!st.armed) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  st.armed = true;
  st.chaos = false;
  st.spec = spec;
  st.hits = 0;
  return true;
}

bool Arm(const std::string& name) {
  const int i = FindSite(name.c_str());
  if (i < 0) return false;
  Spec spec;
  spec.action = kRegistry[i].default_action;
  return Arm(name, spec);
}

void ArmChaos(uint64_t seed, double probability) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  // Map p in [0,1] onto a 64-bit threshold; p == 1 fires always. The
  // scaled double is re-checked against the cast range because rounding
  // can push p * 2^64 to exactly 2^64 for p just below 1.
  const double scaled = probability * 18446744073709551616.0;
  const uint64_t threshold =
      (probability >= 1.0 || scaled >= 18446744073709549568.0)
          ? UINT64_MAX
          : (uint64_t)scaled;
  std::lock_guard<std::mutex> lock(g_mu);
  for (size_t i = 0; i < kNumSites; ++i) {
    SiteState& st = g_state[i];
    if (!st.armed) {
      internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
    }
    st.armed = true;
    st.chaos = true;
    st.chaos_seed = seed;
    st.chaos_threshold = threshold;
    st.hits = 0;
  }
}

void Disarm(const std::string& name) {
  const int i = FindSite(name.c_str());
  if (i < 0) return;
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = g_state[i];
  if (st.armed) {
    st.armed = false;
    st.chaos = false;
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(g_mu);
  for (size_t i = 0; i < kNumSites; ++i) {
    SiteState& st = g_state[i];
    if (st.armed) {
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    st = SiteState();
  }
}

uint64_t HitCount(const std::string& name) {
  const int i = FindSite(name.c_str());
  if (i < 0) return 0;
  std::lock_guard<std::mutex> lock(g_mu);
  return g_state[i].hits;
}

std::vector<std::string> RegisteredNames() {
  std::vector<std::string> names;
  names.reserve(kNumSites);
  for (size_t i = 0; i < kNumSites; ++i) names.push_back(kRegistry[i].name);
  return names;
}

std::vector<std::pair<std::string, uint64_t>> FireCounts() {
  std::vector<std::pair<std::string, uint64_t>> counts;
  counts.reserve(kNumSites);
  std::lock_guard<std::mutex> lock(g_mu);
  for (size_t i = 0; i < kNumSites; ++i) {
    counts.emplace_back(kRegistry[i].name, g_state[i].fires);
  }
  return counts;
}

Status ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    if (clause.rfind("chaos:", 0) == 0) {
      // chaos:<seed>:<probability>
      const size_t colon = clause.find(':', 6);
      if (colon == std::string::npos) {
        return Status::InvalidArgument(
            "failpoint spec: chaos clause needs chaos:<seed>:<p>, got '" +
            clause + "'");
      }
      char* endp = nullptr;
      const unsigned long long seed =
          std::strtoull(clause.c_str() + 6, &endp, 10);
      if (endp != clause.c_str() + colon) {
        return Status::InvalidArgument(
            "failpoint spec: bad chaos seed in '" + clause + "'");
      }
      const double p = std::strtod(clause.c_str() + colon + 1, &endp);
      if (*endp != '\0' || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            "failpoint spec: chaos probability must be in [0,1] in '" +
            clause + "'");
      }
      ArmChaos(seed, p);
      continue;
    }

    // name[=action][@fire_at[:count]]
    std::string name = clause;
    std::string action_str;
    std::string sched_str;
    const size_t at = name.find('@');
    if (at != std::string::npos) {
      sched_str = name.substr(at + 1);
      name.resize(at);
    }
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      action_str = name.substr(eq + 1);
      name.resize(eq);
    }
    const int site = FindSite(name.c_str());
    if (site < 0) {
      return Status::InvalidArgument(
          "failpoint spec: unknown failpoint '" + name + "'");
    }
    Spec out;
    out.action = kRegistry[site].default_action;
    if (!action_str.empty()) {
      if (action_str == "error") {
        out.action = Action::kError;
      } else if (action_str == "badalloc") {
        out.action = Action::kBadAlloc;
      } else if (action_str == "throw") {
        out.action = Action::kThrow;
      } else if (action_str == "transient") {
        out.action = Action::kTransient;
      } else {
        return Status::InvalidArgument(
            "failpoint spec: unknown action '" + action_str + "'");
      }
    }
    if (!sched_str.empty()) {
      char* endp = nullptr;
      out.fire_at = std::strtoull(sched_str.c_str(), &endp, 10);
      if (out.fire_at == 0) {
        return Status::InvalidArgument(
            "failpoint spec: fire_at is 1-based in '" + clause + "'");
      }
      if (*endp == ':') {
        out.count = std::strtoull(endp + 1, &endp, 10);
        if (out.count == 0) {
          return Status::InvalidArgument(
              "failpoint spec: count must be positive in '" + clause + "'");
        }
      }
      if (*endp != '\0') {
        return Status::InvalidArgument(
            "failpoint spec: bad schedule in '" + clause + "'");
      }
    }
    Arm(name, out);
  }
  return Status::OK();
}

namespace internal {

std::atomic<uint64_t> g_armed_count{0};

Status Check(const char* name) {
  const int i = FindSite(name);
  if (i < 0) return Status::OK();
  Action action = Action::kError;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!HitFires((size_t)i, &action)) return Status::OK();
  }
  switch (action) {
    case Action::kError:
      return Status(kRegistry[i].code, FireMessage(name));
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kThrow:
      throw FailpointError(FireMessage(name));
    case Action::kTransient:
      return Status::OK();  // transient schedules only fire at *_TRANSIENT
  }
  return Status::OK();
}

void MaybeThrow(const char* name) {
  const int i = FindSite(name);
  if (i < 0) return;
  Action action = Action::kError;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!HitFires((size_t)i, &action)) return;
  }
  switch (action) {
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kError:
    case Action::kThrow:
      throw FailpointError(FireMessage(name));
    case Action::kTransient:
      break;
  }
}

bool Fired(const char* name) {
  const int i = FindSite(name);
  if (i < 0) return false;
  Action action = Action::kError;
  std::lock_guard<std::mutex> lock(g_mu);
  if (!HitFires((size_t)i, &action)) return false;
  return action != Action::kTransient;
}

bool FireTransient(const char* name) {
  const int i = FindSite(name);
  if (i < 0) return false;
  Action action = Action::kError;
  std::lock_guard<std::mutex> lock(g_mu);
  if (!HitFires((size_t)i, &action)) return false;
  return action == Action::kTransient;
}

}  // namespace internal

}  // namespace failpoint
}  // namespace atpm
