#include "common/math_util.h"

#include <cmath>

namespace atpm {

double LogBinomial(uint64_t n, uint64_t k) {
  if (k == 0 || k >= n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double Clamp(double x, double lo, double hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

double SafeMean(double sum, uint64_t count) {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double SampleStddev(double sum, double sum_sq, uint64_t count) {
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  double var = (sum_sq - sum * sum / n) / (n - 1.0);
  if (var < 0.0) var = 0.0;
  return std::sqrt(var);
}

}  // namespace atpm
