#ifndef ATPM_COMMON_FAILPOINT_H_
#define ATPM_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace atpm {
namespace failpoint {

/// Deterministic fault injection. Every fallible subsystem declares named
/// failpoints (registered centrally in failpoint.cc); test code arms them
/// programmatically or via the `ATPM_FAILPOINTS` environment variable and
/// the armed sites then fail on a reproducible schedule. When nothing is
/// armed a site costs one relaxed atomic load and consumes no RNG state,
/// so production behavior — including the bit-identical sampling streams
/// the test oracle pins — is unchanged.
///
/// Env grammar (`;`-separated):
///   ATPM_FAILPOINTS="graph_store.write;edge_list.read=transient@1:2"
///     name[=action][@fire_at[:count]]
///       action  error | badalloc | throw | transient (default: the
///               site's registered default — error for most, transient
///               for *.transient names)
///       fire_at 1-based hit index of the first firing (default 1)
///       count   number of consecutive firings (default: unbounded)
///   ATPM_FAILPOINTS="chaos:<seed>:<probability>"
///     arms every registered failpoint with an independent pseudo-random
///     schedule derived from (seed, name, hit index) — reproducible chaos.
enum class Action : uint8_t {
  /// The site reports its registered error code as a Status.
  kError,
  /// The site throws std::bad_alloc (allocation sites; containment paths
  /// translate this to StatusCode::kResourceExhausted).
  kBadAlloc,
  /// The site throws FailpointError (exercises worker-thread containment).
  kThrow,
  /// The site simulates a transient fault (EINTR / short read) that a
  /// bounded retry loop is expected to absorb.
  kTransient,
};

/// Exception thrown by kThrow-armed sites (and kError sites that live in
/// throw-based containment paths, e.g. worker-loop bodies).
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One armed schedule. Fires on hits [fire_at, fire_at + count).
struct Spec {
  Action action = Action::kError;
  uint64_t fire_at = 1;                 // 1-based hit index of first firing
  uint64_t count = UINT64_MAX;          // consecutive firings
};

/// True iff at least one failpoint is armed. The fast path every site
/// checks before touching any shared state.
bool AnyArmed();

/// Arms `name` with an explicit schedule. Returns false (and arms nothing)
/// if `name` is not in the central registry.
bool Arm(const std::string& name, Spec spec);

/// Arms `name` with its registered default action, firing on every hit.
bool Arm(const std::string& name);

/// Arms every registered failpoint with a pseudo-random schedule: hit k of
/// site s fires with probability `probability`, decided by a hash of
/// (seed, s, k) — the same seed always yields the same fault schedule.
void ArmChaos(uint64_t seed, double probability);

/// Disarms `name` (no-op when not armed).
void Disarm(const std::string& name);

/// Disarms everything and resets all hit counters.
void DisarmAll();

/// Total hits observed at `name` since the last DisarmAll (armed or not —
/// counting only happens while at least one failpoint is armed).
uint64_t HitCount(const std::string& name);

/// Parses `spec` (the ATPM_FAILPOINTS grammar above) and arms accordingly.
/// Returns a Status describing the first malformed clause, arming the
/// well-formed prefix.
Status ArmFromSpec(const std::string& spec);

/// All registered failpoint names, in registration order.
std::vector<std::string> RegisteredNames();

/// (name, schedule firings) per site since the last DisarmAll, in
/// registration order. Also exported at metrics-scrape time as the labeled
/// series `atpm_failpoint_fires_total{site=...}` (zero sites elided).
std::vector<std::pair<std::string, uint64_t>> FireCounts();

namespace internal {

extern std::atomic<uint64_t> g_armed_count;

/// Non-transient firing decision for `name` at this hit. Returns the
/// error Status registered for the site when it fires, OK otherwise.
Status Check(const char* name);

/// Like Check, but reports the firing by throwing: FailpointError for
/// kError/kThrow schedules, std::bad_alloc for kBadAlloc. For sites whose
/// containment path is exception-based (worker loops, allocation).
void MaybeThrow(const char* name);

/// Boolean form of Check for sites that fold failure into an existing
/// error flag instead of returning a Status directly.
bool Fired(const char* name);

/// True iff a kTransient schedule fires at this hit. Only transient
/// schedules are consulted; retry loops pair this with BackoffRetry.
bool FireTransient(const char* name);

}  // namespace internal

inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) != 0;
}

}  // namespace failpoint
}  // namespace atpm

/// Failpoint site in a Status- or Result-returning function: returns the
/// site's registered error Status when the armed schedule fires.
#define ATPM_FAILPOINT(name)                                      \
  do {                                                            \
    if (::atpm::failpoint::AnyArmed()) {                          \
      ::atpm::Status _fp_st = ::atpm::failpoint::internal::Check(name); \
      if (!_fp_st.ok()) return _fp_st;                            \
    }                                                             \
  } while (false)

/// Failpoint site inside an exception-based containment path (worker-loop
/// bodies, allocation wrappers): throws when the schedule fires.
#define ATPM_FAILPOINT_MAYBE_THROW(name)                          \
  do {                                                            \
    if (::atpm::failpoint::AnyArmed())                            \
      ::atpm::failpoint::internal::MaybeThrow(name);              \
  } while (false)

/// Boolean failpoint site: evaluates to true when the schedule fires, for
/// code that folds the failure into an existing error flag.
#define ATPM_FAILPOINT_FIRED(name) \
  (::atpm::failpoint::AnyArmed() && ::atpm::failpoint::internal::Fired(name))

/// Transient failpoint site: evaluates to true when a kTransient schedule
/// fires; the caller simulates an EINTR/short-read and retries.
#define ATPM_FAILPOINT_TRANSIENT(name)  \
  (::atpm::failpoint::AnyArmed() &&     \
   ::atpm::failpoint::internal::FireTransient(name))

#endif  // ATPM_COMMON_FAILPOINT_H_
