#ifndef ATPM_COMMON_IO_RETRY_H_
#define ATPM_COMMON_IO_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/metrics.h"

namespace atpm {

/// Bounded exponential backoff for transient IO faults (EINTR, short
/// reads). Attempt numbering is 0-based: returns true and sleeps
/// 50us * 2^attempt when another try is allowed, false once the retry
/// budget (kMaxIoRetries attempts, ~6ms of cumulative sleep) is spent —
/// at which point the caller reports the fault as a hard error.
inline constexpr uint32_t kMaxIoRetries = 7;

inline bool BackoffRetry(uint32_t attempt) {
  if (attempt >= kMaxIoRetries) return false;
  // Function-local static in an inline function: one counter program-wide.
  static obs::Counter* const retries = obs::MetricsRegistry::Global()
      .RegisterCounter("atpm_io_retry_attempts_total",
                       "Transient IO faults absorbed by backoff retries");
  retries->Increment();
  std::this_thread::sleep_for(
      std::chrono::microseconds(50u << attempt));
  return true;
}

}  // namespace atpm

#endif  // ATPM_COMMON_IO_RETRY_H_
