#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace atpm {
namespace obs {

namespace internal {

std::atomic<bool> g_metrics_enabled{true};

uint32_t AssignStripe() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kStripes;
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// ATPM_METRICS=0 turns the registry into pure relaxed-load no-ops before
/// main() runs (benchmark baselines, overhead probes).
const bool g_env_applied = [] {
  const char* env = std::getenv("ATPM_METRICS");
  if (env != nullptr && std::strcmp(env, "0") == 0) {
    g_metrics_enabled.store(false, std::memory_order_relaxed);
  }
  return true;
}();

/// Accumulates a double into an IEEE-754 bit cell with a relaxed CAS loop
/// (portable stand-in for atomic<double>::fetch_add; contention is already
/// diluted by striping).
void AddDoubleBits(std::atomic<uint64_t>* cell, double delta) {
  uint64_t observed = cell->load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    const double next = current + delta;
    uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (cell->compare_exchange_weak(observed, next_bits,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Shortest round-trippable decimal for export (stable across runs for
/// exactly representable values, which is what the golden tests feed it).
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shorter %g form when it round-trips.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", value);
  double parsed = 0.0;
  if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == value) {
    return shorter;
  }
  return buf;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Counter

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::Stripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::Stripe& stripe : stripes_) {
    stripe.value.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- Histogram

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      bounds_(std::move(bounds)) {
  const size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<uint64_t>[]>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  Shard& shard = shards_[internal::ThreadStripe()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AddDoubleBits(&shard.sum_bits, value);
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  if (bucket >= num_buckets()) return 0;
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.buckets[bucket].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += internal::BitsToDouble(
        shard.sum_bits.load(std::memory_order_relaxed));
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b < num_buckets(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_bits.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  ATPM_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

// ---------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

bool MetricsRegistry::ValidName(const char* name) {
  if (name == nullptr) return false;
  const size_t len = std::strlen(name);
  if (len <= 5 || len > 120) return false;
  if (std::strncmp(name, "atpm_", 5) != 0) return false;
  for (size_t i = 0; i < len; ++i) {
    const char c = name[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return true;
}

bool MetricsRegistry::NameTaken(const std::string& name) const {
  for (const auto& c : counters_) {
    if (c->name() == name) return true;
  }
  for (const auto& g : gauges_) {
    if (g->name() == name) return true;
  }
  for (const auto& h : histograms_) {
    if (h->name() == name) return true;
  }
  return false;
}

Counter* MetricsRegistry::TryRegisterCounter(const char* name,
                                             const char* help) {
  if (!ValidName(name)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (NameTaken(name)) return nullptr;
  counters_.emplace_back(
      new Counter(name, help != nullptr ? help : ""));
  return counters_.back().get();
}

Gauge* MetricsRegistry::TryRegisterGauge(const char* name, const char* help) {
  if (!ValidName(name)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (NameTaken(name)) return nullptr;
  gauges_.emplace_back(new Gauge(name, help != nullptr ? help : ""));
  return gauges_.back().get();
}

Histogram* MetricsRegistry::TryRegisterHistogram(const char* name,
                                                 const char* help,
                                                 std::vector<double> bounds) {
  if (!ValidName(name)) return nullptr;
  if (bounds.empty() || bounds.size() > 64) return nullptr;
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (NameTaken(name)) return nullptr;
  histograms_.emplace_back(new Histogram(
      name, help != nullptr ? help : "", std::move(bounds)));
  return histograms_.back().get();
}

Counter* MetricsRegistry::RegisterCounter(const char* name,
                                          const char* help) {
  Counter* counter = TryRegisterCounter(name, help);
  ATPM_CHECK(counter != nullptr);
  return counter;
}

Gauge* MetricsRegistry::RegisterGauge(const char* name, const char* help) {
  Gauge* gauge = TryRegisterGauge(name, help);
  ATPM_CHECK(gauge != nullptr);
  return gauge;
}

Histogram* MetricsRegistry::RegisterHistogram(const char* name,
                                              const char* help,
                                              std::vector<double> bounds) {
  Histogram* histogram = TryRegisterHistogram(name, help, std::move(bounds));
  ATPM_CHECK(histogram != nullptr);
  return histogram;
}

void MetricsRegistry::RegisterCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c->Reset();
  for (auto& g : gauges_) g->Reset();
  for (auto& h : histograms_) h->Reset();
}

namespace {

/// Snapshot views sorted by name for stable export (registration order
/// depends on static-init order, which must not leak into goldens).
template <typename T>
std::vector<const T*> SortedByName(const std::vector<std::unique_ptr<T>>& v) {
  std::vector<const T*> out;
  out.reserve(v.size());
  for (const auto& item : v) out.push_back(item.get());
  std::sort(out.begin(), out.end(), [](const T* a, const T* b) {
    return a->name() < b->name();
  });
  return out;
}

bool LabeledLess(const LabeledSample& a, const LabeledSample& b) {
  if (a.metric != b.metric) return a.metric < b.metric;
  if (a.label_key != b.label_key) return a.label_key < b.label_key;
  return a.label_value < b.label_value;
}

}  // namespace

std::string MetricsRegistry::ExportPrometheus() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Counter* c : SortedByName(counters_)) {
    out += "# HELP " + c->name() + " " + c->help() + "\n";
    out += "# TYPE " + c->name() + " counter\n";
    out += c->name() + " " + std::to_string(c->Value()) + "\n";
  }
  for (const Gauge* g : SortedByName(gauges_)) {
    out += "# HELP " + g->name() + " " + g->help() + "\n";
    out += "# TYPE " + g->name() + " gauge\n";
    out += g->name() + " " + std::to_string(g->Value()) + "\n";
  }
  for (const Histogram* h : SortedByName(histograms_)) {
    out += "# HELP " + h->name() + " " + h->help() + "\n";
    out += "# TYPE " + h->name() + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h->bounds().size(); ++b) {
      cumulative += h->BucketCount(b);
      out += h->name() + "_bucket{le=\"" +
             internal::FormatDouble(h->bounds()[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h->name() + "_bucket{le=\"+Inf\"} " +
           std::to_string(h->TotalCount()) + "\n";
    out += h->name() + "_sum " + internal::FormatDouble(h->Sum()) + "\n";
    out += h->name() + "_count " + std::to_string(h->TotalCount()) + "\n";
  }
  std::vector<LabeledSample> labeled;
  for (const Collector& collector : collectors_) collector(&labeled);
  std::stable_sort(labeled.begin(), labeled.end(), LabeledLess);
  std::string last_metric;
  for (const LabeledSample& sample : labeled) {
    if (!ValidName(sample.metric.c_str())) continue;
    if (sample.metric != last_metric) {
      out += "# HELP " + sample.metric + " " + sample.help + "\n";
      out += "# TYPE " + sample.metric + " counter\n";
      last_metric = sample.metric;
    }
    out += sample.metric + "{" + sample.label_key + "=\"" +
           sample.label_value + "\"} " + std::to_string(sample.value) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ExportJson() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const Counter* c : SortedByName(counters_)) {
    out += std::string(first ? "" : ",") + "\n    \"" + c->name() +
           "\": " + std::to_string(c->Value());
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const Gauge* g : SortedByName(gauges_)) {
    out += std::string(first ? "" : ",") + "\n    \"" + g->name() +
           "\": " + std::to_string(g->Value());
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const Histogram* h : SortedByName(histograms_)) {
    out += std::string(first ? "" : ",") + "\n    \"" + h->name() +
           "\": {\"count\": " + std::to_string(h->TotalCount()) +
           ", \"sum\": " + internal::FormatDouble(h->Sum()) +
           ", \"buckets\": [";
    for (size_t b = 0; b < h->num_buckets(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": ";
      out += b < h->bounds().size()
                 ? internal::FormatDouble(h->bounds()[b])
                 : std::string("\"+Inf\"");
      out += ", \"count\": " + std::to_string(h->BucketCount(b)) + "}";
    }
    out += "]}";
    first = false;
  }
  out += "\n  },\n  \"labeled\": {";
  std::vector<LabeledSample> labeled;
  for (const Collector& collector : collectors_) collector(&labeled);
  std::stable_sort(labeled.begin(), labeled.end(), LabeledLess);
  first = true;
  std::string open_metric;
  for (const LabeledSample& sample : labeled) {
    if (!ValidName(sample.metric.c_str())) continue;
    if (sample.metric != open_metric) {
      if (!open_metric.empty()) out += "\n    ]";
      out += std::string(first ? "" : ",") + "\n    \"" + sample.metric +
             "\": [";
      open_metric = sample.metric;
      first = false;
      out += "\n      {\"" + internal::JsonEscape(sample.label_key) +
             "\": \"" + internal::JsonEscape(sample.label_value) +
             "\", \"value\": " + std::to_string(sample.value) + "}";
    } else {
      out += ",\n      {\"" + internal::JsonEscape(sample.label_key) +
             "\": \"" + internal::JsonEscape(sample.label_value) +
             "\", \"value\": " + std::to_string(sample.value) + "}";
    }
  }
  if (!open_metric.empty()) out += "\n    ]";
  out += "\n  }\n}\n";
  return out;
}

}  // namespace obs
}  // namespace atpm
