#ifndef ATPM_COMMON_TIMER_H_
#define ATPM_COMMON_TIMER_H_

#include <chrono>

namespace atpm {

/// Monotonic wall-clock stopwatch used by the experiment harness to report
/// per-algorithm running times (Figs. 5, 6, 9a).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace atpm

#endif  // ATPM_COMMON_TIMER_H_
