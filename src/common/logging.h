#ifndef ATPM_COMMON_LOGGING_H_
#define ATPM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Invariant check that is always on (release and debug). Prints the failed
/// condition with its location and aborts. Use for programmer errors; use
/// Status for user/input errors.
#define ATPM_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ATPM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

/// Invariant check compiled out in release builds (NDEBUG).
#ifdef NDEBUG
#define ATPM_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define ATPM_DCHECK(cond) ATPM_CHECK(cond)
#endif

/// Binary comparison checks with both operands in the failure message.
#define ATPM_CHECK_OP(op, a, b)                                             \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      std::fprintf(stderr, "ATPM_CHECK failed at %s:%d: %s %s %s\n",        \
                   __FILE__, __LINE__, #a, #op, #b);                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// One-line warning to stderr with source location. For conditions the run
/// survives but an operator should see in bench/CI output — budget
/// degradation, retries that eventually succeeded. printf-style.
#define ATPM_WARN(fmt, ...)                                          \
  std::fprintf(stderr, "ATPM WARN %s:%d: " fmt "\n", __FILE__,       \
               __LINE__ __VA_OPT__(, ) __VA_ARGS__)

#define ATPM_CHECK_EQ(a, b) ATPM_CHECK_OP(==, a, b)
#define ATPM_CHECK_NE(a, b) ATPM_CHECK_OP(!=, a, b)
#define ATPM_CHECK_LT(a, b) ATPM_CHECK_OP(<, a, b)
#define ATPM_CHECK_LE(a, b) ATPM_CHECK_OP(<=, a, b)
#define ATPM_CHECK_GT(a, b) ATPM_CHECK_OP(>, a, b)
#define ATPM_CHECK_GE(a, b) ATPM_CHECK_OP(>=, a, b)

#endif  // ATPM_COMMON_LOGGING_H_
