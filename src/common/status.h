#ifndef ATPM_COMMON_STATUS_H_
#define ATPM_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace atpm {

/// Error category carried by a Status. Mirrors the Arrow/RocksDB idiom of
/// returning rich status objects from fallible operations instead of
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kOutOfBudget = 4,
  kInternal = 5,
  kResourceExhausted = 6,
};

/// Result of a fallible operation: an error code plus a human-readable
/// message. `Status::OK()` is the success value. Statuses are cheap to copy
/// in the success case (empty message) and are intended to be checked at
/// every call site (`ATPM_RETURN_NOT_OK`, `status.ok()`).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Returns the success status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with `msg`.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns an IOError status with `msg`.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Returns a NotFound status with `msg`.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an OutOfBudget status with `msg`. Used by sampling-based
  /// algorithms whose per-decision sample budget is exhausted (the analogue
  /// of the paper's ADDATP running out of memory on large graphs).
  static Status OutOfBudget(std::string msg) {
    return Status(StatusCode::kOutOfBudget, std::move(msg));
  }
  /// Returns an Internal status with `msg` (broken invariant).
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a ResourceExhausted status with `msg`. Used when an
  /// allocation fails (pool growth hit the memory ceiling): callers on the
  /// degradation path treat it as "work with what you have", unlike
  /// kInternal which always propagates.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// True iff this status carries kOutOfBudget.
  bool IsOutOfBudget() const { return code_ == StatusCode::kOutOfBudget; }
  /// True iff this status carries kInvalidArgument.
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  /// True iff this status carries kIOError.
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  /// True iff this status carries kNotFound.
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  /// True iff this status carries kResourceExhausted.
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  /// True iff this status carries kInternal.
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// The error category.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return msg_; }
  /// Formats "<CODE>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller.
#define ATPM_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::atpm::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Value-or-error wrapper in the spirit of arrow::Result. Holds either a T
/// (on success) or a non-OK Status. Access to `value()` requires `ok()`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }
  /// The contained value; must only be called when `ok()`.
  const T& value() const& { return value_; }
  /// Moves the contained value out; must only be called when `ok()`.
  T&& value() && { return std::move(value_); }
  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace atpm

#endif  // ATPM_COMMON_STATUS_H_
