#ifndef ATPM_COMMON_BIT_VECTOR_H_
#define ATPM_COMMON_BIT_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace atpm {

/// Dense fixed-size bitset over 64-bit words. Used for BFS visited sets,
/// RR-set membership, and activation bitmaps, where std::vector<bool> is too
/// slow and std::bitset needs a compile-time size.
class BitVector {
 public:
  BitVector() = default;
  /// Creates a bit vector of `n` bits, all clear.
  explicit BitVector(size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return n_; }

  /// Sets bit `i`.
  void Set(size_t i) {
    ATPM_DCHECK(i < n_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  /// Clears bit `i`.
  void Clear(size_t i) {
    ATPM_DCHECK(i < n_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  /// Tests bit `i`.
  bool Test(size_t i) const {
    ATPM_DCHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Clears all bits.
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// True iff any bit is set.
  bool Any() const {
    for (uint64_t w : words_) {
      if (w) return true;
    }
    return false;
  }

  /// The backing 64-bit words (trailing bits beyond size() are zero) —
  /// for content hashing / equality without bit-by-bit walks.
  std::span<const uint64_t> words() const { return words_; }

 private:
  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

/// "Visited" marker with O(1) bulk reset: instead of clearing a bitmap after
/// every BFS, each traversal bumps an epoch counter, and a node is visited
/// iff its stamp equals the current epoch. This is the standard trick for
/// running millions of small traversals (RR-set generation) over one graph.
class EpochVisitedSet {
 public:
  EpochVisitedSet() = default;
  /// Creates a marker for `n` elements.
  explicit EpochVisitedSet(size_t n) : stamps_(n, 0), epoch_(0) {}

  /// Number of elements.
  size_t size() const { return stamps_.size(); }

  /// Invalidates all marks in O(1).
  void NextEpoch() {
    ++epoch_;
    if (epoch_ == 0) {  // wrap-around: do the rare full clear
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Marks element `i` visited in the current epoch.
  void Mark(size_t i) {
    ATPM_DCHECK(i < stamps_.size());
    stamps_[i] = epoch_;
  }

  /// True iff `i` was marked since the last NextEpoch().
  bool IsMarked(size_t i) const {
    ATPM_DCHECK(i < stamps_.size());
    return stamps_[i] == epoch_;
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

}  // namespace atpm

#endif  // ATPM_COMMON_BIT_VECTOR_H_
