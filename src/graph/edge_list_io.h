#ifndef ATPM_GRAPH_EDGE_LIST_IO_H_
#define ATPM_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace atpm {

/// Options for LoadEdgeList.
struct EdgeListLoadOptions {
  /// If false, each line u v [p] adds both arcs (SNAP's undirected format).
  bool directed = true;
  /// Probability used when a line has no third column. A negative value
  /// means "leave unweighted (0)" so a weighting scheme can be applied later.
  double default_prob = -1.0;
};

/// Loads a SNAP-style whitespace-separated edge list:
///
///   # comment lines start with '#'
///   <src> <dst> [prob]
///
/// Node ids must be non-negative integers; ids are used verbatim (the graph
/// has max_id + 1 nodes). Fails with IOError if the file cannot be opened
/// and InvalidArgument on malformed lines or out-of-range probabilities.
Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListLoadOptions& options = {});

/// Writes `graph` as "<src>\t<dst>\t<prob>" lines plus a header comment.
/// Probabilities are printed with max_digits10 significant digits, so a
/// save -> load round-trip (directed mode) reproduces every probability
/// bit-exactly.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace atpm

#endif  // ATPM_GRAPH_EDGE_LIST_IO_H_
