#ifndef ATPM_GRAPH_GRAPH_BUILDER_H_
#define ATPM_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace atpm {

/// Options controlling GraphBuilder::Build.
struct GraphBuildOptions {
  /// Drop arcs u -> u.
  bool remove_self_loops = true;
  /// Collapse parallel arcs; the surviving arc keeps the maximum probability
  /// (parallel arcs do not occur in the paper's datasets, but generators may
  /// emit duplicates).
  bool deduplicate = true;
};

/// Accumulates weighted arcs and finalizes them into an immutable CSR Graph.
/// Usage:
///
///   GraphBuilder b;
///   b.AddEdge(0, 1, 0.5);
///   b.AddUndirectedEdge(1, 2, 0.3);   // adds both directions
///   ATPM_ASSIGN(Graph g, b.Build());
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares the node count; otherwise inferred as max endpoint + 1.
  void ReserveNodes(NodeId n) { min_nodes_ = n; }

  /// Adds the directed arc src -> dst with probability `prob`.
  void AddEdge(NodeId src, NodeId dst, double prob = 0.0) {
    edges_.push_back(WeightedEdge{src, dst, static_cast<float>(prob)});
  }

  /// Adds both arcs u <-> v with probability `prob` (undirected datasets are
  /// bidirected under the IC model, as in the paper's NetHEPT and DBLP).
  void AddUndirectedEdge(NodeId u, NodeId v, double prob = 0.0) {
    AddEdge(u, v, prob);
    AddEdge(v, u, prob);
  }

  /// Number of arcs accumulated so far (before dedup).
  size_t num_pending_edges() const { return edges_.size(); }

  /// Validates and finalizes the accumulated arcs into a Graph. Fails with
  /// InvalidArgument on probabilities outside [0, 1].
  Result<Graph> Build(const GraphBuildOptions& options = {});

 private:
  NodeId min_nodes_ = 0;
  std::vector<WeightedEdge> edges_;
};

}  // namespace atpm

#endif  // ATPM_GRAPH_GRAPH_BUILDER_H_
