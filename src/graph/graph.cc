#include "graph/graph.h"

#include <algorithm>
#include <cmath>

namespace atpm {

const char* SamplingKernelName(SamplingKernel kernel) {
  switch (kernel) {
    case SamplingKernel::kGeometricJump:
      return "geometric-jump";
    case SamplingKernel::kPerEdge:
      return "per-edge";
  }
  return "?";
}

std::vector<WeightedEdge> Graph::CollectEdges() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < n_; ++u) {
    const auto neigh = OutNeighbors(u);
    const auto probs = OutProbs(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      edges.push_back(WeightedEdge{u, neigh[j], probs[j]});
    }
  }
  return edges;
}

namespace {

// Relative cost of one log() against one Bernoulli trial (RNG step +
// multiply + compare) on commodity x86 — the break-even constant of the
// jump gate below. Erring low only forfeits upside on marginal segments;
// erring high regresses short low-probability runs.
constexpr double kGeometricLogCost = 3.0;

// log1p(-p) for the geometric inverse CDF — or 0 when the segment should
// be scanned per-edge instead. Under the cross-segment walk
// (GeometricSegmentScan) a run of jump segments costs roughly one log per
// *success* plus half a terminal draw, against one Bernoulli per edge for
// the linear scan: jump iff length * prob * kGeometricLogCost + 0.5 <=
// length. High-probability short segments (p = 0.5 pairs) stay linear;
// everything in the weighted-cascade / trivalency regime jumps.
// Degenerate probs are always drawless and also encode as 0 (the scan
// special-cases them before reading the factor).
double JumpFactor(uint32_t length, float prob) {
  const double p = static_cast<double>(prob);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  const double expected_logs = static_cast<double>(length) * p;
  if (expected_logs * kGeometricLogCost + 0.5 > static_cast<double>(length)) {
    return 0.0;
  }
  return std::log1p(-p);
}

// Walker/Vose alias construction over `weights` (need not sum to 1; the
// table realizes weights[i] / Σ weights). Appends weights.size() slots.
void BuildAliasTable(const std::vector<double>& weights,
                     std::vector<LtAliasSlot>* out) {
  const uint32_t k = static_cast<uint32_t>(weights.size());
  double total = 0.0;
  for (double w : weights) total += w;
  const size_t base = out->size();
  out->resize(base + k);
  LtAliasSlot* slots = out->data() + base;
  if (total <= 0.0) {
    // Degenerate: make every slot resolve to the last outcome ("no pick"
    // in the LT usage); callers never hit this for real LT nodes because
    // the "none" weight is positive whenever the edge mass is 0.
    for (uint32_t i = 0; i < k; ++i) slots[i] = LtAliasSlot{0.0, k - 1};
    return;
  }
  // Scaled weights; <1 goes to `small`, >=1 to `large`.
  std::vector<double> scaled(k);
  std::vector<uint32_t> small, large;
  for (uint32_t i = 0; i < k; ++i) {
    scaled[i] = weights[i] * k / total;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    slots[s] = LtAliasSlot{scaled[s], l};
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t l : large) slots[l] = LtAliasSlot{1.0, l};
  for (uint32_t s : small) slots[s] = LtAliasSlot{1.0, s};
}

}  // namespace

void Graph::RebuildInWeightIndex() {
  const NodeId n = n_;
  in_class_.assign(n, NodeWeightClass::kEmpty);
  seg_offsets_.assign(n + 1, 0);
  in_segments_.clear();
  jump_offsets_.assign(n + 1, 0);
  jump_in_arcs_.clear();
  jump_in_slots_.clear();
  lt_plan_.assign(n, static_cast<uint8_t>(LtPickPlan::kNone));
  lt_alias_offsets_.assign(n + 1, 0);
  lt_alias_.clear();

  // LT mass within [1, 1 + eps] is treated as exactly 1: float rounding of
  // per-edge probs (e.g. weighted cascade's indeg * float(1/indeg)) must
  // not demote an O(1) pick to the linear prefix scan.
  constexpr double kLtMassEps = 1e-6;

  float values[kMaxDistinctInProbs];
  uint32_t counts[kMaxDistinctInProbs];
  std::vector<double> alias_weights;

  for (NodeId v = 0; v < n; ++v) {
    const auto neigh = InNeighbors(v);
    const auto probs = InProbs(v);
    const uint32_t deg = static_cast<uint32_t>(neigh.size());
    if (deg == 0) {
      seg_offsets_[v + 1] = in_segments_.size();
      jump_offsets_[v + 1] = jump_in_arcs_.size();
      lt_alias_offsets_[v + 1] = lt_alias_.size();
      continue;
    }

    // Distinct-value census, capped at kMaxDistinctInProbs.
    uint32_t num_distinct = 0;
    bool overflow = false;
    double mass = 0.0;
    for (uint32_t j = 0; j < deg; ++j) {
      const float p = probs[j];
      mass += static_cast<double>(p);
      uint32_t d = 0;
      while (d < num_distinct && values[d] != p) ++d;
      if (d == num_distinct) {
        if (num_distinct == kMaxDistinctInProbs) {
          overflow = true;
          break;
        }
        values[num_distinct] = p;
        counts[num_distinct] = 0;
        ++num_distinct;
      }
      ++counts[d];
    }
    if (overflow) {
      // Re-total the mass for the LT plan (the census loop broke early).
      mass = 0.0;
      for (uint32_t j = 0; j < deg; ++j) mass += static_cast<double>(probs[j]);
    }

    // All-distinct vectors (every edge its own probability, the
    // uniform-random weighting on low-degree nodes) have no same-p runs to
    // jump over: grouping them into length-1 segments would only add
    // dispatch overhead, so they take the general per-edge path too.
    // General nodes materialize nothing — the kernels run the historical
    // per-edge loop over the original CSR for them.
    if (overflow || (num_distinct > 1 && num_distinct == deg)) {
      in_class_[v] = NodeWeightClass::kGeneral;
    } else if (num_distinct == 1) {
      in_class_[v] = NodeWeightClass::kUniform;
      in_segments_.push_back(
          ProbSegment{deg, values[0], JumpFactor(deg, values[0]), 0.0});
    } else {
      in_class_[v] = NodeWeightClass::kFewDistinct;
      // Group the in-edges into contiguous same-p runs, descending by
      // probability (order is statistically irrelevant for independent
      // trials; descending keeps the near-certain edges in the first
      // cache lines).
      uint32_t order[kMaxDistinctInProbs];
      for (uint32_t d = 0; d < num_distinct; ++d) order[d] = d;
      std::sort(order, order + num_distinct, [&](uint32_t a, uint32_t b) {
        return values[a] > values[b];
      });
      for (uint32_t oi = 0; oi < num_distinct; ++oi) {
        const uint32_t d = order[oi];
        in_segments_.push_back(ProbSegment{
            counts[d], values[d], JumpFactor(counts[d], values[d]), 0.0});
        for (uint32_t j = 0; j < deg; ++j) {
          if (probs[j] == values[d]) {
            jump_in_arcs_.push_back(InArc{neigh[j], values[d]});
            jump_in_slots_.push_back(j);
          }
        }
      }
    }

    // LT pick plan. The closed-form / alias picks select an edge by its
    // own probability and nullify removed picks afterwards, which matches
    // the historical skip-removed prefix scan only while no probability
    // mass is truncated — hence the mass <= 1 (+eps) gate.
    // An alias pick replaces an O(deg) prefix scan with one draw plus a
    // table lookup; for short in-lists the scan is already a handful of
    // float compares in one cache line, so the table only pays off above
    // this degree.
    constexpr uint32_t kMinAliasDegree = 8;
    if (in_class_[v] == NodeWeightClass::kUniform) {
      const double uniform_mass =
          static_cast<double>(deg) * static_cast<double>(values[0]);
      lt_plan_[v] = static_cast<uint8_t>(uniform_mass <= 1.0 + kLtMassEps
                                             ? LtPickPlan::kUniform
                                             : LtPickPlan::kPrefix);
    } else if (mass <= 1.0 + kLtMassEps && deg >= kMinAliasDegree) {
      lt_plan_[v] = static_cast<uint8_t>(LtPickPlan::kAlias);
      alias_weights.assign(deg + 1, 0.0);
      for (uint32_t j = 0; j < deg; ++j) {
        alias_weights[j] = static_cast<double>(probs[j]);
      }
      alias_weights[deg] = std::max(0.0, 1.0 - mass);
      BuildAliasTable(alias_weights, &lt_alias_);
    } else {
      lt_plan_[v] = static_cast<uint8_t>(LtPickPlan::kPrefix);
    }

    // Suffix any-success probabilities within each maximal run of jump
    // segments, back to front: run_any_prob of a segment covers the run
    // from it to the run's end, which is exactly what the scan's remaining
    // suffix is whenever it sits at a segment boundary.
    {
      const size_t seg_begin = seg_offsets_[v];
      const size_t seg_end = in_segments_.size();
      double suffix_ln = 0.0;
      for (size_t i = seg_end; i-- > seg_begin;) {
        ProbSegment& seg = in_segments_[i];
        if (seg.log1p_neg == 0.0) {
          suffix_ln = 0.0;  // run boundary
          continue;
        }
        suffix_ln += static_cast<double>(seg.length) * seg.log1p_neg;
        seg.run_any_prob = -std::expm1(suffix_ln);
      }
    }

    seg_offsets_[v + 1] = in_segments_.size();
    jump_offsets_[v + 1] = jump_in_arcs_.size();
    lt_alias_offsets_[v + 1] = lt_alias_.size();
  }
}

WeightClassProfile Graph::InWeightClassProfile() const {
  WeightClassProfile profile;
  profile.total_edges = num_edges();
  for (NodeId v = 0; v < n_; ++v) {
    switch (InWeightClass(v)) {
      case NodeWeightClass::kEmpty:
        ++profile.empty_nodes;
        break;
      case NodeWeightClass::kUniform:
        ++profile.uniform_nodes;
        break;
      case NodeWeightClass::kFewDistinct:
        ++profile.few_distinct_nodes;
        break;
      case NodeWeightClass::kGeneral:
        ++profile.general_nodes;
        break;
    }
    // Count what the jump kernel actually avoids paying per-edge draws
    // for: jump-enabled segments plus the drawless degenerate ones.
    // Gate-rejected segments run the linear Bernoulli scan and are NOT
    // jumpable, even on uniform/few-distinct nodes.
    for (const ProbSegment& seg : InProbSegments(v)) {
      if (seg.log1p_neg != 0.0 || seg.prob <= 0.0f || seg.prob >= 1.0f) {
        profile.jumpable_edges += seg.length;
      }
    }
    const LtPickPlan plan = LtInPlan(v);
    if (plan == LtPickPlan::kUniform || plan == LtPickPlan::kAlias) {
      ++profile.lt_fast_nodes;
    }
  }
  return profile;
}

}  // namespace atpm
