#include "graph/graph.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"

namespace atpm {

const char* SamplingKernelName(SamplingKernel kernel) {
  switch (kernel) {
    case SamplingKernel::kGeometricJump:
      return "geometric-jump";
    case SamplingKernel::kPerEdge:
      return "per-edge";
  }
  return "?";
}

std::vector<WeightedEdge> Graph::CollectEdges() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < n_; ++u) {
    const auto neigh = OutNeighbors(u);
    const auto probs = OutProbs(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      edges.push_back(WeightedEdge{u, neigh[j], probs[j]});
    }
  }
  return edges;
}

namespace {

// Relative cost of one log() against one Bernoulli trial (RNG step +
// multiply + compare) on commodity x86 — the break-even constant of the
// jump gate below. Erring low only forfeits upside on marginal segments;
// erring high regresses short low-probability runs.
constexpr double kGeometricLogCost = 3.0;

// log1p(-p) for the geometric inverse CDF — or 0 when the segment should
// be scanned per-edge instead. Under the cross-segment walk
// (GeometricSegmentScan) a run of jump segments costs roughly one log per
// *success* plus half a terminal draw, against one Bernoulli per edge for
// the linear scan: jump iff length * prob * kGeometricLogCost + 0.5 <=
// length. High-probability short segments (p = 0.5 pairs) stay linear;
// everything in the weighted-cascade / trivalency regime jumps.
// Degenerate probs are always drawless and also encode as 0 (the scan
// special-cases them before reading the factor).
double JumpFactor(uint32_t length, float prob) {
  const double p = static_cast<double>(prob);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  const double expected_logs = static_cast<double>(length) * p;
  if (expected_logs * kGeometricLogCost + 0.5 > static_cast<double>(length)) {
    return 0.0;
  }
  return std::log1p(-p);
}

// Walker/Vose alias construction over `weights` (need not sum to 1; the
// table realizes weights[i] / Σ weights). Appends weights.size() slots.
void BuildAliasTable(const std::vector<double>& weights,
                     std::vector<LtAliasSlot>* out) {
  const uint32_t k = static_cast<uint32_t>(weights.size());
  double total = 0.0;
  for (double w : weights) total += w;
  const size_t base = out->size();
  out->resize(base + k);
  LtAliasSlot* slots = out->data() + base;
  if (total <= 0.0) {
    // Degenerate: make every slot resolve to the last outcome ("no pick"
    // in the LT usage); callers never hit this for real LT nodes because
    // the "none" weight is positive whenever the edge mass is 0.
    for (uint32_t i = 0; i < k; ++i) slots[i] = LtAliasSlot{0.0, k - 1};
    return;
  }
  // Scaled weights; <1 goes to `small`, >=1 to `large`.
  std::vector<double> scaled(k);
  std::vector<uint32_t> small, large;
  for (uint32_t i = 0; i < k; ++i) {
    scaled[i] = weights[i] * k / total;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    slots[s] = LtAliasSlot{scaled[s], l};
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t l : large) slots[l] = LtAliasSlot{1.0, l};
  for (uint32_t s : small) slots[s] = LtAliasSlot{1.0, s};
}

// Fills run_any_prob over segments [begin, end): suffix any-success
// probabilities within each maximal run of jump segments, back to front.
// run_any_prob of a segment covers the run from it to the run's end, which
// is exactly what the scan's remaining suffix is whenever it sits at a
// segment boundary.
void FillRunAnyProb(std::vector<ProbSegment>* segments, size_t begin) {
  double suffix_ln = 0.0;
  for (size_t i = segments->size(); i-- > begin;) {
    ProbSegment& seg = (*segments)[i];
    if (seg.log1p_neg == 0.0) {
      suffix_ln = 0.0;  // run boundary
      continue;
    }
    suffix_ln += static_cast<double>(seg.length) * seg.log1p_neg;
    seg.run_any_prob = -std::expm1(suffix_ln);
  }
}

// Decides whether an irregular (all-distinct or overflowed) probability
// vector is still worth segmenting as one length-1 segment per edge in the
// original CSR order, so the cross-segment geometric walk can share draws
// across runs of consecutive low-probability edges. The walk costs about
// one draw per success plus one terminal draw per maximal jump run (gated
// and degenerate edges cost what they cost per-edge); require a clear 2x
// draw advantage over the per-edge loop before paying the extra segment
// storage and dispatch.
bool SegmentedRunsProfitable(std::span<const float> probs) {
  const uint32_t deg = static_cast<uint32_t>(probs.size());
  if (deg < 3) return false;
  double per_edge_draws = 0.0;
  double segmented_draws = 0.0;
  bool in_run = false;
  for (float pf : probs) {
    const double p = static_cast<double>(pf);
    if (p <= 0.0 || p >= 1.0) {
      in_run = false;  // degenerate: drawless under both kernels
      continue;
    }
    per_edge_draws += 1.0;
    if (JumpFactor(1, pf) != 0.0) {
      if (!in_run) {
        segmented_draws += 1.0;  // the run's terminal no-more-success draw
        in_run = true;
      }
      segmented_draws += p;  // one draw per success
    } else {
      segmented_draws += 1.0;  // gate-rejected: linear Bernoulli either way
      in_run = false;
    }
  }
  return segmented_draws * 2.0 <= per_edge_draws;
}

// Edges sampled without per-edge draws: jump-enabled segments plus the
// drawless degenerate ones — the WeightClassProfile jumpable criterion.
uint64_t CountJumpableEdges(const std::vector<ProbSegment>& segments) {
  uint64_t jumpable = 0;
  for (const ProbSegment& seg : segments) {
    if (seg.log1p_neg != 0.0 || seg.prob <= 0.0f || seg.prob >= 1.0f) {
      jumpable += seg.length;
    }
  }
  return jumpable;
}

// Descending index sort for the tiny distinct-value census arrays
// (n <= kMaxDistinctInProbs = 8; values are distinct, so the resulting
// permutation is unique and stream-identical to std::sort). Hand-rolled
// because libstdc++'s std::sort reads up to its 16-element insertion-sort
// threshold, which GCC's -Warray-bounds rejects against an 8-slot stack
// array at -O2.
void SortIndicesByValueDesc(uint32_t* order, uint32_t n,
                            const float* values) {
  for (uint32_t i = 1; i < n; ++i) {
    const uint32_t key = order[i];
    uint32_t j = i;
    while (j > 0 && values[order[j - 1]] < values[key]) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = key;
  }
}

}  // namespace

void Graph::RebuildInWeightIndex() {
  const NodeId n = n_;
  // Assemble into plain vectors and adopt at the end: the blocks may be
  // read-only views into a mapping (see array_block.h), and bulk
  // construction keeps the hot accessors branch-free.
  std::vector<NodeWeightClass> in_class(n, NodeWeightClass::kEmpty);
  std::vector<uint64_t> seg_offsets(n + 1, 0);
  std::vector<ProbSegment> in_segments;
  std::vector<uint64_t> jump_offsets(n + 1, 0);
  std::vector<InArc> jump_in_arcs;
  std::vector<uint32_t> jump_in_slots;
  std::vector<uint8_t> lt_plan(n, static_cast<uint8_t>(LtPickPlan::kNone));
  std::vector<uint64_t> lt_alias_offsets(n + 1, 0);
  std::vector<LtAliasSlot> lt_alias;

  // LT mass within [1, 1 + eps] is treated as exactly 1: float rounding of
  // per-edge probs (e.g. weighted cascade's indeg * float(1/indeg)) must
  // not demote an O(1) pick to the linear prefix scan.
  constexpr double kLtMassEps = 1e-6;

  float values[kMaxDistinctInProbs];
  uint32_t counts[kMaxDistinctInProbs];
  std::vector<double> alias_weights;

  for (NodeId v = 0; v < n; ++v) {
    const auto neigh = InNeighbors(v);
    const auto probs = InProbs(v);
    const uint32_t deg = static_cast<uint32_t>(neigh.size());
    if (deg == 0) {
      seg_offsets[v + 1] = in_segments.size();
      jump_offsets[v + 1] = jump_in_arcs.size();
      lt_alias_offsets[v + 1] = lt_alias.size();
      continue;
    }

    // Distinct-value census, capped at kMaxDistinctInProbs.
    uint32_t num_distinct = 0;
    bool overflow = false;
    double mass = 0.0;
    for (uint32_t j = 0; j < deg; ++j) {
      const float p = probs[j];
      mass += static_cast<double>(p);
      uint32_t d = 0;
      while (d < num_distinct && values[d] != p) ++d;
      if (d == num_distinct) {
        if (num_distinct == kMaxDistinctInProbs) {
          overflow = true;
          break;
        }
        values[num_distinct] = p;
        counts[num_distinct] = 0;
        ++num_distinct;
      }
      ++counts[d];
    }
    if (overflow) {
      // Re-total the mass for the LT plan (the census loop broke early).
      mass = 0.0;
      for (uint32_t j = 0; j < deg; ++j) mass += static_cast<double>(probs[j]);
    }

    // All-distinct vectors (every edge its own probability, the
    // uniform-random weighting on low-degree nodes) have no same-p runs to
    // jump over: grouping them into length-1 segments would only add
    // dispatch overhead, so they take the general per-edge path too.
    // General nodes materialize nothing — the kernels run the historical
    // per-edge loop over the original CSR for them.
    if (overflow || (num_distinct > 1 && num_distinct == deg)) {
      in_class[v] = NodeWeightClass::kGeneral;
    } else if (num_distinct == 1) {
      in_class[v] = NodeWeightClass::kUniform;
      in_segments.push_back(
          ProbSegment{deg, values[0], JumpFactor(deg, values[0]), 0.0});
    } else {
      in_class[v] = NodeWeightClass::kFewDistinct;
      // Group the in-edges into contiguous same-p runs, descending by
      // probability (order is statistically irrelevant for independent
      // trials; descending keeps the near-certain edges in the first
      // cache lines).
      uint32_t order[kMaxDistinctInProbs];
      for (uint32_t d = 0; d < num_distinct; ++d) order[d] = d;
      SortIndicesByValueDesc(order, num_distinct, values);
      for (uint32_t oi = 0; oi < num_distinct; ++oi) {
        const uint32_t d = order[oi];
        in_segments.push_back(ProbSegment{
            counts[d], values[d], JumpFactor(counts[d], values[d]), 0.0});
        for (uint32_t j = 0; j < deg; ++j) {
          if (probs[j] == values[d]) {
            jump_in_arcs.push_back(InArc{neigh[j], values[d]});
            jump_in_slots.push_back(j);
          }
        }
      }
    }

    // LT pick plan. The closed-form / alias picks select an edge by its
    // own probability and nullify removed picks afterwards, which matches
    // the historical skip-removed prefix scan only while no probability
    // mass is truncated — hence the mass <= 1 (+eps) gate.
    // An alias pick replaces an O(deg) prefix scan with one draw plus a
    // table lookup; for short in-lists the scan is already a handful of
    // float compares in one cache line, so the table only pays off above
    // this degree.
    constexpr uint32_t kMinAliasDegree = 8;
    if (in_class[v] == NodeWeightClass::kUniform) {
      const double uniform_mass =
          static_cast<double>(deg) * static_cast<double>(values[0]);
      lt_plan[v] = static_cast<uint8_t>(uniform_mass <= 1.0 + kLtMassEps
                                            ? LtPickPlan::kUniform
                                            : LtPickPlan::kPrefix);
    } else if (mass <= 1.0 + kLtMassEps && deg >= kMinAliasDegree) {
      lt_plan[v] = static_cast<uint8_t>(LtPickPlan::kAlias);
      alias_weights.assign(deg + 1, 0.0);
      for (uint32_t j = 0; j < deg; ++j) {
        alias_weights[j] = static_cast<double>(probs[j]);
      }
      alias_weights[deg] = std::max(0.0, 1.0 - mass);
      BuildAliasTable(alias_weights, &lt_alias);
    } else {
      lt_plan[v] = static_cast<uint8_t>(LtPickPlan::kPrefix);
    }

    FillRunAnyProb(&in_segments, seg_offsets[v]);

    seg_offsets[v + 1] = in_segments.size();
    jump_offsets[v + 1] = jump_in_arcs.size();
    lt_alias_offsets[v + 1] = lt_alias.size();
  }
  in_jumpable_edges_ = CountJumpableEdges(in_segments);

  in_class_.Adopt(std::move(in_class));
  seg_offsets_.Adopt(std::move(seg_offsets));
  in_segments_.Adopt(std::move(in_segments));
  jump_offsets_.Adopt(std::move(jump_offsets));
  jump_in_arcs_.Adopt(std::move(jump_in_arcs));
  jump_in_slots_.Adopt(std::move(jump_in_slots));
  lt_plan_.Adopt(std::move(lt_plan));
  lt_alias_offsets_.Adopt(std::move(lt_alias_offsets));
  lt_alias_.Adopt(std::move(lt_alias));
}

void Graph::RebuildOutWeightIndex() {
  const NodeId n = n_;
  // Same assemble-then-adopt pattern as RebuildInWeightIndex.
  std::vector<NodeWeightClass> out_class(n, NodeWeightClass::kEmpty);
  std::vector<uint64_t> out_seg_offsets(n + 1, 0);
  std::vector<ProbSegment> out_segments;
  std::vector<uint64_t> out_jump_offsets(n + 1, 0);
  std::vector<OutArc> jump_out_arcs;
  std::vector<uint32_t> jump_out_slots;

  float values[kMaxDistinctInProbs];
  uint32_t counts[kMaxDistinctInProbs];

  for (NodeId u = 0; u < n; ++u) {
    const auto neigh = OutNeighbors(u);
    const auto probs = OutProbs(u);
    const uint32_t deg = static_cast<uint32_t>(neigh.size());
    if (deg == 0) {
      out_seg_offsets[u + 1] = out_segments.size();
      out_jump_offsets[u + 1] = jump_out_arcs.size();
      continue;
    }

    // Distinct-value census, capped at kMaxDistinctInProbs (same census as
    // the in-direction; no LT mass needed — forward LT has no edge picks).
    uint32_t num_distinct = 0;
    bool overflow = false;
    for (uint32_t j = 0; j < deg; ++j) {
      const float p = probs[j];
      uint32_t d = 0;
      while (d < num_distinct && values[d] != p) ++d;
      if (d == num_distinct) {
        if (num_distinct == kMaxDistinctInProbs) {
          overflow = true;
          break;
        }
        values[num_distinct] = p;
        counts[num_distinct] = 0;
        ++num_distinct;
      }
      ++counts[d];
    }

    if (!overflow && num_distinct == 1) {
      out_class[u] = NodeWeightClass::kUniform;
      out_segments.push_back(
          ProbSegment{deg, values[0], JumpFactor(deg, values[0]), 0.0});
    } else if (!overflow && num_distinct < deg) {
      out_class[u] = NodeWeightClass::kFewDistinct;
      // Contiguous same-p runs, descending by probability — mirrors the
      // in-direction grouping (order is statistically irrelevant for
      // independent trials).
      uint32_t order[kMaxDistinctInProbs];
      for (uint32_t d = 0; d < num_distinct; ++d) order[d] = d;
      SortIndicesByValueDesc(order, num_distinct, values);
      for (uint32_t oi = 0; oi < num_distinct; ++oi) {
        const uint32_t d = order[oi];
        out_segments.push_back(ProbSegment{
            counts[d], values[d], JumpFactor(counts[d], values[d]), 0.0});
        for (uint32_t j = 0; j < deg; ++j) {
          if (probs[j] == values[d]) {
            jump_out_arcs.push_back(OutArc{neigh[j], values[d]});
            jump_out_slots.push_back(j);
          }
        }
      }
    } else if (SegmentedRunsProfitable(probs)) {
      // Irregular vector, but predominantly low-probability: one length-1
      // segment per edge in the ORIGINAL CSR order. Runs of consecutive
      // jump-enabled edges then share draws in the cross-segment walk —
      // the weighted-cascade forward case (p(u, v) = 1/indeg(v), almost
      // always all-distinct, almost always tiny on hub-heavy graphs).
      out_class[u] = NodeWeightClass::kSegmentedRuns;
      for (uint32_t j = 0; j < deg; ++j) {
        out_segments.push_back(
            ProbSegment{1, probs[j], JumpFactor(1, probs[j]), 0.0});
      }
    } else {
      out_class[u] = NodeWeightClass::kGeneral;
    }

    FillRunAnyProb(&out_segments, out_seg_offsets[u]);

    out_seg_offsets[u + 1] = out_segments.size();
    out_jump_offsets[u + 1] = jump_out_arcs.size();
  }
  out_jumpable_edges_ = CountJumpableEdges(out_segments);

  out_class_.Adopt(std::move(out_class));
  out_seg_offsets_.Adopt(std::move(out_seg_offsets));
  out_segments_.Adopt(std::move(out_segments));
  out_jump_offsets_.Adopt(std::move(out_jump_offsets));
  jump_out_arcs_.Adopt(std::move(jump_out_arcs));
  jump_out_slots_.Adopt(std::move(jump_out_slots));
}

void Graph::EnsureOwnedStorage() {
  if (tiled_reverse_ || out_offsets_.IsView()) {
    // Count only real detaches (store-backed views about to be copied),
    // not the no-op calls on already-owned graphs.
    static obs::Counter* const detaches =
        obs::MetricsRegistry::Global().RegisterCounter(
            "atpm_graph_detach_total",
            "Store-backed graphs copied into owned storage");
    detaches->Increment();
  }
  if (tiled_reverse_) {
    // Materialize the tile-grouped reverse CSR back into flat arrays.
    const uint64_t m = in_offsets_[n_];
    std::vector<NodeId> in_adj(m);
    std::vector<float> in_prob(m);
    std::vector<uint64_t> in_eidx(m);
    for (NodeId v = 0; v < n_; ++v) {
      const uint64_t base = in_offsets_[v];
      const uint32_t deg = InDegree(v);
      std::copy_n(InAdjPtr(v), deg, in_adj.begin() + base);
      std::copy_n(InProbPtr(v), deg, in_prob.begin() + base);
      std::copy_n(InEdgeIndexPtr(v), deg, in_eidx.begin() + base);
    }
    in_adj_.Adopt(std::move(in_adj));
    in_prob_.Adopt(std::move(in_prob));
    in_edge_index_.Adopt(std::move(in_eidx));
    tiled_reverse_ = false;
    tile_shift_ = 0;
    tile_in_adj_.clear();
    tile_in_prob_.clear();
    tile_in_eidx_.clear();
    tile_edge_start_.clear();
  }
  out_offsets_.EnsureOwned();
  out_adj_.EnsureOwned();
  out_prob_.EnsureOwned();
  in_offsets_.EnsureOwned();
  in_adj_.EnsureOwned();
  in_prob_.EnsureOwned();
  in_edge_index_.EnsureOwned();
  in_class_.EnsureOwned();
  seg_offsets_.EnsureOwned();
  in_segments_.EnsureOwned();
  jump_offsets_.EnsureOwned();
  jump_in_arcs_.EnsureOwned();
  jump_in_slots_.EnsureOwned();
  lt_plan_.EnsureOwned();
  lt_alias_offsets_.EnsureOwned();
  lt_alias_.EnsureOwned();
  out_class_.EnsureOwned();
  out_seg_offsets_.EnsureOwned();
  out_segments_.EnsureOwned();
  out_jump_offsets_.EnsureOwned();
  jump_out_arcs_.EnsureOwned();
  jump_out_slots_.EnsureOwned();
  backing_.reset();
}

WeightClassProfile Graph::InWeightClassProfile() const {
  WeightClassProfile profile;
  profile.total_edges = num_edges();
  for (NodeId v = 0; v < n_; ++v) {
    switch (InWeightClass(v)) {
      case NodeWeightClass::kEmpty:
        ++profile.empty_nodes;
        break;
      case NodeWeightClass::kUniform:
        ++profile.uniform_nodes;
        break;
      case NodeWeightClass::kFewDistinct:
        ++profile.few_distinct_nodes;
        break;
      case NodeWeightClass::kGeneral:
        ++profile.general_nodes;
        break;
      case NodeWeightClass::kSegmentedRuns:
        ++profile.segmented_nodes;
        break;
    }
    // Count what the jump kernel actually avoids paying per-edge draws
    // for: jump-enabled segments plus the drawless degenerate ones.
    // Gate-rejected segments run the linear Bernoulli scan and are NOT
    // jumpable, even on uniform/few-distinct nodes.
    for (const ProbSegment& seg : InProbSegments(v)) {
      if (seg.log1p_neg != 0.0 || seg.prob <= 0.0f || seg.prob >= 1.0f) {
        profile.jumpable_edges += seg.length;
      }
    }
    const LtPickPlan plan = LtInPlan(v);
    if (plan == LtPickPlan::kUniform || plan == LtPickPlan::kAlias) {
      ++profile.lt_fast_nodes;
    }
  }
  return profile;
}

WeightClassProfile Graph::OutWeightClassProfile() const {
  WeightClassProfile profile;
  profile.total_edges = num_edges();
  for (NodeId u = 0; u < n_; ++u) {
    switch (OutWeightClass(u)) {
      case NodeWeightClass::kEmpty:
        ++profile.empty_nodes;
        break;
      case NodeWeightClass::kUniform:
        ++profile.uniform_nodes;
        break;
      case NodeWeightClass::kFewDistinct:
        ++profile.few_distinct_nodes;
        break;
      case NodeWeightClass::kGeneral:
        ++profile.general_nodes;
        break;
      case NodeWeightClass::kSegmentedRuns:
        ++profile.segmented_nodes;
        break;
    }
    for (const ProbSegment& seg : OutProbSegments(u)) {
      if (seg.log1p_neg != 0.0 || seg.prob <= 0.0f || seg.prob >= 1.0f) {
        profile.jumpable_edges += seg.length;
      }
    }
    // lt_fast_nodes stays 0: the forward LT step draws one threshold per
    // node, there is no out-direction edge pick to plan.
  }
  return profile;
}

}  // namespace atpm
