#include "graph/graph.h"

namespace atpm {

std::vector<WeightedEdge> Graph::CollectEdges() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < n_; ++u) {
    const auto neigh = OutNeighbors(u);
    const auto probs = OutProbs(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      edges.push_back(WeightedEdge{u, neigh[j], probs[j]});
    }
  }
  return edges;
}

}  // namespace atpm
