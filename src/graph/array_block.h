#ifndef ATPM_GRAPH_ARRAY_BLOCK_H_
#define ATPM_GRAPH_ARRAY_BLOCK_H_

#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace atpm {

/// Dual-mode storage block for Graph's CSR and weight-class arrays: either
/// an owning std::vector (the GraphBuilder / rebuild path) or a borrowed
/// read-only view into externally owned memory (the graph-store mmap load
/// path, see graph_store.h). The mode is invisible to readers — data() /
/// size() / operator[] resolve through a cached pointer + length in both
/// modes, so the sampling kernels pay nothing for the dual representation —
/// and writers go through Adopt() / MutableVec(), which detach a view into
/// an owned copy first (copy-on-write). That detach is what lets
/// AssignProbabilities reweight a memory-mapped graph without touching the
/// mapping.
///
/// Lifetime: a view does NOT keep its backing memory alive; Graph holds the
/// mapping handle (Graph::backing_) alongside its blocks.
template <typename T>
class ArrayBlock {
 public:
  ArrayBlock() = default;
  ArrayBlock(std::initializer_list<T> init) : owned_(init) { Sync(); }

  ArrayBlock(const ArrayBlock& other) { *this = other; }
  ArrayBlock& operator=(const ArrayBlock& other) {
    if (this == &other) return *this;
    view_ = other.view_;
    if (view_) {
      owned_.clear();
      data_ = other.data_;
      size_ = other.size_;
    } else {
      owned_ = other.owned_;
      Sync();
    }
    return *this;
  }
  ArrayBlock(ArrayBlock&& other) noexcept { *this = std::move(other); }
  ArrayBlock& operator=(ArrayBlock&& other) noexcept {
    if (this == &other) return *this;
    view_ = other.view_;
    owned_ = std::move(other.owned_);
    if (view_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      Sync();
    }
    other.owned_.clear();
    other.view_ = false;
    other.Sync();
    return *this;
  }

  /// Points this block at externally owned memory (read-only). The owned
  /// buffer is released; the caller is responsible for keeping
  /// [data, data + size) alive for the block's lifetime.
  void SetView(const T* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    view_ = true;
    data_ = data;
    size_ = size;
  }

  /// True when backed by borrowed memory rather than the owned vector.
  bool IsView() const { return view_; }

  /// Copies a view into owned storage (no-op when already owned). After
  /// this, the backing memory is no longer referenced.
  void EnsureOwned() {
    if (!view_) return;
    owned_.assign(data_, data_ + size_);
    view_ = false;
    Sync();
  }

  /// Takes ownership of `values` — the bulk-construction path (builders and
  /// index rebuilds assemble plain vectors, then adopt them).
  void Adopt(std::vector<T>&& values) {
    owned_ = std::move(values);
    view_ = false;
    Sync();
  }

  /// The owned vector, detached from any view, for in-place mutation. The
  /// cached pointer is re-synced here; callers that change the vector's
  /// *length* (or capacity) through the reference must call Sync() again.
  std::vector<T>& MutableVec() {
    EnsureOwned();
    Sync();
    return owned_;
  }
  /// Refreshes the cached pointer after MutableVec() resizing.
  void Sync() {
    data_ = owned_.data();
    size_ = owned_.size();
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool view_ = false;
};

}  // namespace atpm

#endif  // ATPM_GRAPH_ARRAY_BLOCK_H_
