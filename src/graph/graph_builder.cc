#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace atpm {

Result<Graph> GraphBuilder::Build(const GraphBuildOptions& options) {
  NodeId n = min_nodes_;
  for (const WeightedEdge& e : edges_) {
    if (e.prob < 0.0f || e.prob > 1.0f) {
      return Status::InvalidArgument(
          "edge probability outside [0, 1]: " + std::to_string(e.prob));
    }
    n = std::max(n, static_cast<NodeId>(std::max(e.src, e.dst) + 1));
  }

  std::vector<WeightedEdge> edges = std::move(edges_);
  edges_ = {};

  if (options.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const WeightedEdge& e) {
                                 return e.src == e.dst;
                               }),
                edges.end());
  }

  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.prob > b.prob;  // keep-max dedup picks the first
            });

  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const WeightedEdge& a, const WeightedEdge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  Graph g;
  g.n_ = n;
  const uint64_t m = edges.size();

  // Forward CSR (edges already sorted by src). Arrays are assembled as
  // plain vectors and adopted into the graph's storage blocks (which may
  // alternatively view a graph-store mapping; see array_block.h).
  std::vector<uint64_t> out_offsets(n + 1, 0);
  for (const WeightedEdge& e : edges) ++out_offsets[e.src + 1];
  for (NodeId u = 0; u < n; ++u) out_offsets[u + 1] += out_offsets[u];
  std::vector<NodeId> out_adj(m);
  std::vector<float> out_prob(m);
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const WeightedEdge& e : edges) {
      const uint64_t pos = cursor[e.src]++;
      out_adj[pos] = e.dst;
      out_prob[pos] = e.prob;
    }
  }
  g.out_offsets_.Adopt(std::move(out_offsets));
  g.out_adj_.Adopt(std::move(out_adj));
  g.out_prob_.Adopt(std::move(out_prob));

  // Reverse CSR. Edges are in forward-index order (sorted by src), so the
  // running position in this loop *is* the forward edge index.
  std::vector<uint64_t> in_offsets(n + 1, 0);
  for (const WeightedEdge& e : edges) ++in_offsets[e.dst + 1];
  for (NodeId v = 0; v < n; ++v) in_offsets[v + 1] += in_offsets[v];
  std::vector<NodeId> in_adj(m);
  std::vector<float> in_prob(m);
  std::vector<uint64_t> in_edge_index(m);
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (uint64_t forward_index = 0; forward_index < m; ++forward_index) {
      const WeightedEdge& e = edges[forward_index];
      const uint64_t pos = cursor[e.dst]++;
      in_adj[pos] = e.src;
      in_prob[pos] = e.prob;
      in_edge_index[pos] = forward_index;
    }
  }
  g.in_offsets_.Adopt(std::move(in_offsets));
  g.in_adj_.Adopt(std::move(in_adj));
  g.in_prob_.Adopt(std::move(in_prob));
  g.in_edge_index_.Adopt(std::move(in_edge_index));

  // Classify every in-edge probability vector so the geometric-jump
  // kernels are ready the moment the graph exists; AssignProbabilities
  // re-runs this whenever a weighting scheme replaces the probabilities.
  g.RebuildWeightIndex();

  return g;
}

}  // namespace atpm
