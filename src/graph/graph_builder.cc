#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace atpm {

Result<Graph> GraphBuilder::Build(const GraphBuildOptions& options) {
  NodeId n = min_nodes_;
  for (const WeightedEdge& e : edges_) {
    if (e.prob < 0.0f || e.prob > 1.0f) {
      return Status::InvalidArgument(
          "edge probability outside [0, 1]: " + std::to_string(e.prob));
    }
    n = std::max(n, static_cast<NodeId>(std::max(e.src, e.dst) + 1));
  }

  std::vector<WeightedEdge> edges = std::move(edges_);
  edges_ = {};

  if (options.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const WeightedEdge& e) {
                                 return e.src == e.dst;
                               }),
                edges.end());
  }

  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.prob > b.prob;  // keep-max dedup picks the first
            });

  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const WeightedEdge& a, const WeightedEdge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  Graph g;
  g.n_ = n;
  const uint64_t m = edges.size();

  // Forward CSR (edges already sorted by src).
  g.out_offsets_.assign(n + 1, 0);
  for (const WeightedEdge& e : edges) ++g.out_offsets_[e.src + 1];
  for (NodeId u = 0; u < n; ++u) g.out_offsets_[u + 1] += g.out_offsets_[u];
  g.out_adj_.resize(m);
  g.out_prob_.resize(m);
  {
    std::vector<uint64_t> cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
    for (const WeightedEdge& e : edges) {
      const uint64_t pos = cursor[e.src]++;
      g.out_adj_[pos] = e.dst;
      g.out_prob_[pos] = e.prob;
    }
  }

  // Reverse CSR. Edges are in forward-index order (sorted by src), so the
  // running position in this loop *is* the forward edge index.
  g.in_offsets_.assign(n + 1, 0);
  for (const WeightedEdge& e : edges) ++g.in_offsets_[e.dst + 1];
  for (NodeId v = 0; v < n; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  g.in_adj_.resize(m);
  g.in_prob_.resize(m);
  g.in_edge_index_.resize(m);
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (uint64_t forward_index = 0; forward_index < m; ++forward_index) {
      const WeightedEdge& e = edges[forward_index];
      const uint64_t pos = cursor[e.dst]++;
      g.in_adj_[pos] = e.src;
      g.in_prob_[pos] = e.prob;
      g.in_edge_index_[pos] = forward_index;
    }
  }

  // Classify every in-edge probability vector so the geometric-jump
  // kernels are ready the moment the graph exists; AssignProbabilities
  // re-runs this whenever a weighting scheme replaces the probabilities.
  g.RebuildWeightIndex();

  return g;
}

}  // namespace atpm
