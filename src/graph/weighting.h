#ifndef ATPM_GRAPH_WEIGHTING_H_
#define ATPM_GRAPH_WEIGHTING_H_

#include "common/rng.h"
#include "graph/graph.h"

namespace atpm {

/// Standard IC edge-probability assignments from the influence-maximization
/// literature. The paper's experiments use the weighted-cascade scheme
/// exclusively: p(u, v) = 1 / indeg(v).

/// Weighted cascade: p(u, v) = 1 / indeg(v). Nodes with in-degree 0 have no
/// incoming arcs, so the formula is total.
void ApplyWeightedCascade(Graph* graph);

/// Constant probability p on every arc.
void ApplyConstantProbability(Graph* graph, double p);

/// Trivalency: each arc independently gets one of {0.1, 0.01, 0.001}
/// uniformly at random (Chen et al.'s TRIVALENCY setting).
void ApplyTrivalency(Graph* graph, Rng* rng);

/// Uniform random probability in [lo, hi] per arc.
void ApplyUniformRandomProbability(Graph* graph, double lo, double hi,
                                   Rng* rng);

}  // namespace atpm

#endif  // ATPM_GRAPH_WEIGHTING_H_
