#include "graph/graph_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/failpoint.h"
#include "common/io_retry.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace atpm {
namespace {

// Store-level instruments. Loads are rare next to sampling, so these sit on
// the slow path anyway; registration is one-time and leaked (see metrics.h).
struct StoreMetrics {
  obs::Counter* loads;
  obs::Counter* tile_binds;
  obs::Histogram* load_seconds;
  obs::Histogram* map_seconds;

  static const StoreMetrics& Get() {
    static const StoreMetrics* const m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* sm = new StoreMetrics();
      sm->loads = reg.RegisterCounter(
          "atpm_graph_store_loads_total",
          "Successful graph store loads (mmap + bind, no rebuild)");
      sm->tile_binds = reg.RegisterCounter(
          "atpm_graph_store_tile_binds_total",
          "Reverse-CSR tiles bound directly from the mapping");
      sm->load_seconds = reg.RegisterHistogram(
          "atpm_graph_store_load_seconds",
          "End-to-end graph store load latency",
          obs::ExponentialBuckets(1e-6, 4.0, 14));
      sm->map_seconds = reg.RegisterHistogram(
          "atpm_graph_store_map_seconds",
          "open+mmap+validate latency inside a load",
          obs::ExponentialBuckets(1e-6, 4.0, 14));
      return sm;
    }();
    return *m;
  }
};

// ---- Format constants ------------------------------------------------------

constexpr char kMagic[8] = {'A', 'T', 'P', 'M', 'G', 'R', 'F', '1'};
// Little-endian sentinel: a big-endian writer would store these bytes
// reversed, which a little-endian reader rejects (and vice versa).
constexpr uint32_t kEndianSentinel = 0xA7B0C1D2u;
constexpr uint64_t kAlignment = 64;

// Section ids. The id is the authoritative key — readers look sections up
// by id, so the on-disk order can change without a version bump (new ids
// require one, since older readers would miss required sections).
enum SectionId : uint32_t {
  kOutOffsets = 1,
  kOutAdj = 2,
  kOutProb = 3,
  kInOffsets = 4,
  kInAdj = 5,
  kInProb = 6,
  kInEdgeIndex = 7,
  kInClass = 8,
  kSegOffsets = 9,
  kInSegments = 10,
  kJumpOffsets = 11,
  kJumpInArcs = 12,
  kJumpInSlots = 13,
  kLtPlan = 14,
  kLtAliasOffsets = 15,
  kLtAlias = 16,
  kOutClass = 17,
  kOutSegOffsets = 18,
  kOutSegments = 19,
  kOutJumpOffsets = 20,
  kJumpOutArcs = 21,
  kJumpOutSlots = 22,
  kTileDirectory = 23,
};

struct GraphStoreHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t file_bytes;
  uint32_t section_count;
  uint32_t tile_size;  // nodes per tile (power of two); 0 = untiled
  uint64_t in_jumpable_edges;
  uint64_t out_jumpable_edges;
  uint64_t payload_hash;  // [payload_start, file_bytes), padding included
  uint64_t table_hash;    // the section table bytes
  uint64_t header_hash;   // this struct with header_hash zeroed
};
static_assert(sizeof(GraphStoreHeader) == 88, "header layout is frozen");
static_assert(std::is_trivially_copyable_v<GraphStoreHeader>);
// offsetof pins: a reordered or repacked field moves one of these and fails
// the build — bump kGraphStoreVersion instead of "fixing" the assert.
static_assert(offsetof(GraphStoreHeader, version) == 8);
static_assert(offsetof(GraphStoreHeader, endian) == 12);
static_assert(offsetof(GraphStoreHeader, num_nodes) == 16);
static_assert(offsetof(GraphStoreHeader, section_count) == 40);
static_assert(offsetof(GraphStoreHeader, tile_size) == 44);
static_assert(offsetof(GraphStoreHeader, payload_hash) == 64);
static_assert(offsetof(GraphStoreHeader, header_hash) == 80);

struct GraphStoreSection {
  uint32_t id;
  uint32_t element_size;
  uint64_t offset;  // absolute file offset, kAlignment-aligned
  uint64_t bytes;   // element_count * element_size
  uint64_t element_count;
};
static_assert(sizeof(GraphStoreSection) == 32, "section layout is frozen");
static_assert(std::is_trivially_copyable_v<GraphStoreSection>);
static_assert(offsetof(GraphStoreSection, offset) == 8);
static_assert(offsetof(GraphStoreSection, element_count) == 24);

// One tile's reverse-CSR locality group: absolute file offsets of the
// tile's in_adj / in_prob / in_edge_index slices (lengths derive from
// in_offsets). Stored in the kTileDirectory section.
struct TileDirEntry {
  uint64_t adj_offset;
  uint64_t prob_offset;
  uint64_t eidx_offset;
};
static_assert(sizeof(TileDirEntry) == 24, "tile entry layout is frozen");
static_assert(std::is_trivially_copyable_v<TileDirEntry>);
static_assert(offsetof(TileDirEntry, prob_offset) == 8);
static_assert(offsetof(TileDirEntry, eidx_offset) == 16);

// The array element types are memcpy'd to disk verbatim; freeze their
// layout so a compiler/ABI change cannot silently corrupt stores.
static_assert(sizeof(ProbSegment) == 24 && alignof(ProbSegment) == 8);
static_assert(sizeof(InArc) == 8 && sizeof(OutArc) == 8);
static_assert(sizeof(LtAliasSlot) == 16 && alignof(LtAliasSlot) == 8);
static_assert(std::is_trivially_copyable_v<ProbSegment>);
static_assert(std::is_trivially_copyable_v<InArc>);
static_assert(std::is_trivially_copyable_v<OutArc>);
static_assert(std::is_trivially_copyable_v<LtAliasSlot>);

uint64_t AlignUp(uint64_t x) { return (x + kAlignment - 1) & ~(kAlignment - 1); }

// ---- Hashing ---------------------------------------------------------------

// 64-bit FNV-1a over 8-byte words: ~10x the byte-at-a-time throughput,
// which matters when verifying multi-GB payloads. Streaming-safe: the
// digest depends only on the byte sequence, not on how it was chunked
// across Update calls (the writer hashes section by section, the reader
// hashes the whole payload in one pass — they must agree).
class Hash64 {
 public:
  void Update(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    total_ += n;
    if (buffered_ > 0) {
      while (buffered_ < 8 && n > 0) {
        buf_[buffered_++] = *p++;
        --n;
      }
      if (buffered_ < 8) return;
      uint64_t word;
      std::memcpy(&word, buf_, 8);
      Mix(word);
      buffered_ = 0;
    }
    while (n >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      Mix(word);
      p += 8;
      n -= 8;
    }
    // The bound is provably never hit (n < 8 and buffered_ == 0 here) but
    // keeps the indexing visibly in range for the optimizer's UB analysis.
    while (n > 0 && buffered_ < sizeof(buf_)) {
      buf_[buffered_++] = *p++;
      --n;
    }
  }

  uint64_t Digest() const {
    uint64_t state = state_;
    if (buffered_ > 0) {
      uint64_t word = 0;
      std::memcpy(&word, buf_, buffered_);
      state = MixInto(state, word);
    }
    // Folding the length in makes "abc" + zero tail distinct from "abc".
    return MixInto(state, total_);
  }

 private:
  static uint64_t MixInto(uint64_t state, uint64_t word) {
    state = (state ^ word) * 1099511628211ull;
    return state ^ (state >> 29);
  }
  void Mix(uint64_t word) { state_ = MixInto(state_, word); }

  uint64_t state_ = 1469598103934665603ull;
  uint64_t total_ = 0;
  size_t buffered_ = 0;
  unsigned char buf_[8] = {};
};

uint64_t HashBytes(const void* data, size_t n) {
  Hash64 h;
  h.Update(data, n);
  return h.Digest();
}

uint64_t HeaderHash(GraphStoreHeader header) {
  header.header_hash = 0;
  return HashBytes(&header, sizeof(header));
}

// ---- mmap RAII -------------------------------------------------------------

struct MappedFile {
  const unsigned char* base = nullptr;
  uint64_t size = 0;

  ~MappedFile() {
    if (base != nullptr) {
      // munmap's signature predates const; no write happens through this.
      ::munmap(const_cast<unsigned char*>(base), size);  // atpm-lint: allow(mmap-safety)
    }
  }
};

// ---- Buffered writer -------------------------------------------------------

// Sequential section writer: tracks the running offset, zero-pads to
// alignment, and hashes every payload byte as it goes out.
class StoreWriter {
 public:
  explicit StoreWriter(std::FILE* file) : file_(file) {}

  uint64_t offset() const { return offset_; }
  bool failed() const { return failed_; }
  uint64_t payload_hash() const { return hash_.Digest(); }

  void PadToAlignment() {
    static const unsigned char zeros[kAlignment] = {};
    const uint64_t aligned = AlignUp(offset_);
    if (aligned != offset_) {
      Write(zeros, aligned - offset_);
    }
  }

  void Write(const void* data, uint64_t bytes) {
    if (failed_ || bytes == 0) return;
    if (ATPM_FAILPOINT_FIRED("graph_store.write") ||
        std::fwrite(data, 1, bytes, file_) != bytes) {
      failed_ = true;
      return;
    }
    hash_.Update(data, bytes);
    offset_ += bytes;
  }

  // Seeks past the (not yet written) header + table region.
  void SkipPreamble(uint64_t preamble_bytes) {
    if (std::fseek(file_, static_cast<long>(preamble_bytes), SEEK_SET) != 0) {
      failed_ = true;
    }
    offset_ = preamble_bytes;
  }

 private:
  std::FILE* file_;
  uint64_t offset_ = 0;
  bool failed_ = false;
  Hash64 hash_;
};

bool IsPowerOfTwo(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

uint32_t Log2(uint32_t x) {
  uint32_t shift = 0;
  while ((1u << shift) < x) ++shift;
  return shift;
}

const char* ExpectedSectionName(uint32_t id) {
  switch (id) {
    case kOutOffsets: return "out_offsets";
    case kOutAdj: return "out_adj";
    case kOutProb: return "out_prob";
    case kInOffsets: return "in_offsets";
    case kInAdj: return "in_adj";
    case kInProb: return "in_prob";
    case kInEdgeIndex: return "in_edge_index";
    case kInClass: return "in_class";
    case kSegOffsets: return "seg_offsets";
    case kInSegments: return "in_segments";
    case kJumpOffsets: return "jump_offsets";
    case kJumpInArcs: return "jump_in_arcs";
    case kJumpInSlots: return "jump_in_slots";
    case kLtPlan: return "lt_plan";
    case kLtAliasOffsets: return "lt_alias_offsets";
    case kLtAlias: return "lt_alias";
    case kOutClass: return "out_class";
    case kOutSegOffsets: return "out_seg_offsets";
    case kOutSegments: return "out_segments";
    case kOutJumpOffsets: return "out_jump_offsets";
    case kJumpOutArcs: return "jump_out_arcs";
    case kJumpOutSlots: return "jump_out_slots";
    case kTileDirectory: return "tile_directory";
  }
  return "?";
}

}  // namespace

// ---- Serializer / loader (friend of Graph) ---------------------------------

class GraphStoreIO {
 public:
  static Status Save(const Graph& g, const std::string& path,
                     const GraphStoreWriteOptions& options);
  static Result<Graph> Load(const std::string& path,
                            const GraphStoreLoadOptions& options);

  // Validated view of a mapped store file (header + table resolved).
  struct StoreView {
    std::shared_ptr<MappedFile> file;
    const GraphStoreHeader* header = nullptr;
    const GraphStoreSection* sections = nullptr;

    const GraphStoreSection* Find(uint32_t id) const {
      for (uint32_t i = 0; i < header->section_count; ++i) {
        if (sections[i].id == id) return &sections[i];
      }
      return nullptr;
    }
  };

  static Result<StoreView> MapAndValidate(const std::string& path,
                                          bool verify_payload);

 private:
  struct SectionSpec {
    uint32_t id;
    uint32_t element_size;
    const void* data;
    uint64_t element_count;
  };

  template <typename T>
  static Status BindSection(const StoreView& view, uint32_t id,
                            uint64_t expected_count, ArrayBlock<T>* block) {
    const GraphStoreSection* section = view.Find(id);
    if (section == nullptr) {
      return Status::InvalidArgument(
          std::string("graph store: missing section ") +
          ExpectedSectionName(id));
    }
    if (section->element_size != sizeof(T) ||
        section->element_count != expected_count) {
      return Status::InvalidArgument(
          std::string("graph store: section ") + ExpectedSectionName(id) +
          " has element_size " + std::to_string(section->element_size) +
          " count " + std::to_string(section->element_count) + ", expected " +
          std::to_string(sizeof(T)) + " x " + std::to_string(expected_count));
    }
    block->SetView(
        reinterpret_cast<const T*>(view.file->base + section->offset),
        expected_count);
    return Status::OK();
  }
};

Status GraphStoreIO::Save(const Graph& g, const std::string& path,
                          const GraphStoreWriteOptions& options) {
  if (options.tile_size != 0 && !IsPowerOfTwo(options.tile_size)) {
    return Status::InvalidArgument(
        "graph store tile_size must be 0 or a power of two, got " +
        std::to_string(options.tile_size));
  }
  const NodeId n = g.num_nodes();
  const uint64_t m = g.num_edges();

  // A tiled-mapped source graph has no flat reverse arrays to point at;
  // materialize temporaries through the per-node accessors. (Rare path:
  // re-packing an mmap-loaded graph.)
  std::vector<NodeId> in_adj_copy;
  std::vector<float> in_prob_copy;
  std::vector<uint64_t> in_eidx_copy;
  const NodeId* in_adj = g.in_adj_.data();
  const float* in_prob = g.in_prob_.data();
  const uint64_t* in_eidx = g.in_edge_index_.data();
  if (g.tiled_reverse_) {
    in_adj_copy.resize(m);
    in_prob_copy.resize(m);
    in_eidx_copy.resize(m);
    for (NodeId v = 0; v < n; ++v) {
      const uint64_t base = g.in_offsets_[v];
      const uint32_t deg = g.InDegree(v);
      std::memcpy(in_adj_copy.data() + base, g.InAdjPtr(v),
                  deg * sizeof(NodeId));
      std::memcpy(in_prob_copy.data() + base, g.InProbPtr(v),
                  deg * sizeof(float));
      std::memcpy(in_eidx_copy.data() + base, g.InEdgeIndexPtr(v),
                  deg * sizeof(uint64_t));
    }
    in_adj = in_adj_copy.data();
    in_prob = in_prob_copy.data();
    in_eidx = in_eidx_copy.data();
  }

  const bool tiled = options.tile_size != 0 && n > 0;
  const uint32_t tile_size = tiled ? options.tile_size : 0;
  const uint32_t num_tiles =
      tiled ? static_cast<uint32_t>((n + tile_size - 1) / tile_size) : 0;

  // Flat sections (everything except the possibly-tiled reverse payload).
  std::vector<SectionSpec> specs = {
      {kOutOffsets, sizeof(uint64_t), g.out_offsets_.data(), uint64_t{n} + 1},
      {kOutAdj, sizeof(NodeId), g.out_adj_.data(), m},
      {kOutProb, sizeof(float), g.out_prob_.data(), m},
      {kInOffsets, sizeof(uint64_t), g.in_offsets_.data(), uint64_t{n} + 1},
      {kInClass, sizeof(NodeWeightClass), g.in_class_.data(), uint64_t{n}},
      {kSegOffsets, sizeof(uint64_t), g.seg_offsets_.data(), uint64_t{n} + 1},
      {kInSegments, sizeof(ProbSegment), g.in_segments_.data(),
       g.in_segments_.size()},
      {kJumpOffsets, sizeof(uint64_t), g.jump_offsets_.data(),
       uint64_t{n} + 1},
      {kJumpInArcs, sizeof(InArc), g.jump_in_arcs_.data(),
       g.jump_in_arcs_.size()},
      {kJumpInSlots, sizeof(uint32_t), g.jump_in_slots_.data(),
       g.jump_in_slots_.size()},
      {kLtPlan, sizeof(uint8_t), g.lt_plan_.data(), uint64_t{n}},
      {kLtAliasOffsets, sizeof(uint64_t), g.lt_alias_offsets_.data(),
       uint64_t{n} + 1},
      {kLtAlias, sizeof(LtAliasSlot), g.lt_alias_.data(), g.lt_alias_.size()},
      {kOutClass, sizeof(NodeWeightClass), g.out_class_.data(), uint64_t{n}},
      {kOutSegOffsets, sizeof(uint64_t), g.out_seg_offsets_.data(),
       uint64_t{n} + 1},
      {kOutSegments, sizeof(ProbSegment), g.out_segments_.data(),
       g.out_segments_.size()},
      {kOutJumpOffsets, sizeof(uint64_t), g.out_jump_offsets_.data(),
       uint64_t{n} + 1},
      {kJumpOutArcs, sizeof(OutArc), g.jump_out_arcs_.data(),
       g.jump_out_arcs_.size()},
      {kJumpOutSlots, sizeof(uint32_t), g.jump_out_slots_.data(),
       g.jump_out_slots_.size()},
  };
  if (!tiled) {
    specs.push_back({kInAdj, sizeof(NodeId), in_adj, m});
    specs.push_back({kInProb, sizeof(float), in_prob, m});
    specs.push_back({kInEdgeIndex, sizeof(uint64_t), in_eidx, m});
  }

  // Layout: preamble, flat sections, tile directory, tile blocks. Offsets
  // are computed up front so the section table can be written after the
  // payload without a second pass over the data.
  const uint32_t section_count =
      static_cast<uint32_t>(specs.size()) + (tiled ? 1 : 0);
  const uint64_t preamble_bytes =
      sizeof(GraphStoreHeader) + section_count * sizeof(GraphStoreSection);
  uint64_t offset = AlignUp(preamble_bytes);

  std::vector<GraphStoreSection> table;
  table.reserve(section_count);
  for (const SectionSpec& spec : specs) {
    const uint64_t bytes = spec.element_count * spec.element_size;
    table.push_back({spec.id, spec.element_size, offset, bytes,
                     spec.element_count});
    offset = AlignUp(offset + bytes);
  }

  std::vector<TileDirEntry> tile_dir(num_tiles);
  if (tiled) {
    table.push_back({kTileDirectory, sizeof(TileDirEntry), offset,
                     num_tiles * sizeof(TileDirEntry), num_tiles});
    offset = AlignUp(offset + num_tiles * sizeof(TileDirEntry));
    for (uint32_t t = 0; t < num_tiles; ++t) {
      const uint64_t first = g.in_offsets_[static_cast<NodeId>(
          std::min<uint64_t>(uint64_t{t} * tile_size, n))];
      const uint64_t last = g.in_offsets_[static_cast<NodeId>(
          std::min<uint64_t>((uint64_t{t} + 1) * tile_size, n))];
      const uint64_t count = last - first;
      tile_dir[t].adj_offset = offset;
      offset = AlignUp(offset + count * sizeof(NodeId));
      tile_dir[t].prob_offset = offset;
      offset = AlignUp(offset + count * sizeof(float));
      tile_dir[t].eidx_offset = offset;
      offset = AlignUp(offset + count * sizeof(uint64_t));
    }
  }
  const uint64_t file_bytes = offset;

  // Crash-safe publish: write the full image to a same-directory temp
  // file, fsync it, then atomically rename over `path`. A reader racing
  // the save (or one arriving after a mid-write crash) observes either the
  // previous store or the complete new one — never a torn file.
  ATPM_FAILPOINT("graph_store.open");
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + tmp_path +
                           "' for writing: " + std::strerror(errno));
  }

  StoreWriter writer(file);
  // Seek straight to the aligned payload start; the preamble pad is left as
  // a zero gap and is outside the payload hash (the reader hashes from
  // AlignUp(preamble) too).
  writer.SkipPreamble(AlignUp(preamble_bytes));
  for (const SectionSpec& spec : specs) {
    writer.Write(spec.data, spec.element_count * spec.element_size);
    writer.PadToAlignment();
  }
  if (tiled) {
    writer.Write(tile_dir.data(), num_tiles * sizeof(TileDirEntry));
    writer.PadToAlignment();
    for (uint32_t t = 0; t < num_tiles; ++t) {
      const NodeId lo = static_cast<NodeId>(
          std::min<uint64_t>(uint64_t{t} * tile_size, n));
      const NodeId hi = static_cast<NodeId>(
          std::min<uint64_t>((uint64_t{t} + 1) * tile_size, n));
      const uint64_t first = g.in_offsets_[lo];
      const uint64_t count = g.in_offsets_[hi] - first;
      writer.Write(in_adj + first, count * sizeof(NodeId));
      writer.PadToAlignment();
      writer.Write(in_prob + first, count * sizeof(float));
      writer.PadToAlignment();
      writer.Write(in_eidx + first, count * sizeof(uint64_t));
      writer.PadToAlignment();
    }
  }

  GraphStoreHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kGraphStoreVersion;
  header.endian = kEndianSentinel;
  header.num_nodes = n;
  header.num_edges = m;
  header.file_bytes = file_bytes;
  header.section_count = section_count;
  header.tile_size = tile_size;
  header.in_jumpable_edges = g.in_jumpable_edges_;
  header.out_jumpable_edges = g.out_jumpable_edges_;
  header.payload_hash = writer.payload_hash();
  header.table_hash =
      HashBytes(table.data(), table.size() * sizeof(GraphStoreSection));
  header.header_hash = HeaderHash(header);

  bool write_ok = !writer.failed() && writer.offset() == file_bytes;
  if (write_ok) {
    write_ok = std::fseek(file, 0, SEEK_SET) == 0 &&
               std::fwrite(&header, sizeof(header), 1, file) == 1 &&
               std::fwrite(table.data(), sizeof(GraphStoreSection),
                           table.size(), file) == table.size();
  }
  write_ok = std::fflush(file) == 0 && write_ok;
  // Durability before visibility: the bytes must be on disk before the
  // rename can publish them, or a crash could leave `path` naming a
  // fully-visible but partially-persisted store.
  if (write_ok && (ATPM_FAILPOINT_FIRED("graph_store.fsync") ||
                   ::fsync(::fileno(file)) != 0)) {
    write_ok = false;
  }
  write_ok = std::fclose(file) == 0 && write_ok;
  if (!write_ok) {
    std::remove(tmp_path.c_str());
    return Status::IOError("write failure on '" + tmp_path +
                           "': " + std::strerror(errno));
  }
  if (ATPM_FAILPOINT_FIRED("graph_store.rename") ||
      std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot publish '" + path +
                           "': rename failed: " + std::strerror(errno));
  }
  // Best-effort directory sync so the rename itself survives power loss;
  // the data is already durable, so a failure here costs nothing worse
  // than re-running the save.
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos
          ? std::string(".")
          : (slash == 0 ? std::string("/") : path.substr(0, slash));
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<GraphStoreIO::StoreView> GraphStoreIO::MapAndValidate(
    const std::string& path, bool verify_payload) {
  ATPM_FAILPOINT("graph_store.open");
  // EINTR (and injected transient faults) get a bounded backoff-retry;
  // anything else is a hard error.
  int fd = -1;
  for (uint32_t attempt = 0;;) {
    if (ATPM_FAILPOINT_TRANSIENT("graph_store.open.transient")) {
      if (BackoffRetry(attempt++)) continue;
      return Status::IOError("cannot open '" + path +
                             "': transient faults exhausted the retry "
                             "budget");
    }
    fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) break;
    if (errno == EINTR && BackoffRetry(attempt++)) continue;
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError("fstat('" + path + "') failed: " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < sizeof(GraphStoreHeader)) {
    ::close(fd);
    return Status::InvalidArgument(
        "graph store '" + path + "' is truncated: " + std::to_string(size) +
        " bytes is smaller than the header");
  }
  void* mapping = MAP_FAILED;
  if (ATPM_FAILPOINT_FIRED("graph_store.mmap")) {
    errno = ENOMEM;  // injected fault surfaces through the real error path
  } else {
    mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  ::close(fd);  // the mapping holds its own reference
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap('" + path +
                           "') failed: " + std::strerror(errno));
  }
  auto file = std::make_shared<MappedFile>();
  file->base = static_cast<const unsigned char*>(mapping);
  file->size = size;

  ATPM_FAILPOINT("graph_store.read");
  GraphStoreHeader header;
  std::memcpy(&header, file->base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a graph store (bad magic)");
  }
  if (header.endian != kEndianSentinel) {
    return Status::InvalidArgument(
        "graph store '" + path + "' was written on a foreign-endian machine");
  }
  if (header.version != kGraphStoreVersion) {
    return Status::InvalidArgument(
        "graph store '" + path + "' has format version " +
        std::to_string(header.version) + "; this build reads version " +
        std::to_string(kGraphStoreVersion) + " (repack with atpm_graph_pack)");
  }
  if (header.header_hash != HeaderHash(header)) {
    return Status::InvalidArgument("graph store '" + path +
                                   "' header checksum mismatch (corrupt)");
  }
  if (header.file_bytes != size) {
    return Status::InvalidArgument(
        "graph store '" + path + "' is truncated or has trailing garbage: "
        "header records " +
        std::to_string(header.file_bytes) + " bytes, file has " +
        std::to_string(size));
  }
  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(GraphStoreSection);
  const uint64_t preamble_bytes = sizeof(GraphStoreHeader) + table_bytes;
  if (preamble_bytes > size) {
    return Status::InvalidArgument("graph store '" + path +
                                   "' section table exceeds the file");
  }
  const GraphStoreSection* sections =
      reinterpret_cast<const GraphStoreSection*>(file->base +
                                                 sizeof(GraphStoreHeader));
  if (HashBytes(sections, table_bytes) != header.table_hash) {
    return Status::InvalidArgument(
        "graph store '" + path + "' section table checksum mismatch");
  }
  for (uint32_t i = 0; i < header.section_count; ++i) {
    const GraphStoreSection& s = sections[i];
    // Division-based element check: the naive `element_count *
    // element_size` product can wrap for adversarial counts and collide
    // with a small in-bounds `bytes`, smuggling a view of 2^61 "elements"
    // past the bounds check.
    if (s.offset % kAlignment != 0 || s.offset > size ||
        s.bytes > size - s.offset || s.element_size == 0 ||
        s.element_count != s.bytes / s.element_size ||
        s.bytes % s.element_size != 0) {
      return Status::InvalidArgument(
          "graph store '" + path + "' section " + ExpectedSectionName(s.id) +
          " has inconsistent bounds");
    }
  }
  if (verify_payload) {
    const uint64_t payload_start = AlignUp(preamble_bytes);
    if (HashBytes(file->base + payload_start, size - payload_start) !=
        header.payload_hash) {
      return Status::InvalidArgument("graph store '" + path +
                                     "' payload checksum mismatch (corrupt)");
    }
  }

  StoreView view;
  view.file = std::move(file);
  view.header = reinterpret_cast<const GraphStoreHeader*>(view.file->base);
  view.sections = sections;
  return view;
}

Result<Graph> GraphStoreIO::Load(const std::string& path,
                                 const GraphStoreLoadOptions& options) {
  const StoreMetrics& metrics = StoreMetrics::Get();
  obs::TraceSpan load_span("graph_store_load");
  obs::ScopedLatency load_latency(metrics.load_seconds);
  Result<StoreView> mapped = [&] {
    obs::ScopedLatency map_latency(metrics.map_seconds);
    return MapAndValidate(path, options.verify_payload);
  }();
  if (!mapped.ok()) return mapped.status();
  const StoreView& view = mapped.value();
  const GraphStoreHeader& header = *view.header;
  const uint64_t n64 = header.num_nodes;
  if (n64 > 0xFFFFFFFFull - 1) {
    return Status::InvalidArgument("graph store node count overflows NodeId");
  }
  const NodeId n = static_cast<NodeId>(n64);
  const uint64_t m = header.num_edges;

  Graph g;
  g.n_ = n;
  ATPM_RETURN_NOT_OK(BindSection(view, kOutOffsets, n64 + 1, &g.out_offsets_));
  ATPM_RETURN_NOT_OK(BindSection(view, kOutAdj, m, &g.out_adj_));
  ATPM_RETURN_NOT_OK(BindSection(view, kOutProb, m, &g.out_prob_));
  ATPM_RETURN_NOT_OK(BindSection(view, kInOffsets, n64 + 1, &g.in_offsets_));
  ATPM_RETURN_NOT_OK(BindSection(view, kInClass, n64, &g.in_class_));
  ATPM_RETURN_NOT_OK(BindSection(view, kSegOffsets, n64 + 1, &g.seg_offsets_));
  const GraphStoreSection* in_segments = view.Find(kInSegments);
  ATPM_RETURN_NOT_OK(BindSection(
      view, kInSegments, in_segments ? in_segments->element_count : 0,
      &g.in_segments_));
  ATPM_RETURN_NOT_OK(
      BindSection(view, kJumpOffsets, n64 + 1, &g.jump_offsets_));
  const GraphStoreSection* jump_arcs = view.Find(kJumpInArcs);
  ATPM_RETURN_NOT_OK(BindSection(view, kJumpInArcs,
                                 jump_arcs ? jump_arcs->element_count : 0,
                                 &g.jump_in_arcs_));
  const GraphStoreSection* jump_slots = view.Find(kJumpInSlots);
  ATPM_RETURN_NOT_OK(BindSection(view, kJumpInSlots,
                                 jump_slots ? jump_slots->element_count : 0,
                                 &g.jump_in_slots_));
  ATPM_RETURN_NOT_OK(BindSection(view, kLtPlan, n64, &g.lt_plan_));
  ATPM_RETURN_NOT_OK(
      BindSection(view, kLtAliasOffsets, n64 + 1, &g.lt_alias_offsets_));
  const GraphStoreSection* lt_alias = view.Find(kLtAlias);
  ATPM_RETURN_NOT_OK(BindSection(view, kLtAlias,
                                 lt_alias ? lt_alias->element_count : 0,
                                 &g.lt_alias_));
  ATPM_RETURN_NOT_OK(BindSection(view, kOutClass, n64, &g.out_class_));
  ATPM_RETURN_NOT_OK(
      BindSection(view, kOutSegOffsets, n64 + 1, &g.out_seg_offsets_));
  const GraphStoreSection* out_segments = view.Find(kOutSegments);
  ATPM_RETURN_NOT_OK(BindSection(
      view, kOutSegments, out_segments ? out_segments->element_count : 0,
      &g.out_segments_));
  ATPM_RETURN_NOT_OK(
      BindSection(view, kOutJumpOffsets, n64 + 1, &g.out_jump_offsets_));
  const GraphStoreSection* out_arcs = view.Find(kJumpOutArcs);
  ATPM_RETURN_NOT_OK(BindSection(view, kJumpOutArcs,
                                 out_arcs ? out_arcs->element_count : 0,
                                 &g.jump_out_arcs_));
  const GraphStoreSection* out_slots = view.Find(kJumpOutSlots);
  ATPM_RETURN_NOT_OK(BindSection(view, kJumpOutSlots,
                                 out_slots ? out_slots->element_count : 0,
                                 &g.jump_out_slots_));

  // Cheap structural invariants (full content integrity is the payload
  // hash's job): CSR extents must match the header's edge count.
  if (g.out_offsets_[0] != 0 || g.out_offsets_[n] != m ||
      g.in_offsets_[0] != 0 || g.in_offsets_[n] != m) {
    return Status::InvalidArgument(
        "graph store '" + path + "' CSR offsets disagree with header counts");
  }

  if (header.tile_size != 0) {
    if (!IsPowerOfTwo(header.tile_size)) {
      return Status::InvalidArgument("graph store '" + path +
                                     "' tile_size is not a power of two");
    }
    const uint32_t num_tiles = static_cast<uint32_t>(
        (n64 + header.tile_size - 1) / header.tile_size);
    const GraphStoreSection* dir = view.Find(kTileDirectory);
    if (dir == nullptr || dir->element_size != sizeof(TileDirEntry) ||
        dir->element_count != num_tiles) {
      return Status::InvalidArgument("graph store '" + path +
                                     "' tile directory missing or mis-sized");
    }
    const TileDirEntry* entries =
        reinterpret_cast<const TileDirEntry*>(view.file->base + dir->offset);
    g.tiled_reverse_ = true;
    g.tile_shift_ = Log2(header.tile_size);
    g.tile_in_adj_.resize(num_tiles);
    g.tile_in_prob_.resize(num_tiles);
    g.tile_in_eidx_.resize(num_tiles);
    g.tile_edge_start_.resize(num_tiles);
    const uint64_t size = view.file->size;
    for (uint32_t t = 0; t < num_tiles; ++t) {
      const uint64_t lo = std::min<uint64_t>(uint64_t{t} * header.tile_size,
                                             n64);
      const uint64_t hi = std::min<uint64_t>(
          (uint64_t{t} + 1) * header.tile_size, n64);
      const uint64_t first = g.in_offsets_[static_cast<NodeId>(lo)];
      const uint64_t count = g.in_offsets_[static_cast<NodeId>(hi)] - first;
      // Non-monotonic in_offsets (tail corruption the CSR-extent check
      // cannot see) make `count` wrap huge: pin the edge range to [0, m]
      // before it reaches any pointer arithmetic.
      if (first > m || count > m - first) {
        return Status::InvalidArgument(
            "graph store '" + path + "' tile " + std::to_string(t) +
            " spans an invalid edge range");
      }
      const TileDirEntry& e = entries[t];
      // Division-based extents: `count * sizeof(T)` can wrap and sneak
      // under `size - offset`, so compare counts against the capacity of
      // the remaining file instead.
      if (e.adj_offset % kAlignment != 0 || e.prob_offset % kAlignment != 0 ||
          e.eidx_offset % kAlignment != 0 || e.adj_offset > size ||
          count > (size - e.adj_offset) / sizeof(NodeId) ||
          e.prob_offset > size ||
          count > (size - e.prob_offset) / sizeof(float) ||
          e.eidx_offset > size ||
          count > (size - e.eidx_offset) / sizeof(uint64_t)) {
        return Status::InvalidArgument(
            "graph store '" + path + "' tile " + std::to_string(t) +
            " block exceeds the file");
      }
      g.tile_in_adj_[t] =
          reinterpret_cast<const NodeId*>(view.file->base + e.adj_offset);
      g.tile_in_prob_[t] =
          reinterpret_cast<const float*>(view.file->base + e.prob_offset);
      g.tile_in_eidx_[t] =
          reinterpret_cast<const uint64_t*>(view.file->base + e.eidx_offset);
      g.tile_edge_start_[t] = first;
    }
    metrics.tile_binds->Increment(num_tiles);
  } else {
    ATPM_RETURN_NOT_OK(BindSection(view, kInAdj, m, &g.in_adj_));
    ATPM_RETURN_NOT_OK(BindSection(view, kInProb, m, &g.in_prob_));
    ATPM_RETURN_NOT_OK(BindSection(view, kInEdgeIndex, m, &g.in_edge_index_));
  }

  g.in_jumpable_edges_ = header.in_jumpable_edges;
  g.out_jumpable_edges_ = header.out_jumpable_edges;
  g.backing_ = std::static_pointer_cast<const void>(view.file);
  load_span.AnnotateU64("num_nodes", n64);
  load_span.AnnotateU64("num_edges", m);
  metrics.loads->Increment();
  return g;
}

Status SaveGraphStore(const Graph& graph, const std::string& path,
                      const GraphStoreWriteOptions& options) {
  return GraphStoreIO::Save(graph, path, options);
}

Result<Graph> LoadGraphStore(const std::string& path,
                             const GraphStoreLoadOptions& options) {
  return GraphStoreIO::Load(path, options);
}

Result<GraphStoreInfo> ReadGraphStoreInfo(const std::string& path) {
  Result<GraphStoreIO::StoreView> mapped =
      GraphStoreIO::MapAndValidate(path, /*verify_payload=*/false);
  if (!mapped.ok()) return mapped.status();
  const GraphStoreHeader& header = *mapped.value().header;
  GraphStoreInfo info;
  info.version = header.version;
  info.tile_size = header.tile_size;
  info.num_tiles =
      header.tile_size == 0
          ? 0
          : static_cast<uint32_t>((header.num_nodes + header.tile_size - 1) /
                                  header.tile_size);
  info.section_count = header.section_count;
  info.num_nodes = header.num_nodes;
  info.num_edges = header.num_edges;
  info.file_bytes = header.file_bytes;
  return info;
}

}  // namespace atpm
