#include "graph/weighting.h"

#include <vector>

namespace atpm {

void ApplyWeightedCascade(Graph* graph) {
  graph->AssignProbabilities([graph](NodeId /*src*/, NodeId dst) {
    return 1.0 / static_cast<double>(graph->InDegree(dst));
  });
}

void ApplyConstantProbability(Graph* graph, double p) {
  graph->AssignProbabilities(
      [p](NodeId /*src*/, NodeId /*dst*/) { return p; });
}

namespace {

// Deterministic per-arc randomness: hash (src, dst, salt) so that the
// forward and reverse CSR views assign the same probability to the same arc
// even though AssignProbabilities visits each arc twice.
uint64_t MixArc(NodeId src, NodeId dst, uint64_t salt) {
  uint64_t x = (static_cast<uint64_t>(src) << 32) | dst;
  x ^= salt + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ArcUniform(NodeId src, NodeId dst, uint64_t salt) {
  return static_cast<double>(MixArc(src, dst, salt) >> 11) * 0x1.0p-53;
}

}  // namespace

void ApplyTrivalency(Graph* graph, Rng* rng) {
  const uint64_t salt = rng->Next();
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  graph->AssignProbabilities([salt](NodeId src, NodeId dst) {
    return kLevels[MixArc(src, dst, salt) % 3];
  });
}

void ApplyUniformRandomProbability(Graph* graph, double lo, double hi,
                                   Rng* rng) {
  const uint64_t salt = rng->Next();
  graph->AssignProbabilities([salt, lo, hi](NodeId src, NodeId dst) {
    return lo + (hi - lo) * ArcUniform(src, dst, salt);
  });
}

}  // namespace atpm
