#include "graph/edge_list_io.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/failpoint.h"
#include "common/io_retry.h"
#include "graph/graph_builder.h"

namespace atpm {
namespace {

// Block size for the buffered reader. Lines are parsed in place within the
// block; a partial trailing line is carried to the front of the next fill.
constexpr size_t kEdgeListChunk = size_t{1} << 20;

inline const char* SkipBlanks(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

// Parses a decimal integer token (optional sign) terminated by blank or
// line end. Returns false on empty token, stray characters, or overflow.
bool ParseIntToken(const char** cursor, const char* end, long long* out) {
  const char* p = *cursor;
  bool negative = false;
  if (p < end && (*p == '+' || *p == '-')) {
    negative = *p == '-';
    ++p;
  }
  const char* digits = p;
  unsigned long long value = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    if (value > (0x7FFFFFFFFFFFFFFFull - 9) / 10) return false;
    value = value * 10 + static_cast<unsigned long long>(*p - '0');
    ++p;
  }
  if (p == digits) return false;
  if (p < end && *p != ' ' && *p != '\t' && *p != '\r') return false;
  *out = negative ? -static_cast<long long>(value)
                  : static_cast<long long>(value);
  *cursor = p;
  return true;
}

struct LineParser {
  const std::string& path;
  const EdgeListLoadOptions& options;
  GraphBuilder& builder;
  uint64_t line_no = 0;

  // Parses one "<src> <dst> [prob]" line (already known non-empty,
  // non-comment at `first`).
  Status Parse(const char* first, const char* end) {
    const char* p = first;
    long long src = -1;
    long long dst = -1;
    if (!ParseIntToken(&p, end, &src) ||
        !(p = SkipBlanks(p, end), ParseIntToken(&p, end, &dst))) {
      return Malformed(first, end);
    }
    if (src < 0 || dst < 0) {
      return Status::InvalidArgument("negative node id at " + path + ":" +
                                     std::to_string(line_no));
    }
    double prob = options.default_prob;
    p = SkipBlanks(p, end);
    if (p < end) {
      const auto [next, ec] = std::from_chars(p, end, prob);
      if (ec != std::errc()) return Malformed(first, end);
      p = next;
      // Anything after the probability (timestamps, labels) is ignored,
      // like the rest-of-line remainder always has been.
    }
    const double clamped = prob < 0.0 ? 0.0 : prob;
    if (clamped > 1.0) {
      return Status::InvalidArgument("probability > 1 at " + path + ":" +
                                     std::to_string(line_no));
    }
    if (options.directed) {
      builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                      clamped);
    } else {
      builder.AddUndirectedEdge(static_cast<NodeId>(src),
                                static_cast<NodeId>(dst), clamped);
    }
    return Status::OK();
  }

  Status Malformed(const char* first, const char* end) const {
    while (end > first && (end[-1] == '\r' || end[-1] == ' ')) --end;
    return Status::InvalidArgument("malformed edge at " + path + ":" +
                                   std::to_string(line_no) + ": '" +
                                   std::string(first, end) + "'");
  }
};

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListLoadOptions& options) {
  ATPM_FAILPOINT("edge_list.open");
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }

  GraphBuilder builder;
  LineParser parser{path, options, builder};
  std::vector<char> buffer(kEdgeListChunk);
  size_t carry = 0;  // bytes of a partial line held at the buffer front
  bool eof = false;
  while (!eof) {
    if (carry == buffer.size()) buffer.resize(buffer.size() * 2);
    if (ATPM_FAILPOINT_FIRED("edge_list.read")) {
      std::fclose(file);
      return Status::IOError("read failure on '" + path +
                             "': injected fault");
    }
    // Short reads from EINTR (or an injected transient fault) resume
    // where they left off under a bounded backoff; a persistent stream
    // error falls through to the hard-error path below.
    const size_t want = buffer.size() - carry;
    size_t got = 0;
    for (uint32_t attempt = 0;;) {
      if (ATPM_FAILPOINT_TRANSIENT("edge_list.read.transient")) {
        if (BackoffRetry(attempt++)) continue;
        std::fclose(file);
        return Status::IOError("read failure on '" + path +
                               "': transient faults exhausted the retry "
                               "budget");
      }
      got += std::fread(buffer.data() + carry + got, 1, want - got, file);
      if (got == want || std::feof(file) != 0) break;
      if (std::ferror(file) != 0 && errno == EINTR &&
          BackoffRetry(attempt++)) {
        std::clearerr(file);
        continue;
      }
      break;
    }
    if (got < want) {
      if (std::ferror(file) != 0) {
        std::fclose(file);
        return Status::IOError("read failure on '" + path +
                               "': " + std::strerror(errno));
      }
      eof = true;
    }
    const char* cursor = buffer.data();
    const char* const data_end = buffer.data() + carry + got;
    while (cursor < data_end) {
      const char* newline = static_cast<const char*>(
          std::memchr(cursor, '\n', static_cast<size_t>(data_end - cursor)));
      if (newline == nullptr) {
        if (!eof) break;           // partial line: refill and re-scan
        newline = data_end;        // final line without a trailing '\n'
      }
      ++parser.line_no;
      const char* first = SkipBlanks(cursor, newline);
      if (first < newline && *first != '#') {
        const Status line_status = parser.Parse(first, newline);
        if (!line_status.ok()) {
          std::fclose(file);
          return line_status;
        }
      }
      cursor = newline + 1;
    }
    carry = cursor < data_end ? static_cast<size_t>(data_end - cursor) : 0;
    if (carry > 0) std::memmove(buffer.data(), cursor, carry);
  }
  std::fclose(file);
  return builder.Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  ATPM_FAILPOINT("edge_list.open");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path +
                           "' for writing: " + std::strerror(errno));
  }
  bool ok = !ATPM_FAILPOINT_FIRED("edge_list.write") &&
            std::fprintf(file, "# atpm edge list: n=%u m=%llu\n",
                         graph.num_nodes(),
                         static_cast<unsigned long long>(
                             graph.num_edges())) > 0;
  for (NodeId u = 0; ok && u < graph.num_nodes(); ++u) {
    const auto neigh = graph.OutNeighbors(u);
    const auto probs = graph.OutProbs(u);
    for (uint32_t j = 0; ok && j < neigh.size(); ++j) {
      // %.9g: max_digits10 for float — the shortest form guaranteed to
      // reparse to the identical float, so save -> load round-trips
      // probabilities bit-exactly.
      ok = !ATPM_FAILPOINT_FIRED("edge_list.write") &&
           std::fprintf(file, "%u\t%u\t%.9g\n", u, neigh[j],
                        static_cast<double>(probs[j])) > 0;
    }
  }
  ok = std::fflush(file) == 0 && ok;
  // fclose can surface the final flush's write error — an unchecked close
  // here would report a torn file as a successful save.
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    return Status::IOError("write failure on '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace atpm
