#include "graph/edge_list_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace atpm {

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListLoadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }

  GraphBuilder builder;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blanks and comments.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream ss(line);
    long long src = -1;
    long long dst = -1;
    double prob = options.default_prob;
    if (!(ss >> src >> dst)) {
      return Status::InvalidArgument("malformed edge at " + path + ":" +
                                     std::to_string(line_no) + ": '" + line +
                                     "'");
    }
    ss >> prob;  // optional third column
    if (src < 0 || dst < 0) {
      return Status::InvalidArgument("negative node id at " + path + ":" +
                                     std::to_string(line_no));
    }
    const double p = prob < 0.0 ? 0.0 : prob;
    if (p > 1.0) {
      return Status::InvalidArgument("probability > 1 at " + path + ":" +
                                     std::to_string(line_no));
    }
    if (options.directed) {
      builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst), p);
    } else {
      builder.AddUndirectedEdge(static_cast<NodeId>(src),
                                static_cast<NodeId>(dst), p);
    }
  }
  return builder.Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path +
                           "' for writing: " + std::strerror(errno));
  }
  out << "# atpm edge list: n=" << graph.num_nodes()
      << " m=" << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neigh = graph.OutNeighbors(u);
    const auto probs = graph.OutProbs(u);
    for (uint32_t j = 0; j < neigh.size(); ++j) {
      out << u << '\t' << neigh[j] << '\t' << probs[j] << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace atpm
