#ifndef ATPM_GRAPH_GRAPH_STORE_H_
#define ATPM_GRAPH_GRAPH_STORE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace atpm {

/// The graph store: a versioned binary on-disk format holding a FULLY
/// prepared Graph — forward + reverse CSR, probability arrays, the reverse
/// edge-index map, and the complete weight-class index (ProbSegments, jump
/// views, LT pick plans, alias tables) — as aligned, offset-addressed
/// sections behind a checksummed header. Loading memory-maps the file and
/// points the Graph's storage blocks straight into the mapping: zero parse,
/// zero rebuild, zero copies. Cold pages fault in on first touch, so a
/// store bigger than RAM still loads in milliseconds and an RR walk only
/// pays for the nodes it visits.
///
/// File layout (all little-endian, offsets 64-byte aligned):
///
///   [GraphStoreHeader]           magic, version, counts, checksums
///   [GraphStoreSection x N]      section table: id, elem size, offset, len
///   [section payloads...]        one aligned blob per array
///   [tile blocks...]             tiled reverse CSR (when tile_size > 0)
///
/// Tiled layout: nodes are partitioned into fixed-size tiles (power-of-two
/// node count). Each tile's reverse-CSR slices — in_adj, in_prob,
/// in_edge_index for that tile's nodes — are stored adjacently as one
/// locality group, addressed by the kTileDirectory section. An RR walk
/// entering a cold tile faults one compact group instead of three pages
/// scattered across giant arrays. tile_size = 0 stores the reverse CSR as
/// three flat sections (identical semantics, coarser fault granularity).
///
/// Integrity: header, section table, and payload carry independent 64-bit
/// FNV-1a checksums. The header + table checks always run (microseconds);
/// the payload check is on by default and can be skipped
/// (GraphStoreLoadOptions::verify_payload = false) for out-of-core loads
/// where faulting every page to hash it defeats the point.
///
/// Compatibility: the version is bumped on any layout change; loaders
/// reject unknown versions and foreign endianness outright (no migration
/// shims — repack from the edge list with atpm_graph_pack).

/// Current store format version. Readers reject any other value.
inline constexpr uint32_t kGraphStoreVersion = 1;

/// Options for SaveGraphStore.
struct GraphStoreWriteOptions {
  /// Nodes per reverse-CSR tile; must be a power of two. 0 writes the
  /// reverse CSR untiled (three flat sections). The default keeps tiles
  /// around page scale for weighted-cascade degree distributions.
  uint32_t tile_size = 4096;
};

/// Options for LoadGraphStore.
struct GraphStoreLoadOptions {
  /// Verify the payload checksum (touches every page). Header and section
  /// table are always verified.
  bool verify_payload = true;
};

/// Store metadata, readable without mapping the payload.
struct GraphStoreInfo {
  uint32_t version = 0;
  uint32_t tile_size = 0;
  uint32_t num_tiles = 0;
  uint32_t section_count = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t file_bytes = 0;
};

/// Serializes `graph` (CSR + probabilities + weight-class index) to `path`.
/// The file is written atomically enough for benchmarking purposes
/// (truncate + sequential write); callers needing crash-safe publication
/// should write to a temp name and rename.
Status SaveGraphStore(const Graph& graph, const std::string& path,
                      const GraphStoreWriteOptions& options = {});

/// Memory-maps `path` and returns a Graph whose spans point into the
/// mapping (Graph::is_mapped() == true). The mapping lives as long as any
/// copy of the returned Graph. The loaded graph is functionally
/// indistinguishable from the GraphBuilder-built one it was saved from:
/// identical CSR, probabilities, edge indices, and weight-class index, so
/// fixed-seed RR pools and policy decision sequences are bit-identical.
/// Fails with IOError on filesystem/mmap errors and InvalidArgument on
/// format, version, or checksum violations.
Result<Graph> LoadGraphStore(const std::string& path,
                             const GraphStoreLoadOptions& options = {});

/// Reads and validates only the header + section table of `path`.
Result<GraphStoreInfo> ReadGraphStoreInfo(const std::string& path);

/// Implementation backdoor used by the serializer to address Graph's
/// private storage blocks (declared a friend in graph.h).
class GraphStoreIO;

}  // namespace atpm

#endif  // ATPM_GRAPH_GRAPH_STORE_H_
