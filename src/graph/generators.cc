#include "graph/generators.h"

#include <algorithm>
#include <string>
#include <vector>

#include "graph/graph_builder.h"

namespace atpm {

Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options, Rng* rng) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("ErdosRenyi requires num_nodes >= 2");
  }
  const uint64_t max_arcs = static_cast<uint64_t>(options.num_nodes) *
                            (options.num_nodes - 1);
  if (options.num_edges > max_arcs) {
    return Status::InvalidArgument("ErdosRenyi: num_edges exceeds n*(n-1)");
  }
  GraphBuilder builder;
  builder.ReserveNodes(options.num_nodes);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng->UniformInt(options.num_nodes));
    NodeId v = static_cast<NodeId>(rng->UniformInt(options.num_nodes));
    while (v == u) v = static_cast<NodeId>(rng->UniformInt(options.num_nodes));
    if (options.undirected) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertOptions& options,
                                     Rng* rng) {
  const uint32_t m0 = options.edges_per_node;
  if (m0 == 0) {
    return Status::InvalidArgument("BarabasiAlbert: edges_per_node == 0");
  }
  if (options.num_nodes <= m0) {
    return Status::InvalidArgument(
        "BarabasiAlbert: num_nodes must exceed edges_per_node");
  }
  GraphBuilder builder;
  builder.ReserveNodes(options.num_nodes);

  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // implements degree-proportional attachment in O(1).
  std::vector<NodeId> targets;
  targets.reserve(static_cast<size_t>(options.num_nodes) * m0 * 2);

  // Seed clique over the first m0 + 1 nodes.
  for (NodeId u = 0; u <= m0; ++u) {
    for (NodeId v = u + 1; v <= m0; ++v) {
      if (options.undirected) {
        builder.AddUndirectedEdge(u, v);
      } else {
        builder.AddEdge(u, v);
      }
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::vector<NodeId> picked;
  picked.reserve(m0);
  for (NodeId t = m0 + 1; t < options.num_nodes; ++t) {
    picked.clear();
    // Sample m0 distinct existing nodes, degree-proportionally.
    while (picked.size() < m0) {
      NodeId w = targets[rng->UniformInt(targets.size())];
      if (std::find(picked.begin(), picked.end(), w) == picked.end()) {
        picked.push_back(w);
      }
    }
    for (NodeId w : picked) {
      if (options.undirected) {
        builder.AddUndirectedEdge(t, w);
      } else {
        builder.AddEdge(t, w);
      }
      targets.push_back(t);
      targets.push_back(w);
    }
  }
  return builder.Build();
}

Result<Graph> GenerateRMat(const RMatOptions& options, Rng* rng) {
  const double sum = options.a + options.b + options.c + options.d;
  if (sum < 0.999 || sum > 1.001) {
    return Status::InvalidArgument("RMat: a+b+c+d must sum to 1, got " +
                                   std::to_string(sum));
  }
  if (options.scale == 0 || options.scale > 30) {
    return Status::InvalidArgument("RMat: scale must be in [1, 30]");
  }
  const NodeId n = static_cast<NodeId>(1u << options.scale);
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    for (uint32_t level = 0; level < options.scale; ++level) {
      const double r = rng->UniformDouble();
      u <<= 1;
      v <<= 1;
      if (r < options.a) {
        // top-left quadrant: no bits set
      } else if (r < options.a + options.b) {
        v |= 1;
      } else if (r < options.a + options.b + options.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Result<Graph> GenerateWattsStrogatz(const WattsStrogatzOptions& options,
                                    Rng* rng) {
  if (options.k == 0 || options.k % 2 != 0) {
    return Status::InvalidArgument("WattsStrogatz: k must be positive even");
  }
  if (options.num_nodes <= options.k) {
    return Status::InvalidArgument("WattsStrogatz: num_nodes must exceed k");
  }
  if (options.beta < 0.0 || options.beta > 1.0) {
    return Status::InvalidArgument("WattsStrogatz: beta outside [0, 1]");
  }
  const NodeId n = options.num_nodes;
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= options.k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng->Bernoulli(options.beta)) {
        v = static_cast<NodeId>(rng->UniformInt(n));
        while (v == u) v = static_cast<NodeId>(rng->UniformInt(n));
      }
      builder.AddUndirectedEdge(u, v);
    }
  }
  return builder.Build();
}

namespace {

Graph BuildOrDie(GraphBuilder* builder) {
  Result<Graph> result = builder->Build();
  ATPM_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace

Graph MakePathGraph(NodeId n, double prob) {
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1, prob);
  return BuildOrDie(&builder);
}

Graph MakeStarGraph(NodeId n, double prob) {
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v, prob);
  return BuildOrDie(&builder);
}

Graph MakeCycleGraph(NodeId n, double prob) {
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.AddEdge(u, static_cast<NodeId>((u + 1) % n), prob);
  }
  return BuildOrDie(&builder);
}

Graph MakeCompleteGraph(NodeId n, double prob) {
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v, prob);
    }
  }
  return BuildOrDie(&builder);
}

Graph MakePaperFigure1Graph() {
  // Fig. 1(a) of the paper: 7 nodes v1..v7 (ids 0..6). This edge
  // assignment reproduces the example's numbers exactly: with T =
  // {v1, v2, v6} and c(u) = 1.5, E[I_{G1}(T)] = 6.16 (the paper's optimal
  // nonadaptive profit 6.16 - 4.5 = 1.66), and in the realization of
  // Fig. 1(b)-(d) the adaptive strategy selects {v2, v6} for profit 3.
  GraphBuilder builder;
  builder.ReserveNodes(7);
  builder.AddEdge(1, 0, 0.4);  // v2 -> v1
  builder.AddEdge(1, 2, 0.8);  // v2 -> v3
  builder.AddEdge(1, 3, 0.6);  // v2 -> v4
  builder.AddEdge(2, 3, 0.7);  // v3 -> v4
  builder.AddEdge(3, 4, 0.5);  // v4 -> v5
  builder.AddEdge(5, 4, 0.6);  // v6 -> v5
  builder.AddEdge(5, 6, 0.7);  // v6 -> v7
  builder.AddEdge(4, 6, 0.3);  // v5 -> v7
  builder.AddEdge(0, 5, 0.2);  // v1 -> v6
  return BuildOrDie(&builder);
}

}  // namespace atpm
