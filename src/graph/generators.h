#ifndef ATPM_GRAPH_GENERATORS_H_
#define ATPM_GRAPH_GENERATORS_H_

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace atpm {

/// Synthetic graph generators. These are the offline stand-ins for the SNAP
/// datasets used in the paper (see DESIGN.md §4): R-MAT for the directed
/// social networks (Epinions, LiveJournal) and preferential attachment for
/// the collaboration networks (NetHEPT, DBLP). All generators emit
/// *unweighted* graphs (probability 0 on every arc); apply a scheme from
/// weighting.h afterwards.

/// Options for GenerateErdosRenyi.
struct ErdosRenyiOptions {
  NodeId num_nodes = 0;
  /// Number of directed arcs to sample (G(n, m) model).
  uint64_t num_edges = 0;
  /// Emit each sampled pair in both directions.
  bool undirected = false;
};

/// Uniform random digraph G(n, m): `num_edges` arcs sampled uniformly
/// without self loops (duplicates are collapsed, so the realized arc count
/// can be slightly below the request on dense settings).
Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options, Rng* rng);

/// Options for GenerateBarabasiAlbert.
struct BarabasiAlbertOptions {
  NodeId num_nodes = 0;
  /// Edges attached from each arriving node to existing nodes.
  uint32_t edges_per_node = 2;
  /// Emit every attachment in both directions (collaboration networks are
  /// undirected; the IC model bidirects them).
  bool undirected = true;
};

/// Barabási–Albert preferential attachment: arriving node t attaches
/// `edges_per_node` edges to existing nodes chosen proportionally to their
/// current degree. Produces the heavy-tailed degree distribution of
/// collaboration networks (NetHEPT / DBLP stand-ins).
Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertOptions& options,
                                     Rng* rng);

/// Options for GenerateRMat.
struct RMatOptions {
  /// log2 of the node-id space; the graph has 2^scale node slots.
  uint32_t scale = 10;
  /// Number of directed arcs to sample.
  uint64_t num_edges = 0;
  /// Kronecker quadrant probabilities; must sum to 1. The defaults are the
  /// standard "social network" parameterization.
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
};

/// R-MAT / Kronecker sampler: recursively descends the adjacency matrix,
/// yielding a skewed in/out degree distribution matching directed social
/// networks (Epinions / LiveJournal stand-ins). Duplicate arcs and self
/// loops are collapsed.
Result<Graph> GenerateRMat(const RMatOptions& options, Rng* rng);

/// Options for GenerateWattsStrogatz.
struct WattsStrogatzOptions {
  NodeId num_nodes = 0;
  /// Each node connects to `k` nearest ring neighbors (must be even).
  uint32_t k = 4;
  /// Probability of rewiring each ring edge to a uniform random target.
  double beta = 0.1;
};

/// Watts–Strogatz small world ring (undirected, emitted bidirected). Used in
/// tests and ablations as a low-variance-degree contrast to the heavy-tail
/// generators.
Result<Graph> GenerateWattsStrogatz(const WattsStrogatzOptions& options,
                                    Rng* rng);

/// Deterministic families used heavily by unit/property tests. All arcs are
/// created with probability `prob`.
Graph MakePathGraph(NodeId n, double prob);        // 0 -> 1 -> ... -> n-1
Graph MakeStarGraph(NodeId n, double prob);        // 0 -> {1..n-1}
Graph MakeCycleGraph(NodeId n, double prob);       // ring
Graph MakeCompleteGraph(NodeId n, double prob);    // all ordered pairs
/// The 7-node example of Fig. 1 in the paper, with its exact probabilities.
Graph MakePaperFigure1Graph();

}  // namespace atpm

#endif  // ATPM_GRAPH_GENERATORS_H_
