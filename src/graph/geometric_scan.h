#ifndef ATPM_GRAPH_GEOMETRIC_SCAN_H_
#define ATPM_GRAPH_GEOMETRIC_SCAN_H_

#include <cmath>
#include <cstdint>
#include <span>

#include "common/rng.h"
#include "graph/graph.h"

namespace atpm {

/// Samples independent Bernoulli(prob) trials over a node's jump-ordered
/// segment view: visit(i) is called for every successful global index i
/// (the position in the concatenation of all segments), in order.
///
/// Maximal runs of jump-enabled segments (log1p_neg != 0) are sampled with
/// a cross-segment geometric walk: each uniform draw U is turned into the
/// position of the run's next success by walking the per-segment
/// log-survival ledger until the cumulative mass crosses log1p(-U) — one
/// draw and one log1p per success for the WHOLE run, and the common
/// no-success case resolved by the same single draw (the ledger never
/// crosses the threshold, so no edge is touched). This is exact
/// inverse-CDF sampling of the next-success index across heterogeneous
/// probabilities, which is what lets a trivalency node's three probability
/// classes share one draw instead of paying one geometric terminal each.
///
/// Degenerate segments are drawless (p <= 0 never fires, p >= 1 fires
/// every index — exactly matching a per-trial Bernoulli loop, which is
/// what makes the jump kernels *exactly* equivalent to per-edge sampling
/// on {0, 1} edges), and gate-rejected segments (log1p_neg == 0, where the
/// log would cost more than it saves) fall back to one Bernoulli per edge.
///
/// `*draws` accumulates the uniform draws consumed (the SamplingStats
/// rng_draws measure). Returns false iff a visit callback aborted the
/// scan.
template <typename Visit>
bool GeometricSegmentScan(std::span<const ProbSegment> segments, Rng* rng,
                          uint64_t* draws, Visit&& visit) {
  const size_t num_segments = segments.size();
  uint32_t base = 0;  // global index where segments[s] starts
  size_t s = 0;
  while (s < num_segments) {
    const ProbSegment& seg = segments[s];
    if (seg.log1p_neg == 0.0) {
      if (seg.prob >= 1.0f) {  // everything fires, no draws
        for (uint32_t j = 0; j < seg.length; ++j) {
          if (!visit(base + j)) return false;
        }
      } else if (seg.prob > 0.0f) {  // gated: linear Bernoulli scan
        for (uint32_t j = 0; j < seg.length; ++j) {
          ++*draws;
          if (rng->Bernoulli(seg.prob) && !visit(base + j)) return false;
        }
      }  // p <= 0: nothing ever fires, no draws
      base += seg.length;
      ++s;
      continue;
    }

    // Maximal run of jump segments [s, e).
    size_t e = s;
    uint32_t run_length = 0;
    while (e < num_segments && segments[e].log1p_neg != 0.0) {
      run_length += segments[e].length;
      ++e;
    }
    // Walk state: current segment cs, local index cj, global start of cs.
    size_t cs = s;
    uint32_t cj = 0;
    uint32_t seg_base = base;
    for (;;) {
      if (cs >= e) break;  // a success consumed the run's last edge
      ++*draws;
      const double u = rng->UniformDouble();
      // At a segment boundary the remaining suffix is exactly what the
      // precomputed run_any_prob covers: U >= P(any success) resolves the
      // common nothing-fires case with one compare and no log, coupled to
      // the same U the ledger walk below would consume.
      if (cj == 0 && segments[cs].run_any_prob > 0.0 &&
          u >= segments[cs].run_any_prob) {
        break;
      }
      // First success of the remaining run is where the cumulative
      // log-survival ledger crosses log1p(-U); U = 1 - survival quantile.
      const double target = std::log1p(-u);  // <= 0
      double cum = 0.0;
      bool found = false;
      while (cs < e) {
        const ProbSegment& cur = segments[cs];
        const uint32_t remaining = cur.length - cj;
        const double seg_mass =
            static_cast<double>(remaining) * cur.log1p_neg;  // <= 0
        if (cum + seg_mass <= target) {
          uint32_t k =
              static_cast<uint32_t>((target - cum) / cur.log1p_neg);
          if (k >= remaining) k = remaining - 1;  // FP boundary clamp
          if (!visit(seg_base + cj + k)) return false;
          cj += k + 1;
          if (cj >= cur.length) {
            seg_base += cur.length;
            ++cs;
            cj = 0;
          }
          found = true;
          break;
        }
        cum += seg_mass;
        seg_base += cur.length;
        ++cs;
        cj = 0;
      }
      if (!found) break;  // no further success in the run
    }
    base += run_length;
    s = e;
  }
  return true;
}

}  // namespace atpm

#endif  // ATPM_GRAPH_GEOMETRIC_SCAN_H_
