#ifndef ATPM_GRAPH_GRAPH_H_
#define ATPM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace atpm {

/// Node identifier. Graphs are addressed by dense ids in [0, num_nodes).
using NodeId = uint32_t;

/// A directed edge with an activation probability, as consumed by
/// GraphBuilder and produced by the generators and loaders.
struct WeightedEdge {
  NodeId src = 0;
  NodeId dst = 0;
  float prob = 0.0f;
};

/// Immutable probabilistic digraph in CSR form, with both forward (out) and
/// reverse (in) adjacency. The reverse view exists because reverse influence
/// sampling traverses incoming edges; keeping both directions materialized
/// avoids a transpose in every RR-set batch.
///
/// Each arc <u, v> carries an independent-cascade activation probability
/// p(u, v) in [0, 1]. Probabilities are stored as float (the paper's
/// weighted-cascade setting has at most `n` distinct values); all spread and
/// profit arithmetic is done in double.
///
/// Construction goes through GraphBuilder; a default-constructed Graph is an
/// empty graph.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes `n`.
  NodeId num_nodes() const { return n_; }
  /// Number of directed arcs `m`.
  uint64_t num_edges() const { return static_cast<uint64_t>(out_adj_.size()); }

  /// Out-degree of `u`.
  uint32_t OutDegree(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  /// In-degree of `v`.
  uint32_t InDegree(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Outgoing neighbor ids of `u` (targets of arcs u -> *).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return {out_adj_.data() + out_offsets_[u], OutDegree(u)};
  }
  /// Probabilities aligned with OutNeighbors(u).
  std::span<const float> OutProbs(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return {out_prob_.data() + out_offsets_[u], OutDegree(u)};
  }
  /// Incoming neighbor ids of `v` (sources of arcs * -> v).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {in_adj_.data() + in_offsets_[v], InDegree(v)};
  }
  /// Probabilities aligned with InNeighbors(v); prob of arc (neighbor -> v).
  std::span<const float> InProbs(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {in_prob_.data() + in_offsets_[v], InDegree(v)};
  }

  /// Global edge index of the j-th outgoing arc of `u`. Edge indices are
  /// stable identifiers in [0, num_edges) used by Realization live-edge
  /// bitmaps.
  uint64_t OutEdgeIndex(NodeId u, uint32_t j) const {
    ATPM_DCHECK(u < n_);
    ATPM_DCHECK(j < OutDegree(u));
    return out_offsets_[u] + j;
  }

  /// Global (forward) edge index of the j-th *incoming* arc of `v` — the
  /// same identifier OutEdgeIndex assigns to that arc. Lets reverse
  /// traversals and the linear-threshold sampler address live-edge bitmaps.
  uint64_t InEdgeIndex(NodeId v, uint32_t j) const {
    ATPM_DCHECK(v < n_);
    ATPM_DCHECK(j < InDegree(v));
    return in_edge_index_[in_offsets_[v] + j];
  }

  /// Enumerates all arcs as WeightedEdge records (for IO and tests).
  std::vector<WeightedEdge> CollectEdges() const;

  /// Average out-degree m / n (0 for the empty graph).
  double AverageDegree() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(num_edges()) / static_cast<double>(n_);
  }

  /// Replaces every arc probability using `prob_fn(src, dst)`. Both the
  /// forward and reverse views are updated consistently. Used by the
  /// weighting module; see weighting.h for the standard schemes.
  template <typename ProbFn>
  void AssignProbabilities(ProbFn prob_fn) {
    for (NodeId u = 0; u < n_; ++u) {
      const auto neigh = OutNeighbors(u);
      for (uint32_t j = 0; j < neigh.size(); ++j) {
        out_prob_[out_offsets_[u] + j] =
            static_cast<float>(prob_fn(u, neigh[j]));
      }
    }
    for (NodeId v = 0; v < n_; ++v) {
      const auto neigh = InNeighbors(v);
      for (uint32_t j = 0; j < neigh.size(); ++j) {
        in_prob_[in_offsets_[v] + j] =
            static_cast<float>(prob_fn(neigh[j], v));
      }
    }
  }

 private:
  friend class GraphBuilder;

  NodeId n_ = 0;
  // Forward CSR.
  std::vector<uint64_t> out_offsets_{0};
  std::vector<NodeId> out_adj_;
  std::vector<float> out_prob_;
  // Reverse CSR.
  std::vector<uint64_t> in_offsets_{0};
  std::vector<NodeId> in_adj_;
  std::vector<float> in_prob_;
  // Forward edge index of each reverse slot (for InEdgeIndex).
  std::vector<uint64_t> in_edge_index_;
};

}  // namespace atpm

#endif  // ATPM_GRAPH_GRAPH_H_
