#ifndef ATPM_GRAPH_GRAPH_H_
#define ATPM_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/logging.h"
#include "graph/array_block.h"

namespace atpm {

/// Node identifier. Graphs are addressed by dense ids in [0, num_nodes).
using NodeId = uint32_t;

/// A directed edge with an activation probability, as consumed by
/// GraphBuilder and produced by the generators and loaders.
struct WeightedEdge {
  NodeId src = 0;
  NodeId dst = 0;
  float prob = 0.0f;
};

/// Which low-level edge-sampling kernel the stochastic substrates (RR-set
/// generation, possible-world sampling) should use.
enum class SamplingKernel : uint8_t {
  /// Weight-class-aware fast kernel: one geometric draw skips directly to
  /// the next successful in-edge on uniform / few-distinct probability
  /// vectors (weighted cascade, constant-p, trivalency), and the LT reverse
  /// step is an O(1) pick (closed form for uniform weights, alias table
  /// otherwise). Statistically equivalent to kPerEdge — identical success
  /// distributions per edge — but consumes a *different RNG stream*, so
  /// fixed-seed runs differ sample-by-sample while agreeing in expectation.
  /// General weight vectors fall back to the per-edge loop (over an
  /// interleaved (neighbor, prob) layout for cache locality).
  kGeometricJump,
  /// The historical kernel: one Bernoulli draw per alive unvisited in-edge
  /// (IC) and a linear prefix scan (LT). Bit-compatible with pre-kernel
  /// releases for a fixed seed; keep for reproducing recorded runs.
  kPerEdge,
};

/// Human-readable kernel name ("geometric-jump" / "per-edge").
const char* SamplingKernelName(SamplingKernel kernel);

/// Classification of one node's edge probability vector, computed at
/// graph build / weighting time (RebuildWeightIndex) for both CSR
/// directions. The classes are what make geometric-jump sampling possible:
/// within a run of equal-probability edges, the index of the next
/// successful edge is geometric, so one draw replaces one Bernoulli per
/// edge.
enum class NodeWeightClass : uint8_t {
  /// Degree 0 — nothing to sample.
  kEmpty,
  /// Every edge has the same probability (weighted cascade in-vectors:
  /// p = 1/indeg; constant-p). One segment over the CSR in its original
  /// order.
  kUniform,
  /// At most kMaxDistinctInProbs distinct probabilities (trivalency's
  /// {0.1, 0.01, 0.001}). The jump view groups the edges by probability
  /// into contiguous same-p segments.
  kFewDistinct,
  /// Anything else — the per-edge Bernoulli loop is used (over the
  /// interleaved jump view for cache locality).
  kGeneral,
  /// Irregular vector (all-distinct or more than kMaxDistinctInProbs
  /// values) whose probabilities are nonetheless low enough that splitting
  /// it into per-edge length-1 segments — in the ORIGINAL CSR order, so no
  /// arc/slot reorder view is materialized — lets the cross-segment
  /// geometric walk share one draw per success across whole runs. This is
  /// what accelerates weighted-cascade OUT-vectors, where p(u, v) =
  /// 1/indeg(v) differs per target; only the out-direction index emits
  /// this class today (the in-direction census is kept bit-stable).
  kSegmentedRuns,
};

/// Distinct-value cap for NodeWeightClass::kFewDistinct.
inline constexpr uint32_t kMaxDistinctInProbs = 8;

/// One maximal group of same-probability in-edges in the jump-ordered view
/// of a node's reverse adjacency.
struct ProbSegment {
  /// Number of edges in the segment.
  uint32_t length = 0;
  /// Shared activation probability of the segment's edges.
  float prob = 0.0f;
  /// Precomputed log1p(-prob) for geometric jumps (negative). 0 when the
  /// segment should be scanned per-edge instead: the degenerate probs
  /// {0, 1} (handled without drawing) and segments where the jump gate
  /// judged the log() not worth it (see JumpFactor in graph.cc).
  double log1p_neg = 0.0;
  /// Probability that at least one edge fires in the maximal run of jump
  /// segments starting here (1 - Π (1-p)^len over the run suffix). Lets
  /// the scan resolve the common nothing-fires case with one compare and
  /// no log at all; 0 for non-jump segments (the scan then skips the
  /// pre-test and pays the log).
  double run_any_prob = 0.0;
};

/// Interleaved (neighbor, probability) reverse-CSR slot — one cache stream
/// instead of two for kernels that touch both fields per edge.
struct InArc {
  NodeId src = 0;
  float prob = 0.0f;
};

/// Forward-CSR counterpart of InArc for the forward jump kernels.
struct OutArc {
  NodeId dst = 0;
  float prob = 0.0f;
};

/// How the LT reverse step should pick a node's (at most one) in-neighbor.
enum class LtPickPlan : uint8_t {
  /// In-degree 0: no pick, no draw.
  kNone,
  /// Uniform in-probs with indeg * p <= 1 (+eps): closed-form O(1) pick
  /// j = floor(r / p) from one uniform draw.
  kUniform,
  /// Non-uniform probs summing to <= 1 (+eps) on a long enough in-list:
  /// Walker/Vose alias table over indeg + 1 outcomes (the extra outcome is
  /// "no pick"), one draw.
  kAlias,
  /// The linear prefix scan — either because the probability mass exceeds
  /// 1 (the scan's prefix truncation is then semantically significant), or
  /// because the in-list is too short for an alias table to beat a few
  /// in-cache float compares.
  kPrefix,
};

/// One alias-table slot (Vose). A pick draws x in [0, outcomes), splits it
/// into slot i = floor(x) and fraction f = x - i, and resolves to i if
/// f < threshold, else to alias.
struct LtAliasSlot {
  double threshold = 0.0;
  uint32_t alias = 0;
};

/// Aggregate weight-class census of one CSR direction — what fraction of
/// the edge mass the geometric-jump kernel can actually accelerate.
/// Exposed to the diffusion oracles and the bench layer via
/// Graph::InWeightClassProfile() / Graph::OutWeightClassProfile().
struct WeightClassProfile {
  NodeId empty_nodes = 0;
  NodeId uniform_nodes = 0;
  NodeId few_distinct_nodes = 0;
  NodeId general_nodes = 0;
  /// Nodes whose irregular vector is split into per-edge segments
  /// (NodeWeightClass::kSegmentedRuns). Only the out-direction census can
  /// be nonzero today.
  NodeId segmented_nodes = 0;
  /// Edges the jump kernel samples without per-edge draws: jump-enabled
  /// segments plus the drawless degenerate (p in {0, 1}) ones. Edges of
  /// gate-rejected segments (short / high-probability runs that keep the
  /// linear Bernoulli scan even on uniform / few-distinct nodes) and of
  /// kGeneral nodes are excluded.
  uint64_t jumpable_edges = 0;
  uint64_t total_edges = 0;
  /// Nodes whose LT reverse pick is O(1) (kUniform or kAlias plan).
  NodeId lt_fast_nodes = 0;

  double JumpableEdgeFraction() const {
    return total_edges == 0
               ? 1.0
               : static_cast<double>(jumpable_edges) /
                     static_cast<double>(total_edges);
  }
};

/// Immutable probabilistic digraph in CSR form, with both forward (out) and
/// reverse (in) adjacency. The reverse view exists because reverse influence
/// sampling traverses incoming edges; keeping both directions materialized
/// avoids a transpose in every RR-set batch.
///
/// Each arc <u, v> carries an independent-cascade activation probability
/// p(u, v) in [0, 1]. Probabilities are stored as float (the paper's
/// weighted-cascade setting has at most `n` distinct values); all spread and
/// profit arithmetic is done in double.
///
/// Construction goes through GraphBuilder; a default-constructed Graph is an
/// empty graph.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes `n`.
  NodeId num_nodes() const { return n_; }
  /// Number of directed arcs `m`.
  uint64_t num_edges() const { return static_cast<uint64_t>(out_adj_.size()); }

  /// Out-degree of `u`.
  uint32_t OutDegree(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  /// In-degree of `v`.
  uint32_t InDegree(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Outgoing neighbor ids of `u` (targets of arcs u -> *).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return {out_adj_.data() + out_offsets_[u], OutDegree(u)};
  }
  /// Probabilities aligned with OutNeighbors(u).
  std::span<const float> OutProbs(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return {out_prob_.data() + out_offsets_[u], OutDegree(u)};
  }
  /// Incoming neighbor ids of `v` (sources of arcs * -> v).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {InAdjPtr(v), InDegree(v)};
  }
  /// Probabilities aligned with InNeighbors(v); prob of arc (neighbor -> v).
  std::span<const float> InProbs(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {InProbPtr(v), InDegree(v)};
  }

  /// Global edge index of the j-th outgoing arc of `u`. Edge indices are
  /// stable identifiers in [0, num_edges) used by Realization live-edge
  /// bitmaps.
  uint64_t OutEdgeIndex(NodeId u, uint32_t j) const {
    ATPM_DCHECK(u < n_);
    ATPM_DCHECK(j < OutDegree(u));
    return out_offsets_[u] + j;
  }

  /// Global (forward) edge index of the j-th *incoming* arc of `v` — the
  /// same identifier OutEdgeIndex assigns to that arc. Lets reverse
  /// traversals and the linear-threshold sampler address live-edge bitmaps.
  uint64_t InEdgeIndex(NodeId v, uint32_t j) const {
    ATPM_DCHECK(v < n_);
    ATPM_DCHECK(j < InDegree(v));
    return InEdgeIndexPtr(v)[j];
  }

  /// Enumerates all arcs as WeightedEdge records (for IO and tests).
  std::vector<WeightedEdge> CollectEdges() const;

  /// Average out-degree m / n (0 for the empty graph).
  double AverageDegree() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(num_edges()) / static_cast<double>(n_);
  }

  /// Replaces every arc probability using `prob_fn(src, dst)`. Both the
  /// forward and reverse views are updated consistently, and the weight-
  /// class index is rebuilt so the jump kernels always see fresh
  /// classifications. Used by the weighting module; see weighting.h for the
  /// standard schemes. On a memory-mapped graph this first detaches every
  /// array into owned storage (copy-on-write) — the store file is never
  /// written through.
  template <typename ProbFn>
  void AssignProbabilities(ProbFn prob_fn) {
    EnsureOwnedStorage();
    float* out_prob = out_prob_.MutableVec().data();
    for (NodeId u = 0; u < n_; ++u) {
      const auto neigh = OutNeighbors(u);
      for (uint32_t j = 0; j < neigh.size(); ++j) {
        out_prob[out_offsets_[u] + j] = static_cast<float>(prob_fn(u, neigh[j]));
      }
    }
    float* in_prob = in_prob_.MutableVec().data();
    for (NodeId v = 0; v < n_; ++v) {
      const auto neigh = InNeighbors(v);
      for (uint32_t j = 0; j < neigh.size(); ++j) {
        in_prob[in_offsets_[v] + j] = static_cast<float>(prob_fn(neigh[j], v));
      }
    }
    RebuildWeightIndex();
  }

  // ---- Weight-class index over the reverse CSR (the geometric-jump
  // substrate). Built by GraphBuilder::Build and AssignProbabilities; all
  // accessors are valid on any constructed graph.

  /// Classification of v's in-edge probability vector.
  NodeWeightClass InWeightClass(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return in_class_[v];
  }

  /// Same-probability segments of v's jump-ordered in-edge view. One
  /// segment for kUniform (the original CSR order), up to
  /// kMaxDistinctInProbs for kFewDistinct (grouped by descending
  /// probability), empty for kEmpty / kGeneral.
  std::span<const ProbSegment> InProbSegments(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {in_segments_.data() + seg_offsets_[v],
            static_cast<size_t>(seg_offsets_[v + 1] - seg_offsets_[v])};
  }

  /// Interleaved (neighbor, prob) in-edge view of v, grouped into
  /// contiguous same-probability runs — one cache stream for the segment
  /// jumps. Non-empty exactly for kFewDistinct nodes: kUniform kernels
  /// read InNeighbors directly (no reorder needed, per-edge probabilities
  /// redundant), and kEmpty / kGeneral nodes materialize nothing (the
  /// general per-edge fallback walks the original CSR).
  std::span<const InArc> JumpInArcs(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {jump_in_arcs_.data() + jump_offsets_[v],
            static_cast<size_t>(jump_offsets_[v + 1] - jump_offsets_[v])};
  }

  /// Original reverse-CSR slot of each JumpInArcs entry (same extent):
  /// JumpInArcs(v)[i] is the in-edge at InNeighbors(v)[JumpInSlots(v)[i]].
  /// Lets jump-ordered traversals address per-edge state keyed on the
  /// original layout, e.g. live-edge bitmaps via InEdgeIndex.
  std::span<const uint32_t> JumpInSlots(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {jump_in_slots_.data() + jump_offsets_[v],
            static_cast<size_t>(jump_offsets_[v + 1] - jump_offsets_[v])};
  }

  /// The O(1)-pick plan for v's LT reverse step.
  LtPickPlan LtInPlan(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return static_cast<LtPickPlan>(lt_plan_[v]);
  }

  /// Alias slots of v (indeg + 1 outcomes; the last one means "no pick").
  /// Non-empty exactly for LtPickPlan::kAlias nodes.
  std::span<const LtAliasSlot> LtAliasSlots(NodeId v) const {
    ATPM_DCHECK(v < n_);
    return {lt_alias_.data() + lt_alias_offsets_[v],
            static_cast<size_t>(lt_alias_offsets_[v + 1] -
                                lt_alias_offsets_[v])};
  }

  /// Census of the weight classes (O(n) scan; cheap relative to any
  /// sampling workload — callers that log it per decision should cache).
  WeightClassProfile InWeightClassProfile() const;

  // ---- Weight-class index over the forward CSR — the same substrate for
  // the forward direction (SimulateIC, Realization::Sample). Built by the
  // same hooks, so it can never go stale relative to the in-direction one.

  /// Classification of u's out-edge probability vector.
  NodeWeightClass OutWeightClass(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return out_class_[u];
  }

  /// Same-probability segments of u's jump-ordered out-edge view. One
  /// segment for kUniform and one *per edge* for kSegmentedRuns (both in
  /// the original CSR order), up to kMaxDistinctInProbs for kFewDistinct
  /// (grouped by descending probability), empty for kEmpty / kGeneral.
  std::span<const ProbSegment> OutProbSegments(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return {out_segments_.data() + out_seg_offsets_[u],
            static_cast<size_t>(out_seg_offsets_[u + 1] -
                                out_seg_offsets_[u])};
  }

  /// Interleaved (neighbor, prob) out-edge view of u grouped into same-p
  /// runs; non-empty exactly for kFewDistinct nodes (kUniform and
  /// kSegmentedRuns scan the original CSR directly).
  std::span<const OutArc> JumpOutArcs(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return {jump_out_arcs_.data() + out_jump_offsets_[u],
            static_cast<size_t>(out_jump_offsets_[u + 1] -
                                out_jump_offsets_[u])};
  }

  /// Original forward-CSR slot of each JumpOutArcs entry (same extent):
  /// JumpOutArcs(u)[i] is the out-edge at OutNeighbors(u)[JumpOutSlots(u)[i]].
  std::span<const uint32_t> JumpOutSlots(NodeId u) const {
    ATPM_DCHECK(u < n_);
    return {jump_out_slots_.data() + out_jump_offsets_[u],
            static_cast<size_t>(out_jump_offsets_[u + 1] -
                                out_jump_offsets_[u])};
  }

  /// Census of the out-direction weight classes. lt_fast_nodes is always 0
  /// here: the forward LT step draws per-node thresholds, not per-edge
  /// picks, so there is no out-direction LT plan.
  WeightClassProfile OutWeightClassProfile() const;

  /// Cached jumpable-edge totals of each direction (the profiles'
  /// jumpable_edges, maintained by the rebuilds) — lets hot paths such as
  /// Realization::Sample choose the better scan direction without an O(n)
  /// census per call.
  uint64_t InJumpableEdges() const { return in_jumpable_edges_; }
  uint64_t OutJumpableEdges() const { return out_jumpable_edges_; }

  /// Recomputes the weight-class index from the current in-edge
  /// probabilities. Public for callers that mutate probabilities outside
  /// AssignProbabilities; idempotent.
  void RebuildInWeightIndex();

  /// Out-direction counterpart of RebuildInWeightIndex.
  void RebuildOutWeightIndex();

  /// Rebuilds both directions — the hook GraphBuilder::Build and
  /// AssignProbabilities call.
  void RebuildWeightIndex() {
    RebuildInWeightIndex();
    RebuildOutWeightIndex();
  }

  // ---- Mapped storage (the graph-store mmap load path, graph_store.h).
  // A mapped graph's blocks are read-only views into one mapping; the
  // reverse CSR may additionally be tile-grouped: nodes are partitioned
  // into fixed-size tiles whose in_adj / in_prob / in_edge_index slices
  // are stored adjacently, so an RR walk entering a tile faults one
  // locality group instead of three distant pages.

  /// True when this graph's arrays are views into a graph-store mapping.
  bool is_mapped() const { return backing_ != nullptr; }

  /// Nodes per reverse-CSR tile when mapped with a tiled layout; 0 when
  /// the reverse CSR is a single contiguous span (built graphs, untiled
  /// stores).
  uint32_t reverse_tile_size() const {
    return tiled_reverse_ ? (1u << tile_shift_) : 0;
  }

  /// Detaches every array from the mapping into owned storage and drops
  /// the mapping handle (no-op on an owned graph). The copy-on-write hook
  /// behind AssignProbabilities; public for callers that need a mapped
  /// graph to outlive its store file.
  void EnsureOwnedStorage();

 private:
  friend class GraphBuilder;
  friend class GraphStoreIO;

  // Per-node base pointers of the reverse CSR. One predictable branch on
  // the storage mode; the tiled path adds one tile-table load.
  const NodeId* InAdjPtr(NodeId v) const {
    if (!tiled_reverse_) return in_adj_.data() + in_offsets_[v];
    const NodeId t = v >> tile_shift_;
    return tile_in_adj_[t] + (in_offsets_[v] - tile_edge_start_[t]);
  }
  const float* InProbPtr(NodeId v) const {
    if (!tiled_reverse_) return in_prob_.data() + in_offsets_[v];
    const NodeId t = v >> tile_shift_;
    return tile_in_prob_[t] + (in_offsets_[v] - tile_edge_start_[t]);
  }
  const uint64_t* InEdgeIndexPtr(NodeId v) const {
    if (!tiled_reverse_) return in_edge_index_.data() + in_offsets_[v];
    const NodeId t = v >> tile_shift_;
    return tile_in_eidx_[t] + (in_offsets_[v] - tile_edge_start_[t]);
  }

  NodeId n_ = 0;
  // Forward CSR.
  ArrayBlock<uint64_t> out_offsets_{0};
  ArrayBlock<NodeId> out_adj_;
  ArrayBlock<float> out_prob_;
  // Reverse CSR. In tiled mapped mode the three payload blocks are empty
  // and per-node access resolves through the tile tables below;
  // in_offsets_ stays global in every mode (it is the degree index).
  ArrayBlock<uint64_t> in_offsets_{0};
  ArrayBlock<NodeId> in_adj_;
  ArrayBlock<float> in_prob_;
  // Forward edge index of each reverse slot (for InEdgeIndex).
  ArrayBlock<uint64_t> in_edge_index_;

  // Weight-class index (see RebuildInWeightIndex). seg/jump/alias arrays
  // are CSR-addressed per node; nodes that need no entry have zero-length
  // ranges, so the arrays stay proportional to what the kernels use.
  ArrayBlock<NodeWeightClass> in_class_;
  ArrayBlock<uint64_t> seg_offsets_{0};
  ArrayBlock<ProbSegment> in_segments_;
  ArrayBlock<uint64_t> jump_offsets_{0};
  ArrayBlock<InArc> jump_in_arcs_;
  ArrayBlock<uint32_t> jump_in_slots_;
  ArrayBlock<uint8_t> lt_plan_;
  ArrayBlock<uint64_t> lt_alias_offsets_{0};
  ArrayBlock<LtAliasSlot> lt_alias_;

  // Out-direction weight-class index (see RebuildOutWeightIndex). Same
  // CSR-addressed layout as the in-direction arrays above.
  ArrayBlock<NodeWeightClass> out_class_;
  ArrayBlock<uint64_t> out_seg_offsets_{0};
  ArrayBlock<ProbSegment> out_segments_;
  ArrayBlock<uint64_t> out_jump_offsets_{0};
  ArrayBlock<OutArc> jump_out_arcs_;
  ArrayBlock<uint32_t> jump_out_slots_;
  uint64_t in_jumpable_edges_ = 0;
  uint64_t out_jumpable_edges_ = 0;

  // Tiled mapped reverse CSR: per-tile base pointers into the mapping and
  // each tile's first global in-edge offset (tile_edge_start_[t] =
  // in_offsets_[t << tile_shift_]). Empty unless tiled_reverse_.
  bool tiled_reverse_ = false;
  uint32_t tile_shift_ = 0;
  std::vector<const NodeId*> tile_in_adj_;
  std::vector<const float*> tile_in_prob_;
  std::vector<const uint64_t*> tile_in_eidx_;
  std::vector<uint64_t> tile_edge_start_;

  // Keeps the graph-store mapping alive for as long as any block views it
  // (type-erased to keep graph.h free of mmap details).
  std::shared_ptr<const void> backing_;
};

}  // namespace atpm

#endif  // ATPM_GRAPH_GRAPH_H_
