#ifndef ATPM_IM_IMM_H_
#define ATPM_IM_IMM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "rris/sampling_engine.h"

namespace atpm {

/// Options for RunImm.
struct ImmOptions {
  /// Approximation slack: the returned set has spread >= (1-1/e-epsilon)OPT
  /// with probability >= 1 - n^-ell.
  double epsilon = 0.5;
  /// Failure-probability exponent (success prob 1 - n^-ell).
  double ell = 1.0;
  /// RNG seed (IMM is randomized but reproducible given the seed).
  uint64_t seed = 1;
  /// Hard cap on generated RR sets; exceeding it fails with OutOfBudget.
  uint64_t max_rr_sets = 1ull << 26;
  /// RR sampling backend for the pool (kAuto: parallel iff num_threads > 1).
  SamplingBackend engine = SamplingBackend::kAuto;
  /// Worker threads for the parallel backend (0 = hardware concurrency).
  uint32_t num_threads = 1;
  /// RR-generation kernel (geometric jumps by default; kPerEdge for
  /// bit-compat reruns of recorded seeds).
  SamplingKernel kernel = SamplingKernel::kGeometricJump;
};

/// Output of RunImm.
struct ImmResult {
  /// Selected seed set, |seeds| <= k, in greedy order (most influential
  /// first) — the paper's experiments use this order for the target set T.
  std::vector<NodeId> seeds;
  /// RIS estimate of E[I(seeds)] from the final pool.
  double estimated_spread = 0.0;
  /// Number of RR sets generated in total (both phases).
  uint64_t num_rr_sets = 0;
  /// Total edges examined while generating the pool (EPT accounting),
  /// aggregated across sampler shards.
  uint64_t total_edges_examined = 0;
};

/// IMM (Tang, Shi, Xiao — SIGMOD'15): near-linear-time influence
/// maximization via martingale-based RIS sampling. Two phases:
///
///   1. *Sampling*: geometrically guess OPT from above; for each guess x,
///      generate θ_i = λ'/x RR sets and test whether the greedy solution
///      certifies spread >= (1+ε')x; the first success yields a lower bound
///      LB on OPT.
///   2. *Selection*: enlarge the pool to θ = λ*/LB sets and return the
///      greedy max-coverage seeds.
///
/// This is the "state of the art [28]" the paper uses to build the target
/// set T (top-k influential users) in its first experimental setting.
///
/// The engine overload samples through `engine` (must be bound to `graph`;
/// its pool is reset and then holds the final IMM pool); the default form
/// builds the backend selected by options.engine / options.num_threads.
Result<ImmResult> RunImm(const Graph& graph, uint32_t k,
                         const ImmOptions& options = {});
Result<ImmResult> RunImm(const Graph& graph, uint32_t k,
                         const ImmOptions& options, SamplingEngine* engine);

}  // namespace atpm

#endif  // ATPM_IM_IMM_H_
