#include "im/spread_bound.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace atpm {

double SpreadLowerBound(uint64_t cov, uint64_t theta, uint32_t n,
                        double delta) {
  ATPM_CHECK_GT(theta, 0u);
  ATPM_CHECK(delta > 0.0 && delta < 1.0);
  const double eta = std::log(1.0 / delta);
  const double c = static_cast<double>(cov);
  const double root = std::sqrt(c + 2.0 * eta / 9.0) - std::sqrt(eta / 2.0);
  const double adjusted = root * root - eta / 18.0;
  const double bound =
      std::max(0.0, adjusted) * static_cast<double>(n) /
      static_cast<double>(theta);
  return bound;
}

double SpreadUpperBound(uint64_t cov, uint64_t theta, uint32_t n,
                        double delta) {
  ATPM_CHECK_GT(theta, 0u);
  ATPM_CHECK(delta > 0.0 && delta < 1.0);
  const double eta = std::log(1.0 / delta);
  const double c = static_cast<double>(cov);
  const double root = std::sqrt(c + eta / 2.0) + std::sqrt(eta / 2.0);
  const double bound = root * root * static_cast<double>(n) /
                       static_cast<double>(theta);
  return std::min(bound, static_cast<double>(n));
}

}  // namespace atpm
