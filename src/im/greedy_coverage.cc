#include "im/greedy_coverage.h"

#include <algorithm>

namespace atpm {

GreedyCoverageResult GreedyMaxCoverage(RRCollection* pool, uint32_t k,
                                       std::span<const NodeId> candidates) {
  if (!pool->index_built()) pool->BuildIndex();
  const NodeId n = pool->num_nodes();
  const uint64_t num_sets = pool->num_sets();

  // Marginal coverage per node, kept exact by decrementing when a set
  // becomes covered (linear-time greedy; no CELF needed at these sizes).
  std::vector<uint64_t> gain(n, 0);
  for (NodeId v = 0; v < n; ++v) gain[v] = pool->CoveringSets(v).size();

  std::vector<bool> eligible;
  if (!candidates.empty()) {
    eligible.assign(n, false);
    for (NodeId v : candidates) eligible[v] = true;
  }
  const auto is_eligible = [&](NodeId v) {
    return eligible.empty() || eligible[v];
  };

  std::vector<bool> covered(num_sets, false);
  GreedyCoverageResult result;
  result.seeds.reserve(k);

  for (uint32_t round = 0; round < k; ++round) {
    NodeId best = n;
    uint64_t best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (gain[v] > best_gain && is_eligible(v)) {
        best = v;
        best_gain = gain[v];
      }
    }
    if (best == n || best_gain == 0) break;  // nothing new coverable

    result.seeds.push_back(best);
    result.covered += best_gain;
    for (uint32_t set_id : pool->CoveringSets(best)) {
      if (covered[set_id]) continue;
      covered[set_id] = true;
      for (NodeId w : pool->set(set_id)) {
        ATPM_DCHECK(gain[w] > 0);
        --gain[w];
      }
    }
    ATPM_DCHECK(gain[best] == 0);
  }
  return result;
}

}  // namespace atpm
