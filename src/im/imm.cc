#include "im/imm.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/math_util.h"
#include "common/rng.h"
#include "im/greedy_coverage.h"
#include "rris/rr_collection.h"
#include "rris/sampling_engine.h"

namespace atpm {

Result<ImmResult> RunImm(const Graph& graph, uint32_t k,
                         const ImmOptions& options) {
  SamplingEngineOptions engine_options;
  engine_options.backend = options.engine;
  engine_options.num_threads = options.num_threads;
  engine_options.kernel = options.kernel;
  std::unique_ptr<SamplingEngine> engine = CreateSamplingEngine(
      graph, DiffusionModel::kIndependentCascade, engine_options);
  return RunImm(graph, k, options, engine.get());
}

Result<ImmResult> RunImm(const Graph& graph, uint32_t k,
                         const ImmOptions& options, SamplingEngine* engine) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("IMM: empty graph");
  if (k == 0 || k > n) {
    return Status::InvalidArgument("IMM: k must be in [1, n], got " +
                                   std::to_string(k));
  }
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0) {
    return Status::InvalidArgument("IMM: epsilon must be in (0, 1)");
  }
  if (&engine->graph() != &graph) {
    return Status::InvalidArgument(
        "IMM: sampling engine bound to a different graph");
  }

  const double nd = static_cast<double>(n);
  const double log_n = std::log(nd);
  const double log_nk = LogBinomial(n, k);
  const double eps = options.epsilon;
  // ell' compensates the union bound over the sampling phase iterations
  // (IMM paper, Sec. 4.2).
  const double ell =
      options.ell * (1.0 + std::log(2.0) / std::max(log_n, 1e-9));

  Rng rng(options.seed);
  engine->ResetPool();
  RRCollection& pool = engine->pool();

  ImmResult result;

  // --- Phase 1: estimate a lower bound LB on OPT_k. ---
  const double eps_prime = std::sqrt(2.0) * eps;
  const double lambda_prime =
      (2.0 + 2.0 * eps_prime / 3.0) *
      (log_nk + ell * log_n + std::log(std::max(std::log2(nd), 1.0))) * nd /
      (eps_prime * eps_prime);

  double lower_bound = 1.0;
  const int max_rounds =
      std::max(1, static_cast<int>(std::log2(std::max(nd, 2.0))) - 1);
  for (int i = 1; i <= max_rounds; ++i) {
    const double x = nd / std::pow(2.0, i);
    const uint64_t theta_i =
        static_cast<uint64_t>(std::ceil(lambda_prime / x));
    if (theta_i > options.max_rr_sets) {
      return Status::OutOfBudget("IMM sampling phase needs " +
                                 std::to_string(theta_i) + " RR sets, cap " +
                                 std::to_string(options.max_rr_sets));
    }
    if (pool.num_sets() < theta_i) {
      ATPM_RETURN_NOT_OK(engine->TryGeneratePool(
          /*removed=*/nullptr, n, theta_i - pool.num_sets(), &rng));
    }
    GreedyCoverageResult greedy = GreedyMaxCoverage(&pool, k);
    const double est = nd * static_cast<double>(greedy.covered) /
                       static_cast<double>(pool.num_sets());
    if (est >= (1.0 + eps_prime) * x) {
      lower_bound = est / (1.0 + eps_prime);
      break;
    }
  }

  // --- Phase 2: final pool of θ = λ* / LB sets, then greedy. ---
  const double e_const = std::exp(1.0);
  const double alpha = std::sqrt(ell * log_n + std::log(2.0));
  const double beta = std::sqrt((1.0 - 1.0 / e_const) *
                                (log_nk + ell * log_n + std::log(2.0)));
  const double lambda_star = 2.0 * nd *
                             std::pow((1.0 - 1.0 / e_const) * alpha + beta, 2) /
                             (eps * eps);
  const uint64_t theta =
      static_cast<uint64_t>(std::ceil(lambda_star / lower_bound));
  if (theta > options.max_rr_sets) {
    return Status::OutOfBudget("IMM selection phase needs " +
                               std::to_string(theta) + " RR sets, cap " +
                               std::to_string(options.max_rr_sets));
  }
  if (pool.num_sets() < theta) {
    ATPM_RETURN_NOT_OK(engine->TryGeneratePool(
        /*removed=*/nullptr, n, theta - pool.num_sets(), &rng));
  }

  GreedyCoverageResult final_greedy = GreedyMaxCoverage(&pool, k);
  result.seeds = std::move(final_greedy.seeds);
  result.estimated_spread = nd * static_cast<double>(final_greedy.covered) /
                            static_cast<double>(pool.num_sets());
  result.num_rr_sets = pool.num_sets();
  result.total_edges_examined = engine->total_edges_examined();
  return result;
}

}  // namespace atpm
