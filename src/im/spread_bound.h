#ifndef ATPM_IM_SPREAD_BOUND_H_
#define ATPM_IM_SPREAD_BOUND_H_

#include <cstdint>

namespace atpm {

/// Martingale concentration bounds on an expected spread given its coverage
/// over θ RR sets (Tang et al., SIGMOD'15; used in OPIM's online bounds).
/// With probability at least 1 - delta,
///
///   E[I(S)] >= SpreadLowerBound(cov, theta, n, delta)
///   E[I(S)] <= SpreadUpperBound(cov, theta, n, delta)
///
/// where `cov` is Cov_R(S) over θ independent RR sets on a graph (or
/// residual graph) with n alive nodes. The paper's experiments calibrate
/// target costs via c(T) = E_l[I(T)] — this module provides that E_l.

/// High-probability lower bound on E[I(S)].
double SpreadLowerBound(uint64_t cov, uint64_t theta, uint32_t n,
                        double delta);

/// High-probability upper bound on E[I(S)].
double SpreadUpperBound(uint64_t cov, uint64_t theta, uint32_t n,
                        double delta);

}  // namespace atpm

#endif  // ATPM_IM_SPREAD_BOUND_H_
