#ifndef ATPM_IM_GREEDY_COVERAGE_H_
#define ATPM_IM_GREEDY_COVERAGE_H_

#include <span>
#include <vector>

#include "rris/rr_collection.h"

namespace atpm {

/// Result of a greedy max-coverage pass.
struct GreedyCoverageResult {
  /// Selected nodes, in selection order.
  std::vector<NodeId> seeds;
  /// Number of RR sets covered by `seeds`.
  uint64_t covered = 0;
};

/// Standard greedy for maximum k-coverage over an RR pool: repeatedly picks
/// the node covering the most not-yet-covered sets. Achieves (1 - 1/e) of
/// the optimal coverage; combined with RIS sampling this is the selection
/// phase of IMM and of the NSG baseline.
///
/// If `candidates` is non-empty, selection is restricted to those nodes
/// (used when targets must come from T). The pool's inverted index is built
/// if missing. Stops early when no candidate covers a new set.
GreedyCoverageResult GreedyMaxCoverage(RRCollection* pool, uint32_t k,
                                       std::span<const NodeId> candidates = {});

}  // namespace atpm

#endif  // ATPM_IM_GREEDY_COVERAGE_H_
