#ifndef ATPM_RRIS_RR_COLLECTION_H_
#define ATPM_RRIS_RR_COLLECTION_H_

#include <span>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "rris/rr_set.h"

namespace atpm {

/// A pool R of RR sets with coverage queries. Sets are stored flattened
/// (CSR) for cache locality; an inverted index (node -> covering set ids)
/// is built on demand for the greedy max-coverage algorithms.
///
/// Terminology follows the paper: for a node set S,
///   Cov_R(S)      = |{ R in R : R intersects S }|
///   Cov_R(u | S)  = Cov_R(S u {u}) - Cov_R(S)
///                 = |{ R : u in R, R disjoint from S }|.
class RRCollection {
 public:
  /// Creates an empty collection over graphs with `num_nodes` nodes.
  explicit RRCollection(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Appends one RR set. Invalidate any previously built index.
  void AddSet(std::span<const NodeId> nodes);

  /// Bulk-appends `set_sizes.size()` RR sets whose node lists are
  /// concatenated in `nodes` (shard layout of the parallel sampling
  /// engine). The merge is one splice of the flat node buffer plus an
  /// offset rebase — the sets are never re-walked, so sharded generation
  /// lands in the CSR layout without a second pass.
  void AppendShard(std::span<const NodeId> nodes,
                   std::span<const uint32_t> set_sizes);

  /// Generates `count` RR sets with `generator` on the residual graph
  /// G \ removed; accumulates and returns the total edges examined.
  uint64_t Generate(RRSetGenerator* generator, const BitVector* removed,
                    uint32_t num_alive, uint64_t count, Rng* rng);

  /// Removes all sets (keeps capacity).
  void Clear();

  /// Number of RR sets θ.
  uint64_t num_sets() const { return set_offsets_.size() - 1; }
  /// Node universe size used for index sizing.
  NodeId num_nodes() const { return num_nodes_; }
  /// Nodes of the i-th set.
  std::span<const NodeId> set(uint64_t i) const {
    return {set_nodes_.data() + set_offsets_[i],
            static_cast<size_t>(set_offsets_[i + 1] - set_offsets_[i])};
  }
  /// Total of all set sizes (proxy for memory and generation cost).
  uint64_t total_nodes() const { return set_nodes_.size(); }

  /// Cov_R({u}): number of sets containing u. O(index) after BuildIndex,
  /// full scan otherwise.
  uint64_t CoverageOfNode(NodeId u) const;

  /// Cov_R(S): number of sets intersecting S (S given as a bitmap).
  uint64_t CoverageOfSet(const BitVector& members) const;

  /// Cov_R(u | base): sets containing u and disjoint from `base`. `base`
  /// must not contain u.
  uint64_t ConditionalCoverage(NodeId u, const BitVector& base) const;

  /// Answers every query of `batch` in ONE pass over the stored pool:
  /// batch->hits(q) becomes Cov_R(node_q | base_q). The multi-seed
  /// counterpart of ConditionalCoverage — a greedy sweep evaluating many
  /// candidates against the same pool pays one CSR scan instead of one per
  /// candidate (conditional queries sharing a base bitmap share its
  /// per-node tests). Needs no inverted index, but uses it when available:
  /// an all-unconditional batch on an indexed pool is O(1) per query.
  void AnswerBatch(CoverageQueryBatch* batch) const;

  /// Builds (or rebuilds) the inverted index node -> covering set ids.
  void BuildIndex();
  /// True iff the index reflects the current pool.
  bool index_built() const { return index_built_; }
  /// Set ids covering `u` (requires BuildIndex()).
  std::span<const uint32_t> CoveringSets(NodeId u) const {
    ATPM_DCHECK(index_built_);
    return {index_sets_.data() + index_offsets_[u],
            static_cast<size_t>(index_offsets_[u + 1] - index_offsets_[u])};
  }

 private:
  NodeId num_nodes_;
  std::vector<uint64_t> set_offsets_{0};
  std::vector<NodeId> set_nodes_;

  bool index_built_ = false;
  std::vector<uint64_t> index_offsets_;
  std::vector<uint32_t> index_sets_;
};

}  // namespace atpm

#endif  // ATPM_RRIS_RR_COLLECTION_H_
