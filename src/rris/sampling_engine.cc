#include "rris/sampling_engine.h"

#include <algorithm>
#include <new>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace atpm {

namespace {

/// Global-registry instruments shared by both backends. Registered once on
/// first use; every hot-path touch is a relaxed add (or a single relaxed
/// load when metrics are disabled).
struct EngineMetrics {
  obs::Counter* rr_sets;
  obs::Counter* edges;
  obs::Counter* draws;
  obs::Counter* count_pools;
  obs::Counter* coverage_queries;
  obs::Histogram* pool_fill_seconds;
  obs::Histogram* count_batch_seconds;
  obs::Histogram* batch_sets;

  static const EngineMetrics& Get() {
    static const EngineMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* m = new EngineMetrics();
      m->rr_sets = reg.RegisterCounter(
          "atpm_rr_sets_generated_total",
          "RR sets sampled across all engines (pool + counting paths)");
      m->edges = reg.RegisterCounter(
          "atpm_rr_edges_examined_total",
          "Edges examined while sampling RR sets (the IMM/EPT cost measure)");
      m->draws = reg.RegisterCounter(
          "atpm_rng_draws_total",
          "64-bit RNG draws consumed by RR-set generators");
      m->count_pools = reg.RegisterCounter(
          "atpm_count_pools_total",
          "Throwaway counting pools sampled for coverage-query batches");
      m->coverage_queries = reg.RegisterCounter(
          "atpm_coverage_queries_total",
          "Coverage queries answered by counting pools");
      m->pool_fill_seconds = reg.RegisterHistogram(
          "atpm_pool_fill_seconds", "Latency of stored-pool generation calls",
          obs::ExponentialBuckets(1e-6, 4.0, 14));
      m->count_batch_seconds = reg.RegisterHistogram(
          "atpm_count_batch_seconds",
          "Latency of coverage-counting batch calls",
          obs::ExponentialBuckets(1e-6, 4.0, 14));
      m->batch_sets = reg.RegisterHistogram(
          "atpm_rr_batch_sets", "RR sets drawn per engine batch",
          obs::ExponentialBuckets(1.0, 4.0, 14));
      return m;
    }();
    return *metrics;
  }
};

/// Translates an exception that escaped a sampling job into the Status the
/// engine API surfaces: allocation exhaustion is a degradable condition
/// (callers keep what they have), everything else is an internal fault.
Status ExceptionToStatus(const char* where, std::exception_ptr error) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(std::string(where) +
                                     ": allocation failed");
  } catch (const std::exception& e) {
    return Status::Internal(std::string(where) + ": " + e.what());
  } catch (...) {
    return Status::Internal(std::string(where) + ": unknown exception");
  }
}

}  // namespace

void SamplingEngine::AccrueGeneration(uint64_t sets, uint64_t edges,
                                      uint64_t draws) {
  stats_.rr_sets_generated += sets;
  stats_.edges_examined += edges;
  stats_.rng_draws += draws;
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.rr_sets->Increment(sets);
  metrics.edges->Increment(edges);
  metrics.draws->Increment(draws);
  if (sets > 0) metrics.batch_sets->Observe(static_cast<double>(sets));
}

void SamplingEngine::AccrueCounting(uint64_t pools, uint64_t queries) {
  stats_.count_pools += pools;
  stats_.coverage_queries += queries;
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.count_pools->Increment(pools);
  metrics.coverage_queries->Increment(queries);
}

const char* SamplingBackendName(SamplingBackend backend) {
  switch (backend) {
    case SamplingBackend::kSerial:
      return "serial";
    case SamplingBackend::kParallel:
      return "parallel";
    case SamplingBackend::kAuto:
      return "auto";
  }
  return "?";
}

// ------------------------------------------------------------------ serial

SerialSamplingEngine::SerialSamplingEngine(const Graph& graph,
                                           DiffusionModel model,
                                           SamplingKernel kernel)
    : model_(model),
      generator_(graph, model, kernel),
      pool_(graph.num_nodes()) {}

Status SerialSamplingEngine::TryGeneratePool(const BitVector* removed,
                                             uint32_t num_alive,
                                             uint64_t count, Rng* rng) {
  ATPM_FAILPOINT("engine.serial_batch");
  obs::TraceSpan span("pool_fill");
  span.AnnotateU64("count", count);
  obs::ScopedLatency latency(EngineMetrics::Get().pool_fill_seconds);
  // Batched block generation straight into the shard layout: one splice
  // into the pool CSR instead of a staging copy per set, and one shared
  // alive-list build per block. Bit-identical sets to the historical
  // Generate + AddSet loop on the same stream.
  shard_nodes_.clear();
  shard_sizes_.clear();
  const uint64_t draws_before = generator_.rng_draws();
  Status status = Status::OK();
  uint64_t edges = 0;
  try {
    ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_reserve");
    edges = generator_.GenerateBatch(removed, num_alive, count, rng,
                                     &shard_nodes_, &shard_sizes_, budget_);
    ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_append");
    pool_.AppendShard(shard_nodes_, shard_sizes_);
  } catch (...) {
    // A bad_alloc mid-batch leaves the staging shard partially grown (it
    // is cleared on the next call) and the pool untouched; the draws the
    // generator consumed are still accounted.
    status = ExceptionToStatus("serial pool generation",
                               std::current_exception());
  }
  edges_examined_ += status.ok() ? edges : 0;
  AccrueGeneration(status.ok() ? shard_sizes_.size() : 0,
                   status.ok() ? edges : 0,
                   generator_.rng_draws() - draws_before);
  return status;
}

Result<uint64_t> SerialSamplingEngine::TryCountCoverageBatchSeeded(
    CoverageQueryBatch* batch, const BitVector* removed, uint32_t num_alive,
    uint64_t theta, uint64_t seed) {
  if (batch->empty()) return uint64_t{0};
  ATPM_FAILPOINT("engine.serial_batch");
  obs::TraceSpan span("count_batch");
  span.AnnotateU64("theta", theta);
  span.AnnotateU64("queries", batch->size());
  obs::ScopedLatency latency(EngineMetrics::Get().count_batch_seconds);
  Rng rng(seed);
  const uint64_t draws_before = generator_.rng_draws();
  uint64_t sampled = theta;
  uint64_t edges = 0;
  try {
    // The throwaway counting pool is an allocation consumer too: its
    // scratch growth is covered by the same alloc failpoint so injected
    // bad_alloc exercises the policies' absorb-and-degrade path.
    ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_reserve");
    edges = generator_.CountCoveringBatch(removed, num_alive, theta,
                                          batch->queries(), batch->hit_data(),
                                          &rng, budget_, &sampled);
  } catch (...) {
    AccrueGeneration(0, 0, generator_.rng_draws() - draws_before);
    return ExceptionToStatus("serial coverage counting",
                             std::current_exception());
  }
  AccrueGeneration(sampled, edges, generator_.rng_draws() - draws_before);
  AccrueCounting(1, batch->size());
  return sampled;
}

void SerialSamplingEngine::ResetPool() {
  pool_.Clear();
  edges_examined_ = 0;
}

// ---------------------------------------------------------------- parallel

ParallelSamplingEngine::ParallelSamplingEngine(const Graph& graph,
                                               DiffusionModel model,
                                               uint32_t num_threads,
                                               uint64_t min_parallel_batch,
                                               SamplingKernel kernel)
    : graph_(&graph),
      model_(model),
      min_parallel_batch_(min_parallel_batch),
      pool_(graph.num_nodes()),
      inline_generator_(graph, model, kernel) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.resize(num_threads);
  for (Worker& worker : workers_) {
    worker.generator = std::make_unique<RRSetGenerator>(graph, model, kernel);
  }
  threads_.reserve(num_threads);
  for (uint32_t w = 0; w < num_threads; ++w) {
    threads_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

ParallelSamplingEngine::~ParallelSamplingEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ParallelSamplingEngine::WorkerLoop(uint32_t index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(uint32_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&]() {
        return stopping_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (stopping_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    // Containment: an exception escaping a job body used to ripple into
    // std::terminate (nothing above this frame catches). Capture it so
    // RunOnPool can translate it into a Status after the barrier; the
    // worker stays alive and the pool stays usable.
    try {
      (*job)(index);
    } catch (...) {
      workers_[index].error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

Status ParallelSamplingEngine::RunOnPool(
    const std::function<void(uint32_t)>& body) {
  for (Worker& worker : workers_) worker.error = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &body;
    ++job_epoch_;
    pending_ = static_cast<uint32_t>(workers_.size());
  }
  job_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&]() { return pending_ == 0; });
    job_ = nullptr;
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].error != nullptr) {
      // First failed worker in index order: deterministic for a fixed
      // fault schedule even when several workers fail at once.
      return ExceptionToStatus("parallel sampling worker",
                               std::move(workers_[w].error));
    }
  }
  return Status::OK();
}

void ParallelSamplingEngine::AssignQuotas(uint64_t total) {
  const uint64_t num_workers = workers_.size();
  const uint64_t chunk = total / num_workers;
  const uint64_t remainder = total % num_workers;
  for (uint64_t w = 0; w < num_workers; ++w) {
    workers_[w].quota = chunk + (w < remainder ? 1 : 0);
  }
}

Status ParallelSamplingEngine::TryGeneratePool(const BitVector* removed,
                                               uint32_t num_alive,
                                               uint64_t count, Rng* rng) {
  obs::TraceSpan span("pool_fill");
  span.AnnotateU64("count", count);
  obs::ScopedLatency latency(EngineMetrics::Get().pool_fill_seconds);
  // One draw from the caller's stream per query, independent of the worker
  // count; the fan-out is derived from it via SplitSeed.
  const uint64_t base_seed = rng->Next();
  if (workers_.size() <= 1 || count < min_parallel_batch_) {
    ATPM_FAILPOINT("engine.serial_batch");
    Rng local(base_seed);
    shard_nodes_.clear();
    shard_sizes_.clear();
    const uint64_t draws_before = inline_generator_.rng_draws();
    Status status = Status::OK();
    uint64_t edges = 0;
    try {
      ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_reserve");
      edges = inline_generator_.GenerateBatch(removed, num_alive, count,
                                              &local, &shard_nodes_,
                                              &shard_sizes_, budget_);
      ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_append");
      pool_.AppendShard(shard_nodes_, shard_sizes_);
    } catch (...) {
      status = ExceptionToStatus("inline pool generation",
                                 std::current_exception());
    }
    edges_examined_ += status.ok() ? edges : 0;
    AccrueGeneration(status.ok() ? shard_sizes_.size() : 0,
                     status.ok() ? edges : 0,
                     inline_generator_.rng_draws() - draws_before);
    return status;
  }

  AssignQuotas(count);
  const Status pool_status = RunOnPool([&](uint32_t w) {
    Worker& worker = workers_[w];
    worker.shard_nodes.clear();
    worker.shard_sizes.clear();
    worker.edges_result = 0;
    const uint64_t draws_before = worker.generator->rng_draws();
    Rng local(SplitSeed(base_seed, w));
    ATPM_FAILPOINT_MAYBE_THROW("engine.parallel_worker");
    ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_reserve");
    worker.edges_result =
        worker.generator->GenerateBatch(removed, num_alive, worker.quota,
                                        &local, &worker.shard_nodes,
                                        &worker.shard_sizes, budget_);
    worker.draws_result = worker.generator->rng_draws() - draws_before;
  });
  if (!pool_status.ok()) return pool_status;

  // Merge in worker order: deterministic layout, and the EPT accounting
  // (total edges examined) aggregates exactly as in a serial run.
  Status merge_status = Status::OK();
  uint64_t edges = 0;
  uint64_t generated = 0;
  uint64_t draws = 0;
  for (Worker& worker : workers_) {
    draws += worker.draws_result;
    if (!merge_status.ok()) continue;
    try {
      ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_append");
      pool_.AppendShard(worker.shard_nodes, worker.shard_sizes);
    } catch (...) {
      // Shards merged before the failure stay in the pool (they are whole
      // RR sets); the stats below count exactly those. Draws accrue for
      // every worker regardless — they were consumed either way.
      merge_status = ExceptionToStatus("pool shard merge",
                                       std::current_exception());
      continue;
    }
    edges += worker.edges_result;
    generated += worker.shard_sizes.size();
  }
  edges_examined_ += edges;
  AccrueGeneration(generated, edges, draws);
  return merge_status;
}

Result<uint64_t> ParallelSamplingEngine::TryCountCoverageBatchSeeded(
    CoverageQueryBatch* batch, const BitVector* removed, uint32_t num_alive,
    uint64_t theta, uint64_t seed) {
  const size_t num_queries = batch->size();
  if (num_queries == 0) return uint64_t{0};
  obs::TraceSpan span("count_batch");
  span.AnnotateU64("theta", theta);
  span.AnnotateU64("queries", num_queries);
  obs::ScopedLatency latency(EngineMetrics::Get().count_batch_seconds);
  // Counting accounting accrues up front on this backend (the historical
  // shape — a failed fan-out still consumed the pool attempt).
  AccrueCounting(1, num_queries);

  if (workers_.size() <= 1 || theta < min_parallel_batch_) {
    ATPM_FAILPOINT("engine.serial_batch");
    Rng rng(seed);
    const uint64_t draws_before = inline_generator_.rng_draws();
    uint64_t sampled = theta;
    uint64_t edges = 0;
    try {
      // See the serial engine: counting scratch growth shares the alloc
      // failpoint so injected bad_alloc reaches the degrade path.
      ATPM_FAILPOINT_MAYBE_THROW("alloc.pool_reserve");
      edges = inline_generator_.CountCoveringBatch(
          removed, num_alive, theta, batch->queries(), batch->hit_data(),
          &rng, budget_, &sampled);
    } catch (...) {
      AccrueGeneration(0, 0, inline_generator_.rng_draws() - draws_before);
      return ExceptionToStatus("inline coverage counting",
                               std::current_exception());
    }
    AccrueGeneration(sampled, edges,
                     inline_generator_.rng_draws() - draws_before);
    return sampled;
  }

  AssignQuotas(theta);
  const Status pool_status = RunOnPool([&](uint32_t w) {
    Worker& worker = workers_[w];
    // Size-only adjustment: CountCoveringBatch zeroes the counters itself,
    // so re-zeroing here (the old `assign`) would touch every entry twice.
    worker.hit_shard.resize(num_queries);
    worker.sampled_result = 0;
    const uint64_t draws_before = worker.generator->rng_draws();
    Rng local(SplitSeed(seed, w));
    ATPM_FAILPOINT_MAYBE_THROW("engine.parallel_worker");
    worker.edges_result = worker.generator->CountCoveringBatch(
        removed, num_alive, worker.quota, batch->queries(),
        worker.hit_shard.data(), &local, budget_, &worker.sampled_result);
    worker.draws_result = worker.generator->rng_draws() - draws_before;
  });
  if (!pool_status.ok()) return pool_status;

  // Deterministic merge: per-worker counter shards summed in worker order.
  // Under a tripped budget each worker's hits are exact over its own
  // sampled prefix, so the summed hits are exact over the summed sample
  // count — the honest θ the caller scales by.
  uint64_t sampled = 0;
  uint64_t edges = 0;
  uint64_t draws = 0;
  batch->ZeroHits();
  uint64_t* hits = batch->hit_data();
  for (const Worker& worker : workers_) {
    for (size_t q = 0; q < num_queries; ++q) hits[q] += worker.hit_shard[q];
    edges += worker.edges_result;
    draws += worker.draws_result;
    sampled += worker.sampled_result;
  }
  AccrueGeneration(sampled, edges, draws);
  return sampled;
}

void ParallelSamplingEngine::ResetPool() {
  pool_.Clear();
  edges_examined_ = 0;
}

// ----------------------------------------------------------------- factory

std::unique_ptr<SamplingEngine> CreateSamplingEngine(
    const Graph& graph, DiffusionModel model,
    const SamplingEngineOptions& options) {
  uint32_t threads = options.num_threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : options.num_threads;
  SamplingBackend backend = options.backend;
  if (backend == SamplingBackend::kAuto) {
    backend =
        threads > 1 ? SamplingBackend::kParallel : SamplingBackend::kSerial;
  }
  // An explicit kParallel request with one resolved thread degrades to the
  // serial backend: every query would take the one-worker inline path (which
  // is bit-identical to serial for the counting kernels), so building the
  // worker-thread + condvar machinery buys nothing.
  if (backend == SamplingBackend::kParallel && threads <= 1) {
    backend = SamplingBackend::kSerial;
  }
  if (backend == SamplingBackend::kParallel) {
    return std::make_unique<ParallelSamplingEngine>(
        graph, model, threads, options.min_parallel_batch, options.kernel);
  }
  return std::make_unique<SerialSamplingEngine>(graph, model, options.kernel);
}

SamplingEngine* SamplingEngineHandle::Get(const Graph& graph,
                                          DiffusionModel model,
                                          const SamplingEngineOptions& options) {
  if (external_ != nullptr) return external_;
  // Reuse is keyed by graph identity (address + shape): the caller owns the
  // graph's lifetime and must not recycle it while the handle is live. The
  // shape check guards the likeliest ABA accident — a new, differently
  // sized graph allocated at the old address — which would otherwise hand
  // out generators with undersized visited markers.
  const bool reusable =
      owned_ != nullptr && &owned_->graph() == &graph &&
      owned_->graph().num_nodes() == graph.num_nodes() &&
      owned_->graph().num_edges() == graph.num_edges() &&
      owned_->model() == model &&
      owned_options_.backend == options.backend &&
      owned_options_.num_threads == options.num_threads &&
      owned_options_.min_parallel_batch == options.min_parallel_batch &&
      owned_options_.kernel == options.kernel;
  if (!reusable) {
    owned_ = CreateSamplingEngine(graph, model, options);
    owned_options_ = options;
  }
  return owned_.get();
}

}  // namespace atpm
