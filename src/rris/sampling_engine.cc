#include "rris/sampling_engine.h"

#include <algorithm>

namespace atpm {

const char* SamplingBackendName(SamplingBackend backend) {
  switch (backend) {
    case SamplingBackend::kSerial:
      return "serial";
    case SamplingBackend::kParallel:
      return "parallel";
    case SamplingBackend::kAuto:
      return "auto";
  }
  return "?";
}

// ------------------------------------------------------------------ serial

SerialSamplingEngine::SerialSamplingEngine(const Graph& graph,
                                           DiffusionModel model,
                                           SamplingKernel kernel)
    : model_(model),
      generator_(graph, model, kernel),
      pool_(graph.num_nodes()) {}

RRCollection& SerialSamplingEngine::GeneratePool(const BitVector* removed,
                                                 uint32_t num_alive,
                                                 uint64_t count, Rng* rng) {
  // Batched block generation straight into the shard layout: one splice
  // into the pool CSR instead of a staging copy per set, and one shared
  // alive-list build per block. Bit-identical sets to the historical
  // Generate + AddSet loop on the same stream.
  shard_nodes_.clear();
  shard_sizes_.clear();
  const uint64_t draws_before = generator_.rng_draws();
  const uint64_t edges = generator_.GenerateBatch(removed, num_alive, count,
                                                  rng, &shard_nodes_,
                                                  &shard_sizes_);
  pool_.AppendShard(shard_nodes_, shard_sizes_);
  edges_examined_ += edges;
  stats_.rr_sets_generated += count;
  stats_.edges_examined += edges;
  stats_.rng_draws += generator_.rng_draws() - draws_before;
  return pool_;
}

void SerialSamplingEngine::CountCoverageBatchSeeded(CoverageQueryBatch* batch,
                                                    const BitVector* removed,
                                                    uint32_t num_alive,
                                                    uint64_t theta,
                                                    uint64_t seed) {
  if (batch->empty()) return;
  Rng rng(seed);
  const uint64_t draws_before = generator_.rng_draws();
  stats_.edges_examined += generator_.CountCoveringBatch(
      removed, num_alive, theta, batch->queries(), batch->hit_data(), &rng);
  stats_.rng_draws += generator_.rng_draws() - draws_before;
  stats_.rr_sets_generated += theta;
  stats_.count_pools += 1;
  stats_.coverage_queries += batch->size();
}

void SerialSamplingEngine::ResetPool() {
  pool_.Clear();
  edges_examined_ = 0;
}

// ---------------------------------------------------------------- parallel

ParallelSamplingEngine::ParallelSamplingEngine(const Graph& graph,
                                               DiffusionModel model,
                                               uint32_t num_threads,
                                               uint64_t min_parallel_batch,
                                               SamplingKernel kernel)
    : graph_(&graph),
      model_(model),
      min_parallel_batch_(min_parallel_batch),
      pool_(graph.num_nodes()),
      inline_generator_(graph, model, kernel) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.resize(num_threads);
  for (Worker& worker : workers_) {
    worker.generator = std::make_unique<RRSetGenerator>(graph, model, kernel);
  }
  threads_.reserve(num_threads);
  for (uint32_t w = 0; w < num_threads; ++w) {
    threads_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

ParallelSamplingEngine::~ParallelSamplingEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ParallelSamplingEngine::WorkerLoop(uint32_t index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(uint32_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&]() {
        return stopping_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (stopping_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelSamplingEngine::RunOnPool(
    const std::function<void(uint32_t)>& body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &body;
    ++job_epoch_;
    pending_ = static_cast<uint32_t>(workers_.size());
  }
  job_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&]() { return pending_ == 0; });
  job_ = nullptr;
}

void ParallelSamplingEngine::AssignQuotas(uint64_t total) {
  const uint64_t num_workers = workers_.size();
  const uint64_t chunk = total / num_workers;
  const uint64_t remainder = total % num_workers;
  for (uint64_t w = 0; w < num_workers; ++w) {
    workers_[w].quota = chunk + (w < remainder ? 1 : 0);
  }
}

RRCollection& ParallelSamplingEngine::GeneratePool(const BitVector* removed,
                                                   uint32_t num_alive,
                                                   uint64_t count, Rng* rng) {
  // One draw from the caller's stream per query, independent of the worker
  // count; the fan-out is derived from it via SplitSeed.
  const uint64_t base_seed = rng->Next();
  if (workers_.size() <= 1 || count < min_parallel_batch_) {
    Rng local(base_seed);
    shard_nodes_.clear();
    shard_sizes_.clear();
    const uint64_t draws_before = inline_generator_.rng_draws();
    const uint64_t edges = inline_generator_.GenerateBatch(
        removed, num_alive, count, &local, &shard_nodes_, &shard_sizes_);
    pool_.AppendShard(shard_nodes_, shard_sizes_);
    edges_examined_ += edges;
    stats_.rr_sets_generated += count;
    stats_.edges_examined += edges;
    stats_.rng_draws += inline_generator_.rng_draws() - draws_before;
    return pool_;
  }

  AssignQuotas(count);
  RunOnPool([&](uint32_t w) {
    Worker& worker = workers_[w];
    worker.shard_nodes.clear();
    worker.shard_sizes.clear();
    const uint64_t draws_before = worker.generator->rng_draws();
    Rng local(SplitSeed(base_seed, w));
    worker.edges_result =
        worker.generator->GenerateBatch(removed, num_alive, worker.quota,
                                        &local, &worker.shard_nodes,
                                        &worker.shard_sizes);
    worker.draws_result = worker.generator->rng_draws() - draws_before;
  });

  // Merge in worker order: deterministic layout, and the EPT accounting
  // (total edges examined) aggregates exactly as in a serial run.
  uint64_t edges = 0;
  for (Worker& worker : workers_) {
    pool_.AppendShard(worker.shard_nodes, worker.shard_sizes);
    edges += worker.edges_result;
    stats_.rng_draws += worker.draws_result;
  }
  edges_examined_ += edges;
  stats_.rr_sets_generated += count;
  stats_.edges_examined += edges;
  return pool_;
}

void ParallelSamplingEngine::CountCoverageBatchSeeded(
    CoverageQueryBatch* batch, const BitVector* removed, uint32_t num_alive,
    uint64_t theta, uint64_t seed) {
  const size_t num_queries = batch->size();
  if (num_queries == 0) return;
  stats_.rr_sets_generated += theta;
  stats_.count_pools += 1;
  stats_.coverage_queries += num_queries;

  if (workers_.size() <= 1 || theta < min_parallel_batch_) {
    Rng rng(seed);
    const uint64_t draws_before = inline_generator_.rng_draws();
    stats_.edges_examined += inline_generator_.CountCoveringBatch(
        removed, num_alive, theta, batch->queries(), batch->hit_data(), &rng);
    stats_.rng_draws += inline_generator_.rng_draws() - draws_before;
    return;
  }

  AssignQuotas(theta);
  RunOnPool([&](uint32_t w) {
    Worker& worker = workers_[w];
    // Size-only adjustment: CountCoveringBatch zeroes the counters itself,
    // so re-zeroing here (the old `assign`) would touch every entry twice.
    worker.hit_shard.resize(num_queries);
    const uint64_t draws_before = worker.generator->rng_draws();
    Rng local(SplitSeed(seed, w));
    worker.edges_result = worker.generator->CountCoveringBatch(
        removed, num_alive, worker.quota, batch->queries(),
        worker.hit_shard.data(), &local);
    worker.draws_result = worker.generator->rng_draws() - draws_before;
  });

  // Deterministic merge: per-worker counter shards summed in worker order.
  batch->ZeroHits();
  uint64_t* hits = batch->hit_data();
  for (const Worker& worker : workers_) {
    for (size_t q = 0; q < num_queries; ++q) hits[q] += worker.hit_shard[q];
    stats_.edges_examined += worker.edges_result;
    stats_.rng_draws += worker.draws_result;
  }
}

void ParallelSamplingEngine::ResetPool() {
  pool_.Clear();
  edges_examined_ = 0;
}

// ----------------------------------------------------------------- factory

std::unique_ptr<SamplingEngine> CreateSamplingEngine(
    const Graph& graph, DiffusionModel model,
    const SamplingEngineOptions& options) {
  uint32_t threads = options.num_threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : options.num_threads;
  SamplingBackend backend = options.backend;
  if (backend == SamplingBackend::kAuto) {
    backend =
        threads > 1 ? SamplingBackend::kParallel : SamplingBackend::kSerial;
  }
  // An explicit kParallel request with one resolved thread degrades to the
  // serial backend: every query would take the one-worker inline path (which
  // is bit-identical to serial for the counting kernels), so building the
  // worker-thread + condvar machinery buys nothing.
  if (backend == SamplingBackend::kParallel && threads <= 1) {
    backend = SamplingBackend::kSerial;
  }
  if (backend == SamplingBackend::kParallel) {
    return std::make_unique<ParallelSamplingEngine>(
        graph, model, threads, options.min_parallel_batch, options.kernel);
  }
  return std::make_unique<SerialSamplingEngine>(graph, model, options.kernel);
}

SamplingEngine* SamplingEngineHandle::Get(const Graph& graph,
                                          DiffusionModel model,
                                          const SamplingEngineOptions& options) {
  if (external_ != nullptr) return external_;
  // Reuse is keyed by graph identity (address + shape): the caller owns the
  // graph's lifetime and must not recycle it while the handle is live. The
  // shape check guards the likeliest ABA accident — a new, differently
  // sized graph allocated at the old address — which would otherwise hand
  // out generators with undersized visited markers.
  const bool reusable =
      owned_ != nullptr && &owned_->graph() == &graph &&
      owned_->graph().num_nodes() == graph.num_nodes() &&
      owned_->graph().num_edges() == graph.num_edges() &&
      owned_->model() == model &&
      owned_options_.backend == options.backend &&
      owned_options_.num_threads == options.num_threads &&
      owned_options_.min_parallel_batch == options.min_parallel_batch &&
      owned_options_.kernel == options.kernel;
  if (!reusable) {
    owned_ = CreateSamplingEngine(graph, model, options);
    owned_options_ = options;
  }
  return owned_.get();
}

}  // namespace atpm
