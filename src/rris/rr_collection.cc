#include "rris/rr_collection.h"

namespace atpm {

void RRCollection::AddSet(std::span<const NodeId> nodes) {
  set_nodes_.insert(set_nodes_.end(), nodes.begin(), nodes.end());
  set_offsets_.push_back(set_nodes_.size());
  index_built_ = false;
}

void RRCollection::AppendShard(std::span<const NodeId> nodes,
                               std::span<const uint32_t> set_sizes) {
  set_nodes_.insert(set_nodes_.end(), nodes.begin(), nodes.end());
  set_offsets_.reserve(set_offsets_.size() + set_sizes.size());
  uint64_t offset = set_offsets_.back();
  for (uint32_t size : set_sizes) {
    offset += size;
    set_offsets_.push_back(offset);
  }
  ATPM_DCHECK(offset == set_nodes_.size());
  index_built_ = false;
}

uint64_t RRCollection::Generate(RRSetGenerator* generator,
                                const BitVector* removed, uint32_t num_alive,
                                uint64_t count, Rng* rng) {
  std::vector<NodeId> nodes;
  std::vector<uint32_t> set_sizes;
  const uint64_t edges = generator->GenerateBatch(removed, num_alive, count,
                                                  rng, &nodes, &set_sizes);
  AppendShard(nodes, set_sizes);
  return edges;
}

void RRCollection::Clear() {
  set_offsets_.assign(1, 0);
  set_nodes_.clear();
  index_built_ = false;
}

uint64_t RRCollection::CoverageOfNode(NodeId u) const {
  if (index_built_) {
    return index_offsets_[u + 1] - index_offsets_[u];
  }
  uint64_t cov = 0;
  for (uint64_t i = 0; i < num_sets(); ++i) {
    for (NodeId w : set(i)) {
      if (w == u) {
        ++cov;
        break;
      }
    }
  }
  return cov;
}

uint64_t RRCollection::CoverageOfSet(const BitVector& members) const {
  uint64_t cov = 0;
  for (uint64_t i = 0; i < num_sets(); ++i) {
    for (NodeId w : set(i)) {
      if (members.Test(w)) {
        ++cov;
        break;
      }
    }
  }
  return cov;
}

uint64_t RRCollection::ConditionalCoverage(NodeId u,
                                           const BitVector& base) const {
  ATPM_DCHECK(!base.Test(u));
  uint64_t cov = 0;
  for (uint64_t i = 0; i < num_sets(); ++i) {
    bool has_u = false;
    bool hits_base = false;
    for (NodeId w : set(i)) {
      if (w == u) {
        has_u = true;
      } else if (base.Test(w)) {
        hits_base = true;
        break;
      }
    }
    if (has_u && !hits_base) ++cov;
  }
  return cov;
}

void RRCollection::AnswerBatch(CoverageQueryBatch* batch) const {
  batch->ZeroHits();
  const std::span<const CoverageQuery> queries = batch->queries();
  const size_t num_queries = queries.size();
  if (num_queries == 0 || num_sets() == 0) return;
  uint64_t* hits = batch->hit_data();

  // Fast path: with the inverted index built, unconditional queries are
  // O(1) each — the NSG/NDG initialization shape pays nothing beyond the
  // index it needs anyway.
  const bool all_unconditional = [&]() {
    for (const CoverageQuery& query : queries) {
      if (query.base != nullptr) return false;
    }
    return true;
  }();
  if (index_built_ && all_unconditional) {
    for (size_t q = 0; q < num_queries; ++q) {
      hits[q] = CoveringSets(queries[q].node).size();
    }
    return;
  }

  // General path: one CSR scan. node -> chain of query indices asking
  // about that node (queries may repeat nodes), plus the conditional
  // queries grouped by base bitmap: a sweep conditioning many candidates
  // on the same base (the RisSpreadOracle shape) tests each distinct base
  // once per set node and stamps once per (set, group).
  std::vector<int32_t> head(num_nodes_, -1);
  std::vector<int32_t> next(num_queries, -1);
  constexpr int32_t kNoGroup = -1;
  std::vector<int32_t> query_group(num_queries, kNoGroup);
  std::vector<const BitVector*> bases;
  for (size_t q = 0; q < num_queries; ++q) {
    const NodeId u = queries[q].node;
    next[q] = head[u];
    head[u] = static_cast<int32_t>(q);
    if (queries[q].base != nullptr) {
      size_t group = 0;
      while (group < bases.size() && bases[group] != queries[q].base) {
        ++group;
      }
      if (group == bases.size()) bases.push_back(queries[q].base);
      query_group[q] = static_cast<int32_t>(group);
    }
  }

  // Per-set found/dead marks via set-id stamps: no per-set clearing, and
  // the final per-set tally walks only the queries actually touched.
  std::vector<uint64_t> found_stamp(num_queries, 0);
  std::vector<uint64_t> group_dead_stamp(bases.size(), 0);
  std::vector<uint32_t> touched;
  for (uint64_t i = 0; i < num_sets(); ++i) {
    const uint64_t stamp = i + 1;
    touched.clear();
    for (NodeId w : set(i)) {
      for (int32_t q = head[w]; q >= 0; q = next[q]) {
        if (found_stamp[q] != stamp) {
          found_stamp[q] = stamp;
          touched.push_back(static_cast<uint32_t>(q));
        }
      }
      for (size_t group = 0; group < bases.size(); ++group) {
        if (group_dead_stamp[group] != stamp && bases[group]->Test(w)) {
          group_dead_stamp[group] = stamp;
        }
      }
    }
    for (uint32_t q : touched) {
      const int32_t group = query_group[q];
      if (group == kNoGroup || group_dead_stamp[group] != stamp) ++hits[q];
    }
  }
}

void RRCollection::BuildIndex() {
  index_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId w : set_nodes_) ++index_offsets_[w + 1];
  for (NodeId v = 0; v < num_nodes_; ++v) {
    index_offsets_[v + 1] += index_offsets_[v];
  }
  index_sets_.resize(set_nodes_.size());
  std::vector<uint64_t> cursor(index_offsets_.begin(),
                               index_offsets_.end() - 1);
  for (uint64_t i = 0; i < num_sets(); ++i) {
    for (NodeId w : set(i)) {
      index_sets_[cursor[w]++] = static_cast<uint32_t>(i);
    }
  }
  index_built_ = true;
}

}  // namespace atpm
