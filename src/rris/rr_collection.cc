#include "rris/rr_collection.h"

namespace atpm {

void RRCollection::AddSet(std::span<const NodeId> nodes) {
  set_nodes_.insert(set_nodes_.end(), nodes.begin(), nodes.end());
  set_offsets_.push_back(set_nodes_.size());
  index_built_ = false;
}

void RRCollection::AppendShard(std::span<const NodeId> nodes,
                               std::span<const uint32_t> set_sizes) {
  set_nodes_.insert(set_nodes_.end(), nodes.begin(), nodes.end());
  set_offsets_.reserve(set_offsets_.size() + set_sizes.size());
  uint64_t offset = set_offsets_.back();
  for (uint32_t size : set_sizes) {
    offset += size;
    set_offsets_.push_back(offset);
  }
  ATPM_DCHECK(offset == set_nodes_.size());
  index_built_ = false;
}

uint64_t RRCollection::Generate(RRSetGenerator* generator,
                                const BitVector* removed, uint32_t num_alive,
                                uint64_t count, Rng* rng) {
  std::vector<NodeId> buffer;
  uint64_t edges = 0;
  for (uint64_t i = 0; i < count; ++i) {
    edges += generator->Generate(removed, num_alive, rng, &buffer);
    AddSet(buffer);
  }
  return edges;
}

void RRCollection::Clear() {
  set_offsets_.assign(1, 0);
  set_nodes_.clear();
  index_built_ = false;
}

uint64_t RRCollection::CoverageOfNode(NodeId u) const {
  if (index_built_) {
    return index_offsets_[u + 1] - index_offsets_[u];
  }
  uint64_t cov = 0;
  for (uint64_t i = 0; i < num_sets(); ++i) {
    for (NodeId w : set(i)) {
      if (w == u) {
        ++cov;
        break;
      }
    }
  }
  return cov;
}

uint64_t RRCollection::CoverageOfSet(const BitVector& members) const {
  uint64_t cov = 0;
  for (uint64_t i = 0; i < num_sets(); ++i) {
    for (NodeId w : set(i)) {
      if (members.Test(w)) {
        ++cov;
        break;
      }
    }
  }
  return cov;
}

uint64_t RRCollection::ConditionalCoverage(NodeId u,
                                           const BitVector& base) const {
  ATPM_DCHECK(!base.Test(u));
  uint64_t cov = 0;
  for (uint64_t i = 0; i < num_sets(); ++i) {
    bool has_u = false;
    bool hits_base = false;
    for (NodeId w : set(i)) {
      if (w == u) {
        has_u = true;
      } else if (base.Test(w)) {
        hits_base = true;
        break;
      }
    }
    if (has_u && !hits_base) ++cov;
  }
  return cov;
}

void RRCollection::BuildIndex() {
  index_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId w : set_nodes_) ++index_offsets_[w + 1];
  for (NodeId v = 0; v < num_nodes_; ++v) {
    index_offsets_[v + 1] += index_offsets_[v];
  }
  index_sets_.resize(set_nodes_.size());
  std::vector<uint64_t> cursor(index_offsets_.begin(),
                               index_offsets_.end() - 1);
  for (uint64_t i = 0; i < num_sets(); ++i) {
    for (NodeId w : set(i)) {
      index_sets_[cursor[w]++] = static_cast<uint32_t>(i);
    }
  }
  index_built_ = true;
}

}  // namespace atpm
