#ifndef ATPM_RRIS_SAMPLING_ENGINE_H_
#define ATPM_RRIS_SAMPLING_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/bit_vector.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/run_budget.h"
#include "common/status.h"
#include "diffusion/diffusion_model.h"
#include "graph/graph.h"
#include "rris/coverage_batch.h"
#include "rris/rr_collection.h"
#include "rris/rr_set.h"
#include "rris/sampling_stats.h"

namespace atpm {

/// Which RR-set sampling backend a policy should use.
enum class SamplingBackend {
  /// Single-threaded; bit-identical to driving an RRSetGenerator directly.
  kSerial,
  /// Persistent worker pool with deterministic per-thread RNG streams.
  kParallel,
  /// kParallel when the resolved thread count exceeds 1, else kSerial.
  kAuto,
};

/// Human-readable backend name ("serial" / "parallel" / "auto").
const char* SamplingBackendName(SamplingBackend backend);

/// Backend selection knobs, threaded through policy options.
struct SamplingEngineOptions {
  SamplingBackend backend = SamplingBackend::kAuto;
  /// Worker threads for the parallel backend; 0 = hardware concurrency.
  uint32_t num_threads = 1;
  /// Batches below this size run on the calling thread even under the
  /// parallel backend — fan-out overhead dominates tiny jobs, and the
  /// adaptive policies issue plenty of them early in the error schedule.
  uint64_t min_parallel_batch = 4096;
  /// RR-generation kernel of every generator the engine owns (see
  /// SamplingKernel in graph/graph.h): geometric jumps where the weight
  /// classes allow by default, kPerEdge for bit-compat reruns.
  SamplingKernel kernel = SamplingKernel::kGeometricJump;
};

/// Sampling knobs shared by every RIS-driven decision loop (ADDATP, HATP,
/// HNTP). Policy option structs embed one of these instead of copy-pasting
/// the fields.
struct SamplingOptions {
  /// RR sampling backend. kAuto engages the persistent thread pool iff
  /// num_threads > 1; kSerial reproduces the single-threaded code path bit
  /// for bit for a fixed seed.
  SamplingBackend engine = SamplingBackend::kAuto;
  /// Worker threads for the parallel backend (0 = hardware concurrency).
  /// Results are deterministic for a fixed (seed, num_threads) pair but
  /// differ across thread counts.
  uint32_t num_threads = 1;
  /// Budget cap on RR sets generated for a single seed decision (all pools
  /// and all halving rounds combined).
  uint64_t max_rr_sets_per_decision = 1ull << 23;
  /// One shared pool of θ RR sets per halving round answers both the front
  /// and the rear coverage query through a CoverageQueryBatch — half the RR
  /// sets per round, identical per-query concentration bounds. false
  /// restores the literal two-independent-pools sampling of Algorithms 3/4
  /// (bit-identical to the pre-batching code paths for a fixed seed).
  bool batched_rounds = true;
  /// Speculative cross-candidate pipelining: every batched halving round's
  /// pool additionally answers the first-round front/rear queries of the
  /// next `lookahead_window` undecided candidates, tagged with the
  /// residual-graph epoch. When the decision loop reaches such a candidate
  /// and the epoch is unchanged (only seedings bump it — skipped and
  /// abandoned candidates do not), the stored answer serves its first round
  /// without sampling a pool; stale answers are discarded unread. 0 (the
  /// default) disables speculation and is bit-identical to plain batched
  /// rounds for a fixed seed. Requires batched_rounds; ignored otherwise.
  uint32_t lookahead_window = 0;
  /// Adaptive window control: when true (and speculation is active, i.e.
  /// lookahead_window > 0 with batched rounds), the window widens
  /// geometrically up to max_lookahead_window while the observed discard
  /// rate stays below lookahead_discard_threshold, and resets to
  /// lookahead_window whenever the residual-graph epoch moves (a seeding
  /// voids every in-flight answer, so a wide window right after one only
  /// buys wasted queries). Decision sequences are identical to any fixed
  /// window — speculation serves the exact answers a native first round
  /// would compute; only the sampling layout adapts.
  bool adaptive_lookahead = false;
  /// Widest window adaptive control may reach (clamped to at least
  /// lookahead_window).
  uint32_t max_lookahead_window = 64;
  /// Discard-rate bar for widening: while discarded / resolved candidates
  /// stays below this, a stable residual graph keeps doubling the window.
  double lookahead_discard_threshold = 0.25;
  /// RR-generation kernel. The default geometric-jump kernel is
  /// statistically equivalent to the historical per-edge loop but consumes
  /// a different RNG stream; set kPerEdge to reproduce pre-kernel decision
  /// sequences bit for bit for a fixed seed.
  SamplingKernel kernel = SamplingKernel::kGeometricJump;
  /// Resource envelope for the whole run: wall-clock deadline, RR-pool
  /// byte cap, and cooperative cancellation. Inactive (the default) adds
  /// no checks and leaves every RNG stream bit-identical; when a limit
  /// trips mid-run the policies finish the current decision on the RR
  /// sets already drawn and report the weakened guarantee
  /// (DegradationEvent / achieved_theta / effective_epsilon) instead of
  /// crashing or silently answering with less evidence than requested.
  RunBudget budget;

  /// Engine-construction view of these knobs.
  SamplingEngineOptions EngineOptions() const {
    SamplingEngineOptions engine_options;
    engine_options.backend = engine;
    engine_options.num_threads = num_threads;
    engine_options.kernel = kernel;
    return engine_options;
  }
};

/// The substrate boundary between RR-set sampling and the TPM algorithms.
///
/// Every policy needs exactly two operations on the residual graph
/// G \ removed (`num_alive` = nodes outside `removed`):
///
///  * GeneratePool — append `count` stored RR sets to the engine's pool
///    (NSG/NDG/IMM-style fixed pools, spread lower bounds), with the total
///    edges examined (the IMM/EPT cost measure) accumulated in
///    total_edges_examined() so concentration accounting aggregates
///    correctly across parallel shards;
///  * CountCoverageBatch — draw ONE pool of θ throwaway RR sets and answer
///    every Cov(u | base) query of a CoverageQueryBatch in a single pass
///    (the ADDATP/HATP per-decision hot path; a round's front and rear
///    estimates share the pool instead of paying a fan-out each).
///    CountConditionalCoverage is the one-query convenience form.
///
/// Engines are bound to one (graph, diffusion model) pair and are *not*
/// re-entrant: one query runs at a time. Randomness is always drawn from
/// the caller's Rng, so runs remain reproducible; the parallel backend
/// consumes exactly one 64-bit draw per query and splits it into
/// per-worker streams (SplitSeed), making results deterministic for a
/// fixed (caller stream, thread count) pair.
class SamplingEngine {
 public:
  virtual ~SamplingEngine() = default;

  /// Appends up to `count` RR sets sampled on G \ removed to the engine's
  /// pool (fewer when the installed BudgetGate trips mid-batch — the pool
  /// then holds every set generated before the stop, and pool().num_sets()
  /// is the honest denominator). Edge-examination cost accrues into
  /// total_edges_examined(). Failures — an injected failpoint, a worker
  /// exception, allocation exhaustion — surface as a Status instead of
  /// terminating the process; kResourceExhausted means the pool kept what
  /// it had and the caller may degrade onto it.
  virtual Status TryGeneratePool(const BitVector* removed,
                                 uint32_t num_alive, uint64_t count,
                                 Rng* rng) = 0;

  /// Historical convenience form of TryGeneratePool for callers with no
  /// failure channel (benchmarks, tests): aborts on error and returns the
  /// pool. Identical to the pre-Status API when nothing fails.
  RRCollection& GeneratePool(const BitVector* removed, uint32_t num_alive,
                             uint64_t count, Rng* rng) {
    const Status status = TryGeneratePool(removed, num_alive, count, rng);
    if (!status.ok()) {
      std::fprintf(stderr, "GeneratePool: %s\n", status.ToString().c_str());
    }
    ATPM_CHECK(status.ok());
    return pool();
  }

  /// Samples one shared pool of `theta` RR sets without storing them and
  /// fills in `batch`'s per-query hit counters. Consumes one 64-bit draw
  /// from `rng` regardless of batch width or worker count. Returns the
  /// number of sets actually drawn — θ, unless the installed BudgetGate
  /// stopped the pool early, in which case the hit counters are exact over
  /// that smaller pool and the return value is the honest denominator.
  Result<uint64_t> TryCountCoverageBatch(CoverageQueryBatch* batch,
                                         const BitVector* removed,
                                         uint32_t num_alive, uint64_t theta,
                                         Rng* rng) {
    return TryCountCoverageBatchSeeded(batch, removed, num_alive, theta,
                                       rng->Next());
  }

  /// Abort-on-error convenience form of TryCountCoverageBatch (the
  /// historical API shape; callers without budgets always sample θ sets).
  void CountCoverageBatch(CoverageQueryBatch* batch, const BitVector* removed,
                          uint32_t num_alive, uint64_t theta, Rng* rng) {
    CountCoverageBatchSeeded(batch, removed, num_alive, theta, rng->Next());
  }

  /// Seed-level variant of TryCountCoverageBatch: the serial backend
  /// counts with the stream Rng(seed); the parallel backend gives worker w
  /// the stream Rng(SplitSeed(seed, w)) and a private counter shard,
  /// merged deterministically in worker order. Returns the sets actually
  /// drawn (see TryCountCoverageBatch).
  virtual Result<uint64_t> TryCountCoverageBatchSeeded(
      CoverageQueryBatch* batch, const BitVector* removed,
      uint32_t num_alive, uint64_t theta, uint64_t seed) = 0;

  /// Abort-on-error convenience form of TryCountCoverageBatchSeeded.
  void CountCoverageBatchSeeded(CoverageQueryBatch* batch,
                                const BitVector* removed, uint32_t num_alive,
                                uint64_t theta, uint64_t seed) {
    const Result<uint64_t> sampled =
        TryCountCoverageBatchSeeded(batch, removed, num_alive, theta, seed);
    if (!sampled.ok()) {
      std::fprintf(stderr, "CountCoverageBatchSeeded: %s\n",
                   sampled.status().ToString().c_str());
    }
    ATPM_CHECK(sampled.ok());
  }

  /// One-query convenience form: samples `theta` RR sets and returns how
  /// many contain `u` while avoiding every node of `base` (nullptr base =
  /// plain Cov({u}) count). Consumes one 64-bit draw from `rng`.
  uint64_t CountConditionalCoverage(NodeId u, const BitVector* base,
                                    const BitVector* removed,
                                    uint32_t num_alive, uint64_t theta,
                                    Rng* rng) {
    return CountConditionalCoverageSeeded(u, base, removed, num_alive, theta,
                                          rng->Next());
  }

  /// Seed-level variant of CountConditionalCoverage; a one-query batch, so
  /// bit-identical to the historical per-query sampling for a fixed seed.
  uint64_t CountConditionalCoverageSeeded(NodeId u, const BitVector* base,
                                          const BitVector* removed,
                                          uint32_t num_alive, uint64_t theta,
                                          uint64_t seed) {
    scratch_batch_.Clear();
    scratch_batch_.Add(u, base);
    CountCoverageBatchSeeded(&scratch_batch_, removed, num_alive, theta,
                             seed);
    return scratch_batch_.hits(0);
  }

  /// Installs (or clears, with nullptr) the budget gate the sampling
  /// paths poll at batch boundaries. Borrowed: the caller keeps the gate
  /// alive until it is cleared. Engines are not re-entrant, so one gate at
  /// a time; decorators forward to their inner engine.
  virtual void set_budget(BudgetGate* budget) { budget_ = budget; }
  /// The installed budget gate (null = unbudgeted).
  BudgetGate* budget() const { return budget_; }

  /// The engine's pool of stored RR sets (as filled by GeneratePool).
  virtual RRCollection& pool() = 0;
  /// Empties the pool (keeps capacity) and zeroes the edge accounting.
  virtual void ResetPool() = 0;
  /// Total edges examined by all GeneratePool calls since the last
  /// ResetPool, aggregated across workers.
  virtual uint64_t total_edges_examined() const = 0;

  /// Lifetime sampling-effort counters (pool + counting paths). Unlike
  /// total_edges_examined these survive ResetPool; ResetStats re-baselines
  /// them (e.g. per benchmark phase).
  const SamplingStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SamplingStats{}; }

  /// The bound graph.
  virtual const Graph& graph() const = 0;
  /// The bound diffusion model.
  virtual DiffusionModel model() const = 0;
  /// The RR-generation kernel of the engine's generators.
  virtual SamplingKernel kernel() const = 0;
  /// Worker count (1 for the serial backend).
  virtual uint32_t num_workers() const = 0;
  /// Backend identifier for logs and benchmarks.
  virtual std::string_view name() const = 0;

 protected:
  /// Harvest helpers shared by both backends (the per-path counter
  /// bookkeeping used to be copy-pasted four times): fold a finished
  /// generation/counting batch into the per-engine SamplingStats — kept
  /// exact, `stats()` stays a thin read — and mirror the same deltas into
  /// the global atpm_obs registry (atpm_rr_sets_generated_total & co).
  void AccrueGeneration(uint64_t sets, uint64_t edges, uint64_t draws);
  void AccrueCounting(uint64_t pools, uint64_t queries);

  SamplingStats stats_;
  BudgetGate* budget_ = nullptr;

 private:
  /// Scratch for the one-query convenience path (engines are one query at a
  /// time by contract, so a single slot suffices).
  CoverageQueryBatch scratch_batch_;
};

/// Single-threaded backend: a persistent RRSetGenerator driven by the
/// caller's Rng. For a fixed (seed, kernel) pair this reproduces the raw
/// generator code paths (RRCollection::Generate / CountCoveringBatch with
/// the stream Rng(seed)) bit for bit.
class SerialSamplingEngine final : public SamplingEngine {
 public:
  explicit SerialSamplingEngine(
      const Graph& graph,
      DiffusionModel model = DiffusionModel::kIndependentCascade,
      SamplingKernel kernel = SamplingKernel::kGeometricJump);

  Status TryGeneratePool(const BitVector* removed, uint32_t num_alive,
                         uint64_t count, Rng* rng) override;
  Result<uint64_t> TryCountCoverageBatchSeeded(CoverageQueryBatch* batch,
                                               const BitVector* removed,
                                               uint32_t num_alive,
                                               uint64_t theta,
                                               uint64_t seed) override;

  RRCollection& pool() override { return pool_; }
  void ResetPool() override;
  uint64_t total_edges_examined() const override { return edges_examined_; }
  const Graph& graph() const override { return generator_.graph(); }
  DiffusionModel model() const override { return model_; }
  SamplingKernel kernel() const override { return generator_.kernel(); }
  uint32_t num_workers() const override { return 1; }
  std::string_view name() const override { return "serial"; }

 private:
  DiffusionModel model_;
  RRSetGenerator generator_;
  RRCollection pool_;
  /// Batch staging in AppendShard layout (flat nodes + per-set sizes),
  /// reused across GeneratePool calls so the hot loop never reallocates.
  std::vector<NodeId> shard_nodes_;
  std::vector<uint32_t> shard_sizes_;
  uint64_t edges_examined_ = 0;
};

/// Thread-pool backend: `num_threads` persistent workers, each with its own
/// RRSetGenerator (no shared mutable state on the hot path) and a private
/// Rng stream derived by SplitSeed from the query's base seed. Pool
/// generation shards into per-worker flat buffers that are spliced into the
/// CSR pool in worker order (RRCollection::AppendShard); counting jobs give
/// every worker a private per-query counter shard merged by summation in
/// worker order — so merged pools, batch counts, and aggregated edge counts
/// are all deterministic for a fixed (seed, num_threads) pair. Queries
/// below min_parallel_batch bypass the pool and run on the calling thread;
/// for the counting paths that inline path is bit-identical to the serial
/// backend (both count with the stream Rng(base seed)), while GeneratePool
/// is only statistically equivalent (the serial backend generates from the
/// caller's stream directly, the inline path from one reseeded draw).
class ParallelSamplingEngine final : public SamplingEngine {
 public:
  explicit ParallelSamplingEngine(
      const Graph& graph,
      DiffusionModel model = DiffusionModel::kIndependentCascade,
      uint32_t num_threads = 0, uint64_t min_parallel_batch = 4096,
      SamplingKernel kernel = SamplingKernel::kGeometricJump);
  ~ParallelSamplingEngine() override;

  ParallelSamplingEngine(const ParallelSamplingEngine&) = delete;
  ParallelSamplingEngine& operator=(const ParallelSamplingEngine&) = delete;

  Status TryGeneratePool(const BitVector* removed, uint32_t num_alive,
                         uint64_t count, Rng* rng) override;
  Result<uint64_t> TryCountCoverageBatchSeeded(CoverageQueryBatch* batch,
                                               const BitVector* removed,
                                               uint32_t num_alive,
                                               uint64_t theta,
                                               uint64_t seed) override;

  RRCollection& pool() override { return pool_; }
  void ResetPool() override;
  uint64_t total_edges_examined() const override { return edges_examined_; }
  const Graph& graph() const override { return *graph_; }
  DiffusionModel model() const override { return model_; }
  SamplingKernel kernel() const override {
    return inline_generator_.kernel();
  }
  uint32_t num_workers() const override {
    return static_cast<uint32_t>(workers_.size());
  }
  std::string_view name() const override { return "parallel"; }

 private:
  /// Per-worker state; only its owning thread touches it during a job.
  struct Worker {
    std::unique_ptr<RRSetGenerator> generator;
    uint64_t quota = 0;
    /// Per-query hit counters of the current batch job (counter shard).
    std::vector<uint64_t> hit_shard;
    uint64_t edges_result = 0;
    /// RNG draws consumed by this worker's generator during the current
    /// job (delta of RRSetGenerator::rng_draws), merged into
    /// SamplingStats::rng_draws after the barrier.
    uint64_t draws_result = 0;
    /// RR sets this worker actually drew in the current counting job
    /// (its quota, unless a budget gate stopped it early).
    uint64_t sampled_result = 0;
    /// Exception that escaped this worker's job body, if any. Captured by
    /// WorkerLoop so a throwing job degrades to a Status from RunOnPool
    /// instead of std::terminate-ing the process.
    std::exception_ptr error;
    std::vector<NodeId> shard_nodes;
    std::vector<uint32_t> shard_sizes;
  };

  /// Runs `body(worker_index)` on every pool thread and blocks until all
  /// finish. Exactly one job is in flight at a time. Returns the first
  /// (by worker index) captured worker exception translated to a Status —
  /// std::bad_alloc to kResourceExhausted, anything else to kInternal —
  /// after every worker has reached the barrier, so the pool is always
  /// reusable afterwards.
  Status RunOnPool(const std::function<void(uint32_t)>& body);
  void WorkerLoop(uint32_t index);
  /// Splits `total` draws over the workers (remainder to the lowest ids).
  void AssignQuotas(uint64_t total);

  const Graph* graph_;
  DiffusionModel model_;
  uint64_t min_parallel_batch_;

  RRCollection pool_;
  uint64_t edges_examined_ = 0;
  /// Serial fallback generator for sub-threshold queries.
  RRSetGenerator inline_generator_;
  /// Inline-path batch staging in AppendShard layout.
  std::vector<NodeId> shard_nodes_;
  std::vector<uint32_t> shard_sizes_;

  std::vector<Worker> workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* job_ = nullptr;
  uint64_t job_epoch_ = 0;
  uint32_t pending_ = 0;
  bool stopping_ = false;
};

/// Installs `gate` on `engine` for the current scope iff the gate's
/// RunBudget is active, and always clears the engine's gate slot on
/// destruction — so a policy's budget never leaks into the next caller of
/// a shared engine. An inactive budget arms nothing and the engine runs
/// the bit-identical unbudgeted paths.
class ScopedEngineBudget {
 public:
  ScopedEngineBudget(SamplingEngine* engine, BudgetGate* gate)
      : engine_(engine),
        armed_(gate != nullptr && gate->budget().active()) {
    if (armed_) engine_->set_budget(gate);
  }
  ~ScopedEngineBudget() {
    if (armed_) engine_->set_budget(nullptr);
  }

  ScopedEngineBudget(const ScopedEngineBudget&) = delete;
  ScopedEngineBudget& operator=(const ScopedEngineBudget&) = delete;

  /// Whether the gate was installed (i.e. the budget is active).
  bool armed() const { return armed_; }

 private:
  SamplingEngine* engine_;
  bool armed_;
};

/// Builds the backend selected by `options` for (graph, model). kAuto
/// resolves to kParallel iff the resolved thread count (num_threads, with 0
/// meaning hardware concurrency) exceeds 1. An explicit kParallel request
/// whose resolved thread count is 1 also degrades to the serial backend:
/// a one-worker pool would route every query through its inline serial path
/// anyway, so the worker thread + condvar machinery would be pure overhead.
/// Consequently engine->name() (and anything logging it next to
/// SamplingBackendName(options.backend)) reports "serial" for that
/// configuration.
std::unique_ptr<SamplingEngine> CreateSamplingEngine(
    const Graph& graph,
    DiffusionModel model = DiffusionModel::kIndependentCascade,
    const SamplingEngineOptions& options = {});

/// Engine slot embedded by policies: hands out an injected (borrowed)
/// engine when one was set, otherwise lazily builds — and caches across
/// Run() calls, so a parallel backend keeps its worker pool warm — an
/// owned engine for the requested (graph, model, options). The cache keys
/// on graph identity, so the graph passed to Get must stay alive (and
/// unmoved) for as long as the handle may serve it.
class SamplingEngineHandle {
 public:
  /// Injects an external engine (not owned; pass nullptr to clear). Its
  /// graph/model must match what the policy is run on.
  void Use(SamplingEngine* external) { external_ = external; }

  /// The engine to use for (graph, model, options).
  SamplingEngine* Get(const Graph& graph, DiffusionModel model,
                      const SamplingEngineOptions& options);

 private:
  SamplingEngine* external_ = nullptr;
  std::unique_ptr<SamplingEngine> owned_;
  SamplingEngineOptions owned_options_{};
};

}  // namespace atpm

#endif  // ATPM_RRIS_SAMPLING_ENGINE_H_
