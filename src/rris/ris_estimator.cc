#include "rris/ris_estimator.h"

namespace atpm {

double EstimateSpreadOfNode(const RRCollection& pool, NodeId u,
                            uint32_t num_alive) {
  if (pool.num_sets() == 0) return 0.0;
  return static_cast<double>(num_alive) *
         static_cast<double>(pool.CoverageOfNode(u)) /
         static_cast<double>(pool.num_sets());
}

double EstimateSpreadOfSet(const RRCollection& pool, const BitVector& members,
                           uint32_t num_alive) {
  if (pool.num_sets() == 0) return 0.0;
  return static_cast<double>(num_alive) *
         static_cast<double>(pool.CoverageOfSet(members)) /
         static_cast<double>(pool.num_sets());
}

double EstimateMarginalSpread(const RRCollection& pool, NodeId u,
                              const BitVector& base, uint32_t num_alive) {
  if (pool.num_sets() == 0) return 0.0;
  return static_cast<double>(num_alive) *
         static_cast<double>(pool.ConditionalCoverage(u, base)) /
         static_cast<double>(pool.num_sets());
}

BitVector MakeMembershipBitmap(NodeId num_nodes,
                               std::span<const NodeId> nodes) {
  BitVector bitmap(num_nodes);
  for (NodeId v : nodes) bitmap.Set(v);
  return bitmap;
}

}  // namespace atpm
