#ifndef ATPM_RRIS_SAMPLING_STATS_H_
#define ATPM_RRIS_SAMPLING_STATS_H_

#include <cstdint>

namespace atpm {

/// Cumulative sampling-effort accounting, aggregated across an engine's
/// whole lifetime (ResetStats to re-baseline). Unlike total_edges_examined,
/// which is pool-scoped EPT accounting zeroed by ResetPool, these counters
/// also cover the throwaway counting paths — they are what the benchmarks
/// report as "RR sets generated" and "reuse ratio".
///
/// The forward diffusion paths (SimulateIC / SimulateLT,
/// Realization::Sample) accept an optional SamplingStats sink and
/// accumulate the same rng_draws / edges_examined measures, so
/// DrawsPerEdge() covers both traversal directions of the jump substrate.
///
/// This struct stays the exact per-engine accounting source; the process
/// metric registry (common/metrics.h: atpm_rr_sets_generated_total and
/// friends) mirrors the same accruals across all engines and can be
/// disabled without perturbing these counts.
struct SamplingStats {
  /// RR sets sampled by GeneratePool + every counting query.
  uint64_t rr_sets_generated = 0;
  /// Edges examined by all of the above (the IMM/EPT cost proxy).
  uint64_t edges_examined = 0;
  /// Throwaway pools sampled by counting queries (one per batch call).
  uint64_t count_pools = 0;
  /// Coverage queries answered by those pools (>= count_pools; the ratio
  /// coverage_queries / count_pools is the pool-reuse factor — 1.0 for the
  /// historical one-pool-per-query sampling, 2.0 for batched front/rear
  /// rounds).
  uint64_t coverage_queries = 0;
  /// RNG draws consumed by the generation kernels (root sampling + edge
  /// trials + LT picks). The per-edge kernel pays ~1 draw per alive
  /// unvisited edge; the geometric-jump kernel ~1 per successful edge —
  /// rng_draws / edges_examined is the headline reduction of the
  /// weight-class-aware kernel.
  uint64_t rng_draws = 0;

  /// Queries answered per throwaway pool (0 if no counting ran).
  double ReuseRatio() const {
    return count_pools == 0 ? 0.0
                            : static_cast<double>(coverage_queries) /
                                  static_cast<double>(count_pools);
  }

  /// RNG draws per edge examined (0 if nothing ran).
  double DrawsPerEdge() const {
    return edges_examined == 0 ? 0.0
                               : static_cast<double>(rng_draws) /
                                     static_cast<double>(edges_examined);
  }
};

}  // namespace atpm

#endif  // ATPM_RRIS_SAMPLING_STATS_H_
